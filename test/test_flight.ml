(* Request-level observability: the flight-recorder ring (wraparound,
   ordering under async edits, no torn entries), the slow-query threshold
   boundary, the Prometheus exposition against a strict line-format
   checker, byte-identity of analysis results with observability on vs
   off, the crash-flush flight tail, and the fsam.top/1 document
   round-trip. *)

module J = Fsam_obs.Json
module Flight = Fsam_obs.Flight
module Metrics = Fsam_obs.Metrics
module Engine = Fsam_serve.Engine
module Protocol = Fsam_serve.Protocol
module Stats = Fsam_serve.Stats
module Topview = Fsam_serve.Topview

let tiny_source =
  "int g;\nvoid writer(int *p) { *p = 1; }\nint main() { int *q; q = &g; writer(q); \
   *q = 2; return 0; }\n"

let req srv fields = Protocol.handle_line srv (J.to_string ~minify:true (J.Obj fields))
let is_ok r = J.member "ok" r = Some (J.Bool true)

let tmp_path name =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "fsam_test_%s_%d" name (Unix.getpid ()))

(* -- ring -------------------------------------------------------------------- *)

let test_ring_wraparound () =
  let f = Flight.create ~cap:4 () in
  for i = 1 to 10 do
    Flight.note f ~seq:i ~op:(Printf.sprintf "op%d" (i mod 3)) ~us:(i * 10) ~cpu_us:i
      ~ok:(i mod 2 = 0)
      ?err:(if i mod 2 = 0 then None else Some "some_error")
      ~gen:i ~dirty:(-1) ~bytes_in:i ~bytes_out:(2 * i) ()
  done;
  Alcotest.(check int) "recorded" 10 (Flight.recorded f);
  Alcotest.(check int) "dropped" 6 (Flight.dropped f);
  let es = Flight.entries f in
  Alcotest.(check (list int)) "live window is the last cap entries, oldest first"
    [ 7; 8; 9; 10 ]
    (List.map (fun e -> e.Flight.f_seq) es);
  List.iter
    (fun e ->
      let i = e.Flight.f_seq in
      Alcotest.(check int) "us intact" (i * 10) e.Flight.f_us;
      Alcotest.(check bool) "ok intact" (i mod 2 = 0) e.Flight.f_ok;
      Alcotest.(check (option string)) "err intact"
        (if i mod 2 = 0 then None else Some "some_error")
        e.Flight.f_err;
      Alcotest.(check int) "bytes intact" (2 * i) e.Flight.f_bytes_out)
    es;
  (* json shape *)
  match Flight.to_json f with
  | J.Obj kvs ->
    Alcotest.(check bool) "cap exported" true (List.assoc "cap" kvs = J.Int 4);
    (match List.assoc "entries" kvs with
    | J.List l -> Alcotest.(check int) "4 entries" 4 (List.length l)
    | _ -> Alcotest.fail "entries not a list")
  | _ -> Alcotest.fail "to_json not an object"

(* Request ids strictly increasing and entries complete while an async edit
   runs concurrently with queries. *)
let test_ordering_async_edit () =
  let stats = Stats.create ~flight_cap:8 ~slow_ms:(-1.0) () in
  let eng = Engine.create () in
  let srv = Protocol.create ~stats eng in
  let ok_or_fail what r = if not (is_ok r) then Alcotest.failf "%s failed" what in
  ok_or_fail "load"
    (req srv [ ("id", J.Int 1); ("op", J.String "load"); ("source", J.String tiny_source) ]);
  ok_or_fail "async edit"
    (req srv
       [
         ("id", J.Int 2);
         ("op", J.String "edit");
         ("async", J.Bool true);
         ("fn", J.String "writer");
         ("code", J.String "void writer(int *p) { *p = 3; }");
       ]);
  (* queries interleave with the in-flight edit *)
  for i = 3 to 6 do
    ok_or_fail "pinned query"
      (req srv [ ("id", J.Int i); ("op", J.String "points-to"); ("var", J.String "q") ])
  done;
  let wait_reply = req srv [ ("id", J.Int 7); ("op", J.String "edit-wait") ] in
  ok_or_fail "edit-wait" wait_reply;
  let f = match Stats.flight stats with Some f -> f | None -> Alcotest.fail "no flight" in
  let es = Flight.entries f in
  Alcotest.(check int) "all 7 requests journaled" 7 (List.length es);
  let seqs = List.map (fun e -> e.Flight.f_seq) es in
  Alcotest.(check (list int)) "seq strictly increasing" [ 1; 2; 3; 4; 5; 6; 7 ] seqs;
  List.iter
    (fun e ->
      Alcotest.(check bool) "op present" true (String.length e.Flight.f_op > 0);
      Alcotest.(check bool) "latency non-negative" true (e.Flight.f_us >= 0);
      Alcotest.(check bool) "generation positive" true (e.Flight.f_gen >= 1);
      Alcotest.(check bool) "reply bytes recorded" true (e.Flight.f_bytes_out > 0))
    es;
  (* the edit-wait entry carries the edit's dirty-function count (or -1 if
     the engine fell back to a cold run and reported none) *)
  let expected_dirty =
    match J.member "incremental" wait_reply with
    | Some inc -> (
      match J.member "changed_funcs" inc with Some (J.Int n) -> n | _ -> -1)
    | None -> -1
  in
  let last = List.nth es 6 in
  Alcotest.(check string) "last is edit-wait" "edit-wait" last.Flight.f_op;
  Alcotest.(check int) "dirty-fn count surfaced" expected_dirty last.Flight.f_dirty;
  Stats.close stats

(* -- slow-query log ---------------------------------------------------------- *)

let test_slow_threshold_boundary () =
  let path = tmp_path "slow" in
  (try Sys.remove path with Sys_error _ -> ());
  let stats = Stats.create ~flight_cap:0 ~slow_ms:1.0 ~slow_log:path () in
  let note us =
    Stats.note stats ~seq:1 ~op:"points-to" ~us ~cpu_us:us ~ok:true ~err:None ~gen:1
      ~dirty:(-1) ~bytes_in:10 ~bytes_out:20
      ~req:(J.Obj [ ("op", J.String "points-to"); ("var", J.String "q") ])
      ~phases:None
  in
  note 999;
  note 1000;
  (* exactly at the threshold: not "over" *)
  Alcotest.(check int) "at-threshold not logged" 0 (Stats.slow_logged stats);
  note 1001;
  Alcotest.(check int) "over threshold logged" 1 (Stats.slow_logged stats);
  Stats.close stats;
  let ic = open_in path in
  let line = input_line ic in
  close_in ic;
  Sys.remove path;
  match J.of_string line with
  | Error e -> Alcotest.failf "slow line is not JSON: %s" e
  | Ok doc ->
    Alcotest.(check bool) "schema" true
      (J.member "schema" doc = Some (J.String "fsam.slow/1"));
    Alcotest.(check bool) "us" true (J.member "us" doc = Some (J.Int 1001));
    Alcotest.(check bool) "op" true (J.member "op" doc = Some (J.String "points-to"));
    (* params ride along, minus op/id *)
    (match J.member "params" doc with
    | Some p -> Alcotest.(check bool) "params.var" true (J.member "var" p = Some (J.String "q"))
    | None -> Alcotest.fail "no params")

(* A slow load's program payload is elided, not journaled verbatim. *)
let test_slow_redaction () =
  let path = tmp_path "slow_redact" in
  (try Sys.remove path with Sys_error _ -> ());
  let stats = Stats.create ~flight_cap:0 ~slow_ms:0.0 ~slow_log:path () in
  Stats.note stats ~seq:1 ~op:"load" ~us:5000 ~cpu_us:5000 ~ok:true ~err:None ~gen:1
    ~dirty:(-1) ~bytes_in:0 ~bytes_out:0
    ~req:(J.Obj [ ("op", J.String "load"); ("source", J.String (String.make 4096 'x')) ])
    ~phases:None;
  Stats.close stats;
  let ic = open_in path in
  let line = input_line ic in
  close_in ic;
  Sys.remove path;
  Alcotest.(check bool) "line stays small" true (String.length line < 1024);
  match J.of_string line with
  | Ok doc -> (
    match J.member "params" doc with
    | Some p -> (
      match J.member "source" p with
      | Some s ->
        Alcotest.(check bool) "source elided to length" true
          (J.member "elided_bytes" s = Some (J.Int 4096))
      | None -> Alcotest.fail "source param missing")
    | None -> Alcotest.fail "params missing")
  | Error e -> Alcotest.failf "bad slow line: %s" e

(* -- prometheus exposition --------------------------------------------------- *)

(* Strict line-format checker for the subset of the Prometheus text format
   we emit: TYPE comments, [name value] samples, [name{le="..."} value]
   histogram buckets; names match [a-zA-Z_:][a-zA-Z0-9_:]*; every histogram
   has non-decreasing cumulative buckets, a +Inf bucket equal to _count,
   and _sum/_count samples. Returns the list of violations. *)
let check_prometheus text =
  let errs = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errs := s :: !errs) fmt in
  let name_ok s =
    s <> ""
    && (let c = s.[0] in (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = ':')
    && String.for_all
         (fun c ->
           (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
           || c = '_' || c = ':')
         s
  in
  let buckets = Hashtbl.create 16 (* base name -> (le, cum) list, in order *) in
  let samples = Hashtbl.create 16 (* sample name -> value *) in
  let typed = Hashtbl.create 16 in
  List.iter
    (fun line ->
      if line = "" then ()
      else if String.length line > 6 && String.sub line 0 7 = "# TYPE " then begin
        match String.split_on_char ' ' line with
        | [ _; _; name; kind ] ->
          if not (name_ok name) then err "bad TYPE name %S" name;
          if not (List.mem kind [ "counter"; "gauge"; "histogram" ]) then
            err "bad TYPE kind %S" kind;
          Hashtbl.replace typed name kind
        | _ -> err "malformed TYPE line %S" line
      end
      else if String.length line > 0 && line.[0] = '#' then ()
      else
        match String.index_opt line ' ' with
        | None -> err "sample without value: %S" line
        | Some sp -> (
          let lhs = String.sub line 0 sp in
          let value = String.sub line (sp + 1) (String.length line - sp - 1) in
          let v =
            match float_of_string_opt value with
            | Some v -> v
            | None ->
              err "non-numeric value %S in %S" value line;
              nan
          in
          match String.index_opt lhs '{' with
          | None ->
            if not (name_ok lhs) then err "bad sample name %S" lhs;
            Hashtbl.replace samples lhs v
          | Some lb ->
            let name = String.sub lhs 0 lb in
            let labels = String.sub lhs lb (String.length lhs - lb) in
            if not (name_ok name) then err "bad sample name %S" name;
            let is_bucket =
              String.length name > 7
              && String.sub name (String.length name - 7) 7 = "_bucket"
            in
            if not is_bucket then err "labels on non-bucket sample %S" lhs
            else begin
              let base = String.sub name 0 (String.length name - 7) in
              let le =
                if String.length labels > 6 && String.sub labels 0 5 = "{le=\""
                   && labels.[String.length labels - 2] = '"'
                   && labels.[String.length labels - 1] = '}'
                then Some (String.sub labels 5 (String.length labels - 7))
                else None
              in
              match le with
              | None -> err "bucket without le label: %S" lhs
              | Some le ->
                let prev = try Hashtbl.find buckets base with Not_found -> [] in
                Hashtbl.replace buckets base (prev @ [ (le, v) ])
            end))
    (String.split_on_char '\n' text);
  Hashtbl.iter
    (fun base bs ->
      (match Hashtbl.find_opt typed base with
      | Some "histogram" -> ()
      | _ -> err "histogram %s has buckets but no histogram TYPE" base);
      let cum = List.map snd bs in
      if not (List.for_all2 (fun a b -> a <= b) cum (List.tl cum @ [ infinity ])) then
        err "%s buckets not cumulative" base;
      (match List.rev bs with
      | ("+Inf", v) :: _ -> (
        match Hashtbl.find_opt samples (base ^ "_count") with
        | Some c when c = v -> ()
        | Some c -> err "%s +Inf bucket %f <> count %f" base v c
        | None -> err "%s missing _count" base)
      | _ -> err "%s last bucket is not +Inf" base);
      if Hashtbl.find_opt samples (base ^ "_sum") = None then err "%s missing _sum" base)
    buckets;
  List.rev !errs

let test_prometheus_format () =
  let reg = Metrics.create_registry () in
  Metrics.add (Metrics.counter ~reg "serve.requests_total") 17;
  Metrics.set (Metrics.gauge ~reg "serve.rss_kb") 12345;
  let h = Metrics.histogram ~reg "serve.req.points-to.latency_us" in
  List.iter (Metrics.observe h) [ 0; 1; 3; 900; 70_000; 70_001; 1_000_000 ];
  let text = Metrics.to_prometheus ~regs:[ reg ] () in
  Alcotest.(check (list string)) "checker clean" [] (check_prometheus text);
  (* dashed/dotted names sanitize, exposition carries exact count/sum *)
  Alcotest.(check bool) "sanitized histogram name" true
    (List.exists
       (fun l -> l = "serve_req_points_to_latency_us_count 7")
       (String.split_on_char '\n' text));
  Alcotest.(check bool) "sum exact" true
    (List.exists
       (fun l -> l = Printf.sprintf "serve_req_points_to_latency_us_sum %d" 1_140_905)
       (String.split_on_char '\n' text));
  (* the checker itself rejects malformed text *)
  Alcotest.(check bool) "checker catches bad name" true
    (check_prometheus "# TYPE 9bad counter\n9bad 1\n" <> []);
  Alcotest.(check bool) "checker catches missing +Inf" true
    (check_prometheus
       "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n"
    <> [])

(* -- observability on/off byte-identity --------------------------------------- *)

let strip_volatile r =
  match r with
  | J.Obj kvs ->
    J.Obj
      (List.filter
         (fun (k, _) -> not (List.mem k [ "us"; "cpu_us"; "seq"; "uptime_s"; "rss_kb" ]))
         kvs)
  | j -> j

let test_on_off_identity () =
  let slow = tmp_path "slow_onoff" in
  let mk ~obs =
    let stats =
      if obs then Stats.create ~flight_cap:16 ~slow_ms:0.0 ~slow_log:slow ()
      else Stats.create ~flight_cap:0 ~slow_ms:(-1.0) ()
    in
    (Protocol.create ~stats (Engine.create ()), stats)
  in
  let script srv =
    [
      req srv [ ("id", J.Int 1); ("op", J.String "load"); ("source", J.String tiny_source) ];
      req srv [ ("id", J.Int 2); ("op", J.String "points-to"); ("var", J.String "q") ];
      req srv
        [
          ("id", J.Int 3);
          ("op", J.String "alias");
          ("a", J.String "q");
          ("b", J.String "p");
        ];
      req srv [ ("id", J.Int 4); ("op", J.String "races") ];
      req srv
        [
          ("id", J.Int 5);
          ("op", J.String "edit");
          ("fn", J.String "writer");
          ("code", J.String "void writer(int *p) { *p = 7; }");
        ];
      req srv [ ("id", J.Int 6); ("op", J.String "points-to"); ("var", J.String "q") ];
    ]
  in
  let on_srv, on_stats = mk ~obs:true in
  let off_srv, off_stats = mk ~obs:false in
  let on = script on_srv and off = script off_srv in
  List.iteri
    (fun i (a, b) ->
      Alcotest.(check bool)
        (Printf.sprintf "reply %d identical modulo timing" (i + 1))
        true
        (J.equal (strip_volatile a) (strip_volatile b)))
    (List.combine on off);
  (* the observability-on run actually observed *)
  (match Metrics.find_histogram ~reg:(Stats.registry on_stats) "serve.req.points-to.latency_us" with
  | Some h -> Alcotest.(check int) "histogram counted" 2 (Metrics.histogram_count h)
  | None -> Alcotest.fail "points-to histogram missing");
  Alcotest.(check bool) "slow lines written" true (Stats.slow_logged on_stats > 0);
  (* and the off run kept nothing *)
  Alcotest.(check bool) "off: no flight" true (Stats.flight off_stats = None);
  Alcotest.(check int) "off: no slow lines" 0 (Stats.slow_logged off_stats);
  Stats.close on_stats;
  Stats.close off_stats;
  try Sys.remove slow with Sys_error _ -> ()

(* -- status health fields / stats & dump ops ---------------------------------- *)

let test_status_health_fields () =
  let stats = Stats.create ~flight_cap:4 ~slow_ms:(-1.0) () in
  let srv = Protocol.create ~stats (Engine.create ()) in
  ignore (req srv [ ("id", J.Int 1); ("op", J.String "load"); ("source", J.String tiny_source) ]);
  let r = req srv [ ("id", J.Int 2); ("op", J.String "status") ] in
  Alcotest.(check bool) "ok" true (is_ok r);
  Alcotest.(check bool) "pid" true (J.member "pid" r = Some (J.Int (Unix.getpid ())));
  (match J.member "uptime_s" r with
  | Some (J.Float u) -> Alcotest.(check bool) "uptime sane" true (u >= 0.0 && u < 3600.0)
  | _ -> Alcotest.fail "uptime_s missing");
  Alcotest.(check bool) "generation" true (J.member "generation" r = Some (J.Int 1));
  (match J.member "generation_age_s" r with
  | Some (J.Float a) -> Alcotest.(check bool) "gen age sane" true (a >= 0.0)
  | _ -> Alcotest.fail "generation_age_s missing");
  (match J.member "rss_kb" r with
  | Some (J.Int _) -> ()
  | _ -> Alcotest.fail "rss_kb missing");
  (* seq echo: monotonically assigned, echoed on every reply *)
  (match J.member "seq" r with
  | Some (J.Int 2) -> ()
  | _ -> Alcotest.fail "seq not echoed");
  (* stats op: valid exposition + serve histograms *)
  let r = req srv [ ("id", J.Int 3); ("op", J.String "stats") ] in
  Alcotest.(check bool) "stats ok" true (is_ok r);
  (match J.member "prometheus" r with
  | Some (J.String text) ->
    Alcotest.(check (list string)) "scrape passes checker" [] (check_prometheus text)
  | _ -> Alcotest.fail "no prometheus text");
  (* dump op: the journaled tail covers the requests completed so far (the
     dump's own entry lands after its reply is built, so 3 not 4) *)
  let r = req srv [ ("id", J.Int 4); ("op", J.String "dump") ] in
  (match J.member "flight" r with
  | Some fj -> (
    match J.member "entries" fj with
    | Some (J.List es) -> Alcotest.(check int) "prior requests journaled" 3 (List.length es)
    | _ -> Alcotest.fail "no entries")
  | None -> Alcotest.fail "no flight in dump");
  Stats.close stats

(* -- crash flush includes the flight tail ------------------------------------- *)

let test_crash_flush_flight_tail () =
  let module T = Fsam_core.Telemetry in
  let path = tmp_path "crash" in
  (try Sys.remove path with Sys_error _ -> ());
  let f = Flight.create ~cap:4 () in
  Flight.note f ~seq:41 ~op:"points-to" ~us:12 ~cpu_us:11 ~ok:true ~gen:3 ~dirty:(-1)
    ~bytes_in:30 ~bytes_out:90 ();
  Flight.set_current (Some f);
  T.flush_at_exit path;
  T.flush_now ();
  Flight.set_current None;
  Alcotest.(check bool) "disarmed after flush" false (T.armed ());
  let ic = open_in path in
  let n = in_channel_length ic in
  let text = really_input_string ic n in
  close_in ic;
  Sys.remove path;
  match J.of_string text with
  | Error e -> Alcotest.failf "crash doc unparsable: %s" e
  | Ok doc -> (
    Alcotest.(check bool) "partial" true (J.member "partial" doc = Some (J.Bool true));
    match J.member "flight" doc with
    | Some fj -> (
      match J.member "entries" fj with
      | Some (J.List [ e ]) ->
        Alcotest.(check bool) "tail entry survived" true
          (J.member "seq" e = Some (J.Int 41))
      | _ -> Alcotest.fail "flight entries wrong shape")
    | None -> Alcotest.fail "crash doc lacks flight tail")

(* -- fsam.top/1 --------------------------------------------------------------- *)

let test_top_roundtrip () =
  let stats = Stats.create ~flight_cap:4 ~slow_ms:(-1.0) () in
  let srv = Protocol.create ~stats (Engine.create ()) in
  ignore (req srv [ ("id", J.Int 1); ("op", J.String "load"); ("source", J.String tiny_source) ]);
  ignore (req srv [ ("id", J.Int 2); ("op", J.String "points-to"); ("var", J.String "q") ]);
  let status = req srv [ ("id", J.Int 3); ("op", J.String "status") ] in
  let stats_r = req srv [ ("id", J.Int 4); ("op", J.String "stats") ] in
  let doc = Topview.doc_of ~now:1000.0 ~status ~stats:stats_r () in
  (* schema round-trip: emit, reparse, structurally equal. JSON has one
     number type, so a whole-valued Float reparses as Int — compare
     numbers by value. *)
  let rec num_equal a b =
    match (a, b) with
    | J.Int x, J.Float y | J.Float y, J.Int x -> float_of_int x = y
    | J.List x, J.List y ->
      (try List.for_all2 num_equal x y with Invalid_argument _ -> false)
    | J.Obj x, J.Obj y ->
      (try List.for_all2 (fun (k, v) (k', v') -> k = k' && num_equal v v') x y
       with Invalid_argument _ -> false)
    | _ -> J.equal a b
  in
  (match J.of_string (J.to_string ~minify:true doc) with
  | Ok doc' -> Alcotest.(check bool) "roundtrip equal" true (num_equal doc doc')
  | Error e -> Alcotest.failf "doc does not reparse: %s" e);
  Alcotest.(check bool) "schema tag" true
    (J.member "schema" doc = Some (J.String Topview.schema));
  (* rate math across two polls *)
  let doc2 =
    Topview.doc_of ~now:1002.0 ~prev:(Topview.prev_of doc) ~status:
      (req srv [ ("id", J.Int 5); ("op", J.String "status") ])
      ~stats:stats_r ()
  in
  (match J.member "requests_per_s" doc2 with
  | Some (J.Float r) -> Alcotest.(check bool) "rate positive" true (r > 0.0)
  | _ -> Alcotest.fail "no rate");
  (* the renderer shows the per-op latency table *)
  let contains hay needle =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  let text = Topview.render doc in
  Alcotest.(check bool) "render mentions points-to" true (contains text "points-to");
  Stats.close stats

let suite =
  [
    Alcotest.test_case "ring-wraparound" `Quick test_ring_wraparound;
    Alcotest.test_case "ordering-under-async-edit" `Quick test_ordering_async_edit;
    Alcotest.test_case "slow-threshold-boundary" `Quick test_slow_threshold_boundary;
    Alcotest.test_case "slow-redaction" `Quick test_slow_redaction;
    Alcotest.test_case "prometheus-format" `Quick test_prometheus_format;
    Alcotest.test_case "obs-on-off-identity" `Quick test_on_off_identity;
    Alcotest.test_case "status-health-fields" `Quick test_status_health_fields;
    Alcotest.test_case "crash-flush-flight-tail" `Quick test_crash_flush_flight_tail;
    Alcotest.test_case "top-roundtrip" `Quick test_top_roundtrip;
  ]
