let () =
  Alcotest.run "fsam"
    [
      ("iset", Test_iset.suite);
      ("dsa", Test_dsa.suite);
      ("graph", Test_graph.suite);
      ("ir", Test_ir.suite);
      ("andersen", Test_andersen.suite);
      ("mta", Test_mta.suite);
      ("fsam", Test_fsam.suite);
      ("props", Test_props.suite);
      ("frontend", Test_frontend.suite);
      ("workloads", Test_workloads.suite);
      ("svfg", Test_svfg.suite);
      ("clients", Test_clients.suite);
      ("misc", Test_misc.suite);
      ("minic-files", Test_minic_files.suite);
      ("pretty", Test_pretty.suite);
      ("interp", Test_interp.suite);
      ("leaks", Test_leaks.suite);
      ("minic-suite", Test_minic_suite.suite);
      ("explore", Test_explore.suite);
      ("steensgaard", Test_steens.suite);
      ("edge-cases", Test_edge_cases.suite);
      ("simplify", Test_simplify.suite);
      ("obs", Test_obs.suite);
      ("par", Test_par.suite);
      ("query-index", Test_query_index.suite);
      ("prov", Test_prov.suite);
      ("profile", Test_profile.suite);
      ("serve", Test_serve.suite);
      ("flight", Test_flight.suite);
    ]
