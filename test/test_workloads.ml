(* Sanity checks on the benchmark workload generators: every program builds,
   validates, analyzes, and exhibits the concurrency features its paper
   counterpart is included for. Small scales keep this fast. *)

open Fsam_ir
module D = Fsam_core.Driver
module W = Fsam_workloads.Suite

let small (s : W.spec) = s.build (max 10 (s.scale / 10))

let test_all_valid () =
  List.iter
    (fun (s : W.spec) ->
      let prog = small s in
      match Validate.check prog with
      | Ok () -> ()
      | Error es -> Alcotest.failf "%s: %s" s.name (String.concat "; " es))
    W.all

let test_all_analyze () =
  List.iter
    (fun (s : W.spec) ->
      let prog = small s in
      let d = D.run prog in
      Alcotest.(check bool)
        (s.name ^ " produced facts")
        true
        (Fsam_core.Sparse.pts_entries d.D.sparse > 0))
    W.all

let test_ten_programs () = Alcotest.(check int) "ten benchmarks" 10 (List.length W.all)

let thread_count prog =
  let ast = Fsam_andersen.Solver.run prog in
  let icfg = Fsam_mta.Icfg.build prog ast in
  let tm = Fsam_mta.Threads.build prog ast icfg in
  tm

let test_word_count_symmetric_join () =
  (* the figure-11 property: slave statements do not interleave with the
     master's post-processing after the join loop *)
  let s = Option.get (W.find "word_count") in
  let prog = small s in
  let tm = thread_count prog in
  let multi = ref 0 in
  for t = 0 to Fsam_mta.Threads.n_threads tm - 1 do
    if Fsam_mta.Threads.is_multi tm t then incr multi
  done;
  Alcotest.(check bool) "has multi-forked slaves" true (!multi >= 1);
  let kills = ref 0 in
  for i = 0 to Fsam_mta.Threads.n_insts tm - 1 do
    if Fsam_mta.Threads.join_kills tm i <> [] then incr kills
  done;
  Alcotest.(check bool) "symmetric joins handled" true (!kills >= 1)

let test_httpd_detached () =
  (* handlers are spawned in a loop and never joined: they must stay alive *)
  let s = Option.get (W.find "httpd_server") in
  let prog = small s in
  let tm = thread_count prog in
  let mhp = Fsam_mta.Mhp.compute tm in
  (* some statement pair across threads is MHP *)
  let found = ref false in
  Prog.iter_stmts prog (fun g _ st ->
      match st with
      | Stmt.Store _ ->
        Prog.iter_stmts prog (fun g' _ st' ->
            match st' with
            | Stmt.Load _ when Fsam_mta.Mhp.mhp_stmt mhp g g' -> found := true
            | _ -> ())
      | _ -> ());
  Alcotest.(check bool) "handler interference present" true !found

let test_radiosity_locks () =
  let s = Option.get (W.find "radiosity") in
  let prog = small s in
  let ast = Fsam_andersen.Solver.run prog in
  let icfg = Fsam_mta.Icfg.build prog ast in
  let tm = Fsam_mta.Threads.build prog ast icfg in
  let lk = Fsam_mta.Locks.compute prog ast tm in
  Alcotest.(check bool) "task-queue spans exist" true (Fsam_mta.Locks.n_spans lk >= 4)

let test_x264_indirect_calls () =
  let s = Option.get (W.find "x264") in
  let prog = small s in
  let ast = Fsam_andersen.Solver.run prog in
  let found = ref false in
  Prog.iter_funcs prog (fun f ->
      Func.iter_stmts f (fun i st ->
          match st with
          | Stmt.Call { target = Stmt.Indirect _; _ } ->
            if List.length (Fsam_andersen.Solver.callees ast ~fid:f.Func.fid ~idx:i) >= 2
            then found := true
          | _ -> ()));
  Alcotest.(check bool) "function-pointer table resolves to many" true !found

let test_workloads_deterministic () =
  let s = Option.get (W.find "ferret") in
  let p1 = small s and p2 = small s in
  Alcotest.(check int) "same statement count" (Prog.n_stmts p1) (Prog.n_stmts p2);
  let d1 = D.run p1 and d2 = D.run p2 in
  Alcotest.(check int) "same fact count"
    (Fsam_core.Sparse.pts_entries d1.D.sparse)
    (Fsam_core.Sparse.pts_entries d2.D.sparse)

(* Minic_synth: the parameterized source-level synthesizer behind the
   bench --size large tier. A scaled-down parameter set keeps these quick. *)
module Synth = Fsam_workloads.Minic_synth

let synth_tiny =
  { Synth.quick with Synth.modules = 3; chain_depth = 3; stmts_per_fn = 16 }

let test_synth_deterministic () =
  let s1 = Synth.generate synth_tiny and s2 = Synth.generate synth_tiny in
  Alcotest.(check bool) "same source text" true (String.equal s1 s2);
  Alcotest.(check bool) "nontrivial program" true (Synth.line_count s1 > 100);
  let other = Synth.generate { synth_tiny with Synth.seed = 2 } in
  Alcotest.(check bool) "seed changes the program" false (String.equal s1 other)

let test_synth_scales_with_params () =
  let bigger = Synth.generate { synth_tiny with Synth.modules = 6 } in
  Alcotest.(check bool) "more modules, more lines" true
    (Synth.line_count bigger > Synth.line_count (Synth.generate synth_tiny))

let test_synth_compiles_and_analyzes () =
  let prog = Fsam_frontend.Lower.compile_string (Synth.generate synth_tiny) in
  (match Validate.check prog with
  | Ok () -> ()
  | Error es -> Alcotest.failf "synth invalid: %s" (String.concat "; " es));
  let d = D.run prog in
  Alcotest.(check bool) "synth forks threads" true
    (Fsam_mta.Threads.n_threads d.D.tm > 1);
  Alcotest.(check bool) "synth has lock spans" true
    (Fsam_mta.Locks.n_spans d.D.locks > 0);
  (* the synthesized races are deterministic: a second full run agrees *)
  let races1 = Fsam_core.Races.detect ~jobs:1 d in
  let d2 = D.run (Fsam_frontend.Lower.compile_string (Synth.generate synth_tiny)) in
  let races2 = Fsam_core.Races.detect ~jobs:1 d2 in
  Alcotest.(check bool) "race report stable" true (races1 = races2)

let test_scaling_monotone () =
  let s = Option.get (W.find "kmeans") in
  let small_p = s.build 20 and big_p = s.build 40 in
  Alcotest.(check bool) "bigger scale, bigger program" true
    (Prog.n_stmts big_p > Prog.n_stmts small_p)

let suite =
  [
    Alcotest.test_case "ten programs" `Quick test_ten_programs;
    Alcotest.test_case "all valid" `Quick test_all_valid;
    Alcotest.test_case "all analyzable" `Quick test_all_analyze;
    Alcotest.test_case "word_count symmetric joins" `Quick test_word_count_symmetric_join;
    Alcotest.test_case "httpd detached handlers" `Quick test_httpd_detached;
    Alcotest.test_case "radiosity lock spans" `Quick test_radiosity_locks;
    Alcotest.test_case "x264 indirect calls" `Quick test_x264_indirect_calls;
    Alcotest.test_case "generators deterministic" `Quick test_workloads_deterministic;
    Alcotest.test_case "scaling monotone" `Quick test_scaling_monotone;
    Alcotest.test_case "minic_synth deterministic" `Quick test_synth_deterministic;
    Alcotest.test_case "minic_synth scales with params" `Quick test_synth_scales_with_params;
    Alcotest.test_case "minic_synth compiles and analyzes" `Quick
      test_synth_compiles_and_analyzes;
  ]
