open Fsam_dsa

let test_bitvec_basics () =
  let b = Bitvec.create () in
  Alcotest.(check bool) "initially unset" false (Bitvec.get b 5);
  Bitvec.set b 5;
  Bitvec.set b 1000;
  Alcotest.(check bool) "set 5" true (Bitvec.get b 5);
  Alcotest.(check bool) "set 1000 (grown)" true (Bitvec.get b 1000);
  Alcotest.(check bool) "999 unset" false (Bitvec.get b 999);
  Alcotest.(check int) "cardinal" 2 (Bitvec.cardinal b);
  Bitvec.clear b 5;
  Alcotest.(check bool) "cleared" false (Bitvec.get b 5);
  Alcotest.(check bool) "set_if_unset true" true (Bitvec.set_if_unset b 7);
  Alcotest.(check bool) "set_if_unset false" false (Bitvec.set_if_unset b 7)

let test_bitvec_union () =
  let a = Bitvec.create () and b = Bitvec.create () in
  Bitvec.set a 1;
  Bitvec.set b 2;
  Bitvec.set b 300;
  Alcotest.(check bool) "union changes" true (Bitvec.union_into ~dst:a ~src:b);
  Alcotest.(check bool) "union idempotent" false (Bitvec.union_into ~dst:a ~src:b);
  Alcotest.(check (list int)) "members" [ 1; 2; 300 ] (Iset.elements (Bitvec.to_iset a))

let test_bitvec_iter () =
  let b = Bitvec.create () in
  List.iter (Bitvec.set b) [ 0; 7; 8; 63; 64; 129 ];
  let acc = ref [] in
  Bitvec.iter_set (fun i -> acc := i :: !acc) b;
  Alcotest.(check (list int)) "iter_set ascending" [ 0; 7; 8; 63; 64; 129 ] (List.rev !acc);
  Bitvec.clear_all b;
  Alcotest.(check int) "clear_all" 0 (Bitvec.cardinal b)

let test_uf () =
  let u = Uf.create 10 in
  Alcotest.(check bool) "initially apart" false (Uf.same u 1 2);
  ignore (Uf.union u 1 2);
  ignore (Uf.union u 3 4);
  Alcotest.(check bool) "joined" true (Uf.same u 1 2);
  Alcotest.(check bool) "still apart" false (Uf.same u 2 3);
  ignore (Uf.union u 2 4);
  Alcotest.(check bool) "transitively joined" true (Uf.same u 1 3);
  Alcotest.(check int) "class count" 7 (Uf.n_classes u)

let test_uf_union_to () =
  let u = Uf.create 5 in
  let r = Uf.union_to u ~keep:2 ~absorb:4 in
  Alcotest.(check int) "keeps representative" 2 r;
  Alcotest.(check int) "find absorbed" 2 (Uf.find u 4);
  (* growing on demand *)
  Alcotest.(check int) "fresh key is own root" 50 (Uf.find u 50)

let test_vec () =
  let v = Vec.create () in
  Alcotest.(check int) "push returns index" 0 (Vec.push v "a");
  Alcotest.(check int) "second index" 1 (Vec.push v "b");
  Vec.set v 0 "z";
  Alcotest.(check string) "set/get" "z" (Vec.get v 0);
  Alcotest.(check (list string)) "to_list" [ "z"; "b" ] (Vec.to_list v);
  Alcotest.check_raises "oob" (Invalid_argument "Vec: index 5 out of bounds (len 2)")
    (fun () -> ignore (Vec.get v 5))

let test_heap_basics () =
  let h = Heap.create () in
  Alcotest.(check bool) "initially empty" true (Heap.is_empty h);
  Alcotest.(check (option (pair int int))) "pop empty" None (Heap.pop h);
  Heap.push h ~prio:5 50;
  Heap.push h ~prio:1 10;
  Heap.push h ~prio:3 30;
  Alcotest.(check int) "length" 3 (Heap.length h);
  Alcotest.(check (option (pair int int))) "min first" (Some (1, 10)) (Heap.pop h);
  Heap.push h ~prio:0 0;
  Alcotest.(check (option int)) "new min" (Some 0) (Heap.pop_item h);
  Alcotest.(check (option int)) "then 3" (Some 30) (Heap.pop_item h);
  Alcotest.(check (option int)) "then 5" (Some 50) (Heap.pop_item h);
  Alcotest.(check bool) "drained" true (Heap.is_empty h);
  Heap.push h ~prio:9 9;
  Heap.clear h;
  Alcotest.(check int) "clear" 0 (Heap.length h)

let prop_heap_model =
  (* interleaved pushes and pops agree with a sorted-list model: every pop
     returns a minimal-priority pending element, and nothing is lost *)
  QCheck.Test.make ~name:"heap vs sorted-list model"
    QCheck.(list_of_size Gen.(0 -- 60) (option (pair (int_bound 30) (int_bound 100))))
    (fun ops ->
      (* Some (prio, item) = push; None = pop *)
      let h = Heap.create ~capacity:1 () in
      let model = ref [] in
      List.for_all
        (fun op ->
          match op with
          | Some (prio, item) ->
            Heap.push h ~prio item;
            model := (prio, item) :: !model;
            true
          | None -> (
            match (Heap.pop h, !model) with
            | None, [] -> true
            | Some (p, _), pending ->
              let min_p = List.fold_left (fun a (q, _) -> min a q) max_int pending in
              if p <> min_p then false
              else begin
                (* the heap is not stable: remove any one pending entry with
                   that priority *)
                let removed = ref false in
                model :=
                  List.filter
                    (fun (q, _) ->
                      if (not !removed) && q = p then begin
                        removed := true;
                        false
                      end
                      else true)
                    pending;
                true
              end
            | None, _ :: _ -> false))
        ops
      && Heap.length h = List.length !model)

let prop_heap_drain_sorted =
  QCheck.Test.make ~name:"heap drains in priority order"
    QCheck.(list_of_size Gen.(0 -- 80) small_nat)
    (fun prios ->
      let h = Heap.create () in
      List.iteri (fun i p -> Heap.push h ~prio:p i) prios;
      let drained = ref [] in
      let rec go () =
        match Heap.pop h with
        | Some (p, _) ->
          drained := p :: !drained;
          go ()
        | None -> ()
      in
      go ();
      (* popped priorities, reversed = ascending; multiset = input *)
      List.rev !drained = List.sort compare prios)

let prop_uf_model =
  (* union-find agrees with a naive equivalence closure *)
  QCheck.Test.make ~name:"union-find vs naive closure"
    QCheck.(list_of_size Gen.(0 -- 30) (pair (int_bound 15) (int_bound 15)))
    (fun pairs ->
      let u = Uf.create 16 in
      List.iter (fun (a, b) -> ignore (Uf.union u a b)) pairs;
      (* naive: iterate closure *)
      let cls = Array.init 16 (fun i -> i) in
      let rec croot i = if cls.(i) = i then i else croot cls.(i) in
      List.iter
        (fun (a, b) ->
          let ra = croot a and rb = croot b in
          if ra <> rb then cls.(ra) <- rb)
        pairs;
      let ok = ref true in
      for i = 0 to 15 do
        for j = 0 to 15 do
          if Uf.same u i j <> (croot i = croot j) then ok := false
        done
      done;
      !ok)

(* -- Arena flat stores ----------------------------------------------------- *)

let test_arena_buf () =
  let open Fsam_dsa.Arena in
  let b = Buf.create ~capacity:2 () in
  for i = 0 to 99 do
    Alcotest.(check int) "push returns index" i (Buf.push b (i * 3))
  done;
  Alcotest.(check int) "length" 100 (Buf.length b);
  Alcotest.(check int) "get" 42 (Buf.get b 14);
  Buf.set b 14 7;
  Alcotest.(check int) "set/get" 7 (Buf.get b 14);
  let a = Buf.to_array b in
  Alcotest.(check int) "to_array length" 100 (Array.length a);
  Alcotest.(check int) "to_array content" 297 a.(99)

let prop_arena_intmap_model =
  QCheck.Test.make ~count:100 ~name:"Arena.Intmap behaves like Hashtbl"
    QCheck.(list (pair (int_bound 1000) (int_bound 10_000)))
    (fun ops ->
      let open Fsam_dsa.Arena in
      let m = Intmap.create ~capacity:2 () in
      let h = Hashtbl.create 16 in
      List.iter
        (fun (k, v) ->
          Intmap.set m ~key:k v;
          Hashtbl.replace h k v)
        ops;
      Intmap.length m = Hashtbl.length h
      && List.for_all
           (fun (k, _) ->
             Intmap.find m ~key:k ~default:(-1) = Hashtbl.find h k
             && Intmap.find_or_add m ~key:k (fun () -> -2) = Hashtbl.find h k)
           ops
      && Intmap.find m ~key:5000 ~default:(-1) = Option.value ~default:(-1) (Hashtbl.find_opt h 5000)
      &&
      (* iter visits exactly the live bindings *)
      let seen = Hashtbl.create 16 in
      Intmap.iter m (fun ~key v -> Hashtbl.replace seen key v);
      Hashtbl.length seen = Hashtbl.length h
      && Hashtbl.fold (fun k v acc -> acc && Hashtbl.find_opt seen k = Some v) h true)

(* Arena.Dyn (the store the SVFG patcher splices) vs a Hashtbl of lists:
   [add] appends at the row tail, [remove] tombstones the first live equal
   cell, and live iteration must preserve insertion order through any
   interleaving — plus [copy] must detach. Ops: (k, v, true) = add,
   (k, v, false) = remove. *)
let prop_arena_dyn_model =
  QCheck.Test.make ~count:200 ~name:"Arena.Dyn behaves like Hashtbl of rows"
    QCheck.(list (triple (int_bound 40) (int_bound 20) bool))
    (fun ops ->
      let open Fsam_dsa.Arena in
      let d = Dyn.create ~capacity:2 () in
      let h : (int, int list) Hashtbl.t = Hashtbl.create 16 in
      let row k = Option.value ~default:[] (Hashtbl.find_opt h k) in
      let removed = ref 0 and added = ref 0 in
      List.iter
        (fun (k, v, is_add) ->
          if is_add then begin
            Dyn.add d ~key:k v;
            Hashtbl.replace h k (row k @ [ v ]);
            incr added
          end
          else begin
            let present = List.mem v (row k) in
            let hit = Dyn.remove d ~key:k v in
            if hit <> present then failwith "remove hit disagrees with model";
            if present then begin
              let dropped = ref false in
              Hashtbl.replace h k
                (List.filter
                   (fun x ->
                     if x = v && not !dropped then (
                       dropped := true;
                       false)
                     else true)
                   (row k));
              incr removed
            end
          end)
        ops;
      let keys = List.sort_uniq compare (List.map (fun (k, _, _) -> k) ops) in
      let rows_agree d =
        List.for_all
          (fun k ->
            Dyn.row_list d k = row k
            && (let got = ref [] in
                Dyn.iter_row d k (fun v -> got := v :: !got);
                List.rev !got = row k)
            && Dyn.exists_row d k (fun v -> v mod 3 = 0)
               = List.exists (fun v -> v mod 3 = 0) (row k))
          keys
      in
      let live_total = List.fold_left (fun acc k -> acc + List.length (row k)) 0 keys in
      Dyn.live d = live_total
      && Dyn.tombstones d = !removed
      && rows_agree d
      &&
      (* a copy detaches: mutating the original must not leak through *)
      let c = Dyn.copy d in
      List.iter (fun k -> Dyn.add d ~key:k 999) keys;
      rows_agree c && Dyn.live c = live_total)

let prop_arena_csr_model =
  QCheck.Test.make ~count:100 ~name:"Arena.Csr matches list adjacency"
    QCheck.(pair (1 -- 20) (list (pair (int_bound 19) (int_bound 50))))
    (fun (n_rows, edges) ->
      let open Fsam_dsa.Arena in
      let edges = List.filter (fun (r, _) -> r < n_rows) edges in
      let csr = Csr.build ~n_rows (fun emit -> List.iter (fun (r, v) -> emit ~row:r ~value:v) edges) in
      let row r = List.filter_map (fun (r', v) -> if r' = r then Some v else None) edges in
      Csr.n_rows csr = n_rows
      && List.for_all
           (fun r ->
             let expect = row r in
             let got = ref [] in
             Csr.iter_row csr r (fun v -> got := v :: !got);
             Csr.degree csr r = List.length expect
             && List.sort compare !got = List.sort compare expect
             && List.for_all (fun v -> Csr.mem_row csr r v) expect
             && Csr.mem_row csr r 77 = List.mem 77 expect
             && Csr.exists_row csr r (fun v -> v mod 7 = 0)
                = List.exists (fun v -> v mod 7 = 0) expect)
           (List.init n_rows Fun.id))

let suite =
  [
    Alcotest.test_case "bitvec basics" `Quick test_bitvec_basics;
    Alcotest.test_case "arena buf" `Quick test_arena_buf;
    QCheck_alcotest.to_alcotest prop_arena_intmap_model;
    QCheck_alcotest.to_alcotest prop_arena_dyn_model;
    QCheck_alcotest.to_alcotest prop_arena_csr_model;
    Alcotest.test_case "bitvec union" `Quick test_bitvec_union;
    Alcotest.test_case "bitvec iter/clear" `Quick test_bitvec_iter;
    Alcotest.test_case "union-find" `Quick test_uf;
    Alcotest.test_case "union-find union_to/grow" `Quick test_uf_union_to;
    Alcotest.test_case "vec" `Quick test_vec;
    Alcotest.test_case "heap basics" `Quick test_heap_basics;
    QCheck_alcotest.to_alcotest prop_heap_model;
    QCheck_alcotest.to_alcotest prop_heap_drain_sorted;
    QCheck_alcotest.to_alcotest prop_uf_model;
  ]
