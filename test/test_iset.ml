open Fsam_dsa

let set = Alcotest.testable Iset.pp Iset.equal

let test_basics () =
  let s = Iset.of_list [ 3; 1; 4; 1; 5; 9; 2; 6 ] in
  Alcotest.(check int) "cardinal" 7 (Iset.cardinal s);
  Alcotest.(check (list int)) "sorted elements" [ 1; 2; 3; 4; 5; 6; 9 ] (Iset.elements s);
  Alcotest.(check bool) "mem 4" true (Iset.mem 4 s);
  Alcotest.(check bool) "mem 7" false (Iset.mem 7 s);
  Alcotest.(check set) "remove" (Iset.of_list [ 1; 2; 3; 4; 5; 6 ]) (Iset.remove 9 s);
  Alcotest.(check set) "remove absent" s (Iset.remove 100 s);
  Alcotest.(check bool) "empty" true (Iset.is_empty Iset.empty);
  Alcotest.(check (option int)) "choose empty" None (Iset.choose Iset.empty);
  Alcotest.(check (option int)) "min_elt" (Some 1) (Iset.min_elt s)

let test_algebra () =
  let a = Iset.of_list [ 1; 2; 3; 4 ] and b = Iset.of_list [ 3; 4; 5; 6 ] in
  Alcotest.(check set) "union" (Iset.of_list [ 1; 2; 3; 4; 5; 6 ]) (Iset.union a b);
  Alcotest.(check set) "inter" (Iset.of_list [ 3; 4 ]) (Iset.inter a b);
  Alcotest.(check set) "diff" (Iset.of_list [ 1; 2 ]) (Iset.diff a b);
  Alcotest.(check bool) "subset yes" true (Iset.subset (Iset.of_list [ 2; 3 ]) a);
  Alcotest.(check bool) "subset no" false (Iset.subset b a);
  Alcotest.(check bool) "disjoint no" false (Iset.disjoint a b);
  Alcotest.(check bool) "disjoint yes" true (Iset.disjoint a (Iset.of_list [ 7; 8 ]))

let test_union_physical_identity () =
  let a = Iset.of_list [ 1; 5; 9; 200; 4096 ] in
  let b = Iset.of_list [ 5; 200 ] in
  Alcotest.(check bool) "union a b == a when b subset a" true (Iset.union a b == a);
  Alcotest.(check bool) "union a empty == a" true (Iset.union a Iset.empty == a);
  let leaf = Iset.singleton 5 in
  Alcotest.(check bool) "leaf union leaf" true (Iset.equal leaf (Iset.union leaf (Iset.singleton 5)))

let test_large_sparse () =
  let s = ref Iset.empty in
  for i = 0 to 999 do
    s := Iset.add (i * 1021) !s
  done;
  Alcotest.(check int) "cardinal 1000" 1000 (Iset.cardinal !s);
  for i = 0 to 999 do
    assert (Iset.mem (i * 1021) !s)
  done;
  Alcotest.(check bool) "no spurious member" false (Iset.mem 1 !s)

(* Property tests against a reference model (sorted int lists). *)

let model_of s = Iset.elements s
let sorted_dedup l = List.sort_uniq compare l

let gen_list = QCheck.(list_of_size Gen.(0 -- 40) (int_bound 200))

let prop_of_list_elements =
  QCheck.Test.make ~name:"of_list/elements round-trip" gen_list (fun l ->
      model_of (Iset.of_list l) = sorted_dedup l)

let prop_union =
  QCheck.Test.make ~name:"union agrees with model" (QCheck.pair gen_list gen_list)
    (fun (a, b) ->
      model_of (Iset.union (Iset.of_list a) (Iset.of_list b)) = sorted_dedup (a @ b))

let prop_inter =
  QCheck.Test.make ~name:"inter agrees with model" (QCheck.pair gen_list gen_list)
    (fun (a, b) ->
      let sa = sorted_dedup a and sb = sorted_dedup b in
      model_of (Iset.inter (Iset.of_list a) (Iset.of_list b))
      = List.filter (fun x -> List.mem x sb) sa)

let prop_diff =
  QCheck.Test.make ~name:"diff agrees with model" (QCheck.pair gen_list gen_list)
    (fun (a, b) ->
      let sa = sorted_dedup a and sb = sorted_dedup b in
      model_of (Iset.diff (Iset.of_list a) (Iset.of_list b))
      = List.filter (fun x -> not (List.mem x sb)) sa)

let prop_subset =
  QCheck.Test.make ~name:"subset agrees with model" (QCheck.pair gen_list gen_list)
    (fun (a, b) ->
      let sa = sorted_dedup a and sb = sorted_dedup b in
      Iset.subset (Iset.of_list a) (Iset.of_list b)
      = List.for_all (fun x -> List.mem x sb) sa)

let prop_union_idempotent_physical =
  QCheck.Test.make ~name:"union s s == s physically" gen_list (fun l ->
      let s = Iset.of_list l in
      Iset.union s s == s)

let prop_remove =
  QCheck.Test.make ~name:"remove agrees with model" (QCheck.pair QCheck.(int_bound 200) gen_list)
    (fun (x, l) ->
      model_of (Iset.remove x (Iset.of_list l))
      = List.filter (fun y -> y <> x) (sorted_dedup l))

let prop_disjoint =
  QCheck.Test.make ~name:"disjoint iff empty inter" (QCheck.pair gen_list gen_list)
    (fun (a, b) ->
      let sa = Iset.of_list a and sb = Iset.of_list b in
      Iset.disjoint sa sb = Iset.is_empty (Iset.inter sa sb))

let prop_fold_iter_agree =
  QCheck.Test.make ~name:"fold and iter agree" gen_list (fun l ->
      let s = Iset.of_list l in
      let via_fold = Iset.fold (fun x acc -> x :: acc) s [] in
      let via_iter = ref [] in
      Iset.iter (fun x -> via_iter := x :: !via_iter) s;
      via_fold = !via_iter)

let prop_filter_model =
  QCheck.Test.make ~name:"filter agrees with model" gen_list (fun l ->
      let s = Iset.of_list l in
      model_of (Iset.filter (fun x -> x mod 3 = 0) s)
      = List.filter (fun x -> x mod 3 = 0) (sorted_dedup l))

let prop_exists_forall =
  QCheck.Test.make ~name:"exists/for_all duality" gen_list (fun l ->
      let s = Iset.of_list l in
      let p x = x mod 2 = 0 in
      Iset.exists p s = not (Iset.for_all (fun x -> not (p x)) s))

let prop_compare_total_order =
  QCheck.Test.make ~name:"compare consistent with equal"
    (QCheck.pair gen_list gen_list) (fun (a, b) ->
      let sa = Iset.of_list a and sb = Iset.of_list b in
      Iset.compare sa sb = 0 = Iset.equal sa sb
      && Iset.compare sa sb = -Iset.compare sb sa)

(* Hash-consing: structurally equal sets are one physical node, however they
   were built, so equal is pointer comparison and hash/compare are O(1). *)

let prop_hashcons_construction_order =
  QCheck.Test.make ~name:"hash-consing: of_list order-independent (==)" gen_list
    (fun l ->
      let a = Iset.of_list l and b = Iset.of_list (List.rev l) in
      a == b && List.fold_left (fun s x -> Iset.add x s) Iset.empty l == a)

let prop_hashcons_union_physical =
  QCheck.Test.make ~name:"hash-consing: equal unions are physically equal"
    (QCheck.pair gen_list gen_list) (fun (la, lb) ->
      let a = Iset.of_list la and b = Iset.of_list lb in
      Iset.union a b == Iset.union b a
      && Iset.union a b == Iset.of_list (la @ lb)
      && Iset.equal (Iset.union a b) (Iset.union b a))

let prop_hashcons_hash_stable =
  (* equal sets agree on hash and compare; distinct sets may collide on hash
     but never compare to 0 *)
  QCheck.Test.make ~name:"hash-consing: hash/compare consistent with equal"
    (QCheck.pair gen_list gen_list) (fun (la, lb) ->
      let a = Iset.of_list la and b = Iset.of_list lb in
      if Iset.equal a b then Iset.hash a = Iset.hash b && Iset.compare a b = 0
      else Iset.compare a b <> 0)

let prop_as_singleton =
  QCheck.Test.make ~name:"as_singleton agrees with model" gen_list (fun l ->
      let s = Iset.of_list l in
      match (Iset.as_singleton s, sorted_dedup l) with
      | Some x, [ y ] -> x = y
      | None, ([] | _ :: _ :: _) -> true
      | _ -> false)

let prop_cardinal =
  QCheck.Test.make ~name:"cardinal = model length" gen_list (fun l ->
      Iset.cardinal (Iset.of_list l) = List.length (sorted_dedup l))

let prop_min_elt =
  QCheck.Test.make ~name:"min_elt is the model minimum" gen_list (fun l ->
      match (Iset.min_elt (Iset.of_list l), sorted_dedup l) with
      | None, [] -> true
      | Some m, x :: _ -> m = x
      | _ -> false)

let suite =
  [
    Alcotest.test_case "basics" `Quick test_basics;
    QCheck_alcotest.to_alcotest prop_fold_iter_agree;
    QCheck_alcotest.to_alcotest prop_filter_model;
    QCheck_alcotest.to_alcotest prop_exists_forall;
    QCheck_alcotest.to_alcotest prop_compare_total_order;
    QCheck_alcotest.to_alcotest prop_cardinal;
    QCheck_alcotest.to_alcotest prop_min_elt;
    Alcotest.test_case "algebra" `Quick test_algebra;
    Alcotest.test_case "union physical identity" `Quick test_union_physical_identity;
    Alcotest.test_case "large sparse" `Quick test_large_sparse;
    QCheck_alcotest.to_alcotest prop_of_list_elements;
    QCheck_alcotest.to_alcotest prop_union;
    QCheck_alcotest.to_alcotest prop_inter;
    QCheck_alcotest.to_alcotest prop_diff;
    QCheck_alcotest.to_alcotest prop_subset;
    QCheck_alcotest.to_alcotest prop_union_idempotent_physical;
    QCheck_alcotest.to_alcotest prop_hashcons_construction_order;
    QCheck_alcotest.to_alcotest prop_hashcons_union_physical;
    QCheck_alcotest.to_alcotest prop_hashcons_hash_stable;
    QCheck_alcotest.to_alcotest prop_as_singleton;
    QCheck_alcotest.to_alcotest prop_remove;
    QCheck_alcotest.to_alcotest prop_disjoint;
  ]
