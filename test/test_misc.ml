(* Additional coverage: NonSparse internals, sparse solver queries, the
   interpreter's determinism, context-depth limiting, and measurement. *)

open Fsam_ir
module B = Builder
module D = Fsam_core.Driver
module NS = Fsam_core.Nonsparse
module A = Fsam_andersen.Solver
module Mta = Fsam_mta

let build_seq () =
  (* p = &x; *p = a(oa); *p = bb(ob); c = *p *)
  let b = B.create () in
  let main = B.declare b "main" ~params:[] in
  let x = B.stack_obj b ~owner:main "x" in
  let oa = B.stack_obj b ~owner:main "oa" and ob = B.stack_obj b ~owner:main "ob" in
  let p = B.fresh_var b "p"
  and a = B.fresh_var b "a"
  and bb = B.fresh_var b "bb"
  and c = B.fresh_var b "c" in
  B.define b main (fun fb ->
      B.addr_of fb p x;
      B.addr_of fb a oa;
      B.addr_of fb bb ob;
      B.store fb p a;
      B.store fb p bb;
      B.load fb c p);
  (B.finish b, x, oa, ob, c)

let test_nonsparse_strong_update () =
  let prog, _x, _oa, ob, c = build_seq () in
  match D.run_nonsparse prog with
  | NS.Done ns, _ ->
    Alcotest.(check bool) "nonsparse kills too" true
      (Fsam_dsa.Iset.equal (NS.pt_top ns c) (Fsam_dsa.Iset.singleton ob))
  | NS.Timeout _, _ -> Alcotest.fail "timeout"

let test_nonsparse_per_point_graphs () =
  let prog, x, oa, ob, _c = build_seq () in
  let ast = A.run prog in
  let icfg = Mta.Icfg.build prog ast in
  let tm = Mta.Threads.build prog ast icfg in
  let pcg = Mta.Pcg.compute tm icfg in
  let singleton = Fsam_core.Singletons.compute prog ast tm icfg in
  match NS.solve prog ast icfg pcg ~singleton with
  | NS.Done ns ->
    (* before the second store (stmt 4), x holds oa; before the load
       (stmt 5), x holds ob only (strong update) *)
    let main = Prog.main_fid prog in
    let at i = NS.pt_obj_at ns (Prog.gid prog ~fid:main ~idx:i) x in
    Alcotest.(check bool) "x = {oa} before second store" true
      (Fsam_dsa.Iset.equal (at 4) (Fsam_dsa.Iset.singleton oa));
    Alcotest.(check bool) "x = {ob} before load" true
      (Fsam_dsa.Iset.equal (at 5) (Fsam_dsa.Iset.singleton ob))
  | NS.Timeout _ -> Alcotest.fail "timeout"

let test_nonsparse_tiny_budget_times_out () =
  (* a big enough program with a ~zero budget must report Timeout *)
  let spec = Option.get (Fsam_workloads.Suite.find "radiosity") in
  let prog = spec.Fsam_workloads.Suite.build 500 in
  let config = { D.default_config with nonsparse_budget = 0.000001 } in
  match D.run_nonsparse ~config prog with
  | NS.Timeout _, _ -> ()
  | NS.Done _, _ -> Alcotest.fail "expected OOT with zero budget"

let test_sparse_pt_at_store () =
  let prog, x, _oa, ob, _c = build_seq () in
  let d = D.run prog in
  let main = Prog.main_fid prog in
  (* the second store's out-state for x is exactly {ob} *)
  let g = Prog.gid prog ~fid:main ~idx:4 in
  Alcotest.(check bool) "pt_at_store second" true
    (Fsam_dsa.Iset.equal
       (Fsam_core.Sparse.pt_at_store d.D.sparse g x)
       (Fsam_dsa.Iset.singleton ob))

let test_interp_deterministic () =
  let prog = Fsam_workloads.Rand_prog.generate ~seed:3 ~size:30 () in
  let r1 = Fsam_interp.Interp.run ~seed:42 prog in
  let r2 = Fsam_interp.Interp.run ~seed:42 prog in
  Alcotest.(check int) "same steps" r1.Fsam_interp.Interp.steps r2.Fsam_interp.Interp.steps;
  Alcotest.(check int) "same observations"
    (List.length r1.Fsam_interp.Interp.observations)
    (List.length r2.Fsam_interp.Interp.observations)

let test_ctx_depth_limit_terminates () =
  (* a deep non-recursive call chain with a tiny context bound must still
     terminate and produce sound (possibly coarse) results *)
  let b = B.create () in
  let main = B.declare b "main" ~params:[] in
  let depth = 12 in
  let fns = List.init depth (fun i -> B.declare b (Printf.sprintf "f%d" i) ~params:[ "a" ]) in
  List.iteri
    (fun i f ->
      B.define b f (fun fb ->
          if i + 1 < depth then B.call fb (Stmt.Direct (List.nth fns (i + 1))) [ B.param b f 0 ]
          else B.store fb (B.param b f 0) (B.param b f 0)))
    fns;
  let x = B.stack_obj b ~owner:main "x" in
  let p = B.fresh_var b "p" and c = B.fresh_var b "c" in
  B.define b main (fun fb ->
      B.addr_of fb p x;
      B.call fb (Stmt.Direct (List.hd fns)) [ p ];
      B.load fb c p);
  let prog = B.finish b in
  let d = D.run ~config:{ D.default_config with max_ctx_depth = 3 } prog in
  Alcotest.(check (list string)) "deep chain effect visible" [ "x" ] (D.pt_names d c)

let test_mhp_stats () =
  let prog = Fsam_workloads.Rand_prog.generate ~seed:5 ~size:20 () in
  let ast = A.run prog in
  let icfg = Mta.Icfg.build prog ast in
  let tm = Mta.Threads.build prog ast icfg in
  let mhp = Mta.Mhp.compute tm in
  Alcotest.(check bool) "iterations positive" true (Mta.Mhp.n_iterations mhp > 0);
  Alcotest.(check bool) "facts recorded" true (Mta.Mhp.total_fact_size mhp > 0)

let test_measure () =
  let m = Fsam_core.Measure.run (fun () -> Array.make 100_000 0) in
  Alcotest.(check bool) "wall time non-negative" true
    (m.Fsam_core.Measure.wall_seconds >= 0.);
  Alcotest.(check bool) "cpu time non-negative" true
    (m.Fsam_core.Measure.cpu_seconds >= 0.);
  Alcotest.(check bool) "allocation observed" true (m.Fsam_core.Measure.live_mb > 0.2);
  Alcotest.(check int) "value returned" 100_000 (Array.length m.Fsam_core.Measure.value)

let test_store_store_race () =
  let b = B.create () in
  let main = B.declare b "main" ~params:[] in
  let w = B.declare b "w" ~params:[ "p"; "q" ] in
  B.define b w (fun fb -> B.store fb (B.param b w 0) (B.param b w 1));
  let x = B.stack_obj b ~owner:main "x" and y = B.stack_obj b ~owner:main "y" in
  let p = B.fresh_var b "p" and q = B.fresh_var b "q" in
  B.define b main (fun fb ->
      B.addr_of fb p x;
      B.addr_of fb q y;
      B.fork fb (Stmt.Direct w) [ p; q ];
      B.store fb p q);
  let d = D.run (B.finish b) in
  let races = Fsam_core.Races.detect d in
  Alcotest.(check bool) "write-write race found" true
    (List.exists (fun r -> r.Fsam_core.Races.both_writes) races)

let test_dot_exports () =
  let prog, _x, _oa, _ob, _c = build_seq () in
  let d = D.run prog in
  let svfg = Fsam_core.Dot.svfg d in
  Alcotest.(check bool) "svfg dot has digraph" true
    (String.length svfg > 20 && String.sub svfg 0 12 = "digraph svfg");
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "svfg mentions a store" true (contains svfg "*p");
  let cg = Fsam_core.Dot.call_graph d in
  Alcotest.(check bool) "callgraph has main" true (contains cg "main");
  let cfg = Fsam_core.Dot.cfg_of d (Prog.main_fid prog) in
  Alcotest.(check bool) "cfg has edges" true (contains cfg "->")

let suite =
  [
    Alcotest.test_case "dot exports" `Quick test_dot_exports;
    Alcotest.test_case "nonsparse strong update" `Quick test_nonsparse_strong_update;
    Alcotest.test_case "nonsparse per-point graphs" `Quick test_nonsparse_per_point_graphs;
    Alcotest.test_case "nonsparse OOT" `Quick test_nonsparse_tiny_budget_times_out;
    Alcotest.test_case "sparse pt_at_store" `Quick test_sparse_pt_at_store;
    Alcotest.test_case "interpreter deterministic" `Quick test_interp_deterministic;
    Alcotest.test_case "context depth limit" `Quick test_ctx_depth_limit_terminates;
    Alcotest.test_case "mhp stats" `Quick test_mhp_stats;
    Alcotest.test_case "measure" `Quick test_measure;
    Alcotest.test_case "store-store race" `Quick test_store_store_race;
  ]
