(* Execution-profiler tests:

   - Timeline rings: fixed-width wraparound, oldest-first readout;
   - Fsam_par integration: per-lane rings with correct chunk bounds,
     cross-domain merge events in lane order, absorption determinism;
   - observation-only: analysis results byte-identical with profiling on
     and off, and the profiled event stream deterministic at jobs=1 with
     per-item event counts identical across jobs 1/2/4;
   - convergence monitor: samples recorded with the documented interval;
   - histogram quantiles (p50/p95/p99) and the profile document's JSON
     round-trip (deterministic and qcheck-arbitrary). *)

module D = Fsam_core.Driver
module Obs = Fsam_obs
module Tl = Obs.Timeline
module P = Obs.Profile
module J = Obs.Json

let with_profiling f =
  P.set_enabled true;
  P.reset ();
  Fun.protect
    ~finally:(fun () ->
      P.set_enabled false;
      P.reset ())
    f

let word_count () =
  let spec = Option.get (Fsam_workloads.Suite.find "word_count") in
  spec.Fsam_workloads.Suite.build 40

(* full-size word_count: enough solver propagations (> 512) for the
   convergence monitor to take samples *)
let word_count_full () =
  let spec = Option.get (Fsam_workloads.Suite.find "word_count") in
  spec.Fsam_workloads.Suite.build spec.Fsam_workloads.Suite.scale

(* -- ring buffer ----------------------------------------------------------- *)

let test_ring_wraparound () =
  with_profiling (fun () ->
      let r = Tl.create_ring ~cap:8 ~region:"t" ~lane:0 () in
      for i = 0 to 19 do
        Tl.record r ~kind:Tl.k_item ~a:i ~b:(i * 2)
      done;
      Alcotest.(check int) "recorded" 20 (Tl.n_recorded r);
      Alcotest.(check int) "retained" 8 (Tl.n_events r);
      Alcotest.(check int) "dropped" 12 (Tl.dropped r);
      let keys = List.map (fun (_, _, a, _) -> a) (Tl.events r) in
      (* oldest-first: the 8 youngest events, in recording order *)
      Alcotest.(check (list int)) "oldest first" [ 12; 13; 14; 15; 16; 17; 18; 19 ] keys;
      List.iter
        (fun (_, k, a, b) ->
          Alcotest.(check int) "kind" Tl.k_item k;
          Alcotest.(check int) "payload" (a * 2) b)
        (Tl.events r);
      (* no wraparound below cap *)
      let r2 = Tl.create_ring ~cap:8 ~region:"t" ~lane:1 () in
      Tl.record r2 ~kind:Tl.k_item ~a:7 ~b:0;
      Alcotest.(check int) "no drop" 0 (Tl.dropped r2);
      Alcotest.(check int) "one event" 1 (Tl.n_events r2))

(* -- cross-domain merge ordering ------------------------------------------- *)

let test_par_merge_ordering () =
  with_profiling (fun () ->
      let n = 103 and jobs = 4 in
      let sums =
        Fsam_par.run_chunks ~label:"tmerge" ~strategy:Fsam_par.Chunked ~jobs ~n
          (fun ~lo ~hi ->
            let s = ref 0 in
            for i = lo to hi - 1 do
              Tl.emit ~kind:Tl.k_item ~a:i ~b:0;
              s := !s + i
            done;
            !s)
      in
      Alcotest.(check int) "work done" (n * (n - 1) / 2) (List.fold_left ( + ) 0 sums);
      let rings =
        List.filter (fun (r : Tl.ring) -> r.Tl.region = "tmerge") (Tl.collected ())
      in
      Alcotest.(check int) "one ring per lane" jobs (List.length rings);
      Alcotest.(check (list int)) "lane order" [ 0; 1; 2; 3 ]
        (List.map (fun (r : Tl.ring) -> r.Tl.lane) rings);
      (* chunk bounds are contiguous, in lane order, covering [0, n) *)
      let bounds =
        List.map
          (fun r ->
            match List.find_opt (fun (_, k, _, _) -> k = Tl.k_chunk_start) (Tl.events r) with
            | Some (_, _, lo, hi) -> (lo, hi)
            | None -> Alcotest.fail "missing chunk_start")
          rings
      in
      let last =
        List.fold_left
          (fun prev (lo, hi) ->
            Alcotest.(check int) "contiguous" prev lo;
            hi)
          0 bounds
      in
      Alcotest.(check int) "covers n" n last;
      (* every lane carries exactly its range's item events *)
      List.iter2
        (fun (r : Tl.ring) (lo, hi) ->
          let items =
            List.filter_map
              (fun (_, k, a, _) -> if k = Tl.k_item then Some a else None)
              (Tl.events r)
          in
          Alcotest.(check (list int)) "lane items" (List.init (hi - lo) (fun i -> lo + i))
            items)
        rings bounds;
      (* lane 0 recorded one merge event per worker, in join order *)
      let merges =
        List.filter_map
          (fun (_, k, a, _) -> if k = Tl.k_merge then Some a else None)
          (Tl.events (List.hd rings))
      in
      Alcotest.(check (list int)) "merge order" [ 1; 2; 3 ] merges)

(* -- determinism ----------------------------------------------------------- *)

let timeline_signature () =
  List.map
    (fun (r : Tl.ring) ->
      ( r.Tl.region,
        r.Tl.lane,
        List.map (fun (_, k, a, b) -> (k, a, b)) (Tl.events r) ))
    (Tl.collected ())

(* The memo hit/miss fields depend on the union-memo's table state left by
   earlier in-process runs (tags differ per run), so a same-process replay
   compares everything but those. *)
let sample_signature s = (s.P.s_prop, s.P.s_depth, s.P.s_facts, s.P.s_facts_delta, s.P.s_rank, s.P.s_scc_size)

let test_profile_deterministic_j1 () =
  let prog = word_count_full () in
  let config = { D.default_config with profile = true; jobs = 1 } in
  let run () =
    let d = D.run ~config prog in
    let sig_ = timeline_signature () in
    let samples = List.map sample_signature (P.samples ()) in
    (d, sig_, samples)
  in
  let _, sig1, samples1 = run () in
  let _, sig2, samples2 = run () in
  Alcotest.(check bool) "timeline signature deterministic" true (sig1 = sig2);
  Alcotest.(check bool) "convergence samples deterministic" true (samples1 = samples2);
  Alcotest.(check bool) "samples recorded" true (samples1 <> []);
  Alcotest.(check int) "interval" 512 (P.sample_interval ());
  List.iter
    (fun (p, _, _, _, _, _) ->
      Alcotest.(check int) "sampled on the interval" 0 (p mod 512))
    samples1;
  P.set_enabled false;
  P.reset ()

let test_item_events_identical_across_jobs () =
  let prog = word_count () in
  let region_items region =
    List.concat_map
      (fun (r : Tl.ring) ->
        if r.Tl.region = region then
          List.filter_map
            (fun (_, k, a, _) -> if k = Tl.k_item then Some a else None)
            (Tl.events r)
        else [])
      (Tl.collected ())
  in
  let per_jobs jobs =
    let d = D.run ~config:{ D.default_config with profile = true; jobs } prog in
    let svfg_items = List.sort compare (region_items "svfg.pairs") in
    let races = Fsam_core.Races.detect ~jobs d in
    (svfg_items, races)
  in
  let base_items, base_races = per_jobs 1 in
  Alcotest.(check bool) "svfg items recorded" true (base_items <> []);
  List.iter
    (fun jobs ->
      let items, races = per_jobs jobs in
      Alcotest.(check bool)
        (Printf.sprintf "svfg item keys identical at jobs=%d" jobs)
        true (items = base_items);
      Alcotest.(check bool)
        (Printf.sprintf "races identical at jobs=%d" jobs)
        true (races = base_races))
    [ 2; 4 ];
  P.set_enabled false;
  P.reset ()

let test_results_identical_profiling_on_off () =
  let prog = word_count () in
  let snapshot profile =
    let d = D.run ~config:{ D.default_config with profile } prog in
    let pts =
      List.init (Fsam_ir.Prog.n_vars prog) (fun v -> D.pt_names d v)
    in
    let races =
      List.map
        (Format.asprintf "%a" (Fsam_core.Races.pp_race d))
        (Fsam_core.Races.detect ~jobs:1 d)
    in
    (pts, races)
  in
  let off = snapshot false in
  let on = snapshot true in
  Alcotest.(check bool) "results identical profiling on/off" true (off = on);
  P.set_enabled false;
  P.reset ()

(* -- quantiles -------------------------------------------------------------- *)

let test_histogram_quantiles () =
  Obs.Metrics.reset ();
  let h = Obs.Metrics.histogram "q.test" in
  Alcotest.(check int) "empty p50" 0 (Obs.Metrics.quantile h 0.50);
  List.iter (fun v -> Obs.Metrics.observe h v) [ 1; 2; 3; 4; 5; 6; 7; 8 ];
  (* buckets: 1 -> le 1, 2 -> le 2, {3,4} -> le 4, {5..8} -> le 8 *)
  Alcotest.(check int) "p50" 4 (Obs.Metrics.quantile h 0.50);
  Alcotest.(check int) "p95" 8 (Obs.Metrics.quantile h 0.95);
  Alcotest.(check int) "p99" 8 (Obs.Metrics.quantile h 0.99);
  let h1 = Obs.Metrics.histogram "q.ones" in
  for _ = 1 to 10 do
    Obs.Metrics.observe h1 1
  done;
  Alcotest.(check int) "all-ones p99" 1 (Obs.Metrics.quantile h1 0.99);
  (* the summaries land in the exported document *)
  (match J.member "histograms" (Obs.Metrics.to_json ()) with
  | Some (J.Obj hs) ->
    let doc = List.assoc "q.test" hs in
    Alcotest.(check bool) "p50 exported" true (J.member "p50" doc = Some (J.Int 4));
    Alcotest.(check bool) "p95 exported" true (J.member "p95" doc = Some (J.Int 8));
    Alcotest.(check bool) "p99 exported" true (J.member "p99" doc = Some (J.Int 8))
  | _ -> Alcotest.fail "histograms missing from metrics document");
  Obs.Metrics.reset ()

(* -- profile document JSON -------------------------------------------------- *)

let roundtrip doc =
  match J.of_string (J.to_string doc) with
  | Ok parsed -> J.equal doc parsed
  | Error e -> Alcotest.failf "parse error: %s" e

let test_profile_doc_roundtrip () =
  (* a real profiled run: rings, samples, the lot *)
  let prog = word_count () in
  ignore (D.run ~config:{ D.default_config with profile = true; jobs = 2 } prog);
  let doc = P.to_json () in
  Alcotest.(check bool) "schema" true
    (J.member "schema" doc = Some (J.String P.schema));
  Alcotest.(check bool) "real profile round-trips" true (roundtrip doc);
  P.set_enabled false;
  P.reset ()

let qcheck_profile_doc_roundtrip =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"profile document round-trips arbitrary state" ~count:50
       QCheck.(
         pair
           (small_list (array_of_size (QCheck.Gen.return 8) small_nat))
           (small_list (array_of_size (QCheck.Gen.return 4) small_nat)))
       (fun (samples, stalls) ->
         P.set_enabled true;
         P.reset ();
         Fun.protect
           ~finally:(fun () ->
             P.set_enabled false;
             P.reset ())
           (fun () ->
             List.iter
               (fun a ->
                 P.add_sample
                   {
                     P.s_prop = a.(0);
                     s_depth = a.(1);
                     s_facts = a.(2);
                     s_facts_delta = a.(3);
                     s_memo_hits = a.(4);
                     s_memo_misses = a.(5);
                     s_rank = a.(6);
                     s_scc_size = a.(7);
                   })
               samples;
             List.iter
               (fun a ->
                 P.add_stall
                   {
                     P.st_prop = a.(0);
                     st_samples = a.(1);
                     st_rank = a.(2);
                     st_scc_size = a.(3);
                   })
               stalls;
             Tl.with_ring ~cap:16 ~region:"qr" ~lane:0 (fun () ->
                 List.iteri
                   (fun i a ->
                     Tl.emit ~kind:Tl.k_item ~a:i ~b:(Array.fold_left ( + ) 0 a))
                   samples);
             roundtrip (P.to_json ()))))

let suite =
  [
    Alcotest.test_case "ring wraparound" `Quick test_ring_wraparound;
    Alcotest.test_case "par merge ordering" `Quick test_par_merge_ordering;
    Alcotest.test_case "profile deterministic at jobs=1" `Quick
      test_profile_deterministic_j1;
    Alcotest.test_case "item events identical across jobs" `Quick
      test_item_events_identical_across_jobs;
    Alcotest.test_case "results identical profiling on/off" `Quick
      test_results_identical_profiling_on_off;
    Alcotest.test_case "histogram quantiles" `Quick test_histogram_quantiles;
    Alcotest.test_case "profile document round-trip" `Quick test_profile_doc_roundtrip;
    qcheck_profile_doc_roundtrip;
  ]
