(* Domain-parallel layer tests:

   - Fsam_par.run_chunks: exact range decomposition, ordered merge, serial
     fallback;
   - Iset domain-safety: concurrent union/inter/add from 4 domains preserve
     the hash-consing invariants (structurally equal sets are physically
     equal across domains, [hash]/[compare] consistent with [equal]);
   - client determinism: Races/Leaks/Deadlocks reports and the MHP facts
     are identical for jobs ∈ {1, 2, 4} on random MiniC programs and on
     random IR programs. *)

module D = Fsam_core.Driver
module Iset = Fsam_dsa.Iset

(* -- Fsam_par ------------------------------------------------------------- *)

let test_run_chunks_decomposition () =
  List.iter
    (fun (n, jobs) ->
      let chunks =
        Fsam_par.run_chunks ~strategy:Fsam_par.Chunked ~jobs ~n (fun ~lo ~hi -> (lo, hi))
      in
      (* contiguous cover of [0, n) in order, sizes differing by <= 1 *)
      let expected_k = max 1 (min jobs n) in
      Alcotest.(check int)
        (Printf.sprintf "n=%d jobs=%d: chunk count" n jobs)
        expected_k (List.length chunks);
      let last =
        List.fold_left
          (fun prev (lo, hi) ->
            Alcotest.(check int) "contiguous" prev lo;
            Alcotest.(check bool) "non-negative size" true (hi >= lo);
            hi)
          0 chunks
      in
      Alcotest.(check int) "covers n" n last;
      let sizes = List.map (fun (lo, hi) -> hi - lo) chunks in
      let mx = List.fold_left max 0 sizes and mn = List.fold_left min n sizes in
      if n >= expected_k then
        Alcotest.(check bool) "balanced" true (mx - mn <= 1))
    [ (0, 1); (0, 4); (1, 4); (10, 3); (10, 1); (3, 8); (1000, 4); (7, 7) ]

let test_run_chunks_ordered_merge () =
  (* concatenating per-chunk accumulators in chunk order must equal the
     serial left-to-right traversal, for any jobs value and both
     strategies; the adaptive run uses a tiny cutoff and skewed weights so
     the work-stealing path actually engages *)
  let n = 237 in
  let serial = List.init n (fun i -> i * i) in
  let body ~lo ~hi =
    List.init (hi - lo) (fun k ->
        let i = lo + k in
        i * i)
  in
  List.iter
    (fun jobs ->
      List.iter
        (fun (name, run) ->
          Alcotest.(check (list int))
            (Printf.sprintf "%s jobs=%d merge" name jobs)
            serial
            (List.concat (run jobs)))
        [
          ("chunked", fun jobs -> Fsam_par.run_chunks ~strategy:Fsam_par.Chunked ~jobs ~n body);
          ( "adaptive",
            fun jobs ->
              Fsam_par.run_chunks ~strategy:Fsam_par.Adaptive ~cutoff:16
                ~weight:(fun i -> 1 + (i mod 7))
                ~jobs ~n body );
        ])
    [ 1; 2; 3; 4; 8 ]

let test_run_chunks_serial_path () =
  (* jobs=1 must run in the calling domain (no spawn): observable via a
     mutable cell that a spawned domain could not safely share *)
  let self = Domain.self () in
  let ran_in = ref None in
  ignore (Fsam_par.run_chunks ~jobs:1 ~n:5 (fun ~lo:_ ~hi:_ -> ran_in := Some (Domain.self ())));
  Alcotest.(check bool) "jobs=1 stays on the calling domain" true (!ran_in = Some self);
  (* sub-cutoff work stays on the calling domain even at jobs=4 *)
  let lanes = ref [] in
  ignore
    (Fsam_par.run_chunks ~strategy:Fsam_par.Adaptive ~jobs:4 ~n:64 (fun ~lo:_ ~hi:_ ->
         lanes := Domain.self () :: !lanes));
  Alcotest.(check bool) "sub-cutoff jobs=4 stays on the calling domain" true
    (!lanes = [ self ])

(* -- adaptive plan and cutoff ---------------------------------------------- *)

let test_plan_invariants () =
  (* boundaries cover [0, n) monotonically; below-cutoff plans are the
     single serial block; the block count respects the caps *)
  List.iter
    (fun (n, cutoff, wf) ->
      let bounds = Fsam_par.plan ~weight:wf ~cutoff ~n () in
      let nb = Array.length bounds - 1 in
      Alcotest.(check int) "starts at 0" 0 bounds.(0);
      Alcotest.(check int) "ends at n" n bounds.(nb);
      Array.iteri
        (fun i b -> if i > 0 then Alcotest.(check bool) "monotone" true (b >= bounds.(i - 1)))
        bounds;
      Alcotest.(check bool) "block cap" true (nb <= max 1 (min n 256));
      let total = ref 0 in
      for i = 0 to n - 1 do
        total := !total + max 0 (wf i)
      done;
      if !total < cutoff then
        Alcotest.(check int) (Printf.sprintf "n=%d below cutoff is serial" n) 1 nb;
      (* purity: same inputs, same plan *)
      Alcotest.(check bool) "pure" true (bounds = Fsam_par.plan ~weight:wf ~cutoff ~n ()))
    [
      (0, 100, fun _ -> 1);
      (1, 0, fun _ -> 1000);
      (50, 1000, fun _ -> 1);
      (50, 10, fun _ -> 1);
      (1000, 64, fun i -> i mod 13);
      (10_000, 65536, fun _ -> 9);
      (300, 8, fun i -> if i = 7 then 10_000 else 1);
    ]

let test_adaptive_ranges_jobs_invariant () =
  (* the exact (lo, hi) ranges f is called on — and their order in the
     result — must not depend on jobs: per-block caches and counters hinge
     on this *)
  let ranges jobs =
    Fsam_par.run_chunks ~strategy:Fsam_par.Adaptive ~cutoff:32
      ~weight:(fun i -> 1 + (i mod 5))
      ~jobs ~n:500
      (fun ~lo ~hi -> (lo, hi))
  in
  let base = ranges 1 in
  Alcotest.(check bool) "above cutoff: really decomposed" true (List.length base > 1);
  List.iter
    (fun jobs ->
      Alcotest.(check bool)
        (Printf.sprintf "ranges identical at jobs=%d" jobs)
        true
        (ranges jobs = base))
    [ 2; 4; 8 ]

let test_cutoff_fires_no_domain_gauges () =
  (* satellite: a sub-threshold input at jobs=4 must not spawn (no
     par.<label>.domain1.* gauges), and a later narrow run of the same
     region must clear the stale wide-run gauges *)
  Fsam_obs.Metrics.reset ();
  let label = "cutofftest" in
  let body ~lo ~hi = hi - lo in
  (* wide run first: cutoff 0 forces the parallel path, leaving domain1+ *)
  ignore
    (Fsam_par.run_chunks ~label ~strategy:Fsam_par.Adaptive ~cutoff:0 ~jobs:4 ~n:600 body);
  Alcotest.(check bool) "wide run recorded domain1" true
    (Fsam_obs.Metrics.find_gauge "par.cutofftest.domain1.wall_us" <> None);
  (* sub-threshold run: serial, and the stale per-domain gauges are gone *)
  ignore (Fsam_par.run_chunks ~label ~strategy:Fsam_par.Adaptive ~jobs:4 ~n:100 body);
  Alcotest.(check int) "cutoff engaged: one lane"
    1
    (Option.get (Fsam_obs.Metrics.find_gauge "par.cutofftest.chunks"));
  List.iter
    (fun g ->
      Alcotest.(check bool)
        (Printf.sprintf "no stale %s" g)
        true
        (Fsam_obs.Metrics.find_gauge (Printf.sprintf "par.cutofftest.%s" g) = None))
    [ "domain1.wall_us"; "domain1.items"; "domain2.wall_us"; "domain3.items" ];
  Alcotest.(check bool) "domain0 still attributed" true
    (Fsam_obs.Metrics.find_gauge "par.cutofftest.domain0.items" = Some 100);
  Fsam_obs.Metrics.reset ()

(* -- Iset domain safety --------------------------------------------------- *)

(* Each domain performs the same deterministic mix of constructions and
   merges; hash-consing must canonicalise across domains, so the i-th result
   of every domain is one physically equal node. *)
let test_iset_concurrent_hashcons () =
  let base = Iset.of_list (List.init 400 (fun i -> i * 3)) in
  let other = Iset.of_list (List.init 400 (fun i -> (i * 5) + 1)) in
  let work () =
    List.init 250 (fun k ->
        let a = Iset.add (k * 7) base in
        let b = Iset.inter other (Iset.add ((k * 2) + 1) a) in
        Iset.union (Iset.union a b) (Iset.of_list [ k; k + 1; k * 11 ]))
  in
  let domains = List.init 4 (fun _ -> Domain.spawn work) in
  let per_domain = List.map Domain.join domains in
  let reference = work () in
  List.iteri
    (fun d results ->
      List.iteri
        (fun i r ->
          let expected = List.nth reference i in
          if not (r == expected) then
            Alcotest.failf "domain %d result %d not physically canonical" d i;
          Alcotest.(check int) "hash agrees" (Iset.hash expected) (Iset.hash r);
          Alcotest.(check int) "compare agrees" 0 (Iset.compare expected r);
          Alcotest.(check bool) "equal agrees" true (Iset.equal expected r))
        results)
    per_domain;
  (* the canonical nodes also carry correct contents *)
  let r0 = List.nth reference 0 in
  Alcotest.(check bool) "mem holds" true (Iset.mem 0 r0 && Iset.mem 11 (List.nth reference 1))

let test_iset_concurrent_fixpoint_contract () =
  (* [union a b == a] iff b ⊆ a must hold for unions computed on other
     domains: the solver's fixpoint test depends on it *)
  let a = Iset.of_list (List.init 300 (fun i -> i * 2)) in
  let b = Iset.of_list (List.init 100 (fun i -> i * 4)) in
  let checks () = List.init 50 (fun k -> Iset.union a (Iset.add (k * 4) b) == a) in
  let domains = List.init 4 (fun _ -> Domain.spawn checks) in
  List.iter
    (fun d ->
      List.iter (fun ok -> Alcotest.(check bool) "subset union is identity" true ok) (Domain.join d))
    domains

(* -- client determinism across jobs --------------------------------------- *)

let jobs_values = [ 1; 2; 4 ]

let check_clients_deterministic ~name prog =
  let d = D.run prog in
  let races = Fsam_core.Races.detect ~jobs:1 d in
  let leaks = Fsam_core.Leaks.detect ~jobs:1 d in
  let dls = Fsam_core.Deadlocks.detect ~jobs:1 d in
  List.iter
    (fun jobs ->
      if Fsam_core.Races.detect ~jobs d <> races then
        Alcotest.failf "%s: races differ at jobs=%d" name jobs;
      if Fsam_core.Leaks.detect ~jobs d <> leaks then
        Alcotest.failf "%s: leaks differ at jobs=%d" name jobs;
      if Fsam_core.Deadlocks.detect ~jobs d <> dls then
        Alcotest.failf "%s: deadlocks differ at jobs=%d" name jobs)
    jobs_values;
  (* MHP: per-instance interference facts and the fixpoint work count are
     jobs-invariant (the sibling fan-out preserves the seeding order) *)
  let m1 = Fsam_mta.Mhp.compute ~jobs:1 d.D.tm in
  List.iter
    (fun jobs ->
      let mj = Fsam_mta.Mhp.compute ~jobs d.D.tm in
      Alcotest.(check int)
        (Printf.sprintf "%s: mhp iterations jobs=%d" name jobs)
        (Fsam_mta.Mhp.n_iterations m1) (Fsam_mta.Mhp.n_iterations mj);
      for i = 0 to Fsam_mta.Threads.n_insts d.D.tm - 1 do
        if not (Iset.equal (Fsam_mta.Mhp.interference m1 i) (Fsam_mta.Mhp.interference mj i))
        then Alcotest.failf "%s: mhp fact differs at inst %d, jobs=%d" name i jobs
      done)
    jobs_values

let test_clients_deterministic_rand_ir () =
  for seed = 0 to 11 do
    let prog = Fsam_workloads.Rand_prog.generate ~seed ~size:26 () in
    check_clients_deterministic ~name:(Printf.sprintf "rand_ir/seed%d" seed) prog
  done

let test_clients_deterministic_rand_minic () =
  for seed = 0 to 11 do
    let src = Fsam_workloads.Rand_minic.generate ~seed ~size:18 in
    let prog = Fsam_frontend.Lower.compile_string src in
    check_clients_deterministic ~name:(Printf.sprintf "rand_minic/seed%d" seed) prog
  done

(* qcheck properties: jobs-invariance on random MiniC programs drawn by
   generator seed, and concurrent hash-consing on random element lists *)
let prop_clients_jobs_invariant =
  QCheck.Test.make ~count:12 ~name:"races/leaks/deadlocks jobs-invariant (random MiniC)"
    QCheck.(int_bound 10_000)
    (fun seed ->
      let src = Fsam_workloads.Rand_minic.generate ~seed ~size:14 in
      let prog = Fsam_frontend.Lower.compile_string src in
      let d = D.run prog in
      let races = Fsam_core.Races.detect ~jobs:1 d in
      let leaks = Fsam_core.Leaks.detect ~jobs:1 d in
      let dls = Fsam_core.Deadlocks.detect ~jobs:1 d in
      List.for_all
        (fun jobs ->
          Fsam_core.Races.detect ~jobs d = races
          && Fsam_core.Leaks.detect ~jobs d = leaks
          && Fsam_core.Deadlocks.detect ~jobs d = dls)
        [ 2; 4 ])

let prop_iset_concurrent_canonical =
  QCheck.Test.make ~count:20 ~name:"concurrent union/inter canonical across domains"
    QCheck.(pair (list_of_size Gen.(1 -- 60) (int_bound 500))
              (list_of_size Gen.(1 -- 60) (int_bound 500)))
    (fun (la, lb) ->
      let work () =
        let a = Iset.of_list la and b = Iset.of_list lb in
        (Iset.union a b, Iset.inter a b, Iset.diff a b)
      in
      let domains = List.init 4 (fun _ -> Domain.spawn work) in
      let results = List.map Domain.join domains in
      let u0, i0, d0 = work () in
      List.for_all (fun (u, i, d) -> u == u0 && i == i0 && d == d0) results)

(* qcheck: the work-stealing scheduler must be observationally identical to
   the chunked reference — races report and SVFG edge counts byte-identical
   for jobs 1/2/4/8 on random MiniC. The cutoff is dropped to 8 so the
   adaptive path really decomposes and steals even on tiny programs. *)
let prop_adaptive_matches_chunked =
  QCheck.Test.make ~count:8 ~name:"adaptive == chunked digests (random MiniC, jobs 1/2/4/8)"
    QCheck.(int_bound 10_000)
    (fun seed ->
      let src = Fsam_workloads.Rand_minic.generate ~seed ~size:14 in
      let prog = Fsam_frontend.Lower.compile_string src in
      let digest strategy jobs =
        let saved_s = Fsam_par.default_strategy () and saved_c = Fsam_par.cutoff () in
        Fsam_par.set_default_strategy strategy;
        Fsam_par.set_cutoff 8;
        Fun.protect
          ~finally:(fun () ->
            Fsam_par.set_default_strategy saved_s;
            Fsam_par.set_cutoff saved_c)
          (fun () ->
            let d = D.run ~config:{ D.default_config with D.jobs } prog in
            let races =
              String.concat "\n"
                (List.map
                   (Format.asprintf "%a" (Fsam_core.Races.pp_race d))
                   (Fsam_core.Races.detect ~jobs d))
            in
            ( races,
              Fsam_memssa.Svfg.n_edges d.D.svfg,
              Fsam_memssa.Svfg.n_thread_aware_edges d.D.svfg ))
      in
      let reference = digest Fsam_par.Chunked 1 in
      List.for_all
        (fun jobs ->
          digest Fsam_par.Chunked jobs = reference
          && digest Fsam_par.Adaptive jobs = reference)
        [ 1; 2; 4; 8 ])

let test_clients_deterministic_workload () =
  (* one real benchmark end-to-end, including the rendered report *)
  let spec = Option.get (Fsam_workloads.Suite.find "word_count") in
  let prog = spec.Fsam_workloads.Suite.build 40 in
  let d = D.run prog in
  let render rs =
    String.concat "\n" (List.map (Format.asprintf "%a" (Fsam_core.Races.pp_race d)) rs)
  in
  let r1 = render (Fsam_core.Races.detect ~jobs:1 d) in
  List.iter
    (fun jobs ->
      Alcotest.(check string)
        (Printf.sprintf "word_count report jobs=%d" jobs)
        r1
        (render (Fsam_core.Races.detect ~jobs d)))
    jobs_values

let suite =
  [
    Alcotest.test_case "run_chunks decomposition" `Quick test_run_chunks_decomposition;
    Alcotest.test_case "run_chunks ordered merge" `Quick test_run_chunks_ordered_merge;
    Alcotest.test_case "run_chunks serial path" `Quick test_run_chunks_serial_path;
    Alcotest.test_case "adaptive plan invariants" `Quick test_plan_invariants;
    Alcotest.test_case "adaptive ranges jobs-invariant" `Quick
      test_adaptive_ranges_jobs_invariant;
    Alcotest.test_case "cutoff fires, stale domain gauges cleared" `Quick
      test_cutoff_fires_no_domain_gauges;
    Alcotest.test_case "iset concurrent hash-consing" `Quick test_iset_concurrent_hashcons;
    Alcotest.test_case "iset concurrent fixpoint contract" `Quick
      test_iset_concurrent_fixpoint_contract;
    Alcotest.test_case "clients deterministic (random IR)" `Slow
      test_clients_deterministic_rand_ir;
    Alcotest.test_case "clients deterministic (random MiniC)" `Slow
      test_clients_deterministic_rand_minic;
    Alcotest.test_case "clients deterministic (word_count report)" `Quick
      test_clients_deterministic_workload;
    QCheck_alcotest.to_alcotest prop_clients_jobs_invariant;
    QCheck_alcotest.to_alcotest prop_adaptive_matches_chunked;
    QCheck_alcotest.to_alcotest prop_iset_concurrent_canonical;
  ]
