(* Differential and invariance tests for the indexed MHP/lock query layer:

   - the summary-indexed [mhp_stmt]/[mhp_pairs_inst] agree with the naive
     instance-product references on random IR and MiniC programs;
   - [common_lock] (bitset fast path + memo) agrees with the span-product
     reference, and [commonly_protected] with its emptiness;
   - [mhp_inst] is symmetric (the SVFG's statement-MHP memo relies on the
     canonical [(min, max)] key);
   - the thread-aware SVFG — edge set, [THREAD-VF] edge count, racy-object
     marks — is identical for jobs 1/2/4, under the default config and
     under each paper §4.3 ablation;
   - the [vf_scale] bench workloads exercise the layer end-to-end. *)

module D = Fsam_core.Driver
module Mhp = Fsam_mta.Mhp
module Locks = Fsam_mta.Locks
module Threads = Fsam_mta.Threads
module Svfg = Fsam_memssa.Svfg
module Iset = Fsam_dsa.Iset

let gids_with_insts tm =
  let seen = Hashtbl.create 64 in
  for i = 0 to Threads.n_insts tm - 1 do
    let g = (Threads.inst tm i).Threads.i_gid in
    if not (Hashtbl.mem seen g) then Hashtbl.add seen g ()
  done;
  List.sort compare (Hashtbl.fold (fun g () acc -> g :: acc) seen [])

let sorted_pairs l = List.sort compare l

(* Strided sample of the full query product: every gid appears in some
   sampled pair, the product stays bounded on big programs. *)
let check_queries_agree ~name (d : D.t) =
  let tm = d.D.tm and mhp = d.D.mhp and lk = d.D.locks in
  let gids = Array.of_list (gids_with_insts tm) in
  let n = Array.length gids in
  let step = max 1 (n / 24) in
  let i = ref 0 in
  while !i < n do
    let j = ref 0 in
    while !j < n do
      let g1 = gids.(!i) and g2 = gids.(!j) in
      let idx = Mhp.mhp_stmt mhp g1 g2 and nv = Mhp.mhp_stmt_naive mhp g1 g2 in
      if idx <> nv then
        Alcotest.failf "%s: mhp_stmt gids (%d,%d): indexed=%b naive=%b" name g1 g2 idx nv;
      let p_idx = sorted_pairs (Mhp.mhp_pairs_inst mhp g1 g2) in
      let p_nv = sorted_pairs (Mhp.mhp_pairs_inst_naive mhp g1 g2) in
      if p_idx <> p_nv then
        Alcotest.failf "%s: mhp_pairs_inst gids (%d,%d): %d indexed vs %d naive pairs" name g1
          g2 (List.length p_idx) (List.length p_nv);
      j := !j + step
    done;
    i := !i + step
  done;
  let ni = Threads.n_insts tm in
  let istep = max 1 (ni / 40) in
  let cache = Locks.make_cache () in
  let a = ref 0 in
  while !a < ni do
    let b = ref 0 in
    while !b < ni do
      let cl = sorted_pairs (Locks.common_lock ~cache lk !a !b) in
      let cln = sorted_pairs (Locks.common_lock_naive lk !a !b) in
      if cl <> cln then Alcotest.failf "%s: common_lock insts (%d,%d) disagrees" name !a !b;
      if Locks.commonly_protected lk !a !b <> (cln <> []) then
        Alcotest.failf "%s: commonly_protected insts (%d,%d) disagrees" name !a !b;
      (* satellite: mhp_inst symmetry backs the canonical (min,max) memo key *)
      if Mhp.mhp_inst mhp !a !b <> Mhp.mhp_inst mhp !b !a then
        Alcotest.failf "%s: mhp_inst not symmetric on (%d,%d)" name !a !b;
      b := !b + istep
    done;
    a := !a + istep
  done

let test_queries_agree_rand_ir () =
  for seed = 0 to 9 do
    let prog = Fsam_workloads.Rand_prog.generate ~seed ~size:26 () in
    check_queries_agree ~name:(Printf.sprintf "rand_ir/seed%d" seed) (D.run prog)
  done

let test_queries_agree_rand_minic () =
  for seed = 0 to 7 do
    let src = Fsam_workloads.Rand_minic.generate ~seed ~size:18 in
    let prog = Fsam_frontend.Lower.compile_string src in
    check_queries_agree ~name:(Printf.sprintf "rand_minic/seed%d" seed) (D.run prog)
  done

let test_queries_agree_vf_workload () =
  let prog = Fsam_workloads.Vf_scale.build ~threads:8 20 in
  let d = D.run prog in
  check_queries_agree ~name:"vf_scale/t8" d;
  Alcotest.(check bool)
    "vf workload has thread-aware edges" true
    (Svfg.n_thread_aware_edges d.D.svfg > 0)

(* -- jobs-invariance of the thread-aware SVFG ----------------------------- *)

let svfg_digest g prog =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "e=%d t=%d;" (Svfg.n_edges g) (Svfg.n_thread_aware_edges g));
  for v = 0 to Svfg.n_nodes g - 1 do
    List.iter
      (fun (o, s) -> Buffer.add_string buf (Printf.sprintf "%d:%d>%d;" v o s))
      (List.sort compare (Svfg.o_succs g v))
  done;
  for gid = 0 to Fsam_ir.Prog.n_stmts prog - 1 do
    let r = Svfg.racy_objs g gid in
    if not (Iset.is_empty r) then
      Buffer.add_string buf
        (Printf.sprintf "r%d=%s;" gid
           (String.concat "," (List.map string_of_int (Iset.elements r))))
  done;
  Buffer.contents buf

let rebuild_svfg ?config ~jobs (d : D.t) =
  Svfg.build ?config ~jobs d.D.prog d.D.ast d.D.modref d.D.icfg d.D.tm d.D.mhp d.D.locks
    d.D.pcg

let check_svfg_jobs_invariant ~name ?config (d : D.t) =
  let ref_digest = svfg_digest (rebuild_svfg ?config ~jobs:1 d) d.D.prog in
  List.iter
    (fun jobs ->
      let dig = svfg_digest (rebuild_svfg ?config ~jobs d) d.D.prog in
      if dig <> ref_digest then Alcotest.failf "%s: SVFG differs at jobs=%d" name jobs)
    [ 2; 4 ]

let test_svfg_jobs_invariant_rand () =
  for seed = 0 to 7 do
    let prog = Fsam_workloads.Rand_prog.generate ~seed ~size:26 () in
    check_svfg_jobs_invariant ~name:(Printf.sprintf "rand_ir/seed%d" seed) (D.run prog)
  done

let test_svfg_jobs_invariant_vf () =
  let prog = Fsam_workloads.Vf_scale.build ~threads:8 20 in
  check_svfg_jobs_invariant ~name:"vf_scale/t8" (D.run prog)

let ablations =
  [
    ("default", D.default_config);
    ("no_interleaving", D.no_interleaving);
    ("no_value_flow", D.no_value_flow);
    ("no_lock", D.no_lock);
  ]

let test_svfg_jobs_invariant_ablations () =
  let prog = Fsam_workloads.Vf_scale.build ~threads:8 20 in
  List.iter
    (fun (name, config) ->
      (* the full pipeline under the ablation, then the value-flow phase
         re-run at each jobs value with the same ablated config *)
      let d = D.run ~config prog in
      check_svfg_jobs_invariant ~name:(Printf.sprintf "vf_scale/%s" name)
        ~config:config.D.svfg d;
      let render rs =
        String.concat "\n" (List.map (Format.asprintf "%a" (Fsam_core.Races.pp_race d)) rs)
      in
      let r1 = render (Fsam_core.Races.detect ~jobs:1 d) in
      List.iter
        (fun jobs ->
          Alcotest.(check string)
            (Printf.sprintf "%s: race report jobs=%d" name jobs)
            r1
            (render (Fsam_core.Races.detect ~jobs d)))
        [ 2; 4 ])
    ablations

(* -- qcheck properties ---------------------------------------------------- *)

let prop_indexed_agrees_naive =
  QCheck.Test.make ~count:10 ~name:"indexed MHP/lock queries agree with naive (random IR)"
    QCheck.(int_bound 10_000)
    (fun seed ->
      let prog = Fsam_workloads.Rand_prog.generate ~seed ~size:20 () in
      check_queries_agree ~name:(Printf.sprintf "qcheck/seed%d" seed) (D.run prog);
      true)

let prop_svfg_jobs_invariant =
  QCheck.Test.make ~count:8 ~name:"thread-aware SVFG identical across jobs (random IR)"
    QCheck.(int_bound 10_000)
    (fun seed ->
      let prog = Fsam_workloads.Rand_prog.generate ~seed ~size:20 () in
      let d = D.run prog in
      check_svfg_jobs_invariant ~name:(Printf.sprintf "qcheck/seed%d" seed) d;
      true)

let suite =
  [
    Alcotest.test_case "indexed queries agree (random IR)" `Slow test_queries_agree_rand_ir;
    Alcotest.test_case "indexed queries agree (random MiniC)" `Slow
      test_queries_agree_rand_minic;
    Alcotest.test_case "indexed queries agree (vf workload)" `Quick
      test_queries_agree_vf_workload;
    Alcotest.test_case "svfg jobs-invariant (random IR)" `Slow test_svfg_jobs_invariant_rand;
    Alcotest.test_case "svfg jobs-invariant (vf workload)" `Quick test_svfg_jobs_invariant_vf;
    Alcotest.test_case "svfg jobs-invariant under ablations" `Slow
      test_svfg_jobs_invariant_ablations;
    QCheck_alcotest.to_alcotest prop_indexed_agrees_naive;
    QCheck_alcotest.to_alcotest prop_svfg_jobs_invariant;
  ]
