(* Property-based validation on random multithreaded programs:

   - soundness against the concrete interpreter: every points-to fact
     observed in any randomized execution schedule is included in FSAM's
     (and NonSparse's, and Andersen's) results;
   - FSAM refines Andersen (flow-sensitivity only removes targets);
   - on sequential programs FSAM and NonSparse agree on all top-level
     points-to sets (the sparse analysis "is as precise as the traditional
     iterative data-flow analysis", paper §3.4);
   - each phase-off ablation produces a superset of the full analysis. *)

open Fsam_ir
module D = Fsam_core.Driver
module W = Fsam_workloads.Rand_prog
module I = Fsam_interp.Interp
module Iset = Fsam_dsa.Iset

let n_programs = 25
let n_schedules = 6

let run_fsam ?config prog = D.run ?config prog

let check_sound_against_interp ~name static_pt static_mem prog =
  for sched = 0 to n_schedules - 1 do
    let r = I.run ~seed:sched prog in
    List.iter
      (fun o ->
        let pt = static_pt o.I.obs_var in
        if not (Iset.mem o.I.obs_obj pt) then
          Alcotest.failf "%s: unsound: observed %s in pt(%s) at gid %d, static %s" name
            (Prog.obj_name prog o.I.obs_obj)
            (Prog.var_name prog o.I.obs_var)
            o.I.obs_gid
            (Format.asprintf "%a" Iset.pp pt))
      r.I.observations;
    List.iter
      (fun (l, tgt) ->
        if not (Iset.mem tgt (static_mem l)) then
          Alcotest.failf "%s: unsound memory: %s may contain %s" name
            (Prog.obj_name prog l) (Prog.obj_name prog tgt))
      r.I.mem_facts
  done

let test_fsam_sound () =
  for seed = 0 to n_programs - 1 do
    let prog = W.generate ~seed ~size:24 () in
    let d = run_fsam prog in
    check_sound_against_interp ~name:(Printf.sprintf "fsam/seed%d" seed)
      (fun v -> Fsam_core.Sparse.pt_top d.D.sparse v)
      (fun o -> Fsam_core.Sparse.pt_obj_anywhere d.D.sparse o)
      prog
  done

let test_andersen_sound () =
  for seed = 0 to n_programs - 1 do
    let prog = W.generate ~seed ~size:24 () in
    let ast = Fsam_andersen.Solver.run prog in
    check_sound_against_interp ~name:(Printf.sprintf "andersen/seed%d" seed)
      (fun v -> Fsam_andersen.Solver.pt_var ast v)
      (fun o -> Fsam_andersen.Solver.pt_obj ast o)
      prog
  done

let test_nonsparse_sound () =
  for seed = 0 to n_programs - 1 do
    let prog = W.generate ~seed ~size:20 () in
    match D.run_nonsparse prog with
    | Fsam_core.Nonsparse.Done ns, _ ->
      for sched = 0 to n_schedules - 1 do
        let r = I.run ~seed:sched prog in
        List.iter
          (fun o ->
            if not (Iset.mem o.I.obs_obj (Fsam_core.Nonsparse.pt_top ns o.I.obs_var)) then
              Alcotest.failf "nonsparse/seed%d unsound on %s" seed
                (Prog.var_name prog o.I.obs_var))
          r.I.observations
      done
    | Fsam_core.Nonsparse.Timeout _, _ -> Alcotest.fail "nonsparse timed out on tiny program"
  done

let test_fsam_refines_andersen () =
  for seed = 0 to n_programs - 1 do
    let prog = W.generate ~seed ~size:28 () in
    let d = run_fsam prog in
    for v = 0 to Prog.n_vars prog - 1 do
      let fs = Fsam_core.Sparse.pt_top d.D.sparse v in
      let anders = Fsam_andersen.Solver.pt_var d.D.ast v in
      if not (Iset.subset fs anders) then
        Alcotest.failf "seed %d: pt_fsam(%s) ⊄ pt_andersen" seed (Prog.var_name prog v)
    done
  done

let test_sequential_parity_with_nonsparse () =
  for seed = 0 to n_programs - 1 do
    let prog = W.generate ~forks:false ~seed ~size:24 () in
    let d = run_fsam prog in
    match D.run_nonsparse prog with
    | Fsam_core.Nonsparse.Done ns, _ ->
      for v = 0 to Prog.n_vars prog - 1 do
        let a = Fsam_core.Sparse.pt_top d.D.sparse v in
        let b = Fsam_core.Nonsparse.pt_top ns v in
        if not (Iset.equal a b) then
          Alcotest.failf "seed %d: sequential parity broken on %s: sparse %s vs nonsparse %s"
            seed (Prog.var_name prog v)
            (Format.asprintf "%a" Iset.pp a)
            (Format.asprintf "%a" Iset.pp b)
      done
    | Fsam_core.Nonsparse.Timeout _, _ -> Alcotest.fail "nonsparse timeout"
  done

let test_ablations_are_supersets () =
  for seed = 0 to 11 do
    let prog () = W.generate ~seed ~size:24 () in
    let full = run_fsam (prog ()) in
    let check name config =
      let ab = run_fsam ~config (prog ()) in
      for v = 0 to Prog.n_vars full.D.prog - 1 do
        let f = Fsam_core.Sparse.pt_top full.D.sparse v in
        let a = Fsam_core.Sparse.pt_top ab.D.sparse v in
        if not (Iset.subset f a) then
          Alcotest.failf "seed %d: %s ablation lost facts on %s" seed name
            (Prog.var_name full.D.prog v)
      done
    in
    check "no-interleaving" D.no_interleaving;
    check "no-value-flow" D.no_value_flow;
    check "no-lock" D.no_lock
  done

let test_multithreaded_nonsparse_superset_of_fsam_on_top_level () =
  (* NonSparse + PCG is coarser than FSAM on multithreaded programs *)
  for seed = 0 to 11 do
    let prog = W.generate ~seed ~size:20 () in
    let d = run_fsam prog in
    match D.run_nonsparse prog with
    | Fsam_core.Nonsparse.Done ns, _ ->
      for v = 0 to Prog.n_vars prog - 1 do
        let f = Fsam_core.Sparse.pt_top d.D.sparse v in
        let n = Fsam_core.Nonsparse.pt_top ns v in
        if not (Iset.subset f n) then
          Alcotest.failf "seed %d: fsam ⊄ nonsparse on %s: %s vs %s" seed
            (Prog.var_name prog v)
            (Format.asprintf "%a" Iset.pp f)
            (Format.asprintf "%a" Iset.pp n)
      done
    | Fsam_core.Nonsparse.Timeout _, _ -> Alcotest.fail "nonsparse timeout"
  done

let test_minic_end_to_end_sound () =
  (* random MiniC source through the full frontend, then the soundness
     oracle — catches lowering bugs against the executable semantics *)
  for seed = 0 to n_programs - 1 do
    let src = Fsam_workloads.Rand_minic.generate ~seed ~size:18 in
    let prog =
      try Fsam_frontend.Lower.compile_string src
      with e ->
        Alcotest.failf "seed %d failed to compile: %s\n%s" seed (Printexc.to_string e) src
    in
    let d = run_fsam prog in
    check_sound_against_interp ~name:(Printf.sprintf "minic/seed%d" seed)
      (fun v -> Fsam_core.Sparse.pt_top d.D.sparse v)
      (fun o -> Fsam_core.Sparse.pt_obj_anywhere d.D.sparse o)
      prog
  done

let test_scheduler_determinism () =
  (* FIFO and priority scheduling reach the identical fixpoint: same ptv for
     every variable, same pto at every (svfg node, obj). The fixpoint of the
     monotone system is unique, so any discrepancy is a scheduling bug. *)
  for seed = 0 to n_programs - 1 do
    let prog = W.generate ~seed ~size:26 () in
    let df = run_fsam ~config:{ D.default_config with scheduler = Fsam_core.Sparse.Fifo } prog in
    let dp =
      run_fsam ~config:{ D.default_config with scheduler = Fsam_core.Sparse.Priority } prog
    in
    for v = 0 to Prog.n_vars prog - 1 do
      let a = Fsam_core.Sparse.pt_top df.D.sparse v in
      let b = Fsam_core.Sparse.pt_top dp.D.sparse v in
      if not (Iset.equal a b) then
        Alcotest.failf "seed %d: schedulers disagree on pt(%s): fifo %s vs priority %s" seed
          (Prog.var_name prog v)
          (Format.asprintf "%a" Iset.pp a)
          (Format.asprintf "%a" Iset.pp b)
    done;
    let check_pto ~dir x y =
      Fsam_core.Sparse.iter_pto x (fun ~node ~obj s ->
          let s' = Fsam_core.Sparse.pto_get y node obj in
          if not (Iset.equal s s') then
            Alcotest.failf "seed %d: schedulers disagree on pto(node %d, obj %s) (%s)" seed
              node (Prog.obj_name prog obj) dir)
    in
    check_pto ~dir:"fifo vs priority" df.D.sparse dp.D.sparse;
    check_pto ~dir:"priority vs fifo" dp.D.sparse df.D.sparse
  done

let test_interp_runs () =
  (* smoke: the interpreter makes progress and terminates *)
  let prog = W.generate ~seed:7 ~size:30 () in
  let r = I.run ~seed:1 prog in
  Alcotest.(check bool) "made steps" true (r.I.steps > 0)

let suite =
  [
    Alcotest.test_case "interpreter smoke" `Quick test_interp_runs;
    Alcotest.test_case "fsam sound vs interpreter" `Slow test_fsam_sound;
    Alcotest.test_case "andersen sound vs interpreter" `Slow test_andersen_sound;
    Alcotest.test_case "nonsparse sound vs interpreter" `Slow test_nonsparse_sound;
    Alcotest.test_case "fsam refines andersen" `Slow test_fsam_refines_andersen;
    Alcotest.test_case "fifo/priority schedulers reach identical fixpoint" `Slow
      test_scheduler_determinism;
    Alcotest.test_case "sequential parity sparse=nonsparse" `Slow
      test_sequential_parity_with_nonsparse;
    Alcotest.test_case "ablations are supersets" `Slow test_ablations_are_supersets;
    Alcotest.test_case "fsam refines nonsparse (multithreaded)" `Slow
      test_multithreaded_nonsparse_superset_of_fsam_on_top_level;
    Alcotest.test_case "random MiniC end-to-end sound" `Slow test_minic_end_to_end_sound;
  ]
