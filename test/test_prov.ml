(* Provenance recorder + explain layer: every recorded derivation chain must
   replay against the final solution (differential check on examples, random
   IR and random MiniC programs), MHP justifications and [THREAD-VF] verdicts
   must agree with the underlying analyses, recording must not perturb any
   result, and witness output must be digest-identical across --jobs. *)

module D = Fsam_core.Driver
module E = Fsam_core.Explain
module S = Fsam_core.Sparse
module A = Fsam_andersen.Solver
module Mta = Fsam_mta
module Prog = Fsam_ir.Prog
module Stmt = Fsam_ir.Stmt
module Iset = Fsam_dsa.Iset
module J = Fsam_obs.Json
module W = Fsam_workloads.Rand_prog

let prov_config = { D.default_config with provenance = true }

let compile_file path =
  let ic = open_in_bin path in
  let src =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  Fsam_frontend.Lower.compile_string src

let minic_dir = "../examples/minic/"

(* Every true points-to fact (sparse and Andersen, up to [cap] facts) must
   yield a chain, and every chain must replay. *)
let check_all_chains ?(cap = 4000) name (d : D.t) =
  let prog = d.D.prog in
  let checked = ref 0 in
  for v = 0 to Prog.n_vars prog - 1 do
    Iset.iter
      (fun o ->
        if !checked < cap then begin
          incr checked;
          (match E.why_pt d v o with
          | None -> Alcotest.failf "%s: no sparse chain for pt(%d) ∋ %d" name v o
          | Some chain ->
            if chain = [] then Alcotest.failf "%s: empty chain for (%d, %d)" name v o;
            if not (E.replay d chain) then
              Alcotest.failf "%s: sparse chain for (%d, %d) fails replay" name v o);
          match E.why_pt_andersen d v o with
          | None -> Alcotest.failf "%s: no andersen chain for pt(%d) ∋ %d" name v o
          | Some chain ->
            if not (E.replay d chain) then
              Alcotest.failf "%s: andersen chain for (%d, %d) fails replay" name v o
        end)
      (S.pt_top d.D.sparse v)
  done;
  Alcotest.(check bool) (name ^ ": some facts checked") true (!checked > 0)

let test_chains_examples () =
  List.iter
    (fun file -> check_all_chains file (D.run ~config:prov_config (compile_file (minic_dir ^ file))))
    [ "fig1a.c"; "taskqueue.c"; "wordcount.c"; "deadlock.c" ]

let test_chains_workload () =
  let spec = Option.get (Fsam_workloads.Suite.find "word_count") in
  check_all_chains "word_count" (D.run ~config:prov_config (spec.Fsam_workloads.Suite.build 10))

let test_chains_random_ir () =
  for seed = 1 to 8 do
    let prog = W.generate ~seed ~size:24 () in
    check_all_chains (Printf.sprintf "rand_ir seed %d" seed) (D.run ~config:prov_config prog)
  done

let test_chains_random_minic () =
  for seed = 1 to 6 do
    let src = Fsam_workloads.Rand_minic.generate ~seed ~size:18 in
    let prog = Fsam_frontend.Lower.compile_string src in
    check_all_chains (Printf.sprintf "rand_minic seed %d" seed) (D.run ~config:prov_config prog)
  done

(* why_mhp must be Some exactly when the MHP analysis says the two statements
   may happen in parallel, and the fork chains must be rooted at an unforked
   thread and end at the justified one. *)
let test_why_mhp_agrees () =
  for seed = 1 to 6 do
    let prog = W.generate ~seed ~size:24 () in
    let d = D.run ~config:prov_config prog in
    let accesses = ref [] in
    Prog.iter_stmts prog (fun gid _ s ->
        match s with
        | Stmt.Load _ | Stmt.Store _ -> accesses := gid :: !accesses
        | _ -> ());
    let acc = Array.of_list !accesses in
    let n = Array.length acc in
    for i = 0 to min (n - 1) 30 do
      for k = i to min (n - 1) 30 do
        let g1 = acc.(i) and g2 = acc.(k) in
        let expect = Mta.Mhp.mhp_stmt d.D.mhp g1 g2 in
        match E.why_mhp d g1 g2 with
        | None ->
          if expect then Alcotest.failf "seed %d: mhp_stmt %d %d but no justification" seed g1 g2
        | Some j ->
          if not expect then Alcotest.failf "seed %d: justification for non-MHP %d %d" seed g1 g2;
          let t1, t2 = j.E.j_threads in
          let check_chain tid chain =
            (match chain with
            | (root, None) :: _ -> ignore root
            | _ -> Alcotest.failf "seed %d: fork chain does not start at an unforked thread" seed);
            match List.rev chain with
            | (last, _) :: _ ->
              Alcotest.(check int) "chain ends at justified thread" tid last
            | [] -> Alcotest.fail "empty fork chain"
          in
          check_chain t1 (fst j.E.j_chains);
          check_chain t2 (snd j.E.j_chains)
      done
    done
  done

(* [THREAD-VF] verdicts: Skipped_mhp contradicts mhp_stmt; Filtered_lock must
   name a span pair protected by one common runtime lock containing the
   recorded instances; Kept{unprotected} must match commonly_protected on the
   witness instance pair. *)
let test_why_edge_consistent () =
  let progs =
    compile_file (minic_dir ^ "taskqueue.c")
    :: List.map (fun seed -> W.generate ~seed ~size:26 ()) [ 11; 12; 13 ]
  in
  let n_verdicts = ref 0 in
  List.iter
    (fun prog ->
      let d = D.run ~config:prov_config prog in
      let stores = ref [] and accesses = ref [] in
      Prog.iter_stmts prog (fun gid _ s ->
          match s with
          | Stmt.Store { dst; _ } ->
            stores := (gid, A.pt_var d.D.ast dst) :: !stores;
            accesses := (gid, A.pt_var d.D.ast dst) :: !accesses
          | Stmt.Load { src; _ } -> accesses := (gid, A.pt_var d.D.ast src) :: !accesses
          | _ -> ());
      List.iter
        (fun (sg, spts) ->
          List.iter
            (fun (ag, apts) ->
              Iset.iter
                (fun o ->
                  if Iset.mem o apts then
                    match E.why_edge d ~store:sg ~obj:o ~access:ag with
                    | E.Unrecorded -> ()
                    | E.Skipped_mhp ->
                      incr n_verdicts;
                      if Mta.Mhp.mhp_stmt d.D.mhp sg ag then
                        Alcotest.failf "skipped-mhp verdict for MHP pair %d %d" sg ag
                    | E.Kept { unprotected; winsts } -> (
                      incr n_verdicts;
                      if not (Mta.Mhp.mhp_stmt d.D.mhp sg ag) then
                        Alcotest.failf "kept verdict for non-MHP pair %d %d" sg ag;
                      match winsts with
                      | Some (i, j) ->
                        Alcotest.(check bool)
                          "unprotected flag matches lock analysis" unprotected
                          (not (Mta.Locks.commonly_protected d.D.locks i j))
                      | None -> ())
                    | E.Filtered_lock { insts = i, j; spans = sp, sp'; _ } ->
                      incr n_verdicts;
                      Alcotest.(check int)
                        "span pair shares one runtime lock"
                        (Mta.Locks.span_lock d.D.locks sp)
                        (Mta.Locks.span_lock d.D.locks sp');
                      Alcotest.(check bool)
                        "store instance inside its span" true
                        (List.mem sp (Mta.Locks.spans_of_inst d.D.locks i));
                      Alcotest.(check bool)
                        "access instance inside its span" true
                        (List.mem sp' (Mta.Locks.spans_of_inst d.D.locks j)))
                spts)
            !accesses)
        !stores)
    progs;
  Alcotest.(check bool) "some pair verdicts were recorded" true (!n_verdicts > 0)

(* The final recorded strong/weak verdict must match the solver's killing
   behaviour: a strong verdict names an object the store's pointer resolves
   to uniquely. *)
let test_store_verdicts () =
  let prog = compile_file (minic_dir ^ "fig1a.c") in
  let d = D.run ~config:prov_config prog in
  let seen = ref 0 in
  Prog.iter_stmts prog (fun gid _ s ->
      match s with
      | Stmt.Store { dst; _ } -> (
        match E.store_update d gid with
        | None -> ()
        | Some `Weak -> incr seen
        | Some (`Strong killed) ->
          incr seen;
          let pts = S.pt_top d.D.sparse dst in
          Alcotest.(check bool) "strong verdict kills the unique target" true
            (Iset.equal pts (Iset.singleton killed)))
      | _ -> ());
  Alcotest.(check bool) "store verdicts recorded" true (!seen > 0)

(* Recording must not change any result: off and on runs must agree on every
   top-level set and every (node, obj) memory fact. *)
let results_identical (a : D.t) (b : D.t) =
  let ok = ref true in
  for v = 0 to Prog.n_vars a.D.prog - 1 do
    if not (Iset.equal (S.pt_top a.D.sparse v) (S.pt_top b.D.sparse v)) then ok := false
  done;
  let tbl = Hashtbl.create 1024 in
  S.iter_pto a.D.sparse (fun ~node ~obj s -> Hashtbl.replace tbl (node, obj) s);
  let n_b = ref 0 in
  S.iter_pto b.D.sparse (fun ~node ~obj s ->
      incr n_b;
      match Hashtbl.find_opt tbl (node, obj) with
      | Some s' when Iset.equal s s' -> ()
      | _ -> ok := false);
  !ok && Hashtbl.length tbl = !n_b

let test_off_on_identity () =
  for seed = 21 to 24 do
    let d_off = D.run (W.generate ~seed ~size:24 ()) in
    let d_on = D.run ~config:prov_config (W.generate ~seed ~size:24 ()) in
    Alcotest.(check bool)
      (Printf.sprintf "seed %d: off/on results identical" seed)
      true
      (results_identical d_off d_on);
    (* without recording, provenance queries decline rather than guess *)
    (match Fsam_core.Races.detect d_off with
    | r :: _ ->
      Alcotest.(check bool) "no witness without provenance" true (E.witness d_off r = None)
    | [] -> ());
    Alcotest.(check bool) "no chain without provenance" true (E.why_pt d_off 0 0 = None)
  done

(* Witness and telemetry output must be byte-identical for jobs 1/2/4. *)
let test_witness_jobs_digest () =
  let spec = Option.get (Fsam_workloads.Suite.find "word_count") in
  let render jobs =
    let d =
      D.run ~config:{ D.default_config with provenance = true; jobs }
        (spec.Fsam_workloads.Suite.build 10)
    in
    let rs = Fsam_core.Races.detect ~jobs d in
    let witnesses =
      List.map
        (fun r ->
          match E.witness d r with
          | Some w -> J.to_string (E.witness_json d w)
          | None -> Alcotest.fail "race without witness under provenance")
        rs
    in
    Digest.string (String.concat "\n" witnesses)
  in
  let d1 = render 1 in
  Alcotest.(check string) "jobs 2 matches jobs 1" (Digest.to_hex d1) (Digest.to_hex (render 2));
  Alcotest.(check string) "jobs 4 matches jobs 1" (Digest.to_hex d1) (Digest.to_hex (render 4))

(* Chains stay within the requested bound. *)
let test_max_depth () =
  let prog = compile_file (minic_dir ^ "fig1a.c") in
  let d = D.run ~config:prov_config prog in
  for v = 0 to Prog.n_vars prog - 1 do
    Iset.iter
      (fun o ->
        match E.why_pt ~max_depth:2 d v o with
        | Some chain -> Alcotest.(check bool) "bounded" true (List.length chain <= 2)
        | None -> ())
      (S.pt_top d.D.sparse v)
  done

let suite =
  [
    Alcotest.test_case "chains replay on example programs" `Quick test_chains_examples;
    Alcotest.test_case "chains replay on word_count" `Quick test_chains_workload;
    Alcotest.test_case "chains replay on random IR" `Quick test_chains_random_ir;
    Alcotest.test_case "chains replay on random MiniC" `Quick test_chains_random_minic;
    Alcotest.test_case "why_mhp agrees with the MHP analysis" `Quick test_why_mhp_agrees;
    Alcotest.test_case "why_edge verdicts are consistent" `Quick test_why_edge_consistent;
    Alcotest.test_case "store strong/weak verdicts" `Quick test_store_verdicts;
    Alcotest.test_case "recording changes no results" `Quick test_off_on_identity;
    Alcotest.test_case "witness digest identical across jobs" `Quick test_witness_jobs_digest;
    Alcotest.test_case "max_depth bounds the chain" `Quick test_max_depth;
  ]
