(* The serve layer: incremental edits must be byte-identical to cold runs
   (differential property over random programs and random single-function
   edits, across --jobs values), snapshots must round-trip, the NDJSON
   protocol must answer and fail structurally, and the telemetry crash-flush
   arming around requests must be idempotent and disarmed between requests. *)

open Fsam_ir
module D = Fsam_core.Driver
module Sparse = Fsam_core.Sparse
module Races = Fsam_core.Races
module Svfg = Fsam_memssa.Svfg
module Iset = Fsam_dsa.Iset
module J = Fsam_obs.Json
module Ast = Fsam_frontend.Ast
module Engine = Fsam_serve.Engine
module Protocol = Fsam_serve.Protocol

(* -- random single-function AST edits ------------------------------------- *)

(* deterministic mutations: duplicate / drop / swap a statement inside one
   function, or append a self-assignment. Some mutations won't lower
   (dropped declarations); the caller skips those. *)
let mutate ~k source =
  let ast = Fsam_frontend.Parser.parse_string source in
  let fns = List.filter_map (function Ast.Dfun f -> Some f.Ast.fname | _ -> None) ast in
  let fn = List.nth fns (k mod List.length fns) in
  let tweak (f : Ast.fundef) =
    let body = Array.of_list f.Ast.body in
    let n = Array.length body in
    if n = 0 then f
    else begin
      let i = (k * 7) mod n in
      let body =
        match (k / 3) mod 4 with
        | 0 -> Array.to_list body @ [ body.(i) ] (* duplicate at the end *)
        | 1 -> List.filteri (fun j _ -> j <> i) (Array.to_list body) (* drop *)
        | 2 when n >= 2 ->
          let j = (i + 1) mod n in
          let t = body.(i) in
          body.(i) <- body.(j);
          body.(j) <- t;
          Array.to_list body (* swap *)
        | _ -> body.(i) :: Array.to_list body (* duplicate at the front *)
      in
      { f with Ast.body = body }
    end
  in
  let ast' =
    List.map
      (function Ast.Dfun f when f.Ast.fname = fn -> Ast.Dfun (tweak f) | d -> d)
      ast
  in
  Fsam_frontend.Pretty.to_string ast'

let all_pt d =
  List.init (Prog.n_vars d.D.prog) (fun v -> Sparse.pt_top d.D.sparse v)

let same_driver_results a b =
  List.for_all2 Iset.equal (all_pt a) (all_pt b)
  && String.equal (Svfg.digest a.D.svfg) (Svfg.digest b.D.svfg)
  && List.sort compare (Races.detect a) = List.sort compare (Races.detect b)

(* Random programs, random edits, differential mode on: every edit that runs
   incrementally must be certified identical to the cold re-run. *)
let test_edit_differential () =
  let incremental = ref 0 and cold = ref 0 and skipped = ref 0 in
  for seed = 0 to 17 do
    let source =
      Fsam_workloads.Rand_minic.generate ~seed ~size:(20 + ((seed mod 3) * 15))
    in
    let eng = Engine.create ~differential:true () in
    (match Engine.load eng source with
    | Error e -> Alcotest.failf "seed %d: load failed: %s" seed e
    | Ok _ ->
      for k = 0 to 3 do
        let edited = mutate ~k:((seed * 5) + k) source in
        match Engine.edit_source eng edited with
        | Error _ -> incr skipped (* mutation didn't lower; fine *)
        | Ok info -> (
          match info.Engine.e_mode with
          | `Cold -> incr cold
          | `Incremental ->
            incr incremental;
            if info.Engine.e_identical <> Some true then
              Alcotest.failf
                "seed %d edit %d: incremental result differs from cold re-run" seed k)
      done)
  done;
  (* the property is vacuous if nothing ever runs incrementally *)
  if !incremental < 10 then
    Alcotest.failf "only %d incremental edits across the sweep (%d cold, %d skipped)"
      !incremental !cold !skipped

(* The same program + edit sequence through engines at --jobs 1/2/4 must
   land on identical resident state. *)
let test_edit_jobs_invariant () =
  for seed = 0 to 3 do
    let source = Fsam_workloads.Rand_minic.generate ~seed ~size:40 in
    let edited = mutate ~k:(seed + 1) source in
    let run jobs =
      let eng = Engine.create ~jobs () in
      match Engine.load eng source with
      | Error e -> Alcotest.failf "seed %d jobs %d: load failed: %s" seed jobs e
      | Ok _ -> (
        match Engine.edit_source eng edited with
        | Error _ -> None
        | Ok _ -> Some (Engine.driver eng))
    in
    match (run 1, run 2, run 4) with
    | Some d1, Some d2, Some d4 ->
      Alcotest.(check bool)
        (Printf.sprintf "seed %d: jobs 1 vs 2" seed)
        true (same_driver_results d1 d2);
      Alcotest.(check bool)
        (Printf.sprintf "seed %d: jobs 1 vs 4" seed)
        true (same_driver_results d1 d4)
    | None, None, None -> () (* mutation didn't lower under any engine *)
    | _ -> Alcotest.failf "seed %d: edit viability differed across jobs" seed
  done

(* -- staged warm-edit sequence: per-phase reuse and invalidation ----------- *)

(* One multithreaded program, three staged edits that exercise each guard of
   the incremental pre-phases: a shape-preserving pointer retarget (every
   phase must reuse), a fork-target edit (must invalidate the thread model
   and MHP), and a lock-operand edit (must invalidate the lock spans but
   keep the thread model). Every edit stays differential-certified. *)
let mt_source ~target ~lock_var ~global =
  Printf.sprintf
    "int g1;\n\
     int g2;\n\
     int shared;\n\
     lock_t m1;\n\
     lock_t m2;\n\
     void worker_a(int *p) {\n\
    \  lock(&m1);\n\
    \  *p = 1;\n\
    \  unlock(&m1);\n\
     }\n\
     void worker_b(int *p) {\n\
    \  lock(&m2);\n\
    \  *p = 2;\n\
    \  unlock(&m2);\n\
     }\n\
     int main() {\n\
    \  int *q;\n\
    \  int *s;\n\
    \  q = &%s;\n\
    \  s = &shared;\n\
    \  *q = 7;\n\
    \  fork(null, %s, s);\n\
    \  lock(&%s);\n\
    \  *s = 3;\n\
    \  unlock(&%s);\n\
    \  return 0;\n\
     }\n"
    global target lock_var lock_var

let mt_stages =
  [
    (* retarget a points-to edge; identical statement shape *)
    ("retarget", mt_source ~target:"worker_a" ~lock_var:"m1" ~global:"g2");
    (* move the fork to the other worker: a sync-statement edit *)
    ("fork-site", mt_source ~target:"worker_b" ~lock_var:"m1" ~global:"g2");
    (* guard the main-thread store with the other mutex *)
    ("lock", mt_source ~target:"worker_b" ~lock_var:"m2" ~global:"g2");
  ]

let phases_exn ~stage (info : Engine.edit_info) =
  match info.Engine.e_phases with
  | Some p -> p
  | None -> Alcotest.failf "%s: edit ran fully cold (no phase summary)" stage

let test_edit_sequence_phases () =
  let eng = Engine.create ~differential:true () in
  (match Engine.load eng (mt_source ~target:"worker_a" ~lock_var:"m1" ~global:"g1") with
  | Error e -> Alcotest.failf "load failed: %s" e
  | Ok _ -> ());
  let apply (stage, src) =
    match Engine.edit_source eng src with
    | Error e -> Alcotest.failf "%s: edit failed: %s" stage e
    | Ok info ->
      if info.Engine.e_mode <> `Incremental then
        Alcotest.failf "%s: expected an incremental edit" stage;
      Alcotest.(check (option bool))
        (stage ^ ": certified identical to cold")
        (Some true) info.Engine.e_identical;
      (stage, info)
  in
  (match apply (List.nth mt_stages 0) with
  | stage, info ->
    let p = phases_exn ~stage info in
    Alcotest.(check (list string)) (stage ^ ": no fallbacks") [] info.Engine.e_fallbacks;
    Alcotest.(check bool)
      (stage ^ ": every pre-phase reused")
      true
      (p.Engine.ph_andersen_warm && p.Engine.ph_tm_reused && p.Engine.ph_mhp_reused
     && p.Engine.ph_locks_reused && p.Engine.ph_svfg_patched));
  (match apply (List.nth mt_stages 1) with
  | stage, info ->
    let p = phases_exn ~stage info in
    Alcotest.(check bool) (stage ^ ": thread model invalidated") false p.Engine.ph_tm_reused;
    Alcotest.(check bool) (stage ^ ": MHP invalidated") false p.Engine.ph_mhp_reused;
    Alcotest.(check bool)
      (stage ^ ": a tm_* fallback was counted")
      true
      (List.exists
         (fun k -> String.length k >= 3 && String.sub k 0 3 = "tm_")
         info.Engine.e_fallbacks));
  match apply (List.nth mt_stages 2) with
  | stage, info ->
    let p = phases_exn ~stage info in
    Alcotest.(check bool) (stage ^ ": thread model still reused") true p.Engine.ph_tm_reused;
    Alcotest.(check bool) (stage ^ ": MHP still reused") true p.Engine.ph_mhp_reused;
    Alcotest.(check bool) (stage ^ ": lock spans invalidated") false p.Engine.ph_locks_reused;
    (* lowering materialises [&m2] into a temp, so depending on the shape
       the guard trips either on the lock statement itself or on its
       operand's points-to set; both keys mean the spans were invalidated *)
    Alcotest.(check bool)
      (stage ^ ": a locks_* fallback was counted")
      true
      (List.exists
         (fun k -> List.mem k [ "locks_edit"; "locks_operand_drift" ])
         info.Engine.e_fallbacks)

(* The same staged sequence at --jobs 1/2/4: each edit must stay certified
   identical to its cold reference at that jobs value, and the SVFG
   fingerprints after every stage must agree byte-for-byte across jobs. *)
let test_edit_sequence_jobs () =
  let run jobs =
    let eng = Engine.create ~jobs ~differential:true () in
    (match Engine.load eng (mt_source ~target:"worker_a" ~lock_var:"m1" ~global:"g1") with
    | Error e -> Alcotest.failf "jobs %d: load failed: %s" jobs e
    | Ok li -> ignore li);
    List.map
      (fun (stage, src) ->
        match Engine.edit_source eng src with
        | Error e -> Alcotest.failf "jobs %d %s: edit failed: %s" jobs stage e
        | Ok info ->
          Alcotest.(check (option bool))
            (Printf.sprintf "jobs %d %s: identical" jobs stage)
            (Some true) info.Engine.e_identical;
          Svfg.digest (Engine.driver eng).D.svfg)
      mt_stages
  in
  let d1 = run 1 in
  Alcotest.(check (list string)) "digests: jobs 1 vs 2" d1 (run 2);
  Alcotest.(check (list string)) "digests: jobs 1 vs 4" d1 (run 4)

(* -- snapshot / restore ---------------------------------------------------- *)

let test_snapshot_roundtrip () =
  for seed = 0 to 5 do
    let source = Fsam_workloads.Rand_minic.generate ~seed ~size:50 in
    let eng = Engine.create () in
    (match Engine.load eng source with
    | Error e -> Alcotest.failf "seed %d: load failed: %s" seed e
    | Ok _ -> ());
    let path = Filename.temp_file "fsam_test" ".snap" in
    Fun.protect
      ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
      (fun () ->
        (match Engine.snapshot eng path with
        | Ok () -> ()
        | Error e -> Alcotest.failf "seed %d: snapshot failed: %s" seed e);
        let eng2 = Engine.create () in
        match Engine.restore eng2 path with
        | Error e -> Alcotest.failf "seed %d: restore failed: %s" seed e
        | Ok _ ->
          Alcotest.(check bool)
            (Printf.sprintf "seed %d: restored state identical" seed)
            true
            (same_driver_results (Engine.driver eng) (Engine.driver eng2));
          Alcotest.(check string)
            (Printf.sprintf "seed %d: source survives" seed)
            (Engine.source eng) (Engine.source eng2))
  done

let test_snapshot_rejects_garbage () =
  let path = Filename.temp_file "fsam_test" ".snap" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let oc = open_out_bin path in
      output_string oc "definitely not a snapshot";
      close_out oc;
      let eng = Engine.create () in
      match Engine.restore eng path with
      | Ok _ -> Alcotest.fail "garbage accepted as a snapshot"
      | Error _ -> Alcotest.(check bool) "engine still empty" false (Engine.loaded eng))

(* -- protocol -------------------------------------------------------------- *)

let tiny_source =
  "int g;\nvoid writer(int *p) { *p = 1; }\nint main() { int *q; q = &g; writer(q); \
   *q = 2; return 0; }\n"

let req srv fields = Protocol.handle_line srv (J.to_string ~minify:true (J.Obj fields))
let is_ok r = J.member "ok" r = Some (J.Bool true)

let err_code r =
  match J.member "error" r with
  | Some e -> (match J.member "code" e with Some (J.String c) -> Some c | _ -> None)
  | None -> None

let test_protocol_basics () =
  let eng = Engine.create () in
  let srv = Protocol.create eng in
  let r = req srv [ ("id", J.Int 1); ("op", J.String "points-to"); ("var", J.String "q") ] in
  Alcotest.(check (option string)) "query before load" (Some "no_program") (err_code r);
  let r = req srv [ ("id", J.Int 2); ("op", J.String "load"); ("source", J.String tiny_source) ] in
  Alcotest.(check bool) "load ok" true (is_ok r);
  let r = req srv [ ("id", J.Int 3); ("op", J.String "points-to"); ("var", J.String "q") ] in
  Alcotest.(check bool) "points-to ok" true (is_ok r);
  (match J.member "objects" r with
  | Some (J.List [ o ]) ->
    Alcotest.(check bool) "points at g" true (J.member "name" o = Some (J.String "g"))
  | _ -> Alcotest.fail "expected exactly one points-to target");
  let r = req srv [ ("id", J.Int 4); ("op", J.String "frobnicate") ] in
  Alcotest.(check (option string)) "unknown op" (Some "unknown_op") (err_code r);
  let r = Protocol.handle_line srv "{nonsense" in
  Alcotest.(check (option string)) "bad json" (Some "bad_request") (err_code r);
  let r = req srv [ ("id", J.Int 5); ("op", J.String "load"); ("source", J.String "int main( {") ] in
  Alcotest.(check (option string)) "parse error" (Some "parse_error") (err_code r);
  let r =
    req srv
      [
        ("id", J.Int 6);
        ("op", J.String "batch");
        ( "requests",
          J.List
            [
              J.Obj [ ("id", J.Int 7); ("op", J.String "status") ];
              J.Obj [ ("id", J.Int 8); ("op", J.String "races") ];
            ] );
      ]
  in
  Alcotest.(check bool) "batch ok" true (is_ok r);
  (match J.member "replies" r with
  | Some (J.List [ a; b ]) ->
    Alcotest.(check bool) "batch replies ok" true (is_ok a && is_ok b)
  | _ -> Alcotest.fail "expected two batch replies");
  let r =
    req srv
      [ ("id", J.Int 9); ("op", J.String "explain"); ("query", J.String "why-pt") ]
  in
  Alcotest.(check (option string))
    "explain without provenance" (Some "provenance_disabled") (err_code r)

let test_protocol_edit_and_ids () =
  let eng = Engine.create ~differential:true () in
  let srv = Protocol.create eng in
  let r = req srv [ ("id", J.String "a"); ("op", J.String "load"); ("source", J.String tiny_source) ] in
  Alcotest.(check bool) "load ok" true (is_ok r);
  Alcotest.(check bool) "id echoed" true (J.member "id" r = Some (J.String "a"));
  let r =
    req srv
      [
        ("id", J.Int 2);
        ("op", J.String "edit");
        ("fn", J.String "writer");
        ("code", J.String "void writer(int *p) { *p = 1; *p = 2; }");
      ]
  in
  Alcotest.(check bool) "edit ok" true (is_ok r);
  Alcotest.(check bool) "edit certified identical" true
    (J.member "identical" r = Some (J.Bool true));
  let r =
    req srv
      [
        ("id", J.Int 3);
        ("op", J.String "edit");
        ("fn", J.String "nope");
        ("code", J.String "void nope() { return; }");
      ]
  in
  Alcotest.(check (option string)) "edit unknown fn" (Some "parse_error") (err_code r)

(* The crash-flush must be armed during a request, idempotently re-armable,
   and observably disarmed between requests. *)
let test_telemetry_arming () =
  let module T = Fsam_core.Telemetry in
  let path = Filename.temp_file "fsam_test" ".json" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      T.mark_flushed ();
      Alcotest.(check bool) "disarmed at start" false (T.armed ());
      T.flush_at_exit path;
      T.flush_at_exit path;
      (* idempotent re-arm *)
      Alcotest.(check bool) "armed" true (T.armed ());
      T.mark_flushed ();
      Alcotest.(check bool) "disarmed" false (T.armed ());
      let eng = Engine.create () in
      let srv = Protocol.create ~crash_telemetry:path eng in
      let r = req srv [ ("id", J.Int 1); ("op", J.String "load"); ("source", J.String tiny_source) ] in
      Alcotest.(check bool) "request ok" true (is_ok r);
      Alcotest.(check bool) "disarmed between requests" false (T.armed ());
      let r = req srv [ ("id", J.Int 2); ("op", J.String "races") ] in
      Alcotest.(check bool) "second request ok" true (is_ok r);
      Alcotest.(check bool) "still disarmed" false (T.armed ()))

(* -- determinism sweep ----------------------------------------------------- *)

(* Two identical runs must produce identical solver counters and SVFG
   fingerprints — guards the Hashtbl-iteration-order class of bugs. *)
let test_run_determinism () =
  let prog () = Fsam_frontend.Lower.compile_string tiny_source in
  let capture () =
    let d = D.run (prog ()) in
    let counter n = Option.value ~default:(-1) (Fsam_obs.Metrics.find_counter n) in
    ( Svfg.digest d.D.svfg,
      counter "sparse.propagations",
      counter "sparse.strong_updates",
      counter "sparse.weak_updates",
      List.length (Races.detect d) )
  in
  Alcotest.(check bool) "two runs identical" true (capture () = capture ())

(* fields_of is documented to return ids sorted ascending regardless of the
   order fields were materialised in, and find_field_obj must never create. *)
let test_fields_of_sorted () =
  let b = Builder.create () in
  let main = Builder.declare b "main" ~params:[] in
  let x = Builder.stack_obj b ~owner:main "x" in
  Builder.define b main (fun _ -> ());
  let p = Builder.finish b in
  List.iter
    (fun field -> ignore (Prog.field_obj p ~base:x ~field))
    [ "zeta"; "alpha"; "mid"; "beta"; "omega" ];
  let fs = Prog.fields_of p x in
  Alcotest.(check bool) "sorted by id" true (fs = List.sort compare fs);
  Alcotest.(check int) "all five present" 5 (List.length fs);
  let n0 = Prog.n_objs p in
  Alcotest.(check (option int)) "find_field_obj misses without creating" None
    (Prog.find_field_obj p ~base:x ~field:"never");
  Alcotest.(check int) "no object materialised" n0 (Prog.n_objs p)

let suite =
  [
    Alcotest.test_case "edit-differential" `Slow test_edit_differential;
    Alcotest.test_case "edit-jobs-invariant" `Slow test_edit_jobs_invariant;
    Alcotest.test_case "edit-sequence-phases" `Quick test_edit_sequence_phases;
    Alcotest.test_case "edit-sequence-jobs" `Quick test_edit_sequence_jobs;
    Alcotest.test_case "snapshot-roundtrip" `Quick test_snapshot_roundtrip;
    Alcotest.test_case "snapshot-rejects-garbage" `Quick test_snapshot_rejects_garbage;
    Alcotest.test_case "protocol-basics" `Quick test_protocol_basics;
    Alcotest.test_case "protocol-edit" `Quick test_protocol_edit_and_ids;
    Alcotest.test_case "telemetry-arming" `Quick test_telemetry_arming;
    Alcotest.test_case "run-determinism" `Quick test_run_determinism;
    Alcotest.test_case "fields-of-sorted" `Quick test_fields_of_sorted;
  ]
