(* Observability layer: span nesting/ordering, metrics registry behavior,
   JSON round-tripping, Chrome trace shape, and the telemetry document the
   CLI's `analyze --json` emits (golden structural test on word_count). *)

module Obs = Fsam_obs
module J = Fsam_obs.Json

let test_span_nesting () =
  Obs.Span.reset ();
  Obs.Span.with_ ~name:"outer" (fun () ->
      Obs.Span.with_ ~name:"a" (fun () ->
          for i = 1 to 1_000 do
            ignore (Sys.opaque_identity (ref i))
          done);
      Obs.Span.with_ ~name:"b" (fun () -> ()));
  match Obs.Span.roots () with
  | [ root ] ->
    Alcotest.(check string) "root name" "outer" root.Obs.Span.name;
    Alcotest.(check (list string))
      "children in execution order" [ "a"; "b" ]
      (List.map (fun c -> c.Obs.Span.name) root.Obs.Span.children);
    Alcotest.(check int) "span count" 3 (Obs.Span.count root);
    Alcotest.(check bool) "durations non-negative" true (root.Obs.Span.dur_s >= 0.);
    Alcotest.(check bool)
      "children bounded by parent" true
      (List.for_all
         (fun c -> c.Obs.Span.dur_s <= root.Obs.Span.dur_s +. 1e-6)
         root.Obs.Span.children);
    Alcotest.(check bool)
      "allocation recorded on a" true
      (match root.Obs.Span.children with
      | a :: _ -> a.Obs.Span.minor_words +. a.Obs.Span.major_words > 0.
      | [] -> false)
  | l -> Alcotest.failf "expected one root, got %d" (List.length l)

let test_span_exception () =
  Obs.Span.reset ();
  (try Obs.Span.with_ ~name:"boom" (fun () -> failwith "expected") with
  | Failure _ -> ());
  Alcotest.(check (list string))
    "span recorded despite exception" [ "boom" ]
    (Obs.Span.distinct_names (Obs.Span.roots ()))

let test_span_timed () =
  Obs.Span.reset ();
  let v, sp = Obs.Span.with_timed ~name:"timed" (fun () -> 42) in
  Alcotest.(check int) "value passed through" 42 v;
  Alcotest.(check string) "completed span returned" "timed" sp.Obs.Span.name;
  Alcotest.(check bool) "find locates it" true (Obs.Span.find "timed" (Obs.Span.roots ()) <> None)

let test_counters () =
  Obs.Metrics.reset ();
  let c = Obs.Metrics.counter "test.counter" in
  Obs.Metrics.incr c;
  Obs.Metrics.add c 4;
  Alcotest.(check int) "accumulated" 5 (Obs.Metrics.counter_value c);
  Alcotest.(check (option int)) "find by name" (Some 5) (Obs.Metrics.find_counter "test.counter");
  let c' = Obs.Metrics.counter "test.counter" in
  Obs.Metrics.incr c';
  Alcotest.(check int) "same handle by name" 6 (Obs.Metrics.counter_value c);
  Alcotest.(check bool)
    "monotonic: negative add rejected" true
    (match Obs.Metrics.add c (-1) with
    | () -> false
    | exception Invalid_argument _ -> true);
  Alcotest.(check int) "value unchanged after rejected add" 6 (Obs.Metrics.counter_value c)

let test_gauges_histograms () =
  Obs.Metrics.reset ();
  let g = Obs.Metrics.gauge "test.gauge" in
  Obs.Metrics.set g 7;
  Obs.Metrics.set_max g 3;
  Alcotest.(check int) "set_max keeps peak" 7 (Obs.Metrics.gauge_value g);
  Obs.Metrics.set_max g 11;
  Alcotest.(check int) "set_max raises peak" 11 (Obs.Metrics.gauge_value g);
  let h = Obs.Metrics.histogram "test.histo" in
  List.iter (Obs.Metrics.observe h) [ 1; 2; 3; 900 ];
  (match J.member "histograms" (Obs.Metrics.to_json ()) with
  | Some (J.Obj hs) -> (
    match List.assoc_opt "test.histo" hs with
    | Some hj ->
      Alcotest.(check (option bool)) "count" (Some true)
        (Option.map (J.equal (J.Int 4)) (J.member "count" hj));
      Alcotest.(check (option bool)) "sum" (Some true)
        (Option.map (J.equal (J.Int 906)) (J.member "sum" hj))
    | None -> Alcotest.fail "histogram missing from export")
  | _ -> Alcotest.fail "no histograms section");
  Obs.Metrics.reset ();
  Alcotest.(check (option int)) "reset empties registry" None
    (Obs.Metrics.find_gauge "test.gauge")

let test_json_roundtrip () =
  let doc =
    J.Obj
      [
        ("null", J.Null);
        ("true", J.Bool true);
        ("false", J.Bool false);
        ("int", J.Int (-42));
        ("float", J.Float 1.5);
        ("string", J.String "a\"b\\c\nd\te\r \012 \001 plain");
        ("empty_list", J.List []);
        ("list", J.List [ J.Int 1; J.String "x"; J.Obj [ ("k", J.Null) ] ]);
        ("empty_obj", J.Obj []);
      ]
  in
  (match J.of_string (J.to_string doc) with
  | Ok parsed -> Alcotest.(check bool) "pretty round-trip" true (J.equal doc parsed)
  | Error e -> Alcotest.failf "parse failed: %s" e);
  match J.of_string (J.to_string ~minify:true doc) with
  | Ok parsed -> Alcotest.(check bool) "minified round-trip" true (J.equal doc parsed)
  | Error e -> Alcotest.failf "minified parse failed: %s" e

(* qcheck: arbitrary documents round-trip through the emitter and parser.
   Floats are forced fractional — the emitter prints %.12g, so an integral
   float legitimately re-parses as an Int. *)
let json_arbitrary =
  let open QCheck.Gen in
  let scalar =
    oneof
      [
        return J.Null;
        map (fun b -> J.Bool b) bool;
        map (fun i -> J.Int i) int;
        map (fun i -> J.Float (float_of_int i +. 0.5)) (int_range (-1_000_000) 1_000_000);
        map (fun s -> J.String s) (string_size ~gen:printable (int_range 0 12));
      ]
  in
  let gen =
    sized
      (fix (fun self n ->
           if n <= 0 then scalar
           else
             frequency
               [
                 (3, scalar);
                 (1, map (fun l -> J.List l) (list_size (int_range 0 4) (self (n / 3))));
                 ( 1,
                   map
                     (fun kvs -> J.Obj kvs)
                     (list_size (int_range 0 4)
                        (pair (string_size ~gen:printable (int_range 0 8)) (self (n / 3))))
                 );
               ]))
  in
  QCheck.make ~print:(fun j -> J.to_string ~minify:true j) gen

let qcheck_json_roundtrip =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"json round-trips arbitrary values" ~count:300 json_arbitrary
       (fun doc ->
         let ok s = match J.of_string s with Ok j -> J.equal doc j | Error _ -> false in
         ok (J.to_string doc) && ok (J.to_string ~minify:true doc)))

let test_span_snapshot () =
  Obs.Span.reset ();
  Obs.Span.with_ ~name:"done" (fun () -> ());
  Obs.Span.with_ ~name:"outer" (fun () ->
      Obs.Span.with_ ~name:"inner-done" (fun () -> ());
      Obs.Span.with_ ~name:"inner-open" (fun () ->
          match Obs.Span.snapshot () with
          | [ d0; open_root ] ->
            Alcotest.(check string) "closed root first" "done" d0.Obs.Span.name;
            Alcotest.(check string) "open root present" "outer" open_root.Obs.Span.name;
            Alcotest.(check (list string))
              "open root nests completed then open children"
              [ "inner-done"; "inner-open" ]
              (List.map (fun c -> c.Obs.Span.name) open_root.Obs.Span.children);
            Alcotest.(check bool) "open durations non-negative" true
              (open_root.Obs.Span.dur_s >= 0.)
          | l -> Alcotest.failf "expected 2 snapshot roots, got %d" (List.length l)));
  (* snapshotting did not disturb the live recording *)
  Alcotest.(check (list string))
    "normal completion unaffected" [ "done"; "outer" ]
    (List.map (fun r -> r.Obs.Span.name) (Obs.Span.roots ()))

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* names appearing anywhere in the exported span forest *)
let rec json_span_names acc j =
  let name = match J.member "name" j with Some (J.String n) -> [ n ] | _ -> [] in
  let kids =
    match J.member "children" j with
    | Some (J.List l) -> l
    | _ -> []
  in
  List.fold_left json_span_names (name @ acc) kids

let test_trace_crash_flush () =
  Obs.Span.reset ();
  let path = Filename.temp_file "fsam_flush" ".trace" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Obs.Trace.flush_at_exit path;
      (* simulate dying inside an open span: the flush must capture it *)
      Obs.Span.with_ ~name:"open-at-crash" (fun () -> Obs.Trace.flush_now ());
      (match J.of_string (String.trim (read_file path)) with
      | Ok doc -> (
        match J.member "traceEvents" doc with
        | Some (J.List events) ->
          Alcotest.(check bool) "open span captured" true
            (List.exists
               (fun ev -> J.member "name" ev = Some (J.String "open-at-crash"))
               events)
        | _ -> Alcotest.fail "flushed trace has no traceEvents")
      | Error e -> Alcotest.failf "flushed trace is not valid JSON: %s" e);
      (* a fired flush is disarmed: nothing rewrites the file *)
      let oc = open_out path in
      output_string oc "sentinel";
      close_out oc;
      Obs.Trace.flush_now ();
      Alcotest.(check string) "flush disarmed after firing" "sentinel" (read_file path);
      (* mark_flushed disarms a re-armed flush *)
      Obs.Trace.flush_at_exit path;
      Obs.Trace.mark_flushed ();
      Obs.Trace.flush_now ();
      Alcotest.(check string) "mark_flushed disarms" "sentinel" (read_file path))

let test_telemetry_crash_flush () =
  Obs.Span.reset ();
  let path = Filename.temp_file "fsam_flush" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Fsam_core.Telemetry.flush_at_exit path;
      Obs.Span.with_ ~name:"partial-phase" (fun () -> Fsam_core.Telemetry.flush_now ());
      (match J.of_string (String.trim (read_file path)) with
      | Ok doc ->
        Alcotest.(check (option bool)) "schema" (Some true)
          (Option.map (J.equal (J.String "fsam.telemetry/1")) (J.member "schema" doc));
        Alcotest.(check (option bool)) "marked partial" (Some true)
          (Option.map (J.equal (J.Bool true)) (J.member "partial" doc));
        Alcotest.(check bool) "metrics present" true (J.member "metrics" doc <> None);
        (match J.member "spans" doc with
        | Some (J.List spans) ->
          Alcotest.(check bool) "open span exported" true
            (List.mem "partial-phase" (List.fold_left json_span_names [] spans))
        | _ -> Alcotest.fail "spans missing from partial document")
      | Error e -> Alcotest.failf "partial telemetry is not valid JSON: %s" e);
      Fsam_core.Telemetry.mark_flushed ();
      let oc = open_out path in
      output_string oc "sentinel";
      close_out oc;
      Fsam_core.Telemetry.flush_now ();
      Alcotest.(check string) "disarmed" "sentinel" (read_file path))

let test_json_non_finite () =
  (* non-finite floats must still yield valid JSON *)
  let s = J.to_string (J.List [ J.Float Float.nan; J.Float Float.infinity ]) in
  match J.of_string s with
  | Ok (J.List [ J.Null; J.Null ]) -> ()
  | Ok j -> Alcotest.failf "unexpected parse: %s" (J.to_string ~minify:true j)
  | Error e -> Alcotest.failf "invalid JSON emitted: %s" e

let test_trace_format () =
  Obs.Span.reset ();
  Obs.Span.with_ ~name:"root" (fun () -> Obs.Span.with_ ~name:"leaf" (fun () -> ()));
  let s = J.to_string (Obs.Trace.to_json (Obs.Span.roots ())) in
  match J.of_string s with
  | Error e -> Alcotest.failf "trace is not valid JSON: %s" e
  | Ok doc -> (
    match J.member "traceEvents" doc with
    | Some (J.List events) ->
      Alcotest.(check int) "one event per span" 2 (List.length events);
      List.iter
        (fun ev ->
          Alcotest.(check (option bool)) "complete event" (Some true)
            (Option.map (J.equal (J.String "X")) (J.member "ph" ev));
          List.iter
            (fun k ->
              Alcotest.(check bool) (k ^ " present") true (J.member k ev <> None))
            [ "name"; "ts"; "dur"; "pid"; "tid" ])
        events
    | _ -> Alcotest.fail "missing traceEvents array")

let pipeline_phases =
  [ "phase.pre"; "phase.threads"; "phase.mhp"; "phase.locks"; "phase.svfg"; "phase.solve" ]

let test_analyze_telemetry_golden () =
  let spec = Option.get (Fsam_workloads.Suite.find "word_count") in
  let m =
    Fsam_core.Measure.run (fun () ->
        Fsam_core.Driver.run (spec.Fsam_workloads.Suite.build 10))
  in
  let d = m.Fsam_core.Measure.value in
  let doc =
    Fsam_core.Telemetry.analysis_json ~program:"word_count" ~engine:"fsam" ~config:"full"
      ~wall_seconds:m.Fsam_core.Measure.wall_seconds
      ~cpu_seconds:m.Fsam_core.Measure.cpu_seconds ~live_mb:m.Fsam_core.Measure.live_mb
      ~report:(Fsam_core.Report.build d) ()
  in
  match J.of_string (J.to_string doc) with
  | Error e -> Alcotest.failf "telemetry is not valid JSON: %s" e
  | Ok parsed ->
    Alcotest.(check (option bool)) "schema" (Some true)
      (Option.map (J.equal (J.String "fsam.telemetry/1")) (J.member "schema" parsed));
    (* the full report is embedded *)
    (match J.member "report" parsed with
    | Some r ->
      List.iter
        (fun k -> Alcotest.(check bool) ("report." ^ k) true (J.member k r <> None))
        [ "program"; "pre_analysis"; "sparse_solve"; "clients"; "phase_seconds" ]
    | None -> Alcotest.fail "report missing");
    (* the metrics registry is populated *)
    (match J.member "metrics" parsed with
    | Some metrics -> (
      match J.member "counters" metrics with
      | Some (J.Obj counters) ->
        List.iter
          (fun k ->
            Alcotest.(check bool) ("counter " ^ k) true (List.mem_assoc k counters))
          [ "andersen.iterations"; "mhp.iterations"; "sparse.propagations" ]
      | _ -> Alcotest.fail "counters missing")
    | None -> Alcotest.fail "metrics missing");
    (* the span tree covers all six pipeline phases with >= 10 distinct names *)
    (match J.member "spans" parsed with
    | Some (J.List spans) ->
      let names = List.sort_uniq compare (List.fold_left json_span_names [] spans) in
      Alcotest.(check bool)
        (Printf.sprintf "at least 10 distinct span names (got %d)" (List.length names))
        true
        (List.length names >= 10);
      List.iter
        (fun p -> Alcotest.(check bool) ("span " ^ p) true (List.mem p names))
        pipeline_phases
    | _ -> Alcotest.fail "spans missing");
    (* phase_times and the span tree agree *)
    let roots = Obs.Span.roots () in
    (match Obs.Span.find "phase.mhp" roots with
    | Some sp ->
      Alcotest.(check bool) "phase_times match spans" true
        (abs_float (sp.Obs.Span.dur_s -. d.Fsam_core.Driver.times.Fsam_core.Driver.t_interleaving)
        < 1e-9)
    | None -> Alcotest.fail "phase.mhp span not recorded")

let test_trace_file () =
  let spec = Option.get (Fsam_workloads.Suite.find "word_count") in
  ignore (Fsam_core.Driver.run (spec.Fsam_workloads.Suite.build 10));
  let path = Filename.temp_file "fsam_test" ".trace" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Fsam_core.Telemetry.write_trace path;
      let ic = open_in_bin path in
      let s =
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      match J.of_string (String.trim s) with
      | Ok doc -> (
        match J.member "traceEvents" doc with
        | Some (J.List (_ :: _)) -> ()
        | _ -> Alcotest.fail "trace file has no events")
      | Error e -> Alcotest.failf "trace file is not valid JSON: %s" e)

let test_instrument_memoized () =
  let spec = Option.get (Fsam_workloads.Suite.find "word_count") in
  let d = Fsam_core.Driver.run (spec.Fsam_workloads.Suite.build 10) in
  let sets = Fsam_core.Instrument.instrumented_sets d in
  Alcotest.(check bool) "same table on repeated call" true
    (Fsam_core.Instrument.instrumented_sets d == sets);
  let r = Fsam_core.Instrument.analyze d in
  let kept = ref 0 in
  Fsam_ir.Prog.iter_stmts d.Fsam_core.Driver.prog (fun gid _ s ->
      match s with
      | Fsam_ir.Stmt.Load _ | Fsam_ir.Stmt.Store _ ->
        if Fsam_core.Instrument.must_instrument d gid then incr kept
      | _ -> ());
  Alcotest.(check int) "per-query API agrees with analyze" r.Fsam_core.Instrument.instrumented !kept

let suite =
  [
    Alcotest.test_case "span nesting and ordering" `Quick test_span_nesting;
    Alcotest.test_case "span survives exceptions" `Quick test_span_exception;
    Alcotest.test_case "with_timed returns the span" `Quick test_span_timed;
    Alcotest.test_case "counter monotonicity" `Quick test_counters;
    Alcotest.test_case "gauges and histograms" `Quick test_gauges_histograms;
    Alcotest.test_case "json round-trip" `Quick test_json_roundtrip;
    qcheck_json_roundtrip;
    Alcotest.test_case "json non-finite floats" `Quick test_json_non_finite;
    Alcotest.test_case "span snapshot includes open stack" `Quick test_span_snapshot;
    Alcotest.test_case "trace crash flush" `Quick test_trace_crash_flush;
    Alcotest.test_case "telemetry crash flush" `Quick test_telemetry_crash_flush;
    Alcotest.test_case "chrome trace format" `Quick test_trace_format;
    Alcotest.test_case "analyze --json telemetry (golden)" `Quick test_analyze_telemetry_golden;
    Alcotest.test_case "trace file round-trip" `Quick test_trace_file;
    Alcotest.test_case "instrument sets memoized" `Quick test_instrument_memoized;
  ]
