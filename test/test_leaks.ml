(* Memory-leak client tests (MiniC end-to-end: free is an ordinary function
   recognised by name, as malloc is by keyword). *)

module D = Fsam_core.Driver
module L = Fsam_core.Leaks

let run src = D.run (Fsam_frontend.Lower.compile_string src)

let never_freed = function L.Never_freed _ -> true | _ -> false
let double_free = function L.Double_free _ -> true | _ -> false

let test_leak_found () =
  let d =
    run
      {|
      void free(int *p) { }
      int main() {
        int *a;
        int *b;
        a = malloc();
        b = malloc();
        free(a);
        return 0;
      }
      |}
  in
  let fs = L.detect d in
  Alcotest.(check int) "one leak (b)" 1 (List.length (List.filter never_freed fs));
  Alcotest.(check int) "no double free" 0 (List.length (List.filter double_free fs))

let test_freed_through_alias () =
  (* flow through copies and memory must count as freed *)
  let d =
    run
      {|
      int *cell;
      void free(int *p) { }
      int main() {
        int *a;
        int *b;
        a = malloc();
        cell = a;
        b = cell;
        free(b);
        return 0;
      }
      |}
  in
  Alcotest.(check int) "no leaks" 0
    (List.length (List.filter never_freed (L.detect d)))

let test_double_free () =
  let d =
    run
      {|
      void free(int *p) { }
      int main() {
        int *a;
        a = malloc();
        free(a);
        free(a);
        return 0;
      }
      |}
  in
  Alcotest.(check bool) "double free reported" true
    (List.exists double_free (L.detect d))

let test_free_in_loop () =
  let d =
    run
      {|
      void free(int *p) { }
      int main() {
        int *a;
        a = malloc();
        while (nondet()) { free(a); }
        return 0;
      }
      |}
  in
  Alcotest.(check bool) "looped free reported as double free" true
    (List.exists double_free (L.detect d))

let test_free_in_multi_forked_thread () =
  (* the free site is NOT in any CFG cycle of its own function — it runs
     once per worker — but the worker thread is multi-forked, so the same
     heap object may be released once per runtime thread instance *)
  let d =
    run
      {|
      void free(int *p) { }
      int *shared;
      void worker(int *unused) {
        free(shared);
      }
      int main() {
        pthread_t t;
        shared = malloc();
        while (nondet()) {
          fork(&t, worker, null);
        }
        return 0;
      }
      |}
  in
  Alcotest.(check bool) "free in loop-forked thread body is a double free" true
    (List.exists double_free (L.detect d))

let test_free_in_single_forked_thread_clean () =
  (* same shape without the fork loop: a single worker instance frees once —
     the multi-fork rule must not fire *)
  let d =
    run
      {|
      void free(int *p) { }
      int *shared;
      void worker(int *unused) {
        free(shared);
      }
      int main() {
        pthread_t t;
        shared = malloc();
        fork(&t, worker, null);
        return 0;
      }
      |}
  in
  Alcotest.(check int) "single forked free is clean" 0
    (List.length (List.filter double_free (L.detect d)))

let test_clean_program () =
  let d =
    run
      {|
      void free(int *p) { }
      int main() {
        int *a;
        a = malloc();
        free(a);
        return 0;
      }
      |}
  in
  Alcotest.(check int) "clean" 0 (List.length (L.detect d))

let suite =
  [
    Alcotest.test_case "never-freed leak" `Quick test_leak_found;
    Alcotest.test_case "freed through alias" `Quick test_freed_through_alias;
    Alcotest.test_case "double free" `Quick test_double_free;
    Alcotest.test_case "free in loop" `Quick test_free_in_loop;
    Alcotest.test_case "free in multi-forked thread" `Quick test_free_in_multi_forked_thread;
    Alcotest.test_case "free in single-forked thread clean" `Quick
      test_free_in_single_forked_thread_clean;
    Alcotest.test_case "clean program" `Quick test_clean_program;
  ]
