(* bench_gate — regression gate for the BENCH_*.json documents.

   Compares a fresh benchmark document against a committed baseline from
   bench/baselines/ and exits non-zero when a gated metric regressed.

   Gating policy (chosen so the gate is meaningful on any machine):
   - deterministic metrics — fact counts, propagation counts, finding
     counts, identity booleans, status strings — are compared exactly by
     default: these must never drift silently;
   - ratio metrics (keys containing "speedup" or "ratio") are
     machine-sensitive, so they are gated only when --ratio-tolerance PCT
     is given (relative drift beyond PCT fails); additionally,
     --speedup-floor F gates every "speedup" key by an absolute one-sided
     floor — the fresh value must be >= F regardless of the baseline (the
     multi-core CI contract "parallelism must pay at least F x");
   - timing/size metrics (suffixes _s, _us, _mb, _pct, or key "seconds")
     are informational unless --wall-tolerance PCT is given;
   - bookkeeping keys (git_commit, schema, quick, budget_s, scale, cores,
     jobs) and the free-form metrics/spans subtrees are never gated.

   Rows in list-of-object tables are aligned by their "program" field when
   present, by index otherwise; a baseline row or key missing from the
   fresh document is a failure (coverage must not shrink), a new key is a
   note only (schemas may grow additively).

   --self-test FILE proves the gate works without running benchmarks
   twice: FILE vs itself must pass, then the first gated integer leaf is
   perturbed by 20% (>= +1) and the comparison must fail. *)

module J = Fsam_obs.Json

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load path =
  match J.of_string (read_file path) with
  | Ok j -> j
  | Error e ->
    Printf.eprintf "bench_gate: cannot parse %s: %s\n" path e;
    exit 2

(* -- key classification ---------------------------------------------------- *)

let skip_keys = [ "git_commit"; "schema"; "quick"; "budget_s"; "scale"; "cores"; "jobs" ]
let skip_subtrees = [ "metrics"; "spans"; "timelines"; "profile" ]

let has_suffix suf s =
  let ls = String.length s and lf = String.length suf in
  ls >= lf && String.sub s (ls - lf) lf = suf

let contains sub s =
  let ls = String.length s and lb = String.length sub in
  let rec go i = i + lb <= ls && (String.sub s i lb = sub || go (i + 1)) in
  go 0

let is_timing k =
  has_suffix "_s" k || has_suffix "_us" k || has_suffix "_mb" k || has_suffix "_pct" k
  || contains "seconds" k

let is_ratio k = contains "speedup" k || contains "ratio" k

type klass = Skip | Timing | Ratio | Exact

(* Classify by the whole path, not just the leaf key: a timing table like
   [phases_s.pre] stores wall seconds under phase-name leaves, so a
   timing/ratio marker anywhere on the path claims the subtree. *)
let strip_index k = match String.index_opt k '[' with Some i -> String.sub k 0 i | None -> k

let classify path =
  let comps = List.map strip_index (String.split_on_char '.' path) in
  let leaf = match List.rev comps with l :: _ -> l | [] -> path in
  if List.mem leaf skip_keys then Skip
  else if List.exists is_ratio comps then Ratio
  else if List.exists is_timing comps then Timing
  else Exact

(* -- comparison ------------------------------------------------------------ *)

type verdict = {
  mutable failures : string list;  (** gated metric regressed *)
  mutable notes : string list;  (** informational drift / additive keys *)
  mutable gated : int;  (** leaves compared under the exact/tolerance rules *)
}

let fail v fmt = Printf.ksprintf (fun s -> v.failures <- s :: v.failures) fmt
let note v fmt = Printf.ksprintf (fun s -> v.notes <- s :: v.notes) fmt

let num_of = function J.Int i -> Some (float_of_int i) | J.Float f -> Some f | _ -> None

let rel_drift a b =
  if a = 0. then if b = 0. then 0. else infinity else abs_float (b -. a) /. abs_float a

let pp_leaf = function
  | J.Int i -> string_of_int i
  | J.Float f -> Printf.sprintf "%g" f
  | J.Bool b -> string_of_bool b
  | J.String s -> Printf.sprintf "%S" s
  | J.Null -> "null"
  | J.List _ | J.Obj _ -> "<tree>"

(* Align two row lists by the "program" field when every row has one. *)
let row_key j = match J.member "program" j with Some (J.String s) -> Some s | _ -> None

let rec compare_tree ~ratio_tol ~wall_tol ~speedup_floor v path base fresh =
  let recurse = compare_tree ~ratio_tol ~wall_tol ~speedup_floor v in
  match (base, fresh) with
  | J.Obj bs, J.Obj fs ->
    List.iter
      (fun (k, bv) ->
        let p = if path = "" then k else path ^ "." ^ k in
        if List.mem k skip_subtrees then ()
        else
          match List.assoc_opt k fs with
          | Some fv -> recurse p bv fv
          | None -> fail v "%s: key missing from fresh document" p)
      bs;
    List.iter
      (fun (k, _) ->
        if not (List.mem_assoc k bs) then
          note v "%s.%s: new key (not in baseline)" path k)
      fs
  | J.List bs, J.List fs
    when bs <> [] && List.for_all (fun r -> row_key r <> None) bs
         && List.for_all (fun r -> row_key r <> None) fs ->
    List.iter
      (fun br ->
        let key = Option.get (row_key br) in
        let p = Printf.sprintf "%s[%s]" path key in
        match List.find_opt (fun fr -> row_key fr = Some key) fs with
        | Some fr -> recurse p br fr
        | None -> fail v "%s: row missing from fresh document" p)
      bs;
    List.iter
      (fun fr ->
        let key = Option.get (row_key fr) in
        if not (List.exists (fun br -> row_key br = Some key) bs) then
          note v "%s[%s]: new row (not in baseline)" path key)
      fs
  | J.List bs, J.List fs ->
    if List.length bs <> List.length fs then
      fail v "%s: length %d -> %d" path (List.length bs) (List.length fs)
    else
      List.iteri
        (fun i (bv, fv) -> recurse (Printf.sprintf "%s[%d]" path i) bv fv)
        (List.combine bs fs)
  | _ -> (
    match classify path with
    | Skip -> ()
    | Ratio ->
      let leaf =
        match List.rev (String.split_on_char '.' path) with l :: _ -> l | [] -> path
      in
      (match (speedup_floor, num_of fresh) with
      | Some floor, Some b when contains "speedup" leaf ->
        v.gated <- v.gated + 1;
        if b < floor then
          fail v "%s: speedup %.2fx below the %.2fx floor" path b floor
      | _ -> ());
      (match (ratio_tol, num_of base, num_of fresh) with
      | Some tol, Some a, Some b ->
        v.gated <- v.gated + 1;
        let d = rel_drift a b in
        if d > tol /. 100. then
          fail v "%s: ratio drifted %.1f%% (%.4g -> %.4g, tolerance %.1f%%)" path
            (100. *. d) a b tol
      | _ ->
        if not (J.equal base fresh) then
          note v "%s: %s -> %s (ratio, informational)" path (pp_leaf base) (pp_leaf fresh))
    | Timing -> (
      match (wall_tol, num_of base, num_of fresh) with
      | Some tol, Some a, Some b ->
        v.gated <- v.gated + 1;
        (* one-sided: only slower/bigger fails *)
        if b > a *. (1. +. (tol /. 100.)) then
          fail v "%s: regressed %.1f%% (%.4g -> %.4g, tolerance %.1f%%)" path
            (100. *. rel_drift a b) a b tol
      | _ ->
        if not (J.equal base fresh) then
          note v "%s: %s -> %s (timing, informational)" path (pp_leaf base)
            (pp_leaf fresh))
    | Exact ->
      v.gated <- v.gated + 1;
      if not (J.equal base fresh) then
        fail v "%s: %s -> %s (gated exactly)" path (pp_leaf base) (pp_leaf fresh))

let run_compare ?(speedup_floor = None) ~ratio_tol ~wall_tol base fresh =
  let v = { failures = []; notes = []; gated = 0 } in
  compare_tree ~ratio_tol ~wall_tol ~speedup_floor v "" base fresh;
  v.failures <- List.rev v.failures;
  v.notes <- List.rev v.notes;
  v

let print_report ~report ~baseline ~fresh v =
  let buf = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line "bench_gate: %s vs %s" baseline fresh;
  line "gated leaves: %d, failures: %d, notes: %d" v.gated (List.length v.failures)
    (List.length v.notes);
  List.iter (fun f -> line "FAIL %s" f) v.failures;
  List.iter (fun n -> line "note %s" n) v.notes;
  line "%s" (if v.failures = [] then "PASS" else "REGRESSION DETECTED");
  print_string (Buffer.contents buf);
  match report with
  | None -> ()
  | Some path ->
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () -> output_string oc (Buffer.contents buf))

(* -- self-test ------------------------------------------------------------- *)

(* Perturb the first gated exact integer leaf by 20% (at least +1) — the
   injected regression the gate must catch. *)
let rec perturb path j =
  match j with
  | J.Obj fields ->
    let hit = ref false in
    let fields =
      List.map
        (fun (k, v) ->
          if !hit || List.mem k skip_subtrees then (k, v)
          else
            let p = if path = "" then k else path ^ "." ^ k in
            match perturb p v with
            | Some v' ->
              hit := true;
              (k, v')
            | None -> (k, v))
        fields
    in
    if !hit then Some (J.Obj fields) else None
  | J.List items ->
    let hit = ref false in
    let items =
      List.mapi
        (fun i v ->
          if !hit then v
          else
            match perturb (Printf.sprintf "%s[%d]" path i) v with
            | Some v' ->
              hit := true;
              v'
            | None -> v)
        items
    in
    if !hit then Some (J.List items) else None
  | J.Int n when classify path = Exact && n > 0 ->
    Some (J.Int (n + max 1 (n / 5)))
  | _ -> None

let self_test path =
  let doc = load path in
  let replay = run_compare ~ratio_tol:None ~wall_tol:None doc doc in
  if replay.failures <> [] then begin
    Printf.printf "self-test FAILED: baseline replay reported regressions:\n";
    List.iter (fun f -> Printf.printf "  %s\n" f) replay.failures;
    exit 1
  end;
  Printf.printf "self-test: baseline replay passed (%d gated leaves)\n" replay.gated;
  match perturb "" doc with
  | None ->
    Printf.printf "self-test FAILED: no gated integer leaf to perturb in %s\n" path;
    exit 1
  | Some doc' ->
    let v = run_compare ~ratio_tol:None ~wall_tol:None doc doc' in
    if v.failures = [] then begin
      Printf.printf "self-test FAILED: injected 20%% regression was not detected\n";
      exit 1
    end;
    Printf.printf "self-test: injected regression detected (%s)\n"
      (List.hd v.failures);
    Printf.printf "self-test PASS\n"

(* -- CLI ------------------------------------------------------------------- *)

let usage () =
  prerr_endline
    "usage: bench_gate --baseline FILE --fresh FILE [--ratio-tolerance PCT]\n\
    \       [--wall-tolerance PCT] [--speedup-floor X] [--report FILE]\n\
    \       bench_gate --self-test FILE";
  exit 2

let () =
  let baseline = ref None
  and fresh = ref None
  and ratio_tol = ref None
  and wall_tol = ref None
  and speedup_floor = ref None
  and report = ref None
  and selftest = ref None in
  let rec parse = function
    | [] -> ()
    | "--baseline" :: v :: rest ->
      baseline := Some v;
      parse rest
    | "--fresh" :: v :: rest ->
      fresh := Some v;
      parse rest
    | "--ratio-tolerance" :: v :: rest ->
      ratio_tol := float_of_string_opt v;
      if !ratio_tol = None then usage ();
      parse rest
    | "--wall-tolerance" :: v :: rest ->
      wall_tol := float_of_string_opt v;
      if !wall_tol = None then usage ();
      parse rest
    | "--speedup-floor" :: v :: rest ->
      speedup_floor := float_of_string_opt v;
      if !speedup_floor = None then usage ();
      parse rest
    | "--report" :: v :: rest ->
      report := Some v;
      parse rest
    | "--self-test" :: v :: rest ->
      selftest := Some v;
      parse rest
    | _ -> usage ()
  in
  parse (List.tl (Array.to_list Sys.argv));
  match (!selftest, !baseline, !fresh) with
  | Some path, None, None -> self_test path
  | None, Some b, Some f ->
    let v =
      run_compare ~speedup_floor:!speedup_floor ~ratio_tol:!ratio_tol
        ~wall_tol:!wall_tol (load b) (load f)
    in
    print_report ~report:!report ~baseline:b ~fresh:f v;
    if v.failures <> [] then exit 1
  | _ -> usage ()
