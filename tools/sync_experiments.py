#!/usr/bin/env python3
"""Refresh the measured blocks in EXPERIMENTS.md from bench_output.txt."""
import re

bench = open("bench_output.txt").read()

def section(start, stop):
    i = bench.index(start)
    j = bench.index(stop, i)
    return bench[i:j]

# Table 2 rows
t2 = section("word_count     |", "-----\nGeometric")
t2_rows = [l for l in t2.splitlines() if "|" in l]
geo = re.search(r"Geometric mean over mutually-analyzable programs: (.*)", bench).group(1)

# Figure 12 rows
f12 = section("Figure 12", "(paper: value-flow")
f12_rows = [l for l in f12.splitlines() if "|" in l and "FSAM (s)" not in l]

exp = open("EXPERIMENTS.md").read()

new_t2 = "Measured Table 2 (budget 120 s):\n\n```\n" + "\n".join(t2_rows) + \
    "\n\nGeometric mean (mutually analyzable): " + geo + "\n```\n"
exp = re.sub(r"Measured Table 2 \(budget 120 s\):\n\n```\n.*?\n```\n", new_t2, exp, flags=re.S)

new_f12 = "```\n" + "\n".join(f12_rows) + "\n```\n"
# replace the first ``` block after the Figure 12 header
head = exp.index("## Figure 12")
block = re.compile(r"```\n.*?\n```\n", re.S)
m = block.search(exp, head)
exp = exp[: m.start()] + new_f12 + exp[m.end() :]

open("EXPERIMENTS.md", "w").write(exp)
print("EXPERIMENTS.md synced")
