module D = Fsam_core.Driver
module W = Fsam_workloads.Suite
let () =
  let name = Sys.argv.(1) in
  let scale = int_of_string Sys.argv.(2) in
  let s = Option.get (W.find name) in
  let prog = s.W.build scale in
  let stmts, _, _, _, _ = W.program_stats prog in
  Printf.printf "%s scale=%d stmts=%d %!" name scale stmts;
  let m = Fsam_core.Measure.run (fun () -> D.run prog) in
  Printf.printf "fsam %.2fs %.1fMB (pts=%d) %!" m.Fsam_core.Measure.wall_seconds m.Fsam_core.Measure.live_mb
    (Fsam_core.Sparse.pts_entries (m.Fsam_core.Measure.value).D.sparse);
  let cfg = { D.default_config with nonsparse_budget = 120. } in
  let m2 = Fsam_core.Measure.run (fun () -> D.run_nonsparse ~config:cfg prog) in
  (match fst m2.Fsam_core.Measure.value with
   | Fsam_core.Nonsparse.Done ns -> Printf.printf "nonsparse %.2fs %.1fMB (pts=%d)\n%!" m2.Fsam_core.Measure.wall_seconds m2.Fsam_core.Measure.live_mb (Fsam_core.Nonsparse.pts_entries ns)
   | Fsam_core.Nonsparse.Timeout _ -> Printf.printf "nonsparse OOT\n%!")
