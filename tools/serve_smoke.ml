(* End-to-end smoke test of [fsam serve], used by CI: drives a real daemon
   subprocess over its NDJSON protocol through the full lifecycle — load the
   paper-scale synth workload, query, apply a single-function edit, snapshot,
   restart, restore, re-query — and gates on the incremental contract: the
   edit must be byte-identical to a cold run with >= 5x fewer solver
   propagations. Prints the warm-vs-cold latency table quoted in
   EXPERIMENTS.md. Exit status 0 iff every check passes.

   FSAM_BIN overrides the daemon binary (default: the dune build output). *)

module J = Fsam_obs.Json
module Ast = Fsam_frontend.Ast

let bin =
  match Sys.getenv_opt "FSAM_BIN" with
  | Some b -> b
  | None -> "_build/default/bin/fsam_cli.exe"

let failures = ref 0

let check name ok =
  if ok then Printf.printf "ok    %s\n%!" name
  else begin
    incr failures;
    Printf.printf "FAIL  %s\n%!" name
  end

type daemon = { ic : in_channel; oc : out_channel }

let start args =
  let argv = Array.of_list (bin :: "serve" :: args) in
  let ic, oc = Unix.open_process_args bin argv in
  { ic; oc }

let stop d = ignore (Unix.close_process (d.ic, d.oc))

let request d obj =
  output_string d.oc (J.to_string ~minify:true (J.Obj obj));
  output_char d.oc '\n';
  flush d.oc;
  match input_line d.ic with
  | line -> (
    match J.of_string line with
    | Ok reply -> reply
    | Error e -> failwith (Printf.sprintf "unparsable reply %S: %s" line e))
  | exception End_of_file -> failwith "daemon closed the connection"

let is_ok reply = J.member "ok" reply = Some (J.Bool true)
let int_field reply name = match J.member name reply with Some (J.Int i) -> Some i | _ -> None
let us_of reply = Option.value ~default:0 (int_field reply "us")
let str_field reply name =
  match J.member name reply with Some (J.String s) -> Some s | _ -> None

(* the edit: append one genuine statement (a global publish of the local
   heap handle) to a single mid-chain function of the synth workload *)
let edited_source source ~fn =
  let ast = Fsam_frontend.Parser.parse_string source in
  let found = ref false in
  let ast' =
    List.map
      (function
        | Ast.Dfun f when f.Ast.fname = fn ->
          found := true;
          Ast.Dfun { f with Ast.body = f.Ast.body @ [ Ast.Sassign (Ast.Eid "g1_0", Ast.Eid "bh") ] }
        | d -> d)
      ast
  in
  if not !found then failwith (Printf.sprintf "no %s in synth source" fn);
  Fsam_frontend.Pretty.to_string ast'

let () =
  let snap = Filename.temp_file "fsam_smoke" ".snap" in
  let source = Fsam_workloads.Minic_synth.generate Fsam_workloads.Minic_synth.quick in

  (* -- daemon #1: load, query, incremental edit (differential), snapshot -- *)
  let d1 = start [ "--differential" ] in
  let r = request d1 [ ("id", J.Int 1); ("op", J.String "load"); ("source", J.String source) ] in
  check "load synth quick" (is_ok r);
  let load_us = us_of r in
  let races0 = int_field r "races" in

  let r = request d1 [ ("id", J.Int 2); ("op", J.String "points-to"); ("var", J.String "out") ] in
  check "points-to query" (is_ok r);
  let query_us = us_of r in
  let pt_out_before = J.member "objects" r in

  let edited = edited_source source ~fn:"f1_1" in
  let r = request d1 [ ("id", J.Int 3); ("op", J.String "edit"); ("source", J.String edited) ] in
  check "edit request ok" (is_ok r);
  let edit_us = us_of r in
  check "edit ran incrementally" (str_field r "mode" = Some "incremental");
  check "incremental result identical to cold re-run"
    (J.member "identical" r = Some (J.Bool true));
  let warm_prop = Option.value ~default:max_int (int_field r "propagations") in
  let cold_prop = Option.value ~default:0 (int_field r "cold_propagations") in
  Printf.printf "      propagations: warm %d vs cold %d (%.1fx)\n%!" warm_prop cold_prop
    (float_of_int cold_prop /. float_of_int (max 1 warm_prop));
  check "incremental edit >= 5x fewer propagations" (warm_prop * 5 <= cold_prop);

  let r = request d1 [ ("id", J.Int 4); ("op", J.String "races") ] in
  check "races after edit" (is_ok r);
  let races_after_edit = int_field r "count" in
  let races_us = us_of r in

  let r = request d1 [ ("id", J.Int 5); ("op", J.String "snapshot"); ("path", J.String snap) ] in
  check "snapshot saved" (is_ok r);
  let r = request d1 [ ("id", J.Int 6); ("op", J.String "shutdown") ] in
  check "daemon 1 shutdown" (is_ok r);
  stop d1;

  (* -- daemon #2: restart cold, restore the snapshot, re-query ------------- *)
  let d2 = start [] in
  let r = request d2 [ ("id", J.Int 7); ("op", J.String "races") ] in
  check "fresh daemon has no program" (J.member "ok" r = Some (J.Bool false));

  let r = request d2 [ ("id", J.Int 8); ("op", J.String "restore"); ("path", J.String snap) ] in
  check "restore from snapshot" (is_ok r);
  let restore_us = us_of r in

  let r = request d2 [ ("id", J.Int 9); ("op", J.String "races") ] in
  check "races identical across snapshot/restore"
    (is_ok r && int_field r "count" = races_after_edit);

  (* a second single-function edit on the restored state, without the
     differential cross-check: the honest warm-edit latency *)
  let edited2 = edited_source edited ~fn:"f2_1" in
  let r = request d2 [ ("id", J.Int 10); ("op", J.String "edit"); ("source", J.String edited2) ] in
  check "edit after restore is incremental" (is_ok r && str_field r "mode" = Some "incremental");
  let warm_edit_us = us_of r in

  let r = request d2 [ ("id", J.Int 11); ("op", J.String "shutdown") ] in
  check "daemon 2 shutdown" (is_ok r);
  stop d2;
  Sys.remove snap;

  ignore races0;
  ignore pt_out_before;
  Printf.printf "\nwarm-vs-cold latency (synth quick, single-function edit):\n";
  Printf.printf "  %-34s %10s\n" "operation" "wall";
  Printf.printf "  %-34s %7.1f ms\n" "cold load (parse + full pipeline)"
    (float_of_int load_us /. 1000.);
  Printf.printf "  %-34s %7.1f ms\n" "warm edit (incremental solve)"
    (float_of_int warm_edit_us /. 1000.);
  Printf.printf "  %-34s %7.1f ms\n" "edit w/ differential cross-check"
    (float_of_int edit_us /. 1000.);
  Printf.printf "  %-34s %7.1f ms\n" "restore (load snapshot + verify)"
    (float_of_int restore_us /. 1000.);
  Printf.printf "  %-34s %7.1f ms\n" "resident points-to query"
    (float_of_int query_us /. 1000.);
  Printf.printf "  %-34s %7.1f ms\n" "resident race scan" (float_of_int races_us /. 1000.);
  Printf.printf "  propagations: warm %d, cold %d\n" warm_prop cold_prop;
  if !failures > 0 then begin
    Printf.printf "\n%d check(s) FAILED\n" !failures;
    exit 1
  end;
  Printf.printf "\nall serve smoke checks passed\n"
