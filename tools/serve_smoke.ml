(* End-to-end smoke test of [fsam serve], used by CI: drives a real daemon
   subprocess over its NDJSON protocol through the full lifecycle — load the
   paper-scale synth workload, query, apply warm edits, snapshot, restart,
   restore, re-query — and gates on the incremental contract:

   - a shape-preserving single-statement edit must reuse every pre-phase
     (warm Andersen, verbatim thread model / MHP / locks, patched SVFG),
     be byte-identical to a cold run, cut total pre-phase work (Andersen
     propagations + MHP summaries + THREAD-VF pair candidates) >= 5x and
     solver propagations >= 5x vs that cold run;
   - a shape-changing (append) edit must still answer identically, falling
     back per phase with counted reasons;
   - an asynchronous edit must leave the previous generation answering
     queries mid-flight, with mutating ops refused;
   - a restored daemon must warm-patch subsequent edits from its freshly
     rebuilt structures.

   Prints the warm-vs-cold latency table quoted in EXPERIMENTS.md and gates
   end-to-end warm-edit wall vs cold load with [--speedup-floor] (default
   1.0 — wall on a loaded 1-core CI container is noisy; the work gates are
   exact). Exit status 0 iff every check passes.

   FSAM_BIN overrides the daemon binary (default: the dune build output). *)

module J = Fsam_obs.Json
module Ast = Fsam_frontend.Ast

let bin =
  match Sys.getenv_opt "FSAM_BIN" with
  | Some b -> b
  | None -> "_build/default/bin/fsam_cli.exe"

let speedup_floor =
  let f = ref 1.0 in
  let rec scan = function
    | "--speedup-floor" :: v :: rest ->
      (match float_of_string_opt v with
      | Some x -> f := x
      | None -> failwith "bad --speedup-floor");
      scan rest
    | _ :: rest -> scan rest
    | [] -> ()
  in
  scan (Array.to_list Sys.argv);
  !f

let failures = ref 0

let check name ok =
  if ok then Printf.printf "ok    %s\n%!" name
  else begin
    incr failures;
    Printf.printf "FAIL  %s\n%!" name
  end

type daemon = { ic : in_channel; oc : out_channel; mutable last_seq : int }

let start args =
  let argv = Array.of_list (bin :: "serve" :: args) in
  let ic, oc = Unix.open_process_args bin argv in
  { ic; oc; last_seq = 0 }

let stop d = ignore (Unix.close_process (d.ic, d.oc))

(* every reply — including error replies — must echo a strictly increasing
   request id; violations are tallied and gated once at the end *)
let seq_violations = ref 0

let request d obj =
  output_string d.oc (J.to_string ~minify:true (J.Obj obj));
  output_char d.oc '\n';
  flush d.oc;
  match input_line d.ic with
  | line -> (
    match J.of_string line with
    | Ok reply ->
      (match J.member "seq" reply with
      | Some (J.Int s) when s > d.last_seq -> d.last_seq <- s
      | _ -> incr seq_violations);
      reply
    | Error e -> failwith (Printf.sprintf "unparsable reply %S: %s" line e))
  | exception End_of_file -> failwith "daemon closed the connection"

let is_ok reply = J.member "ok" reply = Some (J.Bool true)
let int_field reply name = match J.member name reply with Some (J.Int i) -> Some i | _ -> None
let us_of reply = Option.value ~default:0 (int_field reply "us")
let str_field reply name =
  match J.member name reply with Some (J.String s) -> Some s | _ -> None

let bool_at reply path =
  let rec walk j = function
    | [] -> ( match j with J.Bool b -> Some b | _ -> None)
    | k :: rest -> ( match J.member k j with Some j' -> walk j' rest | None -> None)
  in
  walk reply path

let int_at reply path =
  let rec walk j = function
    | [] -> ( match j with J.Int i -> Some i | _ -> None)
    | k :: rest -> ( match J.member k j with Some j' -> walk j' rest | None -> None)
  in
  walk reply path

(* combined pre-phase work of a run, from a "work"/"cold_work" object *)
let pre_work reply key =
  match J.member key reply with
  | Some w ->
    let g n = Option.value ~default:0 (int_at w [ n ]) in
    Some (g "andersen_propagations" + g "mhp_summaries" + g "svfg_pairs")
  | None -> None

let error_code reply = str_field (Option.value ~default:J.Null (J.member "error" reply)) "code"

(* the shape-preserving edit: in [fn], retarget the first "g... = p..."
   global publish to the module heap handle instead. Same statement
   template, so the lowered program keeps identical statement gids and
   CFGs and every pre-phase reuse guard holds — only the points-to flow
   through that one store changes. *)
let replace_edit source ~fn =
  let ast = Fsam_frontend.Parser.parse_string source in
  let found = ref false in
  let fix_stmt s =
    match s with
    | Ast.Sassign (Ast.Eid g, Ast.Eid p)
      when (not !found)
           && String.length g > 0
           && g.[0] = 'g'
           && String.length p > 0
           && p.[0] = 'p' ->
      found := true;
      Ast.Sassign (Ast.Eid g, Ast.Eid "bh")
    | s -> s
  in
  let ast' =
    List.map
      (function
        | Ast.Dfun f when f.Ast.fname = fn ->
          Ast.Dfun { f with Ast.body = List.map fix_stmt f.Ast.body }
        | d -> d)
      ast
  in
  if not !found then failwith (Printf.sprintf "no global publish to retarget in %s" fn);
  Fsam_frontend.Pretty.to_string ast'

(* same edit, as a single-function replacement fragment for the protocol's
   "fn" + "code" form (the daemon re-parses just the fragment) *)
let replace_edit_fn source ~fn =
  let edited = replace_edit source ~fn in
  let ast = Fsam_frontend.Parser.parse_string edited in
  match List.find_opt (function Ast.Dfun f -> f.Ast.fname = fn | _ -> false) ast with
  | Some d -> (edited, Fsam_frontend.Pretty.to_string [ d ])
  | None -> failwith (Printf.sprintf "no %s in synth source" fn)

(* the shape-changing edit: append one genuine statement (a global publish
   of the local heap handle); stmt counts drift, so the pre-phases must
   fall back while the sparse solve stays warm *)
let append_edit source ~fn =
  let ast = Fsam_frontend.Parser.parse_string source in
  let found = ref false in
  let ast' =
    List.map
      (function
        | Ast.Dfun f when f.Ast.fname = fn ->
          found := true;
          Ast.Dfun { f with Ast.body = f.Ast.body @ [ Ast.Sassign (Ast.Eid "g1_0", Ast.Eid "bh") ] }
        | d -> d)
      ast
  in
  if not !found then failwith (Printf.sprintf "no %s in synth source" fn);
  Fsam_frontend.Pretty.to_string ast'

(* Strict checker for the Prometheus text subset the daemon emits: TYPE
   comments, plain [name value] samples, histogram buckets with an [le]
   label; names [a-zA-Z_:][a-zA-Z0-9_:]*; buckets cumulative with a +Inf
   bucket equal to _count and a _sum sample. Returns violations. *)
let check_prometheus text =
  let errs = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errs := s :: !errs) fmt in
  let name_ok s =
    s <> ""
    && (let c = s.[0] in (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = ':')
    && String.for_all
         (fun c ->
           (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
           || c = '_' || c = ':')
         s
  in
  let buckets = Hashtbl.create 16 and samples = Hashtbl.create 16 in
  let typed = Hashtbl.create 16 in
  List.iter
    (fun line ->
      if line = "" then ()
      else if String.length line >= 7 && String.sub line 0 7 = "# TYPE " then begin
        match String.split_on_char ' ' line with
        | [ _; _; name; kind ] ->
          if not (name_ok name) then err "bad TYPE name %S" name;
          if not (List.mem kind [ "counter"; "gauge"; "histogram" ]) then
            err "bad TYPE kind %S" kind;
          Hashtbl.replace typed name kind
        | _ -> err "malformed TYPE line %S" line
      end
      else if line.[0] = '#' then ()
      else
        match String.index_opt line ' ' with
        | None -> err "sample without value: %S" line
        | Some sp -> (
          let lhs = String.sub line 0 sp in
          let value = String.sub line (sp + 1) (String.length line - sp - 1) in
          let v =
            match float_of_string_opt value with
            | Some v -> v
            | None ->
              err "non-numeric value %S in %S" value line;
              nan
          in
          match String.index_opt lhs '{' with
          | None ->
            if not (name_ok lhs) then err "bad sample name %S" lhs;
            Hashtbl.replace samples lhs v
          | Some lb -> (
            let name = String.sub lhs 0 lb in
            let labels = String.sub lhs lb (String.length lhs - lb) in
            if not (name_ok name) then err "bad sample name %S" name;
            if
              not
                (String.length name > 7
                && String.sub name (String.length name - 7) 7 = "_bucket")
            then err "labels on non-bucket sample %S" lhs
            else
              let base = String.sub name 0 (String.length name - 7) in
              match
                if
                  String.length labels > 6
                  && String.sub labels 0 5 = "{le=\""
                  && labels.[String.length labels - 2] = '"'
                  && labels.[String.length labels - 1] = '}'
                then Some (String.sub labels 5 (String.length labels - 7))
                else None
              with
              | None -> err "bucket without le label: %S" lhs
              | Some le ->
                let prev = try Hashtbl.find buckets base with Not_found -> [] in
                Hashtbl.replace buckets base (prev @ [ (le, v) ]))))
    (String.split_on_char '\n' text);
  Hashtbl.iter
    (fun base bs ->
      (match Hashtbl.find_opt typed base with
      | Some "histogram" -> ()
      | _ -> err "histogram %s has buckets but no histogram TYPE" base);
      let cum = List.map snd bs in
      if not (List.for_all2 (fun a b -> a <= b) cum (List.tl cum @ [ infinity ])) then
        err "%s buckets not cumulative" base;
      (match List.rev bs with
      | ("+Inf", v) :: _ -> (
        match Hashtbl.find_opt samples (base ^ "_count") with
        | Some c when c = v -> ()
        | Some c -> err "%s +Inf bucket %f <> count %f" base v c
        | None -> err "%s missing _count" base)
      | _ -> err "%s last bucket is not +Inf" base);
      if Hashtbl.find_opt samples (base ^ "_sum") = None then err "%s missing _sum" base)
    buckets;
  List.rev !errs

(* the value of a plain [name value] sample in an exposition, if present *)
let sample_value text name =
  List.find_map
    (fun line ->
      match String.index_opt line ' ' with
      | Some sp when String.sub line 0 sp = name ->
        float_of_string_opt (String.sub line (sp + 1) (String.length line - sp - 1))
      | _ -> None)
    (String.split_on_char '\n' text)

(* byte-identity of the named analysis fields between two replies *)
let fields_identical names a b =
  List.for_all (fun n -> J.equal (Option.value ~default:J.Null (J.member n a))
                           (Option.value ~default:J.Null (J.member n b))) names

let all_phases_reused reply =
  List.for_all
    (fun k -> bool_at reply [ "phases"; k ] = Some true)
    [ "andersen_warm"; "tm_reused"; "mhp_reused"; "locks_reused"; "svfg_patched" ]

let () =
  let snap = Filename.temp_file "fsam_smoke" ".snap" in
  let slowlog = Filename.temp_file "fsam_smoke" ".slow" in
  let source = Fsam_workloads.Minic_synth.generate Fsam_workloads.Minic_synth.quick in

  (* -- daemon #1: load, query, warm edits (differential), snapshot ---------
     --slow-ms 0 makes every request an "injected slow query": the slow log
     must fill with fsam.slow/1 lines. *)
  let d1 = start [ "--differential"; "--slow-ms"; "0"; "--slow-log"; slowlog ] in
  let r = request d1 [ ("id", J.Int 1); ("op", J.String "load"); ("source", J.String source) ] in
  check "load synth quick" (is_ok r);
  let load_us = us_of r in
  let cold_pre_work = pre_work r "work" in

  let r = request d1 [ ("id", J.Int 2); ("op", J.String "points-to"); ("var", J.String "out") ] in
  check "points-to query" (is_ok r);
  let query_us = us_of r in

  (* shape-preserving edit: every pre-phase must go warm *)
  let edited = replace_edit source ~fn:"f1_1" in
  let r = request d1 [ ("id", J.Int 3); ("op", J.String "edit"); ("source", J.String edited) ] in
  check "replace-edit request ok" (is_ok r);
  let edit_us = us_of r in
  check "replace-edit ran incrementally" (str_field r "mode" = Some "incremental");
  check "replace-edit identical to cold re-run" (J.member "identical" r = Some (J.Bool true));
  check "replace-edit reused every pre-phase" (all_phases_reused r);
  let warm_prop = Option.value ~default:max_int (int_field r "propagations") in
  let cold_prop = Option.value ~default:0 (int_field r "cold_propagations") in
  Printf.printf "      propagations: warm %d vs cold %d (%.1fx)\n%!" warm_prop cold_prop
    (float_of_int cold_prop /. float_of_int (max 1 warm_prop));
  check "replace-edit >= 5x fewer propagations" (warm_prop * 5 <= cold_prop);
  let warm_pre = Option.value ~default:max_int (pre_work r "work") in
  let cold_pre = Option.value ~default:0 (pre_work r "cold_work") in
  Printf.printf "      pre-phase work: warm %d vs cold %d (%.1fx)\n%!" warm_pre cold_pre
    (float_of_int cold_pre /. float_of_int (max 1 warm_pre));
  check "replace-edit >= 5x less pre-phase work" (warm_pre * 5 <= cold_pre);

  (* shape-changing edit: pre-phases fall back (counted), answers stay
     identical, sparse solve still warm *)
  let edited2 = append_edit edited ~fn:"f2_1" in
  let r = request d1 [ ("id", J.Int 4); ("op", J.String "edit"); ("source", J.String edited2) ] in
  check "append-edit request ok" (is_ok r);
  check "append-edit ran incrementally" (str_field r "mode" = Some "incremental");
  check "append-edit identical to cold re-run" (J.member "identical" r = Some (J.Bool true));
  check "append-edit fell back per phase"
    (match J.member "fallbacks" r with Some (J.List (_ :: _)) -> true | _ -> false);

  let r = request d1 [ ("id", J.Int 5); ("op", J.String "status") ] in
  check "status counts cold fallbacks"
    (is_ok r && match int_field r "serve.fallback_cold" with Some n -> n > 0 | None -> false);

  let r = request d1 [ ("id", J.Int 6); ("op", J.String "races") ] in
  check "races after edits" (is_ok r);
  let races_us = us_of r in

  (* asynchronous edit: queries answer from the pinned generation
     mid-flight; mutating ops are refused until edit-wait *)
  let edited3 = replace_edit edited2 ~fn:"f0_2" in
  let r =
    request d1
      [
        ("id", J.Int 7);
        ("op", J.String "edit");
        ("source", J.String edited3);
        ("async", J.Bool true);
      ]
  in
  check "async edit started" (is_ok r && J.member "started" r = Some (J.Bool true));
  let r = request d1 [ ("id", J.Int 8); ("op", J.String "points-to"); ("var", J.String "out") ] in
  check "query answered mid-edit from pinned generation" (is_ok r);
  let r = request d1 [ ("id", J.Int 9); ("op", J.String "status") ] in
  check "status mid-edit reports busy" (is_ok r && J.member "busy" r = Some (J.Bool true));
  let r = request d1 [ ("id", J.Int 10); ("op", J.String "metrics") ] in
  check "metrics refused mid-edit" (error_code r = Some "edit_in_flight");
  (* the stats op stays available mid-edit (serve registry only) and the
     scrape must already be well-formed exposition text *)
  let r = request d1 [ ("id", J.Int 10); ("op", J.String "stats") ] in
  check "stats op answers mid-edit" (is_ok r);
  (match str_field r "prometheus" with
  | Some text ->
    let errs = check_prometheus text in
    List.iter (fun e -> Printf.printf "      prometheus: %s\n%!" e) errs;
    check "mid-edit scrape passes strict format check" (errs = [])
  | None -> check "mid-edit scrape passes strict format check" false);
  let r = request d1 [ ("id", J.Int 11); ("op", J.String "edit-wait") ] in
  check "edit-wait completes the async edit"
    (is_ok r && str_field r "mode" = Some "incremental"
    && J.member "identical" r = Some (J.Bool true));

  (* the async edit replaced the generation: re-read the race report that
     the snapshot below must preserve *)
  let r = request d1 [ ("id", J.Int 12); ("op", J.String "races") ] in
  check "races after async edit" (is_ok r);
  let races_after_edit = int_field r "count" in

  (* idle stats scrape: per-op latency histograms populated, process gauges
     present, strict format still clean *)
  let r = request d1 [ ("id", J.Int 12); ("op", J.String "stats") ] in
  check "stats op after edits" (is_ok r);
  (match str_field r "prometheus" with
  | Some text ->
    let errs = check_prometheus text in
    List.iter (fun e -> Printf.printf "      prometheus: %s\n%!" e) errs;
    check "idle scrape passes strict format check" (errs = []);
    check "per-op latency histograms populated"
      (match sample_value text "serve_req_points_to_latency_us_count" with
      | Some c -> c >= 2.0
      | None -> false);
    check "process gauges exported"
      ((match sample_value text "serve_pid" with Some p -> p > 0.0 | None -> false)
      && (match sample_value text "serve_rss_kb" with Some r -> r > 0.0 | None -> false)
      && sample_value text "serve_uptime_s" <> None);
    check "requests counter matches traffic"
      (match sample_value text "serve_requests_total" with
      | Some c -> c >= 12.0
      | None -> false)
  | None -> check "idle scrape passes strict format check" false);

  (* flight recorder: the dump op journals the tail of everything above;
     persist it as the CI artifact *)
  let r = request d1 [ ("id", J.Int 12); ("op", J.String "dump") ] in
  check "dump op returns flight journal"
    (is_ok r
    &&
    match J.member "flight" r with
    | Some fj -> (
      match (J.member "entries" fj, J.member "recorded" fj) with
      | Some (J.List (_ :: _ as es)), Some (J.Int n) ->
        n >= List.length es
        &&
        (* entries oldest-first with strictly increasing request ids *)
        let seqs =
          List.filter_map
            (fun e -> match J.member "seq" e with Some (J.Int s) -> Some s | _ -> None)
            es
        in
        List.length seqs = List.length es
        && List.for_all2 ( < ) (0 :: seqs) (seqs @ [ max_int ])
      | _ -> false)
    | None -> false);
  let artifact =
    Option.value ~default:"serve_smoke_flight.json" (Sys.getenv_opt "FSAM_FLIGHT_ARTIFACT")
  in
  (let oc = open_out artifact in
   output_string oc (J.to_string (Option.value ~default:J.Null (J.member "flight" r)));
   output_char oc '\n';
   close_out oc);
  Printf.printf "      flight journal written to %s\n%!" artifact;

  let r = request d1 [ ("id", J.Int 12); ("op", J.String "snapshot"); ("path", J.String snap) ] in
  check "snapshot saved" (is_ok r);
  let r = request d1 [ ("id", J.Int 13); ("op", J.String "shutdown") ] in
  check "daemon 1 shutdown" (is_ok r);
  stop d1;

  (* the injected slow queries must have produced parseable fsam.slow/1
     NDJSON lines *)
  let slow_lines =
    let ic = open_in slowlog in
    let rec go acc = match input_line ic with
      | l -> go (l :: acc)
      | exception End_of_file -> close_in ic; List.rev acc
    in
    go []
  in
  check "slow log emitted under injected slow queries" (List.length slow_lines > 0);
  check "slow log lines are fsam.slow/1 documents"
    (slow_lines <> []
    && List.for_all
         (fun l ->
           match J.of_string l with
           | Ok doc ->
             J.member "schema" doc = Some (J.String "fsam.slow/1")
             && J.member "op" doc <> None
             && (match J.member "us" doc with Some (J.Int u) -> u > 0 | _ -> false)
           | Error _ -> false)
         slow_lines);
  Sys.remove slowlog;

  (* -- daemon #2: restart cold, restore the snapshot, re-query ------------- *)
  let d2 = start [] in
  let r = request d2 [ ("id", J.Int 14); ("op", J.String "races") ] in
  check "fresh daemon has no program" (J.member "ok" r = Some (J.Bool false));

  let r = request d2 [ ("id", J.Int 15); ("op", J.String "restore"); ("path", J.String snap) ] in
  check "restore from snapshot" (is_ok r);
  let restore_us = us_of r in

  let r = request d2 [ ("id", J.Int 16); ("op", J.String "races") ] in
  check "races identical across snapshot/restore"
    (is_ok r && int_field r "count" = races_after_edit);

  (* a warm edit on the restored state, without the differential
     cross-check: the honest warm-edit latency. The restore rebuilt every
     incremental index cold, so the pre-phases must again all go warm. *)
  let _edited4, frag = replace_edit_fn edited3 ~fn:"f2_2" in
  let r =
    request d2
      [
        ("id", J.Int 17);
        ("op", J.String "edit");
        ("fn", J.String "f2_2");
        ("code", J.String frag);
      ]
  in
  check "edit after restore is incremental" (is_ok r && str_field r "mode" = Some "incremental");
  check "edit after restore reused every pre-phase" (all_phases_reused r);
  let warm_edit_us = us_of r in
  let warm_phases =
    match J.member "phases" r with
    | Some p ->
      List.filter_map
        (fun k ->
          match J.member k p with
          | Some (J.Float s) -> Some (k, s)
          | _ -> None)
        [ "andersen_s"; "threads_s"; "mhp_s"; "locks_s"; "svfg_s"; "sparse_s" ]
    | None -> []
  in

  let r = request d2 [ ("id", J.Int 18); ("op", J.String "shutdown") ] in
  check "daemon 2 shutdown" (is_ok r);
  stop d2;
  Sys.remove snap;

  (* -- observability on/off byte-identity, at --jobs 1/2/4 ------------------
     the full telemetry stack (flight recorder + slow log on every request)
     must not perturb a single analysis result *)
  List.iter
    (fun jobs ->
       let n = string_of_int jobs in
       let slowtmp = Filename.temp_file "fsam_smoke" ".slow2" in
       let d_on = start [ "--jobs"; n; "--slow-ms"; "0"; "--slow-log"; slowtmp ] in
       let d_off = start [ "--jobs"; n; "--flight"; "0"; "--slow-ms=-1" ] in
       let both obj = (request d_on obj, request d_off obj) in
       let step name fields obj =
         let a, b = both obj in
         check (Printf.sprintf "obs on/off identical: %s (jobs %d)" name jobs)
           (is_ok a && is_ok b && fields_identical fields a b)
       in
       step "load" [ "svfg_digest"; "propagations"; "races"; "funcs"; "stmts" ]
         [ ("id", J.Int 1); ("op", J.String "load"); ("source", J.String source) ];
       step "points-to" [ "var"; "var_id"; "objects" ]
         [ ("id", J.Int 2); ("op", J.String "points-to"); ("var", J.String "out") ];
       step "races" [ "count"; "races" ] [ ("id", J.Int 3); ("op", J.String "races") ];
       step "warm edit" [ "mode"; "propagations" ]
         [ ("id", J.Int 4); ("op", J.String "edit");
           ("source", J.String (replace_edit source ~fn:"f1_1")) ];
       step "points-to after edit" [ "var"; "var_id"; "objects" ]
         [ ("id", J.Int 5); ("op", J.String "points-to"); ("var", J.String "out") ];
       step "races after edit" [ "count"; "races" ]
         [ ("id", J.Int 6); ("op", J.String "races") ];
       ignore (both [ ("id", J.Int 7); ("op", J.String "shutdown") ]);
       stop d_on;
       stop d_off;
       (try Sys.remove slowtmp with Sys_error _ -> ()))
    [ 1; 2; 4 ];

  check "seq echoed strictly increasing on every reply" (!seq_violations = 0);

  let speedup = float_of_int load_us /. float_of_int (max 1 warm_edit_us) in
  Printf.printf "\nwarm-vs-cold latency (synth quick, single-function edit):\n";
  Printf.printf "  %-34s %10s\n" "operation" "wall";
  Printf.printf "  %-34s %7.1f ms\n" "cold load (parse + full pipeline)"
    (float_of_int load_us /. 1000.);
  Printf.printf "  %-34s %7.1f ms\n" "warm edit (all pre-phases warm)"
    (float_of_int warm_edit_us /. 1000.);
  Printf.printf "  %-34s %7.1f ms\n" "edit w/ differential cross-check"
    (float_of_int edit_us /. 1000.);
  Printf.printf "  %-34s %7.1f ms\n" "restore (load snapshot + verify)"
    (float_of_int restore_us /. 1000.);
  Printf.printf "  %-34s %7.1f ms\n" "resident points-to query"
    (float_of_int query_us /. 1000.);
  Printf.printf "  %-34s %7.1f ms\n" "resident race scan" (float_of_int races_us /. 1000.);
  if warm_phases <> [] then begin
    Printf.printf "  warm-edit phase walls:";
    List.iter (fun (k, s) -> Printf.printf " %s %.1fms" k (s *. 1000.)) warm_phases;
    print_newline ()
  end;
  Printf.printf "  propagations: warm %d, cold %d\n" warm_prop cold_prop;
  Printf.printf "  pre-phase work: warm %d, cold %d\n" warm_pre cold_pre;
  (match cold_pre_work with
  | Some w -> Printf.printf "  cold-load pre-phase work: %d\n" w
  | None -> ());
  Printf.printf "  warm-edit speedup vs cold load: %.1fx (floor %.1fx)\n" speedup speedup_floor;
  check "warm edit meets --speedup-floor" (speedup >= speedup_floor);
  if !failures > 0 then begin
    Printf.printf "\n%d check(s) FAILED\n" !failures;
    exit 1
  end;
  Printf.printf "\nall serve smoke checks passed\n"
