module D = Fsam_core.Driver
module W = Fsam_workloads.Suite
let () =
  let name = Sys.argv.(1) in
  let scale = if Array.length Sys.argv > 2 then int_of_string Sys.argv.(2) else (Option.get (W.find name)).W.scale in
  let s = Option.get (W.find name) in
  let time config = (Fsam_core.Measure.run (fun () -> D.run ~config (s.W.build scale))).Fsam_core.Measure.wall_seconds in
  let base = time D.default_config in
  Printf.printf "%s: base=%.2fs no-int=%.2fx no-vf=%.2fx no-lock=%.2fx\n%!" name base
    (time D.no_interleaving /. base) (time D.no_value_flow /. base) (time D.no_lock /. base)
