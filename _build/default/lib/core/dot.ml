open Fsam_ir
module Svfg = Fsam_memssa.Svfg

let escape s =
  String.concat ""
    (List.map
       (fun c -> match c with '"' -> "\\\"" | '\\' -> "\\\\" | c -> String.make 1 c)
       (List.init (String.length s) (String.get s)))

let stmt_label prog gid =
  Format.asprintf "%d: %a" gid (Prog.pp_stmt prog) (Prog.stmt_at prog gid)

let svfg d =
  let prog = d.Driver.prog in
  let g = d.Driver.svfg in
  let buf = Buffer.create 4096 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pr "digraph svfg {\n  node [shape=box, fontsize=10];\n";
  Svfg.iter_nodes g (fun i node ->
      let label =
        match node with
        | Svfg.Stmt_node gid -> stmt_label prog gid
        | Svfg.Formal_in (fid, o) ->
          Printf.sprintf "formal-in %s / %s" (Prog.func prog fid).Func.fname
            (Prog.obj_name prog o)
        | Svfg.Formal_out (fid, o) ->
          Printf.sprintf "formal-out %s / %s" (Prog.func prog fid).Func.fname
            (Prog.obj_name prog o)
        | Svfg.Call_chi (gid, o) ->
          Printf.sprintf "chi@%d / %s" gid (Prog.obj_name prog o)
      in
      let style =
        match node with Svfg.Stmt_node _ -> "" | _ -> ", style=dotted"
      in
      pr "  n%d [label=\"%s\"%s];\n" i (escape label) style);
  (* classify thread-aware edges by racy marking: an edge between two
     statements of MHP instances is drawn dashed red *)
  Svfg.iter_nodes g (fun i node ->
      List.iter
        (fun (o, j) ->
          let thread_aware =
            match (node, Svfg.node g j) with
            | Svfg.Stmt_node a, Svfg.Stmt_node b ->
              Fsam_mta.Mhp.mhp_stmt d.Driver.mhp a b
            | _ -> false
          in
          if thread_aware then
            pr "  n%d -> n%d [label=\"%s\", color=red, style=dashed];\n" i j
              (escape (Prog.obj_name prog o))
          else
            pr "  n%d -> n%d [label=\"%s\"];\n" i j (escape (Prog.obj_name prog o)))
        (Svfg.o_succs g i));
  pr "}\n";
  Buffer.contents buf

let call_graph d =
  let prog = d.Driver.prog in
  let cg = Fsam_andersen.Solver.call_graph d.Driver.ast in
  let buf = Buffer.create 1024 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pr "digraph callgraph {\n";
  Prog.iter_funcs prog (fun f ->
      pr "  f%d [label=\"%s\"];\n" f.Func.fid (escape f.Func.fname));
  Fsam_graph.Digraph.iter_edges cg (fun u v -> pr "  f%d -> f%d;\n" u v);
  pr "}\n";
  Buffer.contents buf

let cfg_of d fid =
  let prog = d.Driver.prog in
  let f = Prog.func prog fid in
  let buf = Buffer.create 1024 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pr "digraph cfg_%s {\n  node [shape=box, fontsize=10];\n" f.Func.fname;
  Func.iter_stmts f (fun i s ->
      pr "  s%d [label=\"%s\"];\n" i (escape (Format.asprintf "%d: %a" i (Prog.pp_stmt prog) s)));
  Array.iteri (fun i succs -> List.iter (fun j -> pr "  s%d -> s%d;\n" i j) succs) f.Func.succ;
  pr "}\n";
  Buffer.contents buf
