(** Timing and memory measurement for the benchmark harness. Memory is
    reported as the delta of live heap words across the measured computation
    (after a major collection), converted to MB — a faithful stand-in for
    the RSS numbers of the paper's Table 2 for {e relative} comparisons. *)

type 'a measured = { value : 'a; seconds : float; live_mb : float }

val run : (unit -> 'a) -> 'a measured
val words_to_mb : int -> float
