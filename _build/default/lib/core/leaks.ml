open Fsam_dsa
open Fsam_ir

type finding = Never_freed of int | Double_free of int * int * int

let is_free_call prog = function
  | Stmt.Call { target = Stmt.Direct fid; args = [ _ ]; _ } ->
    (Prog.func prog fid).Func.fname = "free"
  | _ -> false

let detect d =
  let prog = d.Driver.prog in
  (* free sites and the heap objects they may release *)
  let free_sites = ref [] in
  Prog.iter_stmts prog (fun gid _ s ->
      if is_free_call prog s then
        match s with
        | Stmt.Call { args = [ a ]; _ } ->
          let heap_targets =
            Iset.filter
              (fun o -> Memobj.is_heap (Prog.obj prog o))
              (Sparse.pt_top d.Driver.sparse a)
          in
          free_sites := (gid, heap_targets) :: !free_sites
        | _ -> ());
  let freed =
    List.fold_left (fun acc (_, s) -> Iset.union acc s) Iset.empty !free_sites
  in
  let findings = ref [] in
  (* never freed: heap objects that appear in some pointer's points-to set
     (i.e. were actually allocated on a reachable path per the analysis) *)
  let live_heap = ref Iset.empty in
  Prog.iter_stmts prog (fun _ _ s ->
      match s with
      | Stmt.Addr_of { obj; _ } when Memobj.is_heap (Prog.obj prog obj) ->
        live_heap := Iset.add obj !live_heap
      | _ -> ());
  Iset.iter
    (fun o -> if not (Iset.mem o freed) then findings := Never_freed o :: !findings)
    !live_heap;
  (* double free: two distinct free sites may release the same object, or a
     single site sits in a loop *)
  let rec pairs = function
    | [] -> ()
    | (g1, s1) :: rest ->
      List.iter
        (fun (g2, s2) ->
          Iset.iter
            (fun o -> if Iset.mem o s2 then findings := Double_free (o, g1, g2) :: !findings)
            s1)
        rest;
      pairs rest
  in
  pairs !free_sites;
  List.iter
    (fun (g, s) ->
      if Fsam_mta.Icfg.in_cfg_cycle d.Driver.icfg g then
        Iset.iter (fun o -> findings := Double_free (o, g, g) :: !findings) s)
    !free_sites;
  List.sort_uniq compare !findings

let pp_finding d ppf = function
  | Never_freed o ->
    Format.fprintf ppf "leak: %s is never freed" (Prog.obj_name d.Driver.prog o)
  | Double_free (o, g1, g2) ->
    Format.fprintf ppf "double free of %s (gids %d, %d)" (Prog.obj_name d.Driver.prog o) g1 g2
