open Fsam_ir

(** The traditional iterative data-flow flow-sensitive pointer analysis the
    paper compares against (NonSparse, §4.3): a points-to graph is maintained
    at {e every program point} and propagated along the ICFG edges; the
    effect of every store is additionally propagated to all statements whose
    procedures may execute concurrently (PCG), in the style of Rugina–Rinard
    [25] extended with procedure-level MHP [14] — the "propagate to every
    statement reachable or MHP" strawman of §1.1.

    Runs under a wall-clock budget and reports OOT ([Timeout]) when it is
    exceeded, as in the paper's Table 2 for [raytrace] and [x264]. *)

type t

type outcome = Done of t | Timeout of float

val solve :
  ?budget_seconds:float ->
  Prog.t ->
  Fsam_andersen.Solver.t ->
  Fsam_mta.Icfg.t ->
  Fsam_mta.Pcg.t ->
  singleton:(int -> bool) ->
  outcome

val pt_top : t -> Stmt.var -> Fsam_dsa.Iset.t
val pt_obj_at : t -> int -> int -> Fsam_dsa.Iset.t
(** [pt_obj_at t gid o] — contents of [o] in the points-to graph {e before}
    statement [gid]. *)

val n_iterations : t -> int
val pts_entries : t -> int
val pp_stats : Format.formatter -> t -> unit
