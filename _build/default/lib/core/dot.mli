(** Graphviz (DOT) exports of the analysis data structures, for debugging
    and for documentation figures — the counterpart of SVF's graph dumps.

    Thread-aware SVFG edges are drawn dashed red, matching the red
    inter-thread value-flows of the paper's Figures 6 and 9. *)

val svfg : Driver.t -> string
val call_graph : Driver.t -> string
val cfg_of : Driver.t -> int -> string
(** Statement-level CFG of one function. *)
