(** Static pre-filtering for dynamic race detectors — the paper's §6
    proposes combining FSAM "with some dynamic analysis tools such as
    Google's ThreadSanitizer to reduce their instrumentation overhead".

    An access needs instrumentation only if it can actually participate in
    an interfering MHP pair on some shared object; everything else can be
    compiled without checks. *)

type report = {
  total_accesses : int;  (** loads + stores in the program *)
  instrumented : int;  (** accesses that must keep their checks *)
  reduction : float;  (** fraction of checks removed, in [0, 1] *)
}

val analyze : Driver.t -> report

val must_instrument : Driver.t -> int -> bool
(** Whether the load/store at this gid needs a dynamic check. *)
