lib/core/deadlocks.mli: Driver Format
