lib/core/report.mli: Driver Format
