lib/core/deadlocks.ml: Driver Format Fsam_dsa Fsam_ir Fsam_mta List Prog Sparse Stmt
