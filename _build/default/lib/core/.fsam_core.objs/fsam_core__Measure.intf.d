lib/core/measure.mli:
