lib/core/dot.mli: Driver
