lib/core/races.mli: Driver Format
