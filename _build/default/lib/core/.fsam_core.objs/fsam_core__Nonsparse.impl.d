lib/core/nonsparse.ml: Array Bitvec Format Fsam_andersen Fsam_dsa Fsam_ir Fsam_mta Func Hashtbl Iset List Memobj Option Prog Queue Stmt Sys
