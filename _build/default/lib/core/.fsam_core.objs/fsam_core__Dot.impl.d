lib/core/dot.ml: Array Buffer Driver Format Fsam_andersen Fsam_graph Fsam_ir Fsam_memssa Fsam_mta Func List Printf Prog String
