lib/core/nonsparse.mli: Format Fsam_andersen Fsam_dsa Fsam_ir Fsam_mta Prog Stmt
