lib/core/races.ml: Driver Format Fsam_dsa Fsam_ir Fsam_mta Iset List Prog Sparse Stmt
