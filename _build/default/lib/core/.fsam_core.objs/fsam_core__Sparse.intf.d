lib/core/sparse.mli: Format Fsam_andersen Fsam_dsa Fsam_ir Fsam_memssa Prog Stmt
