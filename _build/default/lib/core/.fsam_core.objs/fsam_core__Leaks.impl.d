lib/core/leaks.ml: Driver Format Fsam_dsa Fsam_ir Fsam_mta Func Iset List Memobj Prog Sparse Stmt
