lib/core/driver.mli: Format Fsam_andersen Fsam_dsa Fsam_ir Fsam_memssa Fsam_mta Nonsparse Prog Sparse Stmt
