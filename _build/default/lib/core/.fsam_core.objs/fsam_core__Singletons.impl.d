lib/core/singletons.ml: Array Fsam_andersen Fsam_dsa Fsam_graph Fsam_ir Fsam_mta Iset List Memobj Prog
