lib/core/instrument.ml: Driver Fsam_dsa Fsam_ir Fsam_memssa Fsam_mta Hashtbl List Prog Stmt
