lib/core/singletons.mli: Fsam_andersen Fsam_ir Fsam_mta Prog
