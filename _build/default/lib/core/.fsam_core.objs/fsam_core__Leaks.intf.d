lib/core/leaks.mli: Driver Format
