lib/core/measure.ml: Gc Sys
