lib/core/instrument.mli: Driver
