lib/core/report.ml: Deadlocks Driver Format Fsam_andersen Fsam_dsa Fsam_ir Fsam_memssa Fsam_mta Instrument List Prog Races Sparse
