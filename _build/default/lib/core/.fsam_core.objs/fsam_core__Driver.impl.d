lib/core/driver.ml: Format Fsam_andersen Fsam_dsa Fsam_ir Fsam_memssa Fsam_mta List Nonsparse Prog Singletons Sparse Sys Validate
