lib/core/sparse.ml: Array Bitvec Format Fsam_andersen Fsam_dsa Fsam_ir Fsam_memssa Func Hashtbl Iset List Option Prog Queue Stmt
