open Fsam_dsa
open Fsam_ir
module Mta = Fsam_mta

type race = { store_gid : int; access_gid : int; obj : int; both_writes : bool }

(* Flow-sensitive access sets: for a store, the objects it may write is the
   solver's pt of its destination pointer; likewise for loads. *)
let accesses d gid =
  match Prog.stmt_at d.Driver.prog gid with
  | Stmt.Store { dst; _ } -> Some (true, Sparse.pt_top d.Driver.sparse dst)
  | Stmt.Load { src; _ } -> Some (false, Sparse.pt_top d.Driver.sparse src)
  | _ -> None

let protected d o gid gid' =
  (* every MHP instance pair is covered by spans of a common lock *)
  ignore o;
  let pairs = Mta.Mhp.mhp_pairs_inst d.Driver.mhp gid gid' in
  pairs <> []
  && List.for_all (fun (i, j) -> Mta.Locks.common_lock d.Driver.locks i j <> []) pairs

let detect d =
  let prog = d.Driver.prog in
  let stores = ref [] and loads = ref [] in
  Prog.iter_stmts prog (fun gid _ s ->
      match s with
      | Stmt.Store _ -> stores := gid :: !stores
      | Stmt.Load _ -> loads := gid :: !loads
      | _ -> ());
  let races = ref [] in
  let consider s a =
    match (accesses d s, accesses d a) with
    | Some (true, os), Some (w', os') ->
      let common = Iset.inter os os' in
      if (not (Iset.is_empty common)) && Mta.Mhp.mhp_stmt d.Driver.mhp s a then
        Iset.iter
          (fun o ->
            if not (protected d o s a) then
              races := { store_gid = s; access_gid = a; obj = o; both_writes = w' } :: !races)
          common
    | _ -> ()
  in
  List.iter
    (fun s ->
      List.iter (fun a -> consider s a) !loads;
      List.iter (fun a -> if s <= a then consider s a) !stores)
    !stores;
  List.sort_uniq compare !races

let pp_race d ppf r =
  let prog = d.Driver.prog in
  Format.fprintf ppf "race on %s: %a [w] || %a [%s]" (Prog.obj_name prog r.obj)
    (Prog.pp_stmt prog) (Prog.stmt_at prog r.store_gid) (Prog.pp_stmt prog)
    (Prog.stmt_at prog r.access_gid)
    (if r.both_writes then "w" else "r")
