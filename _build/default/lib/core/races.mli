(** A data-race detection client built on FSAM's results — the first client
    the paper's conclusion proposes. A race is a pair of statements that may
    happen in parallel, access a common abstract object (per the
    flow-sensitive points-to sets, so FSAM's precision directly prunes
    false positives), at least one of them a write, and not protected by a
    common lock. *)

type race = {
  store_gid : int;
  access_gid : int;
  obj : int;
  both_writes : bool;
}

val detect : Driver.t -> race list
(** Deduplicated ([store_gid <= access_gid] for write-write pairs), sorted. *)

val pp_race : Driver.t -> Format.formatter -> race -> unit
