open Fsam_ir

(** The [singletons] set of paper §3.4 (after [Lhoták & Chung, POPL'11]):
    abstract objects known to represent exactly one runtime location, and
    hence eligible for strong updates. Excluded are heap objects, arrays,
    locals of recursive functions — and, in the multithreaded setting,
    locals of functions that may be executed by more than one runtime
    thread (several abstract threads, or one multi-forked thread). Field
    objects inherit their root's status. *)

val compute :
  Prog.t -> Fsam_andersen.Solver.t -> Fsam_mta.Threads.t -> Fsam_mta.Icfg.t -> (int -> bool)
(** Returns a predicate on object ids, valid also for field objects
    materialised after the call. *)
