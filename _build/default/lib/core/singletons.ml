open Fsam_dsa
open Fsam_ir
module A = Fsam_andersen.Solver
module Mta = Fsam_mta

let compute prog ast tm icfg =
  (* recursive functions *)
  let cg = A.call_graph ast in
  let scc = Fsam_graph.Scc.compute cg in
  let recursive fid = not (Fsam_graph.Scc.is_trivial scc cg fid) in
  (* how many runtime threads may execute each function *)
  let nf = Prog.n_funcs prog in
  let runners = Array.make nf Iset.empty in
  let multi_runner = Array.make nf false in
  for tid = 0 to Mta.Threads.n_threads tm - 1 do
    List.iter
      (fun iid ->
        let g = (Mta.Threads.inst tm iid).Mta.Threads.i_gid in
        let f = Mta.Icfg.fid_of icfg g in
        runners.(f) <- Iset.add tid runners.(f);
        if Mta.Threads.is_multi tm tid then multi_runner.(f) <- true)
      (Mta.Threads.insts_of_thread tm tid)
  done;
  fun o ->
    if o < 0 || o >= Prog.n_objs prog then false
    else begin
      let info = Prog.obj prog o in
      let root = Prog.obj prog (Memobj.base_of info) in
      (not info.Memobj.is_array)
      && (not root.Memobj.is_array)
      &&
      match root.Memobj.kind with
      | Memobj.Heap _ -> false
      | Memobj.Func _ | Memobj.Thread _ -> false
      | Memobj.Global -> true
      | Memobj.Field _ -> false (* roots are never fields *)
      | Memobj.Stack fid ->
        (not (recursive fid))
        && (not multi_runner.(fid))
        && Iset.cardinal runners.(fid) <= 1
    end
