open Fsam_ir
module A = Fsam_andersen.Solver
module Modref = Fsam_andersen.Modref
module Mta = Fsam_mta
module Svfg = Fsam_memssa.Svfg

type config = {
  svfg : Svfg.config;
  max_ctx_depth : int;
  nonsparse_budget : float;
}

let default_config =
  { svfg = Svfg.default_config; max_ctx_depth = 24; nonsparse_budget = 7200. }

let no_interleaving =
  { default_config with svfg = { Svfg.default_config with use_interleaving = false } }

let no_value_flow =
  { default_config with svfg = { Svfg.default_config with use_value_flow = false } }

let no_lock = { default_config with svfg = { Svfg.default_config with use_lock = false } }

type phase_times = {
  t_pre : float;
  t_thread_model : float;
  t_interleaving : float;
  t_lock : float;
  t_svfg : float;
  t_solve : float;
}

type t = {
  prog : Prog.t;
  ast : A.t;
  modref : Modref.t;
  icfg : Mta.Icfg.t;
  tm : Mta.Threads.t;
  mhp : Mta.Mhp.t;
  locks : Mta.Locks.t;
  pcg : Mta.Pcg.t;
  svfg : Svfg.t;
  sparse : Sparse.t;
  times : phase_times;
}

let timed f =
  let t0 = Sys.time () in
  let r = f () in
  (r, Sys.time () -. t0)

let run ?(config = default_config) prog =
  Validate.check_exn prog;
  let (ast, modref), t_pre =
    timed (fun () ->
        let ast = A.run prog in
        (ast, Modref.compute prog ast))
  in
  let (icfg, tm), t_thread_model =
    timed (fun () ->
        let icfg = Mta.Icfg.build prog ast in
        (icfg, Mta.Threads.build ~max_ctx_depth:config.max_ctx_depth prog ast icfg))
  in
  let mhp, t_interleaving = timed (fun () -> Mta.Mhp.compute tm) in
  let locks, t_lock = timed (fun () -> Mta.Locks.compute prog ast tm) in
  let pcg = Mta.Pcg.compute tm icfg in
  let svfg, t_svfg =
    timed (fun () -> Svfg.build ~config:config.svfg prog ast modref icfg tm mhp locks pcg)
  in
  let sparse, t_solve =
    timed (fun () ->
        let singleton = Singletons.compute prog ast tm icfg in
        Sparse.solve prog ast svfg ~singleton)
  in
  {
    prog;
    ast;
    modref;
    icfg;
    tm;
    mhp;
    locks;
    pcg;
    svfg;
    sparse;
    times = { t_pre; t_thread_model; t_interleaving; t_lock; t_svfg; t_solve };
  }

let run_nonsparse ?(config = default_config) prog =
  Validate.check_exn prog;
  let t0 = Sys.time () in
  let ast = A.run prog in
  let icfg = Mta.Icfg.build prog ast in
  let tm = Mta.Threads.build ~max_ctx_depth:config.max_ctx_depth prog ast icfg in
  let pcg = Mta.Pcg.compute tm icfg in
  let singleton = Singletons.compute prog ast tm icfg in
  let remaining = config.nonsparse_budget -. (Sys.time () -. t0) in
  let outcome =
    Nonsparse.solve ~budget_seconds:(max 0.1 remaining) prog ast icfg pcg ~singleton
  in
  (outcome, Sys.time () -. t0)

let pt t v = Sparse.pt_top t.sparse v

let pt_names t v =
  List.sort compare (List.map (Prog.obj_name t.prog) (Fsam_dsa.Iset.elements (pt t v)))

let alias t a b = not (Fsam_dsa.Iset.disjoint (pt t a) (pt t b))

let total_time t =
  t.times.t_pre +. t.times.t_thread_model +. t.times.t_interleaving +. t.times.t_lock
  +. t.times.t_svfg +. t.times.t_solve

let memory_entries t = Sparse.pts_entries t.sparse

let pp_summary ppf t =
  Format.fprintf ppf
    "@[<v>FSAM summary:@,\
    \  %a@,\
    \  %a@,\
    \  %a@,\
    \  %a@,\
     \  phases: pre %.3fs, threads %.3fs, mhp %.3fs, locks %.3fs, svfg %.3fs, solve %.3fs@]"
    A.pp_stats t.ast Mta.Threads.pp_stats t.tm Svfg.pp_stats t.svfg Sparse.pp_stats t.sparse
    t.times.t_pre t.times.t_thread_model t.times.t_interleaving t.times.t_lock t.times.t_svfg
    t.times.t_solve
