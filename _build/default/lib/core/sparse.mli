open Fsam_ir

(** The sparse flow-sensitive points-to solver of paper §3.4 (Figure 10):
    points-to facts propagate only along the pre-computed def-use edges of
    the SVFG. Top-level variables are in SSA form, so each has a single
    global points-to set updated at its unique definition; address-taken
    objects have one set per defining SVFG node ([pt(s, o)]).

    Strong updates ([P-SU/WU]): a store kills the incoming contents of [o]
    when its pointer resolves to exactly [{o}], [o] is a singleton location,
    and the store is not part of an interfering MHP pair on [o]. A store
    through a null pointer (empty points-to set) generates nothing. *)

type t

val solve :
  Prog.t ->
  Fsam_andersen.Solver.t ->
  Fsam_memssa.Svfg.t ->
  singleton:(int -> bool) ->
  t

val pt_top : t -> Stmt.var -> Fsam_dsa.Iset.t
(** Points-to set of a top-level variable (at/after its unique def). *)

val pt_at_store : t -> int -> int -> Fsam_dsa.Iset.t
(** [pt_at_store t gid o] — contents of object [o] immediately after the
    store (or fork) statement [gid]. *)

val pt_obj_anywhere : t -> int -> Fsam_dsa.Iset.t
(** Union of [o]'s contents over all defining nodes — a flow-insensitive
    projection used by clients and sanity checks. *)

val n_iterations : t -> int

val n_strong_updates : t -> int
(** Incoming-edge propagations suppressed by a strong update (cumulative
    over solver events). *)

val n_weak_updates : t -> int
val pts_entries : t -> int
(** Total number of (location, target) facts — the memory-size proxy
    reported in the benchmark tables. *)

val pp_stats : Format.formatter -> t -> unit
