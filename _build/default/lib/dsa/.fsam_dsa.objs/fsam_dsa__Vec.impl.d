lib/dsa/vec.ml: Array List Printf
