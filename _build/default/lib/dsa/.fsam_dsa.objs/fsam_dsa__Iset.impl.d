lib/dsa/iset.ml: Format Hashtbl List Stdlib
