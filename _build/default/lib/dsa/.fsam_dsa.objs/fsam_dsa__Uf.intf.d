lib/dsa/uf.mli:
