lib/dsa/uf.ml: Array
