lib/dsa/bitvec.ml: Array Bytes Char Iset
