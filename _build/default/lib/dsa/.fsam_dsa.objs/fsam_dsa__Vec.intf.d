lib/dsa/vec.mli:
