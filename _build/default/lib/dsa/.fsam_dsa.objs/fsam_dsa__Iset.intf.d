lib/dsa/iset.mli: Format
