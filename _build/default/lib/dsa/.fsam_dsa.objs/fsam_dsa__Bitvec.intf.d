lib/dsa/bitvec.mli: Iset
