(* Big-endian Patricia trees after Okasaki & Gill, "Fast Mergeable Integer
   Maps" (ML Workshop 1998), specialised to sets of non-negative ints. *)

type t =
  | Empty
  | Leaf of int
  | Branch of int * int * t * t
      (* Branch (prefix, branching-bit, left, right): [left] holds keys whose
         branching bit is 0, [right] those whose bit is 1. The prefix is the
         common high-order part of every key in the subtree. *)

let empty = Empty
let is_empty = function Empty -> true | _ -> false
let singleton k = Leaf k

(* Bit fiddling ----------------------------------------------------------- *)

let zero_bit k m = k land m = 0

(* Big-endian: the branching bit [m] is the highest differing bit; the prefix
   keeps the bits strictly above [m]. *)
let mask k m = k land lnot ((m lsl 1) - 1)
let match_prefix k p m = mask k m = p

let branching_bit p0 p1 =
  (* highest bit where the prefixes differ *)
  let x = p0 lxor p1 in
  let x = x lor (x lsr 1) in
  let x = x lor (x lsr 2) in
  let x = x lor (x lsr 4) in
  let x = x lor (x lsr 8) in
  let x = x lor (x lsr 16) in
  let x = x lor (x lsr 32) in
  x - (x lsr 1)

let join p0 t0 p1 t1 =
  let m = branching_bit p0 p1 in
  if zero_bit p0 m then Branch (mask p0 m, m, t0, t1)
  else Branch (mask p0 m, m, t1, t0)

(* Queries ---------------------------------------------------------------- *)

let rec mem k = function
  | Empty -> false
  | Leaf j -> k = j
  | Branch (p, m, l, r) ->
    if not (match_prefix k p m) then false
    else if zero_bit k m then mem k l
    else mem k r

let rec add k t =
  match t with
  | Empty -> Leaf k
  | Leaf j -> if j = k then t else join k (Leaf k) j t
  | Branch (p, m, l, r) ->
    if match_prefix k p m then
      if zero_bit k m then
        let l' = add k l in
        if l' == l then t else Branch (p, m, l', r)
      else
        let r' = add k r in
        if r' == r then t else Branch (p, m, l, r')
    else join k (Leaf k) p t

let branch p m l r =
  match (l, r) with Empty, _ -> r | _, Empty -> l | _ -> Branch (p, m, l, r)

let rec remove k t =
  match t with
  | Empty -> Empty
  | Leaf j -> if k = j then Empty else t
  | Branch (p, m, l, r) ->
    if not (match_prefix k p m) then t
    else if zero_bit k m then
      let l' = remove k l in
      if l' == l then t else branch p m l' r
    else
      let r' = remove k r in
      if r' == r then t else branch p m l r'

(* Merging. [union a b] preserves physical identity of [a] when b ⊆ a. ----- *)

let rec union s t =
  match (s, t) with
  | Empty, _ -> t
  | _, Empty -> s
  | Leaf k, _ -> (match t with Leaf j when j = k -> s | _ -> add k t)
  | _, Leaf k -> add k s
  | Branch (p, m, l0, r0), Branch (q, n, l1, r1) ->
    if m = n && p = q then
      let l = union l0 l1 and r = union r0 r1 in
      if l == l0 && r == r0 then s
      else if l == l1 && r == r1 then t
      else Branch (p, m, l, r)
    else if m > n && match_prefix q p m then
      if zero_bit q m then
        let l = union l0 t in
        if l == l0 then s else Branch (p, m, l, r0)
      else
        let r = union r0 t in
        if r == r0 then s else Branch (p, m, l0, r)
    else if m < n && match_prefix p q n then
      if zero_bit p n then
        let l = union s l1 in
        if l == l1 then t else Branch (q, n, l, r1)
      else
        let r = union s r1 in
        if r == r1 then t else Branch (q, n, l1, r)
    else join p s q t

let rec inter s t =
  match (s, t) with
  | Empty, _ | _, Empty -> Empty
  | Leaf k, _ -> if mem k t then s else Empty
  | _, Leaf k -> if mem k s then t else Empty
  | Branch (p, m, l0, r0), Branch (q, n, l1, r1) ->
    if m = n && p = q then branch p m (inter l0 l1) (inter r0 r1)
    else if m > n && match_prefix q p m then
      inter (if zero_bit q m then l0 else r0) t
    else if m < n && match_prefix p q n then
      inter s (if zero_bit p n then l1 else r1)
    else Empty

let rec diff s t =
  match (s, t) with
  | Empty, _ -> Empty
  | _, Empty -> s
  | Leaf k, _ -> if mem k t then Empty else s
  | _, Leaf k -> remove k s
  | Branch (p, m, l0, r0), Branch (q, n, l1, r1) ->
    if m = n && p = q then branch p m (diff l0 l1) (diff r0 r1)
    else if m > n && match_prefix q p m then
      if zero_bit q m then branch p m (diff l0 t) r0
      else branch p m l0 (diff r0 t)
    else if m < n && match_prefix p q n then
      diff s (if zero_bit p n then l1 else r1)
    else s

let rec subset s t =
  match (s, t) with
  | Empty, _ -> true
  | _, Empty -> false
  | Leaf k, _ -> mem k t
  | Branch _, Leaf _ -> false
  | Branch (p, m, l0, r0), Branch (q, n, l1, r1) ->
    if m = n && p = q then subset l0 l1 && subset r0 r1
    else if m < n && match_prefix p q n then
      subset s (if zero_bit p n then l1 else r1)
    else false

let rec equal s t =
  s == t
  ||
  match (s, t) with
  | Empty, Empty -> true
  | Leaf a, Leaf b -> a = b
  | Branch (p, m, l0, r0), Branch (q, n, l1, r1) ->
    p = q && m = n && equal l0 l1 && equal r0 r1
  | _ -> false

let rec disjoint s t =
  match (s, t) with
  | Empty, _ | _, Empty -> true
  | Leaf k, _ -> not (mem k t)
  | _, Leaf k -> not (mem k s)
  | Branch (p, m, l0, r0), Branch (q, n, l1, r1) ->
    if m = n && p = q then disjoint l0 l1 && disjoint r0 r1
    else if m > n && match_prefix q p m then
      disjoint (if zero_bit q m then l0 else r0) t
    else if m < n && match_prefix p q n then
      disjoint s (if zero_bit p n then l1 else r1)
    else true

let rec cardinal = function
  | Empty -> 0
  | Leaf _ -> 1
  | Branch (_, _, l, r) -> cardinal l + cardinal r

let rec iter f = function
  | Empty -> ()
  | Leaf k -> f k
  | Branch (_, _, l, r) ->
    iter f l;
    iter f r

let rec fold f t acc =
  match t with
  | Empty -> acc
  | Leaf k -> f k acc
  | Branch (_, _, l, r) -> fold f r (fold f l acc)

let rec exists p = function
  | Empty -> false
  | Leaf k -> p k
  | Branch (_, _, l, r) -> exists p l || exists p r

let rec for_all p = function
  | Empty -> true
  | Leaf k -> p k
  | Branch (_, _, l, r) -> for_all p l && for_all p r

let rec filter p t =
  match t with
  | Empty -> Empty
  | Leaf k -> if p k then t else Empty
  | Branch (pr, m, l, r) ->
    let l' = filter p l and r' = filter p r in
    if l' == l && r' == r then t else branch pr m l' r'

(* Big-endian layout on non-negative keys means an in-order walk visits keys
   in increasing order. *)
let elements t = List.rev (fold (fun k acc -> k :: acc) t [])
let of_list l = List.fold_left (fun s k -> add k s) empty l

let rec choose = function
  | Empty -> None
  | Leaf k -> Some k
  | Branch (_, _, l, _) -> choose l

let min_elt = choose

let compare s t =
  (* total order consistent with [equal]; not the subset order *)
  Stdlib.compare (elements s) (elements t)

let hash t = Hashtbl.hash (elements t)

let pp ppf t =
  Format.fprintf ppf "{@[%a@]}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ")
       Format.pp_print_int)
    (elements t)
