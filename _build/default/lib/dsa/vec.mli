(** Growable arrays (OCaml 5.2's [Dynarray] is not available on 5.1). *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val get : 'a t -> int -> 'a
val set : 'a t -> int -> 'a -> unit

val push : 'a t -> 'a -> int
(** Appends and returns the index of the new element. *)

val iter : ('a -> unit) -> 'a t -> unit
val iteri : (int -> 'a -> unit) -> 'a t -> unit
val fold : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
val to_list : 'a t -> 'a list
val of_list : 'a list -> 'a t
val to_array : 'a t -> 'a array
