type 'a t = { mutable data : 'a array; mutable len : int }

let create () = { data = [||]; len = 0 }
let length t = t.len

let check t i =
  if i < 0 || i >= t.len then invalid_arg (Printf.sprintf "Vec: index %d out of bounds (len %d)" i t.len)

let get t i =
  check t i;
  t.data.(i)

let set t i x =
  check t i;
  t.data.(i) <- x

let push t x =
  if t.len = Array.length t.data then begin
    let n = max 8 (2 * t.len) in
    let data = Array.make n x in
    Array.blit t.data 0 data 0 t.len;
    t.data <- data
  end;
  t.data.(t.len) <- x;
  t.len <- t.len + 1;
  t.len - 1

let iter f t =
  for i = 0 to t.len - 1 do
    f t.data.(i)
  done

let iteri f t =
  for i = 0 to t.len - 1 do
    f i t.data.(i)
  done

let fold f acc t =
  let acc = ref acc in
  for i = 0 to t.len - 1 do
    acc := f !acc t.data.(i)
  done;
  !acc

let to_list t = List.init t.len (fun i -> t.data.(i))

let of_list l =
  let t = create () in
  List.iter (fun x -> ignore (push t x)) l;
  t

let to_array t = Array.init t.len (fun i -> t.data.(i))
