(** Sets of non-negative integers as big-endian Patricia trees.

    This is the points-to set representation used throughout the analyses.
    Patricia trees give {i hash-consing-free structural sharing}: unioning two
    sets reuses common subtrees, which matters a great deal for pointer
    analysis where thousands of points-to sets share most of their elements
    (cf. LLVM's [SparseBitVector], which the paper's implementation uses).

    All operations are purely functional. Keys must be [>= 0]. *)

type t

val empty : t
val is_empty : t -> bool
val singleton : int -> t
val mem : int -> t -> bool
val add : int -> t -> t
val remove : int -> t -> t

val union : t -> t -> t
(** [union a b] returns [a] itself (physical equality) whenever [b ⊆ a];
    the solvers rely on this to detect fixpoints cheaply. *)

val inter : t -> t -> t
val diff : t -> t -> t
val subset : t -> t -> bool
val equal : t -> t -> bool
val disjoint : t -> t -> bool
val cardinal : t -> int
val iter : (int -> unit) -> t -> unit
val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a
val exists : (int -> bool) -> t -> bool
val for_all : (int -> bool) -> t -> bool
val filter : (int -> bool) -> t -> t
val elements : t -> int list
(** Sorted in increasing order. *)

val of_list : int list -> t
val choose : t -> int option
(** An arbitrary element, [None] on the empty set. *)

val min_elt : t -> int option
val compare : t -> t -> int
val hash : t -> int
val pp : Format.formatter -> t -> unit
(** Prints as [{1, 2, 3}]. *)
