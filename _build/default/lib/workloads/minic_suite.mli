(** MiniC {e source} renditions of representative benchmark skeletons, for
    exercising the whole frontend at scale and for human inspection. The IR
    generators in {!Suite} remain the canonical benchmark programs (they are
    faster to build at large scales); these produce the same concurrency
    patterns as compilable text. *)

val wordcount : scale:int -> string
(** Phoenix-style master–slave map-reduce with symmetric fork/join loops. *)

val taskqueue : scale:int -> string
(** Radiosity-style lock-protected task queues (paper Figure 13). *)

val server : scale:int -> string
(** httpd-style accept loop with detached handler threads. *)

val all : (string * (scale:int -> string)) list
