let generate ~seed ~size =
  let rng = Random.State.make [| seed; 0x3117 |] in
  let buf = Buffer.create 1024 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let pick l = List.nth l (Random.State.int rng (List.length l)) in
  let chance p = Random.State.float rng 1.0 < p in
  let globals = [ "g0"; "g1"; "g2" ] in
  pr "struct S { int *f; int *g; };\n";
  List.iter (fun g -> pr "int %s;\n" g) globals;
  pr "int *gp;\n";
  pr "struct S gs;\n";
  pr "int *garr[4];\n";
  pr "lock_t m;\n";
  pr "thread_t tids[4];\n";
  (* worker and helper bodies share the same statement generator *)
  let gen_body ~vars ~n ~depth_allowed =
    let vars = ref vars in
    let nv = ref 0 in
    let out = Buffer.create 256 in
    let line fmt = Printf.ksprintf (fun s -> Buffer.add_string out s) fmt in
    let fresh () =
      incr nv;
      let v = Printf.sprintf "v%d" !nv in
      line "  int *%s;\n" v;
      vars := v :: !vars;
      v
    in
    let var () = pick !vars in
    let rec stmt depth =
      match Random.State.int rng 12 with
      | 0 -> line "  %s = &%s;\n" (var ()) (pick globals)
      | 1 -> line "  %s = %s;\n" (var ()) (var ())
      | 2 -> line "  %s = *%s;\n" (var ()) (var ())
      | 3 -> line "  *%s = %s;\n" (var ()) (var ())
      | 4 -> line "  %s = malloc();\n" (var ())
      | 5 ->
        if chance 0.5 then line "  gs.f = %s;\n" (var ())
        else line "  %s = gs.%s;\n" (var ()) (pick [ "f"; "g" ])
      | 6 ->
        if chance 0.5 then line "  garr[1] = %s;\n" (var ())
        else line "  %s = garr[0];\n" (var ())
      | 7 -> line "  gp = %s;\n" (var ())
      | 8 -> line "  %s = gp;\n" (var ())
      | 9 when depth < 2 && depth_allowed ->
        line "  if (nondet()) {\n";
        stmt (depth + 1);
        line "  } else {\n";
        stmt (depth + 1);
        line "  }\n"
      | 10 when depth < 2 && depth_allowed ->
        line "  while (nondet()) {\n";
        stmt (depth + 1);
        line "  }\n"
      | _ ->
        line "  lock(&m);\n";
        stmt 2;
        (* no further nesting inside the region *)
        line "  unlock(&m);\n"
    in
    ignore (fresh ());
    ignore (fresh ());
    for _ = 1 to n do
      stmt 0
    done;
    (!vars, Buffer.contents out)
  in
  let body_n = max 2 (size / 3) in
  let wvars, wbody = gen_body ~vars:[ "arg" ] ~n:body_n ~depth_allowed:true in
  pr "void worker(int *arg) {\n%s  *arg = %s;\n}\n" wbody (pick wvars);
  let hvars, hbody = gen_body ~vars:[ "a"; "b" ] ~n:(body_n / 2) ~depth_allowed:false in
  pr "int *helper(int *a, int *b) {\n%s  return %s;\n}\n" hbody (pick hvars);
  let mvars, mbody = gen_body ~vars:[] ~n:body_n ~depth_allowed:true in
  pr "int main() {\n%s" mbody;
  pr "  %s = helper(%s, %s);\n" (pick mvars) (pick mvars) (pick mvars);
  if chance 0.8 then begin
    pr "  fork(&tids[0], worker, %s);\n" (pick mvars);
    if chance 0.6 then pr "  fork(null, worker, %s);\n" (pick mvars);
    if chance 0.7 then pr "  join(&tids[0]);\n";
    pr "  %s = gp;\n" (pick mvars)
  end;
  pr "  return 0;\n}\n";
  Buffer.contents buf
