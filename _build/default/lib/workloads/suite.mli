open Fsam_ir

(** The ten benchmark programs of the paper's Table 1, as synthetic IR
    generators that mirror each program's concurrency skeleton and relative
    size (see DESIGN.md for the substitution argument):

    - [word_count], [kmeans] — Phoenix master–slave map-reduce: symmetric
      fork/join loops (paper Figure 11), [kmeans] re-forks iteratively;
    - [radiosity] — lock-protected global task queue (paper Figure 13);
    - [automount] — many independent lock-release spans;
    - [ferret] — thread pipeline with per-stage queues and locks;
    - [bodytrack] — thread pool over a large pointer web;
    - [httpd_server], [mt_daapd] — detached worker threads spawned in an
      accept loop, never (or only partially) joined;
    - [raytrace], [x264] — the two largest: deep call graphs, function
      pointer tables, large webs — the programs on which NonSparse times
      out in the paper. *)

type spec = {
  name : string;
  description : string;
  paper_loc : int;  (** LOC of the real program in Table 1 *)
  scale : int;  (** default size knob (roughly statements / 10) *)
  build : int -> Prog.t;  (** build at a given scale *)
}

val all : spec list
val find : string -> spec option
val program_stats : Prog.t -> int * int * int * int * int
(** (statements, functions, forks, joins, lock sites). *)
