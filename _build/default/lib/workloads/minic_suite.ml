(* Text generation helpers: every function body gets [scale]-many lines of
   mostly-local pointer traffic with periodic shared accesses, mirroring
   Suite.web. *)

let web buf ~prefix ~shared ~n =
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let n_locals = max 2 (n / 6) in
  for i = 0 to n_locals - 1 do
    pr "  int %s_cell%d;\n" prefix i;
    pr "  int *%s_p%d;\n" prefix i;
    pr "  %s_p%d = &%s_cell%d;\n" prefix i prefix i
  done;
  for k = 0 to n - 1 do
    let l = k mod n_locals in
    let l' = (k + 1) mod n_locals in
    match k mod 6 with
    | 0 -> pr "  %s = %s_p%d;\n" (List.nth shared (k mod List.length shared)) prefix l
    | 1 -> pr "  %s_p%d = %s;\n" prefix l (List.nth shared (k mod List.length shared))
    | 2 -> pr "  *%s_p%d = %s_p%d;\n" prefix l prefix l'
    | 3 -> pr "  %s_p%d = *%s_p%d;\n" prefix l prefix l'
    | 4 -> pr "  %s_p%d = %s_p%d;\n" prefix l prefix l'
    | _ -> pr "  %s_p%d = malloc();\n" prefix l
  done

let wordcount ~scale =
  let buf = Buffer.create 4096 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pr "int *bucket0;\nint *bucket1;\nint *bucket2;\n";
  pr "int *words;\nint result;\n";
  pr "thread_t tids[8];\nlock_t bucket_lock;\n";
  pr "void wordcount_map(int *chunk) {\n";
  pr "  lock(&bucket_lock);\n";
  web buf ~prefix:"m" ~shared:[ "bucket0"; "bucket1"; "bucket2" ] ~n:(scale / 2);
  pr "  unlock(&bucket_lock);\n}\n";
  pr "int main() {\n  int i;\n  int *final;\n";
  pr "  words = &result;\n";
  web buf ~prefix:"s" ~shared:[ "words" ] ~n:scale;
  pr "  while (i < 8) { fork(&tids[i], wordcount_map, words); }\n";
  pr "  while (i < 8) { join(&tids[i]); }\n";
  web buf ~prefix:"t" ~shared:[ "bucket0"; "bucket1"; "bucket2" ] ~n:scale;
  pr "  final = bucket0;\n  return 0;\n}\n";
  Buffer.contents buf

let taskqueue ~scale =
  let buf = Buffer.create 4096 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pr "struct Queue { int *head; int *tail; };\n";
  pr "struct Queue q0;\nstruct Queue q1;\n";
  pr "lock_t l0;\nlock_t l1;\n";
  pr "int *task_pool;\nthread_t workers[4];\n";
  pr "void enqueue_task(int *task) {\n";
  pr "  lock(&l0);\n  q0.tail = task;\n  q0.head = q0.tail;\n";
  web buf ~prefix:"e" ~shared:[ "task_pool" ] ~n:(scale / 3);
  pr "  unlock(&l0);\n";
  pr "  lock(&l1);\n  q1.tail = task;\n";
  web buf ~prefix:"e2" ~shared:[ "task_pool" ] ~n:(scale / 3);
  pr "  unlock(&l1);\n}\n";
  pr "int *dequeue_task() {\n  int *t;\n";
  pr "  lock(&l0);\n  t = q0.head;\n  q0.head = null;\n  unlock(&l0);\n";
  pr "  return t;\n}\n";
  pr "void worker(int *arg) {\n  int *t;\n";
  pr "  while (nondet()) {\n    t = dequeue_task();\n    enqueue_task(t);\n  }\n";
  web buf ~prefix:"w" ~shared:[ "task_pool" ] ~n:(scale / 2);
  pr "}\n";
  pr "int main() {\n  int i;\n  int *seed;\n";
  pr "  seed = malloc();\n  enqueue_task(seed);\n";
  web buf ~prefix:"s" ~shared:[ "task_pool" ] ~n:scale;
  pr "  while (i < 4) { fork(&workers[i], worker, null); }\n";
  pr "  while (i < 4) { join(&workers[i]); }\n";
  pr "  return 0;\n}\n";
  Buffer.contents buf

let server ~scale =
  let buf = Buffer.create 4096 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pr "int *srv_state0;\nint *srv_state1;\nint *conn_pool;\n";
  pr "lock_t srv_lock;\nthread_t log_tid;\n";
  let depth = 4 in
  for i = depth - 1 downto 0 do
    pr "void request_phase%d(int *r) {\n" i;
    pr "  lock(&srv_lock);\n";
    web buf ~prefix:(Printf.sprintf "ph%d" i) ~shared:[ "srv_state0"; "srv_state1" ]
      ~n:(scale / 4);
    pr "  unlock(&srv_lock);\n";
    if i + 1 < depth then pr "  request_phase%d(r);\n" (i + 1);
    pr "}\n"
  done;
  pr "void handle_request(int *conn) {\n";
  web buf ~prefix:"h" ~shared:[ "conn_pool" ] ~n:(scale / 3);
  pr "  request_phase0(conn);\n}\n";
  pr "void logger_thread(int *arg) {\n";
  pr "  while (nondet()) {\n";
  pr "    lock(&srv_lock);\n    srv_state0 = srv_state1;\n    unlock(&srv_lock);\n  }\n}\n";
  pr "int main() {\n";
  web buf ~prefix:"m" ~shared:[ "srv_state0"; "conn_pool" ] ~n:scale;
  pr "  fork(&log_tid, logger_thread, null);\n";
  pr "  while (nondet()) { fork(null, handle_request, conn_pool); }\n";
  pr "  join(&log_tid);\n";
  web buf ~prefix:"t" ~shared:[ "srv_state0"; "srv_state1" ] ~n:scale;
  pr "  return 0;\n}\n";
  Buffer.contents buf

let all =
  [ ("wordcount", wordcount); ("taskqueue", taskqueue); ("server", server) ]
