open Fsam_ir

(** Seeded random multithreaded IR programs, used by the property-based
    test suites: the generated programs are valid partial SSA, use the full
    statement universe (loads/stores through may-aliasing pointers, phis,
    geps, calls, forks with and without handles, joins, balanced
    lock/unlock pairs, branches and loops), and are small enough for the
    concrete interpreter to explore many schedules. *)

val generate : ?forks:bool -> seed:int -> size:int -> unit -> Prog.t
(** [forks] (default true) — set false for purely sequential programs. *)
