open Fsam_ir
module B = Builder

type spec = {
  name : string;
  description : string;
  paper_loc : int;
  scale : int;
  build : int -> Prog.t;
}

(* ------------------------------------------------------------------------- *)
(* Deterministic generation helpers.                                          *)
(* ------------------------------------------------------------------------- *)

type gctx = {
  b : B.t;
  rng : Random.State.t;
  mutable pool : Stmt.var list; (* available pointer values, per function *)
}

let mk b seed = { b; rng = Random.State.make [| seed |]; pool = [] }
let pick g = List.nth g.pool (Random.State.int g.rng (List.length g.pool))
let fresh g name = B.fresh_var g.b name
let push g v = g.pool <- v :: g.pool

(* A deterministic "pointer web": the bulk material of every benchmark.
   Like the paper's benchmarks, the web is dominated by thread-local
   state — most loads and stores go through freshly created function-local
   objects with narrow points-to sets — with a configurable fraction of
   accesses to the shared [objs] (the paper's §4.4 notes that concurrent
   threads "manipulate not only global variables but also their local
   variables frequently", which is what makes the value-flow phase
   worthwhile). *)
let web ?(shared_every = 6) g fb ~owner ~objs n =
  (* local pointer material: pointers with a single local target *)
  let locals = ref [] in
  let new_local k =
    let o = B.stack_obj g.b ~owner (Printf.sprintf "loc%d" k) in
    let v = fresh g "lp" in
    B.addr_of fb v o;
    locals := v :: !locals;
    v
  in
  ignore (new_local 0);
  let pick_local () = List.nth !locals (Random.State.int g.rng (List.length !locals)) in
  for k = 1 to n do
    if k mod shared_every = 0 then begin
      (* shared access through a fresh, single-target pointer *)
      let o = List.nth objs (Random.State.int g.rng (List.length objs)) in
      let p = fresh g "sp" in
      B.addr_of fb p o;
      if Random.State.bool g.rng then B.store fb p (pick g)
      else begin
        let v = fresh g "sv" in
        B.load fb v p;
        push g v
      end
    end
    else
      match Random.State.int g.rng 8 with
      | 0 -> ignore (new_local k)
      | 1 | 2 -> B.store fb (pick_local ()) (pick g)
      | 3 | 4 ->
        let v = fresh g "lv" in
        B.load fb v (pick_local ());
        push g v
      | 5 ->
        let v = fresh g "cp" in
        B.copy fb v (pick_local ());
        push g v
      | 6 ->
        let v = fresh g "gp" in
        B.gep fb v (pick_local ()) "f";
        push g v
      | _ ->
        let v = fresh g "hp" in
        B.addr_of fb v (B.heap_obj g.b ~owner (Printf.sprintf "h%d" k));
        locals := v :: !locals;
        push g v
  done

let seed_pool g fb objs =
  List.iter
    (fun o ->
      let v = fresh g "p" in
      B.addr_of fb v o;
      push g v)
    objs

let with_pool g f =
  let saved = g.pool in
  let r = f () in
  g.pool <- saved;
  r

(* ------------------------------------------------------------------------- *)
(* 1. word_count — Phoenix map-reduce master–slave (symmetric fork/join).     *)
(* ------------------------------------------------------------------------- *)

let build_word_count scale =
  let b = B.create () in
  let g = mk b 11 in
  let main = B.declare b "main" ~params:[] in
  let mapper = B.declare b "wordcount_map" ~params:[ "arg" ] in
  let reduce = B.declare b "wordcount_reduce" ~params:[ "arg" ] in
  let buckets = List.init 6 (fun i -> B.global_obj b (Printf.sprintf "bucket%d" i)) in
  let words = List.init 6 (fun i -> B.global_obj b (Printf.sprintf "word%d" i)) in
  let tids = B.global_obj ~is_array:true b "tids" in
  let the_lock = B.global_obj b "bucket_lock" in
  B.define b mapper (fun fb ->
      with_pool g (fun () ->
          g.pool <- [ B.param b mapper 0 ];
          seed_pool g fb (buckets @ words);
          let l = fresh g "l" in
          B.addr_of fb l the_lock;
          B.while_ fb (fun fb ->
              B.lock fb l;
              web g fb ~owner:mapper ~objs:buckets (max 2 (scale / 4));
              B.unlock fb l)));
  B.define b reduce (fun fb ->
      with_pool g (fun () ->
          g.pool <- [ B.param b reduce 0 ];
          seed_pool g fb buckets;
          web g fb ~owner:reduce ~objs:buckets (max 2 (scale / 4))));
  B.define b main (fun fb ->
      g.pool <- [];
      seed_pool g fb (buckets @ words);
      web g fb ~owner:main ~objs:words scale;
      let h = fresh g "h" in
      B.addr_of fb h tids;
      (* symmetric fork and join loops over the same handle array *)
      B.while_ fb (fun fb -> B.fork fb ~handle:h (Stmt.Direct mapper) [ pick g ]);
      B.while_ fb (fun fb -> B.join fb h);
      B.while_ fb (fun fb -> B.fork fb ~handle:h (Stmt.Direct reduce) [ pick g ]);
      B.while_ fb (fun fb -> B.join fb h);
      (* master-side post-processing, heavy on the shared buckets: only the
         interleaving analysis proves it serial (paper Figure 12) *)
      web ~shared_every:2 g fb ~owner:main ~objs:buckets scale);
  B.finish b

(* ------------------------------------------------------------------------- *)
(* 2. kmeans — iterative re-fork of slave threads.                            *)
(* ------------------------------------------------------------------------- *)

let build_kmeans scale =
  let b = B.create () in
  let g = mk b 22 in
  let main = B.declare b "main" ~params:[] in
  let slave = B.declare b "cluster_points" ~params:[ "arg" ] in
  let clusters = List.init 5 (fun i -> B.global_obj b (Printf.sprintf "cluster%d" i)) in
  let points = List.init 5 (fun i -> B.global_obj b (Printf.sprintf "points%d" i)) in
  let tids = B.global_obj ~is_array:true b "tids" in
  let m = B.global_obj b "cluster_lock" in
  B.define b slave (fun fb ->
      with_pool g (fun () ->
          g.pool <- [ B.param b slave 0 ];
          seed_pool g fb (clusters @ points);
          let l = fresh g "l" in
          B.addr_of fb l m;
          B.lock fb l;
          web ~shared_every:3 g fb ~owner:slave ~objs:clusters (max 2 (scale / 3));
          B.unlock fb l));
  B.define b main (fun fb ->
      g.pool <- [];
      seed_pool g fb (clusters @ points);
      web g fb ~owner:main ~objs:points scale;
      let h = fresh g "h" in
      B.addr_of fb h tids;
      (* outer convergence loop: re-fork and re-join every iteration *)
      B.while_ fb (fun fb ->
          B.while_ fb (fun fb -> B.fork fb ~handle:h (Stmt.Direct slave) [ pick g ]);
          B.while_ fb (fun fb -> B.join fb h);
          web ~shared_every:2 g fb ~owner:main ~objs:clusters (max 2 (scale / 3)));
      web ~shared_every:2 g fb ~owner:main ~objs:clusters scale);
  B.finish b

(* ------------------------------------------------------------------------- *)
(* 3. radiosity — lock-protected global task queue (paper Figure 13).         *)
(* ------------------------------------------------------------------------- *)

let build_radiosity scale =
  let b = B.create () in
  let g = mk b 33 in
  let main = B.declare b "main" ~params:[] in
  let n_queues = 4 in
  let enqueue = B.declare b "enqueue_task" ~params:[ "task" ] in
  let dequeue = B.declare b "dequeue_task" ~params:[ "qid" ] in
  let worker = B.declare b "process_tasks" ~params:[ "arg" ] in
  let queues = List.init n_queues (fun i -> B.global_obj b (Printf.sprintf "task_queue%d" i)) in
  let qlocks = List.init n_queues (fun i -> B.global_obj b (Printf.sprintf "q_lock%d" i)) in
  let tasks = List.init 6 (fun i -> B.global_obj b (Printf.sprintf "task%d" i)) in
  let tids = B.global_obj ~is_array:true b "tids" in
  B.define b enqueue (fun fb ->
      with_pool g (fun () ->
          g.pool <- [ B.param b enqueue 0 ];
          seed_pool g fb (queues @ tasks);
          List.iter2
            (fun q lk ->
              let l = fresh g "l" in
              B.addr_of fb l lk;
              B.lock fb l;
              web ~shared_every:2 g fb ~owner:enqueue ~objs:[ q ] (max 2 (scale / 8));
              B.unlock fb l)
            queues qlocks));
  B.define b dequeue (fun fb ->
      with_pool g (fun () ->
          g.pool <- [ B.param b dequeue 0 ];
          seed_pool g fb (queues @ tasks);
          List.iter2
            (fun q lk ->
              let l = fresh g "l" in
              B.addr_of fb l lk;
              B.lock fb l;
              web ~shared_every:2 g fb ~owner:dequeue ~objs:[ q ] (max 2 (scale / 8));
              B.unlock fb l)
            queues qlocks;
          B.ret fb (Some (pick g))));
  B.define b worker (fun fb ->
      with_pool g (fun () ->
          g.pool <- [ B.param b worker 0 ];
          seed_pool g fb tasks;
          B.while_ fb (fun fb ->
              let t = fresh g "t" in
              B.call fb ~ret:t (Stmt.Direct dequeue) [ pick g ];
              push g t;
              web g fb ~owner:worker ~objs:tasks (max 2 (scale / 6));
              B.call fb (Stmt.Direct enqueue) [ pick g ])));
  B.define b main (fun fb ->
      g.pool <- [];
      seed_pool g fb (queues @ tasks);
      web g fb ~owner:main ~objs:tasks scale;
      B.call fb (Stmt.Direct enqueue) [ pick g ];
      let h = fresh g "h" in
      B.addr_of fb h tids;
      B.while_ fb (fun fb -> B.fork fb ~handle:h (Stmt.Direct worker) [ pick g ]);
      B.while_ fb (fun fb -> B.join fb h);
      web g fb ~owner:main ~objs:(queues @ tasks) scale);
  B.finish b

(* ------------------------------------------------------------------------- *)
(* 4. automount — many independent lock-release spans.                        *)
(* ------------------------------------------------------------------------- *)

let build_automount scale =
  let b = B.create () in
  let g = mk b 44 in
  let main = B.declare b "main" ~params:[] in
  let n_mounts = max 4 (scale / 4) in
  let worker = B.declare b "mount_worker" ~params:[ "arg" ] in
  (* one mount point per handler, protected by the handler's own lock: the
     critical sections are the only interference on each mount object, so
     the lock analysis carries the precision (paper Figure 12) *)
  let mounts = List.init n_mounts (fun i -> B.global_obj b (Printf.sprintf "mount%d" i)) in
  let locks = List.init n_mounts (fun i -> B.global_obj b (Printf.sprintf "mnt_lock%d" i)) in
  let handlers =
    List.init n_mounts (fun i -> B.declare b (Printf.sprintf "handle_mount%d" i) ~params:[ "m" ])
  in
  List.iteri
    (fun i h ->
      B.define b h (fun fb ->
          with_pool g (fun () ->
              g.pool <- [ B.param b h 0 ];
              seed_pool g fb [ List.nth mounts i ];
              let l = fresh g "l" in
              B.addr_of fb l (List.nth locks i);
              B.lock fb l;
              web ~shared_every:2 g fb ~owner:h ~objs:[ List.nth mounts i ] 10;
              B.unlock fb l)))
    handlers;
  B.define b worker (fun fb ->
      with_pool g (fun () ->
          g.pool <- [ B.param b worker 0 ];
          seed_pool g fb mounts;
          List.iter (fun h -> B.call fb (Stmt.Direct h) [ pick g ]) handlers));
  B.define b main (fun fb ->
      g.pool <- [];
      seed_pool g fb mounts;
      web g fb ~owner:main ~objs:mounts scale;
      let tids = B.global_obj ~is_array:true b "tids" in
      let h = fresh g "h" in
      B.addr_of fb h tids;
      B.while_ fb (fun fb -> B.fork fb ~handle:h (Stmt.Direct worker) [ pick g ]);
      B.while_ fb (fun fb -> B.join fb h);
      web g fb ~owner:main ~objs:mounts scale);
  B.finish b

(* ------------------------------------------------------------------------- *)
(* 5. ferret — thread pipeline with per-stage queues.                         *)
(* ------------------------------------------------------------------------- *)

let build_ferret scale =
  let b = B.create () in
  let g = mk b 55 in
  let main = B.declare b "main" ~params:[] in
  let n_stages = 5 in
  let stages =
    List.init n_stages (fun i -> B.declare b (Printf.sprintf "stage%d" i) ~params:[ "arg" ])
  in
  let qs = List.init (n_stages + 1) (fun i -> B.global_obj b (Printf.sprintf "pipe_q%d" i)) in
  let qlocks = List.init (n_stages + 1) (fun i -> B.global_obj b (Printf.sprintf "pipe_lock%d" i)) in
  let items = List.init 5 (fun i -> B.global_obj b (Printf.sprintf "item%d" i)) in
  List.iteri
    (fun i st ->
      B.define b st (fun fb ->
          with_pool g (fun () ->
              g.pool <- [ B.param b st 0 ];
              seed_pool g fb items;
              let inq = List.nth qs i and outq = List.nth qs (i + 1) in
              let inl = fresh g "inl" and outl = fresh g "outl" in
              B.addr_of fb inl (List.nth qlocks i);
              B.addr_of fb outl (List.nth qlocks (i + 1));
              let qin = fresh g "qin" and qout = fresh g "qout" in
              B.addr_of fb qin inq;
              B.addr_of fb qout outq;
              push g qin;
              push g qout;
              B.while_ fb (fun fb ->
                  B.lock fb inl;
                  let v = fresh g "v" in
                  B.load fb v qin;
                  push g v;
                  B.unlock fb inl;
                  web g fb ~owner:st ~objs:items (max 2 (scale / 4));
                  B.lock fb outl;
                  B.store fb qout (pick g);
                  B.unlock fb outl))))
    stages;
  B.define b main (fun fb ->
      g.pool <- [];
      seed_pool g fb (items @ qs);
      web g fb ~owner:main ~objs:items scale;
      let tids = B.global_obj ~is_array:true b "tids" in
      let h = fresh g "h" in
      B.addr_of fb h tids;
      List.iter (fun st -> B.fork fb ~handle:h (Stmt.Direct st) [ pick g ]) stages;
      B.while_ fb (fun fb -> B.join fb h);
      web g fb ~owner:main ~objs:items scale);
  B.finish b

(* ------------------------------------------------------------------------- *)
(* 6. bodytrack — thread pool over a large pointer web.                       *)
(* ------------------------------------------------------------------------- *)

let build_bodytrack scale =
  let b = B.create () in
  let g = mk b 66 in
  let main = B.declare b "main" ~params:[] in
  let worker = B.declare b "particle_worker" ~params:[ "arg" ] in
  let model = List.init 10 (fun i -> B.global_obj b (Printf.sprintf "model%d" i)) in
  let particles = List.init 8 (fun i -> B.global_obj b (Printf.sprintf "particle%d" i)) in
  let m = B.global_obj b "pool_lock" in
  let helpers =
    List.init 6 (fun i -> B.declare b (Printf.sprintf "estimate%d" i) ~params:[ "e" ])
  in
  List.iter
    (fun hfn ->
      B.define b hfn (fun fb ->
          with_pool g (fun () ->
              g.pool <- [ B.param b hfn 0 ];
              seed_pool g fb particles;
              web g fb ~owner:hfn ~objs:particles (max 3 (scale / 3));
              B.ret fb (Some (pick g)))))
    helpers;
  B.define b worker (fun fb ->
      with_pool g (fun () ->
          g.pool <- [ B.param b worker 0 ];
          seed_pool g fb (model @ particles);
          let l = fresh g "l" in
          B.addr_of fb l m;
          B.while_ fb (fun fb ->
              List.iter
                (fun hfn ->
                  let r = fresh g "r" in
                  B.call fb ~ret:r (Stmt.Direct hfn) [ pick g ];
                  push g r)
                helpers;
              B.lock fb l;
              web g fb ~owner:worker ~objs:model (max 2 (scale / 4));
              B.unlock fb l)));
  B.define b main (fun fb ->
      g.pool <- [];
      seed_pool g fb (model @ particles);
      web g fb ~owner:main ~objs:model (2 * scale);
      let tids = B.global_obj ~is_array:true b "tids" in
      let h = fresh g "h" in
      B.addr_of fb h tids;
      B.while_ fb (fun fb -> B.fork fb ~handle:h (Stmt.Direct worker) [ pick g ]);
      B.while_ fb (fun fb -> B.join fb h);
      web g fb ~owner:main ~objs:(model @ particles) scale);
  B.finish b

(* ------------------------------------------------------------------------- *)
(* 7/8. httpd_server, mt_daapd — detached workers from an accept loop.        *)
(* ------------------------------------------------------------------------- *)

let build_server ~seed ~depth ~partial_join scale =
  let b = B.create () in
  let g = mk b seed in
  let main = B.declare b "main" ~params:[] in
  let handler = B.declare b "handle_request" ~params:[ "conn" ] in
  let logger = B.declare b "logger_thread" ~params:[ "arg" ] in
  let chain =
    List.init depth (fun i -> B.declare b (Printf.sprintf "request_phase%d" i) ~params:[ "r" ])
  in
  let conns = List.init 8 (fun i -> B.global_obj b (Printf.sprintf "conn%d" i)) in
  let state = List.init 8 (fun i -> B.global_obj b (Printf.sprintf "srv_state%d" i)) in
  let m = B.global_obj b "srv_lock" in
  List.iteri
    (fun i c ->
      B.define b c (fun fb ->
          with_pool g (fun () ->
              g.pool <- [ B.param b c 0 ];
              seed_pool g fb state;
              let l = fresh g "l" in
              B.addr_of fb l m;
              B.lock fb l;
              web g fb ~owner:c ~objs:state (max 2 (scale / 4));
              B.unlock fb l;
              if i + 1 < depth then
                B.call fb (Stmt.Direct (List.nth chain (i + 1))) [ pick g ])))
    chain;
  B.define b handler (fun fb ->
      with_pool g (fun () ->
          g.pool <- [ B.param b handler 0 ];
          seed_pool g fb conns;
          web g fb ~owner:handler ~objs:conns (max 2 (scale / 3));
          B.call fb (Stmt.Direct (List.hd chain)) [ pick g ]));
  B.define b logger (fun fb ->
      with_pool g (fun () ->
          g.pool <- [ B.param b logger 0 ];
          seed_pool g fb state;
          B.while_ fb (fun fb -> web g fb ~owner:logger ~objs:state (max 2 (scale / 4)))));
  B.define b main (fun fb ->
      g.pool <- [];
      seed_pool g fb (conns @ state);
      web g fb ~owner:main ~objs:state scale;
      let tids = B.global_obj ~is_array:true b "log_tid" in
      let h = fresh g "h" in
      B.addr_of fb h tids;
      B.fork fb ~handle:h (Stmt.Direct logger) [ pick g ];
      (* detached request handlers, never joined *)
      B.while_ fb (fun fb -> B.fork fb (Stmt.Direct handler) [ pick g ]);
      if partial_join then B.join fb h;
      (* master-side post-processing: with the logger joined, mt_daapd-style
         programs rely on the interleaving analysis for precision here *)
      web ~shared_every:2 g fb ~owner:main ~objs:state scale);
  B.finish b

let build_httpd scale = build_server ~seed:77 ~depth:6 ~partial_join:true scale
let build_mt_daapd scale = build_server ~seed:88 ~depth:9 ~partial_join:true scale

(* ------------------------------------------------------------------------- *)
(* 9. raytrace — deep call graph, big sequential core, few threads.           *)
(* ------------------------------------------------------------------------- *)

let build_raytrace scale =
  let b = B.create () in
  let g = mk b 99 in
  let main = B.declare b "main" ~params:[] in
  let worker = B.declare b "render_thread" ~params:[ "arg" ] in
  let depth = 14 in
  let trace =
    List.init depth (fun i -> B.declare b (Printf.sprintf "trace%d" i) ~params:[ "ray"; "scene" ])
  in
  let scene = List.init 12 (fun i -> B.global_obj b (Printf.sprintf "scene%d" i)) in
  let rays = List.init 8 (fun i -> B.global_obj b (Printf.sprintf "ray%d" i)) in
  let m = B.global_obj b "frame_lock" in
  List.iteri
    (fun i fn ->
      B.define b fn (fun fb ->
          with_pool g (fun () ->
              g.pool <- [ B.param b fn 0; B.param b fn 1 ];
              seed_pool g fb scene;
              web g fb ~owner:fn ~objs:scene (max 3 (scale / 3));
              if i + 1 < depth then begin
                let r = fresh g "r" in
                B.call fb ~ret:r (Stmt.Direct (List.nth trace (i + 1))) [ pick g; pick g ];
                push g r
              end;
              B.ret fb (Some (pick g)))))
    trace;
  B.define b worker (fun fb ->
      with_pool g (fun () ->
          g.pool <- [ B.param b worker 0 ];
          seed_pool g fb (scene @ rays);
          let l = fresh g "l" in
          B.addr_of fb l m;
          B.while_ fb (fun fb ->
              let r = fresh g "r" in
              B.call fb ~ret:r (Stmt.Direct (List.hd trace)) [ pick g; pick g ];
              push g r;
              B.lock fb l;
              web g fb ~owner:worker ~objs:rays 3;
              B.unlock fb l)));
  B.define b main (fun fb ->
      g.pool <- [];
      seed_pool g fb (scene @ rays);
      web g fb ~owner:main ~objs:scene (4 * scale);
      let tids = B.global_obj ~is_array:true b "tids" in
      let h = fresh g "h" in
      B.addr_of fb h tids;
      B.while_ fb (fun fb -> B.fork fb ~handle:h (Stmt.Direct worker) [ pick g ]);
      B.while_ fb (fun fb -> B.join fb h);
      web g fb ~owner:main ~objs:(scene @ rays) (2 * scale));
  B.finish b

(* ------------------------------------------------------------------------- *)
(* 10. x264 — the largest: function-pointer tables, symmetric fork loops.     *)
(* ------------------------------------------------------------------------- *)

let build_x264 scale =
  let b = B.create () in
  let g = mk b 110 in
  let main = B.declare b "main" ~params:[] in
  let worker = B.declare b "encode_slice" ~params:[ "arg" ] in
  let n_codecs = 8 in
  let codecs =
    List.init n_codecs (fun i -> B.declare b (Printf.sprintf "predict%d" i) ~params:[ "mb" ])
  in
  let frames = List.init 12 (fun i -> B.global_obj b (Printf.sprintf "frame%d" i)) in
  let mbs = List.init 10 (fun i -> B.global_obj b (Printf.sprintf "macroblock%d" i)) in
  let m = B.global_obj b "frame_lock" in
  List.iter
    (fun fn ->
      B.define b fn (fun fb ->
          with_pool g (fun () ->
              g.pool <- [ B.param b fn 0 ];
              seed_pool g fb mbs;
              web g fb ~owner:fn ~objs:mbs (max 3 (scale / 3));
              B.ret fb (Some (pick g)))))
    codecs;
  B.define b worker (fun fb ->
      with_pool g (fun () ->
          g.pool <- [ B.param b worker 0 ];
          seed_pool g fb (frames @ mbs);
          (* a function-pointer dispatch table *)
          let fptrs =
            List.map
              (fun fn ->
                let v = fresh g "fp" in
                B.addr_of fb v (B.func_obj g.b fn);
                v)
              codecs
          in
          let tbl = fresh g "tbl" in
          B.phi fb tbl fptrs;
          let l = fresh g "l" in
          B.addr_of fb l m;
          B.while_ fb (fun fb ->
              let r = fresh g "r" in
              B.call fb ~ret:r (Stmt.Indirect tbl) [ pick g ];
              push g r;
              B.lock fb l;
              web g fb ~owner:worker ~objs:frames 3;
              B.unlock fb l)));
  B.define b main (fun fb ->
      g.pool <- [];
      seed_pool g fb (frames @ mbs);
      web g fb ~owner:main ~objs:frames (5 * scale);
      let tids = B.global_obj ~is_array:true b "tids" in
      let h = fresh g "h" in
      B.addr_of fb h tids;
      B.while_ fb (fun fb -> B.fork fb ~handle:h (Stmt.Direct worker) [ pick g ]);
      B.while_ fb (fun fb -> B.join fb h);
      web g fb ~owner:main ~objs:(frames @ mbs) (3 * scale));
  B.finish b

(* ------------------------------------------------------------------------- *)

let all =
  [
    {
      name = "word_count";
      description = "Word counter based on map-reduce";
      paper_loc = 6330;
      scale = 600;
      build = build_word_count;
    };
    {
      name = "kmeans";
      description = "Iterative clustering of 3-D points";
      paper_loc = 6008;
      scale = 550;
      build = build_kmeans;
    };
    {
      name = "radiosity";
      description = "Graphics (lock-protected task queues)";
      paper_loc = 12781;
      scale = 650;
      build = build_radiosity;
    };
    {
      name = "automount";
      description = "Manage autofs mount points";
      paper_loc = 13170;
      scale = 500;
      build = build_automount;
    };
    {
      name = "ferret";
      description = "Content similarity search server (pipeline)";
      paper_loc = 15735;
      scale = 450;
      build = build_ferret;
    };
    {
      name = "bodytrack";
      description = "Body tracking of a person (thread pool)";
      paper_loc = 19063;
      scale = 500;
      build = build_bodytrack;
    };
    {
      name = "httpd_server";
      description = "Http server (detached handlers)";
      paper_loc = 52616;
      scale = 500;
      build = build_httpd;
    };
    {
      name = "mt_daapd";
      description = "Multi-threaded DAAP daemon";
      paper_loc = 57102;
      scale = 520;
      build = build_mt_daapd;
    };
    {
      name = "raytrace";
      description = "Real-time raytracing (deep call graph)";
      paper_loc = 84373;
      scale = 1000;
      build = build_raytrace;
    };
    {
      name = "x264";
      description = "Media processing (function-pointer tables)";
      paper_loc = 113481;
      scale = 1300;
      build = build_x264;
    };
  ]

let find name = List.find_opt (fun s -> s.name = name) all

let program_stats prog =
  let stmts = Prog.n_stmts prog in
  let funcs = Prog.n_funcs prog in
  let forks = ref 0 and joins = ref 0 and locks = ref 0 in
  Prog.iter_stmts prog (fun _ _ s ->
      match s with
      | Stmt.Fork _ -> incr forks
      | Stmt.Join _ -> incr joins
      | Stmt.Lock _ -> incr locks
      | _ -> ());
  (stmts, funcs, !forks, !joins, !locks)
