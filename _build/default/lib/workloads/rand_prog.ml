open Fsam_ir
module B = Builder

type gen = {
  b : B.t;
  rng : Random.State.t;
  globals : Stmt.obj list;
  lock_obj : Stmt.obj;
  forks : bool;
}

let pick g l = List.nth l (Random.State.int g.rng (List.length l))
let chance g p = Random.State.float g.rng 1.0 < p

(* Emit one random straight-line statement using (and extending) the pool of
   available variables. *)
let rec emit_stmt g fb ~fid ~depth pool =
  let fresh name = B.fresh_var g.b name in
  let var () = pick g !pool in
  let add v = pool := v :: !pool in
  match Random.State.int g.rng 10 with
  | 0 ->
    let v = fresh "a" in
    let obj =
      if chance g 0.7 then pick g g.globals else B.stack_obj g.b ~owner:fid "s"
    in
    B.addr_of fb v obj;
    add v
  | 1 ->
    let v = fresh "c" in
    B.copy fb v (var ());
    add v
  | 2 ->
    let v = fresh "m" in
    B.phi fb v [ var (); var () ];
    add v
  | 3 ->
    let v = fresh "f" in
    B.gep fb v (var ()) (pick g [ "f"; "g" ]);
    add v
  | 4 ->
    let v = fresh "l" in
    B.load fb v (var ());
    add v
  | 5 | 6 -> B.store fb (var ()) (var ())
  | 7 when depth < 2 ->
    (* balanced lock region around a couple of statements *)
    let l = fresh "lk" in
    B.addr_of fb l g.lock_obj;
    B.lock fb l;
    emit_stmt g fb ~fid ~depth:(depth + 1) pool;
    emit_stmt g fb ~fid ~depth:(depth + 1) pool;
    B.unlock fb l
  | 8 when depth < 2 ->
    (* variables defined inside a branch must not escape it: their defs
       would not dominate later uses *)
    let scoped body fb =
      let saved = !pool in
      body fb;
      pool := saved
    in
    if chance g 0.5 then
      B.if_ fb
        ~then_:(scoped (fun fb -> emit_stmt g fb ~fid ~depth:(depth + 1) pool))
        ~else_:(scoped (fun fb -> emit_stmt g fb ~fid ~depth:(depth + 1) pool))
    else B.while_ fb (scoped (fun fb -> emit_stmt g fb ~fid ~depth:(depth + 1) pool))
  | _ ->
    let v = fresh "h" in
    B.addr_of fb v (B.heap_obj g.b ~owner:fid "heap");
    add v

let emit_body g fb ~fid ~n pool =
  for _ = 1 to n do
    emit_stmt g fb ~fid ~depth:0 pool
  done

let generate ?(forks = true) ~seed ~size () =
  let b = B.create () in
  let rng = Random.State.make [| seed; 0xf5a9 |] in
  let main = B.declare b "main" ~params:[] in
  let helper = B.declare b "helper" ~params:[ "hp"; "hq" ] in
  let n_workers = 1 + Random.State.int rng 2 in
  let workers =
    List.init n_workers (fun i ->
        B.declare b (Printf.sprintf "worker%d" i) ~params:[ "wp"; "wq" ])
  in
  let globals = List.init 4 (fun i -> B.global_obj b (Printf.sprintf "g%d" i)) in
  let lock_obj = B.global_obj b "the_lock" in
  let g = { b; rng; globals; lock_obj; forks } in
  let body_size = max 3 (size / (2 + n_workers)) in
  (* helper: pure pointer shuffling over its params and the globals *)
  B.define b helper (fun fb ->
      let pool = ref [ B.param b helper 0; B.param b helper 1 ] in
      emit_body g fb ~fid:helper ~n:(body_size / 2) pool;
      B.ret fb (Some (pick g !pool)));
  List.iter
    (fun w ->
      B.define b w (fun fb ->
          let pool = ref [ B.param b w 0; B.param b w 1 ] in
          emit_body g fb ~fid:w ~n:body_size pool))
    workers;
  B.define b main (fun fb ->
      let pool = ref [] in
      (* prime the pool so every function has pointers to play with *)
      List.iter
        (fun o ->
          let v = B.fresh_var b "p" in
          B.addr_of fb v o;
          pool := v :: !pool)
        globals;
      emit_body g fb ~fid:main ~n:body_size pool;
      (* a direct call through the helper *)
      let r = B.fresh_var b "r" in
      B.call fb ~ret:r (Stmt.Direct helper) [ pick g !pool; pick g !pool ];
      pool := r :: !pool;
      if forks then begin
        let handles =
          List.map
            (fun w ->
              let use_handle = chance g 0.7 in
              if use_handle then begin
                let tid = B.stack_obj b ~owner:main "tid" in
                let h = B.fresh_var b "h" in
                B.addr_of fb h tid;
                B.fork fb ~handle:h (Stmt.Direct w) [ pick g !pool; pick g !pool ];
                Some h
              end
              else begin
                B.fork fb (Stmt.Direct w) [ pick g !pool; pick g !pool ];
                None
              end)
            workers
        in
        emit_body g fb ~fid:main ~n:(body_size / 2) pool;
        List.iter
          (fun h -> match h with Some h when chance g 0.8 -> B.join fb h | _ -> ())
          handles;
        emit_body g fb ~fid:main ~n:(body_size / 2) pool
      end
      else emit_body g fb ~fid:main ~n:body_size pool);
  let prog = B.finish b in
  Ssa.transform prog
