(** Seeded random MiniC {e source} programs — the end-to-end counterpart of
    {!Rand_prog}: generated text goes through the full frontend (lexer,
    parser, lowering, SSA) before analysis, so the property suites exercise
    that path against the interpreter too. *)

val generate : seed:int -> size:int -> string
