lib/workloads/rand_minic.mli:
