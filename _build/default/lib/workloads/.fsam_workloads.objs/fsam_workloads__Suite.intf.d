lib/workloads/suite.mli: Fsam_ir Prog
