lib/workloads/minic_suite.mli:
