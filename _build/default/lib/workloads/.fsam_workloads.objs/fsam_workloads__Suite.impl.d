lib/workloads/suite.ml: Builder Fsam_ir List Printf Prog Random Stmt
