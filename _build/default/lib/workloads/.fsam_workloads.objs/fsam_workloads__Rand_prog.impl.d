lib/workloads/rand_prog.ml: Builder Fsam_ir List Printf Random Ssa Stmt
