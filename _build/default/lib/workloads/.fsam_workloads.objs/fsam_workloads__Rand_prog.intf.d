lib/workloads/rand_prog.mli: Fsam_ir Prog
