lib/workloads/minic_suite.ml: Buffer List Printf
