lib/workloads/rand_minic.ml: Buffer List Printf Random
