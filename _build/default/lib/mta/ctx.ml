open Fsam_dsa

type t = int

type cell = { parent : t; site : int; depth : int }

type store = {
  cells : cell Vec.t; (* cells.(id - 1); id 0 is the empty context *)
  intern : (t * int, t) Hashtbl.t;
}

let empty = 0

let create_store () = { cells = Vec.create (); intern = Hashtbl.create 64 }

let cell s id = Vec.get s.cells (id - 1)

let depth s id = if id = empty then 0 else (cell s id).depth

let push s parent site =
  match Hashtbl.find_opt s.intern (parent, site) with
  | Some id -> id
  | None ->
    let d = depth s parent + 1 in
    let id = 1 + Vec.push s.cells { parent; site; depth = d } in
    Hashtbl.replace s.intern (parent, site) id;
    id

let pop s id = if id = empty then None else Some (cell s id).parent
let peek s id = if id = empty then None else Some (cell s id).site

let to_list s id =
  let rec go id acc = if id = empty then acc else go (cell s id).parent ((cell s id).site :: acc) in
  go id []

let pp s ppf id =
  Format.fprintf ppf "[%s]" (String.concat "," (List.map string_of_int (to_list s id)))
