open Fsam_ir

(** The interprocedural control-flow graph (paper §3.1): nodes are statement
    gids; edges are intraprocedural, call (callsite -> callee entry) or
    return (callee exit -> callsite successor), with the callsite gid as the
    matching label. A resolved call's intraprocedural successors are reached
    only through its callees' returns; an unresolved call (empty points-to
    set for the function pointer) keeps its fall-through. Fork and join sites
    have no interprocedural edges — a spawnee has its own ICFG. *)

type edge_kind = Intra | Call of int | Ret of int

type t

val build : Prog.t -> Fsam_andersen.Solver.t -> t
val prog : t -> Prog.t
val succs : t -> int -> (edge_kind * int) list
val preds : t -> int -> (edge_kind * int) list
val entry_gid : t -> int -> int
(** Entry statement gid of a function. *)

val exit_gids : t -> int -> int list
val stmt : t -> int -> Stmt.t
val fid_of : t -> int -> int
(** Enclosing function of a statement gid. *)

val in_cfg_cycle : t -> int -> bool
(** Whether the statement sits inside a cycle of its function's CFG. *)

val collapsed_callsite : t -> int -> bool
(** Whether the callsite belongs to a call-graph SCC and is therefore
    analysed context-insensitively (paper §3.1). *)

val whole_graph : t -> Fsam_graph.Digraph.t
(** All edges, unlabelled — for context-insensitive reachability. *)

val intra_graph_of : t -> int -> Fsam_graph.Digraph.t
(** The plain CFG of a function, over local statement indices. *)
