open Fsam_dsa
open Fsam_ir
module A = Fsam_andersen.Solver

type t = {
  icfg : Icfg.t;
  (* for each function: the set of threads that may execute it *)
  runners : Iset.t array;
  multi : bool array; (* per thread *)
}

let compute tm icfg =
  let prog = Icfg.prog icfg in
  let nf = Prog.n_funcs prog in
  let runners = Array.make nf Iset.empty in
  let nt = Threads.n_threads tm in
  let multi = Array.make nt false in
  for tid = 0 to nt - 1 do
    multi.(tid) <- Threads.is_multi tm tid;
    (* functions executed by the thread = those of its statement instances *)
    List.iter
      (fun iid ->
        let g = (Threads.inst tm iid).Threads.i_gid in
        let f = Icfg.fid_of icfg g in
        runners.(f) <- Iset.add tid runners.(f))
      (Threads.insts_of_thread tm tid)
  done;
  { icfg; runners; multi }

let mec_proc t f g =
  let rf = t.runners.(f) and rg = t.runners.(g) in
  Iset.exists (fun a -> Iset.exists (fun b -> a <> b || t.multi.(a)) rg) rf

let mec_stmt t g1 g2 = mec_proc t (Icfg.fid_of t.icfg g1) (Icfg.fid_of t.icfg g2)
