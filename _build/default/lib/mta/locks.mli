(** Flow- and context-sensitive lock analysis (paper §3.3.3).

    A {e lock-release span} (Definition 3) is computed for every lock-site
    instance whose lock pointer must-alias a single runtime lock object: the
    set of statement instances forward-reachable from the lock instance —
    calls and returns matched through the instance graph — up to any unlock
    instance that may release the same lock.

    Span heads and tails (Definitions 4, 5) and the non-interference filter
    (Definition 6) are evaluated by the value-flow construction, which owns
    the def-use edges the definitions refer to; this module exposes the
    spans and membership queries it needs. *)

type t

val compute : Fsam_ir.Prog.t -> Fsam_andersen.Solver.t -> Threads.t -> t

val n_spans : t -> int
val span_lock : t -> int -> int
(** Runtime lock object protecting the span. *)

val span_members : t -> int -> int list
(** Statement-instance ids in the span. *)

val spans_of_inst : t -> int -> int list
(** Span ids containing the given instance. *)

val common_lock : t -> int -> int -> (int * int) list
(** For two instances, the pairs of spans [(sp, sp')] with [sp ∋ i],
    [sp' ∋ j] protected by the same runtime lock ([l ≡ l'] of
    Definition 6). Empty when the two are not commonly protected. *)
