lib/mta/ctx.ml: Format Fsam_dsa Hashtbl List String Vec
