lib/mta/icfg.ml: Array Fsam_andersen Fsam_graph Fsam_ir Func List Prog Stmt
