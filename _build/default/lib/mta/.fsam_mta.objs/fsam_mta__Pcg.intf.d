lib/mta/pcg.mli: Icfg Threads
