lib/mta/threads.ml: Array Bitvec Ctx Format Fsam_andersen Fsam_dsa Fsam_graph Fsam_ir Func Hashtbl Icfg Iset Lazy List Option Printf Prog Queue Stmt Vec
