lib/mta/pcg.ml: Array Fsam_andersen Fsam_dsa Fsam_ir Icfg Iset List Prog Threads
