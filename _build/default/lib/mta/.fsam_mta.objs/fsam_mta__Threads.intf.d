lib/mta/threads.mli: Ctx Format Fsam_andersen Fsam_dsa Fsam_graph Fsam_ir Icfg Prog
