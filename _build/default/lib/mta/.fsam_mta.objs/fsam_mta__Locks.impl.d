lib/mta/locks.ml: Array Bitvec Fsam_andersen Fsam_dsa Fsam_ir Iset List Memobj Prog Stmt Threads
