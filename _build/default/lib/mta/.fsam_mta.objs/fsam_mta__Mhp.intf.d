lib/mta/mhp.mli: Fsam_dsa Threads
