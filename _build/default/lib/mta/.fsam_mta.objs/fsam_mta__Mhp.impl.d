lib/mta/mhp.ml: Array Bitvec Fsam_dsa Iset List Queue Threads
