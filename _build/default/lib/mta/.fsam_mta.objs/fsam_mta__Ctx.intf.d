lib/mta/ctx.mli: Format
