lib/mta/locks.mli: Fsam_andersen Fsam_ir Threads
