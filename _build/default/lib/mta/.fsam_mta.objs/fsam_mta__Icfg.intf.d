lib/mta/icfg.mli: Fsam_andersen Fsam_graph Fsam_ir Prog Stmt
