open Fsam_ir
module A = Fsam_andersen.Solver

type edge_kind = Intra | Call of int | Ret of int

type t = {
  prog : Prog.t;
  succ : (edge_kind * int) list array;
  pred : (edge_kind * int) list array;
  fid_of : int array;
  cyclic : bool array; (* per gid: inside a cycle of its function's CFG *)
  collapsed : bool array; (* per gid: callsite inside a call-graph SCC *)
}

let prog t = t.prog
let succs t g = t.succ.(g)
let preds t g = t.pred.(g)
let entry_gid t fid = Prog.gid t.prog ~fid ~idx:0
let exit_gids t fid =
  List.map (fun i -> Prog.gid t.prog ~fid ~idx:i) (Prog.func t.prog fid).Func.exits

let stmt t g = Prog.stmt_at t.prog g
let fid_of t g = t.fid_of.(g)
let in_cfg_cycle t g = t.cyclic.(g)
let collapsed_callsite t g = t.collapsed.(g)

let build prog ast =
  let n = Prog.n_stmts prog in
  let succ = Array.make n [] and pred = Array.make n [] in
  let fid_of = Array.make n 0 in
  let cyclic = Array.make n false in
  let collapsed = Array.make n false in
  let add kind u v =
    succ.(u) <- (kind, v) :: succ.(u);
    pred.(v) <- (kind, u) :: pred.(v)
  in
  (* call-graph SCCs for collapsed callsites *)
  let cg = A.call_graph ast in
  let cg_scc = Fsam_graph.Scc.compute cg in
  let same_scc f g =
    f < Array.length cg_scc.Fsam_graph.Scc.comp_of
    && g < Array.length cg_scc.Fsam_graph.Scc.comp_of
    && cg_scc.Fsam_graph.Scc.comp_of.(f) = cg_scc.Fsam_graph.Scc.comp_of.(g)
    && not (Fsam_graph.Scc.is_trivial cg_scc cg f)
  in
  Prog.iter_funcs prog (fun f ->
      let fid = f.Func.fid in
      let base = Prog.gid prog ~fid ~idx:0 in
      (* intra-function cycles *)
      let g = Func.cfg f in
      let scc = Fsam_graph.Scc.compute g in
      Func.iter_stmts f (fun i _ ->
          fid_of.(base + i) <- fid;
          if not (Fsam_graph.Scc.is_trivial scc g i) then cyclic.(base + i) <- true);
      Func.iter_stmts f (fun i s ->
          let gid = base + i in
          let intra_succs = List.map (fun j -> base + j) f.Func.succ.(i) in
          match s with
          | Stmt.Call _ ->
            let callees = A.callees ast ~fid ~idx:i in
            if callees = [] then List.iter (fun v -> add Intra gid v) intra_succs
            else begin
              List.iter
                (fun callee ->
                  if same_scc fid callee then collapsed.(gid) <- true;
                  add (Call gid) gid (Prog.gid prog ~fid:callee ~idx:0);
                  List.iter
                    (fun ex ->
                      let exg = Prog.gid prog ~fid:callee ~idx:ex in
                      List.iter (fun v -> add (Ret gid) exg v) intra_succs)
                    (Prog.func prog callee).Func.exits)
                callees
            end
          | _ -> List.iter (fun v -> add Intra gid v) intra_succs));
  { prog; succ; pred; fid_of; cyclic; collapsed }

let whole_graph t =
  let n = Array.length t.succ in
  let g = Fsam_graph.Digraph.create ~size_hint:n () in
  if n > 0 then Fsam_graph.Digraph.ensure_node g (n - 1);
  Array.iteri (fun u l -> List.iter (fun (_, v) -> Fsam_graph.Digraph.add_edge g u v) l) t.succ;
  g

let intra_graph_of t fid = Func.cfg (Prog.func t.prog fid)
