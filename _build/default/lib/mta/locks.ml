open Fsam_dsa
open Fsam_ir
module A = Fsam_andersen.Solver

type span = { sp_lock : int; sp_members : int list; sp_set : Bitvec.t }

type t = { spans : span array; of_inst : int list array }

(* A lock pointer must-aliases a unique runtime lock when its points-to set
   is a singleton whose object represents one location: not a heap object,
   not an array element, not a thread/function object. (Stack locks of
   recursive or multi-forked code would also be excluded by the singleton
   notion of §3.4; lock objects in practice are globals.) *)
let must_lock prog ast v =
  let pts = A.pt_var ast v in
  match Iset.elements pts with
  | [ o ] ->
    let info = Prog.obj prog o in
    if
      info.Memobj.is_array || Memobj.is_heap info || Memobj.is_thread info
      || Memobj.is_function info
    then None
    else Some o
  | _ -> None

let may_release ast v lock_obj = Iset.mem lock_obj (A.pt_var ast v)

let compute prog ast tm =
  let n = Threads.n_insts tm in
  let spans = ref [] in
  for iid = 0 to n - 1 do
    let { Threads.i_gid; _ } = Threads.inst tm iid in
    match Prog.stmt_at prog i_gid with
    | Stmt.Lock l -> (
      match must_lock prog ast l with
      | None -> ()
      | Some lock_obj ->
        (* forward exploration stopping at any may-release unlock *)
        let set = Bitvec.create ~capacity:n () in
        let members = ref [] in
        let stack = ref [ iid ] in
        Bitvec.set set iid;
        while !stack <> [] do
          match !stack with
          | [] -> ()
          | i :: tl ->
            stack := tl;
            members := i :: !members;
            let { Threads.i_gid = g; _ } = Threads.inst tm i in
            let stop =
              i <> iid
              &&
              match Prog.stmt_at prog g with
              | Stmt.Unlock u -> may_release ast u lock_obj
              | _ -> false
            in
            if not stop then
              List.iter
                (fun j -> if Bitvec.set_if_unset set j then stack := j :: !stack)
                (Threads.inst_succs tm i)
        done;
        spans := { sp_lock = lock_obj; sp_members = !members; sp_set = set } :: !spans)
    | _ -> ()
  done;
  let spans = Array.of_list (List.rev !spans) in
  let of_inst = Array.make n [] in
  Array.iteri
    (fun sid sp -> List.iter (fun i -> of_inst.(i) <- sid :: of_inst.(i)) sp.sp_members)
    spans;
  { spans; of_inst }

let n_spans t = Array.length t.spans
let span_lock t sid = t.spans.(sid).sp_lock
let span_members t sid = t.spans.(sid).sp_members
let spans_of_inst t i = t.of_inst.(i)

let common_lock t i j =
  List.concat_map
    (fun si ->
      List.filter_map
        (fun sj -> if span_lock t si = span_lock t sj then Some (si, sj) else None)
        (spans_of_inst t j))
    (spans_of_inst t i)
