(** A procedure-level may-execute-concurrently baseline in the style of the
    PCG analysis of Joisha et al. [14], used by the paper as the MHP
    component of the NonSparse baseline and of FSAM's No-Interleaving
    configuration (§4.3). Deliberately coarse: two statements may execute
    concurrently when their enclosing procedures can be executed by two
    distinct live threads (or by one multi-forked thread); joins and
    happens-before are not modelled. *)

type t

val compute : Threads.t -> Icfg.t -> t
val mec_stmt : t -> int -> int -> bool
(** May the two statement gids execute concurrently? *)

val mec_proc : t -> int -> int -> bool
