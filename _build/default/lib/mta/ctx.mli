(** Calling contexts (paper §3.1): a context is "a sequence of callsites from
    the entry of the main function" — fork sites included, as in the paper's
    Example 1 where thread [t3]'s entry context is [[1, 3]] ([fk1] then
    [fk3]).

    Contexts are hash-consed into integer ids; a context is a cons cell
    [(parent, site)] where [site] is a statement gid. The empty context is
    the context of [main]'s entry. *)

type store
type t = int

val empty : t
val create_store : unit -> store
val push : store -> t -> int -> t
val pop : store -> t -> t option
(** [None] on the empty context. *)

val peek : store -> t -> int option
val depth : store -> t -> int
val to_list : store -> t -> int list
(** Outermost callsite first. *)

val pp : store -> Format.formatter -> t -> unit
