open Fsam_dsa

type t = {
  mutable fwd : Iset.t array; (* fwd.(u) = successor set of u *)
  mutable bwd : Iset.t array;
  mutable max_node : int; (* -1 when no node exists *)
  mutable edges : int;
}

let create ?(size_hint = 16) () =
  let n = max size_hint 1 in
  { fwd = Array.make n Iset.empty; bwd = Array.make n Iset.empty; max_node = -1; edges = 0 }

let grow t i =
  let len = Array.length t.fwd in
  if i >= len then begin
    let n = max (i + 1) (2 * len) in
    let fwd = Array.make n Iset.empty and bwd = Array.make n Iset.empty in
    Array.blit t.fwd 0 fwd 0 len;
    Array.blit t.bwd 0 bwd 0 len;
    t.fwd <- fwd;
    t.bwd <- bwd
  end

let ensure_node t i =
  if i < 0 then invalid_arg "Digraph.ensure_node";
  grow t i;
  if i > t.max_node then t.max_node <- i

let add_edge t u v =
  ensure_node t u;
  ensure_node t v;
  let s = t.fwd.(u) in
  if not (Iset.mem v s) then begin
    t.fwd.(u) <- Iset.add v s;
    t.bwd.(v) <- Iset.add u t.bwd.(v);
    t.edges <- t.edges + 1
  end

let has_edge t u v =
  u >= 0 && u <= t.max_node && Iset.mem v t.fwd.(u)

let remove_edge t u v =
  if has_edge t u v then begin
    t.fwd.(u) <- Iset.remove v t.fwd.(u);
    t.bwd.(v) <- Iset.remove u t.bwd.(v);
    t.edges <- t.edges - 1
  end

let n_nodes t = t.max_node + 1
let n_edges t = t.edges
let succs t u = if u > t.max_node then [] else Iset.elements t.fwd.(u)
let preds t u = if u > t.max_node then [] else Iset.elements t.bwd.(u)

let iter_succs t u f = if u <= t.max_node then Iset.iter f t.fwd.(u)
let iter_preds t u f = if u <= t.max_node then Iset.iter f t.bwd.(u)
let iter_nodes t f =
  for i = 0 to t.max_node do
    f i
  done

let iter_edges t f = iter_nodes t (fun u -> iter_succs t u (fun v -> f u v))
let out_degree t u = if u > t.max_node then 0 else Iset.cardinal t.fwd.(u)
let in_degree t u = if u > t.max_node then 0 else Iset.cardinal t.bwd.(u)

let copy t =
  { fwd = Array.copy t.fwd; bwd = Array.copy t.bwd; max_node = t.max_node; edges = t.edges }

let transpose t =
  { fwd = Array.copy t.bwd; bwd = Array.copy t.fwd; max_node = t.max_node; edges = t.edges }
