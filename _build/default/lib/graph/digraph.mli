(** Mutable directed graphs over dense integer node ids.

    Nodes are created implicitly by adding edges or explicitly with
    [ensure_node]; ids should stay dense as internal storage is array-based.
    Parallel edges are collapsed (edge sets, not multisets). *)

type t

val create : ?size_hint:int -> unit -> t
val ensure_node : t -> int -> unit
val add_edge : t -> int -> int -> unit
val has_edge : t -> int -> int -> bool
val remove_edge : t -> int -> int -> unit
val n_nodes : t -> int
(** One past the largest node id ever touched. *)

val n_edges : t -> int
val succs : t -> int -> int list
val preds : t -> int -> int list
val iter_succs : t -> int -> (int -> unit) -> unit
val iter_preds : t -> int -> (int -> unit) -> unit
val iter_nodes : t -> (int -> unit) -> unit
val iter_edges : t -> (int -> int -> unit) -> unit
val out_degree : t -> int -> int
val in_degree : t -> int -> int
val copy : t -> t
val transpose : t -> t
