(** Strongly connected components (Tarjan's algorithm, iterative). *)

type result = {
  comp_of : int array;  (** node id -> component id *)
  comps : int list array;  (** component id -> member nodes *)
  n_comps : int;
}

val compute : Digraph.t -> result
(** Component ids are numbered in {i reverse} topological order of the
    condensation: if there is an edge from component [a] to component [b]
    (with [a <> b]) then [a > b]. Hence iterating components from
    [n_comps - 1] down to [0] visits them in topological order. *)

val topo_order : Digraph.t -> result -> int list
(** Nodes in a topological order of the condensation (members of one
    component appear consecutively). *)

val is_trivial : result -> Digraph.t -> int -> bool
(** A component is trivial if it has one node without a self loop. *)
