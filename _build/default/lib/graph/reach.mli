(** Reachability queries on directed graphs. *)

val from : Digraph.t -> int -> Fsam_dsa.Bitvec.t
(** Nodes reachable from the given source (including it). *)

val from_many : Digraph.t -> int list -> Fsam_dsa.Bitvec.t

val backward_from : Digraph.t -> int -> Fsam_dsa.Bitvec.t
(** Nodes that can reach the given sink (including it). *)

val reaches : Digraph.t -> int -> int -> bool

val all_paths_hit : Digraph.t -> src:int -> targets:Fsam_dsa.Bitvec.t -> exits:int list -> bool
(** [all_paths_hit g ~src ~targets ~exits] is [true] iff every path in [g]
    from [src] to any node in [exits] passes through some node in [targets]
    before (or when) reaching the exit. Used for the happens-before check of
    Definition 2: "the fork site of t' is backward reachable to a join site of
    t along every program path". Paths that never reach an exit (cycles)
    do not falsify the property. *)
