lib/graph/reach.mli: Digraph Fsam_dsa
