lib/graph/digraph.mli:
