lib/graph/dominance.mli: Digraph
