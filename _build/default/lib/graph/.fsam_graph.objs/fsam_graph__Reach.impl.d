lib/graph/reach.ml: Bitvec Digraph Fsam_dsa List
