lib/graph/dominance.ml: Array Digraph List
