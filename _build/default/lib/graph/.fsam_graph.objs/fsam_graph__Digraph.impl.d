lib/graph/digraph.ml: Array Fsam_dsa Iset
