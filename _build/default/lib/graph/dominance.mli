(** Dominator trees and dominance frontiers (Cooper–Harvey–Kennedy,
    "A Simple, Fast Dominance Algorithm"). Used by the frontend's SSA
    construction for top-level variables and by the memory-SSA renaming. *)

type t

val compute : Digraph.t -> entry:int -> t

val idom : t -> int -> int
(** Immediate dominator; the entry's idom is itself; unreachable nodes
    report [-1]. *)

val dominates : t -> int -> int -> bool
(** Reflexive: every node dominates itself. *)

val frontier : t -> int -> int list
(** Dominance frontier of a node. *)

val children : t -> int -> int list
(** Children in the dominator tree. *)

val reachable : t -> int -> bool
