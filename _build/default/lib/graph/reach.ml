open Fsam_dsa

let from_many g srcs =
  let seen = Bitvec.create ~capacity:(Digraph.n_nodes g) () in
  let stack = ref [] in
  List.iter
    (fun s -> if s >= 0 && Bitvec.set_if_unset seen s then stack := s :: !stack)
    srcs;
  while !stack <> [] do
    match !stack with
    | [] -> ()
    | u :: tl ->
      stack := tl;
      Digraph.iter_succs g u (fun v ->
          if Bitvec.set_if_unset seen v then stack := v :: !stack)
  done;
  seen

let from g s = from_many g [ s ]

let backward_from g s =
  let seen = Bitvec.create ~capacity:(Digraph.n_nodes g) () in
  let stack = ref [] in
  if s >= 0 then begin
    Bitvec.set seen s;
    stack := [ s ]
  end;
  while !stack <> [] do
    match !stack with
    | [] -> ()
    | u :: tl ->
      stack := tl;
      Digraph.iter_preds g u (fun v ->
          if Bitvec.set_if_unset seen v then stack := v :: !stack)
  done;
  seen

let reaches g u v = Bitvec.get (from g u) v

let all_paths_hit g ~src ~targets ~exits =
  (* Explore from [src] without entering target nodes; the property fails iff
     this exploration can still reach an exit. The source itself counts as
     covered when it is a target. *)
  if Bitvec.get targets src then true
  else begin
    let exit_set = Bitvec.create ~capacity:(Digraph.n_nodes g) () in
    List.iter (fun e -> if e >= 0 then Bitvec.set exit_set e) exits;
    let seen = Bitvec.create ~capacity:(Digraph.n_nodes g) () in
    let stack = ref [ src ] in
    Bitvec.set seen src;
    let ok = ref true in
    if Bitvec.get exit_set src then ok := false;
    while !ok && !stack <> [] do
      match !stack with
      | [] -> ()
      | u :: tl ->
        stack := tl;
        Digraph.iter_succs g u (fun v ->
            if (not (Bitvec.get targets v)) && Bitvec.set_if_unset seen v then begin
              if Bitvec.get exit_set v then ok := false;
              stack := v :: !stack
            end)
    done;
    !ok
  end
