type result = {
  comp_of : int array;
  comps : int list array;
  n_comps : int;
}

(* Iterative Tarjan: an explicit stack of (node, remaining successors) frames
   avoids stack overflow on the deep CFGs the workload generator produces. *)
let compute g =
  let n = Digraph.n_nodes g in
  let index = Array.make n (-1) in
  let lowlink = Array.make n 0 in
  let on_stack = Array.make n false in
  let stack = ref [] in
  let comp_of = Array.make n (-1) in
  let next_index = ref 0 in
  let next_comp = ref 0 in
  let visit root =
    if index.(root) = -1 then begin
      let frames = ref [ (root, Digraph.succs g root) ] in
      index.(root) <- !next_index;
      lowlink.(root) <- !next_index;
      incr next_index;
      stack := root :: !stack;
      on_stack.(root) <- true;
      while !frames <> [] do
        match !frames with
        | [] -> ()
        | (v, todo) :: rest -> (
          match todo with
          | w :: ws ->
            frames := (v, ws) :: rest;
            if index.(w) = -1 then begin
              index.(w) <- !next_index;
              lowlink.(w) <- !next_index;
              incr next_index;
              stack := w :: !stack;
              on_stack.(w) <- true;
              frames := (w, Digraph.succs g w) :: !frames
            end
            else if on_stack.(w) then
              if index.(w) < lowlink.(v) then lowlink.(v) <- index.(w)
          | [] ->
            frames := rest;
            (match rest with
            | (p, _) :: _ -> if lowlink.(v) < lowlink.(p) then lowlink.(p) <- lowlink.(v)
            | [] -> ());
            if lowlink.(v) = index.(v) then begin
              let c = !next_comp in
              incr next_comp;
              let continue = ref true in
              while !continue do
                match !stack with
                | [] -> continue := false
                | w :: tl ->
                  stack := tl;
                  on_stack.(w) <- false;
                  comp_of.(w) <- c;
                  if w = v then continue := false
              done
            end)
      done
    end
  in
  for v = 0 to n - 1 do
    visit v
  done;
  let n_comps = !next_comp in
  let comps = Array.make (max n_comps 1) [] in
  for v = n - 1 downto 0 do
    if comp_of.(v) >= 0 then comps.(comp_of.(v)) <- v :: comps.(comp_of.(v))
  done;
  { comp_of; comps; n_comps }

let topo_order g r =
  ignore g;
  let acc = ref [] in
  for c = 0 to r.n_comps - 1 do
    acc := List.rev_append r.comps.(c) !acc
  done;
  (* components were appended from 0 upward then reversed, so high component
     ids (topologically early) come first *)
  !acc

let is_trivial r g v =
  match r.comps.(r.comp_of.(v)) with
  | [ u ] -> not (Digraph.has_edge g u u)
  | _ -> false
