type t = {
  idom : int array;
  rpo_number : int array; (* position in reverse postorder; -1 if unreachable *)
  frontiers : int list array;
  kids : int list array;
}

let postorder g entry =
  let n = Digraph.n_nodes g in
  let seen = Array.make n false in
  let order = ref [] in
  (* iterative DFS with explicit frames *)
  let frames = ref [] in
  if entry >= 0 && entry < n then begin
    seen.(entry) <- true;
    frames := [ (entry, Digraph.succs g entry) ]
  end;
  while !frames <> [] do
    match !frames with
    | [] -> ()
    | (v, todo) :: rest -> (
      match todo with
      | w :: ws ->
        frames := (v, ws) :: rest;
        if not seen.(w) then begin
          seen.(w) <- true;
          frames := (w, Digraph.succs g w) :: !frames
        end
      | [] ->
        frames := rest;
        order := v :: !order)
  done;
  !order (* this is reverse postorder: last-finished first *)

let compute g ~entry =
  let n = Digraph.n_nodes g in
  let rpo = postorder g entry in
  let rpo_number = Array.make n (-1) in
  List.iteri (fun i v -> rpo_number.(v) <- i) rpo;
  let idom = Array.make n (-1) in
  idom.(entry) <- entry;
  let intersect b1 b2 =
    let f1 = ref b1 and f2 = ref b2 in
    while !f1 <> !f2 do
      while rpo_number.(!f1) > rpo_number.(!f2) do
        f1 := idom.(!f1)
      done;
      while rpo_number.(!f2) > rpo_number.(!f1) do
        f2 := idom.(!f2)
      done
    done;
    !f1
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun v ->
        if v <> entry then begin
          let new_idom = ref (-1) in
          List.iter
            (fun p ->
              if rpo_number.(p) >= 0 && idom.(p) >= 0 then
                if !new_idom = -1 then new_idom := p
                else new_idom := intersect p !new_idom)
            (Digraph.preds g v);
          if !new_idom >= 0 && idom.(v) <> !new_idom then begin
            idom.(v) <- !new_idom;
            changed := true
          end
        end)
      rpo
  done;
  let frontiers = Array.make n [] in
  let add_frontier v x =
    if not (List.mem x frontiers.(v)) then frontiers.(v) <- x :: frontiers.(v)
  in
  Digraph.iter_nodes g (fun v ->
      if rpo_number.(v) >= 0 && Digraph.in_degree g v >= 2 then
        List.iter
          (fun p ->
            if rpo_number.(p) >= 0 then begin
              let runner = ref p in
              while !runner <> idom.(v) do
                add_frontier !runner v;
                runner := idom.(!runner)
              done
            end)
          (Digraph.preds g v));
  let kids = Array.make n [] in
  Digraph.iter_nodes g (fun v ->
      if v <> entry && idom.(v) >= 0 then kids.(idom.(v)) <- v :: kids.(idom.(v)));
  { idom; rpo_number; frontiers; kids }

let idom t v = t.idom.(v)

let dominates t a b =
  if t.rpo_number.(a) < 0 || t.rpo_number.(b) < 0 then false
  else begin
    let v = ref b in
    let res = ref false in
    let continue = ref true in
    while !continue do
      if !v = a then begin
        res := true;
        continue := false
      end
      else if t.idom.(!v) = !v || t.idom.(!v) < 0 then continue := false
      else v := t.idom.(!v)
    done;
    !res
  end

let frontier t v = t.frontiers.(v)
let children t v = t.kids.(v)
let reachable t v = v >= 0 && v < Array.length t.rpo_number && t.rpo_number.(v) >= 0
