open Fsam_dsa
open Fsam_ir

(* Nodes: variables in [0, V); the cell of object o at V + o (as in the
   Andersen solver). Each union-find class carries (a) the set of abstract
   objects whose cells belong to it, (b) an optional pointee class. *)

type t = {
  prog : Prog.t;
  nvars : int;
  uf : Uf.t;
  objs_of : (int, Iset.t) Hashtbl.t; (* root -> objects in the class *)
  pointee : (int, int) Hashtbl.t; (* root -> pointee root *)
  mutable fresh : int; (* allocator for pointee classes past the node space *)
}

let node_of_var _t v = v
let node_of_obj t o = t.nvars + o

let root t n = Uf.find t.uf n
let objs_at t r = Option.value ~default:Iset.empty (Hashtbl.find_opt t.objs_of r)

(* Unify two classes, merging their object sets and recursively their
   pointees (the heart of Steensgaard's algorithm). *)
let rec unify t a b =
  let ra = root t a and rb = root t b in
  if ra = rb then ra
  else begin
    let pa = Hashtbl.find_opt t.pointee ra and pb = Hashtbl.find_opt t.pointee rb in
    let oa = objs_at t ra and ob = objs_at t rb in
    let r = Uf.union t.uf ra rb in
    let merged = Iset.union oa ob in
    if not (Iset.is_empty merged) then Hashtbl.replace t.objs_of r merged;
    Hashtbl.remove t.objs_of (if r = ra then rb else ra);
    (match (pa, pb) with
    | None, None -> Hashtbl.remove t.pointee r
    | Some p, None | None, Some p -> Hashtbl.replace t.pointee r (root t p)
    | Some p1, Some p2 ->
      (* unifying may invalidate roots: re-resolve afterwards *)
      let p = unify t p1 p2 in
      Hashtbl.replace t.pointee (root t r) p);
    root t r
  end

(* The pointee class of [n], creating a fresh one if absent. Fresh classes
   use node ids past the var/obj space. *)
let pointee_of t n =
  let r = root t n in
  match Hashtbl.find_opt t.pointee r with
  | Some p -> root t p
  | None ->
    t.fresh <- t.fresh + 1;
    let fresh = t.nvars + Prog.n_objs t.prog + t.fresh in
    let fr = root t fresh in
    Hashtbl.replace t.pointee r fr;
    fr

let run prog =
  let nvars = Prog.n_vars prog in
  let t =
    {
      prog;
      nvars;
      uf = Uf.create (nvars + Prog.n_objs prog + 64);
      objs_of = Hashtbl.create 256;
      pointee = Hashtbl.create 256;
      fresh = 0;
    }
  in
  (* each object's cell class initially contains the object itself *)
  Prog.iter_objs prog (fun o ->
      Hashtbl.replace t.objs_of (root t (node_of_obj t o.Memobj.id))
        (Iset.singleton o.Memobj.id));
  let assign_addr p o =
    (* p = &o: o's cell class becomes (part of) p's pointee *)
    ignore (unify t (pointee_of t (node_of_var t p)) (node_of_obj t o))
  in
  let assign p q =
    (* p = q: unify the pointees *)
    ignore (unify t (pointee_of t (node_of_var t p)) (pointee_of t (node_of_var t q)))
  in
  let ret_vars = Array.make (Prog.n_funcs prog) [] in
  Prog.iter_funcs prog (fun f ->
      Func.iter_stmts f (fun _ s ->
          match s with
          | Stmt.Return (Some v) -> ret_vars.(f.Func.fid) <- v :: ret_vars.(f.Func.fid)
          | _ -> ()));
  (* two passes: the second resolves indirect calls through the classes built
     by the first (iterate to a small fixpoint on the class count) *)
  let resolve_callees fid idx target =
    match target with
    | Stmt.Direct f -> [ f ]
    | Stmt.Indirect v ->
      ignore (fid, idx);
      Iset.fold
        (fun o acc ->
          match (Prog.obj prog o).Memobj.kind with
          | Memobj.Func f -> f :: acc
          | _ -> acc)
        (objs_at t (pointee_of t (node_of_var t v)))
        []
  in
  let pass () =
    Prog.iter_funcs prog (fun f ->
        let fid = f.Func.fid in
        Func.iter_stmts f (fun idx s ->
            match s with
            | Stmt.Addr_of { dst; obj } -> assign_addr dst obj
            | Stmt.Copy { dst; src } -> assign dst src
            | Stmt.Phi { dst; srcs } -> List.iter (assign dst) srcs
            | Stmt.Gep { dst; src; _ } ->
              (* field-insensitive: the field cell is the base cell *)
              assign dst src
            | Stmt.Load { dst; src } ->
              (* pointee(dst) ≡ pointee(pointee(src)) *)
              ignore
                (unify t
                   (pointee_of t (node_of_var t dst))
                   (pointee_of t (pointee_of t (node_of_var t src))))
            | Stmt.Store { dst; src } ->
              ignore
                (unify t
                   (pointee_of t (pointee_of t (node_of_var t dst)))
                   (pointee_of t (node_of_var t src)))
            | Stmt.Call { target; args; ret } ->
              List.iter
                (fun callee ->
                  let cf = Prog.func prog callee in
                  let rec bind a p =
                    match (a, p) with
                    | x :: a, y :: p ->
                      assign y x;
                      bind a p
                    | _ -> ()
                  in
                  bind args cf.Func.params;
                  match ret with
                  | Some r -> List.iter (fun rv -> assign r rv) ret_vars.(callee)
                  | None -> ())
                (resolve_callees fid idx target)
            | Stmt.Fork { handle; target; args; fork_id } ->
              List.iter
                (fun callee ->
                  let cf = Prog.func prog callee in
                  let rec bind a p =
                    match (a, p) with
                    | x :: a, y :: p ->
                      assign y x;
                      bind a p
                    | _ -> ()
                  in
                  bind args cf.Func.params)
                (resolve_callees fid idx target);
              (match handle with
              | Some h ->
                (* the handle cells receive the thread object *)
                let theta = Prog.thread_obj_of_fork prog fork_id in
                ignore
                  (unify t
                     (pointee_of t (pointee_of t (node_of_var t h)))
                     (node_of_obj t theta))
              | None -> ())
            | Stmt.Return _ | Stmt.Join _ | Stmt.Lock _ | Stmt.Unlock _ | Stmt.Nop _ ->
              ()))
  in
  let rec to_fixpoint budget =
    let before = Uf.n_classes t.uf in
    pass ();
    if Uf.n_classes t.uf <> before && budget > 0 then to_fixpoint (budget - 1)
  in
  to_fixpoint 8;
  t

(* Field-insensitivity: a class holding object [o] stands for [o] and all
   of its fields; a field object's cell is its base's cell. Queries expand
   accordingly so results are directly comparable to (and supersets of) the
   field-sensitive analyses'. *)
let expand t s =
  Iset.fold
    (fun o acc ->
      List.fold_left
        (fun acc fo -> Iset.add fo acc)
        (Iset.add o acc) (Prog.fields_of t.prog o))
    s Iset.empty

let pt_var t v = expand t (objs_at t (pointee_of t (node_of_var t v)))

let pt_obj t o =
  let base = Memobj.base_of (Prog.obj t.prog o) in
  expand t (objs_at t (pointee_of t (node_of_obj t base)))

let n_classes t = Uf.n_classes t.uf
