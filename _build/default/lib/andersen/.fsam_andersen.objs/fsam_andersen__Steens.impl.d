lib/andersen/steens.ml: Array Fsam_dsa Fsam_ir Func Hashtbl Iset List Memobj Option Prog Stmt Uf
