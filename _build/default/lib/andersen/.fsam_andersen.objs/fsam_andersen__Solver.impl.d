lib/andersen/solver.ml: Array Bitvec Format Fsam_dsa Fsam_graph Fsam_ir Func Hashtbl Iset List Memobj Option Prog Queue Stmt Uf
