lib/andersen/solver.mli: Format Fsam_dsa Fsam_graph Fsam_ir Prog Stmt
