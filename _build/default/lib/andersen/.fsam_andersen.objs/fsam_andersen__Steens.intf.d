lib/andersen/steens.mli: Fsam_dsa Fsam_ir Prog Stmt
