lib/andersen/modref.ml: Array Fsam_dsa Fsam_graph Fsam_ir Func Iset List Prog Solver Stmt
