lib/andersen/modref.mli: Fsam_dsa Fsam_ir Prog Solver
