open Fsam_ir

(** Interprocedural mod/ref summaries over the pre-analysis points-to
    information: for every function, the sets of abstract objects it may
    write ([mod]) and read ([ref]) — directly or transitively through calls
    {i and forks} (in the sequentialised program [Pseq] of paper §3.2 a fork
    is a call, so a spawnee's side effects belong to the spawner's summary).

    These summaries drive the [mu]/[chi] annotation of call, fork and join
    sites in the memory-SSA construction. *)

type t

val compute : Prog.t -> Solver.t -> t

val mod_of : t -> int -> Fsam_dsa.Iset.t
(** Objects function [fid] may define. *)

val ref_of : t -> int -> Fsam_dsa.Iset.t
(** Objects function [fid] may use. *)

val callsite_mod : t -> Solver.t -> fid:int -> idx:int -> Fsam_dsa.Iset.t
(** Union of [mod] over the callees resolved at the given call/fork site. *)

val callsite_ref : t -> Solver.t -> fid:int -> idx:int -> Fsam_dsa.Iset.t
