open Fsam_ir

(** Steensgaard's unification-based pointer analysis — near-linear time,
    coarser than Andersen's inclusion-based analysis. Provided as a
    study/comparison baseline for the staged-analysis design space (the
    sparse-analysis literature the paper builds on [10] permits any sound
    pre-analysis; the paper, like this reproduction's pipeline, uses
    Andersen's). Field-insensitive: [Gep] unifies with the base.

    Guaranteed coarser-or-equal: for every variable,
    [Andersen's pt ⊆ Steensgaard's pt] (checked by the property suite,
    together with interpreter soundness). *)

type t

val run : Prog.t -> t
val pt_var : t -> Stmt.var -> Fsam_dsa.Iset.t
val pt_obj : t -> Stmt.obj -> Fsam_dsa.Iset.t
val n_classes : t -> int
