open Fsam_dsa
open Fsam_ir

type t = { mods : Iset.t array; refs : Iset.t array }

let direct prog ast f =
  let m = ref Iset.empty and r = ref Iset.empty in
  Func.iter_stmts f (fun _ s ->
      match s with
      | Stmt.Load { src; _ } -> r := Iset.union !r (Solver.pt_var ast src)
      | Stmt.Store { dst; _ } ->
        (* a store is a chi: def plus use of the old contents (weak updates) *)
        let tgts = Solver.pt_var ast dst in
        m := Iset.union !m tgts;
        r := Iset.union !r tgts
      | Stmt.Fork { handle = Some h; _ } ->
        (* the fork writes the thread object into the handle cells *)
        m := Iset.union !m (Solver.pt_var ast h)
      | Stmt.Join { handle } ->
        r := Iset.union !r (Solver.pt_var ast handle)
      | _ -> ());
  ignore prog;
  (!m, !r)

let compute prog ast =
  let n = Prog.n_funcs prog in
  let mods = Array.make n Iset.empty and refs = Array.make n Iset.empty in
  Prog.iter_funcs prog (fun f ->
      let m, r = direct prog ast f in
      mods.(f.Func.fid) <- m;
      refs.(f.Func.fid) <- r);
  (* Propagate callee summaries bottom-up over the call graph (with fork
     edges). Components are processed callees-first; within a component a
     small fixpoint loop handles recursion. *)
  let cg = Solver.call_graph ast in
  let scc = Fsam_graph.Scc.compute cg in
  for c = 0 to scc.Fsam_graph.Scc.n_comps - 1 do
    let members = scc.Fsam_graph.Scc.comps.(c) in
    let changed = ref true in
    while !changed do
      changed := false;
      List.iter
        (fun f ->
          if f < n then
            Fsam_graph.Digraph.iter_succs cg f (fun g ->
                let m = Iset.union mods.(f) mods.(g) in
                let r = Iset.union refs.(f) refs.(g) in
                if not (m == mods.(f)) then begin
                  mods.(f) <- m;
                  changed := true
                end;
                if not (r == refs.(f)) then begin
                  refs.(f) <- r;
                  changed := true
                end))
        members;
      (* single pass suffices for trivial components *)
      match members with [ _ ] -> changed := false | _ -> ()
    done
  done;
  { mods; refs }

let mod_of t f = t.mods.(f)
let ref_of t f = t.refs.(f)

let over_callees t ast ~fid ~idx proj =
  List.fold_left
    (fun acc g -> Iset.union acc (proj t g))
    Iset.empty
    (Solver.callees ast ~fid ~idx)

let callsite_mod t ast ~fid ~idx = over_callees t ast ~fid ~idx mod_of
let callsite_ref t ast ~fid ~idx = over_callees t ast ~fid ~idx ref_of
