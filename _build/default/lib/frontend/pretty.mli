(** Pretty-printer for MiniC ASTs. [pp_program] emits parseable source:
    [Parser.parse_string (to_string ast)] yields an equal AST (modulo the
    sugar the parser desugars), which the test suite checks as a round-trip
    property. *)

val pp_ty : Format.formatter -> Ast.ty -> unit
val pp_expr : Format.formatter -> Ast.expr -> unit
val pp_stmt : Format.formatter -> Ast.stmt -> unit
val pp_program : Format.formatter -> Ast.program -> unit
val to_string : Ast.program -> string
