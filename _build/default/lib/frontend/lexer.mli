(** Hand-written lexer for MiniC. Supports [//] line and [/* ... */] block
    comments. Reports 1-based line numbers on errors. *)

exception Error of string

val tokenize : string -> (Token.t * int) list
(** Token stream with line numbers, terminated by [EOF]. *)
