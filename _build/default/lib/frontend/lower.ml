open Ast
open Fsam_ir
module B = Builder

exception Error of string

let err fmt = Format.kasprintf (fun s -> raise (Error s)) fmt

type binding =
  | Reg of Stmt.var
  | Obj of Stmt.obj * Ast.ty
  | Fun of int

type env = {
  b : B.t;
  fid : int;
  globals : (string, binding) Hashtbl.t;
  locals : (string, binding) Hashtbl.t;
}

let lookup env name =
  match Hashtbl.find_opt env.locals name with
  | Some b -> b
  | None -> (
    match Hashtbl.find_opt env.globals name with
    | Some b -> b
    | None -> err "unknown identifier %s" name)

let is_array_ty = function Tarray _ -> true | _ -> false

(* Does the function body take the address of local [name], or use it in a
   way that requires a memory cell? *)
let rec addr_taken_in_block name block = List.exists (addr_taken_in_stmt name) block

and addr_taken_in_stmt name = function
  | Sdecl (_, _, Some e) -> addr_taken_in_expr name e
  | Sdecl _ -> false
  | Sassign (l, r) -> addr_taken_in_expr name l || addr_taken_in_expr name r
  | Sexpr e | Sjoin e | Slock e | Sunlock e -> addr_taken_in_expr name e
  | Sif (c, t, e) ->
    addr_taken_in_expr name c || addr_taken_in_block name t || addr_taken_in_block name e
  | Swhile (c, body) -> addr_taken_in_expr name c || addr_taken_in_block name body
  | Sreturn (Some e) -> addr_taken_in_expr name e
  | Sreturn None | Sbarrier -> false
  | Sfork (h, t, args) ->
    (match h with Some h -> addr_taken_in_expr name h | None -> false)
    || addr_taken_in_expr name t
    || List.exists (addr_taken_in_expr name) args

and addr_taken_in_expr name = function
  | Eaddr (Eid x) -> x = name
  | Eaddr e | Ederef e | Efield (e, _, _) -> addr_taken_in_expr name e
  | Eindex (e, i) -> addr_taken_in_expr name e || addr_taken_in_expr name i
  | Ecall (f, args) ->
    addr_taken_in_expr name f || List.exists (addr_taken_in_expr name) args
  | Ebinop (_, a, b) -> addr_taken_in_expr name a || addr_taken_in_expr name b
  | Eid _ | Eint _ | Enull | Enondet | Emalloc -> false

let needs_cell ty body name =
  match ty with
  | Tstruct _ | Tlock | Tthread | Tarray _ -> true
  | _ -> addr_taken_in_block name body

(* -- Expression lowering --------------------------------------------------- *)

let rec lower_expr env fb e : Stmt.var =
  match e with
  | Eid name -> (
    match lookup env name with
    | Reg v -> v
    | Fun fid ->
      let t = B.fresh_var env.b ("&" ^ name) in
      B.addr_of fb t (B.func_obj env.b fid);
      t
    | Obj (o, ty) ->
      let addr = B.fresh_var env.b ("&" ^ name) in
      B.addr_of fb addr o;
      if is_array_ty ty then addr (* array-to-pointer decay *)
      else begin
        let v = B.fresh_var env.b (name ^ ".val") in
        B.load fb v addr;
        v
      end)
  | Eint _ | Enull | Enondet -> B.fresh_var env.b "zero"
  | Emalloc ->
    let o = B.heap_obj env.b ~owner:env.fid "malloc" in
    let v = B.fresh_var env.b "heap" in
    B.addr_of fb v o;
    v
  | Eaddr e' -> lower_addr env fb e'
  | Ederef e' ->
    let p = lower_expr env fb e' in
    let v = B.fresh_var env.b "deref" in
    B.load fb v p;
    v
  | Efield _ | Eindex _ ->
    let addr = lower_addr env fb e in
    let v = B.fresh_var env.b "fld" in
    B.load fb v addr;
    v
  | Ecall (callee, args) ->
    let argv = List.map (lower_expr env fb) args in
    let ret = B.fresh_var env.b "ret" in
    (match callee with
    | Eid name -> (
      match Hashtbl.find_opt env.globals name with
      | Some (Fun fid) -> B.call fb ~ret (Stmt.Direct fid) argv
      | _ ->
        let fp = lower_expr env fb callee in
        B.call fb ~ret (Stmt.Indirect fp) argv)
    | _ ->
      let fp = lower_expr env fb callee in
      B.call fb ~ret (Stmt.Indirect fp) argv);
    ret
  | Ebinop (_, a, b) ->
    ignore (lower_expr env fb a);
    ignore (lower_expr env fb b);
    B.fresh_var env.b "int"

and lower_addr env fb e : Stmt.var =
  match e with
  | Eid name -> (
    match lookup env name with
    | Obj (o, _) ->
      let t = B.fresh_var env.b ("&" ^ name) in
      B.addr_of fb t o;
      t
    | Reg _ -> err "cannot take the address of register %s (frontend bug)" name
    | Fun fid ->
      let t = B.fresh_var env.b ("&" ^ name) in
      B.addr_of fb t (B.func_obj env.b fid);
      t)
  | Ederef e' -> lower_expr env fb e'
  | Efield (base, f, arrow) ->
    let basep = if arrow then lower_expr env fb base else lower_addr env fb base in
    let t = B.fresh_var env.b ("&" ^ f) in
    B.gep fb t basep f;
    t
  | Eindex (base, idx) ->
    ignore (lower_expr env fb idx);
    (match base with
    | Eid name -> (
      match lookup env name with
      | Obj (o, ty) when is_array_ty ty ->
        let t = B.fresh_var env.b ("&" ^ name) in
        B.addr_of fb t o;
        t
      | _ -> lower_expr env fb base)
    | _ -> lower_expr env fb base)
  | Eaddr _ | Ecall _ | Ebinop _ | Eint _ | Enull | Enondet | Emalloc ->
    err "expression is not an lvalue"

(* -- Statement lowering ----------------------------------------------------- *)

let rec lower_stmt env fb s =
  match s with
  | Sdecl (ty, name, init) ->
    (* binding was pre-registered; just run the initializer *)
    (match init with
    | Some e -> lower_stmt env fb (Sassign (Eid name, e))
    | None -> ());
    ignore ty
  | Sassign (lhs, rhs) -> (
    let v = lower_expr env fb rhs in
    match lhs with
    | Eid name -> (
      match lookup env name with
      | Reg r -> B.copy fb r v
      | Obj (o, _) ->
        let addr = B.fresh_var env.b ("&" ^ name) in
        B.addr_of fb addr o;
        B.store fb addr v
      | Fun _ -> err "cannot assign to function %s" name)
    | _ ->
      let addr = lower_addr env fb lhs in
      B.store fb addr v)
  | Sexpr e -> ignore (lower_expr env fb e)
  | Sif (c, thn, els) ->
    ignore (lower_expr env fb c);
    B.if_ fb
      ~then_:(fun fb -> List.iter (lower_stmt env fb) thn)
      ~else_:(fun fb -> List.iter (lower_stmt env fb) els)
  | Swhile (c, body) ->
    ignore (lower_expr env fb c);
    B.while_ fb (fun fb ->
        List.iter (lower_stmt env fb) body;
        ignore (lower_expr env fb c))
  | Sreturn e ->
    let v = Option.map (lower_expr env fb) e in
    B.ret fb v
  | Sfork (handle, target, args) -> (
    let h = Option.map (lower_expr env fb) handle in
    let argv = List.map (lower_expr env fb) args in
    match target with
    | Eid name when (match Hashtbl.find_opt env.globals name with Some (Fun _) -> true | _ -> false)
      -> (
      match Hashtbl.find_opt env.globals name with
      | Some (Fun fid) -> B.fork fb ?handle:h (Stmt.Direct fid) argv
      | _ -> assert false)
    | _ ->
      let fp = lower_expr env fb target in
      B.fork fb ?handle:h (Stmt.Indirect fp) argv)
  | Sjoin h ->
    let hv = lower_expr env fb h in
    B.join fb hv
  | Slock e ->
    let v = lower_expr env fb e in
    B.lock fb v
  | Sunlock e ->
    let v = lower_expr env fb e in
    B.unlock fb v
  | Sbarrier -> B.nop fb "barrier"

(* -- Program lowering -------------------------------------------------------- *)

(* Register every local declaration of a block (recursively) as either a
   register or a memory object. MiniC scoping is function-wide (like C with
   all declarations hoisted); duplicate names are rejected. *)
let rec register_locals env ~body ~fid block =
  List.iter
    (fun s ->
      match s with
      | Sdecl (ty, name, _) ->
        if Hashtbl.mem env.locals name then err "duplicate local %s" name;
        if needs_cell ty body name then
          Hashtbl.replace env.locals name
            (Obj (B.stack_obj env.b ~owner:fid name, ty))
        else Hashtbl.replace env.locals name (Reg (B.fresh_var env.b name))
      | Sif (_, t, e) ->
        register_locals env ~body ~fid t;
        register_locals env ~body ~fid e
      | Swhile (_, b') -> register_locals env ~body ~fid b'
      | _ -> ())
    block

let lower (prog : Ast.program) : Prog.t =
  let b = B.create () in
  let globals : (string, binding) Hashtbl.t = Hashtbl.create 32 in
  (* pass 1: declare functions *)
  let funs =
    List.filter_map
      (function
        | Dfun f ->
          if Hashtbl.mem globals f.fname then err "duplicate function %s" f.fname;
          let fid = B.declare b f.fname ~params:(List.map snd f.params) in
          Hashtbl.replace globals f.fname (Fun fid);
          Some (f, fid)
        | _ -> None)
      prog
  in
  (* pass 2: globals *)
  let global_inits = ref [] in
  List.iter
    (function
      | Dglobal (ty, name, init) ->
        if Hashtbl.mem globals name then err "duplicate global %s" name;
        let o = B.global_obj ~is_array:(is_array_ty ty) b name in
        Hashtbl.replace globals name (Obj (o, ty));
        (match init with Some e -> global_inits := (name, e) :: !global_inits | None -> ())
      | _ -> ())
    prog;
  let global_inits = List.rev !global_inits in
  (match Hashtbl.find_opt globals "main" with
  | Some (Fun _) -> ()
  | _ -> err "program has no main function");
  (* pass 3: function bodies *)
  List.iter
    (fun (f, fid) ->
      let env = { b; fid; globals; locals = Hashtbl.create 16 } in
      List.iteri
        (fun i (ty, pname) ->
          match ty with
          | Tstruct _ | Tarray _ -> err "%s: struct/array parameters are unsupported" f.fname
          | _ -> Hashtbl.replace env.locals pname (Reg (B.param b fid i)))
        f.params;
      register_locals env ~body:f.body ~fid f.body;
      B.define b fid (fun fb ->
          if f.fname = "main" then
            List.iter
              (fun (name, e) -> lower_stmt env fb (Sassign (Eid name, e)))
              global_inits;
          List.iter (lower_stmt env fb) f.body))
    funs;
  let raw = B.finish b in
  (match Validate.check ~ssa:false raw with
  | Ok () -> ()
  | Error es -> err "lowering produced invalid IR: %s" (String.concat "; " es));
  let ssa = Ssa.transform raw in
  Validate.check_exn ssa;
  (* compact the structural nops the lowering emitted *)
  let compacted = Simplify.compact ssa in
  Validate.check_exn compacted;
  compacted

let compile_string src = lower (Parser.parse_string src)
