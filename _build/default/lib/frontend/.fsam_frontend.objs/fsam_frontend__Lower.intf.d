lib/frontend/lower.mli: Ast Fsam_ir
