lib/frontend/pretty.ml: Ast Format List Printf String
