lib/frontend/lower.ml: Ast Builder Format Fsam_ir Hashtbl List Option Parser Prog Simplify Ssa Stmt String Validate
