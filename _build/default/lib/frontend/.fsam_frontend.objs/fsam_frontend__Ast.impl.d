lib/frontend/ast.ml:
