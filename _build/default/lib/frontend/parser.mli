(** Hand-written recursive-descent parser for MiniC. *)

exception Error of string

val parse : (Token.t * int) list -> Ast.program
val parse_string : string -> Ast.program
(** Lex and parse. Raises [Error] or [Lexer.Error]. *)
