open Ast

exception Error of string

type st = { toks : (Token.t * int) array; mutable pos : int }

let cur st = fst st.toks.(st.pos)
let line st = snd st.toks.(st.pos)
let advance st = if st.pos < Array.length st.toks - 1 then st.pos <- st.pos + 1

let fail st msg =
  raise (Error (Printf.sprintf "line %d: %s, found %s" (line st) msg (Token.to_string (cur st))))

let eat st tok =
  if cur st = tok then advance st
  else fail st (Printf.sprintf "expected %s" (Token.to_string tok))

let is_type_start st =
  match cur st with
  | Token.KW_INT | Token.KW_VOID | Token.KW_STRUCT | Token.KW_LOCK_T | Token.KW_THREAD_T ->
    true
  | _ -> false

let parse_base_type st =
  match cur st with
  | Token.KW_INT ->
    advance st;
    Tint
  | Token.KW_VOID ->
    advance st;
    Tvoid
  | Token.KW_LOCK_T ->
    advance st;
    Tlock
  | Token.KW_THREAD_T ->
    advance st;
    Tthread
  | Token.KW_STRUCT -> (
    advance st;
    match cur st with
    | Token.IDENT name ->
      advance st;
      Tstruct name
    | _ -> fail st "expected struct name")
  | _ -> fail st "expected a type"

let parse_type st =
  let t = ref (parse_base_type st) in
  while cur st = Token.STAR do
    advance st;
    t := Tptr !t
  done;
  !t

let ident st =
  match cur st with
  | Token.IDENT s ->
    advance st;
    s
  | _ -> fail st "expected an identifier"

(* Expressions ------------------------------------------------------------- *)

let rec parse_expr st = parse_binop st

and parse_binop st =
  let lhs = ref (parse_unary st) in
  let continue = ref true in
  while !continue do
    match cur st with
    | Token.EQ | Token.NEQ | Token.LT | Token.GT | Token.LE | Token.GE | Token.PLUS
    | Token.MINUS ->
      let op = Token.to_string (cur st) in
      advance st;
      let rhs = parse_unary st in
      lhs := Ebinop (op, !lhs, rhs)
    | _ -> continue := false
  done;
  !lhs

and parse_unary st =
  match cur st with
  | Token.STAR ->
    advance st;
    Ederef (parse_unary st)
  | Token.AMP ->
    advance st;
    Eaddr (parse_unary st)
  | Token.MINUS ->
    advance st;
    parse_unary st
  | _ -> parse_postfix st

and parse_postfix st =
  let e = ref (parse_primary st) in
  let continue = ref true in
  while !continue do
    match cur st with
    | Token.ARROW ->
      advance st;
      e := Efield (!e, ident st, true)
    | Token.DOT ->
      advance st;
      e := Efield (!e, ident st, false)
    | Token.LBRACKET ->
      advance st;
      let idx = parse_expr st in
      eat st Token.RBRACKET;
      e := Eindex (!e, idx)
    | Token.LPAREN ->
      advance st;
      let args = parse_args st in
      eat st Token.RPAREN;
      e := Ecall (!e, args)
    | _ -> continue := false
  done;
  !e

and parse_args st =
  if cur st = Token.RPAREN then []
  else begin
    let rec go acc =
      let e = parse_expr st in
      if cur st = Token.COMMA then begin
        advance st;
        go (e :: acc)
      end
      else List.rev (e :: acc)
    in
    go []
  end

and parse_primary st =
  match cur st with
  | Token.IDENT s ->
    advance st;
    Eid s
  | Token.INT n ->
    advance st;
    Eint n
  | Token.KW_NULL ->
    advance st;
    Enull
  | Token.KW_NONDET ->
    advance st;
    (match cur st with
    | Token.LPAREN ->
      advance st;
      eat st Token.RPAREN
    | _ -> ());
    Enondet
  | Token.KW_MALLOC ->
    advance st;
    eat st Token.LPAREN;
    (* optional size expression, ignored *)
    if cur st <> Token.RPAREN then ignore (parse_expr st);
    eat st Token.RPAREN;
    Emalloc
  | Token.LPAREN ->
    advance st;
    let e = parse_expr st in
    eat st Token.RPAREN;
    e
  | _ -> fail st "expected an expression"

(* Statements --------------------------------------------------------------- *)

let rec parse_stmt st =
  match cur st with
  | _ when is_type_start st ->
    let ty = parse_type st in
    let name = ident st in
    let ty =
      if cur st = Token.LBRACKET then begin
        advance st;
        let n = match cur st with Token.INT n -> advance st; n | _ -> 0 in
        eat st Token.RBRACKET;
        Tarray (ty, n)
      end
      else ty
    in
    let init =
      if cur st = Token.ASSIGN then begin
        advance st;
        Some (parse_expr st)
      end
      else None
    in
    eat st Token.SEMI;
    Sdecl (ty, name, init)
  | Token.KW_IF ->
    advance st;
    eat st Token.LPAREN;
    let c = parse_expr st in
    eat st Token.RPAREN;
    let thn = parse_block st in
    let els = if cur st = Token.KW_ELSE then (advance st; parse_block st) else [] in
    Sif (c, thn, els)
  | Token.KW_WHILE ->
    advance st;
    eat st Token.LPAREN;
    let c = parse_expr st in
    eat st Token.RPAREN;
    let body = parse_block st in
    Swhile (c, body)
  | Token.KW_RETURN ->
    advance st;
    let e = if cur st = Token.SEMI then None else Some (parse_expr st) in
    eat st Token.SEMI;
    Sreturn e
  | Token.KW_FORK ->
    advance st;
    eat st Token.LPAREN;
    let handle = parse_expr st in
    eat st Token.COMMA;
    let target = parse_expr st in
    let args =
      if cur st = Token.COMMA then begin
        advance st;
        parse_args st
      end
      else []
    in
    eat st Token.RPAREN;
    eat st Token.SEMI;
    let handle = match handle with Enull -> None | h -> Some h in
    Sfork (handle, target, args)
  | Token.KW_JOIN ->
    advance st;
    eat st Token.LPAREN;
    let h = parse_expr st in
    (* tolerate pthread_join's second argument *)
    if cur st = Token.COMMA then begin
      advance st;
      ignore (parse_expr st)
    end;
    eat st Token.RPAREN;
    eat st Token.SEMI;
    Sjoin h
  | Token.KW_LOCK ->
    advance st;
    eat st Token.LPAREN;
    let e = parse_expr st in
    eat st Token.RPAREN;
    eat st Token.SEMI;
    Slock e
  | Token.KW_BARRIER ->
    advance st;
    (if cur st = Token.LPAREN then begin
       advance st;
       if cur st <> Token.RPAREN then ignore (parse_args st);
       eat st Token.RPAREN
     end);
    eat st Token.SEMI;
    Sbarrier
  | Token.KW_UNLOCK ->
    advance st;
    eat st Token.LPAREN;
    let e = parse_expr st in
    eat st Token.RPAREN;
    eat st Token.SEMI;
    Sunlock e
  | _ ->
    let lhs = parse_expr st in
    if cur st = Token.ASSIGN then begin
      advance st;
      let rhs = parse_expr st in
      eat st Token.SEMI;
      Sassign (lhs, rhs)
    end
    else begin
      eat st Token.SEMI;
      Sexpr lhs
    end

and parse_block st =
  eat st Token.LBRACE;
  let stmts = ref [] in
  while cur st <> Token.RBRACE do
    stmts := parse_stmt st :: !stmts
  done;
  eat st Token.RBRACE;
  List.rev !stmts

(* Declarations -------------------------------------------------------------- *)

let parse_params st =
  eat st Token.LPAREN;
  if cur st = Token.RPAREN then begin
    advance st;
    []
  end
  else if cur st = Token.KW_VOID && fst st.toks.(st.pos + 1) = Token.RPAREN then begin
    advance st;
    advance st;
    []
  end
  else begin
    let rec go acc =
      let ty = parse_type st in
      let name = ident st in
      if cur st = Token.COMMA then begin
        advance st;
        go ((ty, name) :: acc)
      end
      else begin
        eat st Token.RPAREN;
        List.rev ((ty, name) :: acc)
      end
    in
    go []
  end

let parse_decl st =
  if cur st = Token.KW_STRUCT && fst st.toks.(st.pos + 2) = Token.LBRACE then begin
    advance st;
    let name = ident st in
    eat st Token.LBRACE;
    let fields = ref [] in
    while cur st <> Token.RBRACE do
      let ty = parse_type st in
      let fname = ident st in
      eat st Token.SEMI;
      fields := (ty, fname) :: !fields
    done;
    eat st Token.RBRACE;
    eat st Token.SEMI;
    Dstruct (name, List.rev !fields)
  end
  else begin
    let ty = parse_type st in
    let name = ident st in
    if cur st = Token.LPAREN then begin
      let params = parse_params st in
      let body = parse_block st in
      Dfun { fname = name; ret_ty = ty; params; body }
    end
    else begin
      let ty =
        if cur st = Token.LBRACKET then begin
          advance st;
          let n = match cur st with Token.INT n -> advance st; n | _ -> 0 in
          eat st Token.RBRACKET;
          Tarray (ty, n)
        end
        else ty
      in
      let init =
        if cur st = Token.ASSIGN then begin
          advance st;
          Some (parse_expr st)
        end
        else None
      in
      eat st Token.SEMI;
      Dglobal (ty, name, init)
    end
  end

let parse toks =
  let st = { toks = Array.of_list toks; pos = 0 } in
  let decls = ref [] in
  while cur st <> Token.EOF do
    decls := parse_decl st :: !decls
  done;
  List.rev !decls

let parse_string src = parse (Lexer.tokenize src)
