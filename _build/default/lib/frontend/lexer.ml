exception Error of string

let keywords =
  [
    ("int", Token.KW_INT);
    ("void", Token.KW_VOID);
    ("struct", Token.KW_STRUCT);
    ("lock_t", Token.KW_LOCK_T);
    ("pthread_mutex_t", Token.KW_LOCK_T);
    ("thread_t", Token.KW_THREAD_T);
    ("pthread_t", Token.KW_THREAD_T);
    ("if", Token.KW_IF);
    ("else", Token.KW_ELSE);
    ("while", Token.KW_WHILE);
    ("for", Token.KW_WHILE);
    (* lowered identically: nondeterministic loop *)
    ("return", Token.KW_RETURN);
    ("fork", Token.KW_FORK);
    ("pthread_create", Token.KW_FORK);
    ("join", Token.KW_JOIN);
    ("pthread_join", Token.KW_JOIN);
    ("lock", Token.KW_LOCK);
    ("pthread_mutex_lock", Token.KW_LOCK);
    ("unlock", Token.KW_UNLOCK);
    ("pthread_mutex_unlock", Token.KW_UNLOCK);
    ("malloc", Token.KW_MALLOC);
    ("null", Token.KW_NULL);
    ("NULL", Token.KW_NULL);
    ("nondet", Token.KW_NONDET);
    (* unstructured synchronisation the analysis does not model (paper
       §3.1): sound to treat as no-ops *)
    ("barrier", Token.KW_BARRIER);
    ("pthread_barrier_wait", Token.KW_BARRIER);
    ("signal", Token.KW_BARRIER);
    ("pthread_cond_signal", Token.KW_BARRIER);
    ("wait", Token.KW_BARRIER);
    ("pthread_cond_wait", Token.KW_BARRIER);
  ]

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let tokenize src =
  let n = String.length src in
  let pos = ref 0 in
  let line = ref 1 in
  let toks = ref [] in
  let emit t = toks := (t, !line) :: !toks in
  let peek k = if !pos + k < n then Some src.[!pos + k] else None in
  let fail msg = raise (Error (Printf.sprintf "line %d: %s" !line msg)) in
  while !pos < n do
    let c = src.[!pos] in
    if c = '\n' then begin
      incr line;
      incr pos
    end
    else if c = ' ' || c = '\t' || c = '\r' then incr pos
    else if c = '/' && peek 1 = Some '/' then begin
      while !pos < n && src.[!pos] <> '\n' do
        incr pos
      done
    end
    else if c = '/' && peek 1 = Some '*' then begin
      pos := !pos + 2;
      let closed = ref false in
      while (not !closed) && !pos < n do
        if src.[!pos] = '\n' then incr line;
        if src.[!pos] = '*' && peek 1 = Some '/' then begin
          closed := true;
          pos := !pos + 2
        end
        else incr pos
      done;
      if not !closed then fail "unterminated block comment"
    end
    else if is_ident_start c then begin
      let start = !pos in
      while !pos < n && is_ident_char src.[!pos] do
        incr pos
      done;
      let word = String.sub src start (!pos - start) in
      match List.assoc_opt word keywords with
      | Some kw -> emit kw
      | None -> emit (Token.IDENT word)
    end
    else if is_digit c then begin
      let start = !pos in
      while !pos < n && is_digit src.[!pos] do
        incr pos
      done;
      emit (Token.INT (int_of_string (String.sub src start (!pos - start))))
    end
    else begin
      let two tk = emit tk; pos := !pos + 2 in
      let one tk = emit tk; incr pos in
      match (c, peek 1) with
      | '-', Some '>' -> two Token.ARROW
      | '=', Some '=' -> two Token.EQ
      | '!', Some '=' -> two Token.NEQ
      | '<', Some '=' -> two Token.LE
      | '>', Some '=' -> two Token.GE
      | '&', Some '&' -> two Token.AMP (* && treated as a plain condition op *)
      | '*', _ -> one Token.STAR
      | '&', _ -> one Token.AMP
      | '.', _ -> one Token.DOT
      | ',', _ -> one Token.COMMA
      | ';', _ -> one Token.SEMI
      | '(', _ -> one Token.LPAREN
      | ')', _ -> one Token.RPAREN
      | '{', _ -> one Token.LBRACE
      | '}', _ -> one Token.RBRACE
      | '[', _ -> one Token.LBRACKET
      | ']', _ -> one Token.RBRACKET
      | '=', _ -> one Token.ASSIGN
      | '<', _ -> one Token.LT
      | '>', _ -> one Token.GT
      | '+', _ -> one Token.PLUS
      | '-', _ -> one Token.MINUS
      | _ -> fail (Printf.sprintf "unexpected character %C" c)
    end
  done;
  emit Token.EOF;
  List.rev !toks
