(** Tokens of the MiniC surface language. *)

type t =
  | IDENT of string
  | INT of int
  | KW_INT
  | KW_VOID
  | KW_STRUCT
  | KW_LOCK_T
  | KW_THREAD_T
  | KW_IF
  | KW_ELSE
  | KW_WHILE
  | KW_RETURN
  | KW_FORK
  | KW_JOIN
  | KW_LOCK
  | KW_UNLOCK
  | KW_MALLOC
  | KW_NULL
  | KW_NONDET
  | KW_BARRIER
  | STAR
  | AMP
  | ARROW
  | DOT
  | COMMA
  | SEMI
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | LBRACKET
  | RBRACKET
  | ASSIGN
  | EQ
  | NEQ
  | LT
  | GT
  | LE
  | GE
  | PLUS
  | MINUS
  | EOF

let to_string = function
  | IDENT s -> Printf.sprintf "identifier %S" s
  | INT n -> Printf.sprintf "integer %d" n
  | KW_INT -> "'int'"
  | KW_VOID -> "'void'"
  | KW_STRUCT -> "'struct'"
  | KW_LOCK_T -> "'lock_t'"
  | KW_THREAD_T -> "'thread_t'"
  | KW_IF -> "'if'"
  | KW_ELSE -> "'else'"
  | KW_WHILE -> "'while'"
  | KW_RETURN -> "'return'"
  | KW_FORK -> "'fork'"
  | KW_JOIN -> "'join'"
  | KW_LOCK -> "'lock'"
  | KW_UNLOCK -> "'unlock'"
  | KW_MALLOC -> "'malloc'"
  | KW_NULL -> "'null'"
  | KW_NONDET -> "'nondet'"
  | KW_BARRIER -> "'barrier'"
  | STAR -> "'*'"
  | AMP -> "'&'"
  | ARROW -> "'->'"
  | DOT -> "'.'"
  | COMMA -> "','"
  | SEMI -> "';'"
  | LPAREN -> "'('"
  | RPAREN -> "')'"
  | LBRACE -> "'{'"
  | RBRACE -> "'}'"
  | LBRACKET -> "'['"
  | RBRACKET -> "']'"
  | ASSIGN -> "'='"
  | EQ -> "'=='"
  | NEQ -> "'!='"
  | LT -> "'<'"
  | GT -> "'>'"
  | LE -> "'<='"
  | GE -> "'>='"
  | PLUS -> "'+'"
  | MINUS -> "'-'"
  | EOF -> "end of input"
