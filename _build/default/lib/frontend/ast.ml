(** Abstract syntax of MiniC — a pointer-oriented C subset sufficient to
    express the paper's benchmark patterns: globals, structs, arrays, locks,
    thread handles, function pointers, fork/join/lock/unlock, branches and
    loops. Integer arithmetic is parsed but irrelevant to the analysis. *)

type ty =
  | Tint
  | Tvoid
  | Tptr of ty
  | Tstruct of string
  | Tlock
  | Tthread
  | Tarray of ty * int

type expr =
  | Eid of string
  | Eint of int
  | Enull
  | Enondet
  | Emalloc
  | Eaddr of expr  (** [&e] *)
  | Ederef of expr  (** [*e] *)
  | Efield of expr * string * bool  (** [e.f] ([false]) or [e->f] ([true]) *)
  | Eindex of expr * expr  (** [e\[i\]] *)
  | Ecall of expr * expr list  (** callee is a name or a function pointer *)
  | Ebinop of string * expr * expr

type stmt =
  | Sdecl of ty * string * expr option
  | Sassign of expr * expr
  | Sexpr of expr
  | Sif of expr * block * block
  | Swhile of expr * block
  | Sreturn of expr option
  | Sfork of expr option * expr * expr list
      (** [fork(&tid, target, args...)] — the handle is optional *)
  | Sjoin of expr
  | Slock of expr
  | Sunlock of expr
  | Sbarrier
      (** barriers / condition variables: not modelled by the analysis
          (paper §3.1) — lowered to a no-op, which is sound
          (over-approximate) *)

and block = stmt list

type fundef = {
  fname : string;
  ret_ty : ty;
  params : (ty * string) list;
  body : block;
}

type decl =
  | Dglobal of ty * string * expr option
  | Dstruct of string * (ty * string) list
  | Dfun of fundef

type program = decl list
