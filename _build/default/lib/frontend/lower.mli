(** Lowering of MiniC to the partial-SSA IR — the role LLVM + [mem2reg]
    plays for the paper (§2.1, §4.1).

    Globals, structs, arrays, locks and thread handles become abstract
    memory objects; locals whose address is never taken become top-level
    variables (the [mem2reg] promotion); complex expressions decompose into
    the basic statement forms with fresh temporaries (paper Figure 3);
    global initializers run at the top of [main]; finally top-level
    variables are put into SSA with [Fsam_ir.Ssa.transform] and the
    structural nops of the lowering are removed with
    [Fsam_ir.Simplify.compact]. *)

exception Error of string

val lower : Ast.program -> Fsam_ir.Prog.t
val compile_string : string -> Fsam_ir.Prog.t
(** Parse + lower + SSA + validate. *)
