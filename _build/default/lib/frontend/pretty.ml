open Ast

let rec pp_ty ppf = function
  | Tint -> Format.pp_print_string ppf "int"
  | Tvoid -> Format.pp_print_string ppf "void"
  | Tptr t -> Format.fprintf ppf "%a*" pp_ty t
  | Tstruct s -> Format.fprintf ppf "struct %s" s
  | Tlock -> Format.pp_print_string ppf "lock_t"
  | Tthread -> Format.pp_print_string ppf "thread_t"
  | Tarray (t, _) -> pp_ty ppf t (* the suffix is printed at the declarator *)

let array_suffix = function Tarray (_, n) -> Printf.sprintf "[%d]" n | _ -> ""

let rec pp_expr ppf = function
  | Eid s -> Format.pp_print_string ppf s
  | Eint n -> Format.pp_print_int ppf n
  | Enull -> Format.pp_print_string ppf "null"
  | Enondet -> Format.pp_print_string ppf "nondet()"
  | Emalloc -> Format.pp_print_string ppf "malloc()"
  | Eaddr e -> Format.fprintf ppf "&%a" pp_atom e
  | Ederef e -> Format.fprintf ppf "*%a" pp_atom e
  | Efield (e, f, true) -> Format.fprintf ppf "%a->%s" pp_atom e f
  | Efield (e, f, false) -> Format.fprintf ppf "%a.%s" pp_atom e f
  | Eindex (e, i) -> Format.fprintf ppf "%a[%a]" pp_atom e pp_expr i
  | Ecall (f, args) ->
    Format.fprintf ppf "%a(%a)" pp_atom f
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ") pp_expr)
      args
  | Ebinop (op, a, b) ->
    let op = String.sub op 1 (String.length op - 2) in
    (* ops were stored as "'+'" token strings *)
    Format.fprintf ppf "%a %s %a" pp_atom a op pp_atom b

and pp_atom ppf e =
  (* postfix operators bind tighter than unary * and &, and binops bind
     loosest: parenthesize both when they appear as a sub-expression *)
  match e with
  | Ebinop _ | Ederef _ | Eaddr _ -> Format.fprintf ppf "(%a)" pp_expr e
  | _ -> pp_expr ppf e

let rec pp_stmt ppf = function
  | Sdecl (ty, name, init) -> (
    match init with
    | Some e -> Format.fprintf ppf "@[<h>%a %s%s = %a;@]" pp_ty ty name (array_suffix ty) pp_expr e
    | None -> Format.fprintf ppf "@[<h>%a %s%s;@]" pp_ty ty name (array_suffix ty))
  | Sassign (l, r) -> Format.fprintf ppf "@[<h>%a = %a;@]" pp_expr l pp_expr r
  | Sexpr e -> Format.fprintf ppf "@[<h>%a;@]" pp_expr e
  | Sif (c, t, e) ->
    Format.fprintf ppf "@[<v 2>if (%a) {@,%a@]@,}" pp_expr c pp_block t;
    if e <> [] then Format.fprintf ppf "@[<v 2> else {@,%a@]@,}" pp_block e
  | Swhile (c, b) -> Format.fprintf ppf "@[<v 2>while (%a) {@,%a@]@,}" pp_expr c pp_block b
  | Sreturn (Some e) -> Format.fprintf ppf "return %a;" pp_expr e
  | Sreturn None -> Format.pp_print_string ppf "return;"
  | Sfork (h, target, args) ->
    Format.fprintf ppf "fork(%a, %a%a);"
      (fun ppf -> function Some h -> pp_expr ppf h | None -> Format.pp_print_string ppf "null")
      h pp_expr target
      (fun ppf args ->
        List.iter (fun a -> Format.fprintf ppf ", %a" pp_expr a) args)
      args
  | Sjoin e -> Format.fprintf ppf "join(%a);" pp_expr e
  | Slock e -> Format.fprintf ppf "lock(%a);" pp_expr e
  | Sunlock e -> Format.fprintf ppf "unlock(%a);" pp_expr e
  | Sbarrier -> Format.pp_print_string ppf "barrier();"

and pp_block ppf b =
  Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_stmt ppf b

let pp_decl ppf = function
  | Dglobal (ty, name, init) -> (
    match init with
    | Some e -> Format.fprintf ppf "@[<h>%a %s%s = %a;@]" pp_ty ty name (array_suffix ty) pp_expr e
    | None -> Format.fprintf ppf "@[<h>%a %s%s;@]" pp_ty ty name (array_suffix ty))
  | Dstruct (name, fields) ->
    Format.fprintf ppf "@[<v 2>struct %s {@,%a@]@,};" name
      (Format.pp_print_list ~pp_sep:Format.pp_print_cut (fun ppf (ty, f) ->
           Format.fprintf ppf "%a %s;" pp_ty ty f))
      fields
  | Dfun f ->
    Format.fprintf ppf "@[<v 2>%a %s(%a) {@,%a@]@,}" pp_ty f.ret_ty f.fname
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
         (fun ppf (ty, p) -> Format.fprintf ppf "%a %s" pp_ty ty p))
      f.params pp_block f.body

let pp_program ppf p =
  Format.fprintf ppf "@[<v>%a@]@."
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf "@,@,") pp_decl)
    p

let to_string p = Format.asprintf "%a" pp_program p
