lib/interp/interp.ml: Array Fsam_dsa Fsam_ir Func Hashtbl List Memobj Option Prog Random Stmt
