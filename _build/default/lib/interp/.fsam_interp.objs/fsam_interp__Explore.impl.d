lib/interp/explore.ml: Fsam_ir Hashtbl Interp List
