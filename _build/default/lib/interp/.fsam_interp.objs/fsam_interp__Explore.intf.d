lib/interp/explore.mli: Fsam_ir Prog Stmt
