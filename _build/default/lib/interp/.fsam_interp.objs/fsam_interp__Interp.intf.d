lib/interp/interp.mli: Fsam_ir Prog Stmt
