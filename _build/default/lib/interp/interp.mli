open Fsam_ir

(** A concrete executor for the IR with a seeded, randomly interleaving
    thread scheduler. Its purpose is {e testing}: every points-to fact
    observable in any concrete execution must be included in the static
    analyses' results, so randomized runs provide an executable soundness
    oracle for FSAM and NonSparse.

    Semantics notes: branches are nondeterministic (matching the IR the
    analyses see); a [Phi] picks randomly among its defined sources; loads
    through null are null; stores through null are no-ops; each function
    activation allocates fresh instances of its stack objects; each
    execution of a heap [Addr_of] allocates a fresh heap instance; locks
    block (a deadlocked or too-long run simply stops at the step budget). *)

type observation = {
  obs_gid : int;  (** load/store statement *)
  obs_var : Stmt.var;  (** the top-level variable whose value was observed *)
  obs_obj : Stmt.obj;  (** abstract object of the concrete pointer value *)
}

type result = {
  steps : int;
  observations : observation list;
      (** every (variable, abstract object) fact that became true *)
  mem_facts : (Stmt.obj * Stmt.obj) list;
      (** (location object, target object) pairs observed in memory cells *)
}

val run : ?max_steps:int -> seed:int -> Prog.t -> result
(** Randomized schedule from the given seed. *)

val run_with : ?max_steps:int -> decide:(int -> int) -> Prog.t -> result
(** Run with an explicit decision source: whenever the execution faces a
    choice among [n] options (runnable thread, branch successor, phi
    source), [decide n] picks one. The exhaustive explorer
    ({!Explore}) scripts this to enumerate every schedule of small
    programs. *)
