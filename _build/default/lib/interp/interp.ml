open Fsam_ir

type loc = { l_obj : int; l_inst : int }
type value = VNull | VPtr of loc

type observation = { obs_gid : int; obs_var : Stmt.var; obs_obj : Stmt.obj }

type result = {
  steps : int;
  observations : observation list;
  mem_facts : (Stmt.obj * Stmt.obj) list;
}

type frame = {
  f_fid : int;
  f_act : int; (* activation id: instance tag for this frame's stack objects *)
  mutable f_pc : int;
  f_env : (Stmt.var, value) Hashtbl.t;
  f_ret_var : Stmt.var option; (* caller variable receiving our return *)
  f_resume : int list; (* caller successors to continue at after return *)
}

type status = Running | Finished | Wait_join of int | Wait_lock of loc

type thread = { rt_id : int; mutable stack : frame list; mutable status : status }

type state = {
  prog : Prog.t;
  decide : int -> int;
      (* decision source: given the number of options, return a choice index.
         A seeded RNG for randomized runs; a scripted prefix for the
         exhaustive explorer. *)
  mem : (loc, value) Hashtbl.t;
  locks : (loc, int) Hashtbl.t; (* held locks -> owner rt *)
  threads : thread Fsam_dsa.Vec.t;
  mutable act_counter : int;
  mutable heap_counter : int;
  mutable obs : observation list;
  mutable mem_facts : (Stmt.obj * Stmt.obj) list;
}

let getv fr v = Option.value ~default:VNull (Hashtbl.find_opt fr.f_env v)

let fresh_act st =
  st.act_counter <- st.act_counter + 1;
  st.act_counter

let new_frame st fid ?(ret_var = None) ?(resume = []) args =
  let f = Prog.func st.prog fid in
  let env = Hashtbl.create 8 in
  let rec bind ps vs =
    match (ps, vs) with
    | p :: ps, v :: vs ->
      Hashtbl.replace env p v;
      bind ps vs
    | _ -> ()
  in
  bind f.Func.params args;
  { f_fid = fid; f_act = fresh_act st; f_pc = 0; f_env = env; f_ret_var = ret_var; f_resume = resume }

let spawn st fid args =
  let rt_id = Fsam_dsa.Vec.length st.threads in
  let th = { rt_id; stack = []; status = Running } in
  ignore (Fsam_dsa.Vec.push st.threads th);
  th.stack <- [ new_frame st fid args ];
  rt_id

let record_def st gid v value =
  match value with
  | VPtr l -> st.obs <- { obs_gid = gid; obs_var = v; obs_obj = l.l_obj } :: st.obs
  | VNull -> ()

let setv st gid fr v value =
  Hashtbl.replace fr.f_env v value;
  record_def st gid v value

let write_mem st l v =
  Hashtbl.replace st.mem l v;
  match v with VPtr tgt -> st.mem_facts <- (l.l_obj, tgt.l_obj) :: st.mem_facts | VNull -> ()

let read_mem st l = Option.value ~default:VNull (Hashtbl.find_opt st.mem l)

let loc_of_addr st fr obj =
  let info = Prog.obj st.prog obj in
  match info.Memobj.kind with
  | Memobj.Stack _ -> { l_obj = obj; l_inst = fr.f_act }
  | Memobj.Global | Memobj.Func _ | Memobj.Field _ | Memobj.Thread _ ->
    { l_obj = obj; l_inst = 0 }
  | Memobj.Heap _ ->
    st.heap_counter <- st.heap_counter + 1;
    { l_obj = obj; l_inst = st.heap_counter }

let resolve_target st fr = function
  | Stmt.Direct fid -> Some fid
  | Stmt.Indirect v -> (
    match getv fr v with
    | VPtr l -> (
      match (Prog.obj st.prog l.l_obj).Memobj.kind with
      | Memobj.Func fid -> Some fid
      | _ -> None)
    | VNull -> None)

let choose st = function
  | [] -> None
  | [ x ] -> Some x
  | l -> Some (List.nth l (st.decide (List.length l)))

(* Execute one statement of [th]; returns false when the thread blocked and
   must retry the same statement later. *)
let step st th =
  match th.stack with
  | [] ->
    th.status <- Finished;
    true
  | fr :: rest -> (
    let f = Prog.func st.prog fr.f_fid in
    let i = fr.f_pc in
    let gid = Prog.gid st.prog ~fid:fr.f_fid ~idx:i in
    let advance () =
      match choose st f.Func.succ.(i) with
      | Some nxt -> fr.f_pc <- nxt
      | None ->
        (* fell off a non-return end; treat as return *)
        th.stack <- rest;
        th.status <- (if rest = [] then Finished else th.status)
    in
    let stmt = Func.stmt f i in
    match stmt with
    | Stmt.Addr_of { dst; obj } ->
      setv st gid fr dst (VPtr (loc_of_addr st fr obj));
      advance ();
      true
    | Stmt.Copy { dst; src } ->
      setv st gid fr dst (getv fr src);
      advance ();
      true
    | Stmt.Phi { dst; srcs } ->
      let defined = List.filter (fun s -> Hashtbl.mem fr.f_env s) srcs in
      (match choose st (if defined = [] then srcs else defined) with
      | Some s -> setv st gid fr dst (getv fr s)
      | None -> setv st gid fr dst VNull);
      advance ();
      true
    | Stmt.Gep { dst; src; field } ->
      (match getv fr src with
      | VPtr l ->
        let info = Prog.obj st.prog l.l_obj in
        if Memobj.is_function info || Memobj.is_thread info then setv st gid fr dst VNull
        else
          let fo = Prog.field_obj st.prog ~base:l.l_obj ~field in
          setv st gid fr dst (VPtr { l_obj = fo; l_inst = l.l_inst })
      | VNull -> setv st gid fr dst VNull);
      advance ();
      true
    | Stmt.Load { dst; src } ->
      (match getv fr src with
      | VPtr l -> setv st gid fr dst (read_mem st l)
      | VNull -> setv st gid fr dst VNull);
      advance ();
      true
    | Stmt.Store { dst; src } ->
      (match getv fr dst with
      | VPtr l -> write_mem st l (getv fr src)
      | VNull -> ());
      advance ();
      true
    | Stmt.Call { target; args; ret } ->
      (match resolve_target st fr target with
      | Some fid ->
        let argv = List.map (getv fr) args in
        let callee =
          new_frame st fid ~ret_var:ret ~resume:f.Func.succ.(i) argv
        in
        th.stack <- callee :: fr :: rest
      | None -> advance ());
      true
    | Stmt.Return v ->
      (match (fr.f_ret_var, v) with
      | Some rv, Some var -> (
        (* deliver into the caller frame *)
        match rest with
        | caller :: _ ->
          Hashtbl.replace caller.f_env rv (getv fr var);
          record_def st gid rv (getv fr var)
        | [] -> ())
      | _ -> ());
      (match rest with
      | caller :: _ -> (
        match choose st fr.f_resume with
        | Some nxt -> caller.f_pc <- nxt
        | None -> ())
      | [] -> ());
      th.stack <- rest;
      if rest = [] then th.status <- Finished;
      true
    | Stmt.Fork { handle; target; args; fork_id } ->
      (match resolve_target st fr target with
      | Some fid ->
        let argv = List.map (getv fr) args in
        let rt = spawn st fid argv in
        let tobj = Prog.thread_obj_of_fork st.prog fork_id in
        (match handle with
        | Some h -> (
          match getv fr h with
          | VPtr cell -> write_mem st cell (VPtr { l_obj = tobj; l_inst = rt })
          | VNull -> ())
        | None -> ())
      | None -> ());
      advance ();
      true
    | Stmt.Join { handle } -> (
      match getv fr handle with
      | VPtr cell -> (
        match read_mem st cell with
        | VPtr l when Memobj.is_thread (Prog.obj st.prog l.l_obj) ->
          let target = Fsam_dsa.Vec.get st.threads l.l_inst in
          if target.status = Finished then begin
            advance ();
            true
          end
          else begin
            th.status <- Wait_join l.l_inst;
            false
          end
        | _ ->
          advance ();
          true)
      | VNull ->
        advance ();
        true)
    | Stmt.Lock l -> (
      match getv fr l with
      | VPtr cell -> (
        match Hashtbl.find_opt st.locks cell with
        | Some owner when owner <> th.rt_id ->
          th.status <- Wait_lock cell;
          false
        | Some _ ->
          (* already held by us: pthread mutexes would deadlock; model as
             no-op re-acquisition to keep random programs running *)
          advance ();
          true
        | None ->
          Hashtbl.replace st.locks cell th.rt_id;
          advance ();
          true)
      | VNull ->
        advance ();
        true)
    | Stmt.Unlock l ->
      (match getv fr l with
      | VPtr cell -> (
        match Hashtbl.find_opt st.locks cell with
        | Some owner when owner = th.rt_id -> Hashtbl.remove st.locks cell
        | _ -> ())
      | VNull -> ());
      advance ();
      true
    | Stmt.Nop _ ->
      advance ();
      true)

let runnable st th =
  match th.status with
  | Running -> true
  | Finished -> false
  | Wait_join rt ->
    if (Fsam_dsa.Vec.get st.threads rt).status = Finished then begin
      th.status <- Running;
      true
    end
    else false
  | Wait_lock cell ->
    if not (Hashtbl.mem st.locks cell) then begin
      th.status <- Running;
      true
    end
    else false

let run_with ?(max_steps = 20_000) ~decide prog =
  let st =
    {
      prog;
      decide;
      mem = Hashtbl.create 64;
      locks = Hashtbl.create 8;
      threads = Fsam_dsa.Vec.create ();
      act_counter = 0;
      heap_counter = 0;
      obs = [];
      mem_facts = [];
    }
  in
  ignore (spawn st (Prog.main_fid prog) []);
  let steps = ref 0 in
  let continue = ref true in
  while !continue && !steps < max_steps do
    let candidates = ref [] in
    Fsam_dsa.Vec.iter (fun th -> if runnable st th then candidates := th :: !candidates) st.threads;
    match choose st !candidates with
    | None -> continue := false
    | Some th ->
      incr steps;
      ignore (step st th)
  done;
  { steps = !steps; observations = st.obs; mem_facts = st.mem_facts }

let run ?max_steps ~seed prog =
  let rng = Random.State.make [| seed; 0x5eed |] in
  run_with ?max_steps ~decide:(fun n -> Random.State.int rng n) prog
