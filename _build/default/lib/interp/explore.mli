open Fsam_ir

(** Bounded exhaustive exploration of a program's nondeterminism: every
    scheduler, branch and phi decision is enumerated (depth-first over
    decision prefixes), giving the {e complete} set of observable points-to
    facts for small programs — a stronger soundness oracle than randomized
    runs, and an exact lower bound for precision measurements (any fact in a
    static result but absent from an exhaustive exploration of {e all}
    behaviours is over-approximation). *)

type result = {
  runs : int;  (** number of complete executions explored *)
  exhausted : bool;  (** false when [max_runs] stopped the search early *)
  var_facts : (Stmt.var * Stmt.obj) list;  (** all observed top-level facts *)
  mem_facts : (Stmt.obj * Stmt.obj) list;
}

val explore : ?max_steps:int -> ?max_runs:int -> Prog.t -> result
(** Default bounds: 2000 steps per run, 20000 runs. *)
