(** Abstract memory objects — the set [A] of address-taken locations of the
    paper's partial SSA form (§2.1): every stack or global variable whose
    address is taken, every heap allocation site, every function (for
    function pointers), plus analysis-materialised field objects
    (field-sensitivity, §4.2) and abstract thread objects (one per fork
    site, used to resolve joins through thread handles). *)

type kind =
  | Stack of int  (** address-taken local; payload = owning function id *)
  | Global
  | Heap of int  (** heap allocation site; payload = allocating function id *)
  | Func of int  (** function object for indirect calls; payload = function id *)
  | Field of { base : int; field : string }
      (** field of another object; distinct object per (base, field) *)
  | Thread of int  (** abstract thread object; payload = fork id *)

type t = {
  id : int;
  name : string;
  kind : kind;
  is_array : bool;
      (** arrays are monolithic (paper §4.2) and never strongly updated *)
}

val is_heap : t -> bool
val is_function : t -> bool
val is_thread : t -> bool
val base_of : t -> int
(** For a field object, its base object id; otherwise its own id. *)

val pp : Format.formatter -> t -> unit
