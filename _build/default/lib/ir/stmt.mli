(** The statement universe of the paper's partial SSA form (§2.1) plus the
    interprocedural and concurrency statements FSAM analyses.

    Variables are integer ids into the program's top-level variable table
    ([T] in the paper); objects are ids into the object table ([A]). *)

type var = int
type obj = int
type fid = int

type call_target =
  | Direct of fid
  | Indirect of var  (** callee(s) = function objects in the pointer's points-to set *)

type t =
  | Addr_of of { dst : var; obj : obj }  (** [p = &a], also models [malloc] *)
  | Copy of { dst : var; src : var }  (** [p = q] *)
  | Phi of { dst : var; srcs : var list }  (** [p = φ(q, r, …)] *)
  | Load of { dst : var; src : var }  (** [p = *q] *)
  | Store of { dst : var; src : var }  (** [*p = q] *)
  | Gep of { dst : var; src : var; field : string }
      (** [p = &q->f] — field-sensitive address arithmetic *)
  | Call of { target : call_target; args : var list; ret : var option }
  | Return of var option
  | Fork of { handle : var option; target : call_target; args : var list; fork_id : int }
      (** [pthread_create(handle, …, target, args)]; writes the abstract
          thread object for [fork_id] into every cell the handle pointer
          may point to *)
  | Join of { handle : var }
      (** [pthread_join] — joins the abstract threads stored in the cells
          [handle] may point to *)
  | Lock of var  (** [pthread_mutex_lock(l)] on the lock object(s) [*l] *)
  | Unlock of var
  | Nop of string  (** structural no-op (labels, branch points) *)

val def : t -> var option
(** The top-level variable defined, if any. *)

val uses : t -> var list
(** The top-level variables used. *)

val is_branch_point : t -> bool
val pp : names:(var -> string) -> obj_names:(obj -> string) -> fn_names:(fid -> string) ->
  Format.formatter -> t -> unit
