open Fsam_dsa

type fdecl = {
  fid : int;
  fname : string;
  param_vars : Stmt.var list;
  mutable body : body option;
}

and body = {
  stmts : Stmt.t Vec.t;
  fall : bool Vec.t; (* fall.(i): control continues from i to i+1 *)
  label_pos : int option Vec.t;
  pending : (int * int) Vec.t; (* (stmt index, label id) edges *)
}

type t = {
  vars : string Vec.t;
  objs : Memobj.t Vec.t;
  funcs : fdecl Vec.t;
  mutable fork_count : int;
  fork_sites : (int * int) Vec.t;
  thread_objs : int Vec.t;
  func_obj_cache : (int, int) Hashtbl.t;
}

type fb = { b : t; fid : int; body : body }
type label = int

let create () =
  {
    vars = Vec.create ();
    objs = Vec.create ();
    funcs = Vec.create ();
    fork_count = 0;
    fork_sites = Vec.create ();
    thread_objs = Vec.create ();
    func_obj_cache = Hashtbl.create 16;
  }

let fresh_var b name = Vec.push b.vars name

let declare b fname ~params =
  let fid = Vec.length b.funcs in
  let param_vars =
    List.map (fun p -> fresh_var b (Printf.sprintf "%s::%s" fname p)) params
  in
  ignore (Vec.push b.funcs { fid; fname; param_vars; body = None });
  fid

let param b fid i = List.nth (Vec.get b.funcs fid).param_vars i
let params b fid = (Vec.get b.funcs fid).param_vars

let add_obj b info = Vec.push b.objs info

let stack_obj b ~owner name =
  let id = Vec.length b.objs in
  add_obj b Memobj.{ id; name; kind = Stack owner; is_array = false }

let global_obj ?(is_array = false) b name =
  let id = Vec.length b.objs in
  add_obj b Memobj.{ id; name; kind = Global; is_array }

let heap_obj b ~owner name =
  let id = Vec.length b.objs in
  add_obj b Memobj.{ id; name; kind = Heap owner; is_array = false }

let func_obj b fid =
  match Hashtbl.find_opt b.func_obj_cache fid with
  | Some o -> o
  | None ->
    let id = Vec.length b.objs in
    let name = (Vec.get b.funcs fid).fname in
    let o = add_obj b Memobj.{ id; name = "&" ^ name; kind = Func fid; is_array = false } in
    Hashtbl.replace b.func_obj_cache fid o;
    o

(* Body construction ------------------------------------------------------ *)

let append fb ?(fall = true) s =
  let i = Vec.push fb.body.stmts s in
  ignore (Vec.push fb.body.fall fall);
  i

let addr_of fb dst obj = ignore (append fb (Stmt.Addr_of { dst; obj }))
let copy fb dst src = ignore (append fb (Stmt.Copy { dst; src }))
let phi fb dst srcs = ignore (append fb (Stmt.Phi { dst; srcs }))
let load fb dst src = ignore (append fb (Stmt.Load { dst; src }))
let store fb dst src = ignore (append fb (Stmt.Store { dst; src }))
let gep fb dst src field = ignore (append fb (Stmt.Gep { dst; src; field }))
let call fb ?ret target args = ignore (append fb (Stmt.Call { target; args; ret }))
let ret fb v = ignore (append fb ~fall:false (Stmt.Return v))

let fork fb ?handle target args =
  let fork_id = fb.b.fork_count in
  fb.b.fork_count <- fork_id + 1;
  let idx = append fb (Stmt.Fork { handle; target; args; fork_id }) in
  ignore (Vec.push fb.b.fork_sites (fb.fid, idx));
  let oid = Vec.length fb.b.objs in
  let info =
    Memobj.
      {
        id = oid;
        name = Printf.sprintf "thread#%d" fork_id;
        kind = Thread fork_id;
        is_array = false;
      }
  in
  ignore (add_obj fb.b info);
  ignore (Vec.push fb.b.thread_objs oid)

let join fb handle = ignore (append fb (Stmt.Join { handle }))
let lock fb v = ignore (append fb (Stmt.Lock v))
let unlock fb v = ignore (append fb (Stmt.Unlock v))
let nop fb msg = ignore (append fb (Stmt.Nop msg))

let new_label fb = Vec.push fb.body.label_pos None

let place fb l =
  match Vec.get fb.body.label_pos l with
  | Some _ -> invalid_arg "Builder.place: label already placed"
  | None -> Vec.set fb.body.label_pos l (Some (Vec.length fb.body.stmts))

let goto fb l =
  let i = append fb ~fall:false (Stmt.Nop "goto") in
  ignore (Vec.push fb.body.pending (i, l))

let branch fb l =
  let i = append fb (Stmt.Nop "branch") in
  ignore (Vec.push fb.body.pending (i, l))

let if_ fb ~then_ ~else_ =
  let l_else = new_label fb and l_end = new_label fb in
  branch fb l_else;
  then_ fb;
  goto fb l_end;
  place fb l_else;
  else_ fb;
  place fb l_end;
  nop fb "endif"

let while_ fb body =
  let l_head = new_label fb and l_end = new_label fb in
  place fb l_head;
  branch fb l_end;
  body fb;
  goto fb l_head;
  place fb l_end;
  nop fb "endwhile"

let define b fid f =
  let decl = Vec.get b.funcs fid in
  if decl.body <> None then invalid_arg ("Builder.define: " ^ decl.fname ^ " already defined");
  let body =
    {
      stmts = Vec.create ();
      fall = Vec.create ();
      label_pos = Vec.create ();
      pending = Vec.create ();
    }
  in
  decl.body <- Some body;
  f { b; fid; body }

(* Freezing --------------------------------------------------------------- *)

let freeze_func (decl : fdecl) =
  let body =
    match decl.body with
    | Some body -> body
    | None -> invalid_arg ("Builder.finish: function " ^ decl.fname ^ " not defined")
  in
  let n = Vec.length body.stmts in
  let labels_at_end =
    let at_end = ref false in
    Vec.iteri
      (fun _ pos ->
        match pos with
        | Some p when p >= n -> at_end := true
        | Some _ -> ()
        | None -> invalid_arg ("Builder.finish: unplaced label in " ^ decl.fname))
      body.label_pos;
    !at_end
  in
  let falls_off = n = 0 || Vec.get body.fall (n - 1) in
  let need_final = falls_off || labels_at_end in
  if need_final then begin
    ignore (Vec.push body.stmts (Stmt.Return None));
    ignore (Vec.push body.fall false)
  end;
  let n = Vec.length body.stmts in
  let succ = Array.make n [] in
  for i = 0 to n - 2 do
    if Vec.get body.fall i then succ.(i) <- [ i + 1 ]
  done;
  Vec.iter
    (fun (i, l) ->
      match Vec.get body.label_pos l with
      | Some tgt ->
        let tgt = if tgt >= n then n - 1 else tgt in
        if not (List.mem tgt succ.(i)) then succ.(i) <- succ.(i) @ [ tgt ]
      | None -> assert false)
    body.pending;
  let pred = Array.make n [] in
  Array.iteri (fun i ss -> List.iter (fun j -> pred.(j) <- i :: pred.(j)) ss) succ;
  let exits = ref [] in
  Vec.iteri
    (fun i s -> match s with Stmt.Return _ -> exits := i :: !exits | _ -> ())
    body.stmts;
  Func.
    {
      fid = decl.fid;
      fname = decl.fname;
      params = decl.param_vars;
      stmts = Vec.to_array body.stmts;
      succ;
      pred;
      exits = List.rev !exits;
    }

let finish b =
  let funcs = Array.init (Vec.length b.funcs) (fun i -> freeze_func (Vec.get b.funcs i)) in
  let main =
    match Array.find_opt (fun f -> f.Func.fname = "main") funcs with
    | Some f -> f.Func.fid
    | None -> invalid_arg "Builder.finish: no main function"
  in
  Prog.make ~funcs
    ~var_names:(Vec.to_array b.vars)
    ~objs:(Vec.to_list b.objs)
    ~fork_sites:(Vec.to_array b.fork_sites)
    ~thread_objs:(Vec.to_array b.thread_objs)
    ~main
