let check ?(ssa = true) p =
  let errs = ref [] in
  let err fmt = Format.kasprintf (fun s -> errs := s :: !errs) fmt in
  let n_vars = Prog.n_vars p and n_objs = Prog.n_objs p in
  let def_site = Hashtbl.create 256 in
  let var_func = Hashtbl.create 256 in
  let seen_forks = Hashtbl.create 16 in
  let check_var fname what v =
    if v < 0 || v >= n_vars then err "%s: %s variable id %d out of range" fname what v
  in
  Prog.iter_funcs p (fun f ->
      let fname = f.Func.fname in
      let n = Func.n_stmts f in
      if n = 0 then err "%s: empty function" fname;
      List.iter
        (fun pv ->
          check_var fname "param" pv;
          Hashtbl.replace var_func pv f.Func.fid)
        f.Func.params;
      (* successor ranges + fallthrough off the end *)
      Array.iteri
        (fun i succs ->
          List.iter
            (fun j -> if j < 0 || j >= n then err "%s: stmt %d successor %d out of range" fname i j)
            succs;
          match f.Func.stmts.(i) with
          | Stmt.Return _ ->
            if succs <> [] then err "%s: return at %d has successors" fname i
          | _ -> if succs = [] then err "%s: stmt %d falls off the end" fname i)
        f.Func.succ;
      (* reachability *)
      let g = Func.cfg f in
      let reach = Fsam_graph.Reach.from g (Func.entry f) in
      Func.iter_stmts f (fun i _ ->
          if not (Fsam_dsa.Bitvec.get reach i) then
            err "%s: stmt %d unreachable from entry" fname i);
      (* operands *)
      Func.iter_stmts f (fun i s ->
          List.iter
            (fun v ->
              check_var fname "used" v;
              match Hashtbl.find_opt var_func v with
              | Some f' when f' <> f.Func.fid && ssa ->
                err "%s: stmt %d uses variable %s belonging to %s" fname i
                  (Prog.var_name p v)
                  (Prog.func p f').Func.fname
              | _ -> Hashtbl.replace var_func v f.Func.fid)
            (Stmt.uses s);
          (match Stmt.def s with
          | Some d -> (
            check_var fname "defined" d;
            if ssa && List.mem d f.Func.params then
              err "%s: stmt %d redefines parameter %s" fname i (Prog.var_name p d);
            (match Hashtbl.find_opt var_func d with
            | Some f' when f' <> f.Func.fid && ssa ->
              err "%s: stmt %d defines variable of function %s" fname i
                (Prog.func p f').Func.fname
            | _ -> Hashtbl.replace var_func d f.Func.fid);
            match Hashtbl.find_opt def_site d with
            | Some _ when ssa ->
              err "%s: stmt %d violates SSA: second definition of %s" fname i
                (Prog.var_name p d)
            | _ -> Hashtbl.replace def_site d (f.Func.fid, i))
          | None -> ());
          match s with
          | Stmt.Addr_of { obj; _ } ->
            if obj < 0 || obj >= n_objs then err "%s: stmt %d object id %d out of range" fname i obj
          | Stmt.Call { target = Direct fid; _ }
          | Stmt.Fork { target = Direct fid; _ } ->
            if fid < 0 || fid >= Prog.n_funcs p then
              err "%s: stmt %d calls unknown function id %d" fname i fid
          | Stmt.Fork { fork_id; _ } -> (
            if Hashtbl.mem seen_forks fork_id then
              err "%s: duplicate fork id %d" fname fork_id
            else Hashtbl.replace seen_forks fork_id ();
            match Prog.fork_site p fork_id with
            | fid', idx' when fid' <> f.Func.fid || idx' <> i ->
              err "%s: fork id %d site table mismatch" fname fork_id
            | _ -> ()
            | exception _ -> err "%s: fork id %d missing from site table" fname fork_id)
          | _ -> ()));
  (match Prog.find_func p "main" with
  | None -> err "program has no main"
  | Some _ -> ());
  match !errs with [] -> Ok () | es -> Error (List.rev es)

let check_exn ?ssa p =
  match check ?ssa p with
  | Ok () -> ()
  | Error es -> invalid_arg ("Validate: " ^ String.concat "; " es)
