(** Partial-SSA construction for top-level variables (paper §2.1).

    The MiniC frontend produces IR in which a top-level variable may be
    assigned several times; the analyses require the partial-SSA property
    that "the uses of any top-level pointer have a unique definition, with φ
    functions inserted at confluence points". [transform] renames top-level
    variables into versions using pruned SSA over each function's
    statement-level CFG (dominance frontiers for φ placement, dominator-tree
    renaming). Address-taken variables are untouched — they are memory
    objects, versioned later by the memory-SSA phase.

    A variable used before any definition keeps its original id as the
    implicit entry version (its points-to set will be empty, i.e. null). *)

val transform : Prog.t -> Prog.t
