type var = int
type obj = int
type fid = int

type call_target = Direct of fid | Indirect of var

type t =
  | Addr_of of { dst : var; obj : obj }
  | Copy of { dst : var; src : var }
  | Phi of { dst : var; srcs : var list }
  | Load of { dst : var; src : var }
  | Store of { dst : var; src : var }
  | Gep of { dst : var; src : var; field : string }
  | Call of { target : call_target; args : var list; ret : var option }
  | Return of var option
  | Fork of { handle : var option; target : call_target; args : var list; fork_id : int }
  | Join of { handle : var }
  | Lock of var
  | Unlock of var
  | Nop of string

let def = function
  | Addr_of { dst; _ } | Copy { dst; _ } | Phi { dst; _ } | Load { dst; _ }
  | Gep { dst; _ } ->
    Some dst
  | Call { ret; _ } -> ret
  | Store _ | Return _ | Fork _ | Join _ | Lock _ | Unlock _ | Nop _ -> None

let target_uses = function Direct _ -> [] | Indirect v -> [ v ]

let uses = function
  | Addr_of _ -> []
  | Copy { src; _ } -> [ src ]
  | Phi { srcs; _ } -> srcs
  | Load { src; _ } -> [ src ]
  | Store { dst; src } -> [ dst; src ]
  | Gep { src; _ } -> [ src ]
  | Call { target; args; _ } -> target_uses target @ args
  | Return (Some v) -> [ v ]
  | Return None -> []
  | Fork { handle; target; args; _ } ->
    (match handle with Some h -> [ h ] | None -> []) @ target_uses target @ args
  | Join { handle } -> [ handle ]
  | Lock v | Unlock v -> [ v ]
  | Nop _ -> []

let is_branch_point = function Nop _ -> true | _ -> false

let pp ~names ~obj_names ~fn_names ppf s =
  let v = names in
  let tgt ppf = function
    | Direct f -> Format.pp_print_string ppf (fn_names f)
    | Indirect p -> Format.fprintf ppf "*%s" (v p)
  in
  let args ppf l =
    Format.pp_print_list
      ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
      (fun ppf a -> Format.pp_print_string ppf (v a))
      ppf l
  in
  match s with
  | Addr_of { dst; obj } -> Format.fprintf ppf "%s = &%s" (v dst) (obj_names obj)
  | Copy { dst; src } -> Format.fprintf ppf "%s = %s" (v dst) (v src)
  | Phi { dst; srcs } -> Format.fprintf ppf "%s = phi(%a)" (v dst) args srcs
  | Load { dst; src } -> Format.fprintf ppf "%s = *%s" (v dst) (v src)
  | Store { dst; src } -> Format.fprintf ppf "*%s = %s" (v dst) (v src)
  | Gep { dst; src; field } -> Format.fprintf ppf "%s = &%s->%s" (v dst) (v src) field
  | Call { target; args = a; ret } ->
    (match ret with
    | Some r -> Format.fprintf ppf "%s = %a(%a)" (v r) tgt target args a
    | None -> Format.fprintf ppf "%a(%a)" tgt target args a)
  | Return (Some r) -> Format.fprintf ppf "return %s" (v r)
  | Return None -> Format.fprintf ppf "return"
  | Fork { handle; target; args = a; fork_id } ->
    Format.fprintf ppf "fork#%d(%s%a, [%a])" fork_id
      (match handle with Some h -> v h ^ ", " | None -> "")
      tgt target args a
  | Join { handle } -> Format.fprintf ppf "join(%s)" (v handle)
  | Lock l -> Format.fprintf ppf "lock(%s)" (v l)
  | Unlock l -> Format.fprintf ppf "unlock(%s)" (v l)
  | Nop msg -> Format.fprintf ppf "nop(%s)" msg
