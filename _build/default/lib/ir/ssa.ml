open Fsam_dsa
open Fsam_graph

(* Per-function SSA state. *)
type state = {
  var_names : string Vec.t; (* shared across functions; grows *)
  mutable stacks : Stmt.var list array; (* current version per original var *)
}

let fresh st v =
  let name = Vec.get st.var_names v in
  let nv = Vec.push st.var_names (Printf.sprintf "%s#%d" name (Vec.length st.var_names)) in
  nv

(* Is [v] live-in at node [n]: some use of [v] reachable from [n] without
   first crossing a definition of [v]? Computed by forward search from [n]
   that stops at defs. *)
let live_in f ~uses_of ~defs_of n =
  let nstmts = Func.n_stmts f in
  let seen = Bitvec.create ~capacity:nstmts () in
  let stack = ref [ n ] in
  Bitvec.set seen n;
  let live = ref false in
  while (not !live) && !stack <> [] do
    match !stack with
    | [] -> ()
    | m :: tl ->
      stack := tl;
      if Bitvec.get uses_of m then live := true
      else if not (Bitvec.get defs_of m) then
        List.iter
          (fun s -> if Bitvec.set_if_unset seen s then stack := s :: !stack)
          f.Func.succ.(m)
  done;
  !live

let transform_func st (f : Func.t) =
  let n = Func.n_stmts f in
  let g = Func.cfg f in
  let dom = Dominance.compute g ~entry:(Func.entry f) in
  (* Collect def sites per original var. *)
  let defs : (Stmt.var, int list) Hashtbl.t = Hashtbl.create 16 in
  let mentioned = Hashtbl.create 16 in
  Func.iter_stmts f (fun i s ->
      (match Stmt.def s with
      | Some d ->
        Hashtbl.replace defs d (i :: (Option.value ~default:[] (Hashtbl.find_opt defs d)));
        Hashtbl.replace mentioned d ()
      | None -> ());
      List.iter (fun u -> Hashtbl.replace mentioned u ()) (Stmt.uses s));
  (* Phi placement: iterated dominance frontier of def sites (plus entry as
     the implicit initial def), pruned by liveness. phis.(node) = orig vars *)
  let phis : Stmt.var list array = Array.make n [] in
  Hashtbl.iter
    (fun v sites ->
      if sites <> [] then begin
        let uses_of = Bitvec.create ~capacity:n () in
        let defs_of = Bitvec.create ~capacity:n () in
        Func.iter_stmts f (fun i s ->
            if List.mem v (Stmt.uses s) then begin
              Bitvec.set uses_of i;
              (* a use at i sees the version *before* i executes, so search
                 from i itself must treat i as a use point even if i also
                 defines v; handled because we test uses before defs. *)
              ()
            end;
            match Stmt.def s with Some d when d = v -> Bitvec.set defs_of i | _ -> ());
        let work = ref (Func.entry f :: sites) in
        let has_phi = Bitvec.create ~capacity:n () in
        let in_work = Bitvec.create ~capacity:n () in
        List.iter (fun s -> Bitvec.set in_work s) !work;
        while !work <> [] do
          match !work with
          | [] -> ()
          | d :: tl ->
            work := tl;
            List.iter
              (fun y ->
                if Dominance.reachable dom y && not (Bitvec.get has_phi y) then begin
                  if live_in f ~uses_of ~defs_of y then begin
                    Bitvec.set has_phi y;
                    phis.(y) <- v :: phis.(y);
                    if Bitvec.set_if_unset in_work y then work := y :: !work
                  end
                end)
              (Dominance.frontier dom d)
        done
      end)
    defs;
  (* Renaming over the dominator tree. For each node we produce the renamed
     phi definitions (dst, collected srcs ref) and the renamed statement. *)
  let phi_out : (Stmt.var * Stmt.var * Iset.t ref) list array = Array.make n [] in
  (* (orig var, new dst, arg set of new srcs) *)
  let new_stmt : Stmt.t array = Array.map (fun s -> s) f.Func.stmts in
  let top v = match st.stacks.(v) with x :: _ -> x | [] -> v in
  let rename_uses s =
    let r = top in
    match s with
    | Stmt.Addr_of _ -> s
    | Stmt.Copy c -> Stmt.Copy { c with src = r c.src }
    | Stmt.Phi ph -> Stmt.Phi { ph with srcs = List.map r ph.srcs }
    | Stmt.Load l -> Stmt.Load { l with src = r l.src }
    | Stmt.Store { dst; src } -> Stmt.Store { dst = r dst; src = r src }
    | Stmt.Gep gp -> Stmt.Gep { gp with src = r gp.src }
    | Stmt.Call c ->
      let target = match c.target with Stmt.Indirect v -> Stmt.Indirect (r v) | d -> d in
      Stmt.Call { c with target; args = List.map r c.args }
    | Stmt.Return (Some v) -> Stmt.Return (Some (r v))
    | Stmt.Return None -> s
    | Stmt.Fork fk ->
      let target = match fk.target with Stmt.Indirect v -> Stmt.Indirect (r v) | d -> d in
      Stmt.Fork
        { fk with target; args = List.map r fk.args; handle = Option.map r fk.handle }
    | Stmt.Join { handle } -> Stmt.Join { handle = r handle }
    | Stmt.Lock v -> Stmt.Lock (r v)
    | Stmt.Unlock v -> Stmt.Unlock (r v)
    | Stmt.Nop _ -> s
  in
  let rename_def s nv =
    match s with
    | Stmt.Addr_of a -> Stmt.Addr_of { a with dst = nv }
    | Stmt.Copy c -> Stmt.Copy { c with dst = nv }
    | Stmt.Phi ph -> Stmt.Phi { ph with dst = nv }
    | Stmt.Load l -> Stmt.Load { l with dst = nv }
    | Stmt.Gep gp -> Stmt.Gep { gp with dst = nv }
    | Stmt.Call c -> Stmt.Call { c with ret = Some nv }
    | _ -> s
  in
  (* Phi destination versions are created in a pre-pass so that renaming can
     feed arguments into the phis of not-yet-visited successors (back
     edges). *)
  Array.iteri
    (fun node vs ->
      phi_out.(node) <- List.map (fun v -> (v, fresh st v, ref Iset.empty)) vs)
    phis;
  let rec walk node =
    let pushed = ref [] in
    List.iter
      (fun (v, nv, _) ->
        st.stacks.(v) <- nv :: st.stacks.(v);
        pushed := v :: !pushed)
      phi_out.(node);
    let s = rename_uses new_stmt.(node) in
    let s =
      match Stmt.def s with
      | Some d ->
        let nv = fresh st d in
        st.stacks.(d) <- nv :: st.stacks.(d);
        pushed := d :: !pushed;
        rename_def s nv
      | None -> s
    in
    new_stmt.(node) <- s;
    List.iter
      (fun succ ->
        List.iter (fun (v, _, srcs) -> srcs := Iset.add (top v) !srcs) phi_out.(succ))
      f.Func.succ.(node);
    List.iter walk (Dominance.children dom node);
    List.iter
      (fun v -> st.stacks.(v) <- (match st.stacks.(v) with _ :: tl -> tl | [] -> []))
      (List.rev !pushed)
  in
  (* A phi at the entry node merges back-edge versions with the implicit
     entry version (the original variable, defined-as-null at entry). *)
  List.iter
    (fun (v, _, srcs) -> srcs := Iset.add v !srcs)
    phi_out.(Func.entry f);
  walk (Func.entry f);
  (* Materialise: phi statements precede their node. *)
  let new_index = Array.make n (-1) in
  let count = ref 0 in
  for i = 0 to n - 1 do
    count := !count + List.length phi_out.(i);
    new_index.(i) <- !count;
    incr count
  done;
  let total = !count in
  let stmts = Array.make total (Stmt.Nop "") in
  let succ = Array.make total [] in
  for i = 0 to n - 1 do
    let base = new_index.(i) - List.length phi_out.(i) in
    List.iteri
      (fun k (_, nv, srcs) ->
        stmts.(base + k) <- Stmt.Phi { dst = nv; srcs = Iset.elements !srcs };
        succ.(base + k) <- [ base + k + 1 ])
      phi_out.(i);
    stmts.(new_index.(i)) <- new_stmt.(i);
    succ.(new_index.(i)) <-
      List.map
        (fun s -> new_index.(s) - List.length phi_out.(s))
        f.Func.succ.(i)
  done;
  let pred = Array.make total [] in
  Array.iteri (fun i ss -> List.iter (fun j -> pred.(j) <- i :: pred.(j)) ss) succ;
  let exits = ref [] in
  Array.iteri (fun i s -> match s with Stmt.Return _ -> exits := i :: !exits | _ -> ()) stmts;
  Func.
    {
      fid = f.Func.fid;
      fname = f.Func.fname;
      params = f.Func.params;
      stmts;
      succ;
      pred;
      exits = List.rev !exits;
    }

let transform p =
  let var_names = Vec.create () in
  for v = 0 to Prog.n_vars p - 1 do
    ignore (Vec.push var_names (Prog.var_name p v))
  done;
  let st = { var_names; stacks = [||] } in
  let funcs =
    Array.init (Prog.n_funcs p) (fun i ->
        (* reset stacks sized to the current variable count; versions created
           for earlier functions are never on a stack here *)
        (* stacks are indexed by original variable ids only; versions created
           for earlier functions never appear on a stack here *)
        st.stacks <- Array.make (Vec.length st.var_names + 1) [];
        transform_func st (Prog.func p i))
  in
  (* Rebuild fork-site table from the renamed functions. *)
  let n_forks = Prog.n_forks p in
  let fork_sites = Array.make n_forks (0, 0) in
  Array.iter
    (fun f ->
      Func.iter_stmts f (fun i s ->
          match s with
          | Stmt.Fork { fork_id; _ } -> fork_sites.(fork_id) <- (f.Func.fid, i)
          | _ -> ()))
    funcs;
  let thread_objs = Array.init n_forks (fun k -> Prog.thread_obj_of_fork p k) in
  let objs = ref [] in
  Prog.iter_objs p (fun o -> objs := o :: !objs);
  Prog.make ~funcs
    ~var_names:(Vec.to_array st.var_names)
    ~objs:(List.rev !objs) ~fork_sites ~thread_objs ~main:(Prog.main_fid p)
