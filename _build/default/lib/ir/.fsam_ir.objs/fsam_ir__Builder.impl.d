lib/ir/builder.ml: Array Fsam_dsa Func Hashtbl List Memobj Printf Prog Stmt Vec
