lib/ir/validate.ml: Array Format Fsam_dsa Fsam_graph Func Hashtbl List Prog Stmt String
