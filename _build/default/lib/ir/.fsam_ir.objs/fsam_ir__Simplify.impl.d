lib/ir/simplify.ml: Array Func List Prog Stmt
