lib/ir/simplify.mli: Prog
