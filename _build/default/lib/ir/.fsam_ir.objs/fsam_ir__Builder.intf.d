lib/ir/builder.mli: Prog Stmt
