lib/ir/stmt.ml: Format
