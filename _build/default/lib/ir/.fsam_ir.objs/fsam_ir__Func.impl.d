lib/ir/func.ml: Array Fsam_graph List Stmt
