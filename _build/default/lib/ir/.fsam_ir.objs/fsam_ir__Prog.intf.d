lib/ir/prog.mli: Format Func Memobj Stmt
