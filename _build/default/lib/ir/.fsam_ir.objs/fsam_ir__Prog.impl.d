lib/ir/prog.ml: Array Format Fsam_dsa Func Hashtbl List Memobj Printf Stmt String Vec
