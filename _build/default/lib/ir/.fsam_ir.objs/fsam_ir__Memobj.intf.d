lib/ir/memobj.mli: Format
