lib/ir/stmt.mli: Format
