lib/ir/memobj.ml: Format
