lib/ir/func.mli: Fsam_graph Stmt
