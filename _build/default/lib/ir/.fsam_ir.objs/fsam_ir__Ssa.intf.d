lib/ir/ssa.mli: Prog
