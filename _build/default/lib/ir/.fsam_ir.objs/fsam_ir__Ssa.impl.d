lib/ir/ssa.ml: Array Bitvec Dominance Fsam_dsa Fsam_graph Func Hashtbl Iset List Option Printf Prog Stmt Vec
