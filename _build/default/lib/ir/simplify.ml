let compact_func (f : Func.t) =
  let n = Func.n_stmts f in
  (* A nop is removable when it has exactly one successor, is not the entry,
     and is not a self-loop. [resolve] follows removable chains (cycle-safe:
     a removable node is only skipped once per resolution walk). *)
  let removable i =
    i <> Func.entry f
    &&
    match (Func.stmt f i, f.Func.succ.(i)) with
    | Stmt.Nop _, [ s ] -> s <> i
    | _ -> false
  in
  let memo = Array.make n (-1) in
  let rec resolve i =
    if memo.(i) >= 0 then memo.(i)
    else if not (removable i) then begin
      memo.(i) <- i;
      i
    end
    else begin
      (* cycle guard: a pure nop cycle resolves to its first member *)
      memo.(i) <- i;
      let r = match f.Func.succ.(i) with [ s ] -> resolve s | _ -> i in
      memo.(i) <- r;
      r
    end
  in
  (* keep = statements that survive *)
  let keep = Array.init n (fun i -> not (removable i)) in
  (* a removable chain forming a cycle with no non-removable member would be
     dropped entirely; resolve returns a member in that case — keep it *)
  for i = 0 to n - 1 do
    if not keep.(i) then begin
      let tgt = resolve i in
      if not keep.(tgt) then keep.(tgt) <- true
    end
  done;
  let new_index = Array.make n (-1) in
  let count = ref 0 in
  for i = 0 to n - 1 do
    if keep.(i) then begin
      new_index.(i) <- !count;
      incr count
    end
  done;
  let total = !count in
  let stmts = Array.make total (Stmt.Nop "") in
  let succ = Array.make total [] in
  for i = 0 to n - 1 do
    if keep.(i) then begin
      stmts.(new_index.(i)) <- Func.stmt f i;
      let targets =
        List.map (fun s -> new_index.(resolve s)) f.Func.succ.(i)
        |> List.sort_uniq compare
      in
      succ.(new_index.(i)) <- targets
    end
  done;
  let pred = Array.make total [] in
  Array.iteri (fun i ss -> List.iter (fun j -> pred.(j) <- i :: pred.(j)) ss) succ;
  let exits = ref [] in
  Array.iteri (fun i s -> match s with Stmt.Return _ -> exits := i :: !exits | _ -> ()) stmts;
  Func.
    {
      fid = f.Func.fid;
      fname = f.Func.fname;
      params = f.Func.params;
      stmts;
      succ;
      pred;
      exits = List.rev !exits;
    }

let compact p =
  let funcs = Array.init (Prog.n_funcs p) (fun i -> compact_func (Prog.func p i)) in
  let n_forks = Prog.n_forks p in
  let fork_sites = Array.make n_forks (0, 0) in
  Array.iter
    (fun f ->
      Func.iter_stmts f (fun i s ->
          match s with
          | Stmt.Fork { fork_id; _ } -> fork_sites.(fork_id) <- (f.Func.fid, i)
          | _ -> ()))
    funcs;
  let thread_objs = Array.init n_forks (fun k -> Prog.thread_obj_of_fork p k) in
  let objs = ref [] in
  Prog.iter_objs p (fun o -> objs := o :: !objs);
  let var_names = Array.init (Prog.n_vars p) (fun v -> Prog.var_name p v) in
  Prog.make ~funcs ~var_names ~objs:(List.rev !objs) ~fork_sites ~thread_objs
    ~main:(Prog.main_fid p)
