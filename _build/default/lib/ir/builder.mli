(** Programmatic construction of IR programs. Used by tests, examples and
    the workload generators; the MiniC frontend lowers onto it too.

    Typical use:
    {[
      let b = Builder.create () in
      let main = Builder.declare b "main" ~params:[] in
      let foo = Builder.declare b "foo" ~params:[ "p" ] in
      let x = Builder.stack_obj b ~owner:main "x" in
      Builder.define b main (fun fb ->
          let p = Builder.fresh_var b "p" in
          Builder.addr_of fb p x;
          ...);
      let prog = Builder.finish b
    ]} *)

type t
type fb
(** Function-body builder. *)

type label

val create : unit -> t

val declare : t -> string -> params:string list -> int
(** Declare a function; returns its id. Every declared function must be
    defined before [finish]. *)

val param : t -> int -> int -> Stmt.var
(** [param b fid i] — the variable bound to the [i]-th parameter. *)

val params : t -> int -> Stmt.var list
val fresh_var : t -> string -> Stmt.var

val stack_obj : t -> owner:int -> string -> Stmt.obj
val global_obj : ?is_array:bool -> t -> string -> Stmt.obj
val heap_obj : t -> owner:int -> string -> Stmt.obj
val func_obj : t -> int -> Stmt.obj
(** The function object for taking a function's address. *)

val define : t -> int -> (fb -> unit) -> unit
val finish : t -> Prog.t
(** Freezes the program. Appends a trailing [return] to any function whose
    last statement falls through. Raises [Invalid_argument] on undefined
    functions or unplaced labels. *)

(* Straight-line statements --------------------------------------------- *)

val addr_of : fb -> Stmt.var -> Stmt.obj -> unit
val copy : fb -> Stmt.var -> Stmt.var -> unit
val phi : fb -> Stmt.var -> Stmt.var list -> unit
val load : fb -> Stmt.var -> Stmt.var -> unit
val store : fb -> Stmt.var -> Stmt.var -> unit
val gep : fb -> Stmt.var -> Stmt.var -> string -> unit
val call : fb -> ?ret:Stmt.var -> Stmt.call_target -> Stmt.var list -> unit
val ret : fb -> Stmt.var option -> unit
val fork : fb -> ?handle:Stmt.var -> Stmt.call_target -> Stmt.var list -> unit
val join : fb -> Stmt.var -> unit
val lock : fb -> Stmt.var -> unit
val unlock : fb -> Stmt.var -> unit
val nop : fb -> string -> unit

(* Control flow ----------------------------------------------------------
   The CFG is built with labels. [branch] emits a Nop with two successors:
   the fall-through and the label (branch conditions are abstracted away —
   the analyses are path-insensitive and the interpreter is nondeterministic,
   matching the IR semantics). *)

val new_label : fb -> label
val place : fb -> label -> unit
val goto : fb -> label -> unit
val branch : fb -> label -> unit

(* Structured conveniences ------------------------------------------------ *)

val if_ : fb -> then_:(fb -> unit) -> else_:(fb -> unit) -> unit
val while_ : fb -> (fb -> unit) -> unit
(** A loop executing its body zero or more times. *)
