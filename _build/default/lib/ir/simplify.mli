(** CFG compaction: removes structural [Nop] statements (labels, gotos,
    end-of-block markers) whose only role is carrying a single control-flow
    edge, rewiring their predecessors directly to their successors. The
    frontend's structured lowering emits many of these; compaction typically
    shrinks its output by 15–30% and speeds up every later phase.

    Semantics-preserving: points-to results of all surviving statements are
    unchanged (checked by the property suite against both the analyses and
    the interpreter). Branch points (multi-successor nops), self-loops and
    function entries are kept. *)

val compact : Prog.t -> Prog.t
