(** Well-formedness checks on IR programs.

    [check ~ssa prog] verifies structural invariants: statement successors in
    range, statements reachable from function entries, operands within the
    variable/object tables, fork-site table consistency, and — when [ssa] is
    set — the partial-SSA property that every top-level variable has a single
    defining statement, located in the same function as all its uses
    (parameters are defined implicitly at entry). *)

val check : ?ssa:bool -> Prog.t -> (unit, string list) result
val check_exn : ?ssa:bool -> Prog.t -> unit
