type t = {
  fid : int;
  fname : string;
  params : Stmt.var list;
  stmts : Stmt.t array;
  succ : int list array;
  pred : int list array;
  exits : int list;
}

let entry _ = 0
let n_stmts f = Array.length f.stmts
let stmt f i = f.stmts.(i)

let iter_stmts f g = Array.iteri g f.stmts

let cfg f =
  let g = Fsam_graph.Digraph.create ~size_hint:(n_stmts f) () in
  Array.iteri
    (fun i succs ->
      Fsam_graph.Digraph.ensure_node g i;
      List.iter (fun j -> Fsam_graph.Digraph.add_edge g i j) succs)
    f.succ;
  g
