(** A function: parameters plus a statement-level control-flow graph, as in
    the paper's per-thread ICFGs (§3.1) — "a node s represents a program
    statement". Node ids are indices into [stmts]; [entry] is node 0. *)

type t = {
  fid : int;
  fname : string;
  params : Stmt.var list;
  stmts : Stmt.t array;
  succ : int list array;
  pred : int list array;
  exits : int list;  (** indices of [Return] statements *)
}

val entry : t -> int
val n_stmts : t -> int
val stmt : t -> int -> Stmt.t
val iter_stmts : t -> (int -> Stmt.t -> unit) -> unit
val cfg : t -> Fsam_graph.Digraph.t
(** A fresh [Digraph] copy of the CFG (for dominance etc.). *)
