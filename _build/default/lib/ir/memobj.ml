type kind =
  | Stack of int
  | Global
  | Heap of int
  | Func of int
  | Field of { base : int; field : string }
  | Thread of int

type t = { id : int; name : string; kind : kind; is_array : bool }

let is_heap o = match o.kind with Heap _ -> true | _ -> false
let is_function o = match o.kind with Func _ -> true | _ -> false
let is_thread o = match o.kind with Thread _ -> true | _ -> false
let base_of o = match o.kind with Field { base; _ } -> base | _ -> o.id

let pp ppf o =
  let kind =
    match o.kind with
    | Stack _ -> "stack"
    | Global -> "global"
    | Heap _ -> "heap"
    | Func _ -> "func"
    | Field _ -> "field"
    | Thread _ -> "thread"
  in
  Format.fprintf ppf "%s<%s#%d>%s" o.name kind o.id (if o.is_array then "[]" else "")
