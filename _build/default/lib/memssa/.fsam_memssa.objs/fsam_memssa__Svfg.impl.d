lib/memssa/svfg.ml: Array Bitvec Format Fsam_andersen Fsam_dsa Fsam_ir Fsam_mta Func Hashtbl Iset Lazy List Option Prog Queue Stmt Vec
