(* Quickstart: build a tiny multithreaded program with the Builder API, run
   the full FSAM pipeline, and query points-to results.

     dune exec examples/quickstart.exe

   The program is the paper's motivating example (Figure 1(a)):

     main() { fork(t, foo); *p = r; c = *p; }     foo() { *p = q; }

   with p = &x, q = &y, r = &z. The store in the spawned thread interleaves
   with main's accesses, so c may point to y (stored by the thread) or z
   (stored by main): pt(c) = {y, z}. *)

open Fsam_ir
module B = Builder
module D = Fsam_core.Driver

let () =
  (* 1. Build the program. *)
  let b = B.create () in
  let main = B.declare b "main" ~params:[] in
  let foo = B.declare b "foo" ~params:[ "fp"; "fq" ] in
  let fp = B.param b foo 0 and fq = B.param b foo 1 in
  B.define b foo (fun fb -> B.store fb fp fq);
  let x = B.stack_obj b ~owner:main "x"
  and y = B.stack_obj b ~owner:main "y"
  and z = B.stack_obj b ~owner:main "z" in
  let p = B.fresh_var b "p"
  and q = B.fresh_var b "q"
  and r = B.fresh_var b "r"
  and c = B.fresh_var b "c" in
  B.define b main (fun fb ->
      B.addr_of fb p x;
      B.addr_of fb q y;
      B.addr_of fb r z;
      B.fork fb (Stmt.Direct foo) [ p; q ];
      B.store fb p r;
      B.load fb c p);
  let prog = B.finish b in

  (* 2. Run FSAM: pre-analysis, thread model, MHP, locks, SVFG, sparse solve. *)
  let d = D.run prog in

  (* 3. Query the results. *)
  Format.printf "Program:@.%a@." Prog.pp prog;
  Format.printf "%a@.@." D.pp_summary d;
  Format.printf "pt(c) = {%s}   (the paper's Figure 1(a) expects {y, z})@."
    (String.concat ", " (D.pt_names d c));
  Format.printf "alias(p, q) = %b, alias(c, q) = %b@." (D.alias d p q) (D.alias d c q);

  (* 4. Compare with the flow-insensitive pre-analysis. *)
  let anders = Fsam_andersen.Solver.pt_var d.D.ast c in
  Format.printf "Andersen pt(c) = %a (flow-insensitive upper bound)@." Fsam_dsa.Iset.pp
    anders
