/* An AB-BA lock-order inversion: `fsam deadlocks examples/minic/deadlock.c`
   reports the cycle. */

lock_t lockA;
lock_t lockB;
int balance_a;
int balance_b;
thread_t t;

void transfer_ab(int *arg) {
  lock(&lockA);
  lock(&lockB);
  balance_a = arg;
  unlock(&lockB);
  unlock(&lockA);
}

int main() {
  fork(&t, transfer_ab, &balance_b);
  lock(&lockB);
  lock(&lockA);
  balance_b = &balance_a;
  unlock(&lockA);
  unlock(&lockB);
  join(&t);
  return 0;
}
