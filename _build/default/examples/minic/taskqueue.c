/* The radiosity task-queue pattern (paper Figure 13): enqueue and dequeue
   protect the shared queue with the same lock, so the lock analysis filters
   def-use edges between mid-section accesses of the two critical
   sections. */

struct Queue {
  int *head;
  int *tail;
};

struct Queue task_queue;
lock_t q_lock;
int task_a;
int task_b;
thread_t workers[4];

void enqueue_task(int *task) {
  lock(&q_lock);
  task_queue.tail = task;
  task_queue.head = task_queue.tail;
  unlock(&q_lock);
}

int *dequeue_task() {
  int *t;
  lock(&q_lock);
  t = task_queue.head;
  task_queue.head = null;
  unlock(&q_lock);
  return t;
}

void worker(int *arg) {
  int *t;
  while (nondet()) {
    t = dequeue_task();
    enqueue_task(&task_b);
  }
}

int main() {
  int i;
  enqueue_task(&task_a);
  while (i < 4) {
    fork(&workers[i], worker, null);
  }
  while (i < 4) {
    join(&workers[i]);
  }
  return 0;
}
