/* The word_count pattern (paper Figure 11): a fixed number of slaves forked
   and joined in two symmetric loops; the master post-processes after the
   join loop. The symmetric fork/join recognition proves the post-processing
   serial. */

int buckets[16];
int result;
int *words;
pthread_t tid[8];
pthread_mutex_t bucket_lock;

void wordcount_map(int *chunk) {
  int *w;
  pthread_mutex_lock(&bucket_lock);
  w = words;
  buckets[0] = w;
  pthread_mutex_unlock(&bucket_lock);
}

int main() {
  int i;
  int *final;
  words = &result;
  while (i < 8) {
    pthread_create(&tid[i], wordcount_map, words);
  }
  while (i < 8) {
    pthread_join(&tid[i]);
  }
  final = buckets[0];
  return 0;
}
