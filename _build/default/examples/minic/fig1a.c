/* Paper Figure 1(a): thread interference.
   Expected: pt(c) = {y, z} — the spawned thread's store and main's store
   both reach the load. */

int x;
int y;
int z;

void foo(int *fp, int *fq) {
  *fp = fq;
}

int main() {
  int *p;
  int *q;
  int *r;
  int *c;
  p = &x;
  q = &y;
  r = &z;
  fork(null, foo, p, q);
  *p = r;
  c = *p;
  return 0;
}
