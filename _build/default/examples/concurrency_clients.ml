(* The two client analyses the paper's conclusion (§6) proposes on top of
   FSAM, beyond race detection: deadlock detection and reducing the
   instrumentation overhead of dynamic race detectors (ThreadSanitizer).

     dune exec examples/concurrency_clients.exe *)

module D = Fsam_core.Driver

let deadlock_source =
  {|
  lock_t lockA;
  lock_t lockB;
  int balance_a;
  int balance_b;
  thread_t t;

  /* transfer A -> B takes lockA then lockB ... */
  void transfer_ab(int *arg) {
    lock(&lockA);
    lock(&lockB);
    balance_a = arg;
    unlock(&lockB);
    unlock(&lockA);
  }

  /* ... while main transfers B -> A with the opposite order: AB-BA */
  int main() {
    fork(&t, transfer_ab, null);
    lock(&lockB);
    lock(&lockA);
    balance_b = &balance_a;
    unlock(&lockA);
    unlock(&lockB);
    join(&t);
    return 0;
  }
  |}

let () =
  Format.printf "== deadlock detection ==@.";
  let prog = Fsam_frontend.Lower.compile_string deadlock_source in
  let d = D.run prog in
  let dls = Fsam_core.Deadlocks.detect d in
  if dls = [] then Format.printf "no lock-order cycles@."
  else
    List.iter
      (fun dl -> Format.printf "potential deadlock: %a@." (Fsam_core.Deadlocks.pp_deadlock d) dl)
      dls;

  Format.printf "@.== ThreadSanitizer pre-filtering ==@.";
  (* a realistic benchmark: most traffic is thread-local, so most dynamic
     checks can be dropped *)
  let spec = Option.get (Fsam_workloads.Suite.find "ferret") in
  let prog = spec.Fsam_workloads.Suite.build 200 in
  let d = D.run prog in
  let r = Fsam_core.Instrument.analyze d in
  Format.printf
    "ferret-like pipeline: %d of %d loads/stores need dynamic checks (%.1f%% of \
     instrumentation removed)@."
    r.Fsam_core.Instrument.instrumented r.Fsam_core.Instrument.total_accesses
    (100. *. r.Fsam_core.Instrument.reduction)
