(* Data-race detection on MiniC source — the first client application the
   paper's conclusion proposes for FSAM.

     dune exec examples/race_detection.exe

   We analyze two versions of a radiosity-style shared task queue (paper
   Figure 13): one where dequeue_task forgets to take the queue lock (a real
   race), and the fixed version. FSAM's flow-sensitive points-to results +
   MHP + lock analysis find the race in the first and prove the second
   clean. *)

module D = Fsam_core.Driver

let racy_source =
  {|
  int task_queue;
  int task_a;
  int task_b;
  lock_t q_lock;
  thread_t tids[4];

  void enqueue_task(int *task) {
    lock(&q_lock);
    task_queue = task;       /* write under the lock */
    unlock(&q_lock);
  }

  void worker(int *arg) {
    int *t;
    t = task_queue;          /* BUG: read without the lock */
    enqueue_task(&task_b);
  }

  int main() {
    int i;
    enqueue_task(&task_a);
    while (i < 4) { fork(&tids[i], worker, null); }
    while (i < 4) { join(&tids[i]); }
    return 0;
  }
  |}

let fixed_source =
  {|
  int task_queue;
  int task_a;
  int task_b;
  lock_t q_lock;
  thread_t tids[4];

  void enqueue_task(int *task) {
    lock(&q_lock);
    task_queue = task;
    unlock(&q_lock);
  }

  void worker(int *arg) {
    int *t;
    lock(&q_lock);
    t = task_queue;          /* fixed: read under the lock */
    unlock(&q_lock);
    enqueue_task(&task_b);
  }

  int main() {
    int i;
    enqueue_task(&task_a);
    while (i < 4) { fork(&tids[i], worker, null); }
    while (i < 4) { join(&tids[i]); }
    return 0;
  }
  |}

let report name source =
  let prog = Fsam_frontend.Lower.compile_string source in
  let d = D.run prog in
  let races = Fsam_core.Races.detect d in
  Format.printf "== %s ==@." name;
  if races = [] then Format.printf "no data races found@.@."
  else begin
    Format.printf "%d potential data race(s):@." (List.length races);
    List.iter (fun r -> Format.printf "  %a@." (Fsam_core.Races.pp_race d) r) races;
    Format.printf "@."
  end

let () =
  report "racy task queue" racy_source;
  report "fixed task queue" fixed_source
