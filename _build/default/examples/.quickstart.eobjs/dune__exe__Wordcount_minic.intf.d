examples/wordcount_minic.mli:
