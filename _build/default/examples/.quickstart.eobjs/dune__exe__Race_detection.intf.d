examples/race_detection.mli:
