examples/wordcount_minic.ml: Format Fsam_core Fsam_frontend Fsam_ir Fsam_mta List String
