examples/quickstart.mli:
