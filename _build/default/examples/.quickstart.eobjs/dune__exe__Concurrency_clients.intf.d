examples/concurrency_clients.mli:
