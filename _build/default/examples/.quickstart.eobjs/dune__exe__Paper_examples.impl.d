examples/paper_examples.ml: Builder Format Fsam_andersen Fsam_core Fsam_ir Fsam_mta List Prog Stmt String
