examples/quickstart.ml: Builder Format Fsam_andersen Fsam_core Fsam_dsa Fsam_ir Prog Stmt String
