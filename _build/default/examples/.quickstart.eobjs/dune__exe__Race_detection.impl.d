examples/race_detection.ml: Format Fsam_core Fsam_frontend List
