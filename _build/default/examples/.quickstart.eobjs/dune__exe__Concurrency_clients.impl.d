examples/concurrency_clients.ml: Format Fsam_core Fsam_frontend Fsam_workloads List Option
