(* The running examples of the paper, reproduced end to end:

     dune exec examples/paper_examples.exe

   Figure 1(a)-(e): the five challenge programs with their exact pt(c)
   results; Figure 8: the interleaving analysis' thread relations and MHP
   pairs. *)

open Fsam_ir
module B = Builder
module D = Fsam_core.Driver
module Mta = Fsam_mta

let show title expected d c =
  Format.printf "%-18s pt(c) = {%s}   (paper: %s)@." title
    (String.concat ", " (D.pt_names d c))
    expected

(* -- Figure 1 -------------------------------------------------------------- *)

let fig1a () =
  let b = B.create () in
  let main = B.declare b "main" ~params:[] in
  let foo = B.declare b "foo" ~params:[ "fp"; "fq" ] in
  B.define b foo (fun fb -> B.store fb (B.param b foo 0) (B.param b foo 1));
  let x = B.stack_obj b ~owner:main "x"
  and y = B.stack_obj b ~owner:main "y"
  and z = B.stack_obj b ~owner:main "z" in
  let p = B.fresh_var b "p"
  and q = B.fresh_var b "q"
  and r = B.fresh_var b "r"
  and c = B.fresh_var b "c" in
  B.define b main (fun fb ->
      B.addr_of fb p x;
      B.addr_of fb q y;
      B.addr_of fb r z;
      B.fork fb (Stmt.Direct foo) [ p; q ];
      B.store fb p r;
      B.load fb c p);
  show "Figure 1(a)" "{y, z}" (D.run (B.finish b)) c

let fig1b () =
  let b = B.create () in
  let main = B.declare b "main" ~params:[] in
  let foo = B.declare b "foo" ~params:[ "fp"; "fq" ] in
  let bar = B.declare b "bar" ~params:[ "bp"; "bq" ] in
  let c = B.fresh_var b "c" in
  B.define b bar (fun fb ->
      B.store fb (B.param b bar 0) (B.param b bar 1);
      B.load fb c (B.param b bar 0));
  B.define b foo (fun fb ->
      B.fork fb (Stmt.Direct bar) [ B.param b foo 0; B.param b foo 1 ]);
  let x = B.stack_obj b ~owner:main "x"
  and y = B.stack_obj b ~owner:main "y"
  and z = B.stack_obj b ~owner:main "z"
  and tid = B.stack_obj b ~owner:main "tid" in
  let p = B.fresh_var b "p"
  and q = B.fresh_var b "q"
  and r = B.fresh_var b "r"
  and h = B.fresh_var b "h" in
  B.define b main (fun fb ->
      B.addr_of fb p x;
      B.addr_of fb q y;
      B.addr_of fb r z;
      B.addr_of fb h tid;
      B.fork fb ~handle:h (Stmt.Direct foo) [ p; q ];
      B.join fb h;
      B.store fb p r);
  show "Figure 1(b)" "{y, z} (t2 outlives its joined parent t1)" (D.run (B.finish b)) c

let fig1c () =
  let b = B.create () in
  let main = B.declare b "main" ~params:[] in
  let foo = B.declare b "foo" ~params:[ "fp"; "fq" ] in
  B.define b foo (fun fb -> B.store fb (B.param b foo 0) (B.param b foo 1));
  let x = B.stack_obj b ~owner:main "x"
  and y = B.stack_obj b ~owner:main "y"
  and z = B.stack_obj b ~owner:main "z"
  and tid = B.stack_obj b ~owner:main "tid" in
  let p = B.fresh_var b "p"
  and q = B.fresh_var b "q"
  and r = B.fresh_var b "r"
  and h = B.fresh_var b "h"
  and c = B.fresh_var b "c" in
  B.define b main (fun fb ->
      B.addr_of fb p x;
      B.addr_of fb q y;
      B.addr_of fb r z;
      B.store fb p r;
      B.addr_of fb h tid;
      B.fork fb ~handle:h (Stmt.Direct foo) [ p; q ];
      B.join fb h;
      B.load fb c p);
  show "Figure 1(c)" "{y} (strong update visible through the join)" (D.run (B.finish b)) c

let fig1d () =
  let b = B.create () in
  let main = B.declare b "main" ~params:[] in
  let foo = B.declare b "foo" ~params:[ "fxp"; "fr"; "fp"; "fq" ] in
  B.define b foo (fun fb ->
      B.store fb (B.param b foo 0) (B.param b foo 1);
      B.store fb (B.param b foo 2) (B.param b foo 3));
  let x = B.stack_obj b ~owner:main "x"
  and a = B.stack_obj b ~owner:main "a"
  and y = B.stack_obj b ~owner:main "y"
  and z = B.stack_obj b ~owner:main "z" in
  ignore a;
  let p = B.fresh_var b "p"
  and q = B.fresh_var b "q"
  and r = B.fresh_var b "r"
  and xp = B.fresh_var b "xp"
  and c = B.fresh_var b "c" in
  B.define b main (fun fb ->
      B.addr_of fb p x;
      B.addr_of fb q y;
      B.addr_of fb r z;
      B.addr_of fb xp a;
      B.fork fb (Stmt.Direct foo) [ xp; r; p; q ];
      B.load fb c p);
  ignore z;
  show "Figure 1(d)" "{y} — z must not leak across the *x / *p non-alias"
    (D.run (B.finish b)) c

let fig1e () =
  let b = B.create () in
  let main = B.declare b "main" ~params:[] in
  let foo = B.declare b "foo" ~params:[ "fu"; "fv"; "fp"; "fq"; "fl" ] in
  B.define b foo (fun fb ->
      B.lock fb (B.param b foo 4);
      B.store fb (B.param b foo 0) (B.param b foo 1);
      B.store fb (B.param b foo 2) (B.param b foo 3);
      B.unlock fb (B.param b foo 4));
  let x = B.stack_obj b ~owner:main "x"
  and y = B.stack_obj b ~owner:main "y"
  and z = B.stack_obj b ~owner:main "z"
  and v = B.stack_obj b ~owner:main "v"
  and m = B.global_obj b "mutex" in
  let p = B.fresh_var b "p"
  and q = B.fresh_var b "q"
  and r = B.fresh_var b "r"
  and u = B.fresh_var b "u"
  and vv = B.fresh_var b "vv"
  and l1 = B.fresh_var b "l1"
  and c = B.fresh_var b "c" in
  B.define b main (fun fb ->
      B.addr_of fb p x;
      B.addr_of fb q y;
      B.addr_of fb r z;
      B.addr_of fb u x;
      B.addr_of fb vv v;
      B.addr_of fb l1 m;
      B.store fb p r;
      B.fork fb (Stmt.Direct foo) [ u; vv; p; q; l1 ];
      B.lock fb l1;
      B.load fb c p;
      B.unlock fb l1);
  show "Figure 1(e)" "{y, z} — v filtered by the lock analysis" (D.run (B.finish b)) c

(* -- Figure 8 --------------------------------------------------------------- *)

let fig8 () =
  let b = B.create () in
  let main = B.declare b "main" ~params:[] in
  let foo1 = B.declare b "foo1" ~params:[] in
  let foo2 = B.declare b "foo2" ~params:[] in
  let bar = B.declare b "bar" ~params:[] in
  B.define b bar (fun fb -> B.nop fb "s5");
  B.define b foo1 (fun fb ->
      let h3 = B.fresh_var b "h3" in
      B.addr_of fb h3 (B.stack_obj b ~owner:foo1 "tid3");
      B.fork fb ~handle:h3 (Stmt.Direct bar) [];
      B.join fb h3);
  B.define b foo2 (fun fb ->
      B.call fb (Stmt.Direct bar) [];
      B.nop fb "s4");
  B.define b main (fun fb ->
      let h1 = B.fresh_var b "h1" and h2 = B.fresh_var b "h2" in
      B.addr_of fb h1 (B.stack_obj b ~owner:main "tid1");
      B.nop fb "s1";
      B.fork fb ~handle:h1 (Stmt.Direct foo1) [];
      B.nop fb "s2";
      B.join fb h1;
      B.addr_of fb h2 (B.stack_obj b ~owner:main "tid2");
      B.fork fb ~handle:h2 (Stmt.Direct foo2) [];
      B.nop fb "s3";
      B.join fb h2);
  let prog = B.finish b in
  let ast = Fsam_andersen.Solver.run prog in
  let icfg = Mta.Icfg.build prog ast in
  let tm = Mta.Threads.build prog ast icfg in
  let mhp = Mta.Mhp.compute tm in
  Format.printf "@.Figure 8 — thread relations and MHP pairs:@.";
  for t = 0 to Mta.Threads.n_threads tm - 1 do
    Format.printf "  %s: parent=%s multi=%b@." (Mta.Threads.thread_name tm t)
      (match Mta.Threads.parent tm t with
      | Some p -> Mta.Threads.thread_name tm p
      | None -> "-")
      (Mta.Threads.is_multi tm t)
  done;
  let gid_of name =
    let r = ref (-1) in
    Prog.iter_stmts prog (fun gid _ s -> if s = Stmt.Nop name then r := gid);
    !r
  in
  List.iter
    (fun (a, b') ->
      Format.printf "  %s || %s : %b@." a b'
        (Mta.Mhp.mhp_stmt mhp (gid_of a) (gid_of b')))
    [ ("s2", "s5"); ("s3", "s5"); ("s3", "s4"); ("s2", "s4"); ("s5", "s5") ]

let () =
  Format.printf "The paper's running examples, reproduced:@.@.";
  fig1a ();
  fig1b ();
  fig1c ();
  fig1d ();
  fig1e ();
  fig8 ()
