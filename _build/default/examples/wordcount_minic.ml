(* The word_count pattern of the paper's Figure 11, written in MiniC and
   analyzed end to end:

     dune exec examples/wordcount_minic.exe

   A fixed number of slave threads is forked and joined in two symmetric
   loops. FSAM recognises the pattern (the paper uses LLVM's SCEV; we use a
   structural check) and proves that the master's post-processing does not
   happen in parallel with the slaves — the No-Interleaving configuration
   cannot, which is exactly why the interleaving analysis matters for the
   master-slave programs in the paper's Figure 12. *)

module D = Fsam_core.Driver

let source =
  {|
  int buckets;
  int words;
  int result;
  thread_t tid[8];
  lock_t bucket_lock;

  void wordcount_map(int *out) {
    int *w;
    lock(&bucket_lock);
    w = words;
    buckets = w;             /* slave publishes into the shared buckets */
    unlock(&bucket_lock);
  }

  int main() {
    int i;
    int *final;
    words = &result;
    while (i < 8) { fork(&tid[i], wordcount_map, null); }
    while (i < 8) { join(&tid[i]); }
    final = buckets;         /* master post-processing after the join loop */
    return 0;
  }
  |}

let pt_of d prog prefix =
  let best = ref [] in
  for v = 0 to Fsam_ir.Prog.n_vars prog - 1 do
    let n = Fsam_ir.Prog.var_name prog v in
    if
      n = prefix
      || String.length n > String.length prefix
         && String.sub n 0 (String.length prefix + 1) = prefix ^ "#"
    then begin
      let names = D.pt_names d v in
      if names <> [] then best := names
    end
  done;
  !best

let () =
  let prog = Fsam_frontend.Lower.compile_string source in
  let d = D.run prog in
  Format.printf "%a@.@." D.pp_summary d;
  Format.printf "slave threads are multi-forked: %b@."
    (let tm = d.D.tm in
     let multi = ref false in
     for t = 0 to Fsam_mta.Threads.n_threads tm - 1 do
       if Fsam_mta.Threads.is_multi tm t then multi := true
     done;
     !multi);
  Format.printf "master's pt(final) = {%s}@."
    (String.concat ", " (pt_of d prog "final"));
  (* races: the bucket accesses are protected; slave vs slave on buckets is
     lock-protected, so the program is clean *)
  let races = Fsam_core.Races.detect d in
  Format.printf "data races: %d@." (List.length races)
