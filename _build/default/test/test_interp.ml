(* Statement-level semantics tests for the concrete interpreter. *)

open Fsam_ir
module B = Builder
module I = Fsam_interp.Interp

let observed r v =
  List.filter_map
    (fun o -> if o.I.obs_var = v then Some o.I.obs_obj else None)
    r.I.observations
  |> List.sort_uniq compare

let test_addr_copy_load_store () =
  (* p = &x; *p = p; c = *p  — c observes x *)
  let b = B.create () in
  let main = B.declare b "main" ~params:[] in
  let x = B.stack_obj b ~owner:main "x" in
  let p = B.fresh_var b "p" and c = B.fresh_var b "c" in
  B.define b main (fun fb ->
      B.addr_of fb p x;
      B.store fb p p;
      B.load fb c p);
  let r = I.run ~seed:0 (B.finish b) in
  Alcotest.(check (list int)) "p -> x" [ x ] (observed r p);
  Alcotest.(check (list int)) "c -> x" [ x ] (observed r c)

let test_null_deref_noop () =
  (* loading and storing through null must not crash, c stays null *)
  let b = B.create () in
  let main = B.declare b "main" ~params:[] in
  let p = B.fresh_var b "p" and q = B.fresh_var b "q" and c = B.fresh_var b "c" in
  B.define b main (fun fb ->
      B.store fb p q;
      B.load fb c p);
  let r = I.run ~seed:0 (B.finish b) in
  Alcotest.(check (list int)) "c null" [] (observed r c);
  Alcotest.(check bool) "ran to completion" true (r.I.steps >= 2)

let test_call_return () =
  let b = B.create () in
  let id_fn = B.declare b "id" ~params:[ "a" ] in
  B.define b id_fn (fun fb -> B.ret fb (Some (B.param b id_fn 0)));
  let main = B.declare b "main" ~params:[] in
  let x = B.stack_obj b ~owner:main "x" in
  let p = B.fresh_var b "p" and r' = B.fresh_var b "r" in
  B.define b main (fun fb ->
      B.addr_of fb p x;
      B.call fb ~ret:r' (Stmt.Direct id_fn) [ p ]);
  let r = I.run ~seed:0 (B.finish b) in
  Alcotest.(check (list int)) "identity returned" [ x ] (observed r r')

let test_gep_field_instance () =
  (* field cells are per base-instance *)
  let b = B.create () in
  let main = B.declare b "main" ~params:[] in
  let s = B.stack_obj b ~owner:main "s" in
  let p = B.fresh_var b "p"
  and f = B.fresh_var b "f"
  and v = B.fresh_var b "v" in
  B.define b main (fun fb ->
      B.addr_of fb p s;
      B.gep fb f p "fld";
      B.store fb f p;
      B.load fb v f);
  let prog = B.finish b in
  let r = I.run ~seed:0 prog in
  Alcotest.(check (list int)) "field holds &s" [ s ] (observed r v)

let test_fork_join_ordering () =
  (* main writes after joining the thread; thread wrote first: final cell
     value must be main's on every schedule *)
  let b = B.create () in
  let main = B.declare b "main" ~params:[] in
  let w = B.declare b "w" ~params:[ "p"; "q" ] in
  B.define b w (fun fb -> B.store fb (B.param b w 0) (B.param b w 1));
  let cell = B.stack_obj b ~owner:main "cell" in
  let ya = B.stack_obj b ~owner:main "ya" and yb = B.stack_obj b ~owner:main "yb" in
  let tid = B.stack_obj b ~owner:main "tid" in
  let p = B.fresh_var b "p"
  and qa = B.fresh_var b "qa"
  and qb = B.fresh_var b "qb"
  and h = B.fresh_var b "h"
  and c = B.fresh_var b "c" in
  B.define b main (fun fb ->
      B.addr_of fb p cell;
      B.addr_of fb qa ya;
      B.addr_of fb qb yb;
      B.addr_of fb h tid;
      B.fork fb ~handle:h (Stmt.Direct w) [ p; qa ];
      B.join fb h;
      B.store fb p qb;
      B.load fb c p);
  let prog = B.finish b in
  for seed = 0 to 19 do
    let r = I.run ~seed prog in
    Alcotest.(check (list int))
      (Printf.sprintf "schedule %d: join ordering respected" seed)
      [ yb ] (observed r c)
  done

let test_lock_mutual_exclusion () =
  (* both threads do lock; write A; write B; unlock on the same cell: a
     reader under the lock can never see the intermediate A-value of the
     other thread if it reads the second cell... simpler check: lock blocks
     are serialized, so the two cells written inside the region always agree *)
  let b = B.create () in
  let main = B.declare b "main" ~params:[] in
  let w = B.declare b "w" ~params:[ "c1"; "c2"; "v"; "l" ] in
  let c1 = B.param b w 0
  and c2 = B.param b w 1
  and v = B.param b w 2
  and l = B.param b w 3 in
  B.define b w (fun fb ->
      B.lock fb l;
      B.store fb c1 v;
      B.store fb c2 v;
      B.unlock fb l);
  let cell1 = B.global_obj b "cell1" and cell2 = B.global_obj b "cell2" in
  let ya = B.global_obj b "ya" and yb = B.global_obj b "yb" in
  let m = B.global_obj b "m" in
  B.define b main (fun fb ->
      let p1 = B.fresh_var b "p1"
      and p2 = B.fresh_var b "p2"
      and va = B.fresh_var b "va"
      and vb = B.fresh_var b "vb"
      and lk = B.fresh_var b "lk" in
      B.addr_of fb p1 cell1;
      B.addr_of fb p2 cell2;
      B.addr_of fb va ya;
      B.addr_of fb vb yb;
      B.addr_of fb lk m;
      B.fork fb (Stmt.Direct w) [ p1; p2; va; lk ];
      B.fork fb (Stmt.Direct w) [ p1; p2; vb; lk ];
      (* reader under the same lock *)
      B.lock fb lk;
      let r1 = B.fresh_var b "r1" and r2 = B.fresh_var b "r2" in
      B.load fb r1 p1;
      B.load fb r2 p2;
      B.unlock fb lk);
  let prog = B.finish b in
  (* under mutual exclusion, whenever both cells are non-null at the
     reader, they hold the same value *)
  for seed = 0 to 19 do
    let r = I.run ~seed prog in
    let find name =
      List.filter_map
        (fun o ->
          if
            String.length (Prog.var_name prog o.I.obs_var) >= 2
            && String.sub (Prog.var_name prog o.I.obs_var) 0 2 = name
          then Some o.I.obs_obj
          else None)
        r.I.observations
    in
    match (find "r1", find "r2") with
    | [ a ], [ b' ] ->
      Alcotest.(check int) (Printf.sprintf "schedule %d: atomic section" seed) a b'
    | _ -> () (* reader ran before both writers: fine *)
  done

let test_step_budget () =
  (* an infinite loop terminates at the step budget *)
  let b = B.create () in
  let main = B.declare b "main" ~params:[] in
  B.define b main (fun fb ->
      let l = B.new_label fb in
      B.place fb l;
      B.nop fb "spin";
      B.goto fb l);
  let r = I.run ~max_steps:500 ~seed:0 (B.finish b) in
  Alcotest.(check int) "stopped at budget" 500 r.I.steps

let suite =
  [
    Alcotest.test_case "addr/copy/load/store" `Quick test_addr_copy_load_store;
    Alcotest.test_case "null deref no-op" `Quick test_null_deref_noop;
    Alcotest.test_case "call/return" `Quick test_call_return;
    Alcotest.test_case "gep field instances" `Quick test_gep_field_instance;
    Alcotest.test_case "fork/join ordering" `Quick test_fork_join_ordering;
    Alcotest.test_case "lock mutual exclusion" `Quick test_lock_mutual_exclusion;
    Alcotest.test_case "step budget" `Quick test_step_budget;
  ]
