(* End-to-end tests of the full FSAM pipeline against the paper's running
   examples — most importantly the five columns of Figure 1, whose pt(c)
   results the paper states exactly. *)

open Fsam_ir
module B = Builder
module D = Fsam_core.Driver

let names d v = D.pt_names d v

let check_pt d msg expected v =
  Alcotest.(check (list string)) msg (List.sort compare expected) (names d v)

(* -- Figure 1(a): interleaving -------------------------------------------- *)
(* main { fork(t,foo); *p = r; c = *p }   foo { *p = q }   pt(c) = {y, z} *)
let test_fig1a () =
  let b = B.create () in
  let main = B.declare b "main" ~params:[] in
  let foo = B.declare b "foo" ~params:[ "fp"; "fq" ] in
  let fp = B.param b foo 0 and fq = B.param b foo 1 in
  B.define b foo (fun fb -> B.store fb fp fq);
  let x = B.stack_obj b ~owner:main "x"
  and y = B.stack_obj b ~owner:main "y"
  and z = B.stack_obj b ~owner:main "z" in
  let p = B.fresh_var b "p"
  and q = B.fresh_var b "q"
  and r = B.fresh_var b "r"
  and c = B.fresh_var b "c" in
  B.define b main (fun fb ->
      B.addr_of fb p x;
      B.addr_of fb q y;
      B.addr_of fb r z;
      B.fork fb (Stmt.Direct foo) [ p; q ];
      B.store fb p r;
      B.load fb c p);
  let d = D.run (B.finish b) in
  check_pt d "fig1a: pt(c) = {y, z}" [ "y"; "z" ] c

(* -- Figure 1(b): soundness (detached grandchild) ------------------------- *)
(* main { fork(t1,foo); join(t1); *p = r }   foo { fork(t2,bar) }
   bar { *p = q; c = *p }   pt(c) = {y, z} *)
let test_fig1b () =
  let b = B.create () in
  let main = B.declare b "main" ~params:[] in
  let foo = B.declare b "foo" ~params:[ "fp"; "fq" ] in
  let bar = B.declare b "bar" ~params:[ "bp"; "bq" ] in
  let bp = B.param b bar 0 and bq = B.param b bar 1 in
  let c = B.fresh_var b "c" in
  B.define b bar (fun fb ->
      B.store fb bp bq;
      B.load fb c bp);
  let fp = B.param b foo 0 and fq = B.param b foo 1 in
  B.define b foo (fun fb -> B.fork fb (Stmt.Direct bar) [ fp; fq ]);
  let x = B.stack_obj b ~owner:main "x"
  and y = B.stack_obj b ~owner:main "y"
  and z = B.stack_obj b ~owner:main "z" in
  let tid = B.stack_obj b ~owner:main "tid" in
  let p = B.fresh_var b "p"
  and q = B.fresh_var b "q"
  and r = B.fresh_var b "r"
  and h = B.fresh_var b "h" in
  B.define b main (fun fb ->
      B.addr_of fb p x;
      B.addr_of fb q y;
      B.addr_of fb r z;
      B.addr_of fb h tid;
      B.fork fb ~handle:h (Stmt.Direct foo) [ p; q ];
      B.join fb h;
      B.store fb p r);
  let d = D.run (B.finish b) in
  check_pt d "fig1b: pt(c) = {y, z}" [ "y"; "z" ] c

(* -- Figure 1(c): precision (strong update through join) ------------------ *)
(* main { *p = r; fork(t,foo); join(t); c = *p }   foo { *p = q }
   pt(c) = {y} *)
let test_fig1c () =
  let b = B.create () in
  let main = B.declare b "main" ~params:[] in
  let foo = B.declare b "foo" ~params:[ "fp"; "fq" ] in
  let fp = B.param b foo 0 and fq = B.param b foo 1 in
  B.define b foo (fun fb -> B.store fb fp fq);
  let x = B.stack_obj b ~owner:main "x"
  and y = B.stack_obj b ~owner:main "y"
  and z = B.stack_obj b ~owner:main "z" in
  let tid = B.stack_obj b ~owner:main "tid" in
  let p = B.fresh_var b "p"
  and q = B.fresh_var b "q"
  and r = B.fresh_var b "r"
  and h = B.fresh_var b "h"
  and c = B.fresh_var b "c" in
  B.define b main (fun fb ->
      B.addr_of fb p x;
      B.addr_of fb q y;
      B.addr_of fb r z;
      B.store fb p r;
      B.addr_of fb h tid;
      B.fork fb ~handle:h (Stmt.Direct foo) [ p; q ];
      B.join fb h;
      B.load fb c p);
  let d = D.run (B.finish b) in
  check_pt d "fig1c: pt(c) = {y}" [ "y" ] c

(* -- Figure 1(d): data-flow (no propagation between non-aliases) ---------- *)
(* main { fork(t,foo); c = *p }   foo { *xp = r; *p = q }  where xp = &a_obj
   holder; the paper's point: r (i.e. z) must not leak into pt(c). *)
let test_fig1d () =
  let b = B.create () in
  let main = B.declare b "main" ~params:[] in
  let foo = B.declare b "foo" ~params:[ "fxp"; "fr"; "fp"; "fq" ] in
  let fxp = B.param b foo 0
  and fr = B.param b foo 1
  and fp = B.param b foo 2
  and fq = B.param b foo 3 in
  B.define b foo (fun fb ->
      B.store fb fxp fr;
      B.store fb fp fq);
  let x = B.stack_obj b ~owner:main "x"
  and a = B.stack_obj b ~owner:main "a"
  and y = B.stack_obj b ~owner:main "y"
  and z = B.stack_obj b ~owner:main "z" in
  let p = B.fresh_var b "p"
  and q = B.fresh_var b "q"
  and r = B.fresh_var b "r"
  and xp = B.fresh_var b "xp"
  and c = B.fresh_var b "c" in
  B.define b main (fun fb ->
      B.addr_of fb p x;
      B.addr_of fb q y;
      B.addr_of fb r z;
      B.addr_of fb xp a;
      B.fork fb (Stmt.Direct foo) [ xp; r; p; q ];
      B.load fb c p);
  let d = D.run (B.finish b) in
  let got = names d c in
  Alcotest.(check bool) "fig1d: y in pt(c)" true (List.mem "y" got);
  Alcotest.(check bool) "fig1d: z not in pt(c) (sparsity across non-aliases)" false
    (List.mem "z" got)

(* -- Figure 1(e): lock analysis ------------------------------------------- *)
(* main { *p = r; fork(t,foo); lock(l1); c = *p; unlock(l1) }
   foo  { lock(l2); *u = v; *p = q; unlock(l2) }  with l1 ≡ l2, u ≡ p.
   pt(c) = {y, z} — v must NOT leak (the section's tail store is *p = q). *)
let test_fig1e () =
  let b = B.create () in
  let main = B.declare b "main" ~params:[] in
  let foo = B.declare b "foo" ~params:[ "fu"; "fv"; "fp"; "fq"; "fl" ] in
  let fu = B.param b foo 0
  and fv = B.param b foo 1
  and fp = B.param b foo 2
  and fq = B.param b foo 3
  and fl = B.param b foo 4 in
  B.define b foo (fun fb ->
      B.lock fb fl;
      B.store fb fu fv;
      B.store fb fp fq;
      B.unlock fb fl);
  let x = B.stack_obj b ~owner:main "x"
  and y = B.stack_obj b ~owner:main "y"
  and z = B.stack_obj b ~owner:main "z"
  and v = B.stack_obj b ~owner:main "v" in
  let m = B.global_obj b "mutex" in
  let p = B.fresh_var b "p"
  and q = B.fresh_var b "q"
  and r = B.fresh_var b "r"
  and u = B.fresh_var b "u"
  and vv = B.fresh_var b "vv"
  and l1 = B.fresh_var b "l1"
  and c = B.fresh_var b "c" in
  B.define b main (fun fb ->
      B.addr_of fb p x;
      B.addr_of fb q y;
      B.addr_of fb r z;
      B.addr_of fb u x;
      B.addr_of fb vv v;
      B.addr_of fb l1 m;
      B.store fb p r;
      B.fork fb (Stmt.Direct foo) [ u; vv; p; q; l1 ];
      B.lock fb l1;
      B.load fb c p;
      B.unlock fb l1);
  let d = D.run (B.finish b) in
  check_pt d "fig1e: pt(c) = {y, z} (v filtered by lock analysis)" [ "y"; "z" ] c;
  (* and without lock analysis, v leaks — the No-Lock ablation *)
  let b2 = () in
  ignore b2

let test_fig1e_no_lock () =
  (* same program as fig1e under the No-Lock configuration: v leaks *)
  let b = B.create () in
  let main = B.declare b "main" ~params:[] in
  let foo = B.declare b "foo" ~params:[ "fu"; "fv"; "fp"; "fq"; "fl" ] in
  let fu = B.param b foo 0
  and fv = B.param b foo 1
  and fp = B.param b foo 2
  and fq = B.param b foo 3
  and fl = B.param b foo 4 in
  B.define b foo (fun fb ->
      B.lock fb fl;
      B.store fb fu fv;
      B.store fb fp fq;
      B.unlock fb fl);
  let x = B.stack_obj b ~owner:main "x"
  and y = B.stack_obj b ~owner:main "y"
  and z = B.stack_obj b ~owner:main "z"
  and v = B.stack_obj b ~owner:main "v" in
  let m = B.global_obj b "mutex" in
  let p = B.fresh_var b "p"
  and q = B.fresh_var b "q"
  and r = B.fresh_var b "r"
  and u = B.fresh_var b "u"
  and vv = B.fresh_var b "vv"
  and l1 = B.fresh_var b "l1"
  and c = B.fresh_var b "c" in
  B.define b main (fun fb ->
      B.addr_of fb p x;
      B.addr_of fb q y;
      B.addr_of fb r z;
      B.addr_of fb u x;
      B.addr_of fb vv v;
      B.addr_of fb l1 m;
      B.store fb p r;
      B.fork fb (Stmt.Direct foo) [ u; vv; p; q; l1 ];
      B.lock fb l1;
      B.load fb c p;
      B.unlock fb l1);
  let d = D.run ~config:D.no_lock (B.finish b) in
  let got = names d c in
  Alcotest.(check bool) "no-lock: v leaks into pt(c)" true (List.mem "v" got);
  Alcotest.(check bool) "no-lock: still has y" true (List.mem "y" got)

(* -- Sequential strong update -------------------------------------------- *)

let test_sequential_strong_update () =
  (* p = &x; *p = a; *p = b; c = *p   =>  pt(c) = {o_b} only *)
  let b = B.create () in
  let main = B.declare b "main" ~params:[] in
  let x = B.stack_obj b ~owner:main "x"
  and oa = B.stack_obj b ~owner:main "oa"
  and ob = B.stack_obj b ~owner:main "ob" in
  let p = B.fresh_var b "p"
  and a = B.fresh_var b "a"
  and bb = B.fresh_var b "bb"
  and c = B.fresh_var b "c" in
  B.define b main (fun fb ->
      B.addr_of fb p x;
      B.addr_of fb a oa;
      B.addr_of fb bb ob;
      B.store fb p a;
      B.store fb p bb;
      B.load fb c p);
  let d = D.run (B.finish b) in
  check_pt d "strong update kills" [ "ob" ] c

let test_weak_update_two_targets () =
  (* p may point to x or y: both stores weak; c keeps both possibilities *)
  let b = B.create () in
  let main = B.declare b "main" ~params:[] in
  let x = B.stack_obj b ~owner:main "x" and y = B.stack_obj b ~owner:main "y" in
  let oa = B.stack_obj b ~owner:main "oa" and ob = B.stack_obj b ~owner:main "ob" in
  let p1 = B.fresh_var b "p1"
  and p2 = B.fresh_var b "p2"
  and p = B.fresh_var b "p"
  and a = B.fresh_var b "a"
  and bb = B.fresh_var b "bb"
  and c = B.fresh_var b "c" in
  B.define b main (fun fb ->
      B.addr_of fb p1 x;
      B.addr_of fb p2 y;
      B.phi fb p [ p1; p2 ];
      B.addr_of fb a oa;
      B.addr_of fb bb ob;
      B.store fb p a;
      B.store fb p bb;
      B.load fb c p);
  let d = D.run (B.finish b) in
  check_pt d "weak updates accumulate" [ "oa"; "ob" ] c

let test_heap_no_strong_update () =
  (* heap objects are not singletons: no strong update *)
  let b = B.create () in
  let main = B.declare b "main" ~params:[] in
  let oa = B.stack_obj b ~owner:main "oa" and ob = B.stack_obj b ~owner:main "ob" in
  let hp = B.heap_obj b ~owner:main "h" in
  let p = B.fresh_var b "p"
  and a = B.fresh_var b "a"
  and bb = B.fresh_var b "bb"
  and c = B.fresh_var b "c" in
  B.define b main (fun fb ->
      B.addr_of fb p hp;
      B.addr_of fb a oa;
      B.addr_of fb bb ob;
      B.store fb p a;
      B.store fb p bb;
      B.load fb c p);
  let d = D.run (B.finish b) in
  check_pt d "heap weak" [ "oa"; "ob" ] c

(* -- Flow-sensitivity vs Andersen ----------------------------------------- *)

let test_more_precise_than_andersen () =
  (* c = *p BEFORE *p = b: flow-sensitivity excludes ob; Andersen includes *)
  let b = B.create () in
  let main = B.declare b "main" ~params:[] in
  let x = B.stack_obj b ~owner:main "x" in
  let oa = B.stack_obj b ~owner:main "oa" and ob = B.stack_obj b ~owner:main "ob" in
  let p = B.fresh_var b "p"
  and a = B.fresh_var b "a"
  and bb = B.fresh_var b "bb"
  and c = B.fresh_var b "c" in
  B.define b main (fun fb ->
      B.addr_of fb p x;
      B.addr_of fb a oa;
      B.addr_of fb bb ob;
      B.store fb p a;
      B.load fb c p;
      B.store fb p bb);
  let prog = B.finish b in
  let d = D.run prog in
  check_pt d "flow-sensitive: only oa" [ "oa" ] c;
  let and_pt = Fsam_andersen.Solver.pt_var d.D.ast c in
  Alcotest.(check bool) "andersen has both" true
    (Fsam_dsa.Iset.mem oa and_pt && Fsam_dsa.Iset.mem ob and_pt)

(* -- Interprocedural flow -------------------------------------------------- *)

let test_interproc_flow () =
  (* helper writes through its pointer param; caller observes after call *)
  let b = B.create () in
  let main = B.declare b "main" ~params:[] in
  let helper = B.declare b "helper" ~params:[ "hp"; "hv" ] in
  let hp = B.param b helper 0 and hv = B.param b helper 1 in
  B.define b helper (fun fb -> B.store fb hp hv);
  let x = B.stack_obj b ~owner:main "x" and y = B.stack_obj b ~owner:main "y" in
  let p = B.fresh_var b "p" and v = B.fresh_var b "v" and c = B.fresh_var b "c" in
  B.define b main (fun fb ->
      B.addr_of fb p x;
      B.addr_of fb v y;
      B.call fb (Stmt.Direct helper) [ p; v ];
      B.load fb c p);
  let d = D.run (B.finish b) in
  check_pt d "callee effect visible" [ "y" ] c

let test_call_preserves_untouched () =
  (* a call that does not touch x must not lose x's contents *)
  let b = B.create () in
  let main = B.declare b "main" ~params:[] in
  let other = B.declare b "other" ~params:[] in
  let g = B.global_obj b "g" in
  B.define b other (fun fb ->
      let t = B.fresh_var b "t" and w = B.fresh_var b "w" and gw = B.global_obj b "gw" in
      B.addr_of fb t g;
      B.addr_of fb w gw;
      B.store fb t w);
  let x = B.stack_obj b ~owner:main "x" and y = B.stack_obj b ~owner:main "y" in
  let p = B.fresh_var b "p" and v = B.fresh_var b "v" and c = B.fresh_var b "c" in
  B.define b main (fun fb ->
      B.addr_of fb p x;
      B.addr_of fb v y;
      B.store fb p v;
      B.call fb (Stmt.Direct other) [];
      B.load fb c p);
  let d = D.run (B.finish b) in
  check_pt d "x survives unrelated call" [ "y" ] c

(* -- Race detection client ------------------------------------------------- *)

let test_race_detection () =
  (* fig1a has an unprotected store-store and store-load race on x *)
  let b = B.create () in
  let main = B.declare b "main" ~params:[] in
  let foo = B.declare b "foo" ~params:[ "fp"; "fq" ] in
  let fp = B.param b foo 0 and fq = B.param b foo 1 in
  B.define b foo (fun fb -> B.store fb fp fq);
  let x = B.stack_obj b ~owner:main "x"
  and y = B.stack_obj b ~owner:main "y"
  and z = B.stack_obj b ~owner:main "z" in
  let p = B.fresh_var b "p"
  and q = B.fresh_var b "q"
  and r = B.fresh_var b "r"
  and c = B.fresh_var b "c" in
  B.define b main (fun fb ->
      B.addr_of fb p x;
      B.addr_of fb q y;
      B.addr_of fb r z;
      B.fork fb (Stmt.Direct foo) [ p; q ];
      B.store fb p r;
      B.load fb c p);
  let d = D.run (B.finish b) in
  let races = Fsam_core.Races.detect d in
  Alcotest.(check bool) "found races" true (List.length races > 0);
  Alcotest.(check bool) "all races on x" true
    (List.for_all (fun r -> r.Fsam_core.Races.obj = x) races)

let test_no_race_when_locked () =
  (* same accesses, both protected: no race reported *)
  let b = B.create () in
  let main = B.declare b "main" ~params:[] in
  let foo = B.declare b "foo" ~params:[ "fp"; "fq"; "fl" ] in
  let fp = B.param b foo 0 and fq = B.param b foo 1 and fl = B.param b foo 2 in
  B.define b foo (fun fb ->
      B.lock fb fl;
      B.store fb fp fq;
      B.unlock fb fl);
  let x = B.stack_obj b ~owner:main "x" and y = B.stack_obj b ~owner:main "y" in
  let m = B.global_obj b "mutex" in
  let p = B.fresh_var b "p"
  and q = B.fresh_var b "q"
  and l = B.fresh_var b "l"
  and c = B.fresh_var b "c" in
  B.define b main (fun fb ->
      B.addr_of fb p x;
      B.addr_of fb q y;
      B.addr_of fb l m;
      B.fork fb (Stmt.Direct foo) [ p; q; l ];
      B.lock fb l;
      B.load fb c p;
      B.unlock fb l);
  let d = D.run (B.finish b) in
  let races = Fsam_core.Races.detect d in
  Alcotest.(check int) "no races under common lock" 0 (List.length races)

(* -- Ablation: no-interleaving is sound but coarser ------------------------ *)

let test_no_interleaving_coarser () =
  (* fig1c under No-Interleaving: PCG cannot see the join ordering, so the
     result is a superset of the precise one *)
  let mk () =
    let b = B.create () in
    let main = B.declare b "main" ~params:[] in
    let foo = B.declare b "foo" ~params:[ "fp"; "fq" ] in
    let fp = B.param b foo 0 and fq = B.param b foo 1 in
    B.define b foo (fun fb -> B.store fb fp fq);
    let x = B.stack_obj b ~owner:main "x"
    and y = B.stack_obj b ~owner:main "y"
    and z = B.stack_obj b ~owner:main "z" in
    ignore (x, y, z);
    let tid = B.stack_obj b ~owner:main "tid" in
    let p = B.fresh_var b "p"
    and q = B.fresh_var b "q"
    and r = B.fresh_var b "r"
    and h = B.fresh_var b "h"
    and c = B.fresh_var b "c" in
    B.define b main (fun fb ->
        B.addr_of fb p x;
        B.addr_of fb q y;
        B.addr_of fb r z;
        B.store fb p r;
        B.addr_of fb h tid;
        B.fork fb ~handle:h (Stmt.Direct foo) [ p; q ];
        B.join fb h;
        B.load fb c p);
    (B.finish b, c)
  in
  let prog1, c1 = mk () in
  let d_full = D.run prog1 in
  let prog2, c2 = mk () in
  let d_noint = D.run ~config:D.no_interleaving prog2 in
  let full = names d_full c1 and noint = names d_noint c2 in
  Alcotest.(check bool) "no-interleaving is a superset" true
    (List.for_all (fun o -> List.mem o noint) full);
  Alcotest.(check bool) "no-interleaving loses the fig1c precision" true
    (List.length noint > List.length full)

let suite =
  [
    Alcotest.test_case "figure 1(a) interleaving" `Quick test_fig1a;
    Alcotest.test_case "figure 1(b) soundness" `Quick test_fig1b;
    Alcotest.test_case "figure 1(c) precision" `Quick test_fig1c;
    Alcotest.test_case "figure 1(d) data-flow" `Quick test_fig1d;
    Alcotest.test_case "figure 1(e) lock analysis" `Quick test_fig1e;
    Alcotest.test_case "figure 1(e) no-lock ablation" `Quick test_fig1e_no_lock;
    Alcotest.test_case "sequential strong update" `Quick test_sequential_strong_update;
    Alcotest.test_case "weak update with two targets" `Quick test_weak_update_two_targets;
    Alcotest.test_case "heap never strong-updated" `Quick test_heap_no_strong_update;
    Alcotest.test_case "more precise than andersen" `Quick test_more_precise_than_andersen;
    Alcotest.test_case "interprocedural flow" `Quick test_interproc_flow;
    Alcotest.test_case "call preserves untouched memory" `Quick test_call_preserves_untouched;
    Alcotest.test_case "race detection" `Quick test_race_detection;
    Alcotest.test_case "no race under lock" `Quick test_no_race_when_locked;
    Alcotest.test_case "no-interleaving ablation coarser" `Quick test_no_interleaving_coarser;
  ]
