(* The MiniC text renditions of the benchmark skeletons compile through the
   whole frontend at scale and analyze with the expected concurrency
   structure. *)

module D = Fsam_core.Driver
module MS = Fsam_workloads.Minic_suite

let compile s = Fsam_frontend.Lower.compile_string s

let test_all_compile () =
  List.iter
    (fun (name, gen) ->
      let src = gen ~scale:120 in
      match compile src with
      | prog ->
        Fsam_ir.Validate.check_exn prog;
        let d = D.run prog in
        Alcotest.(check bool)
          (name ^ " analyzed")
          true
          (Fsam_core.Sparse.pts_entries d.D.sparse > 0)
      | exception e ->
        Alcotest.failf "%s failed: %s" name (Printexc.to_string e))
    MS.all

let test_wordcount_symmetric () =
  let prog = compile (MS.wordcount ~scale:60) in
  let d = D.run prog in
  let tm = d.D.tm in
  let handled = ref false in
  for i = 0 to Fsam_mta.Threads.n_insts tm - 1 do
    if Fsam_mta.Threads.join_kills tm i <> [] then handled := true
  done;
  Alcotest.(check bool) "symmetric join recognized in MiniC build" true !handled

let test_server_detached () =
  let prog = compile (MS.server ~scale:60) in
  let d = D.run prog in
  let tm = d.D.tm in
  let multi = ref false in
  for t = 0 to Fsam_mta.Threads.n_threads tm - 1 do
    if Fsam_mta.Threads.is_multi tm t then multi := true
  done;
  Alcotest.(check bool) "detached handlers multi-forked" true !multi

let test_taskqueue_spans () =
  let prog = compile (MS.taskqueue ~scale:60) in
  let d = D.run prog in
  Alcotest.(check bool) "queue spans found" true (Fsam_mta.Locks.n_spans d.D.locks >= 3)

let test_scaling () =
  let small = compile (MS.wordcount ~scale:40) in
  let big = compile (MS.wordcount ~scale:120) in
  Alcotest.(check bool) "scales" true
    (Fsam_ir.Prog.n_stmts big > Fsam_ir.Prog.n_stmts small)

let suite =
  [
    Alcotest.test_case "all compile and analyze" `Quick test_all_compile;
    Alcotest.test_case "wordcount symmetric join" `Quick test_wordcount_symmetric;
    Alcotest.test_case "server detached handlers" `Quick test_server_detached;
    Alcotest.test_case "taskqueue lock spans" `Quick test_taskqueue_spans;
    Alcotest.test_case "text generators scale" `Quick test_scaling;
  ]
