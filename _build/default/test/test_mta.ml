open Fsam_ir
open Fsam_mta
module B = Builder
module A = Fsam_andersen.Solver

let setup prog =
  let ast = A.run prog in
  let icfg = Icfg.build prog ast in
  let tm = Threads.build prog ast icfg in
  (ast, icfg, tm)

(* -- Paper Figure 8 ------------------------------------------------------- *)

(* main()  { s1; fk1: fork(t1,foo1); s2; jn1: join(t1);
             fk2: fork(t2,foo2); s3; jn2: join(t2); }
   foo1()  { fk3: fork(t3,bar); jn3: join(t3); }
   foo2()  { cs4: bar(); s4; }
   bar()   { s5; } *)
type fig8 = {
  prog : Prog.t;
  s2 : int; (* gids *)
  s3 : int;
  s4 : int;
  s5 : int;
  fk1_gid : int;
  main_fid : int;
  foo1 : int;
  foo2 : int;
  bar : int;
}

let build_fig8 () =
  let b = B.create () in
  let main = B.declare b "main" ~params:[] in
  let foo1 = B.declare b "foo1" ~params:[] in
  let foo2 = B.declare b "foo2" ~params:[] in
  let bar = B.declare b "bar" ~params:[] in
  B.define b bar (fun fb -> B.nop fb "s5");
  B.define b foo1 (fun fb ->
      let h3 = B.fresh_var b "h3" in
      let tid3 = B.stack_obj b ~owner:foo1 "tid3" in
      B.addr_of fb h3 tid3;
      B.fork fb ~handle:h3 (Stmt.Direct bar) [];
      B.join fb h3);
  B.define b foo2 (fun fb ->
      B.call fb (Stmt.Direct bar) [];
      B.nop fb "s4");
  B.define b main (fun fb ->
      let h1 = B.fresh_var b "h1" and h2 = B.fresh_var b "h2" in
      let tid1 = B.stack_obj b ~owner:main "tid1" in
      let tid2 = B.stack_obj b ~owner:main "tid2" in
      B.nop fb "s1";
      B.addr_of fb h1 tid1;
      B.fork fb ~handle:h1 (Stmt.Direct foo1) [];
      B.nop fb "s2";
      B.join fb h1;
      B.addr_of fb h2 tid2;
      B.fork fb ~handle:h2 (Stmt.Direct foo2) [];
      B.nop fb "s3";
      B.join fb h2);
  let prog = B.finish b in
  Validate.check_exn prog;
  let find_nop fid name =
    let f = Prog.func prog fid in
    let r = ref (-1) in
    Func.iter_stmts f (fun i s -> if s = Stmt.Nop name then r := Prog.gid prog ~fid ~idx:i);
    assert (!r >= 0);
    !r
  in
  let find_fork fid =
    let f = Prog.func prog fid in
    let r = ref (-1) in
    Func.iter_stmts f (fun i s ->
        match s with Stmt.Fork _ when !r < 0 -> r := Prog.gid prog ~fid ~idx:i | _ -> ());
    !r
  in
  {
    prog;
    s2 = find_nop main "s2";
    s3 = find_nop main "s3";
    s4 = find_nop foo2 "s4";
    s5 = find_nop bar "s5";
    fk1_gid = find_fork main;
    main_fid = main;
    foo1;
    foo2;
    bar;
  }

let tid_starting tm fid =
  let r = ref (-1) in
  for t = 0 to Threads.n_threads tm - 1 do
    if Threads.start_fns tm t = [ fid ] then r := t
  done;
  !r

let test_fig8_threads () =
  let f8 = build_fig8 () in
  let _ast, _icfg, tm = setup f8.prog in
  Alcotest.(check int) "four threads" 4 (Threads.n_threads tm);
  let t1 = tid_starting tm f8.foo1
  and t2 = tid_starting tm f8.foo2
  and t3 = tid_starting tm f8.bar in
  Alcotest.(check bool) "all found" true (t1 > 0 && t2 > 0 && t3 > 0);
  Alcotest.(check (option int)) "t1 parent main" (Some 0) (Threads.parent tm t1);
  Alcotest.(check (option int)) "t3 parent t1" (Some t1) (Threads.parent tm t3);
  Alcotest.(check bool) "t0 => t3 transitively" true
    (Fsam_dsa.Iset.mem t3 (Threads.descendants tm 0));
  Alcotest.(check bool) "none multi-forked" false
    (Threads.is_multi tm t1 || Threads.is_multi tm t2 || Threads.is_multi tm t3);
  (* sibling relations *)
  Alcotest.(check bool) "t1 ~ t2 siblings" true (Threads.siblings tm t1 t2);
  Alcotest.(check bool) "t3 ~ t2 siblings" true (Threads.siblings tm t3 t2);
  Alcotest.(check bool) "t1 not sibling of t3" false (Threads.siblings tm t1 t3);
  (* happens-before *)
  Alcotest.(check bool) "t1 > t2" true (Threads.happens_before tm t1 t2);
  Alcotest.(check bool) "t3 > t2 (via full join of t3 by t1)" true
    (Threads.happens_before tm t3 t2);
  Alcotest.(check bool) "not t2 > t1" false (Threads.happens_before tm t2 t1);
  Alcotest.(check bool) "t1 fully joins t3" true (Threads.fully_joins tm t1 t3)

let test_fig8_mhp () =
  let f8 = build_fig8 () in
  let _ast, _icfg, tm = setup f8.prog in
  let mhp = Mhp.compute tm in
  (* the three pairs of Figure 8(d) *)
  Alcotest.(check bool) "s2 || s5" true (Mhp.mhp_stmt mhp f8.s2 f8.s5);
  Alcotest.(check bool) "s3 || s5" true (Mhp.mhp_stmt mhp f8.s3 f8.s5);
  Alcotest.(check bool) "s3 || s4" true (Mhp.mhp_stmt mhp f8.s3 f8.s4);
  (* precision: s2 must not interleave with foo2/bar-via-foo2 *)
  Alcotest.(check bool) "s2 not || s4" false (Mhp.mhp_stmt mhp f8.s2 f8.s4);
  (* context-sensitivity: the two instances of s5 (via t3 and via t2) are
     distinguished; s5 does not interleave with itself *)
  Alcotest.(check bool) "s5 not || s5" false (Mhp.mhp_stmt mhp f8.s5 f8.s5);
  (* s5 has two instances, one per calling thread/context *)
  Alcotest.(check int) "two instances of s5" 2 (List.length (Threads.insts_of_gid tm f8.s5))

(* -- Figure 1(b): a detached grandchild outlives its joined parent -------- *)

let test_detached_thread () =
  (* main { fork(h1,foo); join(h1); s_store }   foo { fork(bar); s_q }  bar { s_bar } *)
  let b = B.create () in
  let main = B.declare b "main" ~params:[] in
  let foo = B.declare b "foo" ~params:[] in
  let bar = B.declare b "bar" ~params:[] in
  B.define b bar (fun fb -> B.nop fb "s_bar");
  B.define b foo (fun fb ->
      B.fork fb (Stmt.Direct bar) [];
      B.nop fb "s_q");
  B.define b main (fun fb ->
      let h1 = B.fresh_var b "h1" in
      let tid1 = B.stack_obj b ~owner:main "tid1" in
      B.addr_of fb h1 tid1;
      B.fork fb ~handle:h1 (Stmt.Direct foo) [];
      B.join fb h1;
      B.nop fb "s_store");
  let prog = B.finish b in
  let _ast, _icfg, tm = setup prog in
  let mhp = Mhp.compute tm in
  let find fid name =
    let f = Prog.func prog fid in
    let r = ref (-1) in
    Func.iter_stmts f (fun i s -> if s = Stmt.Nop name then r := Prog.gid prog ~fid ~idx:i);
    !r
  in
  let s_store = find main "s_store" and s_bar = find bar "s_bar" and s_q = find foo "s_q" in
  (* t2 (bar) is never joined: it stays alive after join(t1) *)
  Alcotest.(check bool) "detached t2 || main after join" true (Mhp.mhp_stmt mhp s_store s_bar);
  (* but t1 itself is dead after its join *)
  Alcotest.(check bool) "joined t1 dead after join" false (Mhp.mhp_stmt mhp s_store s_q)

(* -- Multi-forked threads -------------------------------------------------- *)

let build_loop_fork ~with_join_loop =
  (* main { while(..){ fork(h,worker) }; [while(..){ join(h) };] s_after }
     worker { s_w } *)
  let b = B.create () in
  let main = B.declare b "main" ~params:[] in
  let worker = B.declare b "worker" ~params:[] in
  B.define b worker (fun fb -> B.nop fb "s_w");
  B.define b main (fun fb ->
      let h = B.fresh_var b "h" in
      let tids = B.global_obj ~is_array:true b "tids" in
      B.addr_of fb h tids;
      B.while_ fb (fun fb -> B.fork fb ~handle:h (Stmt.Direct worker) []);
      if with_join_loop then B.while_ fb (fun fb -> B.join fb h);
      B.nop fb "s_after");
  let prog = B.finish b in
  let _ast, _icfg, tm = setup prog in
  let find fid name =
    let f = Prog.func prog fid in
    let r = ref (-1) in
    Func.iter_stmts f (fun i s -> if s = Stmt.Nop name then r := Prog.gid prog ~fid ~idx:i);
    !r
  in
  (prog, tm, find main "s_after", find worker "s_w")

let test_multiforked () =
  let _prog, tm, s_after, s_w = build_loop_fork ~with_join_loop:false in
  Alcotest.(check int) "two threads" 2 (Threads.n_threads tm);
  Alcotest.(check bool) "worker multi-forked" true (Threads.is_multi tm 1);
  let mhp = Mhp.compute tm in
  (* no join: workers still alive after the loop *)
  Alcotest.(check bool) "after || worker" true (Mhp.mhp_stmt mhp s_after s_w);
  (* a multi-forked thread interleaves with itself *)
  Alcotest.(check bool) "worker || worker" true (Mhp.mhp_stmt mhp s_w s_w)

let test_symmetric_fork_join_loops () =
  (* the word_count pattern of paper Figure 11 *)
  let _prog, tm, s_after, s_w = build_loop_fork ~with_join_loop:true in
  Alcotest.(check bool) "worker multi-forked" true (Threads.is_multi tm 1);
  let mhp = Mhp.compute tm in
  Alcotest.(check bool) "joined in symmetric loop: not after || worker" false
    (Mhp.mhp_stmt mhp s_after s_w);
  Alcotest.(check bool) "worker self-parallel inside region" true (Mhp.mhp_stmt mhp s_w s_w)

let test_single_join_of_multiforked_is_unhandled () =
  (* fork in a loop but a single non-loop join: must NOT kill the thread *)
  let b = B.create () in
  let main = B.declare b "main" ~params:[] in
  let worker = B.declare b "worker" ~params:[] in
  B.define b worker (fun fb -> B.nop fb "s_w");
  B.define b main (fun fb ->
      let h = B.fresh_var b "h" in
      let tids = B.global_obj ~is_array:true b "tids" in
      B.addr_of fb h tids;
      B.while_ fb (fun fb -> B.fork fb ~handle:h (Stmt.Direct worker) []);
      B.join fb h;
      B.nop fb "s_after");
  let prog = B.finish b in
  let _ast, _icfg, tm = setup prog in
  let mhp = Mhp.compute tm in
  let find fid name =
    let f = Prog.func prog fid in
    let r = ref (-1) in
    Func.iter_stmts f (fun i s -> if s = Stmt.Nop name then r := Prog.gid prog ~fid ~idx:i);
    !r
  in
  Alcotest.(check bool) "soundness: still parallel after single join" true
    (Mhp.mhp_stmt mhp (find main "s_after") (find worker "s_w"))

(* -- Recursive spawner ----------------------------------------------------- *)

let test_recursive_fork_multi () =
  let b = B.create () in
  let main = B.declare b "main" ~params:[] in
  let rec_f = B.declare b "rec_f" ~params:[] in
  let worker = B.declare b "worker" ~params:[] in
  B.define b worker (fun fb -> B.nop fb "s_w");
  B.define b rec_f (fun fb ->
      B.fork fb (Stmt.Direct worker) [];
      B.if_ fb
        ~then_:(fun fb -> B.call fb (Stmt.Direct rec_f) [])
        ~else_:(fun fb -> B.nop fb "leaf"));
  B.define b main (fun fb -> B.call fb (Stmt.Direct rec_f) []);
  let prog = B.finish b in
  let _ast, _icfg, tm = setup prog in
  let w = tid_starting tm worker in
  Alcotest.(check bool) "worker exists" true (w > 0);
  Alcotest.(check bool) "fork under recursion is multi-forked" true (Threads.is_multi tm w)

(* -- Lock spans ------------------------------------------------------------ *)

let test_lock_spans () =
  let b = B.create () in
  let main = B.declare b "main" ~params:[] in
  let m = B.global_obj b "mutex" in
  let l = B.fresh_var b "l" in
  B.define b main (fun fb ->
      B.addr_of fb l m;
      B.nop fb "before";
      B.lock fb l;
      B.nop fb "inside1";
      B.nop fb "inside2";
      B.unlock fb l;
      B.nop fb "after");
  let prog = B.finish b in
  let ast, _icfg, tm = setup prog in
  let lk = Locks.compute prog ast tm in
  Alcotest.(check int) "one span" 1 (Locks.n_spans lk);
  Alcotest.(check int) "span lock object" m (Locks.span_lock lk 0);
  let member_names =
    List.filter_map
      (fun iid ->
        match Prog.stmt_at prog (Threads.inst tm iid).Threads.i_gid with
        | Stmt.Nop n -> Some n
        | _ -> None)
      (Locks.span_members lk 0)
    |> List.sort compare
  in
  Alcotest.(check (list string)) "members between lock and unlock"
    [ "inside1"; "inside2" ] member_names

let test_lock_spans_interproc () =
  (* lock(l); call helper(); unlock(l) — helper's statements in the span *)
  let b = B.create () in
  let main = B.declare b "main" ~params:[] in
  let helper = B.declare b "helper" ~params:[] in
  B.define b helper (fun fb -> B.nop fb "in_helper");
  let m = B.global_obj b "mutex" in
  let l = B.fresh_var b "l" in
  B.define b main (fun fb ->
      B.addr_of fb l m;
      B.lock fb l;
      B.call fb (Stmt.Direct helper) [];
      B.unlock fb l);
  let prog = B.finish b in
  let ast, _icfg, tm = setup prog in
  let lk = Locks.compute prog ast tm in
  Alcotest.(check int) "one span" 1 (Locks.n_spans lk);
  let has_helper =
    List.exists
      (fun iid ->
        Prog.stmt_at prog (Threads.inst tm iid).Threads.i_gid = Stmt.Nop "in_helper")
      (Locks.span_members lk 0)
  in
  Alcotest.(check bool) "helper body inside the span" true has_helper

let test_lock_not_singleton () =
  (* a lock pointer that may point to two locks yields no span *)
  let b = B.create () in
  let main = B.declare b "main" ~params:[] in
  let m1 = B.global_obj b "m1" and m2 = B.global_obj b "m2" in
  let l1 = B.fresh_var b "l1" and l2 = B.fresh_var b "l2" and l = B.fresh_var b "l" in
  B.define b main (fun fb ->
      B.addr_of fb l1 m1;
      B.addr_of fb l2 m2;
      B.phi fb l [ l1; l2 ];
      B.lock fb l;
      B.unlock fb l);
  let prog = B.finish b in
  let ast, _icfg, tm = setup prog in
  let lk = Locks.compute prog ast tm in
  Alcotest.(check int) "no must-alias span" 0 (Locks.n_spans lk)

(* -- Paper Figure 9: context-sensitive span membership ---------------------- *)

let test_fig9_context_sensitive_spans () =
  (* main { cs1: bar(); fork(t1, foo1); fork(t2, foo2) }
     foo1 { s1: *p=..; lock(l1); s2: *p=..; s3: *p=..; unlock(l1) }
     foo2 { lock(l2); cs4: bar(); unlock(l2) }
     bar  { s4: ..=*q }
     Only the instance of s4 called from cs4 is inside the span of l2. *)
  let b = B.create () in
  let main = B.declare b "main" ~params:[] in
  let foo1 = B.declare b "foo1" ~params:[ "p"; "l" ] in
  let foo2 = B.declare b "foo2" ~params:[ "q"; "l" ] in
  let bar = B.declare b "bar" ~params:[ "bq" ] in
  let o = B.global_obj b "o" in
  let m = B.global_obj b "the_lock" in
  let d4 = B.fresh_var b "d4" in
  B.define b bar (fun fb -> B.load fb d4 (B.param b bar 0));
  B.define b foo1 (fun fb ->
      let p = B.param b foo1 0 and l = B.param b foo1 1 in
      B.store fb p p;
      B.lock fb l;
      B.store fb p p;
      B.store fb p p;
      B.unlock fb l);
  B.define b foo2 (fun fb ->
      let q = B.param b foo2 0 and l = B.param b foo2 1 in
      B.lock fb l;
      B.call fb (Stmt.Direct bar) [ q ];
      B.unlock fb l);
  B.define b main (fun fb ->
      let po = B.fresh_var b "po" and pl = B.fresh_var b "pl" in
      B.addr_of fb po o;
      B.addr_of fb pl m;
      (* cs1: bar() called OUTSIDE any lock region *)
      B.call fb (Stmt.Direct bar) [ po ];
      B.fork fb (Stmt.Direct foo1) [ po; pl ];
      B.fork fb (Stmt.Direct foo2) [ po; pl ]);
  let prog = B.finish b in
  let ast, _icfg, tm = setup prog in
  let lk = Locks.compute prog ast tm in
  (* find the s4 (load) instances: one via main's cs1, one via foo2's cs4 *)
  let load_gid = Prog.gid prog ~fid:bar ~idx:0 in
  let insts = Threads.insts_of_gid tm load_gid in
  Alcotest.(check int) "two instances of s4" 2 (List.length insts);
  let inside, outside =
    List.partition (fun iid -> Locks.spans_of_inst lk iid <> []) insts
  in
  Alcotest.(check int) "exactly one instance inside the span" 1 (List.length inside);
  Alcotest.(check int) "the other outside" 1 (List.length outside);
  (* the inside one belongs to thread t2 (foo2's thread), not main *)
  (match inside with
  | [ iid ] ->
    let t = (Threads.inst tm iid).Threads.i_thread in
    Alcotest.(check bool) "inside instance runs in foo2's thread" true
      (Threads.start_fns tm t = [ foo2 ])
  | _ -> ())

(* -- PCG baseline ----------------------------------------------------------- *)

let test_pcg_coarse () =
  (* PCG (no join modelling) must report MEC even after the join, where the
     precise interleaving analysis does not *)
  let f8 = build_fig8 () in
  let ast, icfg, tm = setup f8.prog in
  ignore ast;
  let pcg = Pcg.compute tm icfg in
  let mhp = Mhp.compute tm in
  (* both agree on a true pair *)
  Alcotest.(check bool) "pcg s2||s5" true (Pcg.mec_stmt pcg f8.s2 f8.s5);
  (* pcg is coarser: claims s2 || s4 because main and foo2 run in parallel
     threads at the procedure level *)
  Alcotest.(check bool) "pcg coarser than mhp" true
    (Pcg.mec_stmt pcg f8.s2 f8.s4 && not (Mhp.mhp_stmt mhp f8.s2 f8.s4))

let suite =
  [
    Alcotest.test_case "fig8 thread model" `Quick test_fig8_threads;
    Alcotest.test_case "fig8 MHP pairs" `Quick test_fig8_mhp;
    Alcotest.test_case "detached thread (fig 1b)" `Quick test_detached_thread;
    Alcotest.test_case "multi-forked loop" `Quick test_multiforked;
    Alcotest.test_case "symmetric fork/join loops (fig 11)" `Quick test_symmetric_fork_join_loops;
    Alcotest.test_case "single join of multi-forked unhandled" `Quick
      test_single_join_of_multiforked_is_unhandled;
    Alcotest.test_case "recursive fork multi" `Quick test_recursive_fork_multi;
    Alcotest.test_case "lock span basic" `Quick test_lock_spans;
    Alcotest.test_case "lock span interprocedural" `Quick test_lock_spans_interproc;
    Alcotest.test_case "non-singleton lock ignored" `Quick test_lock_not_singleton;
    Alcotest.test_case "fig9 context-sensitive spans" `Quick test_fig9_context_sensitive_spans;
    Alcotest.test_case "pcg coarser baseline" `Quick test_pcg_coarse;
  ]
