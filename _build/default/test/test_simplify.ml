(* The CFG compaction pass: shrinks the program, preserves analysis results
   and executable semantics. *)

open Fsam_ir
module B = Builder
module D = Fsam_core.Driver
module W = Fsam_workloads.Rand_prog

let test_compacts_structural_nops () =
  let b = B.create () in
  let main = B.declare b "main" ~params:[] in
  let x = B.stack_obj b ~owner:main "x" in
  let p = B.fresh_var b "p" in
  B.define b main (fun fb ->
      B.if_ fb
        ~then_:(fun fb -> B.addr_of fb p x)
        ~else_:(fun fb -> B.nop fb "else");
      B.nop fb "tail");
  let prog = B.finish b in
  let c = Simplify.compact prog in
  Validate.check_exn c;
  Alcotest.(check bool) "smaller" true (Prog.n_stmts c < Prog.n_stmts prog);
  (* the branch point survives (two successors), gotos are gone *)
  let gotos = ref 0 and branches = ref 0 in
  Prog.iter_stmts c (fun _ _ s ->
      match s with
      | Stmt.Nop "goto" -> incr gotos
      | Stmt.Nop "branch" -> incr branches
      | _ -> ());
  Alcotest.(check int) "no gotos left" 0 !gotos;
  Alcotest.(check bool) "branch point kept" true (!branches >= 1)

let test_preserves_results () =
  (* compaction must not change any surviving variable's points-to set *)
  for seed = 0 to 14 do
    let prog = W.generate ~seed ~size:24 () in
    let comp = Simplify.compact prog in
    Validate.check_exn comp;
    let d1 = D.run prog in
    let d2 = D.run comp in
    for v = 0 to Prog.n_vars prog - 1 do
      if not (Fsam_dsa.Iset.equal (D.pt d1 v) (D.pt d2 v)) then
        Alcotest.failf "seed %d: compaction changed pt(%s)" seed (Prog.var_name prog v)
    done
  done

let test_preserves_semantics () =
  (* the interpreter observes the same variable facts on the compacted
     program (schedules differ, so compare the deterministic single-thread
     observations via the exhaustive explorer on tiny programs) *)
  for seed = 0 to 7 do
    let prog = W.generate ~forks:false ~seed ~size:10 () in
    let comp = Simplify.compact prog in
    let facts p =
      let e = Fsam_interp.Explore.explore ~max_runs:2000 p in
      List.sort compare e.Fsam_interp.Explore.var_facts
    in
    if facts prog <> facts comp then Alcotest.failf "seed %d: semantics changed" seed
  done

let test_loop_structure_survives () =
  (* a while loop still loops after compaction (back edge preserved) *)
  let b = B.create () in
  let main = B.declare b "main" ~params:[] in
  let x = B.stack_obj b ~owner:main "x" in
  let p = B.fresh_var b "p" in
  B.define b main (fun fb -> B.while_ fb (fun fb -> B.addr_of fb p x));
  let prog = Simplify.compact (B.finish b) in
  Validate.check_exn prog;
  let f = Prog.func prog (Prog.main_fid prog) in
  let g = Func.cfg f in
  let cyclic = ref false in
  Func.iter_stmts f (fun i _ -> if Fsam_graph.Reach.reaches g i i then cyclic := true);
  Alcotest.(check bool) "loop preserved" true !cyclic

let test_fork_table_remapped () =
  let b = B.create () in
  let main = B.declare b "main" ~params:[] in
  let w = B.declare b "w" ~params:[] in
  B.define b w (fun fb -> B.ret fb None);
  B.define b main (fun fb ->
      B.nop fb "pad";
      B.fork fb (Stmt.Direct w) []);
  let prog = Simplify.compact (B.finish b) in
  let fid, idx = Prog.fork_site prog 0 in
  match Func.stmt (Prog.func prog fid) idx with
  | Stmt.Fork { fork_id = 0; _ } -> ()
  | _ -> Alcotest.fail "fork site table stale after compaction"

let suite =
  [
    Alcotest.test_case "compacts structural nops" `Quick test_compacts_structural_nops;
    Alcotest.test_case "preserves analysis results" `Slow test_preserves_results;
    Alcotest.test_case "preserves semantics" `Slow test_preserves_semantics;
    Alcotest.test_case "loop structure survives" `Quick test_loop_structure_survives;
    Alcotest.test_case "fork table remapped" `Quick test_fork_table_remapped;
  ]
