open Fsam_ir
open Fsam_dsa
module B = Builder
module A = Fsam_andersen.Solver
module Modref = Fsam_andersen.Modref

let set = Alcotest.testable Iset.pp Iset.equal

let test_addr_copy () =
  let b = B.create () in
  let main = B.declare b "main" ~params:[] in
  let x = B.stack_obj b ~owner:main "x" in
  let p = B.fresh_var b "p" and q = B.fresh_var b "q" in
  B.define b main (fun fb ->
      B.addr_of fb p x;
      B.copy fb q p);
  let prog = B.finish b in
  let ast = A.run prog in
  Alcotest.(check set) "pt(p)" (Iset.singleton x) (A.pt_var ast p);
  Alcotest.(check set) "pt(q)" (Iset.singleton x) (A.pt_var ast q)

let test_load_store () =
  (* p = &x; r = &y; *p = r; s = *p   =>  x -> {y}, s -> {y} *)
  let b = B.create () in
  let main = B.declare b "main" ~params:[] in
  let x = B.stack_obj b ~owner:main "x" and y = B.stack_obj b ~owner:main "y" in
  let p = B.fresh_var b "p"
  and r = B.fresh_var b "r"
  and s = B.fresh_var b "s" in
  B.define b main (fun fb ->
      B.addr_of fb p x;
      B.addr_of fb r y;
      B.store fb p r;
      B.load fb s p);
  let prog = B.finish b in
  let ast = A.run prog in
  Alcotest.(check set) "x cell" (Iset.singleton y) (A.pt_obj ast x);
  Alcotest.(check set) "pt(s)" (Iset.singleton y) (A.pt_var ast s)

let test_flow_insensitive_merge () =
  (* Andersen merges both stores: p=&x; *p=a; *p=b with a=&o1, b=&o2 *)
  let b = B.create () in
  let main = B.declare b "main" ~params:[] in
  let x = B.stack_obj b ~owner:main "x" in
  let o1 = B.stack_obj b ~owner:main "o1" and o2 = B.stack_obj b ~owner:main "o2" in
  let p = B.fresh_var b "p"
  and a = B.fresh_var b "a"
  and c = B.fresh_var b "c" in
  B.define b main (fun fb ->
      B.addr_of fb p x;
      B.addr_of fb a o1;
      B.store fb p a;
      let a2 = B.fresh_var b "a2" in
      B.addr_of fb a2 o2;
      B.store fb p a2;
      B.load fb c p);
  let prog = B.finish b in
  let ast = A.run prog in
  Alcotest.(check set) "pt(c) both" (Iset.of_list [ o1; o2 ]) (A.pt_var ast c)

let test_phi () =
  let b = B.create () in
  let main = B.declare b "main" ~params:[] in
  let x = B.stack_obj b ~owner:main "x" and y = B.stack_obj b ~owner:main "y" in
  let p = B.fresh_var b "p" and q = B.fresh_var b "q" and m = B.fresh_var b "m" in
  B.define b main (fun fb ->
      B.addr_of fb p x;
      B.addr_of fb q y;
      B.phi fb m [ p; q ]);
  let prog = B.finish b in
  let ast = A.run prog in
  Alcotest.(check set) "phi merges" (Iset.of_list [ x; y ]) (A.pt_var ast m)

let test_direct_call () =
  (* foo(a) { ret = a }  main { p = &x; r = foo(p) } *)
  let b = B.create () in
  let foo = B.declare b "foo" ~params:[ "a" ] in
  let main = B.declare b "main" ~params:[] in
  let a = B.param b foo 0 in
  B.define b foo (fun fb -> B.ret fb (Some a));
  let x = B.stack_obj b ~owner:main "x" in
  let p = B.fresh_var b "p" and r = B.fresh_var b "r" in
  B.define b main (fun fb ->
      B.addr_of fb p x;
      B.call fb ~ret:r (Stmt.Direct foo) [ p ]);
  let prog = B.finish b in
  let ast = A.run prog in
  Alcotest.(check set) "param" (Iset.singleton x) (A.pt_var ast a);
  Alcotest.(check set) "return flows back" (Iset.singleton x) (A.pt_var ast r);
  Alcotest.(check (list int)) "callees" [ foo ] (A.callees ast ~fid:main ~idx:1)

let test_indirect_call () =
  let b = B.create () in
  let foo = B.declare b "foo" ~params:[ "a" ] in
  let bar = B.declare b "bar" ~params:[ "a" ] in
  let main = B.declare b "main" ~params:[] in
  B.define b foo (fun fb -> B.ret fb None);
  B.define b bar (fun fb -> B.ret fb None);
  let fo = B.func_obj b foo in
  let x = B.stack_obj b ~owner:main "x" in
  let fp = B.fresh_var b "fp" and p = B.fresh_var b "p" in
  B.define b main (fun fb ->
      B.addr_of fb fp fo;
      B.addr_of fb p x;
      B.call fb (Stmt.Indirect fp) [ p ]);
  let prog = B.finish b in
  let ast = A.run prog in
  Alcotest.(check (list int)) "indirect resolves to foo" [ foo ]
    (A.callees ast ~fid:main ~idx:2);
  Alcotest.(check set) "arg bound" (Iset.singleton x) (A.pt_var ast (B.param b foo 0));
  Alcotest.(check set) "bar param untouched" Iset.empty (A.pt_var ast (B.param b bar 0));
  (* call graph *)
  let cg = A.call_graph ast in
  Alcotest.(check bool) "cg edge" true (Fsam_graph.Digraph.has_edge cg main foo);
  Alcotest.(check bool) "no cg edge to bar" false (Fsam_graph.Digraph.has_edge cg main bar)

let test_fields () =
  (* p = &s; f = &p->f; g = &p->g; a = &x; *f = a; vf = *f; vg = *g *)
  let b = B.create () in
  let main = B.declare b "main" ~params:[] in
  let s = B.stack_obj b ~owner:main "s" and x = B.stack_obj b ~owner:main "x" in
  let p = B.fresh_var b "p"
  and f = B.fresh_var b "f"
  and g = B.fresh_var b "g"
  and a = B.fresh_var b "a"
  and vf = B.fresh_var b "vf"
  and vg = B.fresh_var b "vg" in
  B.define b main (fun fb ->
      B.addr_of fb p s;
      B.gep fb f p "f";
      B.gep fb g p "g";
      B.addr_of fb a x;
      B.store fb f a;
      B.load fb vf f;
      B.load fb vg g);
  let prog = B.finish b in
  let ast = A.run prog in
  Alcotest.(check set) "field f sees the store" (Iset.singleton x) (A.pt_var ast vf);
  Alcotest.(check set) "field g unaffected" Iset.empty (A.pt_var ast vg);
  Alcotest.(check int) "distinct field objects" 1
    (Iset.cardinal (A.pt_var ast f) + Iset.cardinal (A.pt_var ast g) - 1)

let test_array_monolithic () =
  let b = B.create () in
  let main = B.declare b "main" ~params:[] in
  let arr = B.global_obj ~is_array:true b "arr" in
  let x = B.stack_obj b ~owner:main "x" in
  let p = B.fresh_var b "p"
  and f = B.fresh_var b "f"
  and g = B.fresh_var b "g"
  and a = B.fresh_var b "a"
  and vg = B.fresh_var b "vg" in
  B.define b main (fun fb ->
      B.addr_of fb p arr;
      B.gep fb f p "0";
      B.gep fb g p "1";
      B.addr_of fb a x;
      B.store fb f a;
      B.load fb vg g);
  let prog = B.finish b in
  let ast = A.run prog in
  (* array elements are not distinguished *)
  Alcotest.(check set) "monolithic array" (Iset.singleton x) (A.pt_var ast vg)

let test_fork_handle_and_join () =
  let b = B.create () in
  let worker = B.declare b "worker" ~params:[ "arg" ] in
  let main = B.declare b "main" ~params:[] in
  B.define b worker (fun fb -> B.ret fb None);
  let tid = B.stack_obj b ~owner:main "tid" in
  let x = B.stack_obj b ~owner:main "x" in
  let h = B.fresh_var b "h" and p = B.fresh_var b "p" in
  B.define b main (fun fb ->
      B.addr_of fb h tid;
      B.addr_of fb p x;
      B.fork fb ~handle:h (Stmt.Direct worker) [ p ];
      B.join fb h);
  let prog = B.finish b in
  let ast = A.run prog in
  Alcotest.(check (list int)) "fork target" [ worker ] (A.fork_targets ast 0);
  Alcotest.(check set) "worker arg" (Iset.singleton x) (A.pt_var ast (B.param b worker 0));
  (* handle cell holds the thread object *)
  let tobj = Prog.thread_obj_of_fork prog 0 in
  Alcotest.(check set) "tid cell" (Iset.singleton tobj) (A.pt_obj ast tid);
  Alcotest.(check (list int)) "join resolves" [ 0 ] (A.join_threads ast ~fid:main ~idx:3)

let test_recursion_terminates () =
  let b = B.create () in
  let f = B.declare b "f" ~params:[ "a" ] in
  let main = B.declare b "main" ~params:[] in
  let a = B.param b f 0 in
  B.define b f (fun fb ->
      B.call fb (Stmt.Direct f) [ a ];
      B.ret fb None);
  let x = B.stack_obj b ~owner:main "x" in
  let p = B.fresh_var b "p" in
  B.define b main (fun fb ->
      B.addr_of fb p x;
      B.call fb (Stmt.Direct f) [ p ]);
  let prog = B.finish b in
  let ast = A.run prog in
  Alcotest.(check set) "recursive param" (Iset.singleton x) (A.pt_var ast a)

let test_copy_cycle_collapse () =
  (* a cycle of copies must still converge: p->q->r->p *)
  let b = B.create () in
  let main = B.declare b "main" ~params:[] in
  let x = B.stack_obj b ~owner:main "x" in
  let p = B.fresh_var b "p" and q = B.fresh_var b "q" and r = B.fresh_var b "r" in
  B.define b main (fun fb ->
      B.addr_of fb p x;
      (* build the cycle with phis to stay in SSA: the constraint graph still
         has the copy cycle p -> q -> r -> p *)
      B.phi fb q [ p; r ];
      B.phi fb r [ q ];
      B.nop fb "tie");
  let prog = B.finish b in
  let ast = A.run prog in
  Alcotest.(check set) "cycle converges q" (Iset.singleton x) (A.pt_var ast q);
  Alcotest.(check set) "cycle converges r" (Iset.singleton x) (A.pt_var ast r)

let test_alias_targets () =
  let b = B.create () in
  let main = B.declare b "main" ~params:[] in
  let x = B.stack_obj b ~owner:main "x" and y = B.stack_obj b ~owner:main "y" in
  let p = B.fresh_var b "p" and q = B.fresh_var b "q" and r = B.fresh_var b "r" in
  B.define b main (fun fb ->
      B.addr_of fb p x;
      B.phi fb q [ p ];
      B.addr_of fb r y);
  let prog = B.finish b in
  let ast = A.run prog in
  Alcotest.(check set) "p,q alias on x" (Iset.singleton x) (A.alias_targets ast p q);
  Alcotest.(check set) "p,r no alias" Iset.empty (A.alias_targets ast p r)

let test_modref () =
  (* callee writes *p, caller's summary must include it transitively *)
  let b = B.create () in
  let leaf = B.declare b "leaf" ~params:[ "lp"; "lq" ] in
  let mid = B.declare b "mid" ~params:[ "mp"; "mq" ] in
  let main = B.declare b "main" ~params:[] in
  let lp = B.param b leaf 0 and lq = B.param b leaf 1 in
  B.define b leaf (fun fb -> B.store fb lp lq);
  let mp = B.param b mid 0 and mq = B.param b mid 1 in
  B.define b mid (fun fb -> B.call fb (Stmt.Direct leaf) [ mp; mq ]);
  let x = B.stack_obj b ~owner:main "x" and y = B.stack_obj b ~owner:main "y" in
  let p = B.fresh_var b "p" and q = B.fresh_var b "q" in
  B.define b main (fun fb ->
      B.addr_of fb p x;
      B.addr_of fb q y;
      B.call fb (Stmt.Direct mid) [ p; q ]);
  let prog = B.finish b in
  let ast = A.run prog in
  let mr = Modref.compute prog ast in
  Alcotest.(check bool) "leaf mods x" true (Iset.mem x (Modref.mod_of mr leaf));
  Alcotest.(check bool) "mid mods x transitively" true (Iset.mem x (Modref.mod_of mr mid));
  Alcotest.(check bool) "main mods x transitively" true (Iset.mem x (Modref.mod_of mr main));
  Alcotest.(check bool) "callsite mod" true
    (Iset.mem x (Modref.callsite_mod mr ast ~fid:main ~idx:2))

let test_modref_through_fork () =
  let b = B.create () in
  let worker = B.declare b "worker" ~params:[ "wp" ] in
  let main = B.declare b "main" ~params:[] in
  let wp = B.param b worker 0 in
  let g = B.global_obj b "g" in
  B.define b worker (fun fb ->
      let t = B.fresh_var b "t" in
      B.addr_of fb t g;
      B.store fb wp t);
  let x = B.stack_obj b ~owner:main "x" in
  let p = B.fresh_var b "p" in
  B.define b main (fun fb ->
      B.addr_of fb p x;
      B.fork fb (Stmt.Direct worker) [ p ]);
  let prog = B.finish b in
  let ast = A.run prog in
  let mr = Modref.compute prog ast in
  Alcotest.(check bool) "spawner inherits spawnee mod" true
    (Iset.mem x (Modref.mod_of mr main))

let suite =
  [
    Alcotest.test_case "addr/copy" `Quick test_addr_copy;
    Alcotest.test_case "load/store" `Quick test_load_store;
    Alcotest.test_case "flow-insensitive merge" `Quick test_flow_insensitive_merge;
    Alcotest.test_case "phi" `Quick test_phi;
    Alcotest.test_case "direct call" `Quick test_direct_call;
    Alcotest.test_case "indirect call" `Quick test_indirect_call;
    Alcotest.test_case "field sensitivity" `Quick test_fields;
    Alcotest.test_case "arrays monolithic" `Quick test_array_monolithic;
    Alcotest.test_case "fork handle and join" `Quick test_fork_handle_and_join;
    Alcotest.test_case "recursion terminates" `Quick test_recursion_terminates;
    Alcotest.test_case "copy cycle collapse" `Quick test_copy_cycle_collapse;
    Alcotest.test_case "alias targets" `Quick test_alias_targets;
    Alcotest.test_case "modref transitive" `Quick test_modref;
    Alcotest.test_case "modref through fork" `Quick test_modref_through_fork;
  ]
