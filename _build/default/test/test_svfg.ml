(* Structural tests of the sparse value-flow graph — in particular the
   thread-oblivious edges of paper Figure 6 and the context machinery. *)

open Fsam_ir
module B = Builder
module A = Fsam_andersen.Solver
module Mta = Fsam_mta
module Svfg = Fsam_memssa.Svfg

let build_svfg ?config prog =
  let ast = A.run prog in
  let mr = Fsam_andersen.Modref.compute prog ast in
  let icfg = Mta.Icfg.build prog ast in
  let tm = Mta.Threads.build prog ast icfg in
  let mhp = Mta.Mhp.compute tm in
  let lk = Mta.Locks.compute prog ast tm in
  let pcg = Mta.Pcg.compute tm icfg in
  (Svfg.build ?config prog ast mr icfg tm mhp lk pcg, ast)

(* Figure 6:
   main: s1: *p = a1; fork(t, foo); s2: *p = a2; join(t); s3: c = *p
   foo:  s4: *q = a3; s5: d = *q                      (p, q both point to o) *)
type fig6 = {
  prog : Prog.t;
  o : int;
  s1 : int;
  s2 : int;
  s3 : int;
  s4 : int;
  s5 : int;
  foo : int;
  c : Stmt.var;
}

let build_fig6 () =
  let b = B.create () in
  let main = B.declare b "main" ~params:[] in
  let foo = B.declare b "foo" ~params:[ "q"; "a3" ] in
  let o = B.global_obj b "o" in
  let o1 = B.global_obj b "o1"
  and o2 = B.global_obj b "o2"
  and o3 = B.global_obj b "o3" in
  let q = B.param b foo 0 and a3 = B.param b foo 1 in
  let d = B.fresh_var b "d" in
  B.define b foo (fun fb ->
      B.store fb q a3;
      B.load fb d q);
  let tid = B.stack_obj b ~owner:main "tid" in
  let p = B.fresh_var b "p"
  and a1 = B.fresh_var b "a1"
  and a2 = B.fresh_var b "a2"
  and va3 = B.fresh_var b "va3"
  and h = B.fresh_var b "h"
  and c = B.fresh_var b "c" in
  B.define b main (fun fb ->
      B.addr_of fb p o;
      B.addr_of fb a1 o1;
      B.addr_of fb a2 o2;
      B.addr_of fb va3 o3;
      B.addr_of fb h tid;
      B.store fb p a1;
      (* s1 *)
      B.fork fb ~handle:h (Stmt.Direct foo) [ p; va3 ];
      B.store fb p a2;
      (* s2 *)
      B.join fb h;
      B.load fb c p (* s3 *));
  let prog = B.finish b in
  let gid_of_stmt fid pred =
    let r = ref (-1) in
    Func.iter_stmts (Prog.func prog fid) (fun i s ->
        if pred s && !r < 0 then r := Prog.gid prog ~fid ~idx:i);
    !r
  in
  let nth_store fid n =
    let cnt = ref 0 and r = ref (-1) in
    Func.iter_stmts (Prog.func prog fid) (fun i s ->
        match s with
        | Stmt.Store _ ->
          if !cnt = n then r := Prog.gid prog ~fid ~idx:i;
          incr cnt
        | _ -> ());
    !r
  in
  {
    prog;
    o;
    s1 = nth_store main 0;
    s2 = nth_store main 1;
    s3 = gid_of_stmt main (function Stmt.Load _ -> true | _ -> false);
    s4 = nth_store foo 0;
    s5 = gid_of_stmt foo (function Stmt.Load _ -> true | _ -> false);
    foo;
    c;
  }

let has_o_edge svfg o src dst =
  match (Svfg.node_id svfg (Svfg.Stmt_node src), Svfg.node_id svfg (Svfg.Stmt_node dst)) with
  | Some a, Some b -> List.exists (fun (o', p) -> o' = o && p = a) (Svfg.o_preds svfg b)
  | _ -> false

(* transitive reachability over o-labelled edges *)
let o_reaches svfg o src dst =
  match (Svfg.node_id svfg (Svfg.Stmt_node src), Svfg.node_id svfg (Svfg.Stmt_node dst)) with
  | Some a, Some b ->
    let seen = Hashtbl.create 16 in
    let rec go n =
      n = b
      || (not (Hashtbl.mem seen n))
         && begin
              Hashtbl.replace seen n ();
              List.exists (fun (o', m) -> o' = o && go m) (Svfg.o_succs svfg n)
            end
    in
    go a
  | _ -> false

let test_fig6_edges () =
  let f6 = build_fig6 () in
  let svfg, _ast = build_svfg f6.prog in
  (* fork-bypass (Figure 6(c)): s1 ↪ s2 directly, around foo *)
  Alcotest.(check bool) "s1 -> s2 fork bypass" true (has_o_edge svfg f6.o f6.s1 f6.s2);
  (* sequential chain past the join (6(b)): s2 ↪ s3 *)
  Alcotest.(check bool) "s2 -> s3 sequential" true (has_o_edge svfg f6.o f6.s2 f6.s3);
  (* join edge (6(d)): s4's def reaches s3 (through foo's formal-out) *)
  Alcotest.(check bool) "s4 reaches s3 (join edge)" true (o_reaches svfg f6.o f6.s4 f6.s3);
  (* the value entering foo comes from s1 (through its formal-in) *)
  Alcotest.(check bool) "s1 reaches s4" true (o_reaches svfg f6.o f6.s1 f6.s4);
  (* thread-aware (example 2): s2 ↪ s4 and s2 ↪ s5 *)
  Alcotest.(check bool) "s2 -> s4 thread-aware" true (has_o_edge svfg f6.o f6.s2 f6.s4);
  Alcotest.(check bool) "s2 -> s5 thread-aware" true (has_o_edge svfg f6.o f6.s2 f6.s5);
  (* but NOT s1 -> s3 directly: the bypass dies at the join *)
  Alcotest.(check bool) "no direct s1 -> s3" false (has_o_edge svfg f6.o f6.s1 f6.s3)

let test_fig6_pt_results () =
  let f6 = build_fig6 () in
  let d = Fsam_core.Driver.run f6.prog in
  (* c can see s2's value (o2), s4's value (o3), and — since s2 races with
     s4, both weak — s1's value (o1) survives too *)
  let names = Fsam_core.Driver.pt_names d f6.c in
  Alcotest.(check bool) "o2 visible" true (List.mem "o2" names);
  Alcotest.(check bool) "o3 visible (thread effect at join)" true (List.mem "o3" names)

let test_no_thread_aware_when_disabled () =
  let f6 = build_fig6 () in
  let config = { Svfg.default_config with thread_aware = false } in
  let svfg, _ = build_svfg ~config f6.prog in
  Alcotest.(check int) "no thread-aware edges" 0 (Svfg.n_thread_aware_edges svfg);
  Alcotest.(check bool) "no s2 -> s4" false (has_o_edge svfg f6.o f6.s2 f6.s4)

let test_no_value_flow_superset () =
  let f6 = build_fig6 () in
  let svfg_full, _ = build_svfg f6.prog in
  let svfg_nvf, _ = build_svfg ~config:{ Svfg.default_config with use_value_flow = false } f6.prog in
  Alcotest.(check bool) "no-value-flow has at least as many thread edges" true
    (Svfg.n_thread_aware_edges svfg_nvf >= Svfg.n_thread_aware_edges svfg_full)

(* -- contexts -------------------------------------------------------------- *)

let test_ctx_store () =
  let s = Mta.Ctx.create_store () in
  let c1 = Mta.Ctx.push s Mta.Ctx.empty 5 in
  let c2 = Mta.Ctx.push s c1 9 in
  let c2' = Mta.Ctx.push s (Mta.Ctx.push s Mta.Ctx.empty 5) 9 in
  Alcotest.(check bool) "hash-consed" true (c2 = c2');
  Alcotest.(check (list int)) "to_list" [ 5; 9 ] (Mta.Ctx.to_list s c2);
  Alcotest.(check (option int)) "peek" (Some 9) (Mta.Ctx.peek s c2);
  Alcotest.(check (option int)) "pop" (Some c1) (Mta.Ctx.pop s c2);
  Alcotest.(check int) "depth" 2 (Mta.Ctx.depth s c2);
  Alcotest.(check (option int)) "pop empty" None (Mta.Ctx.pop s Mta.Ctx.empty)

(* -- icfg ------------------------------------------------------------------- *)

let test_icfg_call_edges () =
  let b = B.create () in
  let main = B.declare b "main" ~params:[] in
  let callee = B.declare b "callee" ~params:[] in
  B.define b callee (fun fb -> B.nop fb "body");
  B.define b main (fun fb ->
      B.call fb (Stmt.Direct callee) [];
      B.nop fb "after");
  let prog = B.finish b in
  let ast = A.run prog in
  let icfg = Mta.Icfg.build prog ast in
  let call_gid = Prog.gid prog ~fid:main ~idx:0 in
  let callee_entry = Mta.Icfg.entry_gid icfg callee in
  let succs = Mta.Icfg.succs icfg call_gid in
  Alcotest.(check bool) "call edge to callee entry" true
    (List.exists (function Mta.Icfg.Call _, v -> v = callee_entry | _ -> false) succs);
  Alcotest.(check bool) "no intra fallthrough at resolved call" false
    (List.exists (function Mta.Icfg.Intra, _ -> true | _ -> false) succs);
  (* return edge from callee exit to the statement after the call *)
  let after_gid = Prog.gid prog ~fid:main ~idx:1 in
  let exits = Mta.Icfg.exit_gids icfg callee in
  Alcotest.(check bool) "ret edge" true
    (List.exists
       (fun ex ->
         List.exists
           (function Mta.Icfg.Ret cs, v -> cs = call_gid && v = after_gid | _ -> false)
           (Mta.Icfg.succs icfg ex))
       exits)

let test_icfg_fork_no_call_edge () =
  let b = B.create () in
  let main = B.declare b "main" ~params:[] in
  let w = B.declare b "w" ~params:[] in
  B.define b w (fun fb -> B.nop fb "body");
  B.define b main (fun fb ->
      B.fork fb (Stmt.Direct w) [];
      B.nop fb "after");
  let prog = B.finish b in
  let ast = A.run prog in
  let icfg = Mta.Icfg.build prog ast in
  let fork_gid = Prog.gid prog ~fid:main ~idx:0 in
  let succs = Mta.Icfg.succs icfg fork_gid in
  (* "There are no outgoing [interprocedural] edges for a fork or join site" *)
  Alcotest.(check bool) "fork has only intra successors" true
    (List.for_all (function Mta.Icfg.Intra, _ -> true | _ -> false) succs)

let test_icfg_unresolved_call_falls_through () =
  let b = B.create () in
  let main = B.declare b "main" ~params:[] in
  let fp = B.fresh_var b "fp" in
  B.define b main (fun fb ->
      B.call fb (Stmt.Indirect fp) [];
      B.nop fb "after");
  let prog = B.finish b in
  let ast = A.run prog in
  let icfg = Mta.Icfg.build prog ast in
  let call_gid = Prog.gid prog ~fid:main ~idx:0 in
  Alcotest.(check bool) "unresolved call keeps fallthrough" true
    (List.exists
       (function Mta.Icfg.Intra, _ -> true | _ -> false)
       (Mta.Icfg.succs icfg call_gid))

let suite =
  [
    Alcotest.test_case "figure 6 def-use edges" `Quick test_fig6_edges;
    Alcotest.test_case "figure 6 pt results" `Quick test_fig6_pt_results;
    Alcotest.test_case "thread-aware disabled" `Quick test_no_thread_aware_when_disabled;
    Alcotest.test_case "no-value-flow superset of edges" `Quick test_no_value_flow_superset;
    Alcotest.test_case "context store" `Quick test_ctx_store;
    Alcotest.test_case "icfg call/ret edges" `Quick test_icfg_call_edges;
    Alcotest.test_case "icfg fork has no call edge" `Quick test_icfg_fork_no_call_edge;
    Alcotest.test_case "icfg unresolved call" `Quick test_icfg_unresolved_call_falls_through;
  ]
