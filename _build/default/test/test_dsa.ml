open Fsam_dsa

let test_bitvec_basics () =
  let b = Bitvec.create () in
  Alcotest.(check bool) "initially unset" false (Bitvec.get b 5);
  Bitvec.set b 5;
  Bitvec.set b 1000;
  Alcotest.(check bool) "set 5" true (Bitvec.get b 5);
  Alcotest.(check bool) "set 1000 (grown)" true (Bitvec.get b 1000);
  Alcotest.(check bool) "999 unset" false (Bitvec.get b 999);
  Alcotest.(check int) "cardinal" 2 (Bitvec.cardinal b);
  Bitvec.clear b 5;
  Alcotest.(check bool) "cleared" false (Bitvec.get b 5);
  Alcotest.(check bool) "set_if_unset true" true (Bitvec.set_if_unset b 7);
  Alcotest.(check bool) "set_if_unset false" false (Bitvec.set_if_unset b 7)

let test_bitvec_union () =
  let a = Bitvec.create () and b = Bitvec.create () in
  Bitvec.set a 1;
  Bitvec.set b 2;
  Bitvec.set b 300;
  Alcotest.(check bool) "union changes" true (Bitvec.union_into ~dst:a ~src:b);
  Alcotest.(check bool) "union idempotent" false (Bitvec.union_into ~dst:a ~src:b);
  Alcotest.(check (list int)) "members" [ 1; 2; 300 ] (Iset.elements (Bitvec.to_iset a))

let test_bitvec_iter () =
  let b = Bitvec.create () in
  List.iter (Bitvec.set b) [ 0; 7; 8; 63; 64; 129 ];
  let acc = ref [] in
  Bitvec.iter_set (fun i -> acc := i :: !acc) b;
  Alcotest.(check (list int)) "iter_set ascending" [ 0; 7; 8; 63; 64; 129 ] (List.rev !acc);
  Bitvec.clear_all b;
  Alcotest.(check int) "clear_all" 0 (Bitvec.cardinal b)

let test_uf () =
  let u = Uf.create 10 in
  Alcotest.(check bool) "initially apart" false (Uf.same u 1 2);
  ignore (Uf.union u 1 2);
  ignore (Uf.union u 3 4);
  Alcotest.(check bool) "joined" true (Uf.same u 1 2);
  Alcotest.(check bool) "still apart" false (Uf.same u 2 3);
  ignore (Uf.union u 2 4);
  Alcotest.(check bool) "transitively joined" true (Uf.same u 1 3);
  Alcotest.(check int) "class count" 7 (Uf.n_classes u)

let test_uf_union_to () =
  let u = Uf.create 5 in
  let r = Uf.union_to u ~keep:2 ~absorb:4 in
  Alcotest.(check int) "keeps representative" 2 r;
  Alcotest.(check int) "find absorbed" 2 (Uf.find u 4);
  (* growing on demand *)
  Alcotest.(check int) "fresh key is own root" 50 (Uf.find u 50)

let test_vec () =
  let v = Vec.create () in
  Alcotest.(check int) "push returns index" 0 (Vec.push v "a");
  Alcotest.(check int) "second index" 1 (Vec.push v "b");
  Vec.set v 0 "z";
  Alcotest.(check string) "set/get" "z" (Vec.get v 0);
  Alcotest.(check (list string)) "to_list" [ "z"; "b" ] (Vec.to_list v);
  Alcotest.check_raises "oob" (Invalid_argument "Vec: index 5 out of bounds (len 2)")
    (fun () -> ignore (Vec.get v 5))

let prop_uf_model =
  (* union-find agrees with a naive equivalence closure *)
  QCheck.Test.make ~name:"union-find vs naive closure"
    QCheck.(list_of_size Gen.(0 -- 30) (pair (int_bound 15) (int_bound 15)))
    (fun pairs ->
      let u = Uf.create 16 in
      List.iter (fun (a, b) -> ignore (Uf.union u a b)) pairs;
      (* naive: iterate closure *)
      let cls = Array.init 16 (fun i -> i) in
      let rec croot i = if cls.(i) = i then i else croot cls.(i) in
      List.iter
        (fun (a, b) ->
          let ra = croot a and rb = croot b in
          if ra <> rb then cls.(ra) <- rb)
        pairs;
      let ok = ref true in
      for i = 0 to 15 do
        for j = 0 to 15 do
          if Uf.same u i j <> (croot i = croot j) then ok := false
        done
      done;
      !ok)

let suite =
  [
    Alcotest.test_case "bitvec basics" `Quick test_bitvec_basics;
    Alcotest.test_case "bitvec union" `Quick test_bitvec_union;
    Alcotest.test_case "bitvec iter/clear" `Quick test_bitvec_iter;
    Alcotest.test_case "union-find" `Quick test_uf;
    Alcotest.test_case "union-find union_to/grow" `Quick test_uf_union_to;
    Alcotest.test_case "vec" `Quick test_vec;
    QCheck_alcotest.to_alcotest prop_uf_model;
  ]
