(* MiniC pretty-printer: parse . print = identity (on already-desugared
   ASTs), checked on hand-written sources and on randomly generated ASTs. *)

module F = Fsam_frontend
open F.Ast

let reparse src = F.Parser.parse_string src

let roundtrip_src src =
  let ast1 = reparse src in
  let printed = F.Pretty.to_string ast1 in
  let ast2 =
    try reparse printed
    with e ->
      Alcotest.failf "re-parse failed: %s\nprinted:\n%s" (Printexc.to_string e) printed
  in
  if ast1 <> ast2 then Alcotest.failf "round-trip mismatch; printed:\n%s" printed

let test_roundtrip_samples () =
  List.iter roundtrip_src
    [
      "int main() { return 0; }";
      {| struct S { int f; int *g; };
         struct S s;
         int *gp = &s;
         int main() { int *p; p = &s.f; p = gp->g; return 0; } |};
      {| int arr[4];
         thread_t tid[2];
         lock_t m;
         void w(int *a) { lock(&m); *a = a; unlock(&m); }
         int main() {
           int i;
           while (i < 2) { fork(&tid[i], w, arr[0]); }
           if (i == 0) { join(&tid[0]); } else { i = i + 1; }
           return 0;
         } |};
      "int main() { int *p; p = malloc(8); fork(null, main); return 0; }";
    ]

(* random AST generation for the round-trip property *)
let gen_ast seed =
  let rng = Random.State.make [| seed |] in
  let pick l = List.nth l (Random.State.int rng (List.length l)) in
  let rec gen_expr depth =
    if depth <= 0 then pick [ Eid "x"; Eid "y"; Eint 3; Enull; Enondet; Emalloc ]
    else
      match Random.State.int rng 8 with
      | 0 -> Eaddr (Eid (pick [ "x"; "g" ]))
      | 1 -> Ederef (gen_expr (depth - 1))
      | 2 -> Efield (gen_expr (depth - 1), pick [ "f"; "g" ], Random.State.bool rng)
      | 3 -> Eindex (Eid "arr", gen_expr (depth - 1))
      | 4 -> Ecall (Eid "h", [ gen_expr (depth - 1) ])
      | 5 -> Ebinop ("'+'", gen_expr (depth - 1), gen_expr (depth - 1))
      | 6 -> Ebinop ("'=='", gen_expr (depth - 1), gen_expr (depth - 1))
      | _ -> gen_expr 0
  in
  let rec gen_stmt depth =
    match Random.State.int rng 9 with
    | 0 -> Sdecl (Tptr Tint, Printf.sprintf "v%d" (Random.State.int rng 100), None)
    | 1 -> Sassign (Eid "x", gen_expr 2)
    | 2 -> Sexpr (gen_expr 2)
    | 3 when depth < 2 ->
      Sif (gen_expr 1, [ gen_stmt (depth + 1) ], [ gen_stmt (depth + 1) ])
    | 4 when depth < 2 -> Swhile (gen_expr 1, [ gen_stmt (depth + 1) ])
    | 5 -> Sreturn (Some (gen_expr 1))
    | 6 -> Sfork (Some (Eaddr (Eid "tid")), Eid "h", [ gen_expr 1 ])
    | 7 -> Slock (Eaddr (Eid "m"))
    | _ -> Sjoin (Eaddr (Eid "tid"))
  in
  [
    Dglobal (Tptr Tint, "g", None);
    Dglobal (Tarray (Tint, 4), "arr", None);
    Dglobal (Tlock, "m", None);
    Dglobal (Tthread, "tid", None);
    Dstruct ("S", [ (Tint, "f"); (Tptr Tint, "g") ]);
    Dfun
      {
        fname = "h";
        ret_ty = Tptr Tint;
        params = [ (Tptr Tint, "x"); (Tptr Tint, "y") ];
        body = List.init 5 (fun _ -> gen_stmt 0);
      };
    Dfun { fname = "main"; ret_ty = Tint; params = []; body = List.init 8 (fun _ -> gen_stmt 0) };
  ]

let test_roundtrip_random () =
  for seed = 0 to 60 do
    let ast = gen_ast seed in
    let printed = F.Pretty.to_string ast in
    let ast2 =
      try reparse printed
      with e ->
        Alcotest.failf "seed %d: re-parse failed: %s\n%s" seed (Printexc.to_string e) printed
    in
    if ast <> ast2 then Alcotest.failf "seed %d: round-trip mismatch:\n%s" seed printed
  done

let suite =
  [
    Alcotest.test_case "round-trip samples" `Quick test_roundtrip_samples;
    Alcotest.test_case "round-trip random ASTs" `Quick test_roundtrip_random;
  ]
