(* Integration: the shipped MiniC sample programs compile and analyze with
   the expected results. The files are declared as test dependencies in
   test/dune, so they are available relative to the test's working
   directory. *)

module D = Fsam_core.Driver

let compile_file path =
  let ic = open_in_bin path in
  let src =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  Fsam_frontend.Lower.compile_string src

let dir = "../examples/minic/"

let pt_of d prog prefix =
  let best = ref [] in
  for v = 0 to Fsam_ir.Prog.n_vars prog - 1 do
    let n = Fsam_ir.Prog.var_name prog v in
    if
      n = prefix
      || String.length n > String.length prefix
         && String.sub n 0 (String.length prefix + 1) = prefix ^ "#"
    then begin
      let names = D.pt_names d v in
      if names <> [] then best := names
    end
  done;
  !best

let test_fig1a_file () =
  let prog = compile_file (dir ^ "fig1a.c") in
  let d = D.run prog in
  Alcotest.(check (list string)) "pt(c) = {y, z}" [ "y"; "z" ] (pt_of d prog "c")

let test_wordcount_file () =
  let prog = compile_file (dir ^ "wordcount.c") in
  let d = D.run prog in
  Alcotest.(check (list string)) "pt(final) = {result}" [ "result" ] (pt_of d prog "final");
  Alcotest.(check int) "no races (locked + joined)" 0
    (List.length (Fsam_core.Races.detect d))

let test_taskqueue_file () =
  let prog = compile_file (dir ^ "taskqueue.c") in
  let d = D.run prog in
  (* dequeue returns the enqueued tasks *)
  let t = pt_of d prog "t" in
  Alcotest.(check bool) "dequeues task_a or task_b" true
    (List.mem "task_a" t || List.mem "task_b" t);
  Alcotest.(check int) "queue fully protected: no races" 0
    (List.length (Fsam_core.Races.detect d));
  Alcotest.(check int) "single lock: no deadlock" 0
    (List.length (Fsam_core.Deadlocks.detect d))

let test_deadlock_file () =
  let prog = compile_file (dir ^ "deadlock.c") in
  let d = D.run prog in
  Alcotest.(check bool) "AB-BA reported" true
    (List.length (Fsam_core.Deadlocks.detect d) >= 1)

let suite =
  [
    Alcotest.test_case "fig1a.c" `Quick test_fig1a_file;
    Alcotest.test_case "wordcount.c" `Quick test_wordcount_file;
    Alcotest.test_case "taskqueue.c" `Quick test_taskqueue_file;
    Alcotest.test_case "deadlock.c" `Quick test_deadlock_file;
  ]
