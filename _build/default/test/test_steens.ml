(* Steensgaard's unification-based analysis: coarser than (a superset of)
   Andersen's, and still sound against the interpreter. *)

open Fsam_ir
module B = Builder
module S = Fsam_andersen.Steens
module A = Fsam_andersen.Solver
module Iset = Fsam_dsa.Iset

let test_basics () =
  (* p = &x; q = p; r = &y : pt(q) ∋ x, and r stays separate *)
  let b = B.create () in
  let main = B.declare b "main" ~params:[] in
  let x = B.stack_obj b ~owner:main "x" and y = B.stack_obj b ~owner:main "y" in
  let p = B.fresh_var b "p" and q = B.fresh_var b "q" and r = B.fresh_var b "r" in
  B.define b main (fun fb ->
      B.addr_of fb p x;
      B.copy fb q p;
      B.addr_of fb r y);
  let st = S.run (B.finish b) in
  Alcotest.(check bool) "q -> x" true (Iset.mem x (S.pt_var st q));
  Alcotest.(check bool) "r -> y" true (Iset.mem y (S.pt_var st r));
  Alcotest.(check bool) "r not -> x" false (Iset.mem x (S.pt_var st r))

let test_unification_merges () =
  (* the classic Steensgaard imprecision: a = &x; b = &y; c = a; c = b makes
     pt(a) and pt(b) merge (Andersen keeps them apart) *)
  let b = B.create () in
  let main = B.declare b "main" ~params:[] in
  let x = B.stack_obj b ~owner:main "x" and y = B.stack_obj b ~owner:main "y" in
  let va = B.fresh_var b "a" and vb = B.fresh_var b "b" and vc = B.fresh_var b "c" in
  B.define b main (fun fb ->
      B.addr_of fb va x;
      B.addr_of fb vb y;
      B.phi fb vc [ va; vb ]);
  let prog = B.finish b in
  let st = S.run prog in
  let ast = A.run prog in
  Alcotest.(check bool) "steens merges a" true
    (Iset.mem y (S.pt_var st va) && Iset.mem x (S.pt_var st va));
  Alcotest.(check bool) "andersen keeps a precise" false (Iset.mem y (A.pt_var ast va))

let test_coarser_than_andersen_random () =
  for seed = 0 to 19 do
    let prog = Fsam_workloads.Rand_prog.generate ~seed ~size:24 () in
    let st = S.run prog in
    let ast = A.run prog in
    for v = 0 to Prog.n_vars prog - 1 do
      if not (Iset.subset (A.pt_var ast v) (S.pt_var st v)) then
        Alcotest.failf "seed %d: andersen ⊄ steensgaard on %s (%s vs %s)" seed
          (Prog.var_name prog v)
          (Format.asprintf "%a" Iset.pp (A.pt_var ast v))
          (Format.asprintf "%a" Iset.pp (S.pt_var st v))
    done
  done

let test_sound_vs_interpreter () =
  for seed = 0 to 19 do
    let prog = Fsam_workloads.Rand_prog.generate ~seed ~size:24 () in
    let st = S.run prog in
    for sched = 0 to 4 do
      let r = Fsam_interp.Interp.run ~seed:sched prog in
      List.iter
        (fun o ->
          if not (Iset.mem o.Fsam_interp.Interp.obs_obj (S.pt_var st o.Fsam_interp.Interp.obs_var))
          then
            Alcotest.failf "seed %d unsound: %s" seed
              (Prog.var_name prog o.Fsam_interp.Interp.obs_var))
        r.Fsam_interp.Interp.observations
    done
  done

let test_fork_handles () =
  let b = B.create () in
  let worker = B.declare b "worker" ~params:[] in
  let main = B.declare b "main" ~params:[] in
  B.define b worker (fun fb -> B.ret fb None);
  let tid = B.stack_obj b ~owner:main "tid" in
  let h = B.fresh_var b "h" in
  B.define b main (fun fb ->
      B.addr_of fb h tid;
      B.fork fb ~handle:h (Stmt.Direct worker) []);
  let prog = B.finish b in
  let st = S.run prog in
  let theta = Prog.thread_obj_of_fork prog 0 in
  Alcotest.(check bool) "handle cell holds the thread object" true
    (Iset.mem theta (S.pt_obj st tid))

let suite =
  [
    Alcotest.test_case "basics" `Quick test_basics;
    Alcotest.test_case "unification merges" `Quick test_unification_merges;
    Alcotest.test_case "coarser than andersen (random)" `Slow test_coarser_than_andersen_random;
    Alcotest.test_case "sound vs interpreter (random)" `Slow test_sound_vs_interpreter;
    Alcotest.test_case "fork handles" `Quick test_fork_handles;
  ]
