open Fsam_ir
module B = Builder

(* A small straight-line program:  main { p = &x; q = p; *q = r } *)
let build_simple () =
  let b = B.create () in
  let main = B.declare b "main" ~params:[] in
  let x = B.stack_obj b ~owner:main "x" in
  let p = B.fresh_var b "p" and q = B.fresh_var b "q" and r = B.fresh_var b "r" in
  B.define b main (fun fb ->
      B.addr_of fb p x;
      B.copy fb q p;
      B.store fb q r);
  B.finish b

let test_builder_basic () =
  let p = build_simple () in
  Alcotest.(check int) "one function" 1 (Prog.n_funcs p);
  let main = Prog.func p (Prog.main_fid p) in
  (* 3 stmts + auto-appended return *)
  Alcotest.(check int) "stmt count" 4 (Func.n_stmts main);
  (match Func.stmt main 3 with
  | Stmt.Return None -> ()
  | _ -> Alcotest.fail "expected trailing return");
  Alcotest.(check (list int)) "fallthrough" [ 1 ] main.Func.succ.(0);
  Alcotest.(check (list int)) "exits" [ 3 ] main.Func.exits;
  match Validate.check p with
  | Ok () -> ()
  | Error es -> Alcotest.fail (String.concat "; " es)

let test_builder_control_flow () =
  let b = B.create () in
  let main = B.declare b "main" ~params:[] in
  let x = B.stack_obj b ~owner:main "x" and y = B.stack_obj b ~owner:main "y" in
  let p = B.fresh_var b "p" and q = B.fresh_var b "q" in
  B.define b main (fun fb ->
      B.if_ fb
        ~then_:(fun fb -> B.addr_of fb p x)
        ~else_:(fun fb -> B.addr_of fb q y);
      B.nop fb "after");
  let p = B.finish b in
  Validate.check_exn p;
  let main = Prog.func p (Prog.main_fid p) in
  (* branch has two successors *)
  Alcotest.(check int) "branch out-degree" 2 (List.length main.Func.succ.(0))

let test_builder_loop () =
  let b = B.create () in
  let main = B.declare b "main" ~params:[] in
  let x = B.stack_obj b ~owner:main "x" in
  let p = B.fresh_var b "p" in
  B.define b main (fun fb -> B.while_ fb (fun fb -> B.addr_of fb p x));
  let prog = B.finish b in
  Validate.check_exn ~ssa:false prog;
  let main = Prog.func prog (Prog.main_fid prog) in
  let g = Func.cfg main in
  (* the loop body can reach the loop head again *)
  Alcotest.(check bool) "back edge" true (Fsam_graph.Reach.reaches g 1 0)

let test_fork_sites () =
  let b = B.create () in
  let main = B.declare b "main" ~params:[] in
  let worker = B.declare b "worker" ~params:[] in
  B.define b worker (fun fb -> B.ret fb None);
  let h = B.fresh_var b "h" and tid = B.stack_obj b ~owner:main "tid" in
  B.define b main (fun fb ->
      B.addr_of fb h tid;
      B.fork fb ~handle:h (Stmt.Direct worker) [];
      B.join fb h);
  let p = B.finish b in
  Validate.check_exn p;
  Alcotest.(check int) "one fork" 1 (Prog.n_forks p);
  let fid, idx = Prog.fork_site p 0 in
  Alcotest.(check int) "fork in main" (Prog.main_fid p) fid;
  Alcotest.(check int) "fork at stmt 1" 1 idx;
  let tobj = Prog.thread_obj_of_fork p 0 in
  Alcotest.(check bool) "thread object kind" true (Memobj.is_thread (Prog.obj p tobj));
  Alcotest.(check (option int)) "reverse lookup" (Some 0) (Prog.fork_of_thread_obj p tobj)

let test_field_objects () =
  let p = build_simple () in
  let n0 = Prog.n_objs p in
  let x = 0 in
  let f1 = Prog.field_obj p ~base:x ~field:"f" in
  let f1' = Prog.field_obj p ~base:x ~field:"f" in
  let f2 = Prog.field_obj p ~base:x ~field:"g" in
  Alcotest.(check int) "field obj memoised" f1 f1';
  Alcotest.(check bool) "distinct fields distinct" true (f1 <> f2);
  Alcotest.(check int) "table grew by 2" (n0 + 2) (Prog.n_objs p);
  (* fields of fields flatten to the root *)
  let nested = Prog.field_obj p ~base:f1 ~field:"g" in
  Alcotest.(check int) "nested flattens" f2 nested;
  Alcotest.(check bool) "fields_of" true
    (List.sort compare (Prog.fields_of p x) = List.sort compare [ f1; f2 ])

let test_validate_catches_ssa_violation () =
  let b = B.create () in
  let main = B.declare b "main" ~params:[] in
  let x = B.stack_obj b ~owner:main "x" and y = B.stack_obj b ~owner:main "y" in
  let p = B.fresh_var b "p" in
  B.define b main (fun fb ->
      B.addr_of fb p x;
      B.addr_of fb p y);
  let prog = B.finish b in
  (match Validate.check prog with
  | Ok () -> Alcotest.fail "expected SSA violation"
  | Error _ -> ());
  match Validate.check ~ssa:false prog with
  | Ok () -> ()
  | Error es -> Alcotest.fail ("non-ssa check should pass: " ^ String.concat ";" es)

let test_gid_roundtrip () =
  let b = B.create () in
  let foo = B.declare b "foo" ~params:[] in
  let main = B.declare b "main" ~params:[] in
  B.define b foo (fun fb ->
      B.nop fb "a";
      B.nop fb "b");
  B.define b main (fun fb -> B.nop fb "c");
  let p = B.finish b in
  let total = Prog.n_stmts p in
  Alcotest.(check int) "total stmts" 5 total;
  (* foo: a b ret; main: c ret *)
  for g = 0 to total - 1 do
    let fid, idx = Prog.of_gid p g in
    Alcotest.(check int) "gid roundtrip" g (Prog.gid p ~fid ~idx)
  done;
  Alcotest.(check int) "func_of_gid main" main (Prog.func_of_gid p 4)

(* SSA transform ---------------------------------------------------------- *)

let test_ssa_diamond () =
  (* p defined in both branches, used after: expect a phi *)
  let b = B.create () in
  let main = B.declare b "main" ~params:[] in
  let x = B.stack_obj b ~owner:main "x" and y = B.stack_obj b ~owner:main "y" in
  let p = B.fresh_var b "p" and q = B.fresh_var b "q" in
  B.define b main (fun fb ->
      B.if_ fb
        ~then_:(fun fb -> B.addr_of fb p x)
        ~else_:(fun fb -> B.addr_of fb p y);
      B.copy fb q p);
  let prog = B.finish b in
  let ssa = Ssa.transform prog in
  Validate.check_exn ssa;
  (* exactly one phi must appear *)
  let phis = ref 0 in
  Prog.iter_stmts ssa (fun _ _ s -> match s with Stmt.Phi _ -> incr phis | _ -> ());
  Alcotest.(check int) "one phi" 1 !phis;
  (* the phi must merge two distinct versions *)
  Prog.iter_stmts ssa (fun _ _ s ->
      match s with
      | Stmt.Phi { srcs; _ } -> Alcotest.(check int) "phi arity" 2 (List.length srcs)
      | _ -> ())

let test_ssa_loop () =
  (* p = &x; while (...) { p = &y }; q = p *)
  let b = B.create () in
  let main = B.declare b "main" ~params:[] in
  let x = B.stack_obj b ~owner:main "x" and y = B.stack_obj b ~owner:main "y" in
  let p = B.fresh_var b "p" and q = B.fresh_var b "q" in
  B.define b main (fun fb ->
      B.addr_of fb p x;
      B.while_ fb (fun fb -> B.addr_of fb p y);
      B.copy fb q p);
  let prog = B.finish b in
  let ssa = Ssa.transform prog in
  Validate.check_exn ssa;
  let phis = ref 0 in
  Prog.iter_stmts ssa (fun _ _ s -> match s with Stmt.Phi _ -> incr phis | _ -> ());
  Alcotest.(check bool) "at least one phi at loop head" true (!phis >= 1)

let test_ssa_no_spurious_phi () =
  (* straight-line code must stay phi-free *)
  let prog = build_simple () in
  let ssa = Ssa.transform prog in
  Validate.check_exn ssa;
  Prog.iter_stmts ssa (fun _ _ s ->
      match s with Stmt.Phi _ -> Alcotest.fail "no phi expected" | _ -> ())

let test_ssa_preserves_fork_table () =
  let b = B.create () in
  let main = B.declare b "main" ~params:[] in
  let worker = B.declare b "worker" ~params:[] in
  B.define b worker (fun fb -> B.ret fb None);
  let h = B.fresh_var b "h" and tid = B.stack_obj b ~owner:main "tid" in
  let p = B.fresh_var b "p" and x = B.stack_obj b ~owner:main "x" in
  B.define b main (fun fb ->
      B.if_ fb
        ~then_:(fun fb -> B.addr_of fb p x)
        ~else_:(fun fb -> B.addr_of fb p x);
      B.addr_of fb h tid;
      B.fork fb ~handle:h (Stmt.Direct worker) [];
      B.join fb h);
  let prog = B.finish b in
  let ssa = Ssa.transform prog in
  Validate.check_exn ssa;
  let fid, idx = Prog.fork_site ssa 0 in
  (match Func.stmt (Prog.func ssa fid) idx with
  | Stmt.Fork { fork_id = 0; _ } -> ()
  | _ -> Alcotest.fail "fork site table stale after SSA");
  Alcotest.(check int) "thread obj preserved" (Prog.thread_obj_of_fork prog 0)
    (Prog.thread_obj_of_fork ssa 0)

let suite =
  [
    Alcotest.test_case "builder basic" `Quick test_builder_basic;
    Alcotest.test_case "builder if/else" `Quick test_builder_control_flow;
    Alcotest.test_case "builder loop" `Quick test_builder_loop;
    Alcotest.test_case "fork sites" `Quick test_fork_sites;
    Alcotest.test_case "field objects" `Quick test_field_objects;
    Alcotest.test_case "validator catches ssa violation" `Quick test_validate_catches_ssa_violation;
    Alcotest.test_case "gid roundtrip" `Quick test_gid_roundtrip;
    Alcotest.test_case "ssa diamond" `Quick test_ssa_diamond;
    Alcotest.test_case "ssa loop" `Quick test_ssa_loop;
    Alcotest.test_case "ssa no spurious phi" `Quick test_ssa_no_spurious_phi;
    Alcotest.test_case "ssa preserves fork table" `Quick test_ssa_preserves_fork_table;
  ]
