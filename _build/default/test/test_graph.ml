open Fsam_graph
open Fsam_dsa

let mk edges =
  let g = Digraph.create () in
  List.iter (fun (u, v) -> Digraph.add_edge g u v) edges;
  g

let test_digraph_basics () =
  let g = mk [ (0, 1); (1, 2); (0, 2); (2, 0) ] in
  Alcotest.(check int) "nodes" 3 (Digraph.n_nodes g);
  Alcotest.(check int) "edges" 4 (Digraph.n_edges g);
  Alcotest.(check (list int)) "succs 0" [ 1; 2 ] (Digraph.succs g 0);
  Alcotest.(check (list int)) "preds 2" [ 0; 1 ] (Digraph.preds g 2);
  Digraph.add_edge g 0 1;
  Alcotest.(check int) "no parallel edges" 4 (Digraph.n_edges g);
  Digraph.remove_edge g 0 1;
  Alcotest.(check bool) "removed" false (Digraph.has_edge g 0 1);
  let t = Digraph.transpose g in
  Alcotest.(check bool) "transpose edge" true (Digraph.has_edge t 2 1)

let test_scc_simple () =
  (* 0 -> 1 <-> 2, 1 -> 3 *)
  let g = mk [ (0, 1); (1, 2); (2, 1); (1, 3) ] in
  let r = Scc.compute g in
  Alcotest.(check bool) "1,2 same comp" true (r.Scc.comp_of.(1) = r.Scc.comp_of.(2));
  Alcotest.(check bool) "0 alone" true (r.Scc.comp_of.(0) <> r.Scc.comp_of.(1));
  Alcotest.(check bool) "3 alone" true (r.Scc.comp_of.(3) <> r.Scc.comp_of.(1));
  (* topological property: edge u->v across comps means comp u > comp v *)
  Digraph.iter_edges g (fun u v ->
      if r.Scc.comp_of.(u) <> r.Scc.comp_of.(v) then
        Alcotest.(check bool) "topo numbering" true (r.Scc.comp_of.(u) > r.Scc.comp_of.(v)));
  Alcotest.(check bool) "trivial" true (Scc.is_trivial r g 0);
  Alcotest.(check bool) "non-trivial" false (Scc.is_trivial r g 1)

let test_scc_self_loop () =
  let g = mk [ (0, 0); (0, 1) ] in
  let r = Scc.compute g in
  Alcotest.(check bool) "self loop non-trivial" false (Scc.is_trivial r g 0);
  Alcotest.(check bool) "plain node trivial" true (Scc.is_trivial r g 1)

let test_reach () =
  let g = mk [ (0, 1); (1, 2); (3, 4) ] in
  Alcotest.(check bool) "0 reaches 2" true (Reach.reaches g 0 2);
  Alcotest.(check bool) "0 not 4" false (Reach.reaches g 0 4);
  Alcotest.(check bool) "reflexive" true (Reach.reaches g 4 4);
  let back = Reach.backward_from g 2 in
  Alcotest.(check bool) "backward 0" true (Bitvec.get back 0);
  Alcotest.(check bool) "backward not 3" false (Bitvec.get back 3)

let test_all_paths_hit () =
  (* 0 -> 1 -> 3 (exit); 0 -> 2 -> 3. targets = {1}: path through 2 avoids. *)
  let g = mk [ (0, 1); (1, 3); (0, 2); (2, 3) ] in
  let t1 = Bitvec.create () in
  Bitvec.set t1 1;
  Alcotest.(check bool) "avoidable target" false
    (Reach.all_paths_hit g ~src:0 ~targets:t1 ~exits:[ 3 ]);
  let t2 = Bitvec.create () in
  Bitvec.set t2 1;
  Bitvec.set t2 2;
  Alcotest.(check bool) "both branches covered" true
    (Reach.all_paths_hit g ~src:0 ~targets:t2 ~exits:[ 3 ]);
  (* src itself a target *)
  let t3 = Bitvec.create () in
  Bitvec.set t3 0;
  Alcotest.(check bool) "src is target" true
    (Reach.all_paths_hit g ~src:0 ~targets:t3 ~exits:[ 3 ])

let test_dominance_diamond () =
  (* 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3 *)
  let g = mk [ (0, 1); (0, 2); (1, 3); (2, 3) ] in
  let d = Dominance.compute g ~entry:0 in
  Alcotest.(check int) "idom 3 = 0" 0 (Dominance.idom d 3);
  Alcotest.(check int) "idom 1 = 0" 0 (Dominance.idom d 1);
  Alcotest.(check bool) "0 dominates 3" true (Dominance.dominates d 0 3);
  Alcotest.(check bool) "1 not dominates 3" false (Dominance.dominates d 1 3);
  Alcotest.(check bool) "reflexive" true (Dominance.dominates d 2 2);
  Alcotest.(check (list int)) "DF(1) = {3}" [ 3 ] (Dominance.frontier d 1);
  Alcotest.(check (list int)) "DF(2) = {3}" [ 3 ] (Dominance.frontier d 2);
  Alcotest.(check (list int)) "DF(0) = {}" [] (Dominance.frontier d 0)

let test_dominance_loop () =
  (* 0 -> 1 -> 2 -> 1, 1 -> 3 *)
  let g = mk [ (0, 1); (1, 2); (2, 1); (1, 3) ] in
  let d = Dominance.compute g ~entry:0 in
  Alcotest.(check int) "idom 2" 1 (Dominance.idom d 2);
  Alcotest.(check int) "idom 3" 1 (Dominance.idom d 3);
  (* loop header 1 is in its own frontier via back edge *)
  Alcotest.(check (list int)) "DF(2) = {1}" [ 1 ] (Dominance.frontier d 2);
  Alcotest.(check bool) "DF(1) contains 1" true (List.mem 1 (Dominance.frontier d 1))

let test_dominance_unreachable () =
  let g = mk [ (0, 1); (2, 1) ] in
  (* 2 unreachable from 0 *)
  let d = Dominance.compute g ~entry:0 in
  Alcotest.(check bool) "unreachable" false (Dominance.reachable d 2);
  Alcotest.(check bool) "reachable" true (Dominance.reachable d 1)

(* Property: reachability computed by Reach matches Floyd–Warshall closure. *)
let gen_graph =
  QCheck.(list_of_size Gen.(0 -- 25) (pair (int_bound 9) (int_bound 9)))

let prop_reach_model =
  QCheck.Test.make ~name:"reach vs transitive closure" gen_graph (fun edges ->
      let g = mk ((0, 0) :: edges) in
      (* (0,0) forces node 0 to exist *)
      let n = Digraph.n_nodes g in
      let m = Array.make_matrix n n false in
      for i = 0 to n - 1 do
        m.(i).(i) <- true
      done;
      List.iter (fun (u, v) -> m.(u).(v) <- true) edges;
      for k = 0 to n - 1 do
        for i = 0 to n - 1 do
          for j = 0 to n - 1 do
            if m.(i).(k) && m.(k).(j) then m.(i).(j) <- true
          done
        done
      done;
      let ok = ref true in
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          if Reach.reaches g i j <> m.(i).(j) then ok := false
        done
      done;
      !ok)

let prop_scc_model =
  QCheck.Test.make ~name:"scc vs mutual reachability" gen_graph (fun edges ->
      let g = mk ((0, 0) :: edges) in
      let n = Digraph.n_nodes g in
      let r = Scc.compute g in
      let ok = ref true in
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          let mutual = Reach.reaches g i j && Reach.reaches g j i in
          if (r.Scc.comp_of.(i) = r.Scc.comp_of.(j)) <> mutual then ok := false
        done
      done;
      !ok)

let prop_dominance_model =
  QCheck.Test.make ~name:"dominates vs path enumeration" gen_graph (fun edges ->
      (* brute force: a dominates b iff removing a makes b unreachable *)
      let g = mk ((0, 0) :: edges) in
      let n = Digraph.n_nodes g in
      let d = Dominance.compute g ~entry:0 in
      let reachable_without blocked target =
        let seen = Array.make n false in
        let rec go u =
          if u = target then true
          else
            List.exists
              (fun v ->
                (not seen.(v)) && v <> blocked
                &&
                (seen.(v) <- true;
                 go v))
              (Digraph.succs g u)
        in
        if target = 0 then true else if blocked = 0 then false else go 0
      in
      let ok = ref true in
      for a = 0 to n - 1 do
        for b = 0 to n - 1 do
          if Dominance.reachable d a && Dominance.reachable d b && a <> b then begin
            let dom = Dominance.dominates d a b in
            let brute = not (reachable_without a b) in
            if dom <> brute then ok := false
          end
        done
      done;
      !ok)

let prop_topo_order =
  QCheck.Test.make ~name:"topo_order respects condensation edges" gen_graph (fun edges ->
      let g = mk ((0, 0) :: edges) in
      let r = Scc.compute g in
      let order = Scc.topo_order g r in
      let pos = Hashtbl.create 16 in
      List.iteri (fun i v -> if not (Hashtbl.mem pos v) then Hashtbl.replace pos v i) order;
      let ok = ref true in
      Digraph.iter_edges g (fun u v ->
          if r.Scc.comp_of.(u) <> r.Scc.comp_of.(v) then
            if Hashtbl.find pos u > Hashtbl.find pos v then ok := false);
      !ok)

let prop_transpose_involution =
  QCheck.Test.make ~name:"transpose is an involution" gen_graph (fun edges ->
      let g = mk ((0, 0) :: edges) in
      let t = Digraph.transpose (Digraph.transpose g) in
      let ok = ref true in
      Digraph.iter_edges g (fun u v -> if not (Digraph.has_edge t u v) then ok := false);
      Digraph.iter_edges t (fun u v -> if not (Digraph.has_edge g u v) then ok := false);
      !ok)

let prop_degrees =
  QCheck.Test.make ~name:"degree sums equal edge count" gen_graph (fun edges ->
      let g = mk ((0, 0) :: edges) in
      let out_sum = ref 0 and in_sum = ref 0 in
      Digraph.iter_nodes g (fun v ->
          out_sum := !out_sum + Digraph.out_degree g v;
          in_sum := !in_sum + Digraph.in_degree g v);
      !out_sum = Digraph.n_edges g && !in_sum = Digraph.n_edges g)

let suite =
  [
    Alcotest.test_case "digraph basics" `Quick test_digraph_basics;
    QCheck_alcotest.to_alcotest prop_topo_order;
    QCheck_alcotest.to_alcotest prop_transpose_involution;
    QCheck_alcotest.to_alcotest prop_degrees;
    Alcotest.test_case "scc simple" `Quick test_scc_simple;
    Alcotest.test_case "scc self loop" `Quick test_scc_self_loop;
    Alcotest.test_case "reachability" `Quick test_reach;
    Alcotest.test_case "all_paths_hit" `Quick test_all_paths_hit;
    Alcotest.test_case "dominance diamond" `Quick test_dominance_diamond;
    Alcotest.test_case "dominance loop" `Quick test_dominance_loop;
    Alcotest.test_case "dominance unreachable" `Quick test_dominance_unreachable;
    QCheck_alcotest.to_alcotest prop_reach_model;
    QCheck_alcotest.to_alcotest prop_scc_model;
    QCheck_alcotest.to_alcotest prop_dominance_model;
  ]
