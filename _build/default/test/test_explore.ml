(* Exhaustive-schedule exploration: on small programs it enumerates every
   interleaving, giving exact observable fact sets to compare FSAM against
   from both sides (soundness: static ⊇ exhaustive; tightness: on the
   paper's Figure 1(a) FSAM is exactly the exhaustive result). *)

open Fsam_ir
module B = Builder
module D = Fsam_core.Driver
module E = Fsam_interp.Explore

let build_fig1a () =
  let b = B.create () in
  let main = B.declare b "main" ~params:[] in
  let foo = B.declare b "foo" ~params:[ "fp"; "fq" ] in
  B.define b foo (fun fb -> B.store fb (B.param b foo 0) (B.param b foo 1));
  let x = B.stack_obj b ~owner:main "x"
  and y = B.stack_obj b ~owner:main "y"
  and z = B.stack_obj b ~owner:main "z" in
  let p = B.fresh_var b "p"
  and q = B.fresh_var b "q"
  and r = B.fresh_var b "r"
  and c = B.fresh_var b "c" in
  B.define b main (fun fb ->
      B.addr_of fb p x;
      B.addr_of fb q y;
      B.addr_of fb r z;
      B.fork fb (Stmt.Direct foo) [ p; q ];
      B.store fb p r;
      B.load fb c p);
  (B.finish b, y, z, c)

let facts_of_var r v =
  List.filter_map (fun (v', o) -> if v' = v then Some o else None) r.E.var_facts
  |> List.sort_uniq compare

let test_fig1a_exact () =
  let prog, y, z, c = build_fig1a () in
  let r = E.explore prog in
  Alcotest.(check bool) "exploration exhausted" true r.E.exhausted;
  Alcotest.(check bool) "several interleavings" true (r.E.runs > 1);
  (* both values observable concretely *)
  Alcotest.(check (list int)) "exhaustive pt(c) = {y, z}" [ y; z ] (facts_of_var r c);
  (* FSAM matches the exhaustive result exactly here: no over-approximation *)
  let d = D.run prog in
  Alcotest.(check bool) "fsam == exhaustive on fig1a" true
    (Fsam_dsa.Iset.equal
       (Fsam_core.Sparse.pt_top d.D.sparse c)
       (Fsam_dsa.Iset.of_list [ y; z ]))

let test_exhaustive_soundness_random_programs () =
  (* stronger than the randomized oracle: every schedule of small random
     programs *)
  for seed = 0 to 14 do
    let prog = Fsam_workloads.Rand_prog.generate ~seed ~size:8 () in
    let r = E.explore ~max_runs:4000 prog in
    let d = D.run prog in
    List.iter
      (fun (v, o) ->
        if not (Fsam_dsa.Iset.mem o (Fsam_core.Sparse.pt_top d.D.sparse v)) then
          Alcotest.failf "seed %d: exhaustive found %s in pt(%s), fsam missed it" seed
            (Prog.obj_name prog o) (Prog.var_name prog v))
      r.E.var_facts;
    List.iter
      (fun (l, tgt) ->
        if not (Fsam_dsa.Iset.mem tgt (Fsam_core.Sparse.pt_obj_anywhere d.D.sparse l)) then
          Alcotest.failf "seed %d: exhaustive memory fact %s -> %s missed" seed
            (Prog.obj_name prog l) (Prog.obj_name prog tgt))
      r.E.mem_facts
  done

let test_explore_bounds () =
  (* a loop makes the decision tree unbounded; max_runs must stop it *)
  let b = B.create () in
  let main = B.declare b "main" ~params:[] in
  let x = B.stack_obj b ~owner:main "x" in
  let p = B.fresh_var b "p" in
  B.define b main (fun fb -> B.while_ fb (fun fb -> B.addr_of fb p x));
  let prog = B.finish b in
  let r = E.explore ~max_runs:50 prog in
  Alcotest.(check bool) "stopped early" false r.E.exhausted;
  Alcotest.(check int) "run budget respected" 50 r.E.runs

let suite =
  [
    Alcotest.test_case "fig1a exhaustive = fsam" `Quick test_fig1a_exact;
    Alcotest.test_case "exhaustive soundness on random programs" `Slow
      test_exhaustive_soundness_random_programs;
    Alcotest.test_case "run budget" `Quick test_explore_bounds;
  ]
