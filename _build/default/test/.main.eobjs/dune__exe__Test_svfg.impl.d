test/test_svfg.ml: Alcotest Builder Fsam_andersen Fsam_core Fsam_ir Fsam_memssa Fsam_mta Func Hashtbl List Prog Stmt
