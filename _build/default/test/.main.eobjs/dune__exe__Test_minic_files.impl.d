test/test_minic_files.ml: Alcotest Fsam_core Fsam_frontend Fsam_ir Fun List String
