test/test_workloads.ml: Alcotest Fsam_andersen Fsam_core Fsam_ir Fsam_mta Fsam_workloads Func List Option Prog Stmt String Validate
