test/main.mli:
