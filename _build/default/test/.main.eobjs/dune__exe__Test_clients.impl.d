test/test_clients.ml: Alcotest Builder Fsam_core Fsam_ir List Stmt
