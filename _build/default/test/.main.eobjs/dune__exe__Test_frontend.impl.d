test/test_frontend.ml: Alcotest Fsam_core Fsam_dsa Fsam_frontend Fsam_interp Fsam_ir Func List Memobj Prog Stmt String
