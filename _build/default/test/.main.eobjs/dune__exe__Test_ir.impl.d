test/test_ir.ml: Alcotest Array Builder Fsam_graph Fsam_ir Func List Memobj Prog Ssa Stmt String Validate
