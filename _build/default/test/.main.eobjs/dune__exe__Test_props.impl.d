test/test_props.ml: Alcotest Format Fsam_andersen Fsam_core Fsam_dsa Fsam_frontend Fsam_interp Fsam_ir Fsam_workloads List Printexc Printf Prog
