test/test_edge_cases.ml: Alcotest Builder Fsam_andersen Fsam_core Fsam_frontend Fsam_ir Fsam_mta List Prog Stmt
