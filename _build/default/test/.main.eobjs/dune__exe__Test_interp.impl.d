test/test_interp.ml: Alcotest Builder Fsam_interp Fsam_ir List Printf Prog Stmt String
