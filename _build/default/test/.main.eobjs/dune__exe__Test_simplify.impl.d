test/test_simplify.ml: Alcotest Builder Fsam_core Fsam_dsa Fsam_graph Fsam_interp Fsam_ir Fsam_workloads Func List Prog Simplify Stmt Validate
