test/test_pretty.ml: Alcotest Fsam_frontend List Printexc Printf Random
