test/test_dsa.ml: Alcotest Array Bitvec Fsam_dsa Gen Iset List QCheck QCheck_alcotest Uf Vec
