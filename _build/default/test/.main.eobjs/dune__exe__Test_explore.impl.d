test/test_explore.ml: Alcotest Builder Fsam_core Fsam_dsa Fsam_interp Fsam_ir Fsam_workloads List Prog Stmt
