test/test_andersen.ml: Alcotest Builder Fsam_andersen Fsam_dsa Fsam_graph Fsam_ir Iset Prog Stmt
