test/test_fsam.ml: Alcotest Builder Fsam_andersen Fsam_core Fsam_dsa Fsam_ir List Stmt
