test/test_steens.ml: Alcotest Builder Format Fsam_andersen Fsam_dsa Fsam_interp Fsam_ir Fsam_workloads List Prog Stmt
