test/test_minic_suite.ml: Alcotest Fsam_core Fsam_frontend Fsam_ir Fsam_mta Fsam_workloads List Printexc
