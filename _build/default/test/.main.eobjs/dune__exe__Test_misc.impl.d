test/test_misc.ml: Alcotest Array Builder Fsam_andersen Fsam_core Fsam_dsa Fsam_interp Fsam_ir Fsam_mta Fsam_workloads List Option Printf Prog Stmt String
