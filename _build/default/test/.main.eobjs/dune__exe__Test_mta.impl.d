test/test_mta.ml: Alcotest Builder Fsam_andersen Fsam_dsa Fsam_ir Fsam_mta Func Icfg List Locks Mhp Pcg Prog Stmt Threads Validate
