test/test_leaks.ml: Alcotest Fsam_core Fsam_frontend List
