test/test_graph.ml: Alcotest Array Bitvec Digraph Dominance Fsam_dsa Fsam_graph Gen Hashtbl List QCheck QCheck_alcotest Reach Scc
