test/test_iset.ml: Alcotest Fsam_dsa Gen Iset List QCheck QCheck_alcotest
