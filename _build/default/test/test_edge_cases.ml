(* Edge cases across layers: frontend error handling, partial joins,
   call-arity mismatches, unresolved targets, deep gep chains. *)

open Fsam_ir
module B = Builder
module D = Fsam_core.Driver
module F = Fsam_frontend

let expect_lower_error src =
  match F.Lower.compile_string src with
  | exception F.Lower.Error _ -> ()
  | _ -> Alcotest.fail "expected a lowering error"

let test_frontend_errors () =
  expect_lower_error "int g; int g; int main() { return 0; }";
  expect_lower_error "int main() { x = null; return 0; }";
  expect_lower_error "struct S { int f; }; void f(struct S s) { } int main() { return 0; }";
  expect_lower_error "int f() { return 0; }" (* no main *)

let test_pthread_join_second_arg () =
  (* pthread_join(t, &ret) — the second argument is tolerated *)
  let prog =
    F.Lower.compile_string
      {|
      thread_t t;
      int *ret;
      void w(int *a) { }
      int main() {
        fork(&t, w, null);
        join(&t, &ret);
        return 0;
      }
      |}
  in
  let d = D.run prog in
  Alcotest.(check int) "thread model sees two threads" 2
    (Fsam_mta.Threads.n_threads d.D.tm)

let test_partial_join_not_full () =
  (* a thread joined only on one branch is not fully joined; statements on
     the non-joining path remain parallel with it *)
  let b = B.create () in
  let main = B.declare b "main" ~params:[] in
  let w = B.declare b "w" ~params:[] in
  B.define b w (fun fb -> B.nop fb "s_w");
  let tid = B.stack_obj b ~owner:main "tid" in
  let h = B.fresh_var b "h" in
  B.define b main (fun fb ->
      B.addr_of fb h tid;
      B.fork fb ~handle:h (Stmt.Direct w) [];
      B.if_ fb
        ~then_:(fun fb ->
          B.join fb h;
          B.nop fb "after_join")
        ~else_:(fun fb -> B.nop fb "no_join");
      B.nop fb "merge");
  let prog = B.finish b in
  let ast = Fsam_andersen.Solver.run prog in
  let icfg = Fsam_mta.Icfg.build prog ast in
  let tm = Fsam_mta.Threads.build prog ast icfg in
  let mhp = Fsam_mta.Mhp.compute tm in
  let find name =
    let r = ref (-1) in
    Prog.iter_stmts prog (fun g _ s -> if s = Stmt.Nop name then r := g);
    !r
  in
  (* after the join on the joining path: dead *)
  Alcotest.(check bool) "not parallel after join" false
    (Fsam_mta.Mhp.mhp_stmt mhp (find "after_join") (find "s_w"));
  (* on the non-joining path: alive *)
  Alcotest.(check bool) "parallel on the other branch" true
    (Fsam_mta.Mhp.mhp_stmt mhp (find "no_join") (find "s_w"));
  (* at the merge point both paths meet: soundly parallel *)
  Alcotest.(check bool) "parallel at merge" true
    (Fsam_mta.Mhp.mhp_stmt mhp (find "merge") (find "s_w"));
  (* and the thread is NOT fully joined *)
  let w_tid = 1 in
  Alcotest.(check bool) "not a full join" false (Fsam_mta.Threads.fully_joins tm 0 w_tid)

let test_call_arity_mismatch () =
  (* extra arguments are dropped, missing parameters stay null — no crash,
     sound results *)
  let b = B.create () in
  let f2 = B.declare b "f2" ~params:[ "a"; "b" ] in
  let main = B.declare b "main" ~params:[] in
  let d2 = B.fresh_var b "d" in
  B.define b f2 (fun fb ->
      B.copy fb d2 (B.param b f2 1);
      B.ret fb (Some (B.param b f2 0)));
  let x = B.stack_obj b ~owner:main "x" in
  let p = B.fresh_var b "p" and r1 = B.fresh_var b "r1" and r2 = B.fresh_var b "r2" in
  B.define b main (fun fb ->
      B.addr_of fb p x;
      B.call fb ~ret:r1 (Stmt.Direct f2) [ p ] (* too few *);
      B.call fb ~ret:r2 (Stmt.Direct f2) [ p; p; p ] (* too many *));
  let d = D.run (B.finish b) in
  Alcotest.(check (list string)) "first arg still flows" [ "x" ] (D.pt_names d r1);
  Alcotest.(check (list string)) "extra args dropped" [ "x" ] (D.pt_names d r2)

let test_unresolved_indirect_fork () =
  (* a fork through a null function pointer spawns nothing and must not
     crash any phase *)
  let b = B.create () in
  let main = B.declare b "main" ~params:[] in
  let fp = B.fresh_var b "fp" in
  B.define b main (fun fb ->
      B.fork fb (Stmt.Indirect fp) [];
      B.nop fb "after");
  let d = D.run (B.finish b) in
  Alcotest.(check int) "only main thread" 1 (Fsam_mta.Threads.n_threads d.D.tm)

let test_deep_gep_flattens () =
  (* &(&(&s->a)->b)->c flattens onto the root: finitely many field objects *)
  let b = B.create () in
  let main = B.declare b "main" ~params:[] in
  let s = B.stack_obj b ~owner:main "s" in
  let p = B.fresh_var b "p"
  and f1 = B.fresh_var b "f1"
  and f2 = B.fresh_var b "f2"
  and f3 = B.fresh_var b "f3" in
  B.define b main (fun fb ->
      B.addr_of fb p s;
      B.gep fb f1 p "a";
      B.gep fb f2 f1 "b";
      B.gep fb f3 f2 "a");
  let prog = B.finish b in
  let d = D.run prog in
  (* f3's target is the root's field "a" — same object as f1's target *)
  Alcotest.(check (list string)) "nested gep flattened" (D.pt_names d f1) (D.pt_names d f3);
  Alcotest.(check bool) "b field distinct" true (D.pt_names d f2 <> D.pt_names d f1)

let test_self_recursive_locals_not_singleton () =
  (* a recursive function's local is multiply instantiated: both stores must
     accumulate (no strong update) *)
  let b = B.create () in
  let rec_f = B.declare b "rec_f" ~params:[ "cell"; "v" ] in
  let main = B.declare b "main" ~params:[] in
  let cell = B.param b rec_f 0 and v = B.param b rec_f 1 in
  B.define b rec_f (fun fb ->
      B.store fb cell v;
      B.if_ fb
        ~then_:(fun fb ->
          let mine = B.stack_obj b ~owner:rec_f "mine" in
          let m = B.fresh_var b "m" in
          B.addr_of fb m mine;
          B.call fb (Stmt.Direct rec_f) [ cell; m ])
        ~else_:(fun fb -> B.nop fb "leaf"));
  let g = B.global_obj b "g" in
  let x = B.stack_obj b ~owner:main "x" in
  let p = B.fresh_var b "p" and q = B.fresh_var b "q" and c = B.fresh_var b "c" in
  B.define b main (fun fb ->
      B.addr_of fb p g;
      B.addr_of fb q x;
      B.call fb (Stmt.Direct rec_f) [ p; q ];
      B.load fb c p);
  let d = D.run (B.finish b) in
  let got = D.pt_names d c in
  Alcotest.(check bool) "both x and the recursive local flow" true
    (List.mem "x" got && List.mem "mine" got)

let suite =
  [
    Alcotest.test_case "frontend errors" `Quick test_frontend_errors;
    Alcotest.test_case "pthread_join second arg" `Quick test_pthread_join_second_arg;
    Alcotest.test_case "partial join" `Quick test_partial_join_not_full;
    Alcotest.test_case "call arity mismatch" `Quick test_call_arity_mismatch;
    Alcotest.test_case "unresolved indirect fork" `Quick test_unresolved_indirect_fork;
    Alcotest.test_case "deep gep flattens" `Quick test_deep_gep_flattens;
    Alcotest.test_case "recursive locals accumulate" `Quick test_self_recursive_locals_not_singleton;
  ]
