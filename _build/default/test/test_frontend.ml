open Fsam_ir
module F = Fsam_frontend
module D = Fsam_core.Driver

let compile = F.Lower.compile_string

let test_lexer_basics () =
  let toks = F.Lexer.tokenize "int *p; // comment\np = &x; /* multi\nline */ p->f" in
  let kinds = List.map fst toks in
  Alcotest.(check bool) "has ident p" true (List.mem (F.Token.IDENT "p") kinds);
  Alcotest.(check bool) "has arrow" true (List.mem F.Token.ARROW kinds);
  Alcotest.(check bool) "comments skipped" false
    (List.mem (F.Token.IDENT "comment") kinds);
  Alcotest.(check bool) "ends with eof" true (List.mem F.Token.EOF kinds)

let test_lexer_pthread_aliases () =
  let toks = F.Lexer.tokenize "pthread_create pthread_join pthread_mutex_lock pthread_t" in
  let kinds = List.map fst toks in
  Alcotest.(check bool) "pthread_create = fork" true (List.mem F.Token.KW_FORK kinds);
  Alcotest.(check bool) "pthread_join = join" true (List.mem F.Token.KW_JOIN kinds);
  Alcotest.(check bool) "mutex_lock = lock" true (List.mem F.Token.KW_LOCK kinds);
  Alcotest.(check bool) "pthread_t = thread_t" true (List.mem F.Token.KW_THREAD_T kinds)

let test_lexer_error () =
  Alcotest.check_raises "bad char" (F.Lexer.Error "line 2: unexpected character '@'")
    (fun () -> ignore (F.Lexer.tokenize "int x;\n@"))

let test_parser_shapes () =
  let ast =
    F.Parser.parse_string
      {|
      struct S { int f; int *g; };
      int *gp;
      int arr[8];
      void worker(int *a) { *a = null; }
      int main() {
        int *p;
        thread_t tid;
        p = &gp;
        if (nondet()) { p = gp; } else { while (p != null) { p = *p; } }
        fork(&tid, worker, p);
        join(&tid);
        return 0;
      }
      |}
  in
  Alcotest.(check int) "five declarations" 5 (List.length ast);
  match ast with
  | [ Fsam_frontend.Ast.Dstruct ("S", fields); _; _; _; _ ] ->
    Alcotest.(check int) "two fields" 2 (List.length fields)
  | _ -> Alcotest.fail "unexpected decl shape"

let test_parser_error () =
  match F.Parser.parse_string "int main() { p = ; }" with
  | exception F.Parser.Error _ -> ()
  | _ -> Alcotest.fail "expected parse error"

(* Paper Figure 3: *p = *q decomposes into t2 = *q; *p = t2. *)
let test_fig3_decomposition () =
  let prog =
    compile
      {|
      int *a;
      int b;
      int *c;
      int main() {
        int *p;
        int *q;
        p = &a;
        a = &b;
        q = &c;
        *p = *q;
        return 0;
      }
      |}
  in
  (* the complex statement must appear as a Load feeding a Store *)
  let found = ref false in
  Prog.iter_funcs prog (fun f ->
      Func.iter_stmts f (fun i s ->
          match s with
          | Stmt.Store { src; _ } ->
            Func.iter_stmts f (fun j s' ->
                match s' with
                | Stmt.Load { dst; _ } when dst = src && j < i -> found := true
                | _ -> ())
          | _ -> ()));
  Alcotest.(check bool) "load feeds store" true !found;
  (* semantics: cell a ends up containing b (from a = &b) *)
  let d = D.run prog in
  let a_obj = ref (-1) in
  Prog.iter_objs prog (fun o -> if o.Memobj.name = "a" then a_obj := o.Memobj.id);
  let contents = Fsam_core.Sparse.pt_obj_anywhere d.D.sparse !a_obj in
  let b_obj = ref (-1) in
  Prog.iter_objs prog (fun o -> if o.Memobj.name = "b" then b_obj := o.Memobj.id);
  Alcotest.(check bool) "a may contain b" true (Fsam_dsa.Iset.mem !b_obj contents)

let test_mem2reg () =
  (* a local whose address is never taken must not become an object *)
  let prog =
    compile
      {|
      int g;
      int main() {
        int *promoted;
        int *cell;
        int *x;
        promoted = &g;
        x = &cell;
        return 0;
      }
      |}
  in
  let names = ref [] in
  Prog.iter_objs prog (fun o -> names := o.Memobj.name :: !names);
  Alcotest.(check bool) "cell is an object" true (List.mem "cell" !names);
  Alcotest.(check bool) "promoted is a register" false (List.mem "promoted" !names)

let test_struct_fields () =
  let prog =
    compile
      {|
      struct S { int *f; int *g; };
      struct S s;
      int x;
      int main() {
        int *vf;
        int *vg;
        s.f = &x;
        vf = s.f;
        vg = s.g;
        return 0;
      }
      |}
  in
  let d = D.run prog in
  let find_var name =
    let r = ref (-1) in
    for v = 0 to Prog.n_vars prog - 1 do
      if Prog.var_name prog v = name then r := v
    done;
    !r
  in
  (* final SSA versions carry # suffixes; search by prefix *)
  let find_last_version prefix =
    let r = ref (-1) in
    for v = 0 to Prog.n_vars prog - 1 do
      let n = Prog.var_name prog v in
      if n = prefix || (String.length n > String.length prefix
                        && String.sub n 0 (String.length prefix + 1) = prefix ^ "#")
      then if not (Fsam_dsa.Iset.is_empty (D.pt d v)) || !r < 0 then r := v
    done;
    !r
  in
  ignore find_var;
  let vf = find_last_version "vf" and vg = find_last_version "vg" in
  Alcotest.(check bool) "s.f flows to vf" true (D.pt_names d vf = [ "x" ]);
  Alcotest.(check bool) "s.g stays empty" true (Fsam_dsa.Iset.is_empty (D.pt d vg))

let test_array_decay_and_monolithic () =
  let prog =
    compile
      {|
      int *arr[4];
      int x;
      int main() {
        int *v;
        arr[0] = &x;
        v = arr[3];
        return 0;
      }
      |}
  in
  let d = D.run prog in
  let v = ref (-1) in
  for i = 0 to Prog.n_vars prog - 1 do
    let n = Prog.var_name prog i in
    if String.length n >= 1 && (n = "v" || String.length n > 1 && n.[0] = 'v' && n.[1] = '#')
    then if not (Fsam_dsa.Iset.is_empty (D.pt d i)) then v := i
  done;
  Alcotest.(check bool) "monolithic array: write to [0] read at [3]" true
    (!v >= 0 && D.pt_names d !v = [ "x" ])

let test_global_initializer () =
  let prog =
    compile
      {|
      int x;
      int *g = &x;
      int main() {
        int *v;
        v = g;
        return 0;
      }
      |}
  in
  let d = D.run prog in
  let ok = ref false in
  for i = 0 to Prog.n_vars prog - 1 do
    let n = Prog.var_name prog i in
    if (n = "v" || (String.length n > 1 && n.[0] = 'v' && n.[1] = '#'))
       && D.pt_names d i = [ "x" ]
    then ok := true
  done;
  Alcotest.(check bool) "initializer ran before main body" true !ok

let test_function_pointers () =
  let prog =
    compile
      {|
      int x;
      int y;
      void seta(int *p) { *p = &x; }
      void setb(int *p) { *p = &y; }
      int main() {
        int *cell;
        int *v;
        void *fp;
        if (nondet()) { fp = seta; } else { fp = setb; }
        fp(&cell);
        v = cell;
        return 0;
      }
      |}
  in
  let d = D.run prog in
  let ok = ref false in
  for i = 0 to Prog.n_vars prog - 1 do
    let n = Prog.var_name prog i in
    if (n = "v" || (String.length n > 1 && n.[0] = 'v' && n.[1] = '#'))
       && D.pt_names d i = [ "x"; "y" ]
    then ok := true
  done;
  Alcotest.(check bool) "both targets through function pointer" true !ok

let test_end_to_end_multithreaded () =
  (* paper Figure 1(c) written in MiniC source *)
  let prog =
    compile
      {|
      int x;
      int y;
      int z;
      thread_t t;
      void foo(int *fp, int *fq) { *fp = fq; }
      int main() {
        int *p;
        int *q;
        int *r;
        int *c;
        p = &x;
        q = &y;
        r = &z;
        *p = r;
        fork(&t, foo, p, q);
        join(&t);
        c = *p;
        return 0;
      }
      |}
  in
  let d = D.run prog in
  let ok = ref false in
  for i = 0 to Prog.n_vars prog - 1 do
    let n = Prog.var_name prog i in
    if n = "c" || (String.length n > 1 && n.[0] = 'c' && n.[1] = '#') then
      if D.pt_names d i = [ "y" ] then ok := true
  done;
  Alcotest.(check bool) "MiniC fig1c: pt(c) = {y}" true !ok

let test_barriers_parsed_soundly () =
  (* barriers / condition variables are unmodeled (paper §3.1): parsing must
     accept them and the analysis treats them as no-ops — over-approximate,
     so facts established around them survive *)
  let prog =
    compile
      {|
      int x;
      int y;
      thread_t t;
      void worker(int *p, int *q) {
        pthread_barrier_wait(null);
        *p = q;
        signal();
      }
      int main() {
        int *p;
        int *q;
        int *c;
        p = &x;
        q = &y;
        fork(&t, worker, p, q);
        barrier();
        wait();
        c = *p;
        join(&t);
        return 0;
      }
      |}
  in
  let d = D.run prog in
  let ok = ref false in
  for i = 0 to Prog.n_vars prog - 1 do
    let n = Prog.var_name prog i in
    if
      (n = "c" || (String.length n > 1 && n.[0] = 'c' && n.[1] = '#'))
      && D.pt_names d i = [ "y" ]
    then ok := true
  done;
  Alcotest.(check bool) "barrier ignored soundly: worker effect visible" true !ok

let test_compiled_programs_sound () =
  (* compile a lock-heavy MiniC program; check the interpreter agrees *)
  let prog =
    compile
      {|
      int x;
      int y;
      lock_t m;
      int *shared;
      thread_t t;
      void worker(int *unused) {
        lock(&m);
        shared = &y;
        unlock(&m);
      }
      int main() {
        int *v;
        shared = &x;
        fork(&t, worker, null);
        lock(&m);
        v = shared;
        unlock(&m);
        join(&t);
        return 0;
      }
      |}
  in
  let d = D.run prog in
  for sched = 0 to 7 do
    let r = Fsam_interp.Interp.run ~seed:sched prog in
    List.iter
      (fun o ->
        let pt = Fsam_core.Sparse.pt_top d.D.sparse o.Fsam_interp.Interp.obs_var in
        if not (Fsam_dsa.Iset.mem o.Fsam_interp.Interp.obs_obj pt) then
          Alcotest.failf "unsound on compiled MiniC: %s ∌ %s"
            (Prog.var_name prog o.Fsam_interp.Interp.obs_var)
            (Prog.obj_name prog o.Fsam_interp.Interp.obs_obj))
      r.Fsam_interp.Interp.observations
  done

let suite =
  [
    Alcotest.test_case "lexer basics" `Quick test_lexer_basics;
    Alcotest.test_case "lexer pthread aliases" `Quick test_lexer_pthread_aliases;
    Alcotest.test_case "lexer error" `Quick test_lexer_error;
    Alcotest.test_case "parser shapes" `Quick test_parser_shapes;
    Alcotest.test_case "parser error" `Quick test_parser_error;
    Alcotest.test_case "figure 3 decomposition" `Quick test_fig3_decomposition;
    Alcotest.test_case "mem2reg promotion" `Quick test_mem2reg;
    Alcotest.test_case "struct field sensitivity" `Quick test_struct_fields;
    Alcotest.test_case "array decay + monolithic" `Quick test_array_decay_and_monolithic;
    Alcotest.test_case "global initializer" `Quick test_global_initializer;
    Alcotest.test_case "function pointers" `Quick test_function_pointers;
    Alcotest.test_case "MiniC figure 1(c) end-to-end" `Quick test_end_to_end_multithreaded;
    Alcotest.test_case "barriers accepted, treated soundly" `Quick test_barriers_parsed_soundly;
    Alcotest.test_case "compiled MiniC sound vs interpreter" `Quick test_compiled_programs_sound;
  ]
