(* Tests for the client analyses built on FSAM: race detection (covered more
   in test_fsam), deadlock detection and the dynamic-race-detector
   instrumentation filter (both proposed as clients by the paper's §6). *)

open Fsam_ir
module B = Builder
module D = Fsam_core.Driver

(* two threads taking two locks in opposite order *)
let build_abba ~opposite =
  let b = B.create () in
  let main = B.declare b "main" ~params:[] in
  let t1 = B.declare b "t1" ~params:[ "la"; "lb" ] in
  let t2 = B.declare b "t2" ~params:[ "la"; "lb" ] in
  let la1 = B.param b t1 0 and lb1 = B.param b t1 1 in
  B.define b t1 (fun fb ->
      B.lock fb la1;
      B.lock fb lb1;
      B.unlock fb lb1;
      B.unlock fb la1);
  let la2 = B.param b t2 0 and lb2 = B.param b t2 1 in
  B.define b t2 (fun fb ->
      if opposite then begin
        B.lock fb lb2;
        B.lock fb la2;
        B.unlock fb la2;
        B.unlock fb lb2
      end
      else begin
        B.lock fb la2;
        B.lock fb lb2;
        B.unlock fb lb2;
        B.unlock fb la2
      end);
  let ma = B.global_obj b "lockA" and mb = B.global_obj b "lockB" in
  let pa = B.fresh_var b "pa" and pb = B.fresh_var b "pb" in
  B.define b main (fun fb ->
      B.addr_of fb pa ma;
      B.addr_of fb pb mb;
      B.fork fb (Stmt.Direct t1) [ pa; pb ];
      B.fork fb (Stmt.Direct t2) [ pa; pb ]);
  B.finish b

let test_deadlock_found () =
  let d = D.run (build_abba ~opposite:true) in
  let dls = Fsam_core.Deadlocks.detect d in
  Alcotest.(check bool) "AB-BA deadlock found" true (List.length dls >= 1)

let test_no_deadlock_same_order () =
  let d = D.run (build_abba ~opposite:false) in
  let dls = Fsam_core.Deadlocks.detect d in
  Alcotest.(check int) "consistent order is clean" 0 (List.length dls)

let test_no_deadlock_sequential () =
  (* the same opposite-order pattern but in one thread: never parallel *)
  let b = B.create () in
  let main = B.declare b "main" ~params:[] in
  let ma = B.global_obj b "lockA" and mb = B.global_obj b "lockB" in
  let pa = B.fresh_var b "pa" and pb = B.fresh_var b "pb" in
  B.define b main (fun fb ->
      B.addr_of fb pa ma;
      B.addr_of fb pb mb;
      B.lock fb pa;
      B.lock fb pb;
      B.unlock fb pb;
      B.unlock fb pa;
      B.lock fb pb;
      B.lock fb pa;
      B.unlock fb pa;
      B.unlock fb pb);
  let d = D.run (B.finish b) in
  Alcotest.(check int) "no MHP, no deadlock" 0
    (List.length (Fsam_core.Deadlocks.detect d))

let test_instrumentation_filter () =
  (* one shared racy object among much thread-local traffic: most accesses
     need no dynamic check *)
  let b = B.create () in
  let main = B.declare b "main" ~params:[] in
  let w = B.declare b "w" ~params:[ "p" ] in
  let wp = B.param b w 0 in
  B.define b w (fun fb ->
      (* thread-local material *)
      let lo = B.stack_obj b ~owner:w "wloc" in
      let lp = B.fresh_var b "lp" in
      B.addr_of fb lp lo;
      for _ = 1 to 5 do
        let v = B.fresh_var b "v" in
        B.load fb v lp;
        B.store fb lp v
      done;
      (* the single racy store *)
      B.store fb wp wp);
  let shared = B.global_obj b "shared" in
  let p = B.fresh_var b "p" and c = B.fresh_var b "c" in
  B.define b main (fun fb ->
      B.addr_of fb p shared;
      let lo = B.stack_obj b ~owner:main "mloc" in
      let lp = B.fresh_var b "mlp" in
      B.addr_of fb lp lo;
      for _ = 1 to 5 do
        let v = B.fresh_var b "mv" in
        B.load fb v lp;
        B.store fb lp v
      done;
      B.fork fb (Stmt.Direct w) [ p ];
      B.load fb c p);
  let d = D.run (B.finish b) in
  let r = Fsam_core.Instrument.analyze d in
  Alcotest.(check bool) "some accesses instrumented" true (r.Fsam_core.Instrument.instrumented > 0);
  Alcotest.(check bool) "most checks removed" true (r.Fsam_core.Instrument.reduction > 0.5);
  Alcotest.(check bool) "counts consistent" true
    (r.Fsam_core.Instrument.instrumented <= r.Fsam_core.Instrument.total_accesses)

let test_instrumentation_sequential_program () =
  (* no threads: nothing needs instrumentation *)
  let b = B.create () in
  let main = B.declare b "main" ~params:[] in
  let o = B.stack_obj b ~owner:main "o" in
  let p = B.fresh_var b "p" and v = B.fresh_var b "v" in
  B.define b main (fun fb ->
      B.addr_of fb p o;
      B.store fb p p;
      B.load fb v p);
  let d = D.run (B.finish b) in
  let r = Fsam_core.Instrument.analyze d in
  Alcotest.(check int) "nothing instrumented" 0 r.Fsam_core.Instrument.instrumented;
  Alcotest.(check bool) "full reduction" true (r.Fsam_core.Instrument.reduction > 0.99)

let suite =
  [
    Alcotest.test_case "AB-BA deadlock detected" `Quick test_deadlock_found;
    Alcotest.test_case "consistent lock order clean" `Quick test_no_deadlock_same_order;
    Alcotest.test_case "sequential opposite order clean" `Quick test_no_deadlock_sequential;
    Alcotest.test_case "tsan filter removes most checks" `Quick test_instrumentation_filter;
    Alcotest.test_case "tsan filter sequential" `Quick test_instrumentation_sequential_program;
  ]
