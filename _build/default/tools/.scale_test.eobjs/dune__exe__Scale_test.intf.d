tools/scale_test.mli:
