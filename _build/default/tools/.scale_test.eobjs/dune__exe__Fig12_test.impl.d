tools/fig12_test.ml: Array Fsam_core Fsam_workloads Option Printf Sys
