tools/fig12_test.mli:
