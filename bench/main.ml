(* Benchmark harness regenerating the paper's evaluation artifacts:

     dune exec bench/main.exe                      # everything
     dune exec bench/main.exe -- table1            # Table 1: program statistics
     dune exec bench/main.exe -- table2            # Table 2: FSAM vs NonSparse
     dune exec bench/main.exe -- figure12          # Figure 12: phase ablations
     dune exec bench/main.exe -- sched             # FIFO vs priority worklist
     dune exec bench/main.exe -- par               # serial vs multi-domain clients
     dune exec bench/main.exe -- vf                # indexed MHP/lock query layer
     dune exec bench/main.exe -- prov              # provenance off/on guard
     dune exec bench/main.exe -- micro             # bechamel micro-benchmarks
     dune exec bench/main.exe -- table2 --budget 60 --quick
     dune exec bench/main.exe -- table2 --only word_count,kmeans

   Absolute numbers differ from the paper's (their substrate was LLVM on
   real Parsec binaries; ours is the MiniC IR on synthetic mirrors — see
   DESIGN.md), but the comparisons the paper draws are reproduced: FSAM is
   an order of magnitude faster and smaller than NonSparse, NonSparse times
   out on the two largest programs, and each interference phase matters most
   for the benchmark family the paper attributes it to. *)

module D = Fsam_core.Driver
module W = Fsam_workloads.Suite
module Measure' = Fsam_core.Measure
module J = Fsam_obs.Json

let budget = ref 120.
let quick = ref false
let only : string list option ref = ref None

(* --size small|large: [small] is the historical tier (suite workloads /
   thread-scaled vf programs); [large] switches par/vf to the paper-scale
   synthesized MiniC programs (Minic_synth, 100+ KLOC) with a single capped
   measurement iteration per jobs value, writing BENCH_<cmd>_large.json so
   the two tiers keep independent committed baselines. *)
let size = ref "small"

let workloads () =
  match !only with
  | None -> W.all
  | Some names ->
    List.filter (fun (s : W.spec) -> List.mem s.name names) W.all

let git_commit =
  lazy
    (try
       let ic = Unix.open_process_in "git rev-parse HEAD 2>/dev/null" in
       let line = try String.trim (input_line ic) with End_of_file -> "" in
       ignore (Unix.close_process_in ic);
       if line = "" then "unknown" else line
     with Unix.Unix_error _ | Sys_error _ -> "unknown")

(* Persist a table as JSON next to the scrollback output so the perf
   trajectory across PRs stays diffable (BENCH_table2.json etc.). Every
   document carries the commit it was measured at and a snapshot of the
   metrics registry left by the last pipeline run, so a table row can be
   traced back to the exact internal counters behind it. *)
let write_bench path doc =
  let doc =
    match doc with
    | J.Obj fields ->
      J.Obj
        (fields
        @ [
            ("git_commit", J.String (Lazy.force git_commit));
            ("metrics", Fsam_obs.Metrics.to_json ());
          ])
    | d -> d
  in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> J.to_channel oc doc);
  Printf.printf "(wrote %s)\n\n" path

(* programs analyzable by NonSparse within the budget get a scale that
   terminates; the two largest are sized to exceed it (like raytrace / x264
   in the paper) *)
let scale_of (s : W.spec) = if !quick then max 10 (s.scale / 4) else s.scale

(* ------------------------------------------------------------------------- *)
(* Table 1 — program statistics.                                              *)
(* ------------------------------------------------------------------------- *)

let table1 () =
  Printf.printf "Table 1: Program statistics.\n";
  Printf.printf "%-14s %-45s %9s | %8s %6s %6s %6s %6s\n" "Benchmark" "Description"
    "paper LOC" "IR stmts" "funcs" "forks" "joins" "locks";
  Printf.printf "%s\n" (String.make 118 '-');
  List.iter
    (fun (s : W.spec) ->
      let prog = s.build (scale_of s) in
      let stmts, funcs, forks, joins, locks = W.program_stats prog in
      Printf.printf "%-14s %-45s %9d | %8d %6d %6d %6d %6d\n" s.name s.description
        s.paper_loc stmts funcs forks joins locks)
    (workloads ());
  Printf.printf "\n"

(* ------------------------------------------------------------------------- *)
(* Table 2 — analysis time and memory, FSAM vs NonSparse.                     *)
(* ------------------------------------------------------------------------- *)

let geomean = function
  | [] -> nan
  | l -> exp (List.fold_left (fun acc x -> acc +. log x) 0. l /. float_of_int (List.length l))

let table2 () =
  Printf.printf "Table 2: Analysis time and memory usage (budget %.0fs).\n" !budget;
  Printf.printf "%-14s | %10s %12s | %12s %12s | %8s %8s\n" "Program" "FSAM (s)"
    "FSAM facts" "NonSp (s)" "NonSp facts" "speedup" "mem rat";
  Printf.printf "%s\n" (String.make 90 '-');
  let speedups = ref [] and mem_ratios = ref [] in
  let rows = ref [] in
  List.iter
    (fun (s : W.spec) ->
      let prog = s.build (scale_of s) in
      let mf = Measure'.run (fun () -> D.run prog) in
      let f_time = mf.Measure'.wall_seconds in
      let f_facts = Fsam_core.Sparse.pts_entries mf.Measure'.value.D.sparse in
      let cfg = { D.default_config with nonsparse_budget = !budget } in
      let prog2 = s.build (scale_of s) in
      let mn = Measure'.run (fun () -> D.run_nonsparse ~config:cfg prog2) in
      let fsam_json =
        [
          ("fsam_wall_s", J.Float f_time);
          ("fsam_cpu_s", J.Float mf.Measure'.cpu_seconds);
          ("fsam_live_mb", J.Float mf.Measure'.live_mb);
          ("fsam_facts", J.Int f_facts);
        ]
      in
      (match fst mn.Measure'.value with
      | Fsam_core.Nonsparse.Done ns ->
        let n_time = mn.Measure'.wall_seconds in
        let n_facts = Fsam_core.Nonsparse.pts_entries ns in
        let sp = n_time /. max 1e-6 f_time in
        let mr = float_of_int n_facts /. float_of_int (max 1 f_facts) in
        speedups := sp :: !speedups;
        mem_ratios := mr :: !mem_ratios;
        rows :=
          J.Obj
            (("program", J.String s.name)
             :: fsam_json
            @ [
                ("nonsparse_status", J.String "done");
                ("nonsparse_wall_s", J.Float n_time);
                ("nonsparse_cpu_s", J.Float mn.Measure'.cpu_seconds);
                ("nonsparse_live_mb", J.Float mn.Measure'.live_mb);
                ("nonsparse_facts", J.Int n_facts);
                ("speedup", J.Float sp);
                ("mem_ratio", J.Float mr);
              ])
          :: !rows;
        Printf.printf "%-14s | %10.2f %12d | %12.2f %12d | %7.1fx %7.1fx\n" s.name f_time
          f_facts n_time n_facts sp mr
      | Fsam_core.Nonsparse.Timeout b ->
        rows :=
          J.Obj
            (("program", J.String s.name)
             :: fsam_json
            @ [ ("nonsparse_status", J.String "oot"); ("nonsparse_budget_s", J.Float b) ])
          :: !rows;
        Printf.printf "%-14s | %10.2f %12d | %12s %12s | %8s %8s\n" s.name f_time f_facts
          "OOT" "-" "-" "-");
      flush stdout)
    (workloads ());
  Printf.printf "%s\n" (String.make 90 '-');
  Printf.printf
    "Geometric mean over mutually-analyzable programs: %.1fx faster, %.1fx fewer \
     points-to facts\n"
    (geomean !speedups) (geomean !mem_ratios);
  Printf.printf "(paper: 12x faster, 28x less memory; OOT expected on raytrace and x264)\n\n";
  write_bench "BENCH_table2.json"
    (J.Obj
       [
         ("schema", J.String "fsam.bench.table2/1");
         ("budget_s", J.Float !budget);
         ("quick", J.Bool !quick);
         ("geomean_speedup", J.Float (geomean !speedups));
         ("geomean_mem_ratio", J.Float (geomean !mem_ratios));
         ("rows", J.List (List.rev !rows));
       ])

(* ------------------------------------------------------------------------- *)
(* Figure 12 — impact of the three thread-interference phases.                *)
(* ------------------------------------------------------------------------- *)

let figure12 () =
  Printf.printf
    "Figure 12: impact of disabling each interference phase. Each cell shows\n\
     the slowdown (wall-clock) and, in brackets, the growth of retained\n\
     points-to facts — the deterministic measure of the spurious def-use\n\
     edges the phase removes.\n";
  Printf.printf "%-14s | %9s | %-18s %-18s %-18s\n" "Program" "FSAM (s)" "No-Interleaving"
    "No-Value-Flow" "No-Lock";
  Printf.printf "%s\n" (String.make 86 '-');
  let rows = ref [] in
  List.iter
    (fun (s : W.spec) ->
      let run config =
        let prog = s.build (scale_of s) in
        let m = Measure'.run (fun () -> D.run ~config prog) in
        (m.Measure'.wall_seconds, Fsam_core.Sparse.pts_entries m.Measure'.value.D.sparse)
      in
      let base_t, base_f = run D.default_config in
      let cells = ref [] in
      let cell name config =
        let t, f = run config in
        let slowdown = t /. max 1e-6 base_t in
        let growth = float_of_int f /. float_of_int (max 1 base_f) in
        cells :=
          ( name,
            J.Obj
              [
                ("wall_s", J.Float t);
                ("slowdown", J.Float slowdown);
                ("fact_growth", J.Float growth);
              ] )
          :: !cells;
        Printf.sprintf "%5.2fx [%5.2fx]" slowdown growth
      in
      let printed =
        Printf.sprintf "%-14s | %9.2f | %-18s %-18s %-18s" s.name base_t
          (cell "no_interleaving" D.no_interleaving)
          (cell "no_value_flow" D.no_value_flow)
          (cell "no_lock" D.no_lock)
      in
      Printf.printf "%s\n" printed;
      rows :=
        J.Obj
          [
            ("program", J.String s.name);
            ("base_wall_s", J.Float base_t);
            ("base_facts", J.Int base_f);
            ("ablations", J.Obj (List.rev !cells));
          ]
        :: !rows;
      flush stdout)
    (workloads ());
  Printf.printf
    "(paper: value-flow matters most on average; interleaving dominates on \
     master-slave programs — kmeans, httpd_server, mt_daapd; locks on automount and \
     radiosity)\n\n";
  write_bench "BENCH_figure12.json"
    (J.Obj
       [
         ("schema", J.String "fsam.bench.figure12/1");
         ("quick", J.Bool !quick);
         ("rows", J.List (List.rev !rows));
       ])

(* ------------------------------------------------------------------------- *)
(* Scheduler comparison — FIFO queue vs SVFG-condensation priority worklist. *)
(* ------------------------------------------------------------------------- *)

module S = Fsam_core.Sparse
module Prog = Fsam_ir.Prog

(* Byte-identical results: every top-level set and every (node, obj) memory
   fact must coincide. Both runs share the hash-cons table, so [Iset.equal]
   is exact pointer comparison here. *)
let results_identical (a : D.t) (b : D.t) =
  let ok = ref true in
  for v = 0 to Prog.n_vars a.D.prog - 1 do
    if not (Fsam_dsa.Iset.equal (S.pt_top a.D.sparse v) (S.pt_top b.D.sparse v)) then
      ok := false
  done;
  let tbl = Hashtbl.create 4096 in
  S.iter_pto a.D.sparse (fun ~node ~obj s -> Hashtbl.replace tbl (node, obj) s);
  let n_b = ref 0 in
  S.iter_pto b.D.sparse (fun ~node ~obj s ->
      incr n_b;
      match Hashtbl.find_opt tbl (node, obj) with
      | Some s' when Fsam_dsa.Iset.equal s s' -> ()
      | _ -> ok := false);
  if Hashtbl.length tbl <> !n_b then ok := false;
  !ok

let sched () =
  Printf.printf
    "Scheduler comparison: FIFO queue vs priority worklist (SVFG condensation).\n\
     Propagations = processed work units until fixpoint; results must be\n\
     byte-identical (the fixpoint is unique).\n";
  Printf.printf "%-14s | %12s %12s %8s | %10s %10s | %9s\n" "Program" "FIFO props"
    "prio props" "ratio" "FIFO (s)" "prio (s)" "identical";
  Printf.printf "%s\n" (String.make 90 '-');
  let rows = ref [] in
  List.iter
    (fun (s : W.spec) ->
      let run scheduler =
        let prog = s.build (scale_of s) in
        let m =
          Measure'.run (fun () ->
              D.run ~config:{ D.default_config with scheduler } prog)
        in
        let props =
          Option.value ~default:0 (Fsam_obs.Metrics.find_counter "sparse.propagations")
        in
        (m.Measure'.value, m.Measure'.wall_seconds, props)
      in
      let d_fifo, t_fifo, p_fifo = run S.Fifo in
      let d_prio, t_prio, p_prio = run S.Priority in
      let identical = results_identical d_fifo d_prio in
      let ratio = float_of_int p_fifo /. float_of_int (max 1 p_prio) in
      Printf.printf "%-14s | %12d %12d %7.2fx | %10.2f %10.2f | %9s\n" s.name p_fifo
        p_prio ratio t_fifo t_prio
        (if identical then "yes" else "NO");
      rows :=
        J.Obj
          [
            ("program", J.String s.name);
            ("fifo_propagations", J.Int p_fifo);
            ("priority_propagations", J.Int p_prio);
            ("propagation_ratio", J.Float ratio);
            ("fifo_wall_s", J.Float t_fifo);
            ("priority_wall_s", J.Float t_prio);
            ("identical_results", J.Bool identical);
            ("pts_entries", J.Int (S.pts_entries d_prio.D.sparse));
          ]
        :: !rows;
      if not identical then begin
        Printf.eprintf "error: schedulers disagree on %s\n" s.name;
        exit 1
      end;
      flush stdout)
    (workloads ());
  Printf.printf "\n";
  write_bench "BENCH_sched.json"
    (J.Obj
       [
         ("schema", J.String "fsam.bench.sched/1");
         ("quick", J.Bool !quick);
         ("rows", J.List (List.rev !rows));
       ])

(* ------------------------------------------------------------------------- *)
(* Domain-parallel clients — serial vs N-domain post-solve detection.         *)
(* ------------------------------------------------------------------------- *)

(* The post-solve clients are embarrassingly parallel over their outer index
   range (Fsam_par chunked fan-out); this records serial-vs-N-domain wall
   times per client per workload, checks the reports are identical for every
   jobs value, and persists BENCH_par.json. Speedups only materialise on
   multi-core hosts — [cores] is recorded so single-core CI numbers aren't
   mistaken for regressions. *)
let par () =
  let jobs_list = [ 1; 2; 4 ] in
  let cores = Fsam_par.available_jobs () in
  Printf.printf
    "Domain-parallel clients: wall-clock per jobs value (host has %d core(s)).\n\
     Reports must be identical for every jobs value.\n"
    cores;
  Printf.printf "%-14s %-10s | %10s %10s %10s | %8s %9s %6s\n" "Program" "client"
    "j=1 (s)" "j=2 (s)" "j=4 (s)" "speedup4" "identical" "imb%";
  Printf.printf "%s\n" (String.make 92 '-');
  let rows = ref [] in
  List.iter
    (fun (s : W.spec) ->
      let prog = s.build (scale_of s) in
      let d = D.run prog in
      let client name detect render =
        let timed jobs =
          let t0 = Unix.gettimeofday () in
          let r = detect ~jobs d in
          (r, Unix.gettimeofday () -. t0)
        in
        let results = List.map (fun j -> (j, timed j)) jobs_list in
        let (_, (base, t1)), rest =
          match results with x :: tl -> (x, tl) | [] -> assert false
        in
        let identical =
          List.for_all (fun (_, (r, _)) -> r = base && render r = render base) rest
        in
        if not identical then begin
          Printf.eprintf "error: %s %s reports differ across --jobs\n" s.name name;
          exit 1
        end;
        let time_of j = snd (List.assoc j results) in
        let t4 = time_of 4 in
        let imb =
          Option.value ~default:0
            (Fsam_obs.Metrics.find_gauge (Printf.sprintf "par.%s.imbalance_pct" name))
        in
        Printf.printf "%-14s %-10s | %10.3f %10.3f %10.3f | %7.2fx %9s %5d%%\n" s.name
          name t1 (time_of 2) t4
          (t1 /. max 1e-9 t4)
          "yes" imb;
        flush stdout;
        ( name,
          J.Obj
            ([
               ("n_findings", J.Int (List.length base));
               ("identical", J.Bool identical);
               ("imbalance_pct", J.Int imb);
               ("speedup_j4", J.Float (t1 /. max 1e-9 t4));
             ]
            @ List.map
                (fun (j, (_, t)) -> (Printf.sprintf "j%d_wall_s" j, J.Float t))
                results) )
      in
      (* explicit lets: list elements evaluate right-to-left in OCaml, and
         [client] prints its row as a side effect *)
      let races_cell =
        client "races"
          (fun ~jobs d -> Fsam_core.Races.detect ~jobs d)
          (fun rs ->
            String.concat "\n"
              (List.map (Format.asprintf "%a" (Fsam_core.Races.pp_race d)) rs))
      in
      let leaks_cell =
        client "leaks"
          (fun ~jobs d -> Fsam_core.Leaks.detect ~jobs d)
          (fun fs ->
            String.concat "\n"
              (List.map (Format.asprintf "%a" (Fsam_core.Leaks.pp_finding d)) fs))
      in
      let deadlocks_cell =
        client "deadlocks"
          (fun ~jobs d -> Fsam_core.Deadlocks.detect ~jobs d)
          (fun ds ->
            String.concat "\n"
              (List.map (Format.asprintf "%a" (Fsam_core.Deadlocks.pp_deadlock d)) ds))
      in
      let cells = [ races_cell; leaks_cell; deadlocks_cell ] in
      rows := J.Obj [ ("program", J.String s.name); ("clients", J.Obj cells) ] :: !rows)
    (workloads ());
  Printf.printf "%s\n\n" (String.make 92 '-');
  write_bench "BENCH_par.json"
    (J.Obj
       [
         ("schema", J.String "fsam.bench.par/1");
         ("quick", J.Bool !quick);
         ("cores", J.Int cores);
         ("jobs", J.List (List.map (fun j -> J.Int j) jobs_list));
         ("rows", J.List (List.rev !rows));
       ])

(* Paper-scale tier: one synthesized 100+ KLOC MiniC program, a single
   pipeline run, then the two parallel showcase regions — races detection
   and the SVFG's [THREAD-VF] pair discovery — timed per jobs value with a
   byte-identity assertion. One iteration per jobs value (this is a smoke
   tier: wall times are informational, the deterministic counts are the
   gate; speedups are only meaningful on multi-core hosts and are gated in
   CI via bench_gate --speedup-floor). *)
let par_large () =
  let jobs_list = [ 1; 4 ] in
  let cores = Fsam_par.available_jobs () in
  let p = Fsam_workloads.Minic_synth.large in
  let src = Fsam_workloads.Minic_synth.generate p in
  let lines = Fsam_workloads.Minic_synth.line_count src in
  Printf.printf
    "Paper-scale parallel smoke: synthesized MiniC, %d lines (host has %d core(s)).\n"
    lines cores;
  let prog = Fsam_frontend.Lower.compile_string src in
  Printf.printf "  IR statements: %d\n%!" (Prog.n_stmts prog);
  let m = Measure'.run (fun () -> D.run prog) in
  let d = m.Measure'.value in
  Printf.printf "  pipeline (jobs=1): %.1fs\n%!" m.Measure'.wall_seconds;
  (* races: the post-solve client fan-out *)
  let races_runs =
    List.map
      (fun jobs ->
        let t0 = Unix.gettimeofday () in
        let r = Fsam_core.Races.detect ~jobs d in
        (jobs, r, Unix.gettimeofday () -. t0))
      jobs_list
  in
  let _, races1, races_t1 = List.hd races_runs in
  List.iter
    (fun (jobs, r, _) ->
      if r <> races1 then begin
        Printf.eprintf "error: races reports differ at --jobs %d\n" jobs;
        exit 1
      end)
    (List.tl races_runs);
  (* svfg: rebuild just the def-use phase per jobs value on the shared
     pipeline state — [THREAD-VF] pair discovery is its parallel region *)
  let svfg_runs =
    List.map
      (fun jobs ->
        let t0 = Unix.gettimeofday () in
        let g =
          Fsam_memssa.Svfg.build ~jobs prog d.D.ast d.D.modref d.D.icfg d.D.tm d.D.mhp
            d.D.locks d.D.pcg
        in
        (jobs, g, Unix.gettimeofday () -. t0))
      jobs_list
  in
  let _, g1, svfg_t1 = List.hd svfg_runs in
  List.iter
    (fun (jobs, g, _) ->
      if
        Fsam_memssa.Svfg.n_edges g <> Fsam_memssa.Svfg.n_edges g1
        || Fsam_memssa.Svfg.n_thread_aware_edges g
           <> Fsam_memssa.Svfg.n_thread_aware_edges g1
      then begin
        Printf.eprintf "error: SVFG differs at --jobs %d\n" jobs;
        exit 1
      end)
    (List.tl svfg_runs);
  let races_t4 = match List.find (fun (j, _, _) -> j = 4) races_runs with _, _, t -> t in
  let svfg_t4 = match List.find (fun (j, _, _) -> j = 4) svfg_runs with _, _, t -> t in
  Printf.printf "  %-12s | %10s %10s | %8s\n" "region" "j=1 (s)" "j=4 (s)" "speedup4";
  Printf.printf "  %-12s | %10.2f %10.2f | %7.2fx\n" "races" races_t1 races_t4
    (races_t1 /. max 1e-9 races_t4);
  Printf.printf "  %-12s | %10.2f %10.2f | %7.2fx\n\n" "svfg.pairs" svfg_t1 svfg_t4
    (svfg_t1 /. max 1e-9 svfg_t4);
  write_bench "BENCH_par_large.json"
    (J.Obj
       [
         ("schema", J.String "fsam.bench.par_large/1");
         ("cores", J.Int cores);
         ("jobs", J.List (List.map (fun j -> J.Int j) jobs_list));
         ( "rows",
           J.List
             [
               J.Obj
                 [
                   ("program", J.String "synth_large");
                   ("source_lines", J.Int lines);
                   ("ir_stmts", J.Int (Prog.n_stmts prog));
                   ("pipeline_wall_s", J.Float m.Measure'.wall_seconds);
                   ("n_races", J.Int (List.length races1));
                   ("svfg_edges", J.Int (Fsam_memssa.Svfg.n_edges g1));
                   ( "svfg_thread_edges",
                     J.Int (Fsam_memssa.Svfg.n_thread_aware_edges g1) );
                   ("identical", J.Bool true);
                   ( "races_wall_s",
                     J.Obj
                       (List.map
                          (fun (j, _, t) -> (Printf.sprintf "j%d" j, J.Float t))
                          races_runs) );
                   ( "svfg_wall_s",
                     J.Obj
                       (List.map
                          (fun (j, _, t) -> (Printf.sprintf "j%d" j, J.Float t))
                          svfg_runs) );
                   ("races_speedup_j4", J.Float (races_t1 /. max 1e-9 races_t4));
                   ("svfg_speedup_j4", J.Float (svfg_t1 /. max 1e-9 svfg_t4));
                 ];
             ] );
       ])

(* ------------------------------------------------------------------------- *)
(* vf — indexed MHP/lock query layer on thread-scaled workloads.              *)
(* ------------------------------------------------------------------------- *)

module Vf = Fsam_workloads.Vf_scale
module Mta = Fsam_mta
module A = Fsam_andersen.Solver

(* Replay the [THREAD-VF] query stream — every (object, store, access) pair
   with a common points-to target, statement-level MHP memoised on the
   canonical key exactly as the builder memoises it — against the indexed
   and the naive query layers, counting the primitive probes each performs.
   The replay covers the full pair space (no escape filter), so it is a
   superset of what the filtered build issues; both sides see the identical
   stream. *)
let query_replay (d : D.t) =
  let prog = d.D.prog and ast = d.D.ast in
  let mhp = d.D.mhp and lk = d.D.locks in
  let stores_of = Hashtbl.create 64 and accesses_of = Hashtbl.create 64 in
  let tbl_add tbl k v =
    Hashtbl.replace tbl k (v :: Option.value ~default:[] (Hashtbl.find_opt tbl k))
  in
  Prog.iter_stmts prog (fun gid _ s ->
      match s with
      | Fsam_ir.Stmt.Load { src; _ } ->
        Fsam_dsa.Iset.iter (fun o -> tbl_add accesses_of o gid) (A.pt_var ast src)
      | Fsam_ir.Stmt.Store { dst; _ } ->
        Fsam_dsa.Iset.iter
          (fun o ->
            tbl_add accesses_of o gid;
            tbl_add stores_of o gid)
          (A.pt_var ast dst)
      | _ -> ());
  let objs = List.sort compare (Hashtbl.fold (fun o _ acc -> o :: acc) stores_of []) in
  let run_side indexed =
    let stats = Mta.Mhp.fresh_stats () in
    let cache = Mta.Locks.make_cache () in
    let memo = Hashtbl.create 1024 in
    let t0 = Unix.gettimeofday () in
    List.iter
      (fun o ->
        List.iter
          (fun s ->
            List.iter
              (fun s' ->
                let key = if s <= s' then (s, s') else (s', s) in
                let hit =
                  match Hashtbl.find_opt memo key with
                  | Some b -> b
                  | None ->
                    let b =
                      if indexed then Mta.Mhp.mhp_stmt ~stats mhp s s'
                      else Mta.Mhp.mhp_stmt_naive ~stats mhp s s'
                    in
                    Hashtbl.replace memo key b;
                    b
                in
                if hit then
                  let pairs =
                    if indexed then Mta.Mhp.mhp_pairs_inst ~stats mhp s s'
                    else Mta.Mhp.mhp_pairs_inst_naive ~stats mhp s s'
                  in
                  List.iter
                    (fun (i, j) ->
                      ignore
                        (if indexed then Mta.Locks.common_lock ~cache lk i j
                         else Mta.Locks.common_lock_naive ~stats:cache lk i j))
                    pairs)
              (Option.value ~default:[] (Hashtbl.find_opt accesses_of o)))
          (Option.value ~default:[] (Hashtbl.find_opt stores_of o)))
      objs;
    let wall = Unix.gettimeofday () -. t0 in
    let checks =
      if indexed then
        stats.Mta.Mhp.thread_checks + stats.Mta.Mhp.inst_checks
        + Mta.Locks.cache_span_checks cache + Mta.Locks.cache_queries cache
      else stats.Mta.Mhp.inst_checks + Mta.Locks.cache_naive_checks cache
    in
    (checks, wall)
  in
  (* naive first so the indexed side cannot benefit from warmed caches *)
  let naive = run_side false in
  let indexed = run_side true in
  (indexed, naive)

let vf () =
  let large = !size = "large" in
  let jobs_list = if large then [ 1; 4 ] else [ 1; 2; 4 ] in
  (* the large tier is one paper-scale thread-scaled program: more workers
     and a bigger sweep than vf_t32, run once per jobs value *)
  let scale = if large then 100 else if !quick then 20 else 60 in
  let specs =
    if large then [ ("vf_t48", 48) ]
    else
      match !only with
      | None -> Vf.specs
      | Some names -> List.filter (fun (name, _) -> List.mem name names) Vf.specs
  in
  Printf.printf
    "Thread-scaled [THREAD-VF] workloads: indexed vs naive MHP/lock query work.\n\
     Reports and points-to results must be identical for every jobs value.\n";
  Printf.printf "%-8s %7s %7s | %9s %9s %7s | %10s %10s | %8s\n" "Program" "threads"
    "insts" "idx work" "nv work" "ratio" "svfg j1(s)" "svfg j4(s)" "identical";
  Printf.printf "%s\n" (String.make 100 '-');
  let rows = ref [] in
  (* the acceptance bar is the largest thread-scaled workload: small ones
     have too few cross-round products for the index to amortise *)
  let last_ratio = ref infinity in
  List.iter
    (fun (name, threads) ->
      let prog = Vf.build ~threads scale in
      let counter_names =
        [
          "svfg.thread_pairs_considered";
          "svfg.pairs_skipped_stmt";
          "svfg.lock_filtered_edges";
          "mhp.summary_stmt_queries";
          "mhp.summary_pair_queries";
          "mhp.summary_thread_checks";
          "mhp.summary_inst_checks";
          "mhp.summary_naive_checks";
          "locks.queries";
          "locks.bitset_hits";
          "locks.pair_memo_hits";
          "locks.span_pair_checks";
          "locks.naive_span_checks";
        ]
      in
      let run jobs =
        let d = D.run ~config:{ D.default_config with D.jobs } prog in
        let counters =
          List.map
            (fun n -> (n, Option.value ~default:0 (Fsam_obs.Metrics.find_counter n)))
            counter_names
        in
        let render_races =
          String.concat "\n"
            (List.map
               (Format.asprintf "%a" (Fsam_core.Races.pp_race d))
               (Fsam_core.Races.detect ~jobs d))
        in
        (d, counters, render_races)
      in
      let runs = List.map (fun j -> (j, run j)) jobs_list in
      let _, (d1, counters1, races1) = List.hd runs in
      let identical =
        List.for_all
          (fun (_, (dj, countersj, racesj)) ->
            results_identical d1 dj
            && Fsam_memssa.Svfg.n_edges d1.D.svfg = Fsam_memssa.Svfg.n_edges dj.D.svfg
            && Fsam_memssa.Svfg.n_thread_aware_edges d1.D.svfg
               = Fsam_memssa.Svfg.n_thread_aware_edges dj.D.svfg
            && countersj = counters1 && racesj = races1)
          (List.tl runs)
      in
      if not identical then begin
        Printf.eprintf "error: %s results differ across --jobs\n" name;
        exit 1
      end;
      let (idx_checks, idx_wall), (nv_checks, nv_wall) = query_replay d1 in
      let ratio = float_of_int nv_checks /. float_of_int (max 1 idx_checks) in
      last_ratio := ratio;
      let svfg_wall j =
        let d, _, _ = List.assoc j runs in
        d.D.times.D.t_svfg
      in
      Printf.printf "%-8s %7d %7d | %9d %9d | %5.1fx | %10.3f %10.3f | %8s\n" name threads
        (Mta.Threads.n_insts d1.D.tm) idx_checks nv_checks ratio (svfg_wall 1) (svfg_wall 4)
        "yes";
      flush stdout;
      let t = d1.D.times in
      rows :=
        J.Obj
          [
            ("program", J.String name);
            ("threads", J.Int threads);
            ("insts", J.Int (Mta.Threads.n_insts d1.D.tm));
            ( "phases_s",
              J.Obj
                [
                  ("pre", J.Float t.D.t_pre);
                  ("thread_model", J.Float t.D.t_thread_model);
                  ("interleaving", J.Float t.D.t_interleaving);
                  ("lock", J.Float t.D.t_lock);
                  ("svfg", J.Float t.D.t_svfg);
                  ("solve", J.Float t.D.t_solve);
                ] );
            ( "svfg_wall_s",
              J.Obj
                (List.map (fun j -> (Printf.sprintf "j%d" j, J.Float (svfg_wall j))) jobs_list)
            );
            ("counters", J.Obj (List.map (fun (n, v) -> (n, J.Int v)) counters1));
            ( "query_replay",
              J.Obj
                [
                  ("indexed_checks", J.Int idx_checks);
                  ("naive_checks", J.Int nv_checks);
                  ("work_ratio", J.Float ratio);
                  ("indexed_wall_s", J.Float idx_wall);
                  ("naive_wall_s", J.Float nv_wall);
                ] );
            ("identical", J.Bool identical);
          ]
        :: !rows)
    specs;
  Printf.printf "%s\n" (String.make 100 '-');
  if specs <> [] && !last_ratio < 2.0 then
    Printf.printf
      "WARNING: work reduction on the largest workload is %.2fx, below the 2x target\n"
      !last_ratio;
  Printf.printf "\n";
  write_bench
    (if large then "BENCH_vf_large.json" else "BENCH_vf.json")
    (J.Obj
       [
         ( "schema",
           J.String (if large then "fsam.bench.vf_large/1" else "fsam.bench.vf/1") );
         ("quick", J.Bool !quick);
         ("scale", J.Int scale);
         ("jobs", J.List (List.map (fun j -> J.Int j) jobs_list));
         ("rows", J.List (List.rev !rows));
       ])

(* ------------------------------------------------------------------------- *)
(* prov — provenance recording guard: off/on identity + overhead.             *)
(* ------------------------------------------------------------------------- *)

(* CI guard for the derivation recorder. Hard (deterministic, exit 1):
   provenance on must leave every points-to result byte-identical and must
   not change the solver's propagation count — recording may observe the
   fixpoint computation, never steer it. Wall-clock overhead of recording is
   reported (and persisted) but not gated: it is machine-dependent, and the
   off path's own cost against the pre-recorder baseline is tracked in
   EXPERIMENTS.md. *)
let prov_bench () =
  (* default: the smallest sched workload; --only can select any suite
     workload or a thread-scaled vf_N workload *)
  let name, build, scale =
    match !only with
    | Some [ n ] when List.mem_assoc n Vf.specs ->
      let threads = List.assoc n Vf.specs in
      (n, (fun scale -> Vf.build ~threads scale), if !quick then 20 else 60)
    | Some [ n ] when W.find n <> None ->
      let spec = Option.get (W.find n) in
      (n, spec.W.build, scale_of spec)
    | _ ->
      let spec = Option.get (W.find "word_count") in
      (spec.W.name, spec.W.build, scale_of spec)
  in
  let run provenance =
    let prog = build scale in
    let m =
      Measure'.run (fun () -> D.run ~config:{ D.default_config with provenance } prog)
    in
    let props =
      Option.value ~default:0 (Fsam_obs.Metrics.find_counter "sparse.propagations")
    in
    let records = Option.value ~default:0 (Fsam_obs.Metrics.find_gauge "prov.records") in
    (m.Measure'.value, m.Measure'.wall_seconds, props, records)
  in
  let d_off, _, p_off, _ = run false in
  let d_on, _, p_on, records = run true in
  let best provenance =
    List.fold_left
      (fun acc () ->
        let _, w, _, _ = run provenance in
        Float.min acc w)
      infinity [ (); (); () ]
  in
  let w_off = best false in
  let w_on = best true in
  let identical = results_identical d_off d_on in
  let overhead_pct = 100. *. ((w_on -. w_off) /. Float.max 1e-9 w_off) in
  Printf.printf
    "Provenance guard (%s, scale %d):\n\
    \  results identical off/on: %s\n\
    \  propagations off/on:      %d / %d (%s)\n\
    \  recorded derivations:     %d\n\
    \  wall off/on:              %.3fs / %.3fs (recording overhead %+.1f%%)\n"
    name scale
    (if identical then "yes" else "NO")
    p_off p_on
    (if p_off = p_on then "equal" else "DIFFER")
    records w_off w_on overhead_pct;
  write_bench "BENCH_prov.json"
    (J.Obj
       [
         ("schema", J.String "fsam.bench.prov/1");
         ("quick", J.Bool !quick);
         ("program", J.String name);
         ("scale", J.Int scale);
         ("identical_results", J.Bool identical);
         ("propagations_off", J.Int p_off);
         ("propagations_on", J.Int p_on);
         ("prov_records", J.Int records);
         ("wall_off_s", J.Float w_off);
         ("wall_on_s", J.Float w_on);
         ("recording_overhead_pct", J.Float overhead_pct);
       ]);
  if not identical then begin
    Printf.eprintf "error: provenance recording changed the analysis results\n";
    exit 1
  end;
  if p_off <> p_on then begin
    Printf.eprintf "error: provenance recording changed the propagation count\n";
    exit 1
  end

(* ------------------------------------------------------------------------- *)
(* serve — incremental edit+query stream against the resident engine.        *)
(* ------------------------------------------------------------------------- *)

module Eng = Fsam_serve.Engine
module FAst = Fsam_frontend.Ast

(* the shape-preserving edit (same statement template, so every pre-phase
   reuse guard holds): retarget the first "g... = p..." global publish in
   [fn] to the module heap handle *)
let serve_replace_edit source ~fn =
  let ast = Fsam_frontend.Parser.parse_string source in
  let found = ref false in
  let fix_stmt = function
    | FAst.Sassign (FAst.Eid g, FAst.Eid p)
      when (not !found)
           && String.length g > 0
           && g.[0] = 'g'
           && String.length p > 0
           && p.[0] = 'p' ->
      found := true;
      FAst.Sassign (FAst.Eid g, FAst.Eid "bh")
    | s -> s
  in
  let ast' =
    List.map
      (function
        | FAst.Dfun f when f.FAst.fname = fn ->
          FAst.Dfun { f with FAst.body = List.map fix_stmt f.FAst.body }
        | d -> d)
      ast
  in
  if not !found then failwith (Printf.sprintf "no global publish to retarget in %s" fn);
  Fsam_frontend.Pretty.to_string ast'

(* the shape-changing edit: append one statement, so statement counts drift
   and the pre-phases must fall back (the sparse solve stays warm) *)
let serve_append_edit source ~fn =
  let ast = Fsam_frontend.Parser.parse_string source in
  let found = ref false in
  let ast' =
    List.map
      (function
        | FAst.Dfun f when f.FAst.fname = fn ->
          found := true;
          FAst.Dfun
            { f with FAst.body = f.FAst.body @ [ FAst.Sassign (FAst.Eid "g1_0", FAst.Eid "bh") ] }
        | d -> d)
      ast
  in
  if not !found then failwith (Printf.sprintf "no %s in synth source" fn);
  Fsam_frontend.Pretty.to_string ast'

let pre_work_of (w : Eng.work) =
  w.Eng.wk_andersen_props + w.Eng.wk_mhp_summaries + w.Eng.wk_svfg_pairs

(* Observability overhead: the identical resident-query stream through the
   protocol layer with the full telemetry stack (per-request histograms,
   flight recorder, slow-log threshold at its default) vs disabled.
   Queries are the per-request hot path, so this bounds the tax.
   Interleaved best-of-batches: a resident query is ~100us, so a sequential
   A-then-B comparison is dominated by GC/scheduler drift; alternating
   batches see the same machine state, and the minimum batch mean is the
   honest floor for each config. Returns (on_us, off_us) per query. *)
let serve_obs_measure ~large ~source =
  let module P = Fsam_serve.Protocol in
  let module St = Fsam_serve.Stats in
  let obs_batches, obs_per_batch = if large then (4, 125) else (8, 500) in
  let mk ~obs =
    let stats =
      if obs then St.create ~flight_cap:256 ~slow_ms:100.0 ()
      else St.create ~flight_cap:0 ~slow_ms:(-1.0) ()
    in
    let srv = P.create ~stats (Eng.create ()) in
    ignore
      (P.handle_line srv
         (J.to_string ~minify:true
            (J.Obj [ ("id", J.Int 0); ("op", J.String "load"); ("source", J.String source) ])));
    (srv, stats)
  in
  let srv_on, stats_on = mk ~obs:true in
  let srv_off, stats_off = mk ~obs:false in
  let q =
    J.to_string ~minify:true
      (J.Obj [ ("id", J.Int 1); ("op", J.String "points-to"); ("var", J.String "out") ])
  in
  let batch srv =
    let t0 = Unix.gettimeofday () in
    for _ = 1 to obs_per_batch do
      ignore (P.handle_line srv q)
    done;
    (Unix.gettimeofday () -. t0) *. 1e6 /. float_of_int obs_per_batch
  in
  ignore (batch srv_on);
  ignore (batch srv_off);
  let best_on = ref infinity and best_off = ref infinity in
  for _ = 1 to obs_batches do
    best_on := Float.min !best_on (batch srv_on);
    best_off := Float.min !best_off (batch srv_off)
  done;
  St.close stats_on;
  St.close stats_off;
  (!best_on, !best_off)

(* Standalone entry for the measurement above ([--only serveobs]): two
   resident daemons (telemetry on / off) at the chosen --size, without the
   rest of the serve tier — at paper scale that tier costs tens of minutes,
   this costs two loads. Print-only: no BENCH file, no gate row. *)
let serve_obs_bench () =
  let large = !size = "large" in
  let name = if large then "synth_large" else "synth_quick" in
  let params =
    if large then Fsam_workloads.Minic_synth.large else Fsam_workloads.Minic_synth.quick
  in
  Printf.printf "Serve observability-overhead tier: resident queries on %s.\n%!" name;
  let source = Fsam_workloads.Minic_synth.generate params in
  let on_us, off_us = serve_obs_measure ~large ~source in
  Printf.printf
    "  observability tax on resident queries: %.1fus on vs %.1fus off (%+.1f%%)\n\n%!"
    on_us off_us
    (100. *. (on_us -. off_us) /. Float.max 1e-9 off_us)

(* Replays a scripted edit+query stream against the resident engine and
   persists the exact warm/cold work counters per edit — the deterministic
   trajectory of the incremental pre-phases. The small tier (synth quick)
   runs every edit in differential mode, so each row carries the matching
   cold run's counters and a byte-identity verdict; CI gates it exactly.
   --size large replays on the 100+ KLOC synth program without the
   differential cross-check (a cold reference run costs minutes there) —
   its cold work reference is the cold load of the same program. *)
let serve_bench () =
  let large = !size = "large" in
  let name = if large then "synth_large" else "synth_quick" in
  let params =
    if large then Fsam_workloads.Minic_synth.large else Fsam_workloads.Minic_synth.quick
  in
  let source = Fsam_workloads.Minic_synth.generate params in
  Printf.printf
    "Serve tier: scripted edit+query stream on %s (differential %s).\n" name
    (if large then "off — cold reference is the load" else "on");
  let eng = Eng.create ~differential:(not large) () in
  let t0 = Unix.gettimeofday () in
  let li =
    match Eng.load eng source with
    | Ok li -> li
    | Error e ->
      Printf.eprintf "error: serve load failed: %s\n" e;
      exit 1
  in
  let load_wall = Unix.gettimeofday () -. t0 in
  let load_pre_work = pre_work_of li.Eng.l_work in
  Printf.printf "  cold load: %.2fs (pre-phase work %d, races %d)\n%!" load_wall
    load_pre_work li.Eng.l_races;
  let query_us = ref [] in
  let run_queries () =
    (* a resident points-to probe per edit, on a spread of variables *)
    let d = Eng.driver eng in
    let n = Prog.n_vars d.D.prog in
    List.iter
      (fun v ->
        let q0 = Unix.gettimeofday () in
        ignore (D.pt d v);
        query_us := ((Unix.gettimeofday () -. q0) *. 1e6) :: !query_us)
      [ 0; n / 2; n - 1 ]
  in
  let script =
    [ ("replace", "f1_1", serve_replace_edit); ("replace", "f2_2", serve_replace_edit) ]
    @ (if large then [] else [ ("append", "f1_0", serve_append_edit) ])
  in
  let cur = ref source in
  let replace_walls = ref [] in
  let digests = ref [] in
  let edit_rows =
    List.map
      (fun (kind, fn, mk) ->
        cur := mk !cur ~fn;
        let t0 = Unix.gettimeofday () in
        let info =
          match Eng.edit_source eng !cur with
          | Ok i -> i
          | Error e ->
            Printf.eprintf "error: serve edit %s %s failed: %s\n" kind fn e;
            exit 1
        in
        let wall = Unix.gettimeofday () -. t0 in
        if kind = "replace" then replace_walls := wall :: !replace_walls;
        digests := Fsam_memssa.Svfg.digest (Eng.driver eng).D.svfg :: !digests;
        run_queries ();
        let warm_pre = pre_work_of info.Eng.e_work in
        let cold_pre =
          match info.Eng.e_cold_work with
          | Some w -> pre_work_of w
          | None -> load_pre_work
        in
        let phases_reused =
          match info.Eng.e_phases with
          | Some p ->
            [
              ("andersen_warm", J.Bool p.Eng.ph_andersen_warm);
              ("tm_reused", J.Bool p.Eng.ph_tm_reused);
              ("mhp_reused", J.Bool p.Eng.ph_mhp_reused);
              ("locks_reused", J.Bool p.Eng.ph_locks_reused);
              ("svfg_patched", J.Bool p.Eng.ph_svfg_patched);
            ]
          | None -> []
        in
        (* per-phase walls of the accepted warm run; whatever the edit wall
           doesn't cover here is parse/lower/diff overhead outside the
           driver's six phases *)
        let phase_walls =
          match info.Eng.e_phases with
          | Some p ->
            [
              ("andersen_wall_s", J.Float p.Eng.ph_pre_s);
              ("threads_wall_s", J.Float p.Eng.ph_threads_s);
              ("mhp_wall_s", J.Float p.Eng.ph_mhp_s);
              ("locks_wall_s", J.Float p.Eng.ph_locks_s);
              ("svfg_wall_s", J.Float p.Eng.ph_svfg_s);
              ("solve_wall_s", J.Float p.Eng.ph_solve_s);
            ]
          | None -> []
        in
        Printf.printf
          "  %-8s %-6s | mode %-11s | pre-work warm %7d cold %7d (%.1fx) | %6.2fs\n%!"
          kind fn
          (match info.Eng.e_mode with `Incremental -> "incremental" | `Cold -> "cold")
          warm_pre cold_pre
          (float_of_int cold_pre /. float_of_int (max 1 warm_pre))
          wall;
        J.Obj
          ([
             ("kind", J.String kind);
             ("fn", J.String fn);
             ( "mode",
               J.String
                 (match info.Eng.e_mode with `Incremental -> "incremental" | `Cold -> "cold")
             );
             ("warm_pre_work", J.Int warm_pre);
             ("cold_pre_work", J.Int cold_pre);
             ( "pre_work_ratio",
               J.Float (float_of_int cold_pre /. float_of_int (max 1 warm_pre)) );
             ("warm_propagations", J.Int info.Eng.e_propagations);
             ("fallbacks", J.List (List.map (fun k -> J.String k) info.Eng.e_fallbacks));
             ("wall_s", J.Float wall);
           ]
          @ (match info.Eng.e_cold_propagations with
            | Some p -> [ ("cold_propagations", J.Int p) ]
            | None -> [])
          @ (match info.Eng.e_identical with
            | Some b -> [ ("identical", J.Bool b) ]
            | None -> [])
          @ (if phases_reused = [] then [] else [ ("phases_reused", J.Obj phases_reused) ])
          @ phase_walls))
      script
  in
  (* jobs invariance (quick tier): the same edit stream through engines at
     --jobs 2 and 4 must land on the same SVFG fingerprint after every
     edit, with each edit still differential-certified at that jobs value *)
  let jobs_invariant =
    if large then None
    else
      Some
        (List.for_all
           (fun jobs ->
             let eng = Eng.create ~jobs ~differential:true () in
             (match Eng.load eng source with
             | Ok _ -> ()
             | Error e ->
               Printf.eprintf "error: serve jobs %d load failed: %s\n" jobs e;
               exit 1);
             let cur = ref source in
             let ds =
               List.map
                 (fun (kind, fn, mk) ->
                   cur := mk !cur ~fn;
                   match Eng.edit_source eng !cur with
                   | Ok i when i.Eng.e_identical = Some true ->
                     Fsam_memssa.Svfg.digest (Eng.driver eng).D.svfg
                   | Ok _ ->
                     Printf.eprintf "error: serve jobs %d edit %s %s not identical\n"
                       jobs kind fn;
                     exit 1
                   | Error e ->
                     Printf.eprintf "error: serve jobs %d edit failed: %s\n" jobs e;
                     exit 1)
                 script
             in
             ds = List.rev !digests)
           [ 2; 4 ])
  in
  (match jobs_invariant with
  | Some ok ->
    Printf.printf "  jobs 1/2/4 digests after every edit: %s\n%!"
      (if ok then "identical" else "DIVERGED")
  | None -> ());
  let mean l = List.fold_left ( +. ) 0. l /. float_of_int (max 1 (List.length l)) in
  (* Wall-clock speedup: in the differential (quick) tier every edit above
     also ran the cold reference pipeline, so its wall is not the warm
     latency a client would see. Re-measure on a second, non-differential
     engine replaying the same replace edits. *)
  let load_ref_wall, warm_edit_wall =
    if large then (load_wall, mean !replace_walls)
    else begin
      let eng2 = Eng.create ~differential:false () in
      let t0 = Unix.gettimeofday () in
      (match Eng.load eng2 source with
      | Ok _ -> ()
      | Error e ->
        Printf.eprintf "error: serve timing load failed: %s\n" e;
        exit 1);
      let lw = Unix.gettimeofday () -. t0 in
      let cur = ref source in
      let walls =
        List.map
          (fun fn ->
            cur := serve_replace_edit !cur ~fn;
            let t0 = Unix.gettimeofday () in
            (match Eng.edit_source eng2 !cur with
            | Ok _ -> ()
            | Error e ->
              Printf.eprintf "error: serve timing edit failed: %s\n" e;
              exit 1);
            Unix.gettimeofday () -. t0)
          [ "f1_1"; "f2_2" ]
      in
      (lw, mean walls)
    end
  in
  let warm_speedup = load_ref_wall /. Float.max 1e-9 warm_edit_wall in
  Printf.printf
    "  mean warm (replace) edit: %.3fs vs cold load %.3fs — %.1fx; query mean %.0fus\n%!"
    warm_edit_wall load_ref_wall warm_speedup (mean !query_us);
  let obs_on_us, obs_off_us = serve_obs_measure ~large ~source in
  let obs_overhead_pct = 100. *. (obs_on_us -. obs_off_us) /. Float.max 1e-9 obs_off_us in
  Printf.printf
    "  observability tax on resident queries: %.1fus on vs %.1fus off (%+.1f%%)\n\n%!"
    obs_on_us obs_off_us obs_overhead_pct;
  write_bench
    (if large then "BENCH_serve_large.json" else "BENCH_serve.json")
    (J.Obj
       [
         ( "schema",
           J.String (if large then "fsam.bench.serve_large/1" else "fsam.bench.serve/1") );
         ("quick", J.Bool !quick);
         ( "rows",
           J.List
             [
               J.Obj
                 [
                   ("program", J.String name);
                   ("differential", J.Bool (not large));
                   ("races", J.Int li.Eng.l_races);
                   ("cold_load_pre_work", J.Int load_pre_work);
                   ("cold_load_wall_s", J.Float load_wall);
                   ("edits", J.List edit_rows);
                   ("fallback_cold", J.Int (Eng.fallback_total eng));
                   ( "digests_identical_jobs124",
                     match jobs_invariant with
                     | Some ok -> J.Bool ok
                     | None -> J.String "not_run" );
                   ("mean_query_us", J.Float (mean !query_us));
                   ("warm_edit_wall_s", J.Float warm_edit_wall);
                   ("warm_speedup", J.Float warm_speedup);
                   ("obs_query_on_us", J.Float obs_on_us);
                   ("obs_query_off_us", J.Float obs_off_us);
                   ("obs_overhead_pct", J.Float obs_overhead_pct);
                 ];
             ] );
       ])

(* ------------------------------------------------------------------------- *)
(* Micro-benchmarks (bechamel): core kernels.                                 *)
(* ------------------------------------------------------------------------- *)

let micro () =
  let open Bechamel in
  let open Toolkit in
  let small_prog = (Option.get (W.find "word_count")).build 60 in
  let iset_a = Fsam_dsa.Iset.of_list (List.init 200 (fun i -> i * 7))
  and iset_b = Fsam_dsa.Iset.of_list (List.init 200 (fun i -> (i * 11) + 3)) in
  let ast = Fsam_andersen.Solver.run small_prog in
  let icfg = Fsam_mta.Icfg.build small_prog ast in
  let tm = Fsam_mta.Threads.build small_prog ast icfg in
  let mr = Fsam_andersen.Modref.compute small_prog ast in
  let mhp = Fsam_mta.Mhp.compute tm in
  let lk = Fsam_mta.Locks.compute small_prog ast tm in
  let pcg = Fsam_mta.Pcg.compute tm icfg in
  let tests =
    [
      Test.make ~name:"iset.union"
        (Staged.stage (fun () -> Fsam_dsa.Iset.union iset_a iset_b));
      Test.make ~name:"iset.union_fresh"
        (* defeat the memo: one operand rebuilt per run *)
        (Staged.stage (fun () ->
             Fsam_dsa.Iset.union iset_a
               (Fsam_dsa.Iset.add (Random.int 100000) iset_b)));
      Test.make ~name:"iset.inter"
        (Staged.stage (fun () -> Fsam_dsa.Iset.inter iset_a iset_b));
      Test.make ~name:"heap.push_pop"
        (* the priority-worklist kernel: 256 pushes + drain *)
        (Staged.stage
           (let h = Fsam_dsa.Heap.create ~capacity:256 () in
            fun () ->
              for i = 0 to 255 do
                Fsam_dsa.Heap.push h ~prio:((i * 7919) mod 256) i
              done;
              while not (Fsam_dsa.Heap.is_empty h) do
                ignore (Fsam_dsa.Heap.pop_item h)
              done));
      Test.make ~name:"sparse.solve_fifo"
        (Staged.stage (fun () ->
             D.run
               ~config:{ D.default_config with scheduler = Fsam_core.Sparse.Fifo }
               small_prog));
      Test.make ~name:"sparse.solve_priority"
        (Staged.stage (fun () ->
             D.run
               ~config:{ D.default_config with scheduler = Fsam_core.Sparse.Priority }
               small_prog));
      Test.make ~name:"andersen.solve"
        (Staged.stage (fun () -> Fsam_andersen.Solver.run small_prog));
      Test.make ~name:"threads.build"
        (Staged.stage (fun () -> Fsam_mta.Threads.build small_prog ast icfg));
      Test.make ~name:"mhp.compute" (Staged.stage (fun () -> Fsam_mta.Mhp.compute tm));
      Test.make ~name:"locks.compute"
        (Staged.stage (fun () -> Fsam_mta.Locks.compute small_prog ast tm));
      Test.make ~name:"svfg.build"
        (Staged.stage (fun () ->
             Fsam_memssa.Svfg.build small_prog ast mr icfg tm mhp lk pcg));
      Test.make ~name:"fsam.pipeline" (Staged.stage (fun () -> D.run small_prog));
    ]
  in
  Printf.printf "Micro-benchmarks (bechamel, monotonic clock):\n";
  List.iter
    (fun test ->
      let ols =
        Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
      in
      let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) () in
      let raw = Benchmark.all cfg [ Instance.monotonic_clock ] test in
      let results = Analyze.all ols Instance.monotonic_clock raw in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some (est :: _) ->
            if est > 1e6 then Printf.printf "  %-20s %12.3f ms/run\n" name (est /. 1e6)
            else if est > 1e3 then Printf.printf "  %-20s %12.3f us/run\n" name (est /. 1e3)
            else Printf.printf "  %-20s %12.1f ns/run\n" name est
          | _ -> Printf.printf "  %-20s (no estimate)\n" name)
        results;
      flush stdout)
    tests;
  Printf.printf "\n"

(* ------------------------------------------------------------------------- *)

let () =
  let args = Array.to_list Sys.argv in
  let rec parse = function
    | [] -> []
    | "--budget" :: v :: rest ->
      budget := float_of_string v;
      parse rest
    | "--quick" :: rest ->
      quick := true;
      parse rest
    | "--only" :: v :: rest ->
      only := Some (String.split_on_char ',' v);
      parse rest
    | "--size" :: v :: rest ->
      if v <> "small" && v <> "large" then begin
        Printf.eprintf "unknown --size %S (small|large)\n" v;
        exit 1
      end;
      size := v;
      parse rest
    | x :: rest -> x :: parse rest
  in
  let cmds = match parse (List.tl args) with [] -> [ "all" ] | l -> l in
  List.iter
    (fun cmd ->
      match cmd with
      | "table1" -> table1 ()
      | "table2" -> table2 ()
      | "figure12" -> figure12 ()
      | "sched" -> sched ()
      | "par" -> if !size = "large" then par_large () else par ()
      | "vf" -> vf ()
      | "prov" -> prov_bench ()
      | "serve" -> serve_bench ()
      | "serveobs" -> serve_obs_bench ()
      | "micro" -> micro ()
      | "all" ->
        table1 ();
        table2 ();
        figure12 ();
        sched ();
        par ();
        vf ();
        prov_bench ();
        serve_bench ();
        micro ()
      | other ->
        Printf.eprintf
          "unknown command %S (table1|table2|figure12|sched|par|vf|prov|serve|serveobs|micro|all)\n"
          other;
        exit 1)
    cmds
