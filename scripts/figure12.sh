#!/bin/sh
# Reproduce the paper's Figure 12 (impact of the three thread-interference
# analysis phases). Mirrors the original artifact's ./figure12.sh.
cd "$(dirname "$0")/.." || exit 1
exec dune exec bench/main.exe -- figure12
