#!/bin/sh
# Program statistics of the ten benchmark programs (paper Table 1).
cd "$(dirname "$0")/.." || exit 1
exec dune exec bench/main.exe -- table1
