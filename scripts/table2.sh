#!/bin/sh
# Reproduce the paper's Table 2 (analysis time and memory, FSAM vs NonSparse).
# Mirrors the original artifact's ./table2.sh. Optional: BUDGET=seconds.
cd "$(dirname "$0")/.." || exit 1
exec dune exec bench/main.exe -- table2 --budget "${BUDGET:-120}"
