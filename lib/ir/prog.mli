(** A whole program: functions, top-level variable table, abstract object
    table, fork-site table. The object table is growable because
    field-sensitive analysis materialises field objects on demand. *)

type t

val make :
  funcs:Func.t array ->
  var_names:string array ->
  objs:Memobj.t list ->
  fork_sites:(int * int) array ->
  thread_objs:int array ->
  main:int ->
  t

val n_funcs : t -> int
val func : t -> int -> Func.t
val find_func : t -> string -> int option
val main_fid : t -> int
val iter_funcs : t -> (Func.t -> unit) -> unit

val n_vars : t -> int
val var_name : t -> Stmt.var -> string

val n_objs : t -> int
(** Current count — grows as field objects are materialised. *)

val obj : t -> Stmt.obj -> Memobj.t
val obj_name : t -> Stmt.obj -> string
val iter_objs : t -> (Memobj.t -> unit) -> unit

val field_obj : t -> base:Stmt.obj -> field:string -> Stmt.obj
(** The field object for [(base, field)], created on first request. Fields of
    field objects are flattened onto the root base. Array objects are
    monolithic: their "fields" are the object itself. *)

val find_field_obj : t -> base:Stmt.obj -> field:string -> Stmt.obj option
(** Like {!field_obj} but read-only: [None] if the field object has not been
    materialised, never creates one. Used by the incremental engine to map
    object ids between program versions without perturbing the id assignment
    order a cold run would produce. *)

val fields_of : t -> Stmt.obj -> Stmt.obj list
(** All field objects materialised so far for the given base (excluding the
    base itself), sorted by object id so output built from this list is
    deterministic. *)

(* Fork sites ----------------------------------------------------------- *)

val n_forks : t -> int
val fork_site : t -> int -> int * int
(** [fork_site p k] = (fid, stmt index) of fork id [k]. *)

val thread_obj_of_fork : t -> int -> Stmt.obj
val fork_of_thread_obj : t -> Stmt.obj -> int option

(* Global statement numbering ------------------------------------------- *)

val n_stmts : t -> int
val gid : t -> fid:int -> idx:int -> int
val of_gid : t -> int -> int * int
val stmt_at : t -> int -> Stmt.t
val func_of_gid : t -> int -> int
val iter_stmts : t -> (int -> int -> Stmt.t -> unit) -> unit
(** [iter_stmts p f] calls [f gid fid stmt] for every statement. *)

val pp_stmt : t -> Format.formatter -> Stmt.t -> unit
val pp : Format.formatter -> t -> unit
