open Fsam_dsa

type t = {
  funcs : Func.t array;
  var_names : string array;
  objs : Memobj.t Vec.t;
  fork_sites : (int * int) array;
  thread_objs : int array;
  main : int;
  stmt_base : int array;
  total_stmts : int;
  field_cache : (int * string, int) Hashtbl.t;
  by_name : (string, int) Hashtbl.t;
  thread_obj_rev : (int, int) Hashtbl.t; (* thread object id -> fork id *)
}

let make ~funcs ~var_names ~objs ~fork_sites ~thread_objs ~main =
  let n = Array.length funcs in
  let stmt_base = Array.make n 0 in
  let total = ref 0 in
  Array.iteri
    (fun i f ->
      stmt_base.(i) <- !total;
      total := !total + Func.n_stmts f)
    funcs;
  let by_name = Hashtbl.create 16 in
  Array.iteri (fun i f -> Hashtbl.replace by_name f.Func.fname i) funcs;
  let thread_obj_rev = Hashtbl.create 16 in
  Array.iteri (fun k o -> Hashtbl.replace thread_obj_rev o k) thread_objs;
  {
    funcs;
    var_names;
    objs = Vec.of_list objs;
    fork_sites;
    thread_objs;
    main;
    stmt_base;
    total_stmts = !total;
    field_cache = Hashtbl.create 64;
    by_name;
    thread_obj_rev;
  }

let n_funcs p = Array.length p.funcs
let func p f = p.funcs.(f)
let find_func p name = Hashtbl.find_opt p.by_name name
let main_fid p = p.main
let iter_funcs p f = Array.iter f p.funcs
let n_vars p = Array.length p.var_names
let var_name p v = p.var_names.(v)
let n_objs p = Vec.length p.objs
let obj p o = Vec.get p.objs o
let obj_name p o = (obj p o).Memobj.name
let iter_objs p f = Vec.iter f p.objs

let field_obj p ~base ~field =
  let b = obj p base in
  if b.Memobj.is_array then base
  else begin
    (* flatten nested fields onto the root object *)
    let root = Memobj.base_of b in
    match Hashtbl.find_opt p.field_cache (root, field) with
    | Some o -> o
    | None ->
      let id = Vec.length p.objs in
      let info =
        Memobj.
          {
            id;
            name = Printf.sprintf "%s.%s" (obj p root).name field;
            kind = Field { base = root; field };
            is_array = false;
          }
      in
      ignore (Vec.push p.objs info);
      Hashtbl.replace p.field_cache (root, field) id;
      id
  end

let find_field_obj p ~base ~field =
  let b = obj p base in
  if b.Memobj.is_array then Some base
  else Hashtbl.find_opt p.field_cache (Memobj.base_of b, field)

let fields_of p base =
  (* Hashtbl.fold order depends on internal bucket layout; sort so callers
     emitting this list (reports, digests) are byte-stable across runs. *)
  Hashtbl.fold (fun (b, _) o acc -> if b = base then o :: acc else acc) p.field_cache []
  |> List.sort compare

let n_forks p = Array.length p.fork_sites
let fork_site p k = p.fork_sites.(k)
let thread_obj_of_fork p k = p.thread_objs.(k)
let fork_of_thread_obj p o = Hashtbl.find_opt p.thread_obj_rev o

let n_stmts p = p.total_stmts
let gid p ~fid ~idx = p.stmt_base.(fid) + idx

let func_of_gid p g =
  (* binary search over stmt_base *)
  let lo = ref 0 and hi = ref (Array.length p.stmt_base - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi + 1) / 2 in
    if p.stmt_base.(mid) <= g then lo := mid else hi := mid - 1
  done;
  !lo

let of_gid p g =
  let f = func_of_gid p g in
  (f, g - p.stmt_base.(f))

let stmt_at p g =
  let f, i = of_gid p g in
  Func.stmt p.funcs.(f) i

let iter_stmts p f =
  Array.iteri
    (fun fid fn ->
      Func.iter_stmts fn (fun i s -> f (p.stmt_base.(fid) + i) fid s))
    p.funcs

let pp_stmt p ppf s =
  Stmt.pp
    ~names:(fun v -> var_name p v)
    ~obj_names:(fun o -> obj_name p o)
    ~fn_names:(fun f -> (func p f).Func.fname)
    ppf s

let pp ppf p =
  iter_funcs p (fun f ->
      Format.fprintf ppf "@[<v 2>%s(%s):@," f.Func.fname
        (String.concat ", " (List.map (var_name p) f.Func.params));
      Func.iter_stmts f (fun i s ->
          Format.fprintf ppf "%3d: %a  -> [%s]@," i (pp_stmt p) s
            (String.concat "," (List.map string_of_int f.Func.succ.(i))));
      Format.fprintf ppf "@]@,")
