(* The resident analysis engine behind [fsam serve]: one loaded program
   generation (source text, frontend AST, full pipeline results, the
   singleton predicate captured from the solve), plus the edit / snapshot /
   restore lifecycle around it. Protocol concerns live in [Protocol].

   Edits are incremental end to end: the pre-phases warm-start from the
   previous generation through [Driver.warm_hooks] (Andersen re-solves only
   the affected closure, the thread model / MHP / lock analysis are reused
   verbatim when the edit provably left fork/join/lock structure unchanged,
   and the SVFG is patched in place), and the sparse solve warm-starts from
   the clean slice via [Incremental.plan]. Every reuse decision is guarded
   by a structural comparison of the two generations; any guard failure
   falls that phase back to a cold run and bumps an engine-level
   [serve.fallback_cold.<reason>] counter. Differential mode re-runs the
   whole pipeline cold after each warm edit and certifies byte-identical
   results (Andersen points-to, sparse top-level and memory facts, SVFG
   structural digest, races).

   An edit may also run asynchronously (one in flight at a time): the
   pipeline runs in a spawned domain against the immutable inputs while
   queries keep answering from the previous generation, which is replaced
   only when the edit is awaited — generation-pinned reads, no locks
   needed because a generation is never mutated after installation. *)

module Ast = Fsam_frontend.Ast
module Parser = Fsam_frontend.Parser
module Lexer = Fsam_frontend.Lexer
module Lower = Fsam_frontend.Lower
module Pretty = Fsam_frontend.Pretty
module Prog = Fsam_ir.Prog
module Func = Fsam_ir.Func
module Stmt = Fsam_ir.Stmt
module Memobj = Fsam_ir.Memobj
module A = Fsam_andersen.Solver
module D = Fsam_core.Driver
module Sparse = Fsam_core.Sparse
module Races = Fsam_core.Races
module Svfg = Fsam_memssa.Svfg
module Obs = Fsam_obs
module Iset = Fsam_dsa.Iset

type gen = {
  g_source : string Lazy.t;
      (** pretty-printed lazily after function-level edits; forced by
          [source] and [snapshot] only *)
  g_ast : Ast.program;
  g_d : D.t;
  g_singleton : int -> bool;
  g_races : Races.race list Lazy.t;
      (** forced at most once per generation, by the protocol thread *)
}

type t = {
  mutable gen : gen option;
  config : D.config;
  differential : bool;
  fallbacks : (string, int ref) Hashtbl.t;
      (** engine-level [serve.fallback_cold.<reason>] counters — kept here
          (not in [Obs.Metrics]) because the pipeline resets the global
          registry on every run *)
  mutable fallback_total : int;
  mutable pending : pending option;
  mutable generation : int;
      (** bumped on every install (load, edit, restore) — 0 = nothing
          loaded yet *)
  mutable gen_at_us : int;  (** monotonic timestamp of the last install *)
}

and pending = { p_domain : ((gen * edit_info), string) result Domain.t }

and load_info = {
  l_funcs : int;
  l_stmts : int;
  l_vars : int;
  l_objs : int;
  l_races : int;
  l_propagations : int;
  l_digest : string;
  l_work : work;
}

(* Pre-phase work actually performed by one pipeline run — the quantities
   the incremental machinery is meant to shrink. Captured from the run's
   metrics registry before anything resets it; phases reused verbatim
   contribute zero. *)
and work = {
  wk_andersen_props : int;  (** Andersen worklist propagations *)
  wk_mhp_summaries : int;  (** MHP summary rows computed *)
  wk_svfg_pairs : int;  (** [THREAD-VF] pair candidates considered *)
  wk_sparse_props : int;  (** sparse solver propagations *)
}

(* Which pre-phases of a warm edit reused the previous generation, what
   each phase cost, and why any phase fell back. *)
and phase_summary = {
  ph_andersen_warm : bool;
  ph_tm_reused : bool;
  ph_mhp_reused : bool;
  ph_locks_reused : bool;
  ph_svfg_patched : bool;
  ph_svfg_stats : Svfg.patch_stats option;
  ph_pre_s : float;
  ph_threads_s : float;
  ph_mhp_s : float;
  ph_locks_s : float;
  ph_svfg_s : float;
  ph_solve_s : float;
}

and edit_info = {
  e_mode : [ `Incremental | `Cold ];
  e_reason : string option;  (** why the sparse solve fell back, when it did *)
  e_propagations : int;
  e_stats : Incremental.stats option;
  e_phases : phase_summary option;  (** absent when the whole edit ran cold *)
  e_work : work;
  e_fallbacks : string list;
      (** fallback-counter keys accrued by this edit (phase-prefixed) *)
  e_cold_propagations : int option;  (** differential mode only *)
  e_cold_work : work option;  (** differential mode: the reference run's work *)
  e_identical : bool option;  (** differential mode only *)
}

let create ?(jobs = 1) ?(provenance = false) ?(differential = false) () =
  {
    gen = None;
    config = { D.default_config with D.jobs; provenance };
    differential;
    fallbacks = Hashtbl.create 16;
    fallback_total = 0;
    pending = None;
    generation = 0;
    gen_at_us = 0;
  }

let loaded t = t.gen <> None
let busy t = t.pending <> None

let set_gen t g =
  t.gen <- Some g;
  t.generation <- t.generation + 1;
  t.gen_at_us <- Fsam_obs.Monotonic.now_us ()

let generation t = t.generation
let gen_age_us t = if t.generation = 0 then 0 else Fsam_obs.Monotonic.elapsed_us ~since_us:t.gen_at_us

let gen_exn t =
  match t.gen with Some g -> g | None -> invalid_arg "Engine: no program loaded"

let driver t = (gen_exn t).g_d
let source t = Lazy.force (gen_exn t).g_source
let races t = Lazy.force (gen_exn t).g_races
let races_cached t = match t.gen with Some g -> Lazy.is_val g.g_races | None -> false

let note_fallback t key =
  t.fallback_total <- t.fallback_total + 1;
  match Hashtbl.find_opt t.fallbacks key with
  | Some r -> incr r
  | None -> Hashtbl.replace t.fallbacks key (ref 1)

let fallback_total t = t.fallback_total

let fallback_counts t =
  Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t.fallbacks [] |> List.sort compare

let parse source =
  match Parser.parse_string source with
  | ast -> Ok ast
  | exception Lexer.Error e | exception Parser.Error e -> Error e

let counter_or_0 name = Option.value ~default:0 (Obs.Metrics.find_counter name)

(* must run after the pipeline and before anything resets the registry *)
let capture_work d =
  {
    wk_andersen_props = counter_or_0 "andersen.iterations";
    wk_mhp_summaries = counter_or_0 "mhp.summaries_computed";
    wk_svfg_pairs = counter_or_0 "svfg.thread_pairs_considered";
    wk_sparse_props = Sparse.n_iterations d.D.sparse;
  }

let mk_gen t ~source ~ast ~d ~singleton =
  let jobs = t.config.D.jobs in
  {
    g_source = source;
    g_ast = ast;
    g_d = d;
    g_singleton = singleton;
    g_races = lazy (Races.detect ~jobs d);
  }

(* Every run goes through [run_with_solve] so the singleton predicate of the
   solve — an input to the next edit's incremental plan — can be captured. *)
let run_cold t ~source ~ast =
  let prog = Lower.lower ast in
  let captured = ref (fun _ -> false) in
  let d =
    D.run_with_solve ~config:t.config
      ~solve:(fun ~prog ~ast ~svfg ~singleton ~prov ~scheduler ->
        captured := singleton;
        Sparse.solve ~scheduler ?prov prog ast svfg ~singleton)
      prog
  in
  mk_gen t ~source ~ast ~d ~singleton:!captured

let info_of g =
  let d = g.g_d in
  {
    l_funcs = Prog.n_funcs d.D.prog;
    l_stmts = Prog.n_stmts d.D.prog;
    l_vars = Prog.n_vars d.D.prog;
    l_objs = Prog.n_objs d.D.prog;
    l_races = List.length (Lazy.force g.g_races);
    l_propagations = Sparse.n_iterations d.D.sparse;
    l_digest = Svfg.digest d.D.svfg;
    l_work = capture_work d;
  }

let load t source =
  if busy t then Error "edit in flight"
  else
    match parse source with
    | Error e -> Error e
    | Ok ast -> (
      match run_cold t ~source:(lazy source) ~ast with
      | g ->
        let info = info_of g in
        set_gen t g;
        Ok info
      | exception Lower.Error e -> Error e)

(* -- edit ------------------------------------------------------------------ *)

(* Splice one replacement function definition into the resident AST. The
   fragment must contain exactly one definition, of the named function; all
   other declarations stay physically identical, so the structural diff sees
   exactly one changed function. *)
let splice_fn ast ~fn ~code =
  match parse code with
  | Error e -> Error ("in replacement code: " ^ e)
  | Ok frag -> (
    match List.filter_map (function Ast.Dfun f -> Some f | _ -> None) frag with
    | [ nf ] when nf.Ast.fname = fn ->
      if List.exists (function Ast.Dfun _ -> false | _ -> true) frag then
        Error "replacement code must contain only the function definition"
      else begin
        let found = ref false in
        let ast' =
          List.map
            (function
              | Ast.Dfun f when f.Ast.fname = fn ->
                found := true;
                Ast.Dfun nf
              | d -> d)
            ast
        in
        if !found then Ok ast' else Error (Printf.sprintf "no function %S in program" fn)
      end
    | [ nf ] ->
      Error
        (Printf.sprintf "replacement defines %S, expected %S" nf.Ast.fname fn)
    | _ -> Error "replacement code must contain exactly one function definition")

exception Need_cold of string

(* Byte-identity check of two completed runs over the same (deterministically
   lowered) program: Andersen points-to, sparse top-level sets, memory facts
   (keyed by SVFG node {e structure} — a patched graph and a cold rebuild
   intern their nodes in different orders), SVFG fingerprint, races. *)
let same_results ~jobs a b =
  let n = Prog.n_vars a.D.prog in
  let and_ok = ref (n = Prog.n_vars b.D.prog) in
  if !and_ok then
    for v = 0 to n - 1 do
      if not (Iset.equal (A.pt_var a.D.ast v) (A.pt_var b.D.ast v)) then and_ok := false
    done;
  if !and_ok then
    for o = 0 to Prog.n_objs a.D.prog - 1 do
      if not (Iset.equal (A.pt_obj a.D.ast o) (A.pt_obj b.D.ast o)) then and_ok := false
    done;
  let ptv_ok = ref !and_ok in
  if !ptv_ok then
    for v = 0 to n - 1 do
      if not (Iset.equal (Sparse.pt_top a.D.sparse v) (Sparse.pt_top b.D.sparse v))
      then ptv_ok := false
    done;
  let pto_ok = ref true in
  if !ptv_ok then begin
    let tbl = Hashtbl.create 1024 in
    Sparse.iter_pto a.D.sparse (fun ~node ~obj s ->
        if not (Iset.is_empty s) then Hashtbl.replace tbl (Svfg.node a.D.svfg node, obj) s);
    let matched = ref 0 in
    Sparse.iter_pto b.D.sparse (fun ~node ~obj s ->
        if not (Iset.is_empty s) then
          match Hashtbl.find_opt tbl (Svfg.node b.D.svfg node, obj) with
          | Some s' when Iset.equal s s' -> incr matched
          | _ -> pto_ok := false);
    if !matched <> Hashtbl.length tbl then pto_ok := false
  end;
  !ptv_ok && !pto_ok
  && String.equal (Svfg.digest a.D.svfg) (Svfg.digest b.D.svfg)
  && List.sort compare (Races.detect ~jobs a) = List.sort compare (Races.detect ~jobs b)

(* -- cross-generation reuse guards ----------------------------------------- *)

let stmt_is_sync = function Stmt.Call _ | Stmt.Fork _ | Stmt.Join _ -> true | _ -> false
let stmt_is_lockop = function Stmt.Lock _ | Stmt.Unlock _ -> true | _ -> false

(* Structural facts about the edit, computed once per edit from the diff
   and the two lowered programs (no solver results needed). *)
type edit_shape = {
  sh_fid_identity : bool;  (** same functions at the same fids *)
  sh_gid_identity : bool;
      (** [sh_fid_identity] + per-function statement counts and local CFGs
          equal: statement gids denote the same positions in both programs *)
  sh_objs_identical : bool;  (** object tables structurally equal, id for id *)
  sh_changed : (int * Stmt.t * Stmt.t) list;
      (** (gid, old stmt, new stmt) for the statements that differ
          (populated only under [sh_gid_identity]) *)
  sh_dirty_fids : int list;  (** new fids whose AST changed *)
}

let edit_shape ~(diff : Diff.t) ~old_prog ~new_prog =
  let fid_identity =
    Prog.n_funcs old_prog = Prog.n_funcs new_prog
    &&
    let ok = ref true in
    Array.iteri (fun o n -> if o <> n then ok := false) diff.Diff.fid_map;
    !ok
  in
  let gid_identity =
    fid_identity
    && Prog.n_stmts old_prog = Prog.n_stmts new_prog
    &&
    let ok = ref true in
    Prog.iter_funcs new_prog (fun f ->
        let of_ = Prog.func old_prog f.Func.fid in
        if
          Func.n_stmts of_ <> Func.n_stmts f
          || of_.Func.succ <> f.Func.succ
          || of_.Func.pred <> f.Func.pred
          || of_.Func.exits <> f.Func.exits
        then ok := false);
    !ok
  in
  let objs_identical =
    Prog.n_objs old_prog = Prog.n_objs new_prog
    &&
    let ok = ref true in
    Prog.iter_objs new_prog (fun o -> if Prog.obj old_prog o.Memobj.id <> o then ok := false);
    !ok
  in
  let changed = ref [] in
  if gid_identity then
    Prog.iter_stmts new_prog (fun gid _ sn ->
        let so = Prog.stmt_at old_prog gid in
        if so <> sn then changed := (gid, so, sn) :: !changed);
  let dirty = ref [] in
  Array.iteri
    (fun fid clean -> if not clean then dirty := fid :: !dirty)
    diff.Diff.clean_new_fid;
  {
    sh_fid_identity = fid_identity;
    sh_gid_identity = gid_identity;
    sh_objs_identical = objs_identical;
    sh_changed = !changed;
    sh_dirty_fids = List.rev !dirty;
  }

(* The thread model (ICFG + thread discovery) is a function of the CFGs and
   the call / fork / join resolution. Reusable verbatim when gids are
   identical, no edited statement is a synchronization statement, and the
   new Andersen run resolved every call, fork and join site to the same
   (canonically sorted) targets as the old one. *)
let tm_guard ~shape ~old_prog ~old_and ~new_prog ~new_and =
  if not shape.sh_gid_identity then Error "tm_shape"
  else if Prog.n_forks old_prog <> Prog.n_forks new_prog then Error "tm_forks"
  else if
    List.exists (fun (_, so, sn) -> stmt_is_sync so || stmt_is_sync sn) shape.sh_changed
  then Error "tm_sync_edit"
  else begin
    let ok = ref true in
    Prog.iter_funcs new_prog (fun f ->
        let fid = f.Func.fid in
        Func.iter_stmts f (fun i s ->
            match s with
            | Stmt.Call _ ->
              if A.callees old_and ~fid ~idx:i <> A.callees new_and ~fid ~idx:i then
                ok := false
            | Stmt.Fork { fork_id; _ } ->
              if
                A.callees old_and ~fid ~idx:i <> A.callees new_and ~fid ~idx:i
                || A.fork_targets old_and fork_id <> A.fork_targets new_and fork_id
              then ok := false
            | Stmt.Join _ ->
              if A.join_threads old_and ~fid ~idx:i <> A.join_threads new_and ~fid ~idx:i
              then ok := false
            | _ -> ()));
    if !ok then Ok () else Error "tm_resolution_drift"
  end

(* The lock analysis is a function of the thread model, the lock/unlock
   statements' CFG positions and their operands' points-to sets. *)
let locks_guard ~shape ~old_prog ~old_and ~new_prog ~new_and =
  if List.exists (fun (_, so, sn) -> stmt_is_lockop so || stmt_is_lockop sn) shape.sh_changed
  then Error "locks_edit"
  else begin
    let ok = ref true in
    Prog.iter_stmts new_prog (fun gid _ sn ->
        match sn with
        | Stmt.Lock vn | Stmt.Unlock vn -> (
          match Prog.stmt_at old_prog gid with
          | Stmt.Lock vo | Stmt.Unlock vo ->
            if not (Iset.equal (A.pt_var old_and vo) (A.pt_var new_and vn)) then ok := false
          | _ -> ok := false)
        | _ -> ());
    if !ok then Ok () else Error "locks_operand_drift"
  end

(* -- the edit pipeline ----------------------------------------------------- *)

(* Computes a full new generation from [old] + [new_ast] without touching
   [t.gen] — safe to run in a spawned domain while queries keep answering
   from [old]. All fallback bookkeeping rides back in [e_fallbacks]. *)
let compute_edit t ~old new_ast =
  let new_source = lazy (Pretty.to_string new_ast) in
  let reason = ref None in
  let stats = ref None in
  let fallbacks = ref [] in
  let note key = fallbacks := key :: !fallbacks in
  let phases = ref None in
  let run_incremental () =
    match Lower.lower new_ast with
    | exception Lower.Error e -> Error e
    | new_prog -> (
      match
        Diff.compute ~old_ast:old.g_ast ~old_prog:old.g_d.D.prog ~new_ast ~new_prog
      with
      | Error msg ->
        reason := Some msg;
        note "diff";
        Ok (run_cold t ~source:new_source ~ast:new_ast)
      | Ok diff -> (
        let old_d = old.g_d in
        let old_prog = old_d.D.prog and old_and = old_d.D.ast in
        let shape = edit_shape ~diff ~old_prog ~new_prog in
        let f_and = ref false
        and f_tm = ref false
        and f_mhp = ref false
        and f_locks = ref false
        and f_svfg = ref false in
        let svfg_stats = ref None in
        let warm_hooks =
          {
            D.wh_andersen =
              (fun prog ->
                if not shape.sh_fid_identity then begin
                  note "andersen_fid_drift";
                  None
                end
                else
                  match
                    A.run_warm prog
                      ~warm:
                        {
                          A.ws_old = old_and;
                          ws_var_map = diff.Diff.var_map;
                          ws_dirty_fids = shape.sh_dirty_fids;
                        }
                  with
                  | Ok a ->
                    f_and := true;
                    Some a
                  | Error r ->
                    note r;
                    None);
            D.wh_thread_model =
              (fun _prog new_and ->
                match tm_guard ~shape ~old_prog ~old_and ~new_prog ~new_and with
                | Ok () ->
                  f_tm := true;
                  Some (old_d.D.icfg, old_d.D.tm)
                | Error r ->
                  note r;
                  None);
            D.wh_mhp =
              (fun tm ->
                (* MHP is a pure function of the thread model: reused iff
                   the thread model itself was *)
                if tm == old_d.D.tm then begin
                  f_mhp := true;
                  Some old_d.D.mhp
                end
                else begin
                  note "mhp_tm_rebuilt";
                  None
                end);
            D.wh_locks =
              (fun _prog new_and tm ->
                if tm != old_d.D.tm then begin
                  note "locks_tm_rebuilt";
                  None
                end
                else
                  match locks_guard ~shape ~old_prog ~old_and ~new_prog ~new_and with
                  | Ok () ->
                    f_locks := true;
                    Some old_d.D.locks
                  | Error r ->
                    note r;
                    None);
            D.wh_svfg =
              (fun prog new_and modref icfg tm mhp locks pcg ->
                if not (tm == old_d.D.tm && mhp == old_d.D.mhp && locks == old_d.D.locks)
                then begin
                  note "svfg_inputs_rebuilt";
                  None
                end
                else if not shape.sh_objs_identical then begin
                  note "svfg_obj_drift";
                  None
                end
                else
                  match
                    Svfg.patch old_d.D.svfg ~config:t.config.D.svfg ~jobs:t.config.D.jobs
                      ~prog ~old_ast:old_and ~ast:new_and ~old_mr:old_d.D.modref ~mr:modref
                      ~icfg ~tm ~mhp ~lk:locks ~pcg ~edited_fids:shape.sh_dirty_fids ()
                  with
                  | Ok (s, ps) ->
                    f_svfg := true;
                    svfg_stats := Some ps;
                    Some s
                  | Error r ->
                    note r;
                    None);
          }
        in
        (* warm pre-phases skip the derivation recording [explain] needs;
           under --provenance every phase runs cold (the sparse solve still
           warm-starts — it threads [?prov] through) *)
        let warm_hooks =
          if t.config.D.provenance then begin
            note "provenance_mode";
            None
          end
          else Some warm_hooks
        in
        let captured = ref (fun _ -> false) in
        match
          D.run_with_solve ~config:t.config ?warm:warm_hooks
            ~solve:(fun ~prog ~ast ~svfg ~singleton ~prov ~scheduler ->
              captured := singleton;
              let n_objs0 = Prog.n_objs prog in
              match
                Incremental.plan ~diff ~old_prog ~old_and ~old_svfg:old_d.D.svfg
                  ~old_sparse:old_d.D.sparse ~old_singleton:old.g_singleton ~new_prog:prog
                  ~new_and:ast ~new_svfg:svfg ~new_singleton:singleton
              with
              | Error msg ->
                reason := Some msg;
                note "sparse_plan";
                Sparse.solve ~scheduler ?prov prog ast svfg ~singleton
              | Ok (warm, st) ->
                let sp = Sparse.solve ~scheduler ~warm ?prov prog ast svfg ~singleton in
                (* the warm drain skipped clean units; had it materialised a
                   field object the cold reference run wouldn't have (or in a
                   different order), every object id after it would drift.
                   Andersen over-approximates the sparse solve, so this must
                   not happen — but it is cheap to verify. *)
                if Prog.n_objs prog <> n_objs0 then
                  raise (Need_cold "warm solve materialised objects");
                stats := Some st;
                sp)
            new_prog
        with
        | d ->
          phases :=
            Some
              {
                ph_andersen_warm = !f_and;
                ph_tm_reused = !f_tm;
                ph_mhp_reused = !f_mhp;
                ph_locks_reused = !f_locks;
                ph_svfg_patched = !f_svfg;
                ph_svfg_stats = !svfg_stats;
                ph_pre_s = d.D.times.D.t_pre;
                ph_threads_s = d.D.times.D.t_thread_model;
                ph_mhp_s = d.D.times.D.t_interleaving;
                ph_locks_s = d.D.times.D.t_lock;
                ph_svfg_s = d.D.times.D.t_svfg;
                ph_solve_s = d.D.times.D.t_solve;
              };
          Ok (mk_gen t ~source:new_source ~ast:new_ast ~d ~singleton:!captured)
        | exception Need_cold msg ->
          (* the tainted [new_prog] is discarded: re-lower from the AST so the
             cold run sees the pristine object table *)
          reason := Some msg;
          note "sparse_growth";
          stats := None;
          phases := None;
          Ok (run_cold t ~source:new_source ~ast:new_ast)))
  in
  match run_incremental () with
  | Error e -> Error e
  | Ok g ->
    let warm_work = capture_work g.g_d in
    let mode = if !stats = None then `Cold else `Incremental in
    let cold_propagations, cold_work, identical =
      if t.differential && mode = `Incremental then begin
        let cold = run_cold t ~source:new_source ~ast:new_ast in
        let cw = capture_work cold.g_d in
        ( Some (Sparse.n_iterations cold.g_d.D.sparse),
          Some cw,
          Some (same_results ~jobs:t.config.D.jobs g.g_d cold.g_d) )
      end
      else (None, None, None)
    in
    Ok
      ( g,
        {
          e_mode = mode;
          e_reason = !reason;
          e_propagations = Sparse.n_iterations g.g_d.D.sparse;
          e_stats = !stats;
          e_phases = !phases;
          e_work = warm_work;
          e_fallbacks = List.rev !fallbacks;
          e_cold_propagations = cold_propagations;
          e_cold_work = cold_work;
          e_identical = identical;
        } )

let install t = function
  | Error e -> Error e
  | Ok (g, info) ->
    set_gen t g;
    List.iter (fun key -> note_fallback t key) info.e_fallbacks;
    Ok info

let edit_ast t new_ast =
  let old = gen_exn t in
  if busy t then Error "edit in flight"
  else install t (compute_edit t ~old new_ast)

let edit_fn t ~fn ~code =
  let old = gen_exn t in
  match splice_fn old.g_ast ~fn ~code with
  | Error e -> Error e
  | Ok ast -> edit_ast t ast

let edit_source t source =
  let _ = gen_exn t in
  match parse source with Error e -> Error e | Ok ast -> edit_ast t ast

(* -- asynchronous edits ---------------------------------------------------- *)

(* The spawned domain only reads immutable state (the old generation, the
   engine config, the parsed new AST); [t.gen] and the fallback counters are
   only touched on the protocol thread, at [edit_wait]. *)
let edit_ast_async t new_ast =
  let old = gen_exn t in
  if busy t then Error "edit in flight"
  else begin
    let d = Domain.spawn (fun () -> compute_edit t ~old new_ast) in
    t.pending <- Some { p_domain = d };
    Ok ()
  end

let edit_fn_async t ~fn ~code =
  let old = gen_exn t in
  match splice_fn old.g_ast ~fn ~code with
  | Error e -> Error e
  | Ok ast -> edit_ast_async t ast

let edit_source_async t source =
  let _ = gen_exn t in
  match parse source with
  | Error e -> Error e
  | Ok ast -> edit_ast_async t ast

let edit_wait t =
  match t.pending with
  | None -> Error "no edit in flight"
  | Some p ->
    let r = Domain.join p.p_domain in
    t.pending <- None;
    install t r

(* -- snapshot / restore ---------------------------------------------------- *)

(* [Iset] values are hash-consed (physical equality, process-local tags), so
   marshalling them directly would be unsound; snapshots store portable
   element lists and re-intern on restore. Memory facts are keyed by SVFG
   node {e structure} (gids / fids / object ids), never by intern-order node
   index: an incrementally patched generation numbers its nodes differently
   from the fresh graph a restore builds. The AST is plain data.

   Restore never resurrects solver-internal structures: it re-lowers and
   re-runs every pre-phase cold (rebuilding the edge-owner and def-use
   splice indexes from scratch), then warm-starts only the final sparse
   solve from the stored facts under a full verification sweep. A restored
   daemon therefore warm-patches subsequent edits from freshly built
   structures, never from marshalled ones. *)
type payload = {
  sp_source : string;
  sp_ast : Ast.program;
  sp_ptv : (int * int list) list;
  sp_pto : ((Svfg.node * int) * int list) list;
  sp_digest : string;
}

let magic = "FSAMSNAP2\n"

let snapshot t path =
  match t.gen with
  | None -> Error "no program loaded"
  | Some _ when busy t -> Error "edit in flight"
  | Some g -> (
    let sp = g.g_d.D.sparse in
    let svfg = g.g_d.D.svfg in
    let ptv = ref [] in
    for v = Prog.n_vars g.g_d.D.prog - 1 downto 0 do
      let s = Sparse.pt_top sp v in
      if not (Iset.is_empty s) then ptv := (v, Iset.elements s) :: !ptv
    done;
    let pto = ref [] in
    Sparse.iter_pto sp (fun ~node ~obj s ->
        if not (Iset.is_empty s) then
          pto := ((Svfg.node svfg node, obj), Iset.elements s) :: !pto);
    let payload =
      {
        sp_source = Lazy.force g.g_source;
        sp_ast = g.g_ast;
        sp_ptv = !ptv;
        sp_pto = List.sort compare !pto;
        sp_digest = Svfg.digest svfg;
      }
    in
    try
      let oc = open_out_bin path in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () ->
          output_string oc magic;
          Marshal.to_channel oc payload []);
      Ok ()
    with Sys_error e -> Error e)

exception Bad_snapshot of string

let restore t path =
  if busy t then Error "edit in flight"
  else
    try
      let payload =
        let ic = open_in_bin path in
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () ->
            let m =
              try really_input_string ic (String.length magic)
              with End_of_file -> raise (Bad_snapshot "truncated file")
            in
            if m <> magic then raise (Bad_snapshot "not an fsam snapshot");
            match (Marshal.from_channel ic : payload) with
            | p -> p
            | exception (Failure _ | End_of_file) ->
              raise (Bad_snapshot "corrupt payload"))
      in
      let ast = payload.sp_ast in
      let prog = Lower.lower ast in
      let captured = ref (fun _ -> false) in
      let d =
        D.run_with_solve ~config:t.config
          ~solve:(fun ~prog ~ast:and_ ~svfg ~singleton ~prov ~scheduler ->
            captured := singleton;
            let n_vars = Prog.n_vars prog in
            let n_objs = Prog.n_objs prog in
            let w_ptv = Array.make (max 1 n_vars) Iset.empty in
            List.iter
              (fun (v, elts) ->
                if v < 0 || v >= n_vars then
                  raise (Bad_snapshot "variable id out of range");
                w_ptv.(v) <- Iset.of_list elts)
              payload.sp_ptv;
            let w_pto =
              List.map
                (fun ((nd, obj), elts) ->
                  let node =
                    match Svfg.node_id svfg nd with
                    | Some n -> n
                    | None -> raise (Bad_snapshot "unknown SVFG node")
                  in
                  if obj < 0 || obj >= n_objs then
                    raise (Bad_snapshot "fact id out of range");
                  ((node, obj), Iset.of_list elts))
                payload.sp_pto
            in
            (* verification sweep: seed EVERY unit — each statement gid plus
               each non-statement SVFG node (statement nodes share their gid's
               unit). With the snapshot pre-loaded this is ~one pass over the
               program; any fact the snapshot is missing would register as
               growth, which we reject below. *)
            let w_units = ref [] in
            for n = Svfg.n_nodes svfg - 1 downto 0 do
              match Svfg.node svfg n with
              | Svfg.Stmt_node _ -> ()
              | _ -> w_units := Sparse.unit_of_svfg_node prog svfg n :: !w_units
            done;
            for g = Prog.n_stmts prog - 1 downto 0 do
              w_units := g :: !w_units
            done;
            let w_units = !w_units in
            let sp =
              Sparse.solve ~scheduler ~warm:{ Sparse.w_ptv; w_pto; w_units } ?prov prog
                and_ svfg ~singleton
            in
            if Sparse.n_growth sp <> 0 then
              raise
                (Bad_snapshot
                   (Printf.sprintf
                      "stale snapshot: verification sweep grew %d facts"
                      (Sparse.n_growth sp)));
            sp)
          prog
      in
      if not (String.equal (Svfg.digest d.D.svfg) payload.sp_digest) then
        Error "stale snapshot: SVFG fingerprint mismatch"
      else begin
        let g =
          mk_gen t ~source:(lazy payload.sp_source) ~ast ~d ~singleton:!captured
        in
        let info = info_of g in
        set_gen t g;
        Ok info
      end
    with
    | Bad_snapshot e -> Error e
    | Sys_error e -> Error e
    | Lower.Error e -> Error ("snapshot program no longer lowers: " ^ e)
