(* The resident analysis engine behind [fsam serve]: one loaded program
   generation (source text, frontend AST, full pipeline results, the
   singleton predicate captured from the solve), plus the edit / snapshot /
   restore lifecycle around it. Protocol concerns live in [Protocol]. *)

module Ast = Fsam_frontend.Ast
module Parser = Fsam_frontend.Parser
module Lexer = Fsam_frontend.Lexer
module Lower = Fsam_frontend.Lower
module Pretty = Fsam_frontend.Pretty
module Prog = Fsam_ir.Prog
module D = Fsam_core.Driver
module Sparse = Fsam_core.Sparse
module Races = Fsam_core.Races
module Svfg = Fsam_memssa.Svfg
module Iset = Fsam_dsa.Iset

type gen = {
  g_source : string;
  g_ast : Ast.program;
  g_d : D.t;
  g_singleton : int -> bool;
}

type t = {
  mutable gen : gen option;
  config : D.config;
  differential : bool;
}

type load_info = {
  l_funcs : int;
  l_stmts : int;
  l_vars : int;
  l_objs : int;
  l_races : int;
  l_propagations : int;
  l_digest : string;
}

type edit_info = {
  e_mode : [ `Incremental | `Cold ];
  e_reason : string option;  (** why the engine fell back, when it did *)
  e_propagations : int;
  e_stats : Incremental.stats option;
  e_cold_propagations : int option;  (** differential mode only *)
  e_identical : bool option;  (** differential mode only *)
}

let create ?(jobs = 1) ?(provenance = false) ?(differential = false) () =
  { gen = None; config = { D.default_config with D.jobs; provenance }; differential }

let loaded t = t.gen <> None

let gen_exn t =
  match t.gen with Some g -> g | None -> invalid_arg "Engine: no program loaded"

let driver t = (gen_exn t).g_d
let source t = (gen_exn t).g_source

let parse source =
  match Parser.parse_string source with
  | ast -> Ok ast
  | exception Lexer.Error e | exception Parser.Error e -> Error e

(* Every run goes through [run_with_solve] so the singleton predicate of the
   solve — an input to the next edit's incremental plan — can be captured. *)
let run_cold t ~source ~ast =
  let prog = Lower.lower ast in
  let captured = ref (fun _ -> false) in
  let d =
    D.run_with_solve ~config:t.config
      ~solve:(fun ~prog ~ast ~svfg ~singleton ~prov ~scheduler ->
        captured := singleton;
        Sparse.solve ~scheduler ?prov prog ast svfg ~singleton)
      prog
  in
  { g_source = source; g_ast = ast; g_d = d; g_singleton = !captured }

let info_of ?(races = true) t g =
  let d = g.g_d in
  {
    l_funcs = Prog.n_funcs d.D.prog;
    l_stmts = Prog.n_stmts d.D.prog;
    l_vars = Prog.n_vars d.D.prog;
    l_objs = Prog.n_objs d.D.prog;
    l_races = (if races then List.length (Races.detect ~jobs:t.config.D.jobs d) else 0);
    l_propagations = Sparse.n_iterations d.D.sparse;
    l_digest = Svfg.digest d.D.svfg;
  }

let load t source =
  match parse source with
  | Error e -> Error e
  | Ok ast -> (
    match run_cold t ~source ~ast with
    | g ->
      t.gen <- Some g;
      Ok (info_of t g)
    | exception Lower.Error e -> Error e)

(* -- edit ------------------------------------------------------------------ *)

(* Splice one replacement function definition into the resident AST. The
   fragment must contain exactly one definition, of the named function; all
   other declarations stay physically identical, so the structural diff sees
   exactly one changed function. *)
let splice_fn ast ~fn ~code =
  match parse code with
  | Error e -> Error ("in replacement code: " ^ e)
  | Ok frag -> (
    match List.filter_map (function Ast.Dfun f -> Some f | _ -> None) frag with
    | [ nf ] when nf.Ast.fname = fn ->
      if List.exists (function Ast.Dfun _ -> false | _ -> true) frag then
        Error "replacement code must contain only the function definition"
      else begin
        let found = ref false in
        let ast' =
          List.map
            (function
              | Ast.Dfun f when f.Ast.fname = fn ->
                found := true;
                Ast.Dfun nf
              | d -> d)
            ast
        in
        if !found then Ok ast' else Error (Printf.sprintf "no function %S in program" fn)
      end
    | [ nf ] ->
      Error
        (Printf.sprintf "replacement defines %S, expected %S" nf.Ast.fname fn)
    | _ -> Error "replacement code must contain exactly one function definition")

exception Need_cold of string

(* Byte-identity check of two completed runs over the same (deterministically
   lowered) program: top-level sets, memory facts, SVFG fingerprint, races. *)
let same_results ~jobs a b =
  let n = Prog.n_vars a.D.prog in
  let ptv_ok = ref (n = Prog.n_vars b.D.prog) in
  if !ptv_ok then
    for v = 0 to n - 1 do
      if not (Iset.equal (Sparse.pt_top a.D.sparse v) (Sparse.pt_top b.D.sparse v))
      then ptv_ok := false
    done;
  let pto_ok = ref true in
  if !ptv_ok then begin
    let tbl = Hashtbl.create 1024 in
    Sparse.iter_pto a.D.sparse (fun ~node ~obj s ->
        if not (Iset.is_empty s) then Hashtbl.replace tbl (node, obj) s);
    let matched = ref 0 in
    Sparse.iter_pto b.D.sparse (fun ~node ~obj s ->
        if not (Iset.is_empty s) then
          match Hashtbl.find_opt tbl (node, obj) with
          | Some s' when Iset.equal s s' -> incr matched
          | _ -> pto_ok := false);
    if !matched <> Hashtbl.length tbl then pto_ok := false
  end;
  !ptv_ok && !pto_ok
  && String.equal (Svfg.digest a.D.svfg) (Svfg.digest b.D.svfg)
  && List.sort compare (Races.detect ~jobs a) = List.sort compare (Races.detect ~jobs b)

let edit_ast t new_ast =
  let old = gen_exn t in
  let new_source = Pretty.to_string new_ast in
  let reason = ref None in
  let stats = ref None in
  let run_incremental () =
    match Lower.lower new_ast with
    | exception Lower.Error e -> Error e
    | new_prog -> (
      match
        Diff.compute ~old_ast:old.g_ast ~old_prog:old.g_d.D.prog ~new_ast
          ~new_prog
      with
      | Error msg ->
        reason := Some msg;
        Ok (run_cold t ~source:new_source ~ast:new_ast)
      | Ok diff -> (
        let captured = ref (fun _ -> false) in
        let warm_used = ref false in
        match
          D.run_with_solve ~config:t.config
            ~solve:(fun ~prog ~ast ~svfg ~singleton ~prov ~scheduler ->
              captured := singleton;
              let n_objs0 = Prog.n_objs prog in
              match
                Incremental.plan ~diff ~old_prog:old.g_d.D.prog
                  ~old_and:old.g_d.D.ast ~old_svfg:old.g_d.D.svfg
                  ~old_sparse:old.g_d.D.sparse ~old_singleton:old.g_singleton
                  ~new_prog:prog ~new_and:ast ~new_svfg:svfg
                  ~new_singleton:singleton
              with
              | Error msg ->
                reason := Some msg;
                Sparse.solve ~scheduler ?prov prog ast svfg ~singleton
              | Ok (warm, st) ->
                let sp = Sparse.solve ~scheduler ~warm ?prov prog ast svfg ~singleton in
                (* the warm drain skipped clean units; had it materialised a
                   field object the cold reference run wouldn't have (or in a
                   different order), every object id after it would drift.
                   Andersen (always cold) over-approximates the sparse solve,
                   so this must not happen — but it is cheap to verify. *)
                if Prog.n_objs prog <> n_objs0 then
                  raise (Need_cold "warm solve materialised objects");
                warm_used := true;
                stats := Some st;
                sp)
            new_prog
        with
        | d ->
          Ok { g_source = new_source; g_ast = new_ast; g_d = d; g_singleton = !captured }
        | exception Need_cold msg ->
          (* the tainted [new_prog] is discarded: re-lower from the AST so the
             cold run sees the pristine object table *)
          reason := Some msg;
          warm_used := false;
          stats := None;
          Ok (run_cold t ~source:new_source ~ast:new_ast)))
  in
  match run_incremental () with
  | Error e -> Error e
  | Ok g ->
    let mode = if !stats = None then `Cold else `Incremental in
    let cold_propagations, identical =
      if t.differential && mode = `Incremental then begin
        let cold = run_cold t ~source:new_source ~ast:new_ast in
        ( Some (Sparse.n_iterations cold.g_d.D.sparse),
          Some (same_results ~jobs:t.config.D.jobs g.g_d cold.g_d) )
      end
      else (None, None)
    in
    t.gen <- Some g;
    Ok
      {
        e_mode = mode;
        e_reason = !reason;
        e_propagations = Sparse.n_iterations g.g_d.D.sparse;
        e_stats = !stats;
        e_cold_propagations = cold_propagations;
        e_identical = identical;
      }

let edit_fn t ~fn ~code =
  let old = gen_exn t in
  match splice_fn old.g_ast ~fn ~code with
  | Error e -> Error e
  | Ok ast -> edit_ast t ast

let edit_source t source =
  let _ = gen_exn t in
  match parse source with Error e -> Error e | Ok ast -> edit_ast t ast

(* -- snapshot / restore ---------------------------------------------------- *)

(* [Iset] values are hash-consed (physical equality, process-local tags), so
   marshalling them directly would be unsound; snapshots store portable
   element lists and re-intern on restore. The AST is plain data. *)
type payload = {
  sp_source : string;
  sp_ast : Ast.program;
  sp_ptv : (int * int list) list;
  sp_pto : ((int * int) * int list) list;
  sp_digest : string;
}

let magic = "FSAMSNAP1\n"

let snapshot t path =
  match t.gen with
  | None -> Error "no program loaded"
  | Some g -> (
    let sp = g.g_d.D.sparse in
    let ptv = ref [] in
    for v = Prog.n_vars g.g_d.D.prog - 1 downto 0 do
      let s = Sparse.pt_top sp v in
      if not (Iset.is_empty s) then ptv := (v, Iset.elements s) :: !ptv
    done;
    let pto = ref [] in
    Sparse.iter_pto sp (fun ~node ~obj s ->
        if not (Iset.is_empty s) then pto := ((node, obj), Iset.elements s) :: !pto);
    let payload =
      {
        sp_source = g.g_source;
        sp_ast = g.g_ast;
        sp_ptv = !ptv;
        sp_pto = List.sort compare !pto;
        sp_digest = Svfg.digest g.g_d.D.svfg;
      }
    in
    try
      let oc = open_out_bin path in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () ->
          output_string oc magic;
          Marshal.to_channel oc payload []);
      Ok ()
    with Sys_error e -> Error e)

exception Bad_snapshot of string

let restore t path =
  try
    let payload =
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let m =
            try really_input_string ic (String.length magic)
            with End_of_file -> raise (Bad_snapshot "truncated file")
          in
          if m <> magic then raise (Bad_snapshot "not an fsam snapshot");
          match (Marshal.from_channel ic : payload) with
          | p -> p
          | exception (Failure _ | End_of_file) ->
            raise (Bad_snapshot "corrupt payload"))
    in
    let ast = payload.sp_ast in
    let prog = Lower.lower ast in
    let captured = ref (fun _ -> false) in
    let d =
      D.run_with_solve ~config:t.config
        ~solve:(fun ~prog ~ast:and_ ~svfg ~singleton ~prov ~scheduler ->
          captured := singleton;
          let n_vars = Prog.n_vars prog in
          let n_objs = Prog.n_objs prog in
          let n_nodes = Svfg.n_nodes svfg in
          let w_ptv = Array.make (max 1 n_vars) Iset.empty in
          List.iter
            (fun (v, elts) ->
              if v < 0 || v >= n_vars then
                raise (Bad_snapshot "variable id out of range");
              w_ptv.(v) <- Iset.of_list elts)
            payload.sp_ptv;
          let w_pto =
            List.map
              (fun ((node, obj), elts) ->
                if node < 0 || node >= n_nodes || obj < 0 || obj >= n_objs then
                  raise (Bad_snapshot "fact id out of range");
                ((node, obj), Iset.of_list elts))
              payload.sp_pto
          in
          (* verification sweep: seed EVERY unit — each statement gid plus
             each non-statement SVFG node (statement nodes share their gid's
             unit). With the snapshot pre-loaded this is ~one pass over the
             program; any fact the snapshot is missing would register as
             growth, which we reject below. *)
          let w_units = ref [] in
          for n = n_nodes - 1 downto 0 do
            match Svfg.node svfg n with
            | Svfg.Stmt_node _ -> ()
            | _ -> w_units := Sparse.unit_of_svfg_node prog svfg n :: !w_units
          done;
          for g = Prog.n_stmts prog - 1 downto 0 do
            w_units := g :: !w_units
          done;
          let w_units = !w_units in
          let sp =
            Sparse.solve ~scheduler ~warm:{ Sparse.w_ptv; w_pto; w_units } ?prov prog
              and_ svfg ~singleton
          in
          if Sparse.n_growth sp <> 0 then
            raise
              (Bad_snapshot
                 (Printf.sprintf
                    "stale snapshot: verification sweep grew %d facts"
                    (Sparse.n_growth sp)));
          sp)
        prog
    in
    if not (String.equal (Svfg.digest d.D.svfg) payload.sp_digest) then
      Error "stale snapshot: SVFG fingerprint mismatch"
    else begin
      let g =
        { g_source = payload.sp_source; g_ast = ast; g_d = d; g_singleton = !captured }
      in
      t.gen <- Some g;
      Ok (info_of t g)
    end
  with
  | Bad_snapshot e -> Error e
  | Sys_error e -> Error e
  | Lower.Error e -> Error ("snapshot program no longer lowers: " ^ e)
