(** The resident analysis engine behind [fsam serve]: holds one loaded
    program generation (source, AST, full {!Fsam_core.Driver} results and
    the captured singleton predicate) and implements the lifecycle around
    it — cold load, incremental edit (warm pre-phases + warm sparse solve,
    with optional differential cross-check), asynchronous edits with
    generation-pinned queries, snapshot and restore. *)

type t

type work = {
  wk_andersen_props : int;  (** Andersen worklist propagations *)
  wk_mhp_summaries : int;  (** MHP summary rows computed *)
  wk_svfg_pairs : int;  (** [THREAD-VF] pair candidates considered *)
  wk_sparse_props : int;  (** sparse solver propagations *)
}
(** Pre-phase + solve work actually performed by one pipeline run — the
    quantities the incremental machinery is meant to shrink. Phases reused
    verbatim contribute zero. *)

type load_info = {
  l_funcs : int;
  l_stmts : int;
  l_vars : int;
  l_objs : int;
  l_races : int;
  l_propagations : int;
  l_digest : string;  (** {!Fsam_memssa.Svfg.digest} of the resident run *)
  l_work : work;
}

type phase_summary = {
  ph_andersen_warm : bool;  (** Andersen re-solved only the affected closure *)
  ph_tm_reused : bool;  (** ICFG + thread model reused verbatim *)
  ph_mhp_reused : bool;
  ph_locks_reused : bool;
  ph_svfg_patched : bool;  (** SVFG patched in place of a cold rebuild *)
  ph_svfg_stats : Fsam_memssa.Svfg.patch_stats option;
  ph_pre_s : float;
  ph_threads_s : float;
  ph_mhp_s : float;
  ph_locks_s : float;
  ph_svfg_s : float;
  ph_solve_s : float;
}
(** Which pre-phases of a warm edit reused the previous generation, and the
    wall clock of each phase (whatever path it took). *)

type edit_info = {
  e_mode : [ `Incremental | `Cold ];
  e_reason : string option;
      (** why the sparse solve fell back to cold, when it did *)
  e_propagations : int;  (** solver propagations of the accepted run *)
  e_stats : Incremental.stats option;  (** incremental mode only *)
  e_phases : phase_summary option;  (** absent when the whole edit ran cold *)
  e_work : work;  (** work performed by the accepted (warm) run *)
  e_fallbacks : string list;
      (** fallback-counter keys this edit accrued (also accumulated into
          {!fallback_counts}) *)
  e_cold_propagations : int option;
      (** differential mode: propagations of the reference cold run *)
  e_cold_work : work option;  (** differential mode: the cold run's work *)
  e_identical : bool option;
      (** differential mode: incremental ≡ cold (Andersen + sparse
          points-to, memory facts, SVFG fingerprint, races) *)
}

val create : ?jobs:int -> ?provenance:bool -> ?differential:bool -> unit -> t
val loaded : t -> bool

val busy : t -> bool
(** An asynchronous edit is in flight. Until {!edit_wait} installs its
    result, queries answer from the pinned previous generation and
    mutating operations are rejected. *)

val generation : t -> int
(** Monotonic generation number: bumped on every install (load, edit,
    restore); 0 until the first load. *)

val gen_age_us : t -> int
(** Microseconds since the resident generation was installed; 0 before the
    first load. *)

val driver : t -> Fsam_core.Driver.t
(** Raises [Invalid_argument] when nothing is loaded. *)

val source : t -> string
(** Current source text (pretty-printed after function-level edits). *)

val races : t -> Fsam_core.Races.race list
(** Race report of the resident generation, computed on first use and
    cached for the generation's lifetime. *)

val races_cached : t -> bool
(** Whether {!races} has already been forced for the resident generation
    (a cached report is safe to serve while an edit is in flight). *)

val fallback_total : t -> int
(** Total cold fallbacks (any phase) across all edits of this engine. *)

val fallback_counts : t -> (string * int) list
(** Per-reason fallback counters, sorted by key — e.g.
    [("tm_sync_edit", 2)]. *)

val load : t -> string -> (load_info, string) result
(** Parse, lower and run the full pipeline cold; becomes the resident
    generation on success. *)

val edit_fn : t -> fn:string -> code:string -> (edit_info, string) result
(** Replace one function definition ([code] must contain exactly one
    definition of [fn]) and re-analyse incrementally: Andersen warm-starts
    from the affected closure, the thread model / MHP / lock analysis are
    reused verbatim when the edit provably left fork/join/lock structure
    unchanged, the SVFG is patched in place, and the sparse solve
    warm-starts from the old generation's clean slice. Every reuse is
    independently guarded; any guard failure runs that phase cold and is
    counted in {!fallback_counts}. [e_reason] reports sparse-solve
    fallbacks. *)

val edit_source : t -> string -> (edit_info, string) result
(** Replace the whole source; same incremental machinery (a program must
    already be loaded — use {!load} otherwise). *)

val edit_fn_async : t -> fn:string -> code:string -> (unit, string) result
(** Start {!edit_fn} in a spawned domain. The previous generation stays
    resident and answers queries until {!edit_wait}; only one edit may be
    in flight. *)

val edit_source_async : t -> string -> (unit, string) result

val edit_wait : t -> (edit_info, string) result
(** Join the in-flight asynchronous edit and install its generation.
    [Error "no edit in flight"] when there is none. *)

val snapshot : t -> string -> (unit, string) result
(** Serialize the resident generation (source, AST, points-to facts as
    portable element lists — [Iset] hash-consing does not survive
    marshalling; memory facts keyed by SVFG node structure, not
    intern-order index) to the given path. *)

val restore : t -> string -> (load_info, string) result
(** Load a snapshot: re-lower (deterministic, so ids match), re-run the
    cold pre-phases — rebuilding every incremental index from scratch, so
    later warm edits never patch from marshalled structures — then
    warm-start the solve from the stored facts with {e every} unit
    seeded: a verification sweep. Rejects the snapshot if the sweep grows
    any fact ([Sparse.n_growth] ≠ 0) or the SVFG fingerprint drifted. *)
