(** The resident analysis engine behind [fsam serve]: holds one loaded
    program generation (source, AST, full {!Fsam_core.Driver} results and
    the captured singleton predicate) and implements the lifecycle around
    it — cold load, incremental edit (with optional differential
    cross-check), snapshot and restore. *)

type t

type load_info = {
  l_funcs : int;
  l_stmts : int;
  l_vars : int;
  l_objs : int;
  l_races : int;
  l_propagations : int;
  l_digest : string;  (** {!Fsam_memssa.Svfg.digest} of the resident run *)
}

type edit_info = {
  e_mode : [ `Incremental | `Cold ];
  e_reason : string option;
      (** why the engine fell back to a cold run, when it did *)
  e_propagations : int;  (** solver propagations of the accepted run *)
  e_stats : Incremental.stats option;  (** incremental mode only *)
  e_cold_propagations : int option;
      (** differential mode: propagations of the reference cold run *)
  e_identical : bool option;
      (** differential mode: incremental ≡ cold (points-to, memory facts,
          SVFG fingerprint, races) *)
}

val create : ?jobs:int -> ?provenance:bool -> ?differential:bool -> unit -> t
val loaded : t -> bool

val driver : t -> Fsam_core.Driver.t
(** Raises [Invalid_argument] when nothing is loaded. *)

val source : t -> string
(** Current source text (pretty-printed after function-level edits). *)

val load : t -> string -> (load_info, string) result
(** Parse, lower and run the full pipeline cold; becomes the resident
    generation on success. *)

val edit_fn : t -> fn:string -> code:string -> (edit_info, string) result
(** Replace one function definition ([code] must contain exactly one
    definition of [fn]) and re-analyse: pre-phases run cold, the sparse
    solve warm-starts from the old generation's clean slice. Falls back to
    a fully cold solve when the diff is incompatible or the plan cannot
    translate a clean fact — [e_reason] says why. *)

val edit_source : t -> string -> (edit_info, string) result
(** Replace the whole source; same incremental machinery (a program must
    already be loaded — use {!load} otherwise). *)

val snapshot : t -> string -> (unit, string) result
(** Serialize the resident generation (source, AST, points-to facts as
    portable element lists — [Iset] hash-consing does not survive
    marshalling) to the given path. *)

val restore : t -> string -> (load_info, string) result
(** Load a snapshot: re-lower (deterministic, so ids match), re-run the
    cold pre-phases, then warm-start the solve from the stored facts with
    {e every} unit seeded — a verification sweep. Rejects the snapshot if
    the sweep grows any fact ([Sparse.n_growth] ≠ 0) or the SVFG
    fingerprint drifted. *)
