(** The NDJSON request/reply protocol of [fsam serve]. One JSON object per
    line; replies echo the request ["id"] and carry ["ok"], a monotonic
    server-assigned request id ["seq"], the per-request wall time ["us"]
    and cpu time ["cpu_us"], and either result fields or a structured
    [{"code", "message"}] error. Ops: [load], [points-to], [alias], [mhp],
    [races], [explain], [edit], [snapshot], [restore], [status], [metrics],
    [stats], [dump], [batch], [shutdown]. See docs/GUIDE.md for the full
    protocol. *)

type t

val create : ?crash_telemetry:string -> ?stats:Stats.t -> Engine.t -> t
(** [crash_telemetry], when given, is armed as a crash-flush target around
    each request and idempotently disarmed on reply
    ([Fsam_core.Telemetry.armed] is [false] between requests). [stats]
    defaults to [Stats.create ()] (flight recorder on, slow-query log to
    stderr over 100 ms). *)

val stats : t -> Stats.t

val handle_line : t -> string -> Fsam_obs.Json.t
(** Process one request line and return the reply document (exposed for the
    test suite; the serve loops below write it as minified NDJSON). *)

val serve_stdio : t -> unit
(** Serve requests from stdin to stdout until [shutdown] or EOF. *)

val serve_batch : t -> string -> unit
(** Serve the NDJSON requests in the given file, replies to stdout. *)

val serve_socket : t -> string -> unit
(** Listen on a Unix-domain socket at the given path, one client at a
    time, until a [shutdown] request. *)

val flight_dump_json : t -> Fsam_obs.Json.t
(** [{"schema": "fsam.flightdump/1", "flight": ...}] — the [dump] op's
    flight document, also what SIGUSR1 prints to stderr. *)

val install_sigusr1 : t -> unit
(** Dump the flight recorder to stderr on SIGUSR1 (no-op where the signal
    is unavailable). *)

type stats_server

val start_stats_socket : t -> string -> stats_server
(** Spawn a scraper domain listening on a Unix-domain socket: each
    connection receives one Prometheus text exposition of the serve
    registry and is closed. Raises [Unix.Unix_error] if the socket can't
    be bound. *)

val stop_stats_socket : stats_server -> unit
(** Stop the scraper domain, close and unlink the socket. *)
