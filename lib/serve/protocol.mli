(** The NDJSON request/reply protocol of [fsam serve]. One JSON object per
    line; replies echo the request ["id"] and carry ["ok"], the per-request
    wall time ["us"], and either result fields or a structured
    [{"code", "message"}] error. Ops: [load], [points-to], [alias], [mhp],
    [races], [explain], [edit], [snapshot], [restore], [status], [metrics],
    [batch], [shutdown]. See docs/GUIDE.md for the full protocol. *)

type t

val create : ?crash_telemetry:string -> Engine.t -> t
(** [crash_telemetry], when given, is armed as a crash-flush target around
    each request and idempotently disarmed on reply
    ([Fsam_core.Telemetry.armed] is [false] between requests). *)

val handle_line : t -> string -> Fsam_obs.Json.t
(** Process one request line and return the reply document (exposed for the
    test suite; the serve loops below write it as minified NDJSON). *)

val serve_stdio : t -> unit
(** Serve requests from stdin to stdout until [shutdown] or EOF. *)

val serve_batch : t -> string -> unit
(** Serve the NDJSON requests in the given file, replies to stdout. *)

val serve_socket : t -> string -> unit
(** Listen on a Unix-domain socket at the given path, one client at a
    time, until a [shutdown] request. *)
