(** Serve-side observability state: per-request latency histograms
    ([serve.req.<op>.latency_us]), byte/error counters, the flight
    recorder, the slow-query log and the Prometheus exposition.

    Lives in its own {!Fsam_obs.Metrics.registry} because [Driver.run]
    resets the process-global one on every pipeline run. Recording happens
    on the protocol thread; the [--stats-socket] scraper domain renders
    under the same mutex. Observational only: never touches analysis
    state. *)

type t

val create : ?flight_cap:int -> ?slow_ms:float -> ?slow_log:string -> unit -> t
(** [flight_cap] (default 256): flight-recorder ring size; [0] disables it.
    [slow_ms] (default 100.): requests strictly over the threshold emit an
    NDJSON [fsam.slow/1] line; negative disables the log. [slow_log]: file
    to append slow lines to (default [stderr]). Publishes the flight
    recorder via {!Fsam_obs.Flight.set_current} for the crash-flush
    path. *)

val close : t -> unit
(** Close an owned slow-log channel and unpublish the flight recorder. *)

val registry : t -> Fsam_obs.Metrics.registry
val flight : t -> Fsam_obs.Flight.t option
val uptime_s : t -> float
val slow_logged : t -> int
(** Slow-query lines emitted so far. *)

val note :
  t ->
  seq:int ->
  op:string ->
  us:int ->
  cpu_us:int ->
  ok:bool ->
  err:string option ->
  gen:int ->
  dirty:int ->
  bytes_in:int ->
  bytes_out:int ->
  req:Fsam_obs.Json.t ->
  phases:Fsam_obs.Json.t option ->
  unit
(** Record one completed request: histogram + counters, flight entry, and —
    when [us] exceeds the threshold — a slow-query line carrying the
    request parameters (program-sized payloads elided to byte lengths) and
    [phases] (an edit reply's phase breakdown) verbatim. *)

val rss_kb : unit -> int
(** Resident set size from [/proc/self/statm], in KiB; 0 where
    unavailable. *)

val refresh_process_gauges : t -> unit
(** Uptime, pid, RSS ([/proc/self/statm]), GC words/collections — safe
    from any domain. *)

val refresh_engine_gauges :
  t ->
  generation:int ->
  gen_age_us:int ->
  busy:bool ->
  arena:int * int ->
  iset_live:int ->
  unit
(** Engine-derived gauges (generation number/age, edits in flight, SVFG
    arena occupancy, Iset intern-table live nodes). Protocol thread only —
    the scraper serves the last refreshed values. *)

val to_json : t -> Fsam_obs.Json.t
(** The serve registry as {!Fsam_obs.Metrics.to_json}. *)

val to_prometheus : ?extra_regs:Fsam_obs.Metrics.registry list -> t -> string
(** Refresh the process gauges, then render the serve registry (plus
    [extra_regs], e.g. the pipeline's global registry when no edit owns
    it) as Prometheus text exposition. Safe from the scraper domain with
    no [extra_regs]. *)
