(* The data model and renderer behind [fsam top]: turns one polled
   [status] + [stats] reply pair (plus the previous poll, for rates) into
   a stable JSON document, and renders that document as a terminal
   dashboard. Pure — the CLI owns the socket and the refresh loop — so the
   schema round-trips under test without a daemon. *)

module J = Fsam_obs.Json

let schema = "fsam.top/1"

let jint ?(default = 0) j name =
  match J.member name j with
  | Some (J.Int i) -> i
  | Some (J.Float f) -> int_of_float f
  | _ -> default

let jfloat ?(default = 0.0) j name =
  match J.member name j with
  | Some (J.Float f) -> f
  | Some (J.Int i) -> float_of_int i
  | _ -> default

let jbool j name = match J.member name j with Some (J.Bool b) -> b | _ -> false

let jobj j name = match J.member name j with Some (J.Obj kvs) -> kvs | _ -> []

(* per-op latency rows out of the serve registry's histogram summaries *)
let ops_of_stats stats =
  let prefix = "serve.req." and suffix = ".latency_us" in
  let histos = jobj (J.Obj (jobj stats "serve_metrics")) "histograms" in
  List.filter_map
    (fun (name, h) ->
      let plen = String.length prefix and slen = String.length suffix in
      let n = String.length name in
      if n > plen + slen
         && String.sub name 0 plen = prefix
         && String.sub name (n - slen) slen = suffix
      then begin
        let op = String.sub name plen (n - plen - slen) in
        let count = jint h "count" and sum = jint h "sum" in
        Some
          (J.Obj
             [
               ("op", J.String op);
               ("count", J.Int count);
               ("mean_us", J.Int (if count = 0 then 0 else sum / count));
               ("p50_us", J.Int (jint h "p50"));
               ("p95_us", J.Int (jint h "p95"));
               ("p99_us", J.Int (jint h "p99"));
             ])
      end
      else None)
    histos

let gauge stats name = jint (J.Obj (jobj (J.Obj (jobj stats "serve_metrics")) "gauges")) name

(* [prev]: (timestamp, total requests) of the previous poll *)
let doc_of ~now ?prev ~status ~stats () =
  let requests = jint status "requests" in
  let rate =
    match prev with
    | Some (t_prev, req_prev) when now > t_prev ->
      float_of_int (requests - req_prev) /. (now -. t_prev)
    | _ -> 0.0
  in
  let phases =
    match J.member "last_edit" status with
    | Some le -> ( match J.member "phases" le with Some p -> p | None -> J.Null)
    | None -> J.Null
  in
  J.Obj
    [
      ("schema", J.String schema);
      ("ts", J.Float now);
      ("pid", J.Int (jint status "pid"));
      ("uptime_s", J.Float (jfloat status "uptime_s"));
      ("loaded", J.Bool (jbool status "loaded"));
      ("busy", J.Bool (jbool status "busy"));
      ("generation", J.Int (jint status "generation"));
      ("generation_age_s", J.Float (jfloat status "generation_age_s"));
      ("requests", J.Int requests);
      ("requests_per_s", J.Float rate);
      ("rss_kb", J.Int (jint status "rss_kb"));
      ("gc_heap_words", J.Int (gauge stats "serve.gc.heap_words"));
      ("gc_major_collections", J.Int (gauge stats "serve.gc.major_collections"));
      ("slow_logged", J.Int (jint stats "slow_logged"));
      ("fallback_cold", J.Int (jint status "serve.fallback_cold"));
      ("fallback_reasons", J.Obj (jobj status "serve.fallback_reasons"));
      ("ops", J.List (ops_of_stats stats));
      ("last_edit_phases", phases);
    ]

let prev_of doc = (jfloat doc "ts", jint doc "requests")

(* -- terminal rendering ---------------------------------------------------- *)

let render doc =
  let b = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b s; Buffer.add_char b '\n') fmt in
  line "fsam top — pid %d  up %.0fs  gen %d (age %.0fs)  %s%s" (jint doc "pid")
    (jfloat doc "uptime_s") (jint doc "generation")
    (jfloat doc "generation_age_s")
    (if jbool doc "loaded" then "loaded" else "no program")
    (if jbool doc "busy" then "  [edit in flight]" else "");
  line "requests %d (%.1f/s)  slow %d  rss %d kB  heap %dw  major-gc %d"
    (jint doc "requests")
    (jfloat doc "requests_per_s")
    (jint doc "slow_logged") (jint doc "rss_kb") (jint doc "gc_heap_words")
    (jint doc "gc_major_collections");
  line "";
  line "%-12s %8s %10s %10s %10s %10s" "op" "count" "mean_us" "p50_us" "p95_us" "p99_us";
  (match J.member "ops" doc with
  | Some (J.List ops) ->
    List.iter
      (fun o ->
        line "%-12s %8d %10d %10d %10d %10d"
          (match J.member "op" o with Some (J.String s) -> s | _ -> "?")
          (jint o "count") (jint o "mean_us") (jint o "p50_us") (jint o "p95_us")
          (jint o "p99_us"))
      ops
  | _ -> ());
  let reasons = jobj doc "fallback_reasons" in
  if jint doc "fallback_cold" > 0 || reasons <> [] then begin
    line "";
    line "cold fallbacks: %d" (jint doc "fallback_cold");
    List.iter (fun (k, v) -> line "  %-40s %d" k (match v with J.Int i -> i | _ -> 0)) reasons
  end;
  (match J.member "last_edit_phases" doc with
  | Some (J.Obj kvs) ->
    line "";
    line "last edit phase walls (s):";
    List.iter
      (fun (k, v) ->
        match v with
        | J.Float f -> line "  %-16s %8.4f" k f
        | J.Bool bv -> line "  %-16s %8s" k (if bv then "reused" else "recomputed")
        | _ -> ())
      kvs
  | _ -> ());
  Buffer.contents b
