open Fsam_ir
module Iset = Fsam_dsa.Iset
module Svfg = Fsam_memssa.Svfg
module Sparse = Fsam_core.Sparse
module A = Fsam_andersen.Solver

exception Fallback of string

type stats = {
  s_units : int;
  s_dirty : int;
  s_seeds : int;
  s_cascades : int;
  s_copied_vars : int;
  s_copied_facts : int;
  s_changed_funcs : int;
}

(* Soundness argument, in one place.

   A work unit of the new solve is {e clean} when it is outside the forward
   closure of the dirty seeds over [Sparse.dep_graph] — the graph with an
   edge u → w whenever processing u can enqueue w. The seeds are chosen so
   that every unit whose {e transfer inputs} could differ from the old run
   is seeded:

   1. every statement of a function whose AST changed (or that is new);
   2. every definition of a variable whose def-site set changed (a def was
      added, removed, or is unmapped) — covering formals whose binding
      callsites changed and ret-vars of changed callees; this rule cascades,
      because seeding a def dirties downstream defs and flips more
      variables to non-copyable;
   3. every call/fork site in a clean function whose resolved callee set
      drifted (the gids match, but the bindings performed there differ);
   4. every SVFG node whose incoming (obj, def) edge set is not the image
      of its old counterpart's — including nodes with no old counterpart —
      plus stores whose racy-object set drifted (flips strong/weak);
   5. every store whose pointer may target an object whose singleton
      verdict flipped (also flips strong/weak).

   By induction over the drain: a clean unit's dep-graph predecessors are
   all clean, its edge structure and bindings are the image of the old
   ones (rules 2–4), and its strong-update environment is unchanged
   (rules 4–5), so the old output facts — translated through the id maps —
   are exactly what re-running it would produce. Those facts are pre-loaded
   ([Sparse.warm]); the dirty units re-run from the seeds and the monotone
   transfers reach the same unique least fixpoint as a cold run.
   Over-seeding is always sound — it only costs propagations. *)

let plan ~(diff : Diff.t) ~old_prog ~old_and ~old_svfg ~old_sparse
    ~(old_singleton : int -> bool) ~new_prog ~new_and ~new_svfg
    ~(new_singleton : int -> bool) =
  try
    let n_units = Sparse.unit_count new_prog new_svfg in
    let n_new_vars = Prog.n_vars new_prog in
    let dirty = Array.make (max 1 n_units) false in
    let pending = Queue.create () in
    let n_seeds = ref 0 in
    let seed u =
      if u >= 0 && u < n_units && not dirty.(u) then begin
        dirty.(u) <- true;
        incr n_seeds;
        Queue.push u pending
      end
    in
    (* -- id translation ------------------------------------------------- *)
    let tr_fid f =
      if f >= 0 && f < Array.length diff.Diff.fid_map && diff.Diff.fid_map.(f) >= 0
      then Some diff.Diff.fid_map.(f)
      else None
    in
    let tr_gid g =
      if g >= 0 && g < Array.length diff.Diff.gid_map && diff.Diff.gid_map.(g) >= 0
      then Some diff.Diff.gid_map.(g)
      else None
    in
    (* field objects are mapped lazily and read-only: translating ids must
       never materialise an object the cold pre-phases did not *)
    let obj_memo = Hashtbl.create 256 in
    let rec tr_obj o =
      if o >= 0 && o < Array.length diff.Diff.obj_map && diff.Diff.obj_map.(o) >= 0
      then Some diff.Diff.obj_map.(o)
      else
        match Hashtbl.find_opt obj_memo o with
        | Some r -> r
        | None ->
          let r =
            if o < 0 || o >= Prog.n_objs old_prog then None
            else
              match (Prog.obj old_prog o).Memobj.kind with
              | Memobj.Field { base; field } -> (
                match tr_obj base with
                | Some nb -> Prog.find_field_obj new_prog ~base:nb ~field
                | None -> None)
              | _ -> None
          in
          Hashtbl.add obj_memo o r;
          r
    in
    let tr_set s =
      Iset.fold
        (fun o acc ->
          match tr_obj o with
          | Some n -> Iset.add n acc
          | None ->
            raise (Fallback (Printf.sprintf "object %d in a clean fact has no image" o)))
        s Iset.empty
    in
    (* -- SVFG node maps -------------------------------------------------- *)
    let n_old_nodes = Svfg.n_nodes old_svfg in
    let n_new_nodes = Svfg.n_nodes new_svfg in
    let node_map = Array.make (max 1 n_old_nodes) (-1) in
    let node_inv = Array.make (max 1 n_new_nodes) (-1) in
    let node_clash = Array.make (max 1 n_new_nodes) false in
    for on = 0 to n_old_nodes - 1 do
      let image =
        match Svfg.node old_svfg on with
        | Svfg.Stmt_node g ->
          Option.bind (tr_gid g) (fun ng -> Svfg.node_id new_svfg (Svfg.Stmt_node ng))
        | Svfg.Formal_in (f, o) -> (
          match (tr_fid f, tr_obj o) with
          | Some nf, Some no -> Svfg.node_id new_svfg (Svfg.Formal_in (nf, no))
          | _ -> None)
        | Svfg.Formal_out (f, o) -> (
          match (tr_fid f, tr_obj o) with
          | Some nf, Some no -> Svfg.node_id new_svfg (Svfg.Formal_out (nf, no))
          | _ -> None)
        | Svfg.Call_chi (g, o) -> (
          match (tr_gid g, tr_obj o) with
          | Some ng, Some no -> Svfg.node_id new_svfg (Svfg.Call_chi (ng, no))
          | _ -> None)
      in
      match image with
      | Some nn ->
        if node_inv.(nn) >= 0 then node_clash.(nn) <- true
        else begin
          node_inv.(nn) <- on;
          node_map.(on) <- nn
        end
      | None -> ()
    done;
    (* -- rule 1: changed / added functions ------------------------------- *)
    for nfid = 0 to Prog.n_funcs new_prog - 1 do
      if not diff.Diff.clean_new_fid.(nfid) then begin
        let f = Prog.func new_prog nfid in
        for i = 0 to Func.n_stmts f - 1 do
          seed (Prog.gid new_prog ~fid:nfid ~idx:i)
        done
      end
    done;
    (* -- rule 3: callee-set drift at clean call/fork sites ---------------- *)
    let forced = Array.make (max 1 n_new_vars) false in
    for nfid = 0 to Prog.n_funcs new_prog - 1 do
      if diff.Diff.clean_new_fid.(nfid) then begin
        let ofid = diff.Diff.fid_inv.(nfid) in
        let f = Prog.func new_prog nfid in
        Func.iter_stmts f (fun i st ->
            match st with
            | Stmt.Call { ret; _ } | Stmt.Fork { handle = ret; _ } ->
              let old_callees = A.callees old_and ~fid:ofid ~idx:i in
              let mapped = List.filter_map tr_fid old_callees in
              let drifted =
                List.length mapped <> List.length old_callees
                || List.sort_uniq compare mapped
                   <> List.sort_uniq compare (A.callees new_and ~fid:nfid ~idx:i)
              in
              if drifted then begin
                seed (Prog.gid new_prog ~fid:nfid ~idx:i);
                match ret with Some r -> forced.(r) <- true | None -> ()
              end
            | _ -> ())
      end
    done;
    (* -- rule 4: SVFG in-edge drift, racy-set drift ----------------------- *)
    for nn = 0 to n_new_nodes - 1 do
      let u = Sparse.unit_of_svfg_node new_prog new_svfg nn in
      let on = node_inv.(nn) in
      if on < 0 || node_clash.(nn) then seed u
      else begin
        let translated =
          List.map
            (fun (o, d) ->
              match (tr_obj o, if d >= 0 && d < n_old_nodes then Some node_map.(d) else None) with
              | Some no, Some nd when nd >= 0 -> Some (no, nd)
              | _ -> None)
            (Svfg.o_preds old_svfg on)
        in
        if List.exists Option.is_none translated then seed u
        else if
          List.sort compare (List.filter_map Fun.id translated)
          <> List.sort compare (Svfg.o_preds new_svfg nn)
        then seed u
        else
          match Svfg.node new_svfg nn with
          | Svfg.Stmt_node g -> (
            match Prog.stmt_at new_prog g with
            | Stmt.Store _ | Stmt.Fork _ -> (
              let og = diff.Diff.gid_inv.(g) in
              match tr_set (Svfg.racy_objs old_svfg og) with
              | old_racy ->
                if not (Iset.equal old_racy (Svfg.racy_objs new_svfg g)) then seed u
              | exception Fallback _ -> seed u)
            | _ -> ())
          | _ -> ()
      end
    done;
    (* -- rule 5: singleton-verdict drift ---------------------------------- *)
    let flipped = ref Iset.empty in
    for oo = 0 to Prog.n_objs old_prog - 1 do
      match tr_obj oo with
      | Some no ->
        if old_singleton oo <> new_singleton no then flipped := Iset.add no !flipped
      | None -> ()
    done;
    if not (Iset.is_empty !flipped) then
      Prog.iter_stmts new_prog (fun g _ st ->
          match st with
          | Stmt.Store { dst; _ } ->
            if not (Iset.disjoint (A.pt_var new_and dst) !flipped) then seed g
          | _ -> ());
    (* -- rule 2 + closure + cascade --------------------------------------- *)
    let old_deps = Sparse.compute_deps old_prog old_and in
    let new_deps = Sparse.compute_deps new_prog new_and in
    let var_inv = Array.make (max 1 n_new_vars) (-1) in
    Array.iteri
      (fun ov nv ->
        if nv >= 0 then
          if var_inv.(nv) >= 0 && var_inv.(nv) <> ov then forced.(nv) <- true
          else var_inv.(nv) <- ov)
      diff.Diff.var_map;
    let defs_equal = Array.make (max 1 n_new_vars) false in
    for nv = 0 to n_new_vars - 1 do
      let ov = var_inv.(nv) in
      if ov >= 0 && not forced.(nv) then begin
        let olds = List.map tr_gid old_deps.Sparse.d_defs.(ov) in
        if List.for_all Option.is_some olds then
          defs_equal.(nv) <-
            List.sort_uniq compare (List.filter_map Fun.id olds)
            = List.sort_uniq compare new_deps.Sparse.d_defs.(nv)
      end
    done;
    let dep = Sparse.dep_graph new_prog new_and new_svfg in
    let close () =
      while not (Queue.is_empty pending) do
        let u = Queue.pop pending in
        Fsam_graph.Digraph.iter_succs dep u (fun w ->
            if w < n_units && not dirty.(w) then begin
              dirty.(w) <- true;
              Queue.push w pending
            end)
      done
    in
    (* a variable is copyable iff it is mapped, its def-site set is the
       image of the old one, and every def unit stays clean; otherwise ALL
       its defs must re-run — a clean def never re-runs, so a partial
       re-derivation would silently drop (or, after a deletion, keep) that
       def's contribution. Seeding defs dirties further units and can flip
       more variables, hence the fixpoint loop. *)
    let copyable nv =
      var_inv.(nv) >= 0
      && (not forced.(nv))
      && defs_equal.(nv)
      && List.for_all (fun g -> not dirty.(g)) new_deps.Sparse.d_defs.(nv)
    in
    let cascades = ref 0 in
    close ();
    let stable = ref false in
    while not !stable do
      stable := true;
      incr cascades;
      for nv = 0 to n_new_vars - 1 do
        if not (copyable nv) then
          List.iter
            (fun g ->
              if not dirty.(g) then begin
                stable := false;
                seed g
              end)
            new_deps.Sparse.d_defs.(nv)
      done;
      close ()
    done;
    (* -- assemble the warm start ------------------------------------------ *)
    let w_ptv = Array.make (max 1 n_new_vars) Iset.empty in
    let copied_vars = ref 0 in
    for nv = 0 to n_new_vars - 1 do
      if copyable nv then begin
        let s = Sparse.pt_top old_sparse var_inv.(nv) in
        if not (Iset.is_empty s) then begin
          w_ptv.(nv) <- tr_set s;
          incr copied_vars
        end
      end
    done;
    let w_pto = ref [] in
    let copied_facts = ref 0 in
    Sparse.iter_pto old_sparse (fun ~node ~obj set ->
        if node >= 0 && node < n_old_nodes && node_map.(node) >= 0 then begin
          let nn = node_map.(node) in
          let u = Sparse.unit_of_svfg_node new_prog new_svfg nn in
          if not dirty.(u) then
            match tr_obj obj with
            | Some no ->
              if not (Iset.is_empty set) then begin
                w_pto := ((nn, no), tr_set set) :: !w_pto;
                incr copied_facts
              end
            | None ->
              raise
                (Fallback
                   (Printf.sprintf "object %d of a clean memory fact has no image" obj))
        end);
    let w_units = ref [] in
    let n_dirty = ref 0 in
    for u = n_units - 1 downto 0 do
      if dirty.(u) then begin
        incr n_dirty;
        w_units := u :: !w_units
      end
    done;
    Ok
      ( { Sparse.w_ptv; w_pto = !w_pto; w_units = !w_units },
        {
          s_units = n_units;
          s_dirty = !n_dirty;
          s_seeds = !n_seeds;
          s_cascades = !cascades;
          s_copied_vars = !copied_vars;
          s_copied_facts = !copied_facts;
          s_changed_funcs = diff.Diff.n_changed;
        } )
  with Fallback msg -> Error msg
