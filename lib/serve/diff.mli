open Fsam_ir

(** Structural diff between two program versions, as id maps between their
    (independently, deterministically) lowered IRs.

    The diff is per-function: a function whose AST is unchanged — and whose
    lowered body pairs up in lockstep — is {e clean}; everything else is
    changed. Only function bodies may differ: if the global / struct / array
    declarations differ, or any pairing is inconsistent, [compute] returns
    [Error] and the caller falls back to a cold run. *)

type t = {
  fid_map : int array;  (** old fid → new fid, [-1] = deleted *)
  fid_inv : int array;  (** new fid → old fid, [-1] = added *)
  clean_new_fid : bool array;
      (** by new fid: AST-equal to its old namesake and paired in lockstep *)
  var_map : int array;
      (** old var → new var ([-1] = unmapped); populated from clean
          functions only *)
  obj_map : int array;
      (** old obj → new obj; globals by name, function objects via
          [fid_map], allocation-site objects by lockstep position, thread
          objects via [fork_map]. Field objects are deliberately left
          unmapped here — resolve them lazily with [Prog.find_field_obj]
          so mapping can never materialise an object the cold run
          wouldn't. *)
  gid_map : int array;  (** old gid → new gid, clean functions only *)
  gid_inv : int array;  (** new gid → old gid *)
  fork_map : int array;  (** old fork id → new fork id *)
  n_changed : int;  (** number of new functions that are not clean *)
}

val compute :
  old_ast:Fsam_frontend.Ast.program ->
  old_prog:Prog.t ->
  new_ast:Fsam_frontend.Ast.program ->
  new_prog:Prog.t ->
  (t, string) result
