(* NDJSON request/reply protocol of [fsam serve]: one JSON object per line
   on stdin/stdout (or a Unix socket, or a batch file). Every reply carries
   the request id, an "ok" flag, the per-request wall time in microseconds,
   and either the result fields or a structured {code, message} error. *)

module J = Fsam_obs.Json
module Mono = Fsam_obs.Monotonic
module T = Fsam_core.Telemetry
module D = Fsam_core.Driver
module Prog = Fsam_ir.Prog
module Races = Fsam_core.Races
module Ex = Fsam_core.Explain
module Iset = Fsam_dsa.Iset

type op_stat = { mutable os_count : int; mutable os_us : int }

type t = {
  eng : Engine.t;
  crash_telemetry : string option;
      (** armed around each request so a crash mid-analysis still flushes a
          partial telemetry document; disarmed (idempotently) on reply *)
  stats : Stats.t;
      (** per-request telemetry: latency histograms, byte/error counters,
          flight recorder, slow-query log — survives pipeline registry
          resets *)
  op_stats : (string, op_stat) Hashtbl.t;
      (** per-op request counts and wall time — kept here because the
          pipeline resets the global metrics registry on every run *)
  mutable requests : int;
      (** doubles as the monotonic request id ([seq]) echoed in every
          reply *)
  mutable last_edit : Engine.edit_info option;
      (** most recent completed edit — its per-phase breakdown is echoed in
          [status] replies *)
  mutable shutdown : bool;
}

let create ?crash_telemetry ?stats eng =
  {
    eng;
    crash_telemetry;
    stats = (match stats with Some s -> s | None -> Stats.create ());
    op_stats = Hashtbl.create 16;
    requests = 0;
    last_edit = None;
    shutdown = false;
  }

let stats t = t.stats

(* -- request plumbing ------------------------------------------------------ *)

exception Err of string * string  (** (code, message) *)

let bad msg = raise (Err ("bad_request", msg))

let field req name = J.member name req

let str_field req name =
  match field req name with Some (J.String s) -> Some s | _ -> None

let int_field req name =
  match field req name with Some (J.Int i) -> Some i | _ -> None

let bool_field req name =
  match field req name with Some (J.Bool b) -> Some b | _ -> None

let require_str req name =
  match str_field req name with
  | Some s -> s
  | None -> bad (Printf.sprintf "missing string field %S" name)

let require_int req name =
  match int_field req name with
  | Some i -> i
  | None -> bad (Printf.sprintf "missing integer field %S" name)

let driver srv =
  if Engine.loaded srv.eng then Engine.driver srv.eng
  else raise (Err ("no_program", "no program loaded — send a \"load\" request first"))

(* Generation-pinned concurrency policy: while an asynchronous edit is in
   flight, pure reads (points-to, alias, mhp, status, cached races) keep
   answering from the resident — immutable — generation. Anything that
   would replace the generation or touch the process-global metrics /
   span registries (which the edit's pipeline run owns) must wait. *)
let require_not_busy srv what =
  if Engine.busy srv.eng then
    raise
      (Err
         ( "edit_in_flight",
           Printf.sprintf
             "%s must wait for the in-flight edit — send \"edit-wait\" first" what ))

(* name-or-id resolution, as in the CLI but returning protocol errors *)
let resolve ~what n name_of s =
  match int_of_string_opt s with
  | Some i when i >= 0 && i < n -> i
  | Some i -> raise (Err ("bad_request", Printf.sprintf "%s id %d out of range" what i))
  | None ->
    let rec scan i =
      if i >= n then raise (Err ("bad_request", Printf.sprintf "unknown %s %S" what s))
      else if String.equal (name_of i) s then i
      else scan (i + 1)
    in
    scan 0

(* Variables resolve by name to the latest SSA version: lowering leaves the
   pre-SSA entry ("q") dead in the table next to the live versions ("q#7"),
   so an exact-name lookup would answer from a variable no statement
   defines. Among all vars whose name or base name (the part before '#')
   equals the query, the highest id is the final SSA version. *)
let var_of srv s =
  let d = driver srv in
  let n = Prog.n_vars d.D.prog in
  match int_of_string_opt s with
  | Some i when i >= 0 && i < n -> i
  | Some i -> raise (Err ("bad_request", Printf.sprintf "variable id %d out of range" i))
  | None ->
    let base name =
      match String.index_opt name '#' with
      | Some k -> String.sub name 0 k
      | None -> name
    in
    let best = ref (-1) in
    for v = 0 to n - 1 do
      let name = Prog.var_name d.D.prog v in
      if String.equal name s || String.equal (base name) s then best := v
    done;
    if !best < 0 then raise (Err ("bad_request", Printf.sprintf "unknown variable %S" s));
    !best

let obj_of srv s =
  let d = driver srv in
  resolve ~what:"object" (Prog.n_objs d.D.prog) (Prog.obj_name d.D.prog) s

let gid_of srv req name =
  let d = driver srv in
  let g = require_int req name in
  if g < 0 || g >= Prog.n_stmts d.D.prog then
    bad (Printf.sprintf "%s: gid %d out of range (0..%d)" name g (Prog.n_stmts d.D.prog - 1));
  g

let read_file path =
  try
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with Sys_error e -> raise (Err ("io_error", e))

(* -- result rendering ------------------------------------------------------ *)

let obj_json prog o = J.Obj [ ("id", J.Int o); ("name", J.String (Prog.obj_name prog o)) ]

let work_json (w : Engine.work) =
  J.Obj
    [
      ("andersen_propagations", J.Int w.Engine.wk_andersen_props);
      ("mhp_summaries", J.Int w.Engine.wk_mhp_summaries);
      ("svfg_pairs", J.Int w.Engine.wk_svfg_pairs);
      ("sparse_propagations", J.Int w.Engine.wk_sparse_props);
    ]

let phases_json (p : Engine.phase_summary) =
  J.Obj
    ([
       ("andersen_warm", J.Bool p.Engine.ph_andersen_warm);
       ("tm_reused", J.Bool p.Engine.ph_tm_reused);
       ("mhp_reused", J.Bool p.Engine.ph_mhp_reused);
       ("locks_reused", J.Bool p.Engine.ph_locks_reused);
       ("svfg_patched", J.Bool p.Engine.ph_svfg_patched);
     ]
    @ (match p.Engine.ph_svfg_stats with
      | Some s ->
        [
          ( "svfg_patch",
            J.Obj
              [
                ("dirty_fns", J.Int s.Fsam_memssa.Svfg.ps_dirty_fns);
                ("dirty_objs", J.Int s.Fsam_memssa.Svfg.ps_dirty_objs);
                ("removed_edges", J.Int s.Fsam_memssa.Svfg.ps_removed);
                ("added_edges", J.Int s.Fsam_memssa.Svfg.ps_added);
              ] );
        ]
      | None -> [])
    @ [
        ("andersen_s", J.Float p.Engine.ph_pre_s);
        ("threads_s", J.Float p.Engine.ph_threads_s);
        ("mhp_s", J.Float p.Engine.ph_mhp_s);
        ("locks_s", J.Float p.Engine.ph_locks_s);
        ("svfg_s", J.Float p.Engine.ph_svfg_s);
        ("sparse_s", J.Float p.Engine.ph_solve_s);
      ])

let load_info_json (i : Engine.load_info) =
  [
    ("funcs", J.Int i.Engine.l_funcs);
    ("stmts", J.Int i.Engine.l_stmts);
    ("vars", J.Int i.Engine.l_vars);
    ("objs", J.Int i.Engine.l_objs);
    ("races", J.Int i.Engine.l_races);
    ("propagations", J.Int i.Engine.l_propagations);
    ("svfg_digest", J.String i.Engine.l_digest);
    ("work", work_json i.Engine.l_work);
  ]

let edit_info_json (e : Engine.edit_info) =
  [
    ("mode", J.String (match e.Engine.e_mode with `Incremental -> "incremental" | `Cold -> "cold"));
    ("propagations", J.Int e.Engine.e_propagations);
    ("work", work_json e.Engine.e_work);
  ]
  @ (match e.Engine.e_reason with
    | Some r -> [ ("fallback_reason", J.String r) ]
    | None -> [])
  @ (match e.Engine.e_fallbacks with
    | [] -> []
    | keys -> [ ("fallbacks", J.List (List.map (fun k -> J.String k) keys)) ])
  @ (match e.Engine.e_phases with
    | Some p -> [ ("phases", phases_json p) ]
    | None -> [])
  @ (match e.Engine.e_stats with
    | Some s ->
      [
        ( "incremental",
          J.Obj
            [
              ("units", J.Int s.Incremental.s_units);
              ("dirty_units", J.Int s.Incremental.s_dirty);
              ("seeds", J.Int s.Incremental.s_seeds);
              ("cascade_rounds", J.Int s.Incremental.s_cascades);
              ("copied_vars", J.Int s.Incremental.s_copied_vars);
              ("copied_facts", J.Int s.Incremental.s_copied_facts);
              ("changed_funcs", J.Int s.Incremental.s_changed_funcs);
            ] );
      ]
    | None -> [])
  @ (match e.Engine.e_cold_propagations with
    | Some p -> [ ("cold_propagations", J.Int p) ]
    | None -> [])
  @ (match e.Engine.e_cold_work with
    | Some w -> [ ("cold_work", work_json w) ]
    | None -> [])
  @
  match e.Engine.e_identical with
  | Some b -> [ ("identical", J.Bool b) ]
  | None -> []

let race_json prog (r : Races.race) =
  J.Obj
    [
      ("store", J.Int r.Races.store_gid);
      ("access", J.Int r.Races.access_gid);
      ("obj", J.Int r.Races.obj);
      ("obj_name", J.String (Prog.obj_name prog r.Races.obj));
      ("both_writes", J.Bool r.Races.both_writes);
    ]

(* -- op handlers (each returns the reply's result fields) ------------------- *)

let op_load srv req =
  require_not_busy srv "load";
  let source =
    match (str_field req "source", str_field req "path", str_field req "synth") with
    | Some s, None, None -> s
    | None, Some p, None -> read_file p
    | None, None, Some preset ->
      let params =
        match preset with
        | "quick" -> Fsam_workloads.Minic_synth.quick
        | "large" -> Fsam_workloads.Minic_synth.large
        | p -> bad (Printf.sprintf "unknown synth preset %S (quick, large)" p)
      in
      Fsam_workloads.Minic_synth.generate params
    | _ -> bad "load takes exactly one of \"source\", \"path\", \"synth\""
  in
  match Engine.load srv.eng source with
  | Ok info -> load_info_json info
  | Error e -> raise (Err ("parse_error", e))

let op_points_to srv req =
  let d = driver srv in
  let v = var_of srv (require_str req "var") in
  let pts = D.pt d v in
  [
    ("var", J.String (Prog.var_name d.D.prog v));
    ("var_id", J.Int v);
    ("objects", J.List (List.map (obj_json d.D.prog) (Iset.elements pts)));
  ]

let op_alias srv req =
  let d = driver srv in
  let a = var_of srv (require_str req "a") in
  let b = var_of srv (require_str req "b") in
  [ ("alias", J.Bool (D.alias d a b)) ]

let op_mhp srv req =
  let d = driver srv in
  let g1 = gid_of srv req "g1" and g2 = gid_of srv req "g2" in
  [ ("mhp", J.Bool (Fsam_mta.Mhp.mhp_stmt d.D.mhp g1 g2)) ]

let op_races srv =
  let d = driver srv in
  (* computing races touches the process-global metrics registry the
     in-flight edit's pipeline owns; a report already cached on this
     generation is a pure read *)
  if not (Engine.races_cached srv.eng) then require_not_busy srv "race detection";
  let rs = Engine.races srv.eng in
  [ ("count", J.Int (List.length rs)); ("races", J.List (List.map (race_json d.D.prog) rs)) ]

let op_explain srv req =
  let d = driver srv in
  require_not_busy srv "explain";
  if d.D.prov = None then
    raise
      (Err
         ( "provenance_disabled",
           "explain needs recorded provenance — start the server with --provenance" ));
  let kind = require_str req "query" in
  let result =
    match kind with
    | "why-pt" ->
      let v = var_of srv (require_str req "var") in
      let o = obj_of srv (require_str req "obj") in
      (match Ex.why_pt d v o with
      | Some chain -> Ex.chain_json d chain
      | None -> J.Null)
    | "why-mhp" ->
      let g1 = gid_of srv req "g1" and g2 = gid_of srv req "g2" in
      (match Ex.why_mhp d g1 g2 with Some j -> Ex.mhp_json d j | None -> J.Null)
    | "why-edge" ->
      let store = gid_of srv req "store" and access = gid_of srv req "access" in
      let o = obj_of srv (require_str req "obj") in
      Ex.edge_verdict_json d (Ex.why_edge d ~store ~obj:o ~access)
    | "why-race" ->
      let idx = require_int req "index" in
      let rs = Engine.races srv.eng in
      if idx < 0 || idx >= List.length rs then
        bad (Printf.sprintf "race index %d out of range (%d found)" idx (List.length rs));
      (match Ex.witness d (List.nth rs idx) with
      | Some w -> Ex.witness_json d w
      | None -> J.Null)
    | k -> bad (Printf.sprintf "unknown explain query %S" k)
  in
  [ ("query", J.String kind); ("result", result) ]

let op_edit srv req =
  if not (Engine.loaded srv.eng) then
    raise (Err ("no_program", "no program loaded — send a \"load\" request first"));
  require_not_busy srv "edit";
  let async = bool_field req "async" = Some true in
  let args =
    match (str_field req "fn", str_field req "code", str_field req "source") with
    | Some fn, Some code, None -> `Fn (fn, code)
    | None, None, Some source -> `Source source
    | _ -> bad "edit takes either \"fn\" + \"code\" or \"source\""
  in
  if async then begin
    let r =
      match args with
      | `Fn (fn, code) -> Engine.edit_fn_async srv.eng ~fn ~code
      | `Source source -> Engine.edit_source_async srv.eng source
    in
    match r with
    | Ok () -> [ ("started", J.Bool true); ("async", J.Bool true) ]
    | Error e -> raise (Err ("parse_error", e))
  end
  else begin
    let r =
      match args with
      | `Fn (fn, code) -> Engine.edit_fn srv.eng ~fn ~code
      | `Source source -> Engine.edit_source srv.eng source
    in
    match r with
    | Ok info ->
      srv.last_edit <- Some info;
      edit_info_json info
    | Error e -> raise (Err ("parse_error", e))
  end

let op_edit_wait srv =
  match Engine.edit_wait srv.eng with
  | Ok info ->
    srv.last_edit <- Some info;
    edit_info_json info
  | Error "no edit in flight" -> raise (Err ("bad_request", "no edit in flight"))
  | Error e -> raise (Err ("parse_error", e))

let op_snapshot srv req =
  if not (Engine.loaded srv.eng) then
    raise (Err ("no_program", "no program loaded — nothing to snapshot"));
  require_not_busy srv "snapshot";
  match Engine.snapshot srv.eng (require_str req "path") with
  | Ok () -> [ ("saved", J.Bool true) ]
  | Error e -> raise (Err ("snapshot_error", e))

let op_restore srv req =
  require_not_busy srv "restore";
  match Engine.restore srv.eng (require_str req "path") with
  | Ok info -> load_info_json info
  | Error e -> raise (Err ("snapshot_error", e))

let serve_fallback_json srv =
  [
    ("serve.fallback_cold", J.Int (Engine.fallback_total srv.eng));
    ( "serve.fallback_reasons",
      J.Obj (List.map (fun (k, n) -> (k, J.Int n)) (Engine.fallback_counts srv.eng)) );
  ]

(* Engine-derived gauges touch resident-generation structures, so they are
   refreshed here — on the protocol thread — and the scraper domain serves
   the last refresh. [Iset.live_nodes] walks the striped intern table, so
   it only runs on the explicit observability ops, never per request. *)
let refresh_engine_gauges srv =
  let arena =
    if Engine.loaded srv.eng then
      Fsam_memssa.Svfg.arena_occupancy (Engine.driver srv.eng).D.svfg
    else (0, 0)
  in
  Stats.refresh_engine_gauges srv.stats
    ~generation:(Engine.generation srv.eng)
    ~gen_age_us:(Engine.gen_age_us srv.eng)
    ~busy:(Engine.busy srv.eng) ~arena ~iset_live:(Iset.live_nodes ())

let op_status srv =
  refresh_engine_gauges srv;
  let ops =
    Hashtbl.fold (fun op s acc -> (op, s) :: acc) srv.op_stats []
    |> List.sort compare
    |> List.map (fun (op, s) ->
           (op, J.Obj [ ("count", J.Int s.os_count); ("us", J.Int s.os_us) ]))
  in
  [
    ("loaded", J.Bool (Engine.loaded srv.eng));
    ("busy", J.Bool (Engine.busy srv.eng));
    ("requests", J.Int srv.requests);
    ("uptime_s", J.Float (Stats.uptime_s srv.stats));
    ("pid", J.Int (Unix.getpid ()));
    ("rss_kb", J.Int (Stats.rss_kb ()));
    ("generation", J.Int (Engine.generation srv.eng));
    ("generation_age_s", J.Float (float_of_int (Engine.gen_age_us srv.eng) /. 1e6));
  ]
  @ (if Engine.loaded srv.eng then begin
       let d = Engine.driver srv.eng in
       [
         ("funcs", J.Int (Prog.n_funcs d.D.prog));
         ("stmts", J.Int (Prog.n_stmts d.D.prog));
         ("vars", J.Int (Prog.n_vars d.D.prog));
         ("objs", J.Int (Prog.n_objs d.D.prog));
       ]
     end
     else [])
  @ serve_fallback_json srv
  @ (match srv.last_edit with
    | Some e -> [ ("last_edit", J.Obj (edit_info_json e)) ]
    | None -> [])
  @ [ ("ops", J.Obj ops) ]

(* the global registry describes the resident generation's last pipeline
   run; the engine-level fallback counters ride along under serve.* keys *)
let op_metrics srv =
  require_not_busy srv "metrics";
  [ ("metrics", Fsam_obs.Metrics.to_json ()); ("serve_metrics", Stats.to_json srv.stats) ]
  @ serve_fallback_json srv

(* Prometheus exposition: always includes the serve registry; the pipeline's
   global registry rides along only when no in-flight edit owns it, so the
   op — unlike [metrics] — never has to wait. *)
let op_stats srv =
  refresh_engine_gauges srv;
  let extra_regs = if Engine.busy srv.eng then [] else [ Fsam_obs.Metrics.global ] in
  [
    ("prometheus", J.String (Stats.to_prometheus ~extra_regs srv.stats));
    ("serve_metrics", Stats.to_json srv.stats);
    ("slow_logged", J.Int (Stats.slow_logged srv.stats));
  ]
  @ serve_fallback_json srv

let op_dump srv =
  [
    ( "flight",
      match Stats.flight srv.stats with
      | Some f -> Fsam_obs.Flight.to_json f
      | None -> J.Null );
  ]

(* -- dispatch -------------------------------------------------------------- *)

let ok_reply ~id ~seq ~us ~cpu_us fields =
  J.Obj
    (("id", id) :: ("ok", J.Bool true) :: ("seq", J.Int seq) :: ("us", J.Int us)
    :: ("cpu_us", J.Int cpu_us) :: fields)

let err_reply ~id ~seq ~us ~cpu_us code msg =
  J.Obj
    [
      ("id", id);
      ("ok", J.Bool false);
      ("seq", J.Int seq);
      ("us", J.Int us);
      ("cpu_us", J.Int cpu_us);
      ("error", J.Obj [ ("code", J.String code); ("message", J.String msg) ]);
    ]

let note_op srv op us =
  let s =
    match Hashtbl.find_opt srv.op_stats op with
    | Some s -> s
    | None ->
      let s = { os_count = 0; os_us = 0 } in
      Hashtbl.add srv.op_stats op s;
      s
  in
  s.os_count <- s.os_count + 1;
  s.os_us <- s.os_us + us

(* The edit reply already carries its phase breakdown and dirty-function
   count (PR 9); the flight recorder and slow-query log lift them out of
   the result fields rather than recomputing. *)
let dirty_of_fields fields =
  match List.assoc_opt "incremental" fields with
  | Some (J.Obj kvs) -> (
    match List.assoc_opt "changed_funcs" kvs with Some (J.Int n) -> n | _ -> -1)
  | _ -> -1

let cpu_now_us () = int_of_float (Sys.time () *. 1e6)

let rec handle_request ?(depth = 0) ?(bytes_in = 0) srv req =
  let id = Option.value ~default:J.Null (field req "id") in
  let t0 = Mono.now_us () in
  let c0 = cpu_now_us () in
  srv.requests <- srv.requests + 1;
  let seq = srv.requests in
  (* arm the crash flush for the duration of the request: if the pipeline
     dies mid-edit the partial telemetry still lands on disk. Arming is
     idempotent; the disarm below must leave [T.armed () = false] between
     requests (asserted by the test suite). *)
  (match srv.crash_telemetry with Some p -> T.flush_at_exit p | None -> ());
  let finish fields_or_err =
    let us = Mono.elapsed_us ~since_us:t0 in
    let cpu_us = max 0 (cpu_now_us () - c0) in
    (match srv.crash_telemetry with Some _ -> T.mark_flushed () | None -> ());
    let op, reply, err, dirty, phases =
      match fields_or_err with
      | Ok (op, fields) ->
        note_op srv op us;
        ( op,
          ok_reply ~id ~seq ~us ~cpu_us fields,
          None,
          dirty_of_fields fields,
          List.assoc_opt "phases" fields )
      | Error (op, code, msg) ->
        note_op srv op us;
        (op, err_reply ~id ~seq ~us ~cpu_us code msg, Some code, -1, None)
    in
    let bytes_out = String.length (J.to_string ~minify:true reply) in
    Stats.note srv.stats ~seq ~op ~us ~cpu_us ~ok:(err = None) ~err
      ~gen:(Engine.generation srv.eng) ~dirty ~bytes_in ~bytes_out ~req ~phases;
    reply
  in
  let op = match str_field req "op" with Some op -> op | None -> "" in
  finish
    (try
       match op with
       | "" -> Error ("?", "bad_request", "missing \"op\" field")
       | "load" -> Ok (op, op_load srv req)
       | "points-to" -> Ok (op, op_points_to srv req)
       | "alias" -> Ok (op, op_alias srv req)
       | "mhp" -> Ok (op, op_mhp srv req)
       | "races" -> Ok (op, op_races srv)
       | "explain" -> Ok (op, op_explain srv req)
       | "edit" -> Ok (op, op_edit srv req)
       | "edit-wait" -> Ok (op, op_edit_wait srv)
       | "snapshot" -> Ok (op, op_snapshot srv req)
       | "restore" -> Ok (op, op_restore srv req)
       | "status" -> Ok (op, op_status srv)
       | "metrics" -> Ok (op, op_metrics srv)
       | "stats" -> Ok (op, op_stats srv)
       | "dump" -> Ok (op, op_dump srv)
       | "batch" ->
         if depth > 0 then Error (op, "bad_request", "nested batch requests")
         else (
           match field req "requests" with
           | Some (J.List reqs) ->
             Ok
               ( op,
                 [
                   ( "replies",
                     J.List (List.map (handle_request ~depth:1 srv) reqs) );
                 ] )
           | _ -> Error (op, "bad_request", "batch needs a \"requests\" list"))
       | "shutdown" ->
         (* don't leave a spawned edit domain running across process exit *)
         if Engine.busy srv.eng then ignore (Engine.edit_wait srv.eng);
         srv.shutdown <- true;
         Ok (op, [ ("bye", J.Bool true) ])
       | op -> Error (op, "unknown_op", Printf.sprintf "unknown op %S" op)
     with
    | Err (code, msg) -> Error (op, code, msg)
    | e -> Error (op, "internal", Printexc.to_string e))

let handle_line srv line =
  match J.of_string line with
  | Ok req -> handle_request ~bytes_in:(String.length line) srv req
  | Error e ->
    srv.requests <- srv.requests + 1;
    err_reply ~id:J.Null ~seq:srv.requests ~us:0 ~cpu_us:0 "bad_request"
      ("invalid JSON: " ^ e)

(* -- server loops ---------------------------------------------------------- *)

let serve_channels srv ic oc =
  (try
     while not srv.shutdown do
       match input_line ic with
       | line ->
         if String.trim line <> "" then begin
           output_string oc (J.to_string ~minify:true (handle_line srv line));
           output_char oc '\n';
           flush oc
         end
       | exception End_of_file -> raise Exit
     done
   with Exit | Sys_error _ -> ());
  flush oc

let serve_stdio srv = serve_channels srv stdin stdout

let serve_batch srv path =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () -> serve_channels srv ic stdout)

let serve_socket srv path =
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close sock with Unix.Unix_error _ -> ());
      try Unix.unlink path with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.bind sock (Unix.ADDR_UNIX path);
      Unix.listen sock 1;
      (* a SIGUSR1 flight dump interrupts [accept] with EINTR — retry, the
         handler already ran at the safepoint *)
      let rec accept_retry () =
        try Unix.accept sock
        with Unix.Unix_error (Unix.EINTR, _, _) -> accept_retry ()
      in
      while not srv.shutdown do
        let fd, _ = accept_retry () in
        let ic = Unix.in_channel_of_descr fd in
        let oc = Unix.out_channel_of_descr fd in
        Fun.protect
          ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
          (fun () -> serve_channels srv ic oc)
      done)

(* -- out-of-band observability --------------------------------------------- *)

let flight_dump_json srv =
  J.Obj
    [
      ("schema", J.String "fsam.flightdump/1");
      ( "flight",
        match Stats.flight srv.stats with
        | Some f -> Fsam_obs.Flight.to_json f
        | None -> J.Null );
    ]

(* SIGUSR1 → flight dump on stderr. The handler runs at a safepoint of the
   protocol thread — the ring's single writer — so it never reads a torn
   entry. No-op on platforms without the signal. *)
let install_sigusr1 srv =
  try
    Sys.set_signal Sys.sigusr1
      (Sys.Signal_handle
         (fun _ ->
           prerr_endline (J.to_string ~minify:true (flight_dump_json srv));
           flush stderr))
  with Invalid_argument _ | Sys_error _ -> ()

(* The [--stats-socket] scraper endpoint: a spawned domain serving the
   Prometheus exposition — one scrape per connection — so monitoring never
   contends with query traffic. It renders only the serve registry (under
   its mutex) plus the domain-safe process gauges; engine-derived gauges
   are whatever the protocol thread last refreshed. *)
type stats_server = {
  ss_stop : bool Atomic.t;
  ss_sock : Unix.file_descr;
  ss_path : string;
  ss_domain : unit Domain.t;
}

let start_stats_socket srv path =
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind sock (Unix.ADDR_UNIX path);
  Unix.listen sock 4;
  let stop = Atomic.make false in
  let dom =
    Domain.spawn (fun () ->
        while not (Atomic.get stop) do
          (* poll with a timeout so shutdown never hangs in [accept] *)
          match Unix.select [ sock ] [] [] 0.25 with
          | [ _ ], _, _ -> (
            match Unix.accept sock with
            | fd, _ ->
              (try
                 let text = Stats.to_prometheus srv.stats in
                 ignore (Unix.write_substring fd text 0 (String.length text))
               with Unix.Unix_error _ | Sys_error _ -> ());
              (try Unix.close fd with Unix.Unix_error _ -> ())
            | exception Unix.Unix_error _ -> ())
          | _ -> ()
          | exception Unix.Unix_error _ -> ()
        done)
  in
  { ss_stop = stop; ss_sock = sock; ss_path = path; ss_domain = dom }

let stop_stats_socket ss =
  Atomic.set ss.ss_stop true;
  Domain.join ss.ss_domain;
  (try Unix.close ss.ss_sock with Unix.Unix_error _ -> ());
  try Unix.unlink ss.ss_path with Unix.Unix_error _ -> ()
