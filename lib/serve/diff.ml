open Fsam_ir
module Ast = Fsam_frontend.Ast

type t = {
  fid_map : int array;
  fid_inv : int array;
  clean_new_fid : bool array;
  var_map : int array;
  obj_map : int array;
  gid_map : int array;
  gid_inv : int array;
  fork_map : int array;
  n_changed : int;
}

let is_fun = function Ast.Dfun _ -> true | _ -> false
let funs_of ast = List.filter_map (function Ast.Dfun f -> Some f | _ -> None) ast
let nonfuns_of ast = List.filter (fun d -> not (is_fun d)) ast

(* Positional pairing of the two lowerings of one structurally-identical
   function: same statement array (up to the ids being renumbered), same
   local CFG. Collects (old, new) id pairs; any shape mismatch aborts the
   pairing and the function is treated as changed (all of it dirty) — never
   wrong, only less incremental. *)
exception Mismatch

let lockstep ~fid_map (of_ : Func.t) (nf : Func.t) =
  let vp = ref [] and op = ref [] and kp = ref [] in
  let pair_var a b = vp := (a, b) :: !vp in
  let pair_obj a b = op := (a, b) :: !op in
  let pair_vl la lb =
    if List.length la <> List.length lb then raise Mismatch;
    List.iter2 pair_var la lb
  in
  let pair_opt p a b =
    match (a, b) with
    | Some a, Some b -> p a b
    | None, None -> ()
    | _ -> raise Mismatch
  in
  let pair_target a b =
    match (a, b) with
    | Stmt.Direct f1, Stmt.Direct f2 ->
      if not (f1 >= 0 && f1 < Array.length fid_map && fid_map.(f1) = f2) then
        raise Mismatch
    | Stmt.Indirect v1, Stmt.Indirect v2 -> pair_var v1 v2
    | _ -> raise Mismatch
  in
  if
    Array.length of_.Func.stmts <> Array.length nf.Func.stmts
    || of_.Func.succ <> nf.Func.succ
    || of_.Func.pred <> nf.Func.pred
    || of_.Func.exits <> nf.Func.exits
  then None
  else
    try
      pair_vl of_.Func.params nf.Func.params;
      Array.iteri
        (fun i so ->
          match (so, nf.Func.stmts.(i)) with
          | Stmt.Addr_of { dst = d1; obj = o1 }, Stmt.Addr_of { dst = d2; obj = o2 } ->
            pair_var d1 d2;
            pair_obj o1 o2
          | Stmt.Copy { dst = d1; src = s1 }, Stmt.Copy { dst = d2; src = s2 }
          | Stmt.Load { dst = d1; src = s1 }, Stmt.Load { dst = d2; src = s2 }
          | Stmt.Store { dst = d1; src = s1 }, Stmt.Store { dst = d2; src = s2 } ->
            pair_var d1 d2;
            pair_var s1 s2
          | Stmt.Phi { dst = d1; srcs = l1 }, Stmt.Phi { dst = d2; srcs = l2 } ->
            pair_var d1 d2;
            pair_vl l1 l2
          | ( Stmt.Gep { dst = d1; src = s1; field = f1 },
              Stmt.Gep { dst = d2; src = s2; field = f2 } ) ->
            if f1 <> f2 then raise Mismatch;
            pair_var d1 d2;
            pair_var s1 s2
          | ( Stmt.Call { target = t1; args = a1; ret = r1 },
              Stmt.Call { target = t2; args = a2; ret = r2 } ) ->
            pair_target t1 t2;
            pair_vl a1 a2;
            pair_opt pair_var r1 r2
          | Stmt.Return r1, Stmt.Return r2 -> pair_opt pair_var r1 r2
          | ( Stmt.Fork { handle = h1; target = t1; args = a1; fork_id = k1 },
              Stmt.Fork { handle = h2; target = t2; args = a2; fork_id = k2 } ) ->
            pair_opt pair_var h1 h2;
            pair_target t1 t2;
            pair_vl a1 a2;
            kp := (k1, k2) :: !kp
          | Stmt.Join { handle = h1 }, Stmt.Join { handle = h2 } -> pair_var h1 h2
          | Stmt.Lock v1, Stmt.Lock v2 | Stmt.Unlock v1, Stmt.Unlock v2 ->
            pair_var v1 v2
          | Stmt.Nop s1, Stmt.Nop s2 -> if s1 <> s2 then raise Mismatch
          | _ -> raise Mismatch)
        of_.Func.stmts;
      Some (!vp, !op, !kp)
    with Mismatch -> None

let compute ~old_ast ~old_prog ~new_ast ~new_prog =
  if nonfuns_of old_ast <> nonfuns_of new_ast then
    Error "global, struct or array declarations changed"
  else begin
    let old_funs = funs_of old_ast and new_funs = funs_of new_ast in
    let old_by_name = Hashtbl.create 64 in
    List.iter (fun (f : Ast.fundef) -> Hashtbl.replace old_by_name f.Ast.fname f) old_funs;
    let dup l =
      let seen = Hashtbl.create 64 in
      List.exists
        (fun (f : Ast.fundef) ->
          if Hashtbl.mem seen f.Ast.fname then true
          else (Hashtbl.add seen f.Ast.fname (); false))
        l
    in
    if dup old_funs || dup new_funs then Error "duplicate function names"
    else begin
      let n_old_f = Prog.n_funcs old_prog and n_new_f = Prog.n_funcs new_prog in
      let fid_map = Array.make n_old_f (-1) in
      let fid_inv = Array.make n_new_f (-1) in
      Prog.iter_funcs old_prog (fun f ->
          match Prog.find_func new_prog f.Func.fname with
          | Some nfid ->
            fid_map.(f.Func.fid) <- nfid;
            fid_inv.(nfid) <- f.Func.fid
          | None -> ());
      let var_map = Array.make (Prog.n_vars old_prog) (-1) in
      let obj_map = Array.make (Prog.n_objs old_prog) (-1) in
      let gid_map = Array.make (Prog.n_stmts old_prog) (-1) in
      let gid_inv = Array.make (Prog.n_stmts new_prog) (-1) in
      let fork_map = Array.make (max 1 (Prog.n_forks old_prog)) (-1) in
      let clean_new_fid = Array.make n_new_f false in
      let conflict = ref None in
      let commit_pair what arr a b =
        if a < 0 || a >= Array.length arr then conflict := Some what
        else if arr.(a) = -1 then arr.(a) <- b
        else if arr.(a) <> b then conflict := Some what
      in
      (* kind-keyed object pairs first: globals by name, function objects by
         mapped fid — these exist even when every reference sits inside a
         changed function. Heap and stack objects pair positionally below;
         thread objects follow the fork pairing; field objects are resolved
         lazily by the incremental planner via [Prog.find_field_obj]. *)
      let new_global = Hashtbl.create 64 and new_funobj = Hashtbl.create 64 in
      Prog.iter_objs new_prog (fun o ->
          match o.Memobj.kind with
          | Memobj.Global -> Hashtbl.replace new_global o.Memobj.name o.Memobj.id
          | Memobj.Func fid -> Hashtbl.replace new_funobj fid o.Memobj.id
          | _ -> ());
      Prog.iter_objs old_prog (fun o ->
          match o.Memobj.kind with
          | Memobj.Global -> (
            match Hashtbl.find_opt new_global o.Memobj.name with
            | Some n -> commit_pair "object" obj_map o.Memobj.id n
            | None -> ())
          | Memobj.Func fid when fid >= 0 && fid < n_old_f && fid_map.(fid) >= 0 -> (
            match Hashtbl.find_opt new_funobj fid_map.(fid) with
            | Some n -> commit_pair "object" obj_map o.Memobj.id n
            | None -> ())
          | _ -> ());
      (* per-function structural diff + lockstep pairing *)
      List.iter
        (fun (nfd : Ast.fundef) ->
          match
            ( Hashtbl.find_opt old_by_name nfd.Ast.fname,
              Prog.find_func new_prog nfd.Ast.fname )
          with
          | Some ofd, Some nfid when ofd = nfd -> (
            let ofid = fid_inv.(nfid) in
            let of_ = Prog.func old_prog ofid and nf = Prog.func new_prog nfid in
            match lockstep ~fid_map of_ nf with
            | None -> ()
            | Some (vps, ops, kps) ->
              clean_new_fid.(nfid) <- true;
              List.iter (fun (a, b) -> commit_pair "variable" var_map a b) vps;
              List.iter (fun (a, b) -> commit_pair "object" obj_map a b) ops;
              List.iter (fun (a, b) -> commit_pair "fork" fork_map a b) kps;
              for i = 0 to Func.n_stmts of_ - 1 do
                let og = Prog.gid old_prog ~fid:ofid ~idx:i in
                let ng = Prog.gid new_prog ~fid:nfid ~idx:i in
                gid_map.(og) <- ng;
                gid_inv.(ng) <- og
              done)
          | _ -> ())
        new_funs;
      (* thread objects ride on the fork pairing *)
      Array.iteri
        (fun ok nk ->
          if nk >= 0 && ok < Prog.n_forks old_prog then
            commit_pair "object" obj_map
              (Prog.thread_obj_of_fork old_prog ok)
              (Prog.thread_obj_of_fork new_prog nk))
        fork_map;
      match !conflict with
      | Some what -> Error (Printf.sprintf "inconsistent %s pairing" what)
      | None ->
        let n_changed =
          Array.fold_left (fun acc c -> if c then acc else acc + 1) 0 clean_new_fid
        in
        Ok
          {
            fid_map;
            fid_inv;
            clean_new_fid;
            var_map;
            obj_map;
            gid_map;
            gid_inv;
            fork_map;
            n_changed;
          }
    end
  end
