(** Data model and renderer behind [fsam top]: one polled [status] +
    [stats] reply pair becomes a stable [fsam.top/1] JSON document; the
    document renders as a terminal dashboard. Pure, so the schema
    round-trips under test without a daemon. *)

val schema : string
(** ["fsam.top/1"]. *)

val doc_of :
  now:float ->
  ?prev:float * int ->
  status:Fsam_obs.Json.t ->
  stats:Fsam_obs.Json.t ->
  unit ->
  Fsam_obs.Json.t
(** Build the dashboard document from one poll. [prev] — [(ts, requests)]
    of the previous poll, see {!prev_of} — enables the request-rate
    field. Missing reply fields degrade to zeros, never raise. *)

val prev_of : Fsam_obs.Json.t -> float * int
(** The [(ts, requests)] pair a later {!doc_of} wants as [prev]. *)

val render : Fsam_obs.Json.t -> string
(** Multi-line terminal dashboard (no escape codes — the CLI owns screen
    clearing). *)
