(** The incremental re-analysis planner: given a {!Diff} between the old and
    new program versions and the old generation's results, compute a
    {!Fsam_core.Sparse.warm} start — the clean slice of the old fixpoint
    translated into new ids, plus the dirty units that must re-run.

    All pre-phases (Andersen, thread model, MHP, locks, SVFG, singletons)
    are assumed to have been re-run cold on the new program; only the
    final sparse solve is warm-started. The file-level comment in the
    implementation states the clean/dirty soundness argument. *)

type stats = {
  s_units : int;  (** work-unit universe size *)
  s_dirty : int;  (** units in the dirty closure (re-run) *)
  s_seeds : int;  (** direct seeds before closure *)
  s_cascades : int;  (** rounds of the non-copyable-variable fixpoint *)
  s_copied_vars : int;  (** top-level sets carried over *)
  s_copied_facts : int;  (** (node, obj) memory facts carried over *)
  s_changed_funcs : int;  (** functions whose AST changed *)
}

val plan :
  diff:Diff.t ->
  old_prog:Fsam_ir.Prog.t ->
  old_and:Fsam_andersen.Solver.t ->
  old_svfg:Fsam_memssa.Svfg.t ->
  old_sparse:Fsam_core.Sparse.t ->
  old_singleton:(int -> bool) ->
  new_prog:Fsam_ir.Prog.t ->
  new_and:Fsam_andersen.Solver.t ->
  new_svfg:Fsam_memssa.Svfg.t ->
  new_singleton:(int -> bool) ->
  (Fsam_core.Sparse.warm * stats, string) result
(** [Error] means some clean fact could not be translated (an object with
    no image in the new program) — the engine must fall back to a cold
    solve. Translation never materialises field objects
    ([Prog.find_field_obj] is read-only), so a failed plan leaves the new
    program's object table exactly as the cold pre-phases built it. *)
