(* Serve-side observability state: per-request latency histograms, byte and
   error counters, the flight recorder, the slow-query log and the
   Prometheus exposition — everything the daemon must keep across pipeline
   runs ([Driver.run] resets the process-global metrics registry, so the
   serve metrics live in their own [Metrics.registry]).

   Threading: all recording happens on the protocol thread. The only
   cross-domain reader is the [--stats-socket] scraper domain, which
   renders the registry under [mu]; recording therefore takes [mu] too.
   The flight ring is single-writer and only read on the protocol thread
   (dump op, crash flush, SIGUSR1), so it needs no lock. *)

module J = Fsam_obs.Json
module Metrics = Fsam_obs.Metrics
module Flight = Fsam_obs.Flight
module Mono = Fsam_obs.Monotonic

type t = {
  reg : Metrics.registry;
  mu : Mutex.t;
  flight : Flight.t option;
  slow_us : int;  (* negative: slow-query log disabled *)
  slow_oc : out_channel Lazy.t;  (* forced on first slow query only *)
  slow_owned : bool;  (* close on [close] iff we opened a file *)
  started_us : int;
  started_wall : float;
  mutable slow_logged : int;
}

let create ?(flight_cap = 256) ?(slow_ms = 100.0) ?slow_log () =
  let flight = if flight_cap > 0 then Some (Flight.create ~cap:flight_cap ()) else None in
  Flight.set_current flight;
  let slow_oc, slow_owned =
    match slow_log with
    | None -> (lazy stderr, false)
    | Some path ->
      (lazy (open_out_gen [ Open_append; Open_creat ] 0o644 path), true)
  in
  {
    reg = Metrics.create_registry ();
    mu = Mutex.create ();
    flight;
    slow_us = (if slow_ms < 0.0 then -1 else int_of_float (slow_ms *. 1000.0));
    slow_oc;
    slow_owned;
    started_us = Mono.now_us ();
    started_wall = Unix.gettimeofday ();
    slow_logged = 0;
  }

let close t =
  if t.slow_owned && Lazy.is_val t.slow_oc then close_out_noerr (Lazy.force t.slow_oc);
  if t.flight <> None then Flight.set_current None

let registry t = t.reg
let flight t = t.flight
let uptime_s t = float_of_int (Mono.elapsed_us ~since_us:t.started_us) /. 1e6
let slow_logged t = t.slow_logged

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

(* -- slow-query log -------------------------------------------------------- *)

(* Request parameters verbatim, except program-sized payloads ("source",
   "code"): those are elided to their byte length so a slow load does not
   journal a whole program per line. *)
let redact_params req =
  match req with
  | J.Obj fields ->
    J.Obj
      (List.filter_map
         (fun (k, v) ->
           match (k, v) with
           | ("op", _) | ("id", _) -> None
           | (("source" | "code"), J.String s) ->
             Some (k, J.Obj [ ("elided_bytes", J.Int (String.length s)) ])
           | kv -> Some kv)
         fields)
  | _ -> J.Obj []

let slow_line t ~seq ~op ~us ~cpu_us ~ok ~err ~gen ~req ~phases =
  J.Obj
    ([
       ("schema", J.String "fsam.slow/1");
       ("ts", J.Float (Unix.gettimeofday ()));
       ("seq", J.Int seq);
       ("op", J.String op);
       ("us", J.Int us);
       ("cpu_us", J.Int cpu_us);
       ("slow_ms_threshold", J.Float (float_of_int t.slow_us /. 1000.0));
       ("ok", J.Bool ok);
     ]
    @ (match err with Some c -> [ ("error", J.String c) ] | None -> [])
    @ [ ("gen", J.Int gen); ("params", redact_params req) ]
    @ match phases with Some p -> [ ("phases", p) ] | None -> [])

(* -- recording ------------------------------------------------------------- *)

(* One completed request. [phases] is the edit reply's phase breakdown when
   present (slow-log context); [dirty] is the edit's changed-function count
   (-1 when not an edit). *)
let note t ~seq ~op ~us ~cpu_us ~ok ~err ~gen ~dirty ~bytes_in ~bytes_out ~req ~phases =
  locked t (fun () ->
      let reg = t.reg in
      Metrics.observe (Metrics.histogram ~reg (Printf.sprintf "serve.req.%s.latency_us" op)) us;
      Metrics.incr (Metrics.counter ~reg "serve.requests_total");
      Metrics.add (Metrics.counter ~reg "serve.bytes_in_total") bytes_in;
      Metrics.add (Metrics.counter ~reg "serve.bytes_out_total") bytes_out;
      match err with
      | Some code ->
        Metrics.incr (Metrics.counter ~reg "serve.errors_total");
        Metrics.incr (Metrics.counter ~reg (Printf.sprintf "serve.errors.%s" code))
      | None -> ());
  (match t.flight with
  | Some f ->
    Flight.note f ~seq ~op ~us ~cpu_us ~ok ?err ~gen ~dirty ~bytes_in ~bytes_out ()
  | None -> ());
  if t.slow_us >= 0 && us > t.slow_us then begin
    t.slow_logged <- t.slow_logged + 1;
    let oc = Lazy.force t.slow_oc in
    output_string oc
      (J.to_string ~minify:true (slow_line t ~seq ~op ~us ~cpu_us ~ok ~err ~gen ~req ~phases));
    output_char oc '\n';
    flush oc
  end

(* -- process gauges -------------------------------------------------------- *)

let page_kb =
  (* OCaml's Unix doesn't expose sysconf(_SC_PAGESIZE); 4 KiB covers every
     platform this daemon targets, and the gauge is informational *)
  4

let rss_kb () =
  try
    let ic = open_in "/proc/self/statm" in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        match String.split_on_char ' ' (input_line ic) with
        | _ :: resident :: _ -> int_of_string resident * page_kb
        | _ -> 0)
  with Sys_error _ | End_of_file | Failure _ -> 0

(* Domain-safe subset: callable from the scraper domain too. *)
let refresh_process_gauges t =
  locked t (fun () ->
      let reg = t.reg in
      Metrics.set (Metrics.gauge ~reg "serve.uptime_s")
        (Mono.elapsed_us ~since_us:t.started_us / 1_000_000);
      Metrics.set (Metrics.gauge ~reg "serve.pid") (Unix.getpid ());
      Metrics.set (Metrics.gauge ~reg "serve.rss_kb") (rss_kb ());
      let gc = Gc.quick_stat () in
      Metrics.set (Metrics.gauge ~reg "serve.gc.heap_words") gc.Gc.heap_words;
      Metrics.set (Metrics.gauge ~reg "serve.gc.major_words") (int_of_float gc.Gc.major_words);
      Metrics.set (Metrics.gauge ~reg "serve.gc.major_collections") gc.Gc.major_collections)

(* Engine-derived subset: reads resident-generation structures, so only the
   protocol thread may call it; the scraper serves the last refresh. *)
let refresh_engine_gauges t ~generation ~gen_age_us ~busy ~arena ~iset_live =
  locked t (fun () ->
      let reg = t.reg in
      Metrics.set (Metrics.gauge ~reg "serve.generation") generation;
      Metrics.set (Metrics.gauge ~reg "serve.generation_age_s") (gen_age_us / 1_000_000);
      Metrics.set (Metrics.gauge ~reg "serve.edits_in_flight") (if busy then 1 else 0);
      (let live, tombs = arena in
       Metrics.set (Metrics.gauge ~reg "serve.arena.live_cells") live;
       Metrics.set (Metrics.gauge ~reg "serve.arena.tombstoned_cells") tombs);
      Metrics.set (Metrics.gauge ~reg "serve.iset.live_nodes") iset_live)

(* -- exposition ------------------------------------------------------------ *)

let to_json t = locked t (fun () -> Metrics.to_json ~reg:t.reg ())

(* [extra_regs] lets the protocol thread append the pipeline's global
   registry when no edit owns it; the scraper domain must pass none. *)
let to_prometheus ?(extra_regs = []) t =
  refresh_process_gauges t;
  locked t (fun () -> Metrics.to_prometheus ~regs:(t.reg :: extra_regs) ())
