(* Append-only derivation arena. Each record is [width] consecutive ints:
   [space; k1; k2; obj; tag; x; y; z]. The index maps a fact's key to its
   record id; lookups return the payload (tag, x, y, z). *)

let width = 8

type t = {
  mutable arena : int array;
  mutable n : int; (* records *)
  index : (int * int * int * int, int) Hashtbl.t;
}

let create () = { arena = Array.make (256 * width) 0; n = 0; index = Hashtbl.create 1024 }
let n_records t = t.n

(* Spaces. *)
let sp_avar = 0
let sp_var = 1
let sp_mem = 2
let sp_store = 3
let sp_pair = 4

(* Reason tags. *)
let a_base = 1
let a_copy = 2
let a_gep = 3
let a_fork = 4
let a_merge = 5
let s_addr = 10
let s_copy = 11
let s_phi = 12
let s_gep = 13
let s_load = 14
let s_bind = 15
let m_store = 20
let m_edge = 21
let m_fork = 22
let u_strong = 30
let u_weak = 31
let p_kept = 40
let p_filtered_lock = 41
let p_skipped_mhp = 42

let pack_spans ~sp ~sp' ~store_not_tail ~load_not_head =
  (((sp lsl 20) lor sp') lsl 2)
  lor (if store_not_tail then 1 else 0)
  lor (if load_not_head then 2 else 0)

let unpack_spans z =
  let bits = z land 3 in
  let sps = z lsr 2 in
  (sps lsr 20, sps land 0xfffff, bits land 1 <> 0, bits land 2 <> 0)

let grow t =
  let cap = Array.length t.arena in
  let a = Array.make (2 * cap) 0 in
  Array.blit t.arena 0 a 0 cap;
  t.arena <- a

let write t ~space ~k1 ~k2 ~obj ~tag ~x ~y ~z id =
  let off = id * width in
  if off + width > Array.length t.arena then grow t;
  let a = t.arena in
  a.(off) <- space;
  a.(off + 1) <- k1;
  a.(off + 2) <- k2;
  a.(off + 3) <- obj;
  a.(off + 4) <- tag;
  a.(off + 5) <- x;
  a.(off + 6) <- y;
  a.(off + 7) <- z

let add t ~space ~k1 ~k2 ~obj ~tag ~x ~y ~z =
  let key = (space, k1, k2, obj) in
  if not (Hashtbl.mem t.index key) then begin
    let id = t.n in
    write t ~space ~k1 ~k2 ~obj ~tag ~x ~y ~z id;
    Hashtbl.replace t.index key id;
    t.n <- id + 1
  end

let set t ~space ~k1 ~k2 ~obj ~tag ~x ~y ~z =
  let key = (space, k1, k2, obj) in
  match Hashtbl.find_opt t.index key with
  | Some id ->
    let off = id * width in
    t.arena.(off + 4) <- tag;
    t.arena.(off + 5) <- x;
    t.arena.(off + 6) <- y;
    t.arena.(off + 7) <- z
  | None ->
    let id = t.n in
    write t ~space ~k1 ~k2 ~obj ~tag ~x ~y ~z id;
    Hashtbl.replace t.index key id;
    t.n <- id + 1

let find t ~space ~k1 ~k2 ~obj =
  match Hashtbl.find_opt t.index (space, k1, k2, obj) with
  | None -> None
  | Some id ->
    let off = id * width in
    let a = t.arena in
    Some (a.(off + 4), a.(off + 5), a.(off + 6), a.(off + 7))

let local () = create ()

let iter t f =
  for id = 0 to t.n - 1 do
    let off = id * width in
    let a = t.arena in
    f ~space:a.(off) ~k1:a.(off + 1) ~k2:a.(off + 2) ~obj:a.(off + 3) ~tag:a.(off + 4)
      ~x:a.(off + 5) ~y:a.(off + 6) ~z:a.(off + 7)
  done

let absorb dst src = iter src (add dst)
