(** Derivation recorder for provenance-carrying analysis.

    A recorder is an append-only arena of fixed-width integer records, one
    per derived fact, indexed by the fact's key. Each record stores {e one}
    reason — the first one that derived the fact — so walking reasons always
    moves strictly backwards in derivation order and every chain is finite
    and acyclic. A handful of verdict-style facts (strong/weak update
    decisions, [THREAD-VF] pair verdicts) instead use replace semantics via
    {!set} so the final, sound verdict wins.

    The representation is deliberately dumb: an [int array] arena growing by
    doubling plus one [Hashtbl] from keys to arena offsets. No OCaml blocks
    are allocated per record beyond the hashtable entry, and when recording
    is disabled the analysis hot paths never touch this module at all
    (callers guard on an [option]).

    Facts live in {e spaces} so the same integers can key different kinds of
    facts without collision:

    - {!sp_avar}: Andersen — object [obj] entered the points-to set of
      constraint-graph node [k1].
    - {!sp_var}: sparse solve — [obj] entered the top-level points-to set of
      variable [k1].
    - {!sp_mem}: sparse solve — [obj] entered the contents of container
      object [k2] at SVFG node [k1].
    - {!sp_store}: per-store update verdict — store statement gid [k1] last
      performed a strong ({!u_strong}, [x] = killed object) or weak
      ({!u_weak}) update (replace semantics).
    - {!sp_pair}: thread-aware SVFG edge candidate — the verdict for the
      candidate pair (store gid [k1], access gid [k2]) on object [obj]:
      kept ({!p_kept}), filtered by the lock-span non-interference test
      ({!p_filtered_lock}) or skipped because the statements never happen in
      parallel ({!p_skipped_mhp}).

    Recording composes with domain parallelism exactly like the rest of the
    pipeline: workers record into {!local} chunk recorders which the
    coordinator {!absorb}s in chunk order, so the recorded reasons are
    byte-identical for every [--jobs] value. *)

type t

val create : unit -> t

val n_records : t -> int
(** Number of facts recorded so far. *)

(* Spaces ----------------------------------------------------------------- *)

val sp_avar : int
val sp_var : int
val sp_mem : int
val sp_store : int
val sp_pair : int

(* Reason tags ------------------------------------------------------------ *)

(* Andersen (space {!sp_avar}); [x]/[y] per tag as documented. *)

val a_base : int  (** address-of at statement gid [x] *)

val a_copy : int  (** flowed over the inclusion edge from node [x] *)

val a_gep : int  (** field of base object [x], materialised at gid [y] *)

val a_fork : int  (** thread object bound to handle cell by fork gid [x] *)

val a_merge : int
(** cycle collapse absorbed node [x] (which holds the original reason) *)

(* Sparse top-level (space {!sp_var}). *)

val s_addr : int  (** address-of at gid [x] *)

val s_copy : int  (** copy/cast from var [x] at gid [y] *)

val s_phi : int  (** phi from var [x] at gid [y] *)

val s_gep : int  (** field of base object [x] at gid [y] *)

val s_load : int
(** load at gid [x]; delivered by SVFG node [y] from container object [z] *)

val s_bind : int  (** parameter/return binding from var [x] at call gid [y] *)

(* Sparse memory cells (space {!sp_mem}). *)

val m_store : int  (** store of var [x] at gid [y] *)

val m_edge : int  (** propagated over the SVFG edge from node [x] *)

val m_fork : int  (** seeded by the fork-site theta binding at gid [x] *)

(* Store update verdicts (space {!sp_store}, replace semantics). *)

val u_strong : int  (** singleton target: killed object [x] *)

val u_weak : int  (** non-singleton or non-killable target *)

(* [THREAD-VF] pair verdicts (space {!sp_pair}). *)

val p_kept : int
(** edge added; [x] = 1 iff the pair is unprotected (no common lock),
    [y],[z] = a witness MHP instance pair (or -1,-1) *)

val p_filtered_lock : int
(** every MHP instance pair passed the span non-interference test
    (paper Definition 6); [x],[y] = the first such instance pair and
    [z] = {!pack_spans} of the justifying span pair + head/tail bits *)

val p_skipped_mhp : int  (** the two statements never happen in parallel *)

(* Span-pair packing for {!p_filtered_lock} ------------------------------- *)

val pack_spans : sp:int -> sp':int -> store_not_tail:bool -> load_not_head:bool -> int
val unpack_spans : int -> int * int * bool * bool
(** [(sp, sp', store_not_tail, load_not_head)] — the common-lock span pair
    and which half of Definition 6 held ([store_not_tail]: the write is not
    the span tail; [load_not_head]: the access is not the span head). *)

(* Recording -------------------------------------------------------------- *)

val add : t -> space:int -> k1:int -> k2:int -> obj:int -> tag:int -> x:int -> y:int -> z:int -> unit
(** First-reason-wins: a no-op if the fact already has a reason. *)

val set : t -> space:int -> k1:int -> k2:int -> obj:int -> tag:int -> x:int -> y:int -> z:int -> unit
(** Replace semantics (verdict facts): overwrite any earlier reason. *)

val find : t -> space:int -> k1:int -> k2:int -> obj:int -> (int * int * int * int) option
(** [(tag, x, y, z)] of the recorded reason, if any. *)

(* Parallel chunks -------------------------------------------------------- *)

val local : unit -> t
(** Fresh chunk-local recorder for a worker domain. *)

val absorb : t -> t -> unit
(** [absorb dst src] appends [src]'s records into [dst] in [src]'s record
    order. [add]-style records keep first-reason semantics; records written
    with {!set} in the chunk must be re-[set] by the caller if cross-chunk
    replace order matters (the pipeline only [set]s from the serial path). *)

val iter : t -> (space:int -> k1:int -> k2:int -> obj:int -> tag:int -> x:int -> y:int -> z:int -> unit) -> unit
(** Iterate records in recording order. *)
