type counter = { mutable c_value : int }
type gauge = { mutable g_value : int }

(* buckets.(0): values <= 0; buckets.(k): values in (2^(k-2), 2^(k-1)] *)
type histogram = {
  mutable h_count : int;
  mutable h_sum : int;
  h_buckets : int array;
}

type metric = C of counter | G of gauge | H of histogram
type registry = (string, metric) Hashtbl.t

let create_registry () : registry = Hashtbl.create 16

(* The process-global default. [Driver.run] resets it at pipeline entry, so
   long-lived components (the serve daemon) keep their own registries. *)
let global : registry = create_registry ()

let reset ?(reg = global) () = Hashtbl.reset reg

let kind_error name = invalid_arg (Printf.sprintf "Metrics: %S has another kind" name)

let counter ?(reg = global) name =
  match Hashtbl.find_opt reg name with
  | Some (C c) -> c
  | Some _ -> kind_error name
  | None ->
    let c = { c_value = 0 } in
    Hashtbl.replace reg name (C c);
    c

let incr c = c.c_value <- c.c_value + 1

let add c n =
  if n < 0 then invalid_arg "Metrics.add: counters are monotonic";
  c.c_value <- c.c_value + n

let counter_value c = c.c_value

let gauge ?(reg = global) name =
  match Hashtbl.find_opt reg name with
  | Some (G g) -> g
  | Some _ -> kind_error name
  | None ->
    let g = { g_value = 0 } in
    Hashtbl.replace reg name (G g);
    g

let set g v = g.g_value <- v
let set_max g v = if v > g.g_value then g.g_value <- v
let gauge_value g = g.g_value

let n_buckets = 63

let histogram ?(reg = global) name =
  match Hashtbl.find_opt reg name with
  | Some (H h) -> h
  | Some _ -> kind_error name
  | None ->
    let h = { h_count = 0; h_sum = 0; h_buckets = Array.make n_buckets 0 } in
    Hashtbl.replace reg name (H h);
    h

let bucket_of v =
  if v <= 0 then 0
  else begin
    let k = ref 1 and ub = ref 1 in
    while v > !ub && !k < n_buckets - 1 do
      Stdlib.incr k;
      ub := !ub * 2
    done;
    !k
  end

let bucket_le = function 0 -> 0 | k -> 1 lsl (k - 1)

let observe h v =
  h.h_count <- h.h_count + 1;
  h.h_sum <- h.h_sum + v;
  let b = bucket_of v in
  h.h_buckets.(b) <- h.h_buckets.(b) + 1

let histogram_count h = h.h_count
let histogram_sum h = h.h_sum

(* Quantile estimate from the power-of-two buckets: the upper bound of the
   first bucket whose cumulative count reaches q * count. Exact for values
   that are bucket bounds; otherwise an upper bound within 2x. *)
let quantile h q =
  if h.h_count = 0 then 0
  else begin
    let target = max 1 (min h.h_count (int_of_float (ceil (q *. float_of_int h.h_count)))) in
    let rec go k cum =
      if k >= n_buckets - 1 then bucket_le (n_buckets - 1)
      else
        let cum = cum + h.h_buckets.(k) in
        if cum >= target then bucket_le k else go (k + 1) cum
    in
    go 0 0
  end

(* Removal is for re-recorded families (per-domain [par.*.domain<i>.*]
   gauges): a later run of the same region with fewer lanes must not leave
   the dead lanes' values behind in the snapshot. *)
let remove_matching ?(reg = global) p =
  let doomed = Hashtbl.fold (fun name _ acc -> if p name then name :: acc else acc) reg [] in
  List.iter (Hashtbl.remove reg) doomed

let find_counter ?(reg = global) name =
  match Hashtbl.find_opt reg name with Some (C c) -> Some c.c_value | _ -> None

let find_gauge ?(reg = global) name =
  match Hashtbl.find_opt reg name with Some (G g) -> Some g.g_value | _ -> None

let find_histogram ?(reg = global) name =
  match Hashtbl.find_opt reg name with Some (H h) -> Some h | _ -> None

let sorted_bindings reg =
  Hashtbl.fold (fun name m acc -> (name, m) :: acc) reg []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let to_json ?(reg = global) () =
  let named p =
    List.filter_map
      (fun (name, m) -> match p m with Some j -> Some (name, j) | None -> None)
      (sorted_bindings reg)
  in
  let histo_json h =
    let buckets = ref [] in
    for k = n_buckets - 1 downto 0 do
      if h.h_buckets.(k) > 0 then
        buckets :=
          Json.Obj [ ("le", Json.Int (bucket_le k)); ("count", Json.Int h.h_buckets.(k)) ]
          :: !buckets
    done;
    Json.Obj
      [
        ("count", Json.Int h.h_count);
        ("sum", Json.Int h.h_sum);
        ("p50", Json.Int (quantile h 0.50));
        ("p95", Json.Int (quantile h 0.95));
        ("p99", Json.Int (quantile h 0.99));
        ("buckets", Json.List !buckets);
      ]
  in
  Json.Obj
    [
      ("counters", Json.Obj (named (function C c -> Some (Json.Int c.c_value) | _ -> None)));
      ("gauges", Json.Obj (named (function G g -> Some (Json.Int g.g_value) | _ -> None)));
      ("histograms", Json.Obj (named (function H h -> Some (histo_json h) | _ -> None)));
    ]

(* --- Prometheus text exposition (version 0.0.4) --- *)

(* Metric names admit [a-zA-Z_:][a-zA-Z0-9_:]*; our dotted/dashed names
   ("serve.req.points-to.latency_us") flatten to underscores. *)
let prometheus_name name =
  let b = Bytes.of_string name in
  for i = 0 to Bytes.length b - 1 do
    let c = Bytes.get b i in
    let ok =
      (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = ':'
      || (i > 0 && c >= '0' && c <= '9')
    in
    if not ok then Bytes.set b i '_'
  done;
  let s = Bytes.to_string b in
  if s = "" then "_" else s

let to_prometheus ?(regs = [ global ]) () =
  let buf = Buffer.create 4096 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf s; Buffer.add_char buf '\n') fmt in
  let emit (name, m) =
    let pname = prometheus_name name in
    match m with
    | C c ->
      line "# TYPE %s counter" pname;
      line "%s %d" pname c.c_value
    | G g ->
      line "# TYPE %s gauge" pname;
      line "%s %d" pname g.g_value
    | H h ->
      line "# TYPE %s histogram" pname;
      let cum = ref 0 in
      for k = 0 to n_buckets - 1 do
        cum := !cum + h.h_buckets.(k);
        (* only materialize boundaries that carry information: occupied
           buckets (exposition stays compact, cumulative counts exact) *)
        if h.h_buckets.(k) > 0 then line "%s_bucket{le=\"%d\"} %d" pname (bucket_le k) !cum
      done;
      line "%s_bucket{le=\"+Inf\"} %d" pname h.h_count;
      line "%s_sum %d" pname h.h_sum;
      line "%s_count %d" pname h.h_count
  in
  let seen = Hashtbl.create 64 in
  List.iter
    (fun reg ->
      List.iter
        (fun (name, m) ->
          let pname = prometheus_name name in
          if not (Hashtbl.mem seen pname) then begin
            Hashtbl.replace seen pname ();
            emit (name, m)
          end)
        (sorted_bindings reg))
    regs;
  Buffer.contents buf
