type counter = { mutable c_value : int }
type gauge = { mutable g_value : int }

(* buckets.(0): values <= 0; buckets.(k): values in (2^(k-2), 2^(k-1)] *)
type histogram = {
  mutable h_count : int;
  mutable h_sum : int;
  h_buckets : int array;
}

type metric = C of counter | G of gauge | H of histogram

let registry : (string, metric) Hashtbl.t = Hashtbl.create 64

let reset () = Hashtbl.reset registry

let kind_error name = invalid_arg (Printf.sprintf "Metrics: %S has another kind" name)

let counter name =
  match Hashtbl.find_opt registry name with
  | Some (C c) -> c
  | Some _ -> kind_error name
  | None ->
    let c = { c_value = 0 } in
    Hashtbl.replace registry name (C c);
    c

let incr c = c.c_value <- c.c_value + 1

let add c n =
  if n < 0 then invalid_arg "Metrics.add: counters are monotonic";
  c.c_value <- c.c_value + n

let counter_value c = c.c_value

let gauge name =
  match Hashtbl.find_opt registry name with
  | Some (G g) -> g
  | Some _ -> kind_error name
  | None ->
    let g = { g_value = 0 } in
    Hashtbl.replace registry name (G g);
    g

let set g v = g.g_value <- v
let set_max g v = if v > g.g_value then g.g_value <- v
let gauge_value g = g.g_value

let n_buckets = 63

let histogram name =
  match Hashtbl.find_opt registry name with
  | Some (H h) -> h
  | Some _ -> kind_error name
  | None ->
    let h = { h_count = 0; h_sum = 0; h_buckets = Array.make n_buckets 0 } in
    Hashtbl.replace registry name (H h);
    h

let bucket_of v =
  if v <= 0 then 0
  else begin
    let k = ref 1 and ub = ref 1 in
    while v > !ub && !k < n_buckets - 1 do
      Stdlib.incr k;
      ub := !ub * 2
    done;
    !k
  end

let bucket_le = function 0 -> 0 | k -> 1 lsl (k - 1)

let observe h v =
  h.h_count <- h.h_count + 1;
  h.h_sum <- h.h_sum + v;
  let b = bucket_of v in
  h.h_buckets.(b) <- h.h_buckets.(b) + 1

(* Quantile estimate from the power-of-two buckets: the upper bound of the
   first bucket whose cumulative count reaches q * count. Exact for values
   that are bucket bounds; otherwise an upper bound within 2x. *)
let quantile h q =
  if h.h_count = 0 then 0
  else begin
    let target = max 1 (min h.h_count (int_of_float (ceil (q *. float_of_int h.h_count)))) in
    let rec go k cum =
      if k >= n_buckets - 1 then bucket_le (n_buckets - 1)
      else
        let cum = cum + h.h_buckets.(k) in
        if cum >= target then bucket_le k else go (k + 1) cum
    in
    go 0 0
  end

(* Removal is for re-recorded families (per-domain [par.*.domain<i>.*]
   gauges): a later run of the same region with fewer lanes must not leave
   the dead lanes' values behind in the snapshot. *)
let remove_matching p =
  let doomed = Hashtbl.fold (fun name _ acc -> if p name then name :: acc else acc) registry [] in
  List.iter (Hashtbl.remove registry) doomed

let find_counter name =
  match Hashtbl.find_opt registry name with Some (C c) -> Some c.c_value | _ -> None

let find_gauge name =
  match Hashtbl.find_opt registry name with Some (G g) -> Some g.g_value | _ -> None

let to_json () =
  let named p =
    Hashtbl.fold (fun name m acc -> match p m with Some j -> (name, j) :: acc | None -> acc)
      registry []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  let histo_json h =
    let buckets = ref [] in
    for k = n_buckets - 1 downto 0 do
      if h.h_buckets.(k) > 0 then
        buckets :=
          Json.Obj [ ("le", Json.Int (bucket_le k)); ("count", Json.Int h.h_buckets.(k)) ]
          :: !buckets
    done;
    Json.Obj
      [
        ("count", Json.Int h.h_count);
        ("sum", Json.Int h.h_sum);
        ("p50", Json.Int (quantile h 0.50));
        ("p95", Json.Int (quantile h 0.95));
        ("p99", Json.Int (quantile h 0.99));
        ("buckets", Json.List !buckets);
      ]
  in
  Json.Obj
    [
      ("counters", Json.Obj (named (function C c -> Some (Json.Int c.c_value) | _ -> None)));
      ("gauges", Json.Obj (named (function G g -> Some (Json.Int g.g_value) | _ -> None)));
      ("histograms", Json.Obj (named (function H h -> Some (histo_json h) | _ -> None)));
    ]
