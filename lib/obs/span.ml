type t = {
  name : string;
  start_s : float;
  dur_s : float;
  cpu_s : float;
  minor_words : float;
  major_words : float;
  children : t list;
}

type frame = {
  f_name : string;
  f_mono : float; (* monotonic: the duration base, NTP-step immune *)
  f_cpu : float;
  f_minor : float;
  f_major : float;
  mutable f_children_rev : t list;
}

(* One wall-clock epoch paired with a monotonic reading taken at the same
   instant. Every span start is [epoch_wall + (mono - epoch_mono)]: absolute
   enough to align traces across processes, yet immune to NTP steps between
   spans — two spans can never appear to start out of order. *)
let epoch_wall = Unix.gettimeofday ()
let epoch_mono = Monotonic.now_s ()
let wall_of_mono m = epoch_wall +. (m -. epoch_mono)

let stack : frame list ref = ref []
let roots_rev : t list ref = ref []

let reset () = roots_rev := []

let with_timed ~name f =
  (* [Gc.minor_words] reads the allocation pointer, so it is exact between
     collections; [quick_stat]'s minor_words field only updates at GC points
     and would report 0 for short spans. Major words stay on [quick_stat] —
     both are collection-free. *)
  let gc0 = Gc.quick_stat () in
  let fr =
    {
      f_name = name;
      f_mono = Monotonic.now_s ();
      f_cpu = Sys.time ();
      f_minor = Gc.minor_words ();
      f_major = gc0.Gc.major_words;
      f_children_rev = [];
    }
  in
  stack := fr :: !stack;
  let completed = ref None in
  let finally () =
    (* Unwind to our own frame: spans opened below us that escaped via an
       exception are discarded rather than corrupting the tree. *)
    let rec drop = function
      | s :: rest -> if s == fr then rest else drop rest
      | [] -> []
    in
    stack := drop !stack;
    let gc1 = Gc.quick_stat () in
    let sp =
      {
        name = fr.f_name;
        start_s = wall_of_mono fr.f_mono;
        dur_s = Monotonic.elapsed_s ~since_s:fr.f_mono;
        cpu_s = Sys.time () -. fr.f_cpu;
        minor_words = Gc.minor_words () -. fr.f_minor;
        major_words = gc1.Gc.major_words -. fr.f_major;
        children = List.rev fr.f_children_rev;
      }
    in
    (match !stack with
    | parent :: _ -> parent.f_children_rev <- sp :: parent.f_children_rev
    | [] -> roots_rev := sp :: !roots_rev);
    completed := Some sp
  in
  let v = Fun.protect ~finally f in
  (v, Option.get !completed)

let with_ ~name f = fst (with_timed ~name f)

let roots () = List.rev !roots_rev

let snapshot () =
  let closed = List.rev !roots_rev in
  match !stack with
  | [] -> closed
  | frames ->
    (* Materialise the open stack as a chain of still-running spans: the
       innermost open frame nests inside the next one out, each with its
       already-completed children first and dur measured to now. *)
    let now_mono = Monotonic.now_s () in
    let cpu = Sys.time () in
    let minor = Gc.minor_words () in
    let major = (Gc.quick_stat ()).Gc.major_words in
    let open_roots =
      List.fold_left
        (fun inner fr ->
          [
            {
              name = fr.f_name;
              start_s = wall_of_mono fr.f_mono;
              dur_s = now_mono -. fr.f_mono;
              cpu_s = cpu -. fr.f_cpu;
              minor_words = minor -. fr.f_minor;
              major_words = major -. fr.f_major;
              children = List.rev fr.f_children_rev @ inner;
            };
          ])
        [] frames
    in
    closed @ open_roots

let rec count sp = List.fold_left (fun acc c -> acc + count c) 1 sp.children

let distinct_names forest =
  let tbl = Hashtbl.create 32 in
  let rec go sp =
    Hashtbl.replace tbl sp.name ();
    List.iter go sp.children
  in
  List.iter go forest;
  List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) tbl [])

let find name forest =
  let rec go = function
    | [] -> None
    | sp :: rest -> (
      if String.equal sp.name name then Some sp
      else
        match go sp.children with
        | Some _ as r -> r
        | None -> go rest)
  in
  go forest

let rec to_json sp =
  Json.Obj
    [
      ("name", Json.String sp.name);
      ("start_s", Json.Float sp.start_s);
      ("dur_s", Json.Float sp.dur_s);
      ("cpu_s", Json.Float sp.cpu_s);
      ("minor_words", Json.Float sp.minor_words);
      ("major_words", Json.Float sp.major_words);
      ("children", Json.List (List.map to_json sp.children));
    ]
