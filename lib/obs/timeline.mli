(** Per-domain event timelines for the parallel regions.

    A {!ring} is a fixed-width ring buffer of timestamped events
    [(t_us, kind, a, b)] — all ints, 4 per slot — written lock-free by
    exactly one domain. {!Fsam_par.run_chunks} creates one ring per chunk
    when profiling is enabled, installs it as the chunk domain's {e current}
    ring, and absorbs all rings after the join; analysis code inside chunks
    reports per-item progress through {!emit} without knowing which lane it
    runs on. Everything is a no-op while {!enabled} is [false]: the
    instrumentation points cost one atomic load each.

    Safety: one writer per ring; the reader is the calling domain {e after}
    [Domain.join], whose happens-before edge publishes the writes. The
    collected-ring list and [reset] are main-domain-only, like the rest of
    the observability layer. *)

type ring = {
  region : string;  (** parallel-region label, e.g. ["svfg.pairs"] *)
  lane : int;  (** chunk index; lane 0 is the calling domain *)
  cap : int;  (** slot capacity; older events are overwritten past it *)
  buf : int array;  (** 4 ints per slot: t_us, kind, a, b *)
  mutable n : int;  (** events ever recorded; [> cap] means wraparound *)
}

(** {1 Event kinds} *)

val k_chunk_start : int
(** a = lo, b = hi: the chunk's index range. *)

val k_chunk_stop : int
(** a = items processed, b = intern-table contention delta. *)

val k_item : int
(** a = item key (object id, store gid, ...), b = caller-defined counter. *)

val k_merge : int
(** a = joined lane, b = that lane's wall_us (recorded on lane 0). *)

val k_absorb : int
(** a = chunk index, b = units absorbed (serial apply/merge phases). *)

val k_contention : int
(** a = stripe contentions observed during the chunk, b = 0. *)

val kind_name : int -> string

(** {1 Profiling switch and clock} *)

val set_enabled : bool -> unit
val enabled : unit -> bool

val epoch : unit -> float
(** Absolute [Unix.gettimeofday] of the last {!reset}; ring timestamps are
    microseconds since this instant. *)

val now_us : unit -> int
(** Microseconds since the last {!reset}, measured on the {!Monotonic}
    clock (never negative, immune to NTP steps). *)

(** {1 Rings} *)

val default_cap : int

val create_ring : ?cap:int -> region:string -> lane:int -> unit -> ring

val record : ring -> kind:int -> a:int -> b:int -> unit
(** Append one event (timestamped now); overwrites the oldest past [cap]. *)

val n_recorded : ring -> int
val n_events : ring -> int
val dropped : ring -> int

val events : ring -> (int * int * int * int) list
(** Retained events, oldest first (wraparound-aware). *)

val count_kind : ring -> int -> int

(** {1 Current ring (per domain)} *)

val set_current : ring option -> unit
val emit : kind:int -> a:int -> b:int -> unit
(** Record into the calling domain's current ring; no-op when profiling is
    off or no ring is installed. *)

(** {1 Collection (main domain)} *)

val absorb : ring -> unit
val collected : unit -> ring list
(** Absorbed rings sorted by (region, lane). *)

val reset : unit -> unit

val with_ring : ?cap:int -> region:string -> lane:int -> (unit -> 'a) -> 'a
(** Install a fresh ring around [f] in the calling domain, absorb it after;
    just runs [f] when profiling is off. *)

val ring_json : ring -> Json.t
val to_json : unit -> Json.t
