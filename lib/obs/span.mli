(** Hierarchical wall-clock + allocation spans.

    [with_ ~name f] runs [f] inside a span: nested calls build a tree, and
    each completed span records wall-clock duration, CPU time and the GC
    allocation deltas observed across it ([Gc.minor_words] for the minor
    heap — exact between collections — and [Gc.quick_stat] for the major
    heap; no forced collection, so the hot path stays cheap).

    Recording is process-global and single-threaded, matching the analysis
    pipeline. Completed top-level spans accumulate in [roots] until
    [reset]; [Driver.run] resets at entry so each analysis run owns the
    buffer. [reset] never touches spans that are still open: they complete
    normally and land in the fresh buffer. *)

type t = {
  name : string;
  start_s : float;
      (** wall-clock instant at entry, derived as a fixed process-wide wall
          epoch plus a monotonic offset — NTP steps between spans cannot
          reorder or skew starts *)
  dur_s : float;  (** wall-clock duration, seconds *)
  cpu_s : float;  (** [Sys.time] delta, seconds *)
  minor_words : float;  (** words allocated in the minor heap during the span *)
  major_words : float;  (** words allocated in the major heap during the span *)
  children : t list;  (** completed sub-spans, in execution order *)
}

val with_ : name:string -> (unit -> 'a) -> 'a
(** Run [f] in a span. The span is recorded even when [f] raises. *)

val with_timed : name:string -> (unit -> 'a) -> 'a * t
(** Like [with_], additionally returning the completed span record. *)

val reset : unit -> unit
(** Drop all completed root spans (open spans are unaffected). *)

val roots : unit -> t list
(** Completed top-level spans since the last [reset], in completion order. *)

val snapshot : unit -> t list
(** [roots ()] plus the currently open span stack rendered as one extra
    root whose durations are measured up to now (each open frame nests the
    next inner one after its completed children). Read-only — the open
    frames keep running. Used by the crash-flush paths to export partial
    traces when the process dies mid-analysis. *)

val count : t -> int
(** Number of spans in the tree, including the root. *)

val distinct_names : t list -> string list
(** Sorted de-duplicated span names over a forest. *)

val find : string -> t list -> t option
(** First span with the given name, depth-first over a forest. *)

val to_json : t -> Json.t
