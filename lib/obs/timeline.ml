(* Per-domain timelines: each ring is written by exactly one domain (the one
   [Fsam_par] installed it in) and read by the calling domain only after
   [Domain.join] — the join's happens-before edge is the only
   synchronisation a single-writer/join-then-read protocol needs, so the
   hot path is four int stores and two adds, no locks, no allocation. *)

type ring = {
  region : string;
  lane : int;
  cap : int; (* slots *)
  buf : int array; (* 4 ints per slot: t_us, kind, a, b *)
  mutable n : int; (* events ever recorded; > cap means wraparound *)
}

(* Event kinds. [a]/[b] payloads per kind:
   chunk_start: a = lo, b = hi (the chunk's index range)
   chunk_stop:  a = items processed (hi - lo), b = intern-contention delta
   item:        a = item key (object id, store gid, ...), b = caller counter
   merge:       a = joined lane, b = that lane's wall_us
   absorb:      a = chunk index, b = units absorbed
   contention:  a = intern-table stripe contentions in the chunk, b = 0 *)
let k_chunk_start = 0
let k_chunk_stop = 1
let k_item = 2
let k_merge = 3
let k_absorb = 4
let k_contention = 5

let kind_name = function
  | 0 -> "chunk_start"
  | 1 -> "chunk_stop"
  | 2 -> "item"
  | 3 -> "merge"
  | 4 -> "absorb"
  | 5 -> "contention"
  | _ -> "unknown"

(* Master profiling switch: read by worker domains, written by the main
   domain before any region starts. *)
let enabled_flag = Atomic.make false
let set_enabled b = Atomic.set enabled_flag b
let enabled () = Atomic.get enabled_flag

(* Timestamps are microseconds relative to the last [reset] — ints, so
   events are fixed-width and the JSON document round-trips exactly. The
   interval comes from the monotonic clock (an NTP step must not produce
   backwards-travelling lanes); [epoch] keeps the absolute wall-clock
   instant of the reset for trace alignment. *)
let epoch_mono_us = Atomic.make 0
let epoch_wall_s = Atomic.make 0.
let epoch () = Atomic.get epoch_wall_s
let now_us () = Monotonic.elapsed_us ~since_us:(Atomic.get epoch_mono_us)

let default_cap = 4096

let create_ring ?(cap = default_cap) ~region ~lane () =
  let cap = max 1 cap in
  { region; lane; cap; buf = Array.make (4 * cap) 0; n = 0 }

let record r ~kind ~a ~b =
  let o = 4 * (r.n mod r.cap) in
  r.buf.(o) <- now_us ();
  r.buf.(o + 1) <- kind;
  r.buf.(o + 2) <- a;
  r.buf.(o + 3) <- b;
  r.n <- r.n + 1

let n_recorded r = r.n
let n_events r = min r.n r.cap
let dropped r = max 0 (r.n - r.cap)

(* Oldest retained event first: once wrapped, the slot about to be
   overwritten is the oldest survivor. *)
let events r =
  let k = n_events r in
  let start = if r.n > r.cap then r.n mod r.cap else 0 in
  List.init k (fun i ->
      let o = 4 * ((start + i) mod r.cap) in
      (r.buf.(o), r.buf.(o + 1), r.buf.(o + 2), r.buf.(o + 3)))

let count_kind r kind =
  List.fold_left (fun acc (_, k, _, _) -> if k = kind then acc + 1 else acc) 0 (events r)

(* The ring the current domain should append to, installed by [Fsam_par]
   around each chunk. [emit] from analysis code is a no-op unless profiling
   is on AND a ring is installed, so instrumentation points cost one atomic
   load on the disabled path. *)
let cur_key = Domain.DLS.new_key (fun () : ring option ref -> ref None)
let set_current r = Domain.DLS.get cur_key := r

let emit ~kind ~a ~b =
  if enabled () then
    match !(Domain.DLS.get cur_key) with
    | Some r -> record r ~kind ~a ~b
    | None -> ()

(* Collected rings — main domain only, absorbed after joins in lane order. *)
let collected_rev : ring list ref = ref []
let absorb r = collected_rev := r :: !collected_rev

let collected () =
  List.stable_sort
    (fun a b ->
      match compare a.region b.region with 0 -> compare a.lane b.lane | c -> c)
    (List.rev !collected_rev)

let reset () =
  collected_rev := [];
  Atomic.set epoch_mono_us (Monotonic.now_us ());
  Atomic.set epoch_wall_s (Unix.gettimeofday ())

(* [with_ring ~region ~lane f]: install a fresh ring for the calling domain,
   run [f], uninstall and absorb it. Used for serial phases (merge/absorb
   loops) that want events on the main lane. No-op wrapper when disabled. *)
let with_ring ?cap ~region ~lane f =
  if not (enabled ()) then f ()
  else begin
    let r = create_ring ?cap ~region ~lane () in
    set_current (Some r);
    Fun.protect
      ~finally:(fun () ->
        set_current None;
        absorb r)
      f
  end

let ring_json r =
  Json.Obj
    [
      ("region", Json.String r.region);
      ("lane", Json.Int r.lane);
      ("recorded", Json.Int r.n);
      ("dropped", Json.Int (dropped r));
      ( "events",
        Json.List
          (List.map
             (fun (t, k, a, b) ->
               Json.List [ Json.Int t; Json.Int k; Json.Int a; Json.Int b ])
             (events r)) );
    ]

let to_json () = Json.List (List.map ring_json (collected ()))
