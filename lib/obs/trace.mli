(** Chrome [trace_event] export: converts a span forest into the JSON
    object format ({["traceEvents": [...]]}) that [chrome://tracing] and
    {{:https://ui.perfetto.dev}Perfetto} open directly. Each span becomes a
    complete ("ph": "X") event; timestamps are microseconds relative to the
    earliest root span. *)

val to_json : Span.t list -> Json.t

val write : string -> Span.t list -> unit
(** Write [to_json] of the forest to a file (minified). *)
