(** Chrome [trace_event] export: converts a span forest into the JSON
    object format ({["traceEvents": [...]]}) that [chrome://tracing] and
    {{:https://ui.perfetto.dev}Perfetto} open directly. Each span becomes a
    complete ("ph": "X") event on pid 1 / tid 1; timestamps are
    microseconds relative to the earliest root span.

    With [?timelines] (profiled runs), each {!Timeline.ring} contributes a
    lane on tid [lane + 1]: thread_name metadata events label the lanes
    ("domain 0 (main)", "domain 1", ...), every chunk becomes an X event
    carrying its index range / item count / contention, per-item progress
    and intern-table contention become counter ("C") tracks, and
    merge/absorb events become instants — so slow chunks and idle domains
    are visible at a glance in Perfetto. Without timelines the output is
    byte-identical to the span-only format. *)

val to_json : ?timelines:Timeline.ring list -> Span.t list -> Json.t

val write : ?timelines:Timeline.ring list -> string -> Span.t list -> unit
(** Write [to_json] of the forest to a file (minified). *)

val flush_at_exit : string -> unit
(** Arm the crash flush: when the process exits — normally, via [exit], or
    from an uncaught exception — the current [Span.snapshot] (completed
    spans plus the open stack) is written to the path, so an aborted run
    still leaves a usable partial Chrome trace. Re-arming replaces the
    path; the [at_exit] hook is installed once. Write failures at exit are
    swallowed. *)

val mark_flushed : unit -> unit
(** Disarm the crash flush — call after the normal export path has written
    its own (complete) trace, to avoid overwriting it with a snapshot. *)

val flush_now : unit -> unit
(** Run the armed flush immediately and disarm it (no-op when disarmed).
    Exposed for tests; this is exactly what the [at_exit] hook runs. *)

val armed : unit -> bool
(** Whether a crash flush is currently armed. A resident server arms around
    each analysis request and must observe [false] between requests, so a
    later crash cannot flush stale state from a request that completed. *)
