(** Chrome [trace_event] export: converts a span forest into the JSON
    object format ({["traceEvents": [...]]}) that [chrome://tracing] and
    {{:https://ui.perfetto.dev}Perfetto} open directly. Each span becomes a
    complete ("ph": "X") event; timestamps are microseconds relative to the
    earliest root span. *)

val to_json : Span.t list -> Json.t

val write : string -> Span.t list -> unit
(** Write [to_json] of the forest to a file (minified). *)

val flush_at_exit : string -> unit
(** Arm the crash flush: when the process exits — normally, via [exit], or
    from an uncaught exception — the current [Span.snapshot] (completed
    spans plus the open stack) is written to the path, so an aborted run
    still leaves a usable partial Chrome trace. Re-arming replaces the
    path; the [at_exit] hook is installed once. Write failures at exit are
    swallowed. *)

val mark_flushed : unit -> unit
(** Disarm the crash flush — call after the normal export path has written
    its own (complete) trace, to avoid overwriting it with a snapshot. *)

val flush_now : unit -> unit
(** Run the armed flush immediately and disarm it (no-op when disarmed).
    Exposed for tests; this is exactly what the [at_exit] hook runs. *)
