let to_json forest =
  let t0 =
    List.fold_left (fun acc sp -> Float.min acc sp.Span.start_s) Float.infinity forest
  in
  let events = ref [] in
  let rec go sp =
    events :=
      Json.Obj
        [
          ("name", Json.String sp.Span.name);
          ("cat", Json.String "fsam");
          ("ph", Json.String "X");
          ("ts", Json.Float ((sp.Span.start_s -. t0) *. 1e6));
          ("dur", Json.Float (sp.Span.dur_s *. 1e6));
          ("pid", Json.Int 1);
          ("tid", Json.Int 1);
          ( "args",
            Json.Obj
              [
                ("cpu_s", Json.Float sp.Span.cpu_s);
                ("minor_words", Json.Float sp.Span.minor_words);
                ("major_words", Json.Float sp.Span.major_words);
              ] );
        ]
      :: !events;
    List.iter go sp.Span.children
  in
  List.iter go forest;
  Json.Obj
    [
      ("traceEvents", Json.List (List.rev !events));
      ("displayTimeUnit", Json.String "ms");
    ]

let write path forest =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> Json.to_channel ~minify:true oc (to_json forest))

(* Crash flush: once armed, process exit (normal return, uncaught exception,
   [exit]) writes whatever spans exist — including still-open ones via
   [Span.snapshot] — unless the normal export path disarmed it first. *)
let pending : string option ref = ref None
let registered = ref false

let flush_now () =
  match !pending with
  | None -> ()
  | Some path ->
    pending := None;
    (try write path (Span.snapshot ()) with Sys_error _ -> ())

let flush_at_exit path =
  pending := Some path;
  if not !registered then begin
    registered := true;
    at_exit flush_now
  end

let mark_flushed () = pending := None
