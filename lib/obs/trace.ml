(* Chrome trace_event export (chrome://tracing, Perfetto).

   The span tree runs on the calling domain and is emitted on pid 1 /
   tid 1; profiled parallel regions additionally contribute one lane per
   chunk domain (tid = lane + 1, named by a thread_name metadata event so
   Perfetto labels them "domain 1", "domain 2", ...) with an X event per
   chunk and counter tracks for per-item progress and intern-table
   contention. Timeline timestamps are relative to [Timeline.epoch]; spans
   are absolute — both are rebased onto one origin so lanes line up with
   the phase spans that spawned them. *)

let span_events ~t0 forest =
  let events = ref [] in
  let rec go sp =
    events :=
      Json.Obj
        [
          ("name", Json.String sp.Span.name);
          ("cat", Json.String "fsam");
          ("ph", Json.String "X");
          ("ts", Json.Float ((sp.Span.start_s -. t0) *. 1e6));
          ("dur", Json.Float (sp.Span.dur_s *. 1e6));
          ("pid", Json.Int 1);
          ("tid", Json.Int 1);
          ( "args",
            Json.Obj
              [
                ("cpu_s", Json.Float sp.Span.cpu_s);
                ("minor_words", Json.Float sp.Span.minor_words);
                ("major_words", Json.Float sp.Span.major_words);
              ] );
        ]
      :: !events;
    List.iter go sp.Span.children
  in
  List.iter go forest;
  List.rev !events

let metadata ~name ~tid args =
  Json.Obj
    [
      ("name", Json.String name);
      ("ph", Json.String "M");
      ("pid", Json.Int 1);
      ("tid", Json.Int tid);
      ("args", Json.Obj args);
    ]

(* One lane per chunk domain: lane 0 is the calling domain (tid 1), lane l
   is tid l + 1. [shift_us] rebases Timeline-relative timestamps onto the
   trace origin. *)
let ring_events ~shift_us (r : Timeline.ring) =
  let tid = r.Timeline.lane + 1 in
  let region = r.Timeline.region in
  let events = ref [] in
  let push e = events := e :: !events in
  let counter ~ts name v =
    push
      (Json.Obj
         [
           ("name", Json.String name);
           ("ph", Json.String "C");
           ("ts", Json.Float (float_of_int (ts + shift_us)));
           ("pid", Json.Int 1);
           ("tid", Json.Int tid);
           ("args", Json.Obj [ ("value", Json.Int v) ]);
         ])
  in
  let instant ~ts name args =
    push
      (Json.Obj
         [
           ("name", Json.String name);
           ("ph", Json.String "i");
           ("s", Json.String "t");
           ("ts", Json.Float (float_of_int (ts + shift_us)));
           ("pid", Json.Int 1);
           ("tid", Json.Int tid);
           ("args", Json.Obj args);
         ])
  in
  let start = ref None in
  let items_done = ref 0 in
  List.iter
    (fun (t, k, a, b) ->
      if k = Timeline.k_chunk_start then start := Some (t, a, b)
      else if k = Timeline.k_chunk_stop then begin
        let ts, lo, hi = Option.value ~default:(t, 0, 0) !start in
        push
          (Json.Obj
             [
               ("name", Json.String (Printf.sprintf "%s chunk %d" region r.Timeline.lane));
               ("cat", Json.String "fsam.par");
               ("ph", Json.String "X");
               ("ts", Json.Float (float_of_int (ts + shift_us)));
               ("dur", Json.Float (float_of_int (max 0 (t - ts))));
               ("pid", Json.Int 1);
               ("tid", Json.Int tid);
               ( "args",
                 Json.Obj
                   [
                     ("lo", Json.Int lo);
                     ("hi", Json.Int hi);
                     ("items", Json.Int a);
                     ("contention", Json.Int b);
                     ("dropped", Json.Int (Timeline.dropped r));
                   ] );
             ])
      end
      else if k = Timeline.k_item then begin
        incr items_done;
        counter ~ts:t
          (Printf.sprintf "%s items (domain %d)" region r.Timeline.lane)
          !items_done
      end
      else if k = Timeline.k_contention then
        counter ~ts:t
          (Printf.sprintf "intern contention (domain %d)" r.Timeline.lane)
          a
      else if k = Timeline.k_merge then
        instant ~ts:t
          (Printf.sprintf "%s merge" region)
          [ ("lane", Json.Int a); ("wall_us", Json.Int b) ]
      else if k = Timeline.k_absorb then
        instant ~ts:t
          (Printf.sprintf "%s absorb" region)
          [ ("chunk", Json.Int a); ("units", Json.Int b) ])
    (Timeline.events r);
  List.rev !events

let to_json ?(timelines = []) forest =
  let t0_spans =
    List.fold_left (fun acc sp -> Float.min acc sp.Span.start_s) Float.infinity forest
  in
  (* With timelines, the Timeline epoch (armed at Driver entry, before any
     span opens) is the natural origin; without, keep the legacy
     earliest-span origin so plain span traces are unchanged. *)
  let t0 =
    if timelines = [] then t0_spans else Float.min (Timeline.epoch ()) t0_spans
  in
  let shift_us =
    if timelines = [] then 0
    else int_of_float ((Timeline.epoch () -. t0) *. 1e6)
  in
  let lanes =
    List.sort_uniq compare (List.map (fun r -> r.Timeline.lane) timelines)
  in
  let meta =
    if timelines = [] then []
    else
      metadata ~name:"process_name" ~tid:1 [ ("name", Json.String "fsam") ]
      :: List.map
           (fun l ->
             metadata ~name:"thread_name" ~tid:(l + 1)
               [
                 ( "name",
                   Json.String
                     (if l = 0 then "domain 0 (main)"
                      else Printf.sprintf "domain %d" l) );
               ])
           lanes
  in
  let events =
    meta
    @ span_events ~t0 forest
    @ List.concat_map (ring_events ~shift_us) timelines
  in
  Json.Obj
    [
      ("traceEvents", Json.List events);
      ("displayTimeUnit", Json.String "ms");
    ]

let write ?timelines path forest =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> Json.to_channel ~minify:true oc (to_json ?timelines forest))

(* Crash flush: once armed, process exit (normal return, uncaught exception,
   [exit]) writes whatever spans exist — including still-open ones via
   [Span.snapshot] — unless the normal export path disarmed it first. *)
let pending : string option ref = ref None
let registered = ref false

let flush_now () =
  match !pending with
  | None -> ()
  | Some path ->
    pending := None;
    (try write ~timelines:(Timeline.collected ()) path (Span.snapshot ())
     with Sys_error _ -> ())

let flush_at_exit path =
  pending := Some path;
  if not !registered then begin
    registered := true;
    at_exit flush_now
  end

let mark_flushed () = pending := None
let armed () = Option.is_some !pending
