(** Deep-profiling state and derived views.

    Owns the sparse solver's convergence curve (periodic samples of
    worklist depth, facts-per-interval, union-memo hit rate and the current
    SCC) plus its stall warnings, and derives two report views: span
    hotspots by {e exclusive} time and per-lane utilization of the parallel
    regions recorded in {!Timeline}. Enabled via {!set_enabled} (the same
    switch as {!Timeline}); [Driver.run] resets and arms it from
    [config.profile], so profiling changes no analysis results — it only
    observes. Main-domain only, like the rest of the observability layer. *)

type sample = {
  s_prop : int;  (** solver propagations at sample time *)
  s_depth : int;  (** worklist/heap depth *)
  s_facts : int;  (** cumulative points-to facts added *)
  s_facts_delta : int;  (** facts added since the previous sample *)
  s_memo_hits : int;  (** Iset union-memo hits in the interval *)
  s_memo_misses : int;
  s_rank : int;  (** SCC topological rank of the last-processed unit *)
  s_scc_size : int;
}

type stall = {
  st_prop : int;
  st_samples : int;  (** consecutive zero-progress samples *)
  st_rank : int;  (** the stuck SCC's topological rank *)
  st_scc_size : int;
}

val set_enabled : bool -> unit
val enabled : unit -> bool

val reset : unit -> unit
(** Clear samples, stalls and the {!Timeline} collection; restart the
    timeline epoch. *)

val add_sample : sample -> unit
val add_stall : stall -> unit
val set_sample_interval : int -> unit
val sample_interval : unit -> int
val samples : unit -> sample list
val stalls : unit -> stall list

(** {1 Span hotspots} *)

type hotspot = {
  hs_name : string;
  hs_count : int;
  hs_wall_s : float;  (** inclusive *)
  hs_self_wall_s : float;  (** exclusive: minus direct children *)
  hs_cpu_s : float;
  hs_self_cpu_s : float;
}

val hotspots : Span.t list -> hotspot list
(** Aggregated by name over the forest, sorted by self wall time
    descending (name ascending on ties). *)

(** {1 Parallel-region utilization} *)

type lane_stat = {
  ls_lane : int;
  ls_start_us : int;
  ls_stop_us : int;
  ls_busy_us : int;
  ls_lo : int;
  ls_hi : int;
  ls_items : int;
  ls_events : int;
  ls_dropped : int;
  ls_contention : int;
}

type region_stat = {
  rs_region : string;
  rs_wall_us : int;
  rs_lanes : lane_stat list;  (** sorted by lane *)
}

val regions : unit -> region_stat list
(** One entry per region with collected rings, in absorption order. *)

val utilization_pct : region_stat -> int
(** [100 * sum busy / (wall * lanes)]; 100 for empty/trivial regions. *)

val dominant_lane : region_stat -> lane_stat option
(** The lane with the largest busy time — imbalance attribution. *)

(** {1 JSON} *)

val schema : string
val to_json : unit -> Json.t
(** The profile document: convergence curve + stalls, region/lane stats,
    and the raw timelines. *)
