type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ----------------------------------------------------------------------- *)
(* Emitter.                                                                 *)
(* ----------------------------------------------------------------------- *)

let add_escaped buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* %.17g is lossless for doubles; a bare integer mantissa is still valid
   JSON, so no decimal point needs to be forced. *)
let add_float buf f =
  match Float.classify_float f with
  | Float.FP_nan | Float.FP_infinite -> Buffer.add_string buf "null"
  | _ ->
    let s = Printf.sprintf "%.17g" f in
    let short = Printf.sprintf "%.12g" f in
    Buffer.add_string buf (if float_of_string short = f then short else s)

let to_string ?(minify = false) j =
  let buf = Buffer.create 1024 in
  let nl indent =
    if not minify then begin
      Buffer.add_char buf '\n';
      Buffer.add_string buf (String.make indent ' ')
    end
  in
  let rec go indent = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f -> add_float buf f
    | String s -> add_escaped buf s
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          nl (indent + 2);
          go (indent + 2) item)
        items;
      nl indent;
      Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          nl (indent + 2);
          add_escaped buf k;
          Buffer.add_string buf (if minify then ":" else ": ");
          go (indent + 2) v)
        fields;
      nl indent;
      Buffer.add_char buf '}'
  in
  go 0 j;
  Buffer.contents buf

let to_channel ?minify oc j =
  output_string oc (to_string ?minify j);
  output_char oc '\n'

(* ----------------------------------------------------------------------- *)
(* Parser.                                                                  *)
(* ----------------------------------------------------------------------- *)

exception Fail of int * string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Fail (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      advance ()
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then advance ()
    else fail (Printf.sprintf "expected %C" c)
  in
  let literal lit v =
    let l = String.length lit in
    if !pos + l <= n && String.sub s !pos l = lit then begin
      pos := !pos + l;
      v
    end
    else fail (Printf.sprintf "expected %s" lit)
  in
  (* Encode a BMP code point as UTF-8 (surrogate pairs are not combined —
     enough for the ASCII-plus-escapes output we emit ourselves). *)
  let add_utf8 buf cp =
    if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xc0 lor (cp lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xe0 lor (cp lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3f)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f)))
    end
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      let c = s.[!pos] in
      advance ();
      if c = '"' then Buffer.contents buf
      else if c = '\\' then begin
        (if !pos >= n then fail "unterminated escape";
         let e = s.[!pos] in
         advance ();
         match e with
         | '"' -> Buffer.add_char buf '"'
         | '\\' -> Buffer.add_char buf '\\'
         | '/' -> Buffer.add_char buf '/'
         | 'n' -> Buffer.add_char buf '\n'
         | 't' -> Buffer.add_char buf '\t'
         | 'r' -> Buffer.add_char buf '\r'
         | 'b' -> Buffer.add_char buf '\b'
         | 'f' -> Buffer.add_char buf '\012'
         | 'u' ->
           if !pos + 4 > n then fail "truncated \\u escape";
           let hex = String.sub s !pos 4 in
           pos := !pos + 4;
           let cp =
             try int_of_string ("0x" ^ hex) with _ -> fail "bad \\u escape"
           in
           add_utf8 buf cp
         | _ -> fail "unknown escape");
        go ()
      end
      else begin
        Buffer.add_char buf c;
        go ()
      end
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    if String.contains tok '.' || String.contains tok 'e' || String.contains tok 'E'
    then
      match float_of_string_opt tok with
      | Some f -> Float f
      | None -> fail "bad number"
    else
      match int_of_string_opt tok with
      | Some i -> Int i
      | None -> (
        match float_of_string_opt tok with
        | Some f -> Float f
        | None -> fail "bad number")
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> String (parse_string ())
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let fields = ref [] in
        let rec members () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          fields := (k, v) :: !fields;
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ()
          | Some '}' -> advance ()
          | _ -> fail "expected ',' or '}'"
        in
        members ();
        Obj (List.rev !fields)
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let items = ref [] in
        let rec elements () =
          let v = parse_value () in
          items := v :: !items;
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            elements ()
          | Some ']' -> advance ()
          | _ -> fail "expected ',' or ']'"
        in
        elements ();
        List (List.rev !items)
      end
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Fail (at, msg) -> Error (Printf.sprintf "at offset %d: %s" at msg)

let member k = function
  | Obj fields -> List.assoc_opt k fields
  | _ -> None

let rec equal a b =
  match (a, b) with
  | Null, Null -> true
  | Bool x, Bool y -> x = y
  | Int x, Int y -> x = y
  | Float x, Float y -> x = y
  | String x, String y -> String.equal x y
  | List x, List y -> ( try List.for_all2 equal x y with Invalid_argument _ -> false)
  | Obj x, Obj y -> (
    try List.for_all2 (fun (k, v) (k', v') -> String.equal k k' && equal v v') x y
    with Invalid_argument _ -> false)
  | _ -> false
