external now_ns : unit -> int = "fsam_monotonic_now_ns" [@@noalloc]

let now_us () = now_ns () / 1000
let now_s () = float_of_int (now_ns ()) *. 1e-9
let elapsed_us ~since_us = max 0 (now_us () - since_us)
let elapsed_s ~since_s = Float.max 0. (now_s () -. since_s)
