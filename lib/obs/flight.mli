(** Flight recorder: fixed-size ring over the last N request summaries.

    Single-writer (the daemon's protocol thread); [note] fills the slot
    before bumping the logical count, so same-thread readers (the [dump]
    op, the crash flush, a SIGUSR1 handler) never observe a torn entry.
    Overwrites the oldest entry once full — [dropped] says how many fell
    off the tail. *)

type t

type entry = {
  f_seq : int;          (** request id *)
  f_t_us : int;         (** monotonic completion timestamp, microseconds *)
  f_op : string;
  f_us : int;           (** wall latency, microseconds *)
  f_cpu_us : int;       (** cpu latency, microseconds *)
  f_ok : bool;
  f_err : string option;  (** error code when [not f_ok] *)
  f_gen : int;          (** engine generation that answered *)
  f_dirty : int;        (** changed functions for edits; [-1] when n/a *)
  f_bytes_in : int;
  f_bytes_out : int;
}

val create : ?cap:int -> unit -> t
(** Default capacity 256 entries. Raises [Invalid_argument] on [cap <= 0]. *)

val note :
  t ->
  seq:int ->
  op:string ->
  us:int ->
  cpu_us:int ->
  ok:bool ->
  ?err:string ->
  gen:int ->
  dirty:int ->
  bytes_in:int ->
  bytes_out:int ->
  unit ->
  unit

val cap : t -> int
val recorded : t -> int
(** Entries ever recorded (not capped). *)

val dropped : t -> int
(** [max 0 (recorded - cap)]: how many entries the ring has overwritten. *)

val entries : t -> entry list
(** The live window, oldest first. *)

val entry_json : entry -> Json.t
val to_json : t -> Json.t
(** [{"cap", "recorded", "dropped", "entries": [...]}], entries oldest
    first. *)

val set_current : t option -> unit
(** Publish the daemon's recorder for the crash-flush path
    ([Telemetry.flush_now] includes the tail of the current recorder). *)

val current : unit -> t option
