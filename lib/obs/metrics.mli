(** Process-global metrics registry: named monotonic counters, gauges and
    power-of-two histograms.

    Handles are found-or-created by name, so hot loops pay a single table
    lookup up front and a field mutation per event. [Driver.run] calls
    [reset] at entry; handles created {e before} a reset keep working but
    are no longer exported, so producers should (re-)acquire their handles
    at the start of each run — which the pipeline does naturally by
    creating them inside the solver entry points. *)

type counter
type gauge
type histogram

val counter : string -> counter
(** Find-or-create. Raises [Invalid_argument] if the name is registered as
    a different metric kind. *)

val incr : counter -> unit
val add : counter -> int -> unit
(** [add] with a negative delta raises [Invalid_argument]: counters are
    monotonic by contract. *)

val counter_value : counter -> int

val gauge : string -> gauge
val set : gauge -> int -> unit
val set_max : gauge -> int -> unit
(** [set_max g v] = [set g (max v (current value))] — peak tracking. *)

val gauge_value : gauge -> int

val histogram : string -> histogram
val observe : histogram -> int -> unit
(** Buckets are powers of two: bucket [0] counts values [<= 0], bucket [2^k]
    counts values in [(2^(k-1), 2^k]]. *)

val quantile : histogram -> float -> int
(** [quantile h q] for [q] in [\[0, 1\]]: the upper bound of the first
    bucket whose cumulative count reaches [q * count] — an upper-bound
    estimate within the bucket resolution (2x). 0 on an empty histogram. *)

val reset : unit -> unit
(** Empty the registry. *)

val remove_matching : (string -> bool) -> unit
(** Remove every metric whose name satisfies the predicate. Handles already
    held for a removed name keep working but are no longer exported — the
    same contract as {!reset}. Meant for re-recorded families (e.g. the
    per-domain [par.<region>.domain<i>.*] gauges, which would otherwise go
    stale when a later run of the region uses fewer lanes). *)

val find_counter : string -> int option
val find_gauge : string -> int option

val to_json : unit -> Json.t
(** [{ "counters": {..}, "gauges": {..}, "histograms": {name: { "count",
    "sum", "p50", "p95", "p99", "buckets": [{"le", "count"}, ...] }} }],
    names sorted; the pNN fields are {!quantile} summaries. *)
