(** Metrics registries: named monotonic counters, gauges and power-of-two
    histograms.

    Handles are found-or-created by name, so hot loops pay a single table
    lookup up front and a field mutation per event. All operations default
    to the process-global registry; [Driver.run] calls [reset] on it at
    entry, so handles created {e before} a reset keep working but are no
    longer exported — producers should (re-)acquire their handles at the
    start of each run, which the pipeline does naturally by creating them
    inside the solver entry points. Long-lived components that must survive
    pipeline resets (the serve daemon) allocate their own registry with
    {!create_registry} and pass it via [?reg]. *)

type counter
type gauge
type histogram

type registry
(** A named-metric table. Not synchronized: each registry has a single
    owning writer (the global one belongs to the pipeline driver). *)

val create_registry : unit -> registry
(** A fresh registry, independent of the global one — never reset by
    [Driver.run]. *)

val global : registry
(** The process-global default registry every [?reg] falls back to. *)

val counter : ?reg:registry -> string -> counter
(** Find-or-create. Raises [Invalid_argument] if the name is registered as
    a different metric kind. *)

val incr : counter -> unit
val add : counter -> int -> unit
(** [add] with a negative delta raises [Invalid_argument]: counters are
    monotonic by contract. *)

val counter_value : counter -> int

val gauge : ?reg:registry -> string -> gauge
val set : gauge -> int -> unit
val set_max : gauge -> int -> unit
(** [set_max g v] = [set g (max v (current value))] — peak tracking. *)

val gauge_value : gauge -> int

val histogram : ?reg:registry -> string -> histogram
val observe : histogram -> int -> unit
(** Buckets are powers of two: bucket [0] counts values [<= 0], bucket [2^k]
    counts values in [(2^(k-1), 2^k]]. *)

val histogram_count : histogram -> int
val histogram_sum : histogram -> int

val quantile : histogram -> float -> int
(** [quantile h q] for [q] in [\[0, 1\]]: the upper bound of the first
    bucket whose cumulative count reaches [q * count] — an upper-bound
    estimate within the bucket resolution (2x). 0 on an empty histogram. *)

val reset : ?reg:registry -> unit -> unit
(** Empty the registry. *)

val remove_matching : ?reg:registry -> (string -> bool) -> unit
(** Remove every metric whose name satisfies the predicate. Handles already
    held for a removed name keep working but are no longer exported — the
    same contract as {!reset}. Meant for re-recorded families (e.g. the
    per-domain [par.<region>.domain<i>.*] gauges, which would otherwise go
    stale when a later run of the region uses fewer lanes). *)

val find_counter : ?reg:registry -> string -> int option
val find_gauge : ?reg:registry -> string -> int option
val find_histogram : ?reg:registry -> string -> histogram option

val to_json : ?reg:registry -> unit -> Json.t
(** [{ "counters": {..}, "gauges": {..}, "histograms": {name: { "count",
    "sum", "p50", "p95", "p99", "buckets": [{"le", "count"}, ...] }} }],
    names sorted; the pNN fields are {!quantile} summaries. *)

val to_prometheus : ?regs:registry list -> unit -> string
(** Prometheus text exposition (format 0.0.4): a [# TYPE] line per metric,
    names sanitized to [[a-zA-Z0-9_:]] (dots and dashes become
    underscores), histograms as cumulative [_bucket{le="..."}] series over
    the occupied power-of-two bounds plus [le="+Inf"], [_sum] and
    [_count]. With multiple registries the first occurrence of a sanitized
    name wins. *)
