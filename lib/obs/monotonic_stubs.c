/* Monotonic clock for span/chunk timing.

   Unix.gettimeofday is wall-clock time: an NTP step (or a manual clock
   change) between two reads yields a negative duration, which corrupted
   imbalance_pct and produced Perfetto lanes that travel backwards.
   CLOCK_MONOTONIC never steps; nanoseconds since boot fit comfortably in
   OCaml's 63-bit int (2^62 ns is ~146 years), so the reading is returned
   as an immediate — no allocation, [@@noalloc] on the OCaml side. */

#include <caml/mlvalues.h>
#include <time.h>

CAMLprim value fsam_monotonic_now_ns(value unit)
{
  (void)unit;
  struct timespec ts;
#ifdef CLOCK_MONOTONIC
  if (clock_gettime(CLOCK_MONOTONIC, &ts) != 0)
#endif
  {
    /* CLOCK_REALTIME is required by POSIX; used only if monotonic fails. */
    clock_gettime(CLOCK_REALTIME, &ts);
  }
  return Val_long((intnat)ts.tv_sec * 1000000000 + (intnat)ts.tv_nsec);
}
