(* Flight recorder: a fixed-size ring journaling the last N request
   summaries of the serve daemon. Same single-writer flat-int discipline as
   [Timeline]: [note] writes all slot fields before bumping [n], so a
   reader on the writer's thread (the dump op, the crash flush, a SIGUSR1
   handler — all run at safepoints of the protocol thread) never sees a
   torn entry. Strings (op names, error codes) are interned into a
   side table so the ring itself stays unboxed. *)

type entry = {
  f_seq : int;
  f_t_us : int;  (* monotonic timestamp, us *)
  f_op : string;
  f_us : int;
  f_cpu_us : int;
  f_ok : bool;
  f_err : string option;
  f_gen : int;
  f_dirty : int;  (* changed functions for edits; -1 when n/a *)
  f_bytes_in : int;
  f_bytes_out : int;
}

let width = 11

type t = {
  cap : int;
  buf : int array;
  mutable n : int;  (* entries ever recorded *)
  mutable strings : string array;
  mutable n_strings : int;
  intern : (string, int) Hashtbl.t;
}

let create ?(cap = 256) () =
  if cap <= 0 then invalid_arg "Flight.create: cap must be positive";
  {
    cap;
    buf = Array.make (cap * width) 0;
    n = 0;
    strings = Array.make 16 "";
    n_strings = 0;
    intern = Hashtbl.create 16;
  }

let intern t s =
  match Hashtbl.find_opt t.intern s with
  | Some i -> i
  | None ->
    if t.n_strings = Array.length t.strings then begin
      let bigger = Array.make (2 * t.n_strings) "" in
      Array.blit t.strings 0 bigger 0 t.n_strings;
      t.strings <- bigger
    end;
    let i = t.n_strings in
    t.strings.(i) <- s;
    t.n_strings <- i + 1;
    Hashtbl.replace t.intern s i;
    i

let note t ~seq ~op ~us ~cpu_us ~ok ?err ~gen ~dirty ~bytes_in ~bytes_out () =
  let op_i = intern t op in
  let err_i = match err with None -> -1 | Some e -> intern t e in
  let base = width * (t.n mod t.cap) in
  t.buf.(base) <- seq;
  t.buf.(base + 1) <- Monotonic.now_us ();
  t.buf.(base + 2) <- op_i;
  t.buf.(base + 3) <- us;
  t.buf.(base + 4) <- cpu_us;
  t.buf.(base + 5) <- (if ok then 1 else 0);
  t.buf.(base + 6) <- err_i;
  t.buf.(base + 7) <- gen;
  t.buf.(base + 8) <- dirty;
  t.buf.(base + 9) <- bytes_in;
  t.buf.(base + 10) <- bytes_out;
  t.n <- t.n + 1

let cap t = t.cap
let recorded t = t.n
let dropped t = max 0 (t.n - t.cap)

let entry_at t base =
  {
    f_seq = t.buf.(base);
    f_t_us = t.buf.(base + 1);
    f_op = t.strings.(t.buf.(base + 2));
    f_us = t.buf.(base + 3);
    f_cpu_us = t.buf.(base + 4);
    f_ok = t.buf.(base + 5) = 1;
    f_err = (let i = t.buf.(base + 6) in if i < 0 then None else Some t.strings.(i));
    f_gen = t.buf.(base + 7);
    f_dirty = t.buf.(base + 8);
    f_bytes_in = t.buf.(base + 9);
    f_bytes_out = t.buf.(base + 10);
  }

(* Oldest-first, like [Timeline.events]. *)
let entries t =
  let live = min t.n t.cap in
  let first = if t.n > t.cap then t.n mod t.cap else 0 in
  List.init live (fun i -> entry_at t (width * ((first + i) mod t.cap)))

let entry_json e =
  Json.Obj
    ([
       ("seq", Json.Int e.f_seq);
       ("t_us", Json.Int e.f_t_us);
       ("op", Json.String e.f_op);
       ("us", Json.Int e.f_us);
       ("cpu_us", Json.Int e.f_cpu_us);
       ("ok", Json.Bool e.f_ok);
     ]
    @ (match e.f_err with Some c -> [ ("error", Json.String c) ] | None -> [])
    @ [ ("gen", Json.Int e.f_gen) ]
    @ (if e.f_dirty >= 0 then [ ("dirty_fns", Json.Int e.f_dirty) ] else [])
    @ [ ("bytes_in", Json.Int e.f_bytes_in); ("bytes_out", Json.Int e.f_bytes_out) ])

let to_json t =
  Json.Obj
    [
      ("cap", Json.Int t.cap);
      ("recorded", Json.Int t.n);
      ("dropped", Json.Int (dropped t));
      ("entries", Json.List (List.map entry_json (entries t)));
    ]

(* The process-wide recorder the crash-flush path reaches for: a crashing
   daemon's [Telemetry.flush_now] must be able to dump the tail without a
   handle threaded through every layer. *)
let current_ref : t option ref = ref None
let set_current r = current_ref := r
let current () = !current_ref
