(** Minimal JSON tree, emitter and parser — hand-rolled so the telemetry
    layer adds no external dependencies. The emitter always produces valid
    JSON (non-finite floats become [null]); the parser accepts the subset
    the emitter produces plus standard escapes, and exists mainly so tests
    and downstream tools can round-trip our own output. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : ?minify:bool -> t -> string
(** Pretty-printed with two-space indentation unless [minify] is set. *)

val to_channel : ?minify:bool -> out_channel -> t -> unit
(** [to_string] plus a trailing newline. *)

val of_string : string -> (t, string) result
(** Recursive-descent parser; [Error msg] carries the offset of failure. *)

val member : string -> t -> t option
(** Field lookup on [Obj]; [None] on other constructors. *)

val equal : t -> t -> bool
(** Structural equality ([Int 1] and [Float 1.] are distinct). *)
