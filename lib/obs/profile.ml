(* Deep-profiling state: the sparse solver's convergence curve, stall
   warnings, and derived views (span hotspots, per-lane utilization of the
   parallel regions). All recording happens on the main domain — worker
   domains only ever write their own Timeline ring. *)

type sample = {
  s_prop : int; (* solver propagations at sample time *)
  s_depth : int; (* worklist/heap depth *)
  s_facts : int; (* cumulative points-to facts added *)
  s_facts_delta : int; (* facts added since the previous sample *)
  s_memo_hits : int; (* Iset union-memo hits in the interval *)
  s_memo_misses : int;
  s_rank : int; (* SCC topological rank of the last-processed unit *)
  s_scc_size : int; (* size of that unit's SCC *)
}

type stall = {
  st_prop : int; (* propagation count when the stall was flagged *)
  st_samples : int; (* consecutive zero-progress samples *)
  st_rank : int; (* the stuck SCC's topological rank *)
  st_scc_size : int;
}

let set_enabled = Timeline.set_enabled
let enabled = Timeline.enabled

let samples_rev : sample list ref = ref []
let stalls_rev : stall list ref = ref []
let sample_interval_ref = ref 0

let add_sample s = samples_rev := s :: !samples_rev
let add_stall st = stalls_rev := st :: !stalls_rev
let set_sample_interval n = sample_interval_ref := n
let sample_interval () = !sample_interval_ref
let samples () = List.rev !samples_rev
let stalls () = List.rev !stalls_rev

let reset () =
  samples_rev := [];
  stalls_rev := [];
  sample_interval_ref := 0;
  Timeline.reset ()

(* -- span hotspots --------------------------------------------------------- *)

(* Self time = a span's duration minus its direct children's: the report's
   unit of attribution, aggregated over every span with the same name. *)
type hotspot = {
  hs_name : string;
  hs_count : int;
  hs_wall_s : float; (* inclusive *)
  hs_self_wall_s : float; (* exclusive *)
  hs_cpu_s : float;
  hs_self_cpu_s : float;
}

let hotspots forest =
  let tbl : (string, hotspot) Hashtbl.t = Hashtbl.create 32 in
  let rec go (sp : Span.t) =
    let child_wall =
      List.fold_left (fun acc c -> acc +. c.Span.dur_s) 0. sp.Span.children
    in
    let child_cpu =
      List.fold_left (fun acc c -> acc +. c.Span.cpu_s) 0. sp.Span.children
    in
    let self_wall = Float.max 0. (sp.Span.dur_s -. child_wall) in
    let self_cpu = Float.max 0. (sp.Span.cpu_s -. child_cpu) in
    let cur =
      Option.value
        ~default:
          {
            hs_name = sp.Span.name;
            hs_count = 0;
            hs_wall_s = 0.;
            hs_self_wall_s = 0.;
            hs_cpu_s = 0.;
            hs_self_cpu_s = 0.;
          }
        (Hashtbl.find_opt tbl sp.Span.name)
    in
    Hashtbl.replace tbl sp.Span.name
      {
        cur with
        hs_count = cur.hs_count + 1;
        hs_wall_s = cur.hs_wall_s +. sp.Span.dur_s;
        hs_self_wall_s = cur.hs_self_wall_s +. self_wall;
        hs_cpu_s = cur.hs_cpu_s +. sp.Span.cpu_s;
        hs_self_cpu_s = cur.hs_self_cpu_s +. self_cpu;
      };
    List.iter go sp.Span.children
  in
  List.iter go forest;
  Hashtbl.fold (fun _ h acc -> h :: acc) tbl []
  |> List.sort (fun a b ->
         match compare b.hs_self_wall_s a.hs_self_wall_s with
         | 0 -> compare a.hs_name b.hs_name
         | c -> c)

(* -- per-region lane utilization ------------------------------------------ *)

type lane_stat = {
  ls_lane : int;
  ls_start_us : int;
  ls_stop_us : int;
  ls_busy_us : int;
  ls_lo : int;
  ls_hi : int; (* item key range of the chunk *)
  ls_items : int;
  ls_events : int;
  ls_dropped : int;
  ls_contention : int;
}

type region_stat = {
  rs_region : string;
  rs_wall_us : int; (* last chunk_stop minus first chunk_start *)
  rs_lanes : lane_stat list;
}

(* A lane may execute several blocks under the adaptive scheduler, so it
   records one chunk_start/stop pair per block: the lane's item range is
   the envelope of the block ranges, items and contention are summed over
   the stops, and the busy window runs from the first start to the last
   stop. Single-chunk rings (the chunked path) degenerate to the same
   values as before. *)
let lane_stat_of_ring (r : Timeline.ring) =
  let start_us = ref max_int
  and stop_us = ref min_int
  and lo = ref max_int
  and hi = ref 0
  and items = ref 0
  and contention = ref 0 in
  List.iter
    (fun (t, k, a, b) ->
      if k = Timeline.k_chunk_start then begin
        if t < !start_us then start_us := t;
        if a < !lo then lo := a;
        if b > !hi then hi := b
      end
      else if k = Timeline.k_chunk_stop then begin
        if t > !stop_us then stop_us := t;
        items := !items + a;
        contention := !contention + b
      end)
    (Timeline.events r);
  let lo = if !lo = max_int then ref 0 else lo in
  let start_us = if !start_us = max_int then 0 else !start_us in
  let stop_us = if !stop_us = min_int then start_us else !stop_us in
  {
    ls_lane = r.Timeline.lane;
    ls_start_us = start_us;
    ls_stop_us = stop_us;
    ls_busy_us = max 0 (stop_us - start_us);
    ls_lo = !lo;
    ls_hi = !hi;
    ls_items = !items;
    ls_events = Timeline.n_recorded r;
    ls_dropped = Timeline.dropped r;
    ls_contention = !contention;
  }

let regions () =
  let by_region : (string, lane_stat list) Hashtbl.t = Hashtbl.create 8 in
  let order = ref [] in
  List.iter
    (fun (r : Timeline.ring) ->
      let ls = lane_stat_of_ring r in
      match Hashtbl.find_opt by_region r.Timeline.region with
      | Some l -> Hashtbl.replace by_region r.Timeline.region (ls :: l)
      | None ->
        order := r.Timeline.region :: !order;
        Hashtbl.replace by_region r.Timeline.region [ ls ])
    (Timeline.collected ());
  List.rev_map
    (fun region ->
      let lanes =
        List.sort (fun a b -> compare a.ls_lane b.ls_lane)
          (Hashtbl.find by_region region)
      in
      let first_start =
        List.fold_left (fun acc l -> min acc l.ls_start_us) max_int lanes
      in
      let last_stop = List.fold_left (fun acc l -> max acc l.ls_stop_us) 0 lanes in
      {
        rs_region = region;
        rs_wall_us = (if first_start = max_int then 0 else max 0 (last_stop - first_start));
        rs_lanes = lanes;
      })
    !order

let utilization_pct rs =
  match rs.rs_lanes with
  | [] -> 100
  | lanes ->
    let busy = List.fold_left (fun acc l -> acc + l.ls_busy_us) 0 lanes in
    let span = rs.rs_wall_us * List.length lanes in
    if span <= 0 then 100 else 100 * busy / span

let dominant_lane rs =
  match rs.rs_lanes with
  | [] -> None
  | l :: rest ->
    Some (List.fold_left (fun acc x -> if x.ls_busy_us > acc.ls_busy_us then x else acc) l rest)

(* -- JSON ------------------------------------------------------------------ *)

let schema = "fsam.profile/1"

let sample_json s =
  Json.Obj
    [
      ("prop", Json.Int s.s_prop);
      ("depth", Json.Int s.s_depth);
      ("facts", Json.Int s.s_facts);
      ("facts_delta", Json.Int s.s_facts_delta);
      ("memo_hits", Json.Int s.s_memo_hits);
      ("memo_misses", Json.Int s.s_memo_misses);
      ("rank", Json.Int s.s_rank);
      ("scc_size", Json.Int s.s_scc_size);
    ]

let stall_json st =
  Json.Obj
    [
      ("prop", Json.Int st.st_prop);
      ("samples", Json.Int st.st_samples);
      ("rank", Json.Int st.st_rank);
      ("scc_size", Json.Int st.st_scc_size);
    ]

let lane_json l =
  Json.Obj
    [
      ("lane", Json.Int l.ls_lane);
      ("start_us", Json.Int l.ls_start_us);
      ("stop_us", Json.Int l.ls_stop_us);
      ("busy_us", Json.Int l.ls_busy_us);
      ("lo", Json.Int l.ls_lo);
      ("hi", Json.Int l.ls_hi);
      ("items", Json.Int l.ls_items);
      ("events", Json.Int l.ls_events);
      ("dropped", Json.Int l.ls_dropped);
      ("contention", Json.Int l.ls_contention);
    ]

let region_json rs =
  Json.Obj
    [
      ("region", Json.String rs.rs_region);
      ("wall_us", Json.Int rs.rs_wall_us);
      ("utilization_pct", Json.Int (utilization_pct rs));
      ("lanes", Json.List (List.map lane_json rs.rs_lanes));
    ]

let to_json () =
  Json.Obj
    [
      ("schema", Json.String schema);
      ( "convergence",
        Json.Obj
          [
            ("sample_interval", Json.Int !sample_interval_ref);
            ("samples", Json.List (List.map sample_json (samples ())));
            ("stalls", Json.List (List.map stall_json (stalls ())));
          ] );
      ("regions", Json.List (List.map region_json (regions ())));
      ("timelines", Timeline.to_json ());
    ]
