(** Monotonic clock reads for durations and timeline timestamps.

    [Unix.gettimeofday] is subject to NTP steps; a step between two reads
    yields a negative duration that corrupts imbalance percentages and
    profiler lanes. These readings come from [clock_gettime(CLOCK_MONOTONIC)]
    and never go backwards; the elapsed helpers additionally clamp at 0 as
    defence in depth (e.g. against a non-monotonic fallback clock). Use the
    monotonic clock for every duration; keep [Unix.gettimeofday] only for
    absolute wall-clock instants (trace epochs, report headers). *)

val now_ns : unit -> int
(** Nanoseconds on the monotonic clock. The origin is unspecified (typically
    boot time) — only differences are meaningful. *)

val now_us : unit -> int
(** [now_ns () / 1000]. *)

val now_s : unit -> float
(** Monotonic seconds as a float — for duration arithmetic in seconds. *)

val elapsed_us : since_us:int -> int
(** [max 0 (now_us () - since_us)]. *)

val elapsed_s : since_s:float -> float
(** [Float.max 0. (now_s () -. since_s)]. *)
