(** Parameterized MiniC program synthesizer for paper-scale workloads.

    Where {!Rand_minic} draws a small random program per seed (good for
    property tests) and {!Minic_suite} renders three fixed skeletons, this
    module grows structured programs to arbitrary size: [modules]
    independent call chains of [chain_depth] functions, each function
    carrying [stmts_per_fn] statements of mostly module-local pointer
    traffic with window-limited global footprints, periodic accesses to a
    small set of cross-module {e bridge} globals (a tunable fraction under
    a shared lock — the rest are the rateable races), and a fork/join
    harness that runs the first [threads] chains concurrently (one of them
    multi-forked in a loop) while [main] walks the remaining chains
    serially so every statement stays reachable.

    The disjoint per-module global spaces keep points-to sets and per-object
    access degrees bounded as the program grows, so analysis cost scales
    roughly linearly with [KLOC] — which is what makes the 100+ KLOC tier
    feasible while still giving the parallel pair-discovery phases real
    work (the bridge objects have program-wide fan-in).

    Output is deterministic in [params] (including [seed]). *)

type params = {
  seed : int;
  modules : int;  (** independent call chains with disjoint global spaces *)
  chain_depth : int;  (** functions per chain, each calling the next *)
  stmts_per_fn : int;  (** statement lines per function body *)
  globals_per_module : int;  (** size of a module's private global space *)
  threads : int;
      (** forked workers; worker [t] runs chain [t mod modules], chains
          beyond [threads] run serially from [main] *)
  bridge_every : int;  (** one bridge-global access per this many statements *)
  locked_pct : int;  (** percentage of bridge accesses under the bridge lock *)
}

val quick : params  (** a few KLOC — unit tests and the small bench tier *)

val large : params  (** 100+ KLOC — the paper-scale bench tier *)

val generate : params -> string
(** Render the program text. Deterministic. *)

val line_count : string -> int
(** Number of newline-terminated lines — the KLOC measure used in docs. *)
