(** Thread-scaled [THREAD-VF] stress programs for [bench vf]: [threads]
    workers run in fork/join rounds of four, each round reaching its own
    shared-sweeping kernel through two call chains. Kernel statements of
    different rounds access common objects but are never parallel (the
    rounds are totally ordered by joins), so the value-flow phase issues
    many full instance-product queries whose answer is "no" — the worst
    case for the naive scans and the best case for the summary index. *)

val build : threads:int -> int -> Fsam_ir.Prog.t
(** [build ~threads scale] — [scale] sizes the shared-object sweep and the
    per-worker thread-local ballast. Deterministic. *)

val specs : (string * int) list
(** [(name, threads)] pairs, smallest first ([vf_t4] … [vf_t32]). *)
