type params = {
  seed : int;
  modules : int;
  chain_depth : int;
  stmts_per_fn : int;
  globals_per_module : int;
  threads : int;
  bridge_every : int;
  locked_pct : int;
}

let quick =
  {
    seed = 1;
    modules = 6;
    chain_depth = 4;
    stmts_per_fn = 40;
    globals_per_module = 6;
    threads = 4;
    bridge_every = 24;
    locked_pct = 60;
  }

let large =
  {
    seed = 1;
    modules = 40;
    chain_depth = 10;
    stmts_per_fn = 200;
    globals_per_module = 10;
    threads = 8;
    bridge_every = 40;
    locked_pct = 60;
  }

let n_bridge = 4

let line_count s =
  let n = ref 0 in
  String.iter (fun c -> if c = '\n' then incr n) s;
  !n

(* The load-bearing scaling property: module global spaces are disjoint and
   the cross-module bridge is contamination-limited, so points-to sets stay
   bounded as the program grows and analysis cost stays roughly linear.
   Bridge WRITES publish only the module's own heap handle; bridge READS
   land in a dead-end sink local that is dereferenced (so the value-flow
   phase sees real cross-module, cross-thread def-use on the heap objects)
   but never copied onward (so the bridge's program-wide points-to set
   cannot leak into module-local webs and snowball). *)
let generate p =
  let rng = Random.State.make [| p.seed; 0x5F3A; p.modules; p.chain_depth |] in
  let buf = Buffer.create (p.modules * p.chain_depth * p.stmts_per_fn * 24) in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let gpm = max 3 p.globals_per_module in
  (* ---- globals: per-module private spaces + the shared bridge ---- *)
  for m = 0 to p.modules - 1 do
    for g = 0 to gpm - 1 do
      pr "int *g%d_%d;\n" m g
    done;
    pr "int *arr%d[4];\n" m;
    pr "lock_t lk%d;\n" m
  done;
  for b = 0 to n_bridge - 1 do
    pr "int *bridge%d;\n" b
  done;
  pr "lock_t bridge_lock;\n";
  pr "thread_t tids[%d];\n" (max 1 p.threads);
  (* ---- per-module allocator: one heap object per module bounds fan-in ---- *)
  for m = 0 to p.modules - 1 do
    pr "int *mk%d() {\n  int *h;\n  h = malloc();\n  return h;\n}\n" m
  done;
  (* ---- pulse: a tiny fixed-size worker that main loop-forks. It is the
     one multi-instance thread (Definition 1) — self-parallel, so its own
     bare bridge traffic races with itself — and because it is never
     joined it stays parallel with everything after the join barrier. Its
     constant size keeps that always-parallel surface from growing with
     the program. ---- *)
  pr "int *pulse_h;\n";
  pr "void pulse(int *arg) {\n";
  pr "  int *q;\n  int *qs;\n";
  pr "  q = malloc();\n";
  pr "  pulse_h = q;\n";
  pr "  bridge0 = q;\n";
  pr "  qs = bridge1;\n";
  pr "  lock(&bridge_lock);\n  bridge2 = q;\n  unlock(&bridge_lock);\n";
  pr "}\n";
  (* ---- module chains, deepest callee first ---- *)
  let fname m d = Printf.sprintf "f%d_%d" m d in
  for m = 0 to p.modules - 1 do
    for d = p.chain_depth - 1 downto 0 do
      pr "void %s(int *arg) {\n" (fname m d);
      let n_locals = max 3 (p.stmts_per_fn / 8) in
      for l = 0 to n_locals - 1 do
        pr "  int c%d;\n  int *p%d;\n  p%d = &c%d;\n" l l l l
      done;
      pr "  int *bh;\n  int *bsink;\n  int *bdead;\n";
      pr "  bh = mk%d();\n" m;
      pr "  bsink = bh;\n";
      (* window-limited global footprint: this function only touches a
         3-wide slice of the module's global space *)
      let base = d * 3 mod gpm in
      let gv k = Printf.sprintf "g%d_%d" m ((base + k) mod gpm) in
      let pv k = Printf.sprintf "p%d" (k mod n_locals) in
      (* one bridge READ per chain head: the deref gives the value-flow
         phase cross-module def-use on the published heap handles while
         keeping each heap object's cross-thread access degree O(modules),
         not O(statements) *)
      if d = 0 then begin
        let b = Random.State.int rng n_bridge in
        pr "  bsink = bridge%d;\n" b;
        pr "  bdead = *bsink;\n"
      end;
      let stmts = ref 0 in
      let emit_one k =
        incr stmts;
        if p.bridge_every > 0 && !stmts mod p.bridge_every = 0 then begin
          (* bridge WRITE: publish the module handle; a locked_pct slice is
             properly guarded, the rest are the planted races *)
          let b = Random.State.int rng n_bridge in
          let locked = Random.State.int rng 100 < p.locked_pct in
          if locked then pr "  lock(&bridge_lock);\n";
          pr "  bridge%d = bh;\n" b;
          if locked then pr "  unlock(&bridge_lock);\n"
        end
        else
          match Random.State.int rng 16 with
          | 0 | 1 -> pr "  %s = &c%d;\n" (pv k) (k mod n_locals)
          | 2 | 3 -> pr "  %s = %s;\n" (gv k) (pv (k + 1))
          | 4 | 5 -> pr "  %s = %s;\n" (pv k) (gv (k + 1))
          | 6 -> pr "  *%s = %s;\n" (pv k) (pv (k + 1))
          | 7 -> pr "  %s = *%s;\n" (pv k) (pv (k + 1))
          | 8 -> pr "  %s = bh;\n" (pv k)
          | 9 -> pr "  arr%d[1] = %s;\n" m (pv k)
          | 10 -> pr "  %s = arr%d[0];\n" (pv k) m
          | 11 ->
            (* module-lock cluster: guarded private-global handoff *)
            pr "  lock(&lk%d);\n  %s = %s;\n  %s = %s;\n  unlock(&lk%d);\n" m (gv k)
              (pv k)
              (pv (k + 1))
              (gv (k + 1))
              m
          | 12 -> pr "  %s = arg;\n" (pv k)
          | _ -> pr "  %s = %s;\n" (pv k) (pv (k + 1))
      in
      for k = 0 to p.stmts_per_fn - 1 do
        emit_one k
      done;
      if d + 1 < p.chain_depth then
        if Random.State.bool rng then pr "  %s(%s);\n" (fname m (d + 1)) (pv 0)
        else
          (* two call sites: call-graph fan without recursion *)
          pr "  if (nondet()) {\n    %s(%s);\n  } else {\n    %s(%s);\n  }\n"
            (fname m (d + 1)) (pv 0)
            (fname m (d + 1))
            (pv 1);
      pr "}\n"
    done;
    pr "void worker%d(int *arg) {\n  f%d_0(arg);\n}\n" m m
  done;
  (* ---- main: fork the threaded chains, then (after the joins, so the
     bulk of the code is only parallel with the threaded window and the
     never-joined pulse) walk the remaining chains serially. Every chain
     gets its own seed allocation so [arg] stays module-private — a single
     shared seed would be accessed by every statement of every thread, one
     giant-degree object that swamps pair discovery. ---- *)
  pr "int main() {\n  int i;\n  int *out;\n";
  let nt = min p.threads p.modules in
  for m = 0 to p.modules - 1 do
    pr "  int *seed%d;\n  seed%d = malloc();\n" m m
  done;
  for t = 0 to nt - 1 do
    pr "  fork(&tids[%d], worker%d, seed%d);\n" t t t
  done;
  pr "  while (nondet()) {\n    fork(null, pulse, seed0);\n  }\n";
  for t = 0 to nt - 1 do
    pr "  join(&tids[%d]);\n" t
  done;
  for m = nt to p.modules - 1 do
    pr "  f%d_0(seed%d);\n" m m
  done;
  pr "  out = bridge%d;\n" (n_bridge - 1);
  pr "  return 0;\n}\n";
  Buffer.contents buf
