open Fsam_ir
module B = Builder

(* Thread-scaled stress programs for the [THREAD-VF] construction: the
   workers run in fork/join {e rounds} of four (a BSP/wave pattern — think
   kmeans' iterative re-fork, but with straight-line rounds so every round
   is a distinct thread set). Each round has its own kernel function that
   every round worker reaches through two call chains, and all rounds sweep
   the {e same} shared objects.

   That shape is exactly where the query layer's cost concentrates: kernel
   statements of different rounds access common objects, so the value-flow
   phase queries their full instance products — and the answer is "never
   parallel" (each round is joined before the next forks), which a naive
   scan only learns after checking all [(2×4)²] instance pairs while the
   summary index refutes it with a handful of per-thread set probes.
   Within-round pairs stay MHP, and the kernels mix lock-protected and bare
   accesses across two locks, so the lock filter, racy marking and span
   head/tail machinery are exercised too. *)

let workers_per_round = 4

let build ~threads scale =
  let rounds = max 1 (threads / workers_per_round) in
  let b = B.create () in
  let main = B.declare b "main" ~params:[] in
  let nshared = max 2 (scale / 10) in
  let shared = List.init nshared (fun k -> B.global_obj b (Printf.sprintf "shared%d" k)) in
  let values = List.init nshared (fun k -> B.global_obj b (Printf.sprintf "value%d" k)) in
  let lock_a = B.global_obj b "lock_a" in
  let lock_b = B.global_obj b "lock_b" in
  let define_round r =
    let kernel = B.declare b (Printf.sprintf "vf_kernel%d" r) ~params:[] in
    let stage_a = B.declare b (Printf.sprintf "vf_stage%d_a" r) ~params:[] in
    let stage_b = B.declare b (Printf.sprintf "vf_stage%d_b" r) ~params:[] in
    let lock = if r mod 2 = 0 then lock_a else lock_b in
    (* the round kernel: a lock-protected sweep over the shared objects,
       then an unlocked tail store (an interfering pair on shared0) *)
    B.define b kernel (fun fb ->
        let l = B.fresh_var b "kl" in
        B.addr_of fb l lock;
        B.lock fb l;
        List.iteri
          (fun k o ->
            let p = B.fresh_var b (Printf.sprintf "kp%d" k) in
            B.addr_of fb p o;
            let v = B.fresh_var b (Printf.sprintf "kv%d" k) in
            B.addr_of fb v (List.nth values k);
            B.store fb p v;
            let u = B.fresh_var b (Printf.sprintf "ku%d" k) in
            B.load fb u p)
          shared;
        B.unlock fb l;
        let p = B.fresh_var b "tail_p" in
        B.addr_of fb p (List.hd shared);
        let v = B.fresh_var b "tail_v" in
        B.addr_of fb v (List.hd values);
        B.store fb p v);
    (* two call chains into the kernel: twice the contexts per worker *)
    B.define b stage_a (fun fb -> B.call fb (Stmt.Direct kernel) []);
    B.define b stage_b (fun fb -> B.call fb (Stmt.Direct kernel) []);
    List.init workers_per_round (fun i ->
        let wfn = B.declare b (Printf.sprintf "vf_worker%d_%d" r i) ~params:[] in
        B.define b wfn (fun fb ->
            let p = B.fresh_var b "sp" in
            B.addr_of fb p (List.nth shared (i mod nshared));
            let v = B.fresh_var b "sv" in
            B.addr_of fb v (List.nth values (i mod nshared));
            B.store fb p v;
            (* thread-local ballast so the sparse solve has per-thread work *)
            let locals = max 2 (scale / max 1 threads) in
            for k = 0 to locals - 1 do
              let o = B.stack_obj b ~owner:wfn (Printf.sprintf "loc%d_%d_%d" r i k) in
              let lp = B.fresh_var b "lp" in
              B.addr_of fb lp o;
              B.store fb lp v;
              let lv = B.fresh_var b "lv" in
              B.load fb lv lp
            done;
            B.call fb (Stmt.Direct stage_a) [];
            B.call fb (Stmt.Direct stage_b) []);
        wfn)
  in
  let round_workers = List.init rounds define_round in
  B.define b main (fun fb ->
      List.iteri
        (fun r workers ->
          (* fork the round, then join it before the next round forks: the
             rounds are totally ordered, only intra-round pairs are MHP.
             One handle cell per worker so each join resolves its unique
             spawnee. *)
          let handles =
            List.mapi
              (fun i wfn ->
                let hobj = B.stack_obj b ~owner:main (Printf.sprintf "h%d_%d" r i) in
                let h = B.fresh_var b "h" in
                B.addr_of fb h hobj;
                B.fork fb ~handle:h (Stmt.Direct wfn) [];
                h)
              workers
          in
          List.iter (fun h -> B.join fb h) handles)
        round_workers;
      (* main touches shared0 too, after every round is done *)
      let p = B.fresh_var b "mp" in
      B.addr_of fb p (List.hd shared);
      let v = B.fresh_var b "mv" in
      B.addr_of fb v (List.hd values);
      B.store fb p v);
  B.finish b

(* (name, threads) pairs for the bench harness, smallest first; the scale
   knob is passed separately so --quick stays meaningful *)
let specs = [ ("vf_t4", 4); ("vf_t8", 8); ("vf_t16", 16); ("vf_t32", 32) ]
