type result = {
  runs : int;
  exhausted : bool;
  var_facts : (Fsam_ir.Stmt.var * Fsam_ir.Stmt.obj) list;
  mem_facts : (Fsam_ir.Stmt.obj * Fsam_ir.Stmt.obj) list;
}

(* Depth-first over decision prefixes. A run follows its scripted prefix;
   once the prefix is exhausted every further decision takes option 0, and
   for each such decision point with n > 1 options the unexplored siblings
   (prefix + [1 .. n-1]) are pushed. Each run restarts the (cheap)
   interpreter from scratch, so no state cloning is needed.

   Prefixes are stored {e reversed} (innermost decision first): a sibling of
   the current point is then just a cons onto the decisions taken so far —
   O(1) instead of the old [base @ [i]] copy, which was quadratic in run
   depth and dominated exhaustive exploration of deep programs. Only the
   single pop per run pays an O(depth) [List.rev]. The DFS order is
   unchanged. *)
let explore ?(max_steps = 2000) ?(max_runs = 20_000) prog =
  let var_facts = Hashtbl.create 256 in
  let mem_facts = Hashtbl.create 256 in
  let stack = ref [ [] ] in
  let runs = ref 0 in
  let exhausted = ref true in
  while !stack <> [] do
    match !stack with
    | [] -> ()
    | rev_prefix :: rest ->
      stack := rest;
      if !runs >= max_runs then begin
        exhausted := false;
        stack := []
      end
      else begin
        incr runs;
        let remaining = ref (List.rev rev_prefix) in
        let taken = ref [] in
        let decide n =
          match !remaining with
          | d :: tl ->
            remaining := tl;
            taken := d :: !taken;
            d
          | [] ->
            (* a fresh decision point: schedule the siblings *)
            for i = n - 1 downto 1 do
              stack := (i :: !taken) :: !stack
            done;
            taken := 0 :: !taken;
            0
        in
        let r = Interp.run_with ~max_steps ~decide prog in
        List.iter
          (fun o -> Hashtbl.replace var_facts (o.Interp.obs_var, o.Interp.obs_obj) ())
          r.Interp.observations;
        List.iter (fun f -> Hashtbl.replace mem_facts f ()) r.Interp.mem_facts
      end
  done;
  {
    runs = !runs;
    exhausted = !exhausted;
    var_facts = Hashtbl.fold (fun k () acc -> k :: acc) var_facts [];
    mem_facts = Hashtbl.fold (fun k () acc -> k :: acc) mem_facts [];
  }
