(** Binary min-heap over [(priority, item)] integer pairs.

    The sparse solver's priority worklist: items are work-unit ids, the
    priority is the unit's topological rank in the SVFG condensation, so
    [pop] always yields a unit all of whose (inter-SCC) predecessors have
    stabilised. Duplicate insertions are the caller's concern (the solvers
    pair the heap with a membership bit vector). Not stable under ties. *)

type t

val create : ?capacity:int -> unit -> t
val length : t -> int
val is_empty : t -> bool
val clear : t -> unit

val push : t -> prio:int -> int -> unit

val pop : t -> (int * int) option
(** Minimum-priority entry as [(prio, item)], [None] when empty. *)

val pop_item : t -> int option
