(* Hash-consed big-endian Patricia trees after Okasaki & Gill, "Fast
   Mergeable Integer Maps" (ML Workshop 1998), specialised to sets of
   non-negative ints.

   Every node is registered in a weak hash-cons table, so structurally equal
   sets are physically equal: [equal] is pointer comparison, [hash] and
   [compare] read the node's unique tag, and a bounded direct-mapped memo
   table turns repeated [union]s of the same operands — the dominant
   operation of every propagation-style solver in this repository — into
   cache hits. The table is weak, so nodes unreachable from live sets are
   reclaimed by the GC; the memo tables are the only structures pinning a
   bounded number of them.

   Domain safety (see DESIGN.md §"Domain-safety of the hash-cons table"):
   the post-solve clients fan out over OCaml 5 domains, and every Patricia
   operation may intern fresh nodes, so the intern table is sharded into
   [n_stripes] independent weak sets, each behind its own mutex — node
   creation takes exactly one uncontended lock on the serial path, and
   concurrent creations only contend when they hash to the same stripe.
   Tags come from one [Atomic] counter (allocated eagerly, so duplicates
   burn a tag — uniqueness, not density, is the contract). The union memo
   is per-domain via [Domain.DLS]: no locking on the solver's hottest
   path, at the cost of cold memos in freshly spawned worker domains. *)

type t = { tag : int; node : node }

and node =
  | Empty
  | Leaf of int
  | Branch of int * int * t * t
      (* Branch (prefix, branching-bit, left, right): [left] holds keys whose
         branching bit is 0, [right] those whose bit is 1. The prefix is the
         common high-order part of every key in the subtree. *)

(* Hash-consing ----------------------------------------------------------- *)

module Node_hash = struct
  type nonrec t = t

  (* Children are already hash-consed, so one level of pointer comparison
     decides structural equality of the whole subtree. *)
  let equal a b =
    match (a.node, b.node) with
    | Empty, Empty -> true
    | Leaf i, Leaf j -> i = j
    | Branch (p, m, l0, r0), Branch (q, n, l1, r1) ->
      p = q && m = n && l0 == l1 && r0 == r1
    | _ -> false

  let hash a =
    match a.node with
    | Empty -> 17
    | Leaf i -> (i * 0x9e3779b1) land max_int
    | Branch (p, m, l, r) ->
      (p + (m * 31) + (l.tag * 0x9e3779b1) + (r.tag * 0x85ebca6b)) land max_int
end

module W = Weak.Make (Node_hash)

(* Striped intern table: stripe = hash of the (tag-free) node shape, so the
   same shape always lands in the same stripe regardless of which domain
   interns it first — the mutex then guarantees a single canonical node. *)
let n_stripes = 64 (* power of two *)
let stripes = Array.init n_stripes (fun _ -> W.create 512)
let stripe_locks = Array.init n_stripes (fun _ -> Mutex.create ())
let next_tag = Atomic.make 0

(* Per-domain count of stripe-lock acquisitions that found the lock held —
   the profiler's contention signal. [try_lock] on an uncontended mutex is
   the same CAS [lock] starts with, so the serial path pays nothing. *)
let contention_key = Domain.DLS.new_key (fun () -> ref 0)
let intern_contention () = !(Domain.DLS.get contention_key)

let hashcons node =
  let tentative = { tag = Atomic.fetch_and_add next_tag 1; node } in
  let i = Node_hash.hash tentative land (n_stripes - 1) in
  let m = stripe_locks.(i) in
  if not (Mutex.try_lock m) then begin
    incr (Domain.DLS.get contention_key);
    Mutex.lock m
  end;
  match W.merge stripes.(i) tentative with
  | r ->
    Mutex.unlock m;
    r
  | exception e ->
    Mutex.unlock m;
    raise e

let empty = hashcons Empty
let is_empty t = t == empty
let leaf k = hashcons (Leaf k)
let singleton k = leaf k
let mk_branch p m l r = hashcons (Branch (p, m, l, r))

let live_nodes () =
  let n = ref 0 in
  Array.iteri
    (fun i t ->
      Mutex.lock stripe_locks.(i);
      n := !n + W.count t;
      Mutex.unlock stripe_locks.(i))
    stripes;
  !n

(* Bit fiddling ----------------------------------------------------------- *)

let zero_bit k m = k land m = 0

(* Big-endian: the branching bit [m] is the highest differing bit; the prefix
   keeps the bits strictly above [m]. *)
let mask k m = k land lnot ((m lsl 1) - 1)
let match_prefix k p m = mask k m = p

let branching_bit p0 p1 =
  (* highest bit where the prefixes differ *)
  let x = p0 lxor p1 in
  let x = x lor (x lsr 1) in
  let x = x lor (x lsr 2) in
  let x = x lor (x lsr 4) in
  let x = x lor (x lsr 8) in
  let x = x lor (x lsr 16) in
  let x = x lor (x lsr 32) in
  x - (x lsr 1)

let join p0 t0 p1 t1 =
  let m = branching_bit p0 p1 in
  if zero_bit p0 m then mk_branch (mask p0 m) m t0 t1
  else mk_branch (mask p0 m) m t1 t0

(* Queries ---------------------------------------------------------------- *)

let rec mem k t =
  match t.node with
  | Empty -> false
  | Leaf j -> k = j
  | Branch (p, m, l, r) ->
    if not (match_prefix k p m) then false
    else if zero_bit k m then mem k l
    else mem k r

let rec add k t =
  match t.node with
  | Empty -> leaf k
  | Leaf j -> if j = k then t else join k (leaf k) j t
  | Branch (p, m, l, r) ->
    if match_prefix k p m then
      if zero_bit k m then
        let l' = add k l in
        if l' == l then t else mk_branch p m l' r
      else
        let r' = add k r in
        if r' == r then t else mk_branch p m l r'
    else join k (leaf k) p t

let branch p m l r =
  if is_empty l then r else if is_empty r then l else mk_branch p m l r

let rec remove k t =
  match t.node with
  | Empty -> empty
  | Leaf j -> if k = j then empty else t
  | Branch (p, m, l, r) ->
    if not (match_prefix k p m) then t
    else if zero_bit k m then
      let l' = remove k l in
      if l' == l then t else branch p m l' r
    else
      let r' = remove k r in
      if r' == r then t else branch p m l r'

(* Merging. Hash-consing makes the physical-identity contract exact:
   [union a b == a] iff [b ⊆ a]. ------------------------------------------ *)

(* Bounded direct-mapped memo for Branch×Branch unions. Empty never reaches
   the memo (fast-pathed below), so it doubles as the vacant sentinel.

   One memo per domain ([Domain.DLS]): the arrays are mutated with no
   synchronisation whatsoever, which is only sound because no other domain
   can see them. Hit/miss counters live in the memo record; a weak registry
   keeps the stats of live memos readable from the main domain, and a
   finaliser folds a dying domain's counts into the [retired_*] atomics so
   [union_memo_stats] stays cumulative after worker domains are joined and
   collected (their memo arrays — and the nodes they pin — are then freed
   with the domain's local state). *)
let memo_bits = 16
let memo_size = 1 lsl memo_bits

type memo = {
  ma : t array;
  mb : t array;
  mr : t array;
  mutable hits : int;
  mutable misses : int;
}

let retired_hits = Atomic.make 0
let retired_misses = Atomic.make 0
let memo_registry : memo Weak.t list ref = ref []
let memo_registry_lock = Mutex.create ()

let memo_key =
  Domain.DLS.new_key (fun () ->
      let m =
        {
          ma = Array.make memo_size empty;
          mb = Array.make memo_size empty;
          mr = Array.make memo_size empty;
          hits = 0;
          misses = 0;
        }
      in
      Gc.finalise
        (fun m ->
          Atomic.fetch_and_add retired_hits m.hits |> ignore;
          Atomic.fetch_and_add retired_misses m.misses |> ignore)
        m;
      let w = Weak.create 1 in
      Weak.set w 0 (Some m);
      Mutex.lock memo_registry_lock;
      memo_registry := w :: List.filter (fun w -> Weak.check w 0) !memo_registry;
      Mutex.unlock memo_registry_lock;
      m)

let union_memo_stats () =
  Mutex.lock memo_registry_lock;
  let live = List.filter_map (fun w -> Weak.get w 0) !memo_registry in
  Mutex.unlock memo_registry_lock;
  List.fold_left
    (fun (h, m) memo -> (h + memo.hits, m + memo.misses))
    (Atomic.get retired_hits, Atomic.get retired_misses)
    live

let memo_slot a b =
  ((a.tag * 0x9e3779b1) lxor (b.tag * 0x85ebca6b)) land (memo_size - 1)

(* The memo is fetched once per top-level [union] and threaded through the
   recursion: [Domain.DLS.get] off the hot inner loop. *)
let rec union_m memo s t =
  if s == t then s
  else
    match (s.node, t.node) with
    | Empty, _ -> t
    | _, Empty -> s
    | Leaf k, _ -> add k t
    | _, Leaf k -> add k s
    | Branch _, Branch _ ->
      (* normalise operand order: the result is the same set either way, and
         hash-consing makes it the same pointer, so one slot serves both *)
      let a, b = if s.tag <= t.tag then (s, t) else (t, s) in
      let i = memo_slot a b in
      if memo.ma.(i) == a && memo.mb.(i) == b then begin
        memo.hits <- memo.hits + 1;
        memo.mr.(i)
      end
      else begin
        memo.misses <- memo.misses + 1;
        let r = union_branches memo a b in
        memo.ma.(i) <- a;
        memo.mb.(i) <- b;
        memo.mr.(i) <- r;
        r
      end

and union_branches memo s t =
  match (s.node, t.node) with
  | Branch (p, m, l0, r0), Branch (q, n, l1, r1) ->
    if m = n && p = q then
      let l = union_m memo l0 l1 and r = union_m memo r0 r1 in
      if l == l0 && r == r0 then s
      else if l == l1 && r == r1 then t
      else mk_branch p m l r
    else if m > n && match_prefix q p m then
      if zero_bit q m then
        let l = union_m memo l0 t in
        if l == l0 then s else mk_branch p m l r0
      else
        let r = union_m memo r0 t in
        if r == r0 then s else mk_branch p m l0 r
    else if m < n && match_prefix p q n then
      if zero_bit p n then
        let l = union_m memo s l1 in
        if l == l1 then t else mk_branch q n l r1
      else
        let r = union_m memo s r1 in
        if r == r1 then t else mk_branch q n l1 r
    else join p s q t
  | _ -> assert false

let union s t =
  if s == t then s
  else
    match (s.node, t.node) with
    | Empty, _ -> t
    | _, Empty -> s
    | Leaf k, _ -> add k t
    | _, Leaf k -> add k s
    | Branch _, Branch _ -> union_m (Domain.DLS.get memo_key) s t

let rec inter s t =
  if s == t then s
  else
    match (s.node, t.node) with
    | Empty, _ | _, Empty -> empty
    | Leaf k, _ -> if mem k t then s else empty
    | _, Leaf k -> if mem k s then t else empty
    | Branch (p, m, l0, r0), Branch (q, n, l1, r1) ->
      if m = n && p = q then branch p m (inter l0 l1) (inter r0 r1)
      else if m > n && match_prefix q p m then
        inter (if zero_bit q m then l0 else r0) t
      else if m < n && match_prefix p q n then
        inter s (if zero_bit p n then l1 else r1)
      else empty

let rec diff s t =
  if s == t then empty
  else
    match (s.node, t.node) with
    | Empty, _ -> empty
    | _, Empty -> s
    | Leaf k, _ -> if mem k t then empty else s
    | _, Leaf k -> remove k s
    | Branch (p, m, l0, r0), Branch (q, n, l1, r1) ->
      if m = n && p = q then branch p m (diff l0 l1) (diff r0 r1)
      else if m > n && match_prefix q p m then
        if zero_bit q m then branch p m (diff l0 t) r0
        else branch p m l0 (diff r0 t)
      else if m < n && match_prefix p q n then
        diff s (if zero_bit p n then l1 else r1)
      else s

let rec subset s t =
  s == t
  ||
  match (s.node, t.node) with
  | Empty, _ -> true
  | _, Empty -> false
  | Leaf k, _ -> mem k t
  | Branch _, Leaf _ -> false
  | Branch (p, m, l0, r0), Branch (q, n, l1, r1) ->
    if m = n && p = q then subset l0 l1 && subset r0 r1
    else if m < n && match_prefix p q n then
      subset s (if zero_bit p n then l1 else r1)
    else false

(* Physical equality is complete: the hash-cons table guarantees any two
   live structurally-equal sets are the same node. *)
let equal s t = s == t

let rec disjoint s t =
  match (s.node, t.node) with
  | Empty, _ | _, Empty -> true
  | Leaf k, _ -> not (mem k t)
  | _, Leaf k -> not (mem k s)
  | Branch (p, m, l0, r0), Branch (q, n, l1, r1) ->
    if m = n && p = q then disjoint l0 l1 && disjoint r0 r1
    else if m > n && match_prefix q p m then
      disjoint (if zero_bit q m then l0 else r0) t
    else if m < n && match_prefix p q n then
      disjoint s (if zero_bit p n then l1 else r1)
    else true

let rec cardinal t =
  match t.node with
  | Empty -> 0
  | Leaf _ -> 1
  | Branch (_, _, l, r) -> cardinal l + cardinal r

let rec iter f t =
  match t.node with
  | Empty -> ()
  | Leaf k -> f k
  | Branch (_, _, l, r) ->
    iter f l;
    iter f r

let rec fold f t acc =
  match t.node with
  | Empty -> acc
  | Leaf k -> f k acc
  | Branch (_, _, l, r) -> fold f r (fold f l acc)

let rec exists p t =
  match t.node with
  | Empty -> false
  | Leaf k -> p k
  | Branch (_, _, l, r) -> exists p l || exists p r

let rec for_all p t =
  match t.node with
  | Empty -> true
  | Leaf k -> p k
  | Branch (_, _, l, r) -> for_all p l && for_all p r

let rec filter p t =
  match t.node with
  | Empty -> empty
  | Leaf k -> if p k then t else empty
  | Branch (pr, m, l, r) ->
    let l' = filter p l and r' = filter p r in
    if l' == l && r' == r then t else branch pr m l' r'

(* Big-endian layout on non-negative keys means an in-order walk visits keys
   in increasing order. *)
let elements t = List.rev (fold (fun k acc -> k :: acc) t [])
let of_list l = List.fold_left (fun s k -> add k s) empty l

let rec choose t =
  match t.node with
  | Empty -> None
  | Leaf k -> Some k
  | Branch (_, _, l, _) -> choose l

let min_elt = choose
let as_singleton t = match t.node with Leaf k -> Some k | _ -> None

(* Tags are unique per live node, so tag order is a total order consistent
   with [equal] (not the subset order, and not stable across processes). *)
let compare s t = Stdlib.compare s.tag t.tag
let hash t = (t.tag * 0x9e3779b1) land max_int

let pp ppf t =
  Format.fprintf ppf "{@[%a@]}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ")
       Format.pp_print_int)
    (elements t)
