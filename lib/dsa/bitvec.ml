type t = { mutable words : Bytes.t }

(* Bytes gives us 8 bits per cell without boxing; all sizes in bits below. *)

let create ?(capacity = 256) () =
  { words = Bytes.make (max 1 ((capacity + 7) / 8)) '\000' }

let ensure t i =
  let need = (i / 8) + 1 in
  let len = Bytes.length t.words in
  if need > len then begin
    let w = Bytes.make (max need (2 * len)) '\000' in
    Bytes.blit t.words 0 w 0 len;
    t.words <- w
  end

let get t i =
  if i < 0 then invalid_arg "Bitvec.get";
  let byte = i / 8 in
  if byte >= Bytes.length t.words then false
  else Char.code (Bytes.unsafe_get t.words byte) land (1 lsl (i mod 8)) <> 0

let set t i =
  if i < 0 then invalid_arg "Bitvec.set";
  ensure t i;
  let byte = i / 8 in
  let v = Char.code (Bytes.unsafe_get t.words byte) in
  Bytes.unsafe_set t.words byte (Char.chr (v lor (1 lsl (i mod 8))))

let clear t i =
  if i < 0 then invalid_arg "Bitvec.clear";
  let byte = i / 8 in
  if byte < Bytes.length t.words then begin
    let v = Char.code (Bytes.unsafe_get t.words byte) in
    Bytes.unsafe_set t.words byte (Char.chr (v land lnot (1 lsl (i mod 8))))
  end

let set_if_unset t i =
  if get t i then false
  else begin
    set t i;
    true
  end

let union_into ~dst ~src =
  let n = Bytes.length src.words in
  if n > 0 then ensure dst ((n * 8) - 1);
  let changed = ref false in
  for b = 0 to n - 1 do
    let s = Char.code (Bytes.unsafe_get src.words b) in
    if s <> 0 then begin
      let d = Char.code (Bytes.unsafe_get dst.words b) in
      let d' = d lor s in
      if d' <> d then begin
        Bytes.unsafe_set dst.words b (Char.chr d');
        changed := true
      end
    end
  done;
  !changed

let intersects a b =
  let n = min (Bytes.length a.words) (Bytes.length b.words) in
  let rec go i =
    i < n
    && (Char.code (Bytes.unsafe_get a.words i) land Char.code (Bytes.unsafe_get b.words i) <> 0
       || go (i + 1))
  in
  go 0

let popcount_byte =
  let tbl = Array.init 256 (fun i ->
      let rec go i acc = if i = 0 then acc else go (i lsr 1) (acc + (i land 1)) in
      go i 0)
  in
  fun c -> tbl.(Char.code c)

let cardinal t =
  let n = ref 0 in
  Bytes.iter (fun c -> n := !n + popcount_byte c) t.words;
  !n

let iter_set f t =
  for b = 0 to Bytes.length t.words - 1 do
    let v = Char.code (Bytes.unsafe_get t.words b) in
    if v <> 0 then
      for bit = 0 to 7 do
        if v land (1 lsl bit) <> 0 then f ((b * 8) + bit)
      done
  done

let clear_all t = Bytes.fill t.words 0 (Bytes.length t.words) '\000'
let copy t = { words = Bytes.copy t.words }
let to_iset t =
  let s = ref Iset.empty in
  iter_set (fun i -> s := Iset.add i !s) t;
  !s
