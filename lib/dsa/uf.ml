type t = {
  mutable parent : int array;
  mutable rank : int array;
  mutable classes : int;
}

let create n =
  let n = max n 1 in
  { parent = Array.init n (fun i -> i); rank = Array.make n 0; classes = n }

let ensure t i =
  let len = Array.length t.parent in
  if i >= len then begin
    let n = max (i + 1) (2 * len) in
    let parent = Array.init n (fun j -> if j < len then t.parent.(j) else j) in
    let rank = Array.make n 0 in
    Array.blit t.rank 0 rank 0 len;
    t.parent <- parent;
    t.rank <- rank;
    t.classes <- t.classes + (n - len)
  end

let rec find t i =
  ensure t i;
  let p = t.parent.(i) in
  if p = i then i
  else begin
    let root = find t p in
    t.parent.(i) <- root;
    root
  end

let union t a b =
  let ra = find t a and rb = find t b in
  if ra = rb then ra
  else begin
    t.classes <- t.classes - 1;
    if t.rank.(ra) < t.rank.(rb) then begin
      t.parent.(ra) <- rb;
      rb
    end
    else if t.rank.(ra) > t.rank.(rb) then begin
      t.parent.(rb) <- ra;
      ra
    end
    else begin
      t.parent.(rb) <- ra;
      t.rank.(ra) <- t.rank.(ra) + 1;
      ra
    end
  end

let union_to t ~keep ~absorb =
  let rk = find t keep and ra = find t absorb in
  if rk = ra then rk
  else begin
    t.classes <- t.classes - 1;
    t.parent.(ra) <- rk;
    if t.rank.(rk) <= t.rank.(ra) then t.rank.(rk) <- t.rank.(ra) + 1;
    rk
  end

let same t a b = find t a = find t b
let n_classes t = t.classes

let copy t =
  { parent = Array.copy t.parent; rank = Array.copy t.rank; classes = t.classes }
