(* Array-based binary min-heap over (priority, item) int pairs — the
   priority worklist of the sparse solver. Priorities are topological ranks
   of the SVFG condensation, so ties are common and no stability guarantee
   is made. *)

type t = {
  mutable prio : int array;
  mutable item : int array;
  mutable size : int;
}

let create ?(capacity = 64) () =
  let capacity = max 1 capacity in
  { prio = Array.make capacity 0; item = Array.make capacity 0; size = 0 }

let length t = t.size
let is_empty t = t.size = 0

let clear t = t.size <- 0

let grow t =
  let cap = 2 * Array.length t.prio in
  let gp = Array.make cap 0 and gi = Array.make cap 0 in
  Array.blit t.prio 0 gp 0 t.size;
  Array.blit t.item 0 gi 0 t.size;
  t.prio <- gp;
  t.item <- gi

let push t ~prio item =
  if t.size = Array.length t.prio then grow t;
  let i = ref t.size in
  t.size <- t.size + 1;
  (* sift up *)
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    if t.prio.(parent) > prio then begin
      t.prio.(!i) <- t.prio.(parent);
      t.item.(!i) <- t.item.(parent);
      i := parent
    end
    else continue := false
  done;
  t.prio.(!i) <- prio;
  t.item.(!i) <- item

let pop t =
  if t.size = 0 then None
  else begin
    let min_prio = t.prio.(0) and min_item = t.item.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      let prio = t.prio.(t.size) and item = t.item.(t.size) in
      (* sift down from the root *)
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 in
        if l >= t.size then continue := false
        else begin
          let c = if l + 1 < t.size && t.prio.(l + 1) < t.prio.(l) then l + 1 else l in
          if t.prio.(c) < prio then begin
            t.prio.(!i) <- t.prio.(c);
            t.item.(!i) <- t.item.(c);
            i := c
          end
          else continue := false
        end
      done;
      t.prio.(!i) <- prio;
      t.item.(!i) <- item
    end;
    Some (min_prio, min_item)
  end

let pop_item t = match pop t with Some (_, item) -> Some item | None -> None
