(** Growable mutable bit vectors over non-negative indices.

    Used by the dense fixpoint solvers (visited sets, dirty flags,
    reachability closures) where mutation-in-place beats persistence. *)

type t

val create : ?capacity:int -> unit -> t
val set : t -> int -> unit
val clear : t -> int -> unit
val get : t -> int -> bool

val set_if_unset : t -> int -> bool
(** [set_if_unset t i] sets bit [i]; returns [true] iff it was previously
    unset (i.e. this call changed the vector). *)

val intersects : t -> t -> bool
(** [intersects a b] — do the two vectors share a set bit? Neither argument
    is mutated; differing capacities are fine (missing bits read as 0). *)

val union_into : dst:t -> src:t -> bool
(** [union_into ~dst ~src] ors [src] into [dst]; returns [true] iff [dst]
    changed. *)

val cardinal : t -> int
val iter_set : (int -> unit) -> t -> unit
val clear_all : t -> unit
val copy : t -> t
val to_iset : t -> Iset.t
