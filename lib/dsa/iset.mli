(** Sets of non-negative integers as {i hash-consed} big-endian Patricia
    trees.

    This is the points-to set representation used throughout the analyses.
    Patricia trees give structural sharing: unioning two sets reuses common
    subtrees, which matters a great deal for pointer analysis where thousands
    of points-to sets share most of their elements (cf. LLVM's
    [SparseBitVector], which the paper's implementation uses).

    Every node additionally goes through a weak hash-cons table, so
    structurally equal sets are physically equal: [equal] is pointer
    comparison, [hash] and [compare] are O(1) on the node's unique tag, and
    repeated [union]s of the same operands — the dominant operation of the
    propagation solvers — are served from a bounded memo table.

    All operations are purely functional. Keys must be [>= 0].

    {b Domain safety}: every operation may be called concurrently from any
    number of OCaml 5 domains. The intern table is sharded behind striped
    mutexes (one uncontended lock per node creation on the serial path),
    tags come from an atomic counter, and the union memo is per-domain via
    [Domain.DLS] — so [equal]-is-[==] and the [union a b == a] fixpoint
    test hold across domains. See DESIGN.md for the tradeoff discussion. *)

type t

val empty : t
val is_empty : t -> bool
val singleton : int -> t
val mem : int -> t -> bool
val add : int -> t -> t
val remove : int -> t -> t

val union : t -> t -> t
(** [union a b] returns [a] itself (physical equality) iff [b ⊆ a];
    the solvers rely on this to detect fixpoints cheaply. Branch-level
    unions are memoized in a bounded direct-mapped table. *)

val inter : t -> t -> t
val diff : t -> t -> t
val subset : t -> t -> bool

val equal : t -> t -> bool
(** O(1): hash-consing makes structural equality pointer equality. *)

val disjoint : t -> t -> bool
val cardinal : t -> int
val iter : (int -> unit) -> t -> unit
val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a
val exists : (int -> bool) -> t -> bool
val for_all : (int -> bool) -> t -> bool
val filter : (int -> bool) -> t -> t
val elements : t -> int list
(** Sorted in increasing order. *)

val of_list : int list -> t
val choose : t -> int option
(** An arbitrary element, [None] on the empty set. *)

val min_elt : t -> int option

val as_singleton : t -> int option
(** [Some k] iff the set is exactly [{k}], in O(1) — the strong-update
    tests of the flow-sensitive solvers live on this. *)

val compare : t -> t -> int
(** O(1) total order on hash-cons tags — consistent with [equal]; not the
    subset order, and not stable across processes. *)

val hash : t -> int
(** O(1), from the hash-cons tag. *)

val union_memo_stats : unit -> int * int
(** Cumulative [(hits, misses)] of the per-domain union memo tables since
    process start (live domains plus retired ones); solvers report deltas
    as metrics. *)

val live_nodes : unit -> int
(** Number of nodes currently live in the hash-cons table. *)

val intern_contention : unit -> int
(** Number of times {e the calling domain} found an intern-table stripe
    lock already held (cumulative since the domain started). The parallel
    profiler reads deltas around each chunk. *)

val pp : Format.formatter -> t -> unit
(** Prints as [{1, 2, 3}]. *)
