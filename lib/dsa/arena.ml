(* Flat int stores. See the interface for the sharing discipline; nothing
   here allocates per element beyond the backing arrays, and nothing stores
   a boxed key — probes and row walks are array reads on contiguous ints. *)

module Buf = struct
  type t = { mutable data : int array; mutable len : int }

  let create ?(capacity = 16) () = { data = Array.make (max 1 capacity) 0; len = 0 }
  let length b = b.len

  let ensure b n =
    if n > Array.length b.data then begin
      let cap = ref (2 * Array.length b.data) in
      while n > !cap do
        cap := 2 * !cap
      done;
      let data = Array.make !cap 0 in
      Array.blit b.data 0 data 0 b.len;
      b.data <- data
    end

  let push b v =
    ensure b (b.len + 1);
    b.data.(b.len) <- v;
    b.len <- b.len + 1;
    b.len - 1

  let get b i =
    if i < 0 || i >= b.len then invalid_arg "Arena.Buf.get";
    b.data.(i)

  let set b i v =
    if i < 0 || i >= b.len then invalid_arg "Arena.Buf.set";
    b.data.(i) <- v

  let to_array b = Array.sub b.data 0 b.len
  let copy b = { data = Array.copy b.data; len = b.len }
end

module Intmap = struct
  (* keys and slots in one array each; [-1] marks an empty slot, so keys
     must be >= 0. Capacity is a power of two and load stays <= 1/2: linear
     probing then terminates and averages O(1). *)
  type t = { mutable keys : int array; mutable vals : int array; mutable n : int }

  let create ?(capacity = 16) () =
    let cap = ref 16 in
    while !cap < 2 * capacity do
      cap := 2 * !cap
    done;
    { keys = Array.make !cap (-1); vals = Array.make !cap 0; n = 0 }

  let length m = m.n

  (* multiplicative scramble (Knuth) so dense packed keys spread over slots *)
  let slot_of cap key = key * 0x9E3779B1 land max_int land (cap - 1)

  let rec probe keys cap i key =
    let k = keys.(i) in
    if k = key || k = -1 then i else probe keys cap ((i + 1) land (cap - 1)) key

  let grow m =
    let cap = 2 * Array.length m.keys in
    let keys = Array.make cap (-1) and vals = Array.make cap 0 in
    Array.iteri
      (fun i k ->
        if k >= 0 then begin
          let j = probe keys cap (slot_of cap k) k in
          keys.(j) <- k;
          vals.(j) <- m.vals.(i)
        end)
      m.keys;
    m.keys <- keys;
    m.vals <- vals

  let set m ~key v =
    if key < 0 then invalid_arg "Arena.Intmap.set: negative key";
    let cap = Array.length m.keys in
    let i = probe m.keys cap (slot_of cap key) key in
    if m.keys.(i) = -1 then begin
      m.keys.(i) <- key;
      m.vals.(i) <- v;
      m.n <- m.n + 1;
      if 2 * m.n > cap then grow m
    end
    else m.vals.(i) <- v

  let find m ~key ~default =
    if key < 0 then default
    else begin
      let cap = Array.length m.keys in
      let i = probe m.keys cap (slot_of cap key) key in
      if m.keys.(i) = key then m.vals.(i) else default
    end

  let find_or_add m ~key mk =
    let v = find m ~key ~default:min_int in
    if v <> min_int then v
    else begin
      let v = mk () in
      set m ~key v;
      v
    end

  let iter m f =
    Array.iteri (fun i k -> if k >= 0 then f ~key:k m.vals.(i)) m.keys

  let copy m = { keys = Array.copy m.keys; vals = Array.copy m.vals; n = m.n }
end

module Dyn = struct
  (* Keyed rows over two parallel bufs: [cells] holds values (>= 0, with -1
     marking a tombstone), [next] links cells of one row in insertion order.
     Rows grow by appending at the tail and shrink by tombstoning in place,
     so live cells never move — exactly what in-place graph patching needs. *)
  type t = {
    head : Intmap.t; (* key -> first cell, absent = empty row *)
    tail : Intmap.t; (* key -> last cell, for O(1) ordered append *)
    cells : Buf.t;
    next : Buf.t;
    mutable live : int;
    mutable dead : int;
  }

  let create ?(capacity = 16) () =
    {
      head = Intmap.create ~capacity ();
      tail = Intmap.create ~capacity ();
      cells = Buf.create ~capacity ();
      next = Buf.create ~capacity ();
      live = 0;
      dead = 0;
    }

  let live t = t.live
  let tombstones t = t.dead

  let add t ~key v =
    if v < 0 then invalid_arg "Arena.Dyn.add: negative value";
    let cell = Buf.push t.cells v in
    ignore (Buf.push t.next (-1));
    (match Intmap.find t.tail ~key ~default:(-1) with
    | -1 -> Intmap.set t.head ~key cell
    | last -> Buf.set t.next last cell);
    Intmap.set t.tail ~key cell;
    t.live <- t.live + 1

  let remove t ~key v =
    let rec go cell =
      if cell = -1 then false
      else if Buf.get t.cells cell = v then begin
        Buf.set t.cells cell (-1);
        t.live <- t.live - 1;
        t.dead <- t.dead + 1;
        true
      end
      else go (Buf.get t.next cell)
    in
    go (Intmap.find t.head ~key ~default:(-1))

  let iter_row t key f =
    let rec go cell =
      if cell >= 0 then begin
        let v = Buf.get t.cells cell in
        if v >= 0 then f v;
        go (Buf.get t.next cell)
      end
    in
    go (Intmap.find t.head ~key ~default:(-1))

  let exists_row t key p =
    let rec go cell =
      if cell = -1 then false
      else
        let v = Buf.get t.cells cell in
        (v >= 0 && p v) || go (Buf.get t.next cell)
    in
    go (Intmap.find t.head ~key ~default:(-1))

  let row_list t key =
    let acc = ref [] in
    iter_row t key (fun v -> acc := v :: !acc);
    List.rev !acc

  let copy t =
    {
      head = Intmap.copy t.head;
      tail = Intmap.copy t.tail;
      cells = Buf.copy t.cells;
      next = Buf.copy t.next;
      live = t.live;
      dead = t.dead;
    }
end

module Csr = struct
  type t = { offsets : int array; (* n_rows + 1 *) data : int array }

  let build ~n_rows iter =
    let offsets = Array.make (n_rows + 1) 0 in
    iter (fun ~row ~value:_ -> offsets.(row + 1) <- offsets.(row + 1) + 1);
    for r = 1 to n_rows do
      offsets.(r) <- offsets.(r) + offsets.(r - 1)
    done;
    let data = Array.make offsets.(n_rows) 0 in
    (* fill cursors start at each row's offset and advance as values land *)
    let cursor = Array.sub offsets 0 n_rows in
    iter (fun ~row ~value ->
        data.(cursor.(row)) <- value;
        cursor.(row) <- cursor.(row) + 1);
    { offsets; data }

  let n_rows c = Array.length c.offsets - 1
  let degree c r = c.offsets.(r + 1) - c.offsets.(r)

  let iter_row c r f =
    for i = c.offsets.(r) to c.offsets.(r + 1) - 1 do
      f c.data.(i)
    done

  let exists_row c r p =
    let rec go i stop = i < stop && (p c.data.(i) || go (i + 1) stop) in
    go c.offsets.(r) c.offsets.(r + 1)

  let mem_row c r v = exists_row c r (fun x -> x = v)
end
