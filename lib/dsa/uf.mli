(** Union–find over dense integer keys, with path compression and union by
    rank. Used for collapsing SCCs and positive-weight cycles in the Andersen
    constraint graph: collapsed nodes share one representative. *)

type t

val create : int -> t
(** [create n] — keys [0 .. n-1], each its own singleton class. The structure
    grows on demand if queried past [n]. *)

val find : t -> int -> int
(** Representative of the key's class. *)

val union : t -> int -> int -> int
(** Merge the two classes; returns the surviving representative. *)

val union_to : t -> keep:int -> absorb:int -> int
(** Merge forcing [keep]'s representative to survive. *)

val same : t -> int -> int -> bool
val n_classes : t -> int

val copy : t -> t
(** Independent structural copy: subsequent unions or path compression on
    either side do not affect the other. *)
