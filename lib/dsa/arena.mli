(** Arena-backed flat stores: growable int buffers, an open-addressing
    int→int map, and CSR adjacency — the cache-friendly alternative to
    [Hashtbl]s with boxed tuple keys on hot read-mostly paths.

    The parallel fan-out shares these as immutable snapshots: every field is
    a flat [int array], so worker domains read them without touching the GC's
    shared structures and without pointer-chasing per probe. The intended
    discipline (after the arena/flat-array engines this borrows from) is
    build-once / read-many: populate on the main domain, then only query.

    All keys and values are non-negative ints; composite keys are packed by
    the caller ([key = row * stride + col] — 63-bit ints leave plenty of
    room for any (object, gid) pair this codebase produces). *)

(** Growable flat int buffer — the arena itself. *)
module Buf : sig
  type t

  val create : ?capacity:int -> unit -> t
  val length : t -> int

  val push : t -> int -> int
  (** Append a value, growing geometrically; returns its index. *)

  val get : t -> int -> int
  val set : t -> int -> int -> unit
  val to_array : t -> int array
  val copy : t -> t
end

(** Open-addressing int→int hash map over two flat arrays (linear probing,
    power-of-two capacity, ≤ 50% load). Keys must be [>= 0]. *)
module Intmap : sig
  type t

  val create : ?capacity:int -> unit -> t
  val length : t -> int

  val set : t -> key:int -> int -> unit
  (** Insert or overwrite. *)

  val find : t -> key:int -> default:int -> int

  val find_or_add : t -> key:int -> (unit -> int) -> int
  (** Return the bound value, binding [mk ()] first when absent. *)

  val iter : t -> (key:int -> int -> unit) -> unit
  (** Iteration order is unspecified (it follows the probe layout); use only
      for order-insensitive folds. *)

  val copy : t -> t
end

(** Dynamic keyed rows: like {!Csr} but mutable after construction — rows
    grow by appended insertion and shrink by tombstoned deletion, with live
    cells never moving. This is the store the incremental SVFG patcher
    splices: deletions leave a [-1] tombstone that every reader skips, and
    insertions append at the row tail so surviving iteration order stays the
    original insertion order. Values must be [>= 0]. *)
module Dyn : sig
  type t

  val create : ?capacity:int -> unit -> t

  val live : t -> int
  (** Number of live (non-tombstoned) cells across all rows. *)

  val tombstones : t -> int

  val add : t -> key:int -> int -> unit
  (** Append a value at the tail of [key]'s row. *)

  val remove : t -> key:int -> int -> bool
  (** Tombstone the first live cell of [key]'s row equal to the value;
      returns whether one was found. *)

  val iter_row : t -> int -> (int -> unit) -> unit
  val exists_row : t -> int -> (int -> bool) -> bool

  val row_list : t -> int -> int list
  (** Live values of one row in insertion order. *)

  val copy : t -> t
end

(** Compressed sparse rows: per-row int adjacency in two flat arrays
    ([offsets] + [data]), built in two passes from any edge enumeration. *)
module Csr : sig
  type t

  val build : n_rows:int -> ((row:int -> value:int -> unit) -> unit) -> t
  (** [build ~n_rows iter] calls [iter emit] twice — once to count, once to
      fill — so the enumeration must be repeatable (same multiset of
      [(row, value)] emissions, any order). Rows are [0 .. n_rows - 1]. *)

  val n_rows : t -> int
  val degree : t -> int -> int

  val iter_row : t -> int -> (int -> unit) -> unit
  val exists_row : t -> int -> (int -> bool) -> bool

  val mem_row : t -> int -> int -> bool
  (** Linear membership scan of one row. *)
end
