open Fsam_dsa
open Fsam_ir
module A = Fsam_andersen.Solver
module Svfg = Fsam_memssa.Svfg
module Obs = Fsam_obs

type scheduler = Fifo | Priority

type t = {
  prog : Prog.t;
  svfg : Svfg.t;
  ptv : Iset.t array;
  pto : (int * int, Iset.t) Hashtbl.t; (* (svfg node, obj) -> contents *)
  obj_any : (int, Iset.t) Hashtbl.t; (* obj -> union of contents over all nodes *)
  mutable iterations : int;
  mutable strong_updates : int; (* store-processing events that killed *)
  mutable weak_updates : int;
  mutable growth : int; (* add events that enlarged a set during the drain *)
}

let pt_top t v = t.ptv.(v)

let pto_get t node o = Option.value ~default:Iset.empty (Hashtbl.find_opt t.pto (node, o))

let pt_at_store t gid o =
  match Svfg.node_id t.svfg (Svfg.Stmt_node gid) with
  | Some n -> pto_get t n o
  | None -> Iset.empty

(* Served from the accumulator maintained by [add_obj]: facts only grow, so
   the running union equals the fold over the whole [pto] table that the
   soundness harnesses would otherwise pay per query. *)
let pt_obj_anywhere t o =
  Option.value ~default:Iset.empty (Hashtbl.find_opt t.obj_any o)

let iter_pto t f = Hashtbl.iter (fun (node, o) s -> f ~node ~obj:o s) t.pto

let n_iterations t = t.iterations
let n_strong_updates t = t.strong_updates
let n_weak_updates t = t.weak_updates
let n_growth t = t.growth

let pts_entries t =
  Array.fold_left (fun acc s -> acc + Iset.cardinal s) 0 t.ptv
  + Hashtbl.fold (fun _ s acc -> acc + Iset.cardinal s) t.pto 0

(* -- the unit universe and its dependency structure ------------------------ *)
(* Work units: statement gids in [0, n_stmts), then non-statement SVFG nodes
   at [n_stmts + node_id]. Exposed so the incremental engine (lib/serve) can
   compute dirty closures over exactly the graph the drain propagates on. *)

let unit_of_svfg_node prog svfg n =
  match Svfg.node svfg n with
  | Svfg.Stmt_node g -> g
  | _ -> Prog.n_stmts prog + n

let unit_count prog svfg = Prog.n_stmts prog + Svfg.n_nodes svfg

type deps = { d_defs : int list array; d_users : int list array }

(* A statement using a variable twice (store p p, phi with repeated
   sources, a call passing one pointer to two parameters) must still be
   reprocessed once per growth: occurrences land consecutively, so a
   head check dedupes them at index time. *)
let compute_deps prog ast =
  let d_users = Array.make (Prog.n_vars prog) [] in
  let d_defs = Array.make (Prog.n_vars prog) [] in
  let add arr v gid =
    match arr.(v) with g :: _ when g = gid -> () | l -> arr.(v) <- gid :: l
  in
  Prog.iter_funcs prog (fun f ->
      Func.iter_stmts f (fun i s ->
          let gid = Prog.gid prog ~fid:f.Func.fid ~idx:i in
          List.iter (fun v -> add d_users v gid) (Stmt.uses s);
          (match Stmt.def s with Some v -> add d_defs v gid | None -> ());
          (* a call's result depends on the callees' returned variables;
             calls and forks bind actuals to the callees' formals, so the
             callsite acts as a def of those variables too *)
          match s with
          | Stmt.Call { args; ret; _ } ->
            List.iter
              (fun callee ->
                (if ret <> None then
                   List.iter (fun rv -> add d_users rv gid) (A.ret_vars ast callee));
                let fn = Prog.func prog callee in
                let rec bind args params =
                  match (args, params) with
                  | _ :: args, p :: params ->
                    add d_defs p gid;
                    bind args params
                  | _ -> ()
                in
                bind args fn.Func.params)
              (A.callees ast ~fid:f.Func.fid ~idx:i)
          | Stmt.Fork { args; _ } ->
            List.iter
              (fun callee ->
                let fn = Prog.func prog callee in
                let rec bind args params =
                  match (args, params) with
                  | _ :: args, p :: params ->
                    add d_defs p gid;
                    bind args params
                  | _ -> ()
                in
                bind args fn.Func.params)
              (A.callees ast ~fid:f.Func.fid ~idx:i)
          | _ -> ()));
  { d_defs; d_users }

(* the dependency graph: an edge u -> w whenever processing u can enqueue w,
   i.e. u defines a top-level var w uses (including the param/return
   bindings performed at call and fork sites) or a points-to fact generated
   at u flows to w along an SVFG edge *)
let dep_graph prog ast svfg =
  let n_units = unit_count prog svfg in
  let dep = Fsam_graph.Digraph.create ~size_hint:n_units () in
  if n_units > 0 then Fsam_graph.Digraph.ensure_node dep (n_units - 1);
  let { d_defs; d_users } = compute_deps prog ast in
  Array.iteri
    (fun v defs ->
      match d_users.(v) with
      | [] -> ()
      | users ->
        List.iter
          (fun d -> List.iter (fun u -> Fsam_graph.Digraph.add_edge dep d u) users)
          defs)
    d_defs;
  Svfg.iter_nodes svfg (fun n _ ->
      let src = unit_of_svfg_node prog svfg n in
      List.iter
        (fun (_, dst) ->
          Fsam_graph.Digraph.add_edge dep src (unit_of_svfg_node prog svfg dst))
        (Svfg.o_succs svfg n));
  dep

type warm = {
  w_ptv : Iset.t array;
  w_pto : ((int * int) * Iset.t) list;
  w_units : int list;
}

let solve ?(scheduler = Priority) ?warm ?prov prog ast svfg ~singleton =
  let n_stmts = Prog.n_stmts prog in
  let memo_hits0, memo_misses0 = Iset.union_memo_stats () in
  let t =
    {
      prog;
      svfg;
      ptv = Array.make (Prog.n_vars prog) Iset.empty;
      pto = Hashtbl.create 4096;
      obj_any = Hashtbl.create 256;
      iterations = 0;
      strong_updates = 0;
      weak_updates = 0;
      growth = 0;
    }
  in
  (* Warm start: pre-load facts proven to match the least fixpoint (the
     incremental engine's clean slice). The drain below then seeds only
     [w_units]; the monotone transfer functions grow the pre-loaded state
     exactly as a cold run would have, reaching the same unique fixpoint. *)
  (match warm with
  | None -> ()
  | Some w ->
    Array.blit w.w_ptv 0 t.ptv 0 (min (Array.length w.w_ptv) (Array.length t.ptv));
    List.iter
      (fun ((node, o), set) ->
        if not (Iset.is_empty set) then begin
          Hashtbl.replace t.pto (node, o) set;
          let any = Option.value ~default:Iset.empty (Hashtbl.find_opt t.obj_any o) in
          Hashtbl.replace t.obj_any o (Iset.union any set)
        end)
      w.w_pto);
  let unit_of_node n = unit_of_svfg_node prog svfg n in
  let n_units = unit_count prog svfg in
  let { d_users = var_users; _ } =
    Obs.Span.with_ ~name:"sparse.index" (fun () -> compute_deps prog ast)
  in
  (* rank.(u): topological rank of u's SCC in the unit dependency graph —
     the priority of the worklist. Computed below at index time (Priority
     scheduler only; Fifo keeps the legacy queue and skips the
     condensation). *)
  let rank = Array.make (max 1 n_units) 0 in
  (* SCC membership, kept for the convergence monitor (Priority only): a
     stall warning names the stuck SCC and its size. *)
  let comp_of = ref [||] in
  let comp_size = ref [||] in
  Obs.Span.with_ ~name:"sparse.condense" (fun () ->
      if scheduler = Priority then begin
        let dep = dep_graph prog ast svfg in
        (* condensation: priorities are topological ranks of the SCCs, so
           each unit is scheduled after its inter-SCC predecessors stabilise
           and intra-SCC cycles drain to fixpoint before the next rank
           starts *)
        let scc = Fsam_graph.Scc.compute dep in
        comp_of := scc.Fsam_graph.Scc.comp_of;
        comp_size := Array.map List.length scc.Fsam_graph.Scc.comps;
        for u = 0 to n_units - 1 do
          (* component ids are in reverse topological order *)
          rank.(u) <- scc.Fsam_graph.Scc.n_comps - 1 - scc.Fsam_graph.Scc.comp_of.(u)
        done;
        Obs.Metrics.(set (gauge "sparse.scc_count") scc.Fsam_graph.Scc.n_comps);
        let scc_histo = Obs.Metrics.histogram "sparse.scc_size" in
        Array.iter
          (fun members ->
            match members with
            | [] -> ()
            | l -> Obs.Metrics.observe scc_histo (List.length l))
          scc.Fsam_graph.Scc.comps
      end);
  let queue = Queue.create () in
  let heap = Heap.create ~capacity:(max 16 n_units) () in
  let queued = Bitvec.create ~capacity:n_units () in
  let peak = ref 0 in
  (* facts-growth events: each add_var/add_obj call that enlarged a set.
     The convergence monitor's progress signal — cheap (one incr on the
     growth path), monotone, and zero across an interval exactly when the
     solver churned without learning anything. *)
  let facts = ref 0 in
  let depth () =
    match scheduler with Fifo -> Queue.length queue | Priority -> Heap.length heap
  in
  (* Heap key: SCC rank in the high bits, a global push sequence number in
     the low bits. Ranks order work between SCCs (a unit runs only once its
     inter-SCC predecessors' components stabilised); the sequence number
     breaks ties FIFO, so inside a cyclic SCC members drain round-robin —
     batching increments per sweep — instead of the min-rank member being
     eagerly re-processed on every tiny delta arriving from a back edge. *)
  let seq = ref 0 in
  let push u =
    if Bitvec.set_if_unset queued u then begin
      (match scheduler with
      | Fifo -> Queue.add u queue
      | Priority ->
        Heap.push heap ~prio:((rank.(u) lsl 40) lor !seq) u;
        incr seq);
      let d = depth () in
      if d > !peak then peak := d
    end
  in
  (* [rt]/[rx]/[ry]/[rz] are the provenance reason tag and payload for any
     object entering the set through this call; plain ints so the disabled
     path stays allocation-free. *)
  let add_var ~rt ~rx ~ry ~rz v set =
    let old = t.ptv.(v) in
    let u = Iset.union old set in
    if not (u == old) then begin
      incr facts;
      t.ptv.(v) <- u;
      (match prov with
      | Some r ->
        Iset.iter
          (fun o ->
            if not (Iset.mem o old) then
              Fsam_prov.add r ~space:Fsam_prov.sp_var ~k1:v ~k2:0 ~obj:o ~tag:rt ~x:rx ~y:ry
                ~z:rz)
          set
      | None -> ());
      List.iter push var_users.(v)
    end
  in
  let add_obj ~rt ~rx ~ry node o set =
    let cur = pto_get t node o in
    let u = Iset.union cur set in
    if not (u == cur) then begin
      incr facts;
      Hashtbl.replace t.pto (node, o) u;
      (match prov with
      | Some r ->
        Iset.iter
          (fun tgt ->
            if not (Iset.mem tgt cur) then
              Fsam_prov.add r ~space:Fsam_prov.sp_mem ~k1:node ~k2:o ~obj:tgt ~tag:rt ~x:rx
                ~y:ry ~z:0)
          set
      | None -> ());
      let any = Option.value ~default:Iset.empty (Hashtbl.find_opt t.obj_any o) in
      Hashtbl.replace t.obj_any o (Iset.union any u);
      List.iter
        (fun (o', dst) -> if o' = o then push (unit_of_node dst))
        (Svfg.o_succs svfg node)
    end
  in
  let stmt_node gid = Svfg.node_id svfg (Svfg.Stmt_node gid) in
  let bind_call gid fid idx args ret =
    List.iter
      (fun callee ->
        let f = Prog.func prog callee in
        let rec go args params =
          match (args, params) with
          | a :: args, p :: params ->
            add_var ~rt:Fsam_prov.s_bind ~rx:a ~ry:gid ~rz:0 p t.ptv.(a);
            go args params
          | _ -> ()
        in
        go args f.Func.params;
        match ret with
        | Some r ->
          List.iter
            (fun rv -> add_var ~rt:Fsam_prov.s_bind ~rx:rv ~ry:gid ~rz:0 r t.ptv.(rv))
            (A.ret_vars ast callee)
        | None -> ())
      (A.callees ast ~fid ~idx)
  in
  let process gid =
    let fid, idx = Prog.of_gid prog gid in
    match Prog.stmt_at prog gid with
    | Stmt.Addr_of { dst; obj } ->
      add_var ~rt:Fsam_prov.s_addr ~rx:gid ~ry:0 ~rz:0 dst (Iset.singleton obj)
    | Stmt.Copy { dst; src } ->
      add_var ~rt:Fsam_prov.s_copy ~rx:src ~ry:gid ~rz:0 dst t.ptv.(src)
    | Stmt.Phi { dst; srcs } ->
      List.iter (fun s -> add_var ~rt:Fsam_prov.s_phi ~rx:s ~ry:gid ~rz:0 dst t.ptv.(s)) srcs
    | Stmt.Gep { dst; src; field } ->
      Iset.iter
        (fun o ->
          let info = Prog.obj prog o in
          if not (Fsam_ir.Memobj.is_function info || Fsam_ir.Memobj.is_thread info) then
            add_var ~rt:Fsam_prov.s_gep ~rx:o ~ry:gid ~rz:0 dst
              (Iset.singleton (Prog.field_obj prog ~base:o ~field)))
        t.ptv.(src)
    | Stmt.Load { dst; src } -> (
      match stmt_node gid with
      | None -> ()
      | Some node ->
        let pts = t.ptv.(src) in
        List.iter
          (fun (o, d) ->
            if Iset.mem o pts then
              add_var ~rt:Fsam_prov.s_load ~rx:gid ~ry:d ~rz:o dst (pto_get t d o))
          (Svfg.o_preds svfg node))
    | Stmt.Store { dst; src } -> (
      match stmt_node gid with
      | None -> ()
      | Some node ->
        let targets = t.ptv.(dst) in
        Iset.iter (fun o -> add_obj ~rt:Fsam_prov.m_store ~rx:src ~ry:gid node o t.ptv.(src)) targets;
        (* kill(s, p) of Figure 10, decided once per store processing: the
           verdict depends only on pt(p) and the store's racy objects, not
           on the incoming def edge. One deviation: the paper kills
           everything when pt(p) = ∅ (a C null store is undefined
           behaviour); our IR defines a null store as a no-op, so incoming
           values pass through — anything else would be unsound against the
           interpreter's semantics. *)
        let killed =
          match Iset.as_singleton targets with
          | Some o' when singleton o' && not (Iset.mem o' (Svfg.racy_objs svfg gid)) ->
            o'
          | _ -> -1
        in
        (* replace semantics: the verdict of the final (sound) processing of
           this store is the one the explain layer reports *)
        (match prov with
        | Some r ->
          Fsam_prov.set r ~space:Fsam_prov.sp_store ~k1:gid ~k2:0 ~obj:0
            ~tag:(if killed >= 0 then Fsam_prov.u_strong else Fsam_prov.u_weak)
            ~x:killed ~y:0 ~z:0
        | None -> ());
        List.iter
          (fun (o, d) ->
            if o = killed then t.strong_updates <- t.strong_updates + 1
            else begin
              t.weak_updates <- t.weak_updates + 1;
              add_obj ~rt:Fsam_prov.m_edge ~rx:d ~ry:0 node o (pto_get t d o)
            end)
          (Svfg.o_preds svfg node))
    | Stmt.Call { args; ret; _ } -> bind_call gid fid idx args ret
    | Stmt.Fork { handle; args; fork_id; _ } -> (
      bind_call gid fid idx args None;
      match (handle, stmt_node gid) with
      | Some h, Some node ->
        let theta = Prog.thread_obj_of_fork prog fork_id in
        Iset.iter
          (fun o -> add_obj ~rt:Fsam_prov.m_fork ~rx:gid ~ry:0 node o (Iset.singleton theta))
          t.ptv.(h);
        (* weak: old handle contents survive *)
        List.iter
          (fun (o, d) -> add_obj ~rt:Fsam_prov.m_edge ~rx:d ~ry:0 node o (pto_get t d o))
          (Svfg.o_preds svfg node)
      | _ -> ())
    | Stmt.Return _ | Stmt.Join _ | Stmt.Lock _ | Stmt.Unlock _ | Stmt.Nop _ -> ()
  in
  let process_node n =
    (* pure merge nodes: one object each *)
    let o =
      match Svfg.node svfg n with
      | Svfg.Formal_in (_, o) | Svfg.Formal_out (_, o) | Svfg.Call_chi (_, o) -> o
      | Svfg.Stmt_node _ -> assert false
    in
    List.iter
      (fun (o', d) -> if o' = o then add_obj ~rt:Fsam_prov.m_edge ~rx:d ~ry:0 n o (pto_get t d o))
      (Svfg.o_preds svfg n)
  in
  (* Convergence monitor (profiling only): every [sample_interval]
     propagations, record worklist/heap depth, cumulative facts and the
     per-interval delta, union-memo hit/miss deltas, and the rank + SCC
     size of the unit being drained. [stall_after] consecutive zero-growth
     samples raise one structured stall warning naming the stuck SCC;
     the streak keeps counting so a single long stall warns once. *)
  let profiling = Obs.Profile.enabled () in
  let sample_interval = 512 in
  if profiling then Obs.Profile.set_sample_interval sample_interval;
  let mon_facts = ref 0 and mon_hits = ref memo_hits0 and mon_misses = ref memo_misses0 in
  let mon_streak = ref 0 in
  let stall_after = 8 in
  let monitor u =
    if t.iterations land (sample_interval - 1) = 0 then begin
      let hits, misses = Iset.union_memo_stats () in
      let r = if u < Array.length rank then rank.(u) else 0 in
      let comp = if u < Array.length !comp_of then (!comp_of).(u) else -1 in
      let scc_size = if comp >= 0 then (!comp_size).(comp) else 0 in
      let delta = !facts - !mon_facts in
      Obs.Profile.add_sample
        {
          Obs.Profile.s_prop = t.iterations;
          s_depth = depth ();
          s_facts = !facts;
          s_facts_delta = delta;
          s_memo_hits = hits - !mon_hits;
          s_memo_misses = misses - !mon_misses;
          s_rank = r;
          s_scc_size = scc_size;
        };
      mon_facts := !facts;
      mon_hits := hits;
      mon_misses := misses;
      if delta = 0 then begin
        incr mon_streak;
        if !mon_streak = stall_after then begin
          Obs.Profile.add_stall
            {
              Obs.Profile.st_prop = t.iterations;
              st_samples = !mon_streak;
              st_rank = r;
              st_scc_size = scc_size;
            };
          Obs.Metrics.(add (counter "sparse.stall_warnings") 1)
        end
      end
      else mon_streak := 0
    end
  in
  (* worklist drain, including the strong/weak update loop inside stores *)
  let seen = Bitvec.create ~capacity:n_units () in
  let reprocessed = ref 0 in
  let step u =
    Bitvec.clear queued u;
    t.iterations <- t.iterations + 1;
    if not (Bitvec.set_if_unset seen u) then incr reprocessed;
    if u < n_stmts then process u else process_node (u - n_stmts);
    if profiling then monitor u
  in
  Obs.Span.with_ ~name:"sparse.drain" (fun () ->
      (match warm with
      | None ->
        for g = 0 to n_stmts - 1 do
          push g
        done
      | Some w -> List.iter push w.w_units);
      match scheduler with
      | Fifo ->
        while not (Queue.is_empty queue) do
          step (Queue.pop queue)
        done
      | Priority ->
        let continue = ref true in
        while !continue do
          match Heap.pop_item heap with
          | Some u -> step u
          | None -> continue := false
        done);
  t.growth <- !facts;
  Obs.Metrics.(add (counter "sparse.propagations") t.iterations);
  Obs.Metrics.(add (counter "sparse.reprocessed") !reprocessed);
  Obs.Metrics.(add (counter "sparse.strong_updates") t.strong_updates);
  Obs.Metrics.(add (counter "sparse.weak_updates") t.weak_updates);
  Obs.Metrics.(set_max (gauge "sparse.worklist_peak") !peak);
  Obs.Metrics.(set (gauge "sparse.pts_entries") (pts_entries t));
  let memo_hits1, memo_misses1 = Iset.union_memo_stats () in
  Obs.Metrics.(add (counter "iset.union_memo_hits") (memo_hits1 - memo_hits0));
  Obs.Metrics.(add (counter "iset.union_memo_misses") (memo_misses1 - memo_misses0));
  Obs.Metrics.(set (gauge "iset.live_nodes") (Iset.live_nodes ()));
  Obs.Metrics.(set_max (gauge "heap.top_words") (Gc.quick_stat ()).Gc.top_heap_words);
  (* points-to set size distribution over all non-empty locations *)
  let histo = Obs.Metrics.histogram "sparse.pts_set_size" in
  Array.iter
    (fun s -> if not (Iset.is_empty s) then Obs.Metrics.observe histo (Iset.cardinal s))
    t.ptv;
  Hashtbl.iter
    (fun _ s -> if not (Iset.is_empty s) then Obs.Metrics.observe histo (Iset.cardinal s))
    t.pto;
  t

let pp_stats ppf t =
  Format.fprintf ppf "sparse: %d iterations, %d pts entries" t.iterations (pts_entries t)
