open Fsam_dsa
open Fsam_ir
module A = Fsam_andersen.Solver
module Svfg = Fsam_memssa.Svfg
module Obs = Fsam_obs

type t = {
  prog : Prog.t;
  svfg : Svfg.t;
  ptv : Iset.t array;
  pto : (int * int, Iset.t) Hashtbl.t; (* (svfg node, obj) -> contents *)
  mutable iterations : int;
  mutable strong_updates : int; (* store-processing events that killed *)
  mutable weak_updates : int;
}

let pt_top t v = t.ptv.(v)

let pto_get t node o = Option.value ~default:Iset.empty (Hashtbl.find_opt t.pto (node, o))

let pt_at_store t gid o =
  match Svfg.node_id t.svfg (Svfg.Stmt_node gid) with
  | Some n -> pto_get t n o
  | None -> Iset.empty

let pt_obj_anywhere t o =
  Hashtbl.fold (fun (_, o') s acc -> if o' = o then Iset.union acc s else acc) t.pto Iset.empty

let n_iterations t = t.iterations
let n_strong_updates t = t.strong_updates
let n_weak_updates t = t.weak_updates

let pts_entries t =
  Array.fold_left (fun acc s -> acc + Iset.cardinal s) 0 t.ptv
  + Hashtbl.fold (fun _ s acc -> acc + Iset.cardinal s) t.pto 0

let solve prog ast svfg ~singleton =
  let n_stmts = Prog.n_stmts prog in
  let t =
    {
      prog;
      svfg;
      ptv = Array.make (Prog.n_vars prog) Iset.empty;
      pto = Hashtbl.create 4096;
      iterations = 0;
      strong_updates = 0;
      weak_updates = 0;
    }
  in
  (* Work units: statement gids, then non-statement SVFG nodes. *)
  let unit_of_node n =
    match Svfg.node svfg n with Svfg.Stmt_node g -> g | _ -> n_stmts + n
  in
  let n_units = n_stmts + Svfg.n_nodes svfg in
  let queue = Queue.create () in
  let queued = Bitvec.create ~capacity:n_units () in
  let peak = ref 0 in
  let push u =
    if Bitvec.set_if_unset queued u then begin
      Queue.add u queue;
      let depth = Queue.length queue in
      if depth > !peak then peak := depth
    end
  in
  (* var -> statements to reprocess when its points-to set grows *)
  let var_users = Array.make (Prog.n_vars prog) [] in
  Obs.Span.with_ ~name:"sparse.index" (fun () ->
      Prog.iter_funcs prog (fun f ->
          Func.iter_stmts f (fun i s ->
              let gid = Prog.gid prog ~fid:f.Func.fid ~idx:i in
              List.iter (fun v -> var_users.(v) <- gid :: var_users.(v)) (Stmt.uses s);
              (* a call's result depends on the callees' returned variables *)
              match s with
              | Stmt.Call { ret = Some _; _ } ->
                List.iter
                  (fun callee ->
                    List.iter
                      (fun rv -> var_users.(rv) <- gid :: var_users.(rv))
                      (A.ret_vars ast callee))
                  (A.callees ast ~fid:f.Func.fid ~idx:i)
              | _ -> ())));
  let add_var v set =
    let u = Iset.union t.ptv.(v) set in
    if not (u == t.ptv.(v)) then begin
      t.ptv.(v) <- u;
      List.iter push var_users.(v)
    end
  in
  let add_obj node o set =
    let cur = pto_get t node o in
    let u = Iset.union cur set in
    if not (u == cur) then begin
      Hashtbl.replace t.pto (node, o) u;
      List.iter
        (fun (o', dst) -> if o' = o then push (unit_of_node dst))
        (Svfg.o_succs svfg node)
    end
  in
  let stmt_node gid = Svfg.node_id svfg (Svfg.Stmt_node gid) in
  let bind_call gid fid idx args ret =
    List.iter
      (fun callee ->
        let f = Prog.func prog callee in
        let rec go args params =
          match (args, params) with
          | a :: args, p :: params ->
            add_var p t.ptv.(a);
            go args params
          | _ -> ()
        in
        go args f.Func.params;
        match ret with
        | Some r -> List.iter (fun rv -> add_var r t.ptv.(rv)) (A.ret_vars ast callee)
        | None -> ())
      (A.callees ast ~fid ~idx);
    ignore gid
  in
  let process gid =
    let fid, idx = Prog.of_gid prog gid in
    match Prog.stmt_at prog gid with
    | Stmt.Addr_of { dst; obj } -> add_var dst (Iset.singleton obj)
    | Stmt.Copy { dst; src } -> add_var dst t.ptv.(src)
    | Stmt.Phi { dst; srcs } -> List.iter (fun s -> add_var dst t.ptv.(s)) srcs
    | Stmt.Gep { dst; src; field } ->
      Iset.iter
        (fun o ->
          let info = Prog.obj prog o in
          if not (Fsam_ir.Memobj.is_function info || Fsam_ir.Memobj.is_thread info) then
            add_var dst (Iset.singleton (Prog.field_obj prog ~base:o ~field)))
        t.ptv.(src)
    | Stmt.Load { dst; src } -> (
      match stmt_node gid with
      | None -> ()
      | Some node ->
        let pts = t.ptv.(src) in
        List.iter
          (fun (o, d) -> if Iset.mem o pts then add_var dst (pto_get t d o))
          (Svfg.o_preds svfg node))
    | Stmt.Store { dst; src } -> (
      match stmt_node gid with
      | None -> ()
      | Some node ->
        let targets = t.ptv.(dst) in
        Iset.iter (fun o -> add_obj node o t.ptv.(src)) targets;
        (* kill(s, p) of Figure 10. One deviation: the paper kills everything
           when pt(p) = ∅ (a C null store is undefined behaviour); our IR
           defines a null store as a no-op, so incoming values pass
           through — anything else would be unsound against the
           interpreter's semantics. *)
        let killed o =
          match Iset.elements targets with
          | [] -> false
          | [ o' ] ->
            o = o' && singleton o' && not (Iset.mem o' (Svfg.racy_objs svfg gid))
          | _ -> false
        in
        List.iter
          (fun (o, d) ->
            if killed o then t.strong_updates <- t.strong_updates + 1
            else begin
              t.weak_updates <- t.weak_updates + 1;
              add_obj node o (pto_get t d o)
            end)
          (Svfg.o_preds svfg node))
    | Stmt.Call { args; ret; _ } -> bind_call gid fid idx args ret
    | Stmt.Fork { handle; args; fork_id; _ } -> (
      bind_call gid fid idx args None;
      match (handle, stmt_node gid) with
      | Some h, Some node ->
        let theta = Prog.thread_obj_of_fork prog fork_id in
        Iset.iter (fun o -> add_obj node o (Iset.singleton theta)) t.ptv.(h);
        (* weak: old handle contents survive *)
        List.iter (fun (o, d) -> add_obj node o (pto_get t d o)) (Svfg.o_preds svfg node)
      | _ -> ())
    | Stmt.Return _ | Stmt.Join _ | Stmt.Lock _ | Stmt.Unlock _ | Stmt.Nop _ -> ()
  in
  let process_node n =
    (* pure merge nodes: one object each *)
    let o =
      match Svfg.node svfg n with
      | Svfg.Formal_in (_, o) | Svfg.Formal_out (_, o) | Svfg.Call_chi (_, o) -> o
      | Svfg.Stmt_node _ -> assert false
    in
    List.iter (fun (o', d) -> if o' = o then add_obj n o (pto_get t d o)) (Svfg.o_preds svfg n)
  in
  (* worklist drain, including the strong/weak update loop inside stores *)
  Obs.Span.with_ ~name:"sparse.drain" (fun () ->
      for g = 0 to n_stmts - 1 do
        push g
      done;
      while not (Queue.is_empty queue) do
        let u = Queue.pop queue in
        Bitvec.clear queued u;
        t.iterations <- t.iterations + 1;
        if u < n_stmts then process u else process_node (u - n_stmts)
      done);
  Obs.Metrics.(add (counter "sparse.propagations") t.iterations);
  Obs.Metrics.(add (counter "sparse.strong_updates") t.strong_updates);
  Obs.Metrics.(add (counter "sparse.weak_updates") t.weak_updates);
  Obs.Metrics.(set_max (gauge "sparse.worklist_peak") !peak);
  Obs.Metrics.(set (gauge "sparse.pts_entries") (pts_entries t));
  (* points-to set size distribution over all non-empty locations *)
  let histo = Obs.Metrics.histogram "sparse.pts_set_size" in
  Array.iter
    (fun s -> if not (Iset.is_empty s) then Obs.Metrics.observe histo (Iset.cardinal s))
    t.ptv;
  Hashtbl.iter
    (fun _ s -> if not (Iset.is_empty s) then Obs.Metrics.observe histo (Iset.cardinal s))
    t.pto;
  t

let pp_stats ppf t =
  Format.fprintf ppf "sparse: %d iterations, %d pts entries" t.iterations (pts_entries t)
