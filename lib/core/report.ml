open Fsam_ir
module Mta = Fsam_mta

type t = {
  r_stmts : int;
  r_funcs : int;
  r_vars : int;
  r_objs : int;
  r_andersen_iters : int;
  r_andersen_facts : int;
  r_reachable_funcs : int;
  r_threads : int;
  r_multi_forked : int;
  r_instances : int;
  r_handled_join_insts : int;
  r_mhp_iters : int;
  r_mhp_facts : int;
  r_lock_spans : int;
  r_svfg_nodes : int;
  r_svfg_edges : int;
  r_thread_aware_edges : int;
  r_solver_iters : int;
  r_pts_facts : int;
  r_strong_updates : int;
  r_weak_updates : int;
  r_races : int;
  r_deadlocks : int;
  r_instrumented : int;
  r_accesses : int;
  r_times : Driver.phase_times;
}

let build (d : Driver.t) =
  let tm = d.Driver.tm in
  let multi = ref 0 in
  for t = 0 to Mta.Threads.n_threads tm - 1 do
    if Mta.Threads.is_multi tm t then incr multi
  done;
  let handled = ref 0 in
  for i = 0 to Mta.Threads.n_insts tm - 1 do
    if Mta.Threads.join_kills tm i <> [] then incr handled
  done;
  let races = List.length (Races.detect d) in
  let deadlocks = List.length (Deadlocks.detect d) in
  let instr = Instrument.analyze d in
  {
    r_stmts = Prog.n_stmts d.Driver.prog;
    r_funcs = Prog.n_funcs d.Driver.prog;
    r_vars = Prog.n_vars d.Driver.prog;
    r_objs = Prog.n_objs d.Driver.prog;
    r_andersen_iters = Fsam_andersen.Solver.n_solver_iterations d.Driver.ast;
    r_andersen_facts = Fsam_andersen.Solver.total_pts_size d.Driver.ast;
    r_reachable_funcs =
      Fsam_dsa.Bitvec.cardinal (Fsam_andersen.Solver.reachable_funcs d.Driver.ast);
    r_threads = Mta.Threads.n_threads tm;
    r_multi_forked = !multi;
    r_instances = Mta.Threads.n_insts tm;
    r_handled_join_insts = !handled;
    r_mhp_iters = Mta.Mhp.n_iterations d.Driver.mhp;
    r_mhp_facts = Mta.Mhp.total_fact_size d.Driver.mhp;
    r_lock_spans = Mta.Locks.n_spans d.Driver.locks;
    r_svfg_nodes = Fsam_memssa.Svfg.n_nodes d.Driver.svfg;
    r_svfg_edges = Fsam_memssa.Svfg.n_edges d.Driver.svfg;
    r_thread_aware_edges = Fsam_memssa.Svfg.n_thread_aware_edges d.Driver.svfg;
    r_solver_iters = Sparse.n_iterations d.Driver.sparse;
    r_pts_facts = Sparse.pts_entries d.Driver.sparse;
    r_strong_updates = Sparse.n_strong_updates d.Driver.sparse;
    r_weak_updates = Sparse.n_weak_updates d.Driver.sparse;
    r_races = races;
    r_deadlocks = deadlocks;
    r_instrumented = instr.Instrument.instrumented;
    r_accesses = instr.Instrument.total_accesses;
    r_times = d.Driver.times;
  }

let to_json r =
  let module J = Fsam_obs.Json in
  let t = r.r_times in
  J.Obj
    [
      ( "program",
        J.Obj
          [
            ("stmts", J.Int r.r_stmts);
            ("funcs", J.Int r.r_funcs);
            ("vars", J.Int r.r_vars);
            ("objs", J.Int r.r_objs);
          ] );
      ( "pre_analysis",
        J.Obj
          [
            ("iterations", J.Int r.r_andersen_iters);
            ("facts", J.Int r.r_andersen_facts);
            ("reachable_funcs", J.Int r.r_reachable_funcs);
          ] );
      ( "thread_model",
        J.Obj
          [
            ("threads", J.Int r.r_threads);
            ("multi_forked", J.Int r.r_multi_forked);
            ("instances", J.Int r.r_instances);
            ("handled_join_insts", J.Int r.r_handled_join_insts);
          ] );
      ( "interleaving",
        J.Obj [ ("iterations", J.Int r.r_mhp_iters); ("facts", J.Int r.r_mhp_facts) ] );
      ("lock_analysis", J.Obj [ ("spans", J.Int r.r_lock_spans) ]);
      ( "def_use_graph",
        J.Obj
          [
            ("nodes", J.Int r.r_svfg_nodes);
            ("edges", J.Int r.r_svfg_edges);
            ("thread_aware_edges", J.Int r.r_thread_aware_edges);
          ] );
      ( "sparse_solve",
        J.Obj
          [
            ("iterations", J.Int r.r_solver_iters);
            ("facts", J.Int r.r_pts_facts);
            ("strong_updates", J.Int r.r_strong_updates);
            ("weak_updates", J.Int r.r_weak_updates);
          ] );
      ( "clients",
        J.Obj
          [
            ("races", J.Int r.r_races);
            ("deadlocks", J.Int r.r_deadlocks);
            ("instrumented_accesses", J.Int r.r_instrumented);
            ("total_accesses", J.Int r.r_accesses);
          ] );
      ( "phase_seconds",
        J.Obj
          [
            ("pre", J.Float t.Driver.t_pre);
            ("thread_model", J.Float t.Driver.t_thread_model);
            ("interleaving", J.Float t.Driver.t_interleaving);
            ("lock", J.Float t.Driver.t_lock);
            ("svfg", J.Float t.Driver.t_svfg);
            ("solve", J.Float t.Driver.t_solve);
          ] );
    ]

let pp ppf r =
  let t = r.r_times in
  Format.fprintf ppf
    "@[<v>program:        %d statements, %d functions, %d variables, %d objects@,\
     pre-analysis:   %d iterations, %d facts, %d reachable functions (%.3fs)@,\
     thread model:   %d threads (%d multi-forked), %d statement instances, %d \
     join/exit kill points (%.3fs)@,\
     interleaving:   %d iterations, %d interference facts (%.3fs)@,\
     lock analysis:  %d lock-release spans (%.3fs)@,\
     def-use graph:  %d nodes, %d edges (%d thread-aware) (%.3fs)@,\
     sparse solve:   %d iterations, %d facts, %d strong / %d weak update events \
     (%.3fs)@,\
     clients:        %d races, %d deadlocks, %d/%d accesses need race \
     instrumentation@]"
    r.r_stmts r.r_funcs r.r_vars r.r_objs r.r_andersen_iters r.r_andersen_facts
    r.r_reachable_funcs t.Driver.t_pre r.r_threads r.r_multi_forked r.r_instances
    r.r_handled_join_insts t.Driver.t_thread_model r.r_mhp_iters r.r_mhp_facts
    t.Driver.t_interleaving r.r_lock_spans t.Driver.t_lock r.r_svfg_nodes r.r_svfg_edges
    r.r_thread_aware_edges t.Driver.t_svfg r.r_solver_iters r.r_pts_facts
    r.r_strong_updates r.r_weak_updates t.Driver.t_solve r.r_races r.r_deadlocks
    r.r_instrumented r.r_accesses
