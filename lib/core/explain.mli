open Fsam_ir

(** Walks the derivations recorded by [Fsam_prov] into bounded,
    human-readable (and JSON) justification chains, and assembles the race
    witnesses shipped by [Report]/[Telemetry].

    Every query here is read-only over a finished {!Driver.t}; queries that
    need recorded provenance return [None] (or {!Unrecorded}) when the run
    was made with [config.provenance = false]. All output is deterministic —
    independent of [config.jobs] — because the recorder itself is. *)

(* Points-to derivation chains -------------------------------------------- *)

type site =
  | At_var of Stmt.var  (** top-level pt(v) in the sparse solution *)
  | At_mem of { node : int; cont : int }
      (** contents of container object [cont] at SVFG node [node] *)
  | At_avar of int  (** Andersen constraint-graph node *)

type step = {
  site : site;
  obj : int;  (** the fact: [obj] is in the points-to set at [site] *)
  tag : int;  (** [Fsam_prov] reason tag; [0] when unrecorded *)
  x : int;
  y : int;
  z : int;
}

val why_pt : ?max_depth:int -> Driver.t -> Stmt.var -> Stmt.obj -> step list option
(** Why does the sparse solution have [o] in pt(v)? The chain starts at the
    queried fact and walks backwards through copies, loads, SVFG edges and
    stores until a base event (address-of, field materialisation, fork
    theta) or [max_depth] (default 64). [None] when provenance is off or
    the fact does not hold. Observes the [prov.chain_len] and
    [prov.explain_cost_us] histograms. *)

val why_pt_andersen : ?max_depth:int -> Driver.t -> Stmt.var -> Stmt.obj -> step list option
(** Same question against the Andersen pre-analysis: the chain of inclusion
    edges (and cycle merges) that introduced the target. *)

val replay : Driver.t -> step list -> bool
(** Differential check: every step's fact holds in the final solution and
    every recorded base event matches the program text. The chain returned
    by {!why_pt} / {!why_pt_andersen} for a true fact must replay. *)

(* MHP justifications ----------------------------------------------------- *)

type mhp_reason =
  | Same_thread of int
      (** one multi-forked thread may run both statement instances *)
  | Ancestor_descendant of { anc : int; desc : int }
  | Sibling of { t1 : int; t2 : int }
      (** unordered siblings ([T-SIBLING] without happens-before) *)

type mhp_just = {
  j_gids : int * int;
  j_insts : int * int;  (** witness instance pair *)
  j_threads : int * int;
  j_reason : mhp_reason;
  j_chains : (int * int option) list * (int * int option) list;
      (** fork chains (thread, creating fork gid) from main for both sides *)
}

val why_mhp : Driver.t -> int -> int -> mhp_just option
(** Why may the two statement gids happen in parallel? [None] when they may
    not. Works without recorded provenance (the thread model is retained in
    full); deterministic via [Mhp.witness_pair]. *)

(* [THREAD-VF] edge verdicts ---------------------------------------------- *)

type edge_verdict =
  | Kept of { unprotected : bool; winsts : (int * int) option }
      (** edge added; [unprotected] marks the racy (no common lock) case *)
  | Filtered_lock of {
      insts : int * int;
      spans : int * int;
      store_not_tail : bool;
      load_not_head : bool;
    }  (** Definition 6 non-interference justified by the span pair *)
  | Skipped_mhp  (** the statements never happen in parallel *)
  | Unrecorded

val why_edge : Driver.t -> store:int -> obj:int -> access:int -> edge_verdict
(** Verdict recorded for the candidate [THREAD-VF] pair. *)

val store_update : Driver.t -> int -> [ `Strong of int | `Weak ] option
(** Final strong/weak verdict recorded for the store gid ([`Strong killed]
    carries the killed object). *)

(* Race witnesses --------------------------------------------------------- *)

type witness = {
  w_obj : int;
  w_store : int;
  w_access : int;
  w_both_writes : bool;
  w_insts : int * int;
  w_ctxs : int list * int list;  (** calling contexts (callsite gids) *)
  w_threads : int * int;
  w_mhp : mhp_just;
  w_locks : int list * int list;  (** held lock objects at each instance *)
  w_path : step list;  (** recorded value-flow path to the shared object *)
}

val witness : Driver.t -> Races.race -> witness option
(** Assemble the full witness for a detected race: the two accesses with
    contexts, the fork chain proving MHP, the held lock sets and the
    recorded value-flow path showing how the store reaches the object.
    [None] only when provenance is off. Observes [prov.witness_path_len]. *)

(* Rendering -------------------------------------------------------------- *)

val pp_chain : Driver.t -> Format.formatter -> step list -> unit
val chain_json : Driver.t -> step list -> Fsam_obs.Json.t
val pp_mhp : Driver.t -> Format.formatter -> mhp_just -> unit
val mhp_json : Driver.t -> mhp_just -> Fsam_obs.Json.t
val pp_edge_verdict : Driver.t -> Format.formatter -> edge_verdict -> unit
val edge_verdict_json : Driver.t -> edge_verdict -> Fsam_obs.Json.t
val pp_witness : Driver.t -> Format.formatter -> witness -> unit
val witness_json : Driver.t -> witness -> Fsam_obs.Json.t
