module Obs = Fsam_obs
module J = Obs.Json

let schema = "fsam.telemetry/1"

let spans_json () = J.List (List.map Obs.Span.to_json (Obs.Span.roots ()))

let analysis_json ~program ~engine ~config ~wall_seconds ~cpu_seconds ~live_mb ?report ()
    =
  J.Obj
    ([
       ("schema", J.String schema);
       ("program", J.String program);
       ("engine", J.String engine);
       ("config", J.String config);
       ( "measure",
         J.Obj
           [
             ("wall_seconds", J.Float wall_seconds);
             ("cpu_seconds", J.Float cpu_seconds);
             ("live_mb", J.Float live_mb);
           ] );
     ]
    @ (match report with Some r -> [ ("report", Report.to_json r) ] | None -> [])
    @ [ ("metrics", Obs.Metrics.to_json ()); ("spans", spans_json ()) ])

let races_json d races =
  J.Obj
    [
      ("schema", J.String schema);
      ("engine", J.String "fsam");
      ("n_races", J.Int (List.length races));
      ( "races",
        J.List
          (List.map
             (fun r -> J.String (Format.asprintf "%a" (Races.pp_race d) r))
             races) );
      ("metrics", Obs.Metrics.to_json ());
      ("spans", spans_json ());
    ]

let write_json path j =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () -> J.to_channel oc j)

let write_trace path = Obs.Trace.write path (Obs.Span.roots ())
