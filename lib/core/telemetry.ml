module Obs = Fsam_obs
module J = Obs.Json

let schema = "fsam.telemetry/1"

let spans_json () = J.List (List.map Obs.Span.to_json (Obs.Span.roots ()))

let analysis_json ~program ~engine ~config ~wall_seconds ~cpu_seconds ~live_mb ?report ()
    =
  J.Obj
    ([
       ("schema", J.String schema);
       ("program", J.String program);
       ("engine", J.String engine);
       ("config", J.String config);
       ( "measure",
         J.Obj
           [
             ("wall_seconds", J.Float wall_seconds);
             ("cpu_seconds", J.Float cpu_seconds);
             ("live_mb", J.Float live_mb);
           ] );
     ]
    @ (match report with Some r -> [ ("report", Report.to_json r) ] | None -> [])
    (* additive: the profile section appears only when profiling ran, so
       the profiling-off document shape is unchanged *)
    @ (if Obs.Profile.enabled () then [ ("profile", Obs.Profile.to_json ()) ] else [])
    @ [ ("metrics", Obs.Metrics.to_json ()); ("spans", spans_json ()) ])

let races_json d races =
  (* The provenance-off shape (plain strings) is kept byte-identical; with
     provenance on, each entry becomes an object carrying the full witness. *)
  let race_json r =
    let text = J.String (Format.asprintf "%a" (Races.pp_race d) r) in
    match Explain.witness d r with
    | None -> text
    | Some w -> J.Obj [ ("text", text); ("witness", Explain.witness_json d w) ]
  in
  J.Obj
    [
      ("schema", J.String schema);
      ("engine", J.String "fsam");
      ("n_races", J.Int (List.length races));
      ("races", J.List (List.map race_json races));
      ("metrics", Obs.Metrics.to_json ());
      ("spans", spans_json ());
    ]

let write_json path j =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () -> J.to_channel oc j)

let write_trace path =
  Obs.Trace.write ~timelines:(Obs.Timeline.collected ()) path (Obs.Span.roots ())

(* Crash flush mirroring [Obs.Trace.flush_at_exit]: an aborted run still
   leaves a telemetry document marked ["partial"] with whatever metrics and
   (possibly still-open) spans existed at death. *)
let pending : string option ref = ref None
let registered = ref false

let flush_now () =
  match !pending with
  | None -> ()
  | Some path ->
    pending := None;
    let doc =
      J.Obj
        ([
           ("schema", J.String schema);
           ("partial", J.Bool true);
           ("metrics", Obs.Metrics.to_json ());
           ("spans", J.List (List.map Obs.Span.to_json (Obs.Span.snapshot ())));
         ]
        (* a crashing daemon leaves its last-N requests on disk, not just
           the partial trace *)
        @
        match Obs.Flight.current () with
        | Some f when Obs.Flight.recorded f > 0 -> [ ("flight", Obs.Flight.to_json f) ]
        | _ -> [])
    in
    (try write_json path doc with Sys_error _ -> ())

let flush_at_exit path =
  pending := Some path;
  if not !registered then begin
    registered := true;
    at_exit flush_now
  end

let mark_flushed () = pending := None
let armed () = Option.is_some !pending
