open Fsam_dsa
open Fsam_ir
module Mta = Fsam_mta

type finding = Never_freed of int | Double_free of int * int * int

let is_free_call prog = function
  | Stmt.Call { target = Stmt.Direct fid; args = [ _ ]; _ } ->
    (Prog.func prog fid).Func.fname = "free"
  | _ -> false

(* A single free site can fire more than once when it sits in a CFG cycle of
   its own function, or when the thread executing it is multi-forked
   (Definition 1): a [free] in the body of a loop-forked thread runs once
   per runtime thread instance even though no intra-procedural cycle
   contains it. *)
let repeats d g =
  Mta.Icfg.in_cfg_cycle d.Driver.icfg g
  || List.exists
       (fun iid -> Mta.Threads.is_multi d.Driver.tm (Mta.Threads.inst d.Driver.tm iid).Mta.Threads.i_thread)
       (Mta.Threads.insts_of_gid d.Driver.tm g)

let detect ?(jobs = 1) d =
  let prog = d.Driver.prog in
  (* free sites and the heap objects they may release *)
  let free_sites = ref [] in
  Prog.iter_stmts prog (fun gid _ s ->
      if is_free_call prog s then
        match s with
        | Stmt.Call { args = [ a ]; _ } ->
          let heap_targets =
            Iset.filter
              (fun o -> Memobj.is_heap (Prog.obj prog o))
              (Sparse.pt_top d.Driver.sparse a)
          in
          free_sites := (gid, heap_targets) :: !free_sites
        | _ -> ());
  let sites = Array.of_list (List.rev !free_sites) in
  let freed = Array.fold_left (fun acc (_, s) -> Iset.union acc s) Iset.empty sites in
  let findings = ref [] in
  (* never freed: heap objects that appear in some pointer's points-to set
     (i.e. were actually allocated on a reachable path per the analysis) *)
  let live_heap = ref Iset.empty in
  Prog.iter_stmts prog (fun _ _ s ->
      match s with
      | Stmt.Addr_of { obj; _ } when Memobj.is_heap (Prog.obj prog obj) ->
        live_heap := Iset.add obj !live_heap
      | _ -> ());
  Iset.iter
    (fun o -> if not (Iset.mem o freed) then findings := Never_freed o :: !findings)
    !live_heap;
  (* double free: two distinct free sites may release the same object, or a
     single site that can execute repeatedly *)
  let chunks =
    (* triangular pair scan: site [i] probes the [n - i - 1] sites after it *)
    Fsam_par.run_chunks ~label:"leaks"
      ~weight:(fun i -> Array.length sites - i)
      ~jobs ~n:(Array.length sites) (fun ~lo ~hi ->
        let acc = ref [] in
        for i = lo to hi - 1 do
          let g1, s1 = sites.(i) in
          for j = i + 1 to Array.length sites - 1 do
            let g2, s2 = sites.(j) in
            Iset.iter (fun o -> if Iset.mem o s2 then acc := Double_free (o, g1, g2) :: !acc) s1
          done;
          if repeats d g1 then Iset.iter (fun o -> acc := Double_free (o, g1, g1) :: !acc) s1
        done;
        !acc)
  in
  List.sort_uniq compare (!findings @ List.concat chunks)

let pp_finding d ppf = function
  | Never_freed o ->
    Format.fprintf ppf "leak: %s is never freed" (Prog.obj_name d.Driver.prog o)
  | Double_free (o, g1, g2) ->
    Format.fprintf ppf "double free of %s (gids %d, %d)" (Prog.obj_name d.Driver.prog o) g1 g2
