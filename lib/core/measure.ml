type 'a measured = {
  value : 'a;
  wall_seconds : float;
  cpu_seconds : float;
  live_mb : float;
}

let word_bytes = Sys.word_size / 8
let words_to_mb w = float_of_int (w * word_bytes) /. (1024. *. 1024.)

let live_words () =
  Gc.full_major ();
  (Gc.stat ()).Gc.live_words

let run f =
  let before = live_words () in
  let w0 = Unix.gettimeofday () in
  let c0 = Sys.time () in
  let value = f () in
  let cpu_seconds = Sys.time () -. c0 in
  let wall_seconds = Unix.gettimeofday () -. w0 in
  let after = live_words () in
  { value; wall_seconds; cpu_seconds; live_mb = words_to_mb (max 0 (after - before)) }
