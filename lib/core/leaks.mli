(** A never-freed memory-leak client in the spirit of the full-sparse
    value-flow leak detection the paper lists among FSAM's client analyses
    (Sui et al., ISSTA'12 [28]).

    A heap allocation site {e leaks} when no [free] call may receive a
    pointer to it — per the flow-sensitive points-to results, so FSAM's
    precision prunes false "freed" verdicts that flow-insensitive
    reasoning would give. A site is {e double-freed} when two different
    free sites may both release it, or one site can execute repeatedly —
    because it sits in a CFG cycle, or because its thread is multi-forked
    (a [free] in a loop-forked thread body runs once per thread instance).
    [free] is recognised by callee name, matching the MiniC frontend's
    treatment of allocation ([malloc]) by intrinsic name. *)

type finding = Never_freed of int | Double_free of int * int * int
(** [Never_freed heap_obj]; [Double_free (heap_obj, gid1, gid2)]. *)

val detect : ?jobs:int -> Driver.t -> finding list
(** Sorted, deduplicated. [jobs] (default 1) fans the quadratic site×site
    pass out over that many domains; the findings are identical for every
    [jobs] value. *)

val pp_finding : Driver.t -> Format.formatter -> finding -> unit
(** Human-readable rendering, as printed by [fsam leaks]. *)
