(** A lock-order-cycle deadlock detector built on FSAM's thread analyses —
    one of the client analyses the paper's conclusion proposes (citing
    Gadara [30]).

    A {e lock-order edge} [l -> l'] is recorded when a lock site acquiring
    [l'] executes inside a lock-release span of [l]. A potential deadlock is
    a pair of opposite edges [l -> l'] and [l' -> l] whose acquisition
    instances may happen in parallel. *)

type deadlock = {
  lock_a : int;  (** lock object *)
  lock_b : int;
  site_ab : int;  (** gid acquiring [lock_b] while holding [lock_a] *)
  site_ba : int;  (** gid acquiring [lock_a] while holding [lock_b] *)
}

val detect : ?jobs:int -> Driver.t -> deadlock list
(** Sorted, deduplicated. [jobs] (default 1) fans the quadratic edge×edge
    pass out over that many domains; the findings are identical for every
    [jobs] value. *)

val pp_deadlock : Driver.t -> Format.formatter -> deadlock -> unit
(** Human-readable rendering, as printed by [fsam deadlocks]. *)
