(** Machine-readable telemetry export: bundles the full report, the metrics
    registry and the span tree of the last analysis run into one JSON
    document (schema ["fsam.telemetry/1"]), and the span tree alone into a
    Chrome [trace_event] file that opens in [chrome://tracing] / Perfetto.
    Backs the CLI's [--json] / [--trace] flags. *)

val analysis_json :
  program:string ->
  engine:string ->
  config:string ->
  wall_seconds:float ->
  cpu_seconds:float ->
  live_mb:float ->
  ?report:Report.t ->
  unit ->
  Fsam_obs.Json.t
(** Assemble the telemetry document from the current [Fsam_obs] state (the
    spans and metrics of the last [Driver.run]-style call). [report] is
    present for the FSAM engine, absent for andersen/nonsparse runs. *)

val races_json : Driver.t -> Races.race list -> Fsam_obs.Json.t
(** Telemetry document for [fsam races]: the findings (rendered with
    [Races.pp_race]) plus metrics and spans. When the run recorded
    provenance, each race entry additionally carries its full
    {!Explain.witness} (accesses with contexts, fork chains, held locks,
    recorded value-flow path); without provenance the document is
    byte-identical to previous releases. *)

val write_json : string -> Fsam_obs.Json.t -> unit
(** Write a JSON document to a file (pretty-printed, trailing newline). *)

val write_trace : string -> unit
(** Write the current span forest as a Chrome trace_event file. *)

val flush_at_exit : string -> unit
(** Arm a crash flush for the telemetry document: on process exit (normal,
    [exit], or uncaught exception) a partial document — [{"partial": true}]
    plus the metrics registry and [Fsam_obs.Span.snapshot] — is written to
    the path unless {!mark_flushed} disarmed it first. *)

val mark_flushed : unit -> unit
(** Disarm the telemetry crash flush after a successful normal export. *)

val flush_now : unit -> unit
(** Run the armed flush immediately and disarm (no-op when disarmed);
    exposed for tests. *)

val armed : unit -> bool
(** Whether the telemetry crash flush is currently armed. See
    {!Fsam_obs.Trace.armed}. *)
