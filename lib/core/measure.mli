(** Timing and memory measurement for the benchmark harness. Time is
    reported both as wall-clock ([Unix.gettimeofday]) and CPU time
    ([Sys.time]) — the two differ under GC pressure or system load, and
    conflating them is exactly what Table 2 comparisons must avoid. Memory
    is reported as the delta of live heap words across the measured
    computation (after a major collection), converted to MB — a faithful
    stand-in for the RSS numbers of the paper's Table 2 for {e relative}
    comparisons. *)

type 'a measured = {
  value : 'a;
  wall_seconds : float;  (** elapsed real time *)
  cpu_seconds : float;  (** process CPU time *)
  live_mb : float;
}

val run : (unit -> 'a) -> 'a measured
val words_to_mb : int -> float
