open Fsam_dsa
open Fsam_ir
module Mta = Fsam_mta
module Obs = Fsam_obs

type race = { store_gid : int; access_gid : int; obj : int; both_writes : bool }

(* Flow-sensitive access sets: for a store, the objects it may write is the
   solver's pt of its destination pointer; likewise for loads. *)
let accesses d gid =
  match Prog.stmt_at d.Driver.prog gid with
  | Stmt.Store { dst; _ } -> Some (true, Sparse.pt_top d.Driver.sparse dst)
  | Stmt.Load { src; _ } -> Some (false, Sparse.pt_top d.Driver.sparse src)
  | _ -> None

(* Whether every MHP instance pair of the two statements is covered by spans
   of a common lock. Depends only on the statement pair, not on which common
   object is being raced on — so callers query it once per pair, not once
   per object. *)
let protected d gid gid' =
  let pairs = Mta.Mhp.mhp_pairs_inst d.Driver.mhp gid gid' in
  pairs <> []
  && List.for_all (fun (i, j) -> Mta.Locks.commonly_protected d.Driver.locks i j) pairs

(* Per-chunk accumulator: the races found plus the tallies that become
   metrics after the fan-out joins (chunk functions must not touch the
   process-global metrics registry). [lock_queries_saved] counts the
   [protected] invocations the per-pair hoisting avoids versus the old
   per-object formulation: |common| - 1 for every MHP pair with a non-empty
   common object set. *)
type acc = { mutable races : race list; mutable lock_queries : int; mutable saved : int }

let detect ?(jobs = 1) d =
  let prog = d.Driver.prog in
  let stores = ref [] and loads = ref [] in
  Prog.iter_stmts prog (fun gid _ s ->
      match s with
      | Stmt.Store _ -> stores := gid :: !stores
      | Stmt.Load _ -> loads := gid :: !loads
      | _ -> ());
  let stores = Array.of_list (List.rev !stores) in
  let loads = List.rev !loads in
  let consider acc s a =
    match (accesses d s, accesses d a) with
    | Some (true, os), Some (w', os') ->
      let common = Iset.inter os os' in
      if (not (Iset.is_empty common)) && Mta.Mhp.mhp_stmt d.Driver.mhp s a then begin
        acc.lock_queries <- acc.lock_queries + 1;
        acc.saved <- acc.saved + Iset.cardinal common - 1;
        if not (protected d s a) then
          Iset.iter
            (fun o ->
              acc.races <-
                { store_gid = s; access_gid = a; obj = o; both_writes = w' } :: acc.races)
            common
      end
    | _ -> ()
  in
  (* Cost model for the adaptive fan-out, in probe units: every store scans
     all accesses (the flat quadratic term, ~16 scans per unit), and stores
     with fatter points-to sets hit the expensive common-object/MHP/lock
     path proportionally more often — their pt cardinality is the best
     static proxy for that skew. *)
  let n_accesses = Array.length stores + List.length loads in
  let weight i =
    match Prog.stmt_at prog stores.(i) with
    | Stmt.Store { dst; _ } ->
      ((n_accesses + 15) / 16) + Iset.cardinal (Sparse.pt_top d.Driver.sparse dst)
    | _ -> 1
  in
  let chunks =
    Fsam_par.run_chunks ~label:"races" ~weight ~jobs ~n:(Array.length stores)
      (fun ~lo ~hi ->
        let acc = { races = []; lock_queries = 0; saved = 0 } in
        for i = lo to hi - 1 do
          let s = stores.(i) in
          (* per-store timeline event: [a] = store gid, [b] = lock queries
             so far — attributes chunk imbalance to the dominant stores *)
          Obs.Timeline.emit ~kind:Obs.Timeline.k_item ~a:s ~b:acc.lock_queries;
          List.iter (fun a -> consider acc s a) loads;
          Array.iter (fun a -> if s <= a then consider acc s a) stores
        done;
        acc)
  in
  let lockq = List.fold_left (fun n a -> n + a.lock_queries) 0 chunks in
  let saved = List.fold_left (fun n a -> n + a.saved) 0 chunks in
  Obs.Metrics.(add (counter "races.lock_queries") lockq);
  Obs.Metrics.(add (counter "races.lock_queries_saved") saved);
  List.sort_uniq compare (List.concat_map (fun a -> a.races) chunks)

let pp_race d ppf r =
  let prog = d.Driver.prog in
  Format.fprintf ppf "race on %s: %a [w] || %a [%s]" (Prog.obj_name prog r.obj)
    (Prog.pp_stmt prog) (Prog.stmt_at prog r.store_gid) (Prog.pp_stmt prog)
    (Prog.stmt_at prog r.access_gid)
    (if r.both_writes then "w" else "r")
