(** A data-race detection client built on FSAM's results — the first client
    the paper's conclusion proposes. A race is a pair of statements that may
    happen in parallel, access a common abstract object (per the
    flow-sensitive points-to sets, so FSAM's precision directly prunes
    false positives), at least one of them a write, and not protected by a
    common lock. *)

type race = {
  store_gid : int;
  access_gid : int;
  obj : int;
  both_writes : bool;
}

val detect : ?jobs:int -> Driver.t -> race list
(** Deduplicated ([store_gid <= access_gid] for write-write pairs), sorted.

    [jobs] (default 1) fans the quadratic store×access pass out over that
    many domains via {!Fsam_par.run_chunks}; the report is identical for
    every [jobs] value. Records [races.lock_queries] (lock-coverage queries
    actually made, one per unprotected-candidate pair) and
    [races.lock_queries_saved] (queries avoided by hoisting the
    object-independent lock check out of the per-object loop). *)

val pp_race : Driver.t -> Format.formatter -> race -> unit
