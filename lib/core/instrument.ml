open Fsam_ir
module Mta = Fsam_mta
module Svfg = Fsam_memssa.Svfg

type report = { total_accesses : int; instrumented : int; reduction : float }
type sets = (int, unit) Hashtbl.t

(* An access must keep its dynamic check when it is one end of a surviving
   thread-aware def-use edge (an interfering MHP pair on a common object,
   not ruled out by the lock analysis), or a store marked racy. *)
let instrumented_set d =
  let svfg = d.Driver.svfg in
  let prog = d.Driver.prog in
  let need = Hashtbl.create 64 in
  Prog.iter_stmts prog (fun gid _ s ->
      match s with
      | Stmt.Store _ when not (Fsam_dsa.Iset.is_empty (Svfg.racy_objs svfg gid)) ->
        Hashtbl.replace need gid ()
      | _ -> ());
  (* ends of thread-aware edges *)
  Svfg.iter_nodes svfg (fun n node ->
      match node with
      | Svfg.Stmt_node gid ->
        List.iter
          (fun (o, m) ->
            match Svfg.node svfg m with
            | Svfg.Stmt_node gid' ->
              (* a thread-aware edge always connects two accesses of distinct
                 threads; conservatively treat any stmt-to-stmt o-edge whose
                 endpoints may happen in parallel as one *)
              if Mta.Mhp.mhp_stmt d.Driver.mhp gid gid' then begin
                Hashtbl.replace need gid ();
                Hashtbl.replace need gid' ()
              end;
              ignore o
            | _ -> ())
          (Svfg.o_succs svfg n)
      | _ -> ());
  need

(* One-entry memo keyed by physical equality: per-query callers
   ([must_instrument]) no longer rebuild the full set, and the cache stays
   bounded — at most one analysis result is retained, replaced as soon as a
   different driver value is queried. *)
let cache : (Driver.t * sets) option ref = ref None

let instrumented_sets d =
  match !cache with
  | Some (d0, s) when d0 == d -> s
  | _ ->
    let s = instrumented_set d in
    cache := Some (d, s);
    s

let must_instrument_in sets gid = Hashtbl.mem sets gid
let must_instrument d gid = must_instrument_in (instrumented_sets d) gid

let analyze d =
  let prog = d.Driver.prog in
  let need = instrumented_sets d in
  let total = ref 0 and kept = ref 0 in
  Prog.iter_stmts prog (fun gid _ s ->
      match s with
      | Stmt.Load _ | Stmt.Store _ ->
        incr total;
        if Hashtbl.mem need gid then incr kept
      | _ -> ());
  {
    total_accesses = !total;
    instrumented = !kept;
    reduction =
      (if !total = 0 then 0. else 1. -. (float_of_int !kept /. float_of_int !total));
  }
