open Fsam_ir

(** End-to-end FSAM driver (the pipeline of paper Figure 2): pre-analysis →
    thread-oblivious def-use → interleaving analysis → value-flow analysis →
    lock analysis → sparse flow-sensitive solve. *)

type config = {
  svfg : Fsam_memssa.Svfg.config;
  max_ctx_depth : int;
  nonsparse_budget : float;  (** seconds before NonSparse reports OOT *)
  scheduler : Sparse.scheduler;
      (** solve-loop iteration order; [Priority] (the default) schedules by
          SVFG-condensation rank, [Fifo] is the legacy queue — both reach
          the identical fixpoint *)
  jobs : int;
      (** domain count for the parallelisable passes (MHP sibling seeding
          and the SVFG's [THREAD-VF] pair discovery here; the CLI also
          hands it to the post-solve clients). [1] (the default) is the
          exact serial path; [0] means [Fsam_par.available_jobs ()].
          Results are identical for every value. *)
  provenance : bool;
      (** record derivation reasons for every points-to fact, SVFG edge and
          [THREAD-VF] pair verdict (see [Fsam_prov] and [Explain]). Default
          [false]; analysis results are byte-identical either way (including
          under [jobs]), and the disabled hot paths allocate nothing. *)
  profile : bool;
      (** enable the execution profiler: per-domain [Fsam_obs.Timeline]
          rings in the parallel regions, the [Sparse] convergence monitor,
          and per-domain gauges (see [Fsam_obs.Profile]). Default [false];
          purely observational — analysis results are byte-identical with
          it on or off, and the disabled path costs one atomic load per
          probe site. *)
}

val default_config : config
val no_interleaving : config  (** paper §4.3 configuration (1) *)

val no_value_flow : config  (** configuration (2) *)

val no_lock : config  (** configuration (3) *)

type phase_times = {
  t_pre : float;  (** Andersen + mod/ref *)
  t_thread_model : float;  (** ICFG + thread model *)
  t_interleaving : float;  (** MHP analysis *)
  t_lock : float;  (** lock-span analysis *)
  t_svfg : float;  (** def-use construction incl. value-flow phase *)
  t_solve : float;  (** singleton detection + sparse solve *)
}
(** Per-phase {e wall-clock} seconds (historically these were [Sys.time]
    CPU seconds). Each field is the duration of the matching [phase.*]
    span; the full span tree — with CPU time and allocation deltas — is
    available from [Fsam_obs.Span.roots] after [run] returns, and the
    benchmark harness reports CPU time separately via [Measure]. *)

type t = {
  prog : Prog.t;
  ast : Fsam_andersen.Solver.t;
  modref : Fsam_andersen.Modref.t;
  icfg : Fsam_mta.Icfg.t;
  tm : Fsam_mta.Threads.t;
  mhp : Fsam_mta.Mhp.t;
  locks : Fsam_mta.Locks.t;
  pcg : Fsam_mta.Pcg.t;
  svfg : Fsam_memssa.Svfg.t;
  sparse : Sparse.t;
  times : phase_times;
  prov : Fsam_prov.t option;
      (** the derivation recorder — [Some] iff [config.provenance] *)
}

val run : ?config:config -> Prog.t -> t
(** Runs the full FSAM pipeline. The program must be in partial SSA
    (checked). Resets [Fsam_obs] (spans and metrics) at entry; after it
    returns, the global span tree and metrics registry describe this run. *)

(** Per-phase warm-start hooks for the serve engine's incremental edit
    path: each hook may produce its phase's result from the previous
    generation ([None] = run the phase cold). Hooks execute inside the
    phase spans, so phase walls reflect the path actually taken. modref,
    pcg and singleton detection always recompute (cheap; and the reuse
    guards compare their old-vs-new summaries). *)
type warm_hooks = {
  wh_andersen : Prog.t -> Fsam_andersen.Solver.t option;
  wh_thread_model :
    Prog.t -> Fsam_andersen.Solver.t -> (Fsam_mta.Icfg.t * Fsam_mta.Threads.t) option;
  wh_mhp : Fsam_mta.Threads.t -> Fsam_mta.Mhp.t option;
  wh_locks :
    Prog.t -> Fsam_andersen.Solver.t -> Fsam_mta.Threads.t -> Fsam_mta.Locks.t option;
  wh_svfg :
    Prog.t ->
    Fsam_andersen.Solver.t ->
    Fsam_andersen.Modref.t ->
    Fsam_mta.Icfg.t ->
    Fsam_mta.Threads.t ->
    Fsam_mta.Mhp.t ->
    Fsam_mta.Locks.t ->
    Fsam_mta.Pcg.t ->
    Fsam_memssa.Svfg.t option;
}

val run_with_solve :
  ?config:config ->
  ?warm:warm_hooks ->
  solve:
    (prog:Prog.t ->
    ast:Fsam_andersen.Solver.t ->
    svfg:Fsam_memssa.Svfg.t ->
    singleton:(int -> bool) ->
    prov:Fsam_prov.t option ->
    scheduler:Sparse.scheduler ->
    Sparse.t) ->
  Prog.t ->
  t
(** [run] with the final sparse solve replaced by a caller-supplied hook,
    and optional warm-start hooks for the pre-phases. Without [?warm], all
    pre-phases (Andersen, thread model, MHP, locks, SVFG, singleton
    detection) run exactly as in [run]; the hook decides how to produce the
    [Sparse.t] — the incremental engine uses this to warm-start the solve
    from a previous generation's clean slice, and to retain the [singleton]
    predicate for the next edit's diff. [run] is this with
    [Sparse.solve]. *)

val run_nonsparse :
  ?config:config -> Prog.t -> Nonsparse.outcome * float
(** Runs the NonSparse baseline (pre-analysis + PCG + iterative data-flow);
    returns the outcome and the total wall-clock analysis time in seconds.
    Also resets and repopulates the [Fsam_obs] state. The OOT budget is
    still accounted in CPU time inside [Nonsparse.solve]. *)

(* Convenience queries ---------------------------------------------------- *)

val pt : t -> Stmt.var -> Fsam_dsa.Iset.t
val pt_names : t -> Stmt.var -> string list
(** Object names, sorted — convenient in tests and examples. *)

val alias : t -> Stmt.var -> Stmt.var -> bool
(** May the two pointers alias (flow-sensitive result)? *)

val total_time : t -> float
val memory_entries : t -> int
val pp_summary : Format.formatter -> t -> unit
