open Fsam_dsa
open Fsam_ir
module A = Fsam_andersen.Solver
module Mta = Fsam_mta

type t = {
  prog : Prog.t;
  ptv : Iset.t array;
  mem_in : (int, Iset.t) Hashtbl.t array; (* per gid: obj -> contents before *)
  mutable iterations : int;
}

type outcome = Done of t | Timeout of float

let pt_top t v = t.ptv.(v)

let pt_obj_at t gid o =
  Option.value ~default:Iset.empty (Hashtbl.find_opt t.mem_in.(gid) o)

let n_iterations t = t.iterations

let pts_entries t =
  Array.fold_left (fun acc s -> acc + Iset.cardinal s) 0 t.ptv
  + Array.fold_left
      (fun acc tbl -> Hashtbl.fold (fun _ s acc -> acc + Iset.cardinal s) tbl acc)
      0 t.mem_in

let pp_stats ppf t =
  Format.fprintf ppf "nonsparse: %d iterations, %d pts entries" t.iterations (pts_entries t)

let solve ?(budget_seconds = 7200.) prog ast icfg pcg ~singleton =
  let n = Prog.n_stmts prog in
  let t =
    {
      prog;
      ptv = Array.make (Prog.n_vars prog) Iset.empty;
      mem_in = Array.init n (fun _ -> Hashtbl.create 4);
      iterations = 0;
    }
  in
  let queue = Queue.create () in
  let queued = Bitvec.create ~capacity:n () in
  let push g = if Bitvec.set_if_unset queued g then Queue.add g queue in
  let var_users = Array.make (Prog.n_vars prog) [] in
  (* occurrences of one variable in one statement land consecutively, so a
     head check dedupes repeated uses (store p p, phi with repeated sources)
     at index time *)
  let add_user v gid =
    match var_users.(v) with
    | g :: _ when g = gid -> ()
    | l -> var_users.(v) <- gid :: l
  in
  Prog.iter_funcs prog (fun f ->
      Func.iter_stmts f (fun i s ->
          let gid = Prog.gid prog ~fid:f.Func.fid ~idx:i in
          List.iter (fun v -> add_user v gid) (Stmt.uses s);
          match s with
          | Stmt.Call { ret = Some _; _ } ->
            List.iter
              (fun callee ->
                List.iter (fun rv -> add_user rv gid) (A.ret_vars ast callee))
              (A.callees ast ~fid:f.Func.fid ~idx:i)
          | _ -> ()));
  let add_var v set =
    let u = Iset.union t.ptv.(v) set in
    if not (u == t.ptv.(v)) then begin
      t.ptv.(v) <- u;
      List.iter push var_users.(v)
    end
  in
  let join_into gid o set =
    let tbl = t.mem_in.(gid) in
    let cur = Option.value ~default:Iset.empty (Hashtbl.find_opt tbl o) in
    let u = Iset.union cur set in
    if not (u == cur) then begin
      Hashtbl.replace tbl o u;
      push gid
    end
  in
  (* racy objects per store (PCG-level): no strong update on them *)
  let stores_by_obj = Hashtbl.create 64 and accesses_by_obj = Hashtbl.create 64 in
  let tbl_add tbl k v =
    Hashtbl.replace tbl k (v :: Option.value ~default:[] (Hashtbl.find_opt tbl k))
  in
  Prog.iter_stmts prog (fun gid _ s ->
      match s with
      | Stmt.Load { src; _ } -> Iset.iter (fun o -> tbl_add accesses_by_obj o gid) (A.pt_var ast src)
      | Stmt.Store { dst; _ } ->
        Iset.iter
          (fun o ->
            tbl_add accesses_by_obj o gid;
            tbl_add stores_by_obj o gid)
          (A.pt_var ast dst)
      | _ -> ());
  let racy gid o =
    List.exists
      (fun g' -> g' <> gid && Mta.Pcg.mec_stmt pcg gid g')
      (Option.value ~default:[] (Hashtbl.find_opt accesses_by_obj o))
  in
  (* statements of procedures that may execute concurrently with a given
     function, for interference propagation *)
  let mec_stmts_cache = Hashtbl.create 16 in
  let mec_stmts fid =
    match Hashtbl.find_opt mec_stmts_cache fid with
    | Some l -> l
    | None ->
      let acc = ref [] in
      Prog.iter_funcs prog (fun f ->
          if Mta.Pcg.mec_proc pcg fid f.Func.fid then
            Func.iter_stmts f (fun i _ ->
                acc := Prog.gid prog ~fid:f.Func.fid ~idx:i :: !acc));
      Hashtbl.replace mec_stmts_cache fid !acc;
      !acc
  in
  (* successors in the ICFG plus fork -> spawnee-entry edges *)
  let succs_of gid =
    let base = List.map snd (Mta.Icfg.succs icfg gid) in
    match Prog.stmt_at prog gid with
    | Stmt.Fork _ ->
      let fid, idx = Prog.of_gid prog gid in
      List.map (fun f -> Mta.Icfg.entry_gid icfg f) (A.callees ast ~fid ~idx) @ base
    | _ -> base
  in
  let start = Sys.time () in
  let timed_out = ref false in
  for g = 0 to n - 1 do
    push g
  done;
  (try
     while not (Queue.is_empty queue) do
       let gid = Queue.pop queue in
       Bitvec.clear queued gid;
       t.iterations <- t.iterations + 1;
       if t.iterations land 1023 = 0 && Sys.time () -. start > budget_seconds then begin
         timed_out := true;
         raise Exit
       end;
       let fid, idx = Prog.of_gid prog gid in
       let in_tbl = t.mem_in.(gid) in
       (* transfer: top-level effects and the out memory graph *)
       let out_override : (int * Iset.t) list ref = ref [] in
       (* bindings that differ from in *)
       (match Prog.stmt_at prog gid with
       | Stmt.Addr_of { dst; obj } -> add_var dst (Iset.singleton obj)
       | Stmt.Copy { dst; src } -> add_var dst t.ptv.(src)
       | Stmt.Phi { dst; srcs } -> List.iter (fun s -> add_var dst t.ptv.(s)) srcs
       | Stmt.Gep { dst; src; field } ->
         Iset.iter
           (fun o ->
             let info = Prog.obj prog o in
             if not (Memobj.is_function info || Memobj.is_thread info) then
               add_var dst (Iset.singleton (Prog.field_obj prog ~base:o ~field)))
           t.ptv.(src)
       | Stmt.Load { dst; src } ->
         Iset.iter
           (fun o ->
             add_var dst (Option.value ~default:Iset.empty (Hashtbl.find_opt in_tbl o)))
           t.ptv.(src)
       | Stmt.Store { dst; src } ->
         let targets = t.ptv.(dst) in
         let strong =
           match Iset.as_singleton targets with
           | Some o' when singleton o' && not (racy gid o') -> Some o'
           | _ -> None
         in
         Iset.iter
           (fun o ->
             let old = Option.value ~default:Iset.empty (Hashtbl.find_opt in_tbl o) in
             let nw =
               if strong = Some o then t.ptv.(src) else Iset.union old t.ptv.(src)
             in
             out_override := (o, nw) :: !out_override;
             (* interference: the generated fact reaches every concurrent
                statement *)
             List.iter (fun g' -> join_into g' o nw) (mec_stmts fid))
           targets
       | _ -> ());
       (* calls and forks: bind arguments / returns *)
       (match Prog.stmt_at prog gid with
       | Stmt.Call { args; ret; _ } ->
         List.iter
           (fun callee ->
             let f = Prog.func prog callee in
             let rec go a p =
               match (a, p) with
               | x :: a, y :: p ->
                 add_var y t.ptv.(x);
                 go a p
               | _ -> ()
             in
             go args f.Func.params;
             match ret with
             | Some r -> List.iter (fun rv -> add_var r t.ptv.(rv)) (A.ret_vars ast callee)
             | None -> ())
           (A.callees ast ~fid ~idx)
       | Stmt.Fork { args; handle; fork_id; _ } ->
         List.iter
           (fun callee ->
             let f = Prog.func prog callee in
             let rec go a p =
               match (a, p) with
               | x :: a, y :: p ->
                 add_var y t.ptv.(x);
                 go a p
               | _ -> ()
             in
             go args f.Func.params)
           (A.callees ast ~fid ~idx);
         (match handle with
         | Some h ->
           let theta = Prog.thread_obj_of_fork prog fork_id in
           Iset.iter
             (fun o ->
               let old = Option.value ~default:Iset.empty (Hashtbl.find_opt in_tbl o) in
               out_override := (o, Iset.add theta old) :: !out_override)
             t.ptv.(h)
         | None -> ())
       | _ -> ());
       (* propagate the whole points-to graph to every successor *)
       let succs = succs_of gid in
       List.iter
         (fun g' ->
           Hashtbl.iter
             (fun o set ->
               match List.assoc_opt o !out_override with
               | Some _ -> ()
               | None -> join_into g' o set)
             in_tbl;
           List.iter (fun (o, set) -> join_into g' o set) !out_override)
         succs
     done
   with Exit -> ());
  Fsam_obs.Metrics.(add (counter "nonsparse.iterations") t.iterations);
  Fsam_obs.Metrics.(set (gauge "nonsparse.pts_entries") (pts_entries t));
  if !timed_out then Timeout budget_seconds else Done t
