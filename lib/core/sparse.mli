open Fsam_ir

(** The sparse flow-sensitive points-to solver of paper §3.4 (Figure 10):
    points-to facts propagate only along the pre-computed def-use edges of
    the SVFG. Top-level variables are in SSA form, so each has a single
    global points-to set updated at its unique definition; address-taken
    objects have one set per defining SVFG node ([pt(s, o)]).

    Strong updates ([P-SU/WU]): a store kills the incoming contents of [o]
    when its pointer resolves to exactly [{o}], [o] is a singleton location,
    and the store is not part of an interfering MHP pair on [o]. A store
    through a null pointer (empty points-to set) generates nothing. *)

type t

type scheduler =
  | Fifo  (** plain FIFO queue — the original Figure 10 drain order *)
  | Priority
      (** binary heap keyed on the topological rank of each work unit's SCC
          in the SVFG condensation: a unit runs after its inter-SCC
          predecessors stabilise, and intra-SCC cycles drain to fixpoint
          before the next rank starts. Reaches the identical (unique)
          fixpoint with fewer propagations. *)

val solve :
  ?scheduler:scheduler ->
  ?prov:Fsam_prov.t ->
  Prog.t ->
  Fsam_andersen.Solver.t ->
  Fsam_memssa.Svfg.t ->
  singleton:(int -> bool) ->
  t
(** [scheduler] defaults to [Priority]. [prov], when given, records one
    derivation reason per propagated points-to fact (spaces
    [Fsam_prov.sp_var] and [Fsam_prov.sp_mem]) plus the final strong/weak
    verdict of every store ([Fsam_prov.sp_store]); results are identical
    either way and the disabled path allocates nothing extra. *)

val pt_top : t -> Stmt.var -> Fsam_dsa.Iset.t
(** Points-to set of a top-level variable (at/after its unique def). *)

val pt_at_store : t -> int -> int -> Fsam_dsa.Iset.t
(** [pt_at_store t gid o] — contents of object [o] immediately after the
    store (or fork) statement [gid]. *)

val pt_obj_anywhere : t -> int -> Fsam_dsa.Iset.t
(** Union of [o]'s contents over all defining nodes — a flow-insensitive
    projection used by clients and sanity checks. O(1): served from an
    accumulator maintained during the solve, not a fold over the table. *)

val pto_get : t -> int -> int -> Fsam_dsa.Iset.t
(** [pto_get t node o] — contents of [o] at the SVFG node [node] (empty when
    no fact is recorded). *)

val iter_pto : t -> (node:int -> obj:int -> Fsam_dsa.Iset.t -> unit) -> unit
(** Iterate every [(svfg node, obj) -> contents] fact — lets tests and
    benchmarks check two solver runs for byte-identical results. *)

val n_iterations : t -> int

val n_strong_updates : t -> int
(** Incoming-edge propagations suppressed by a strong update (cumulative
    over solver events). *)

val n_weak_updates : t -> int
val pts_entries : t -> int
(** Total number of (location, target) facts — the memory-size proxy
    reported in the benchmark tables. *)

val pp_stats : Format.formatter -> t -> unit
