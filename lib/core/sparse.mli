open Fsam_ir

(** The sparse flow-sensitive points-to solver of paper §3.4 (Figure 10):
    points-to facts propagate only along the pre-computed def-use edges of
    the SVFG. Top-level variables are in SSA form, so each has a single
    global points-to set updated at its unique definition; address-taken
    objects have one set per defining SVFG node ([pt(s, o)]).

    Strong updates ([P-SU/WU]): a store kills the incoming contents of [o]
    when its pointer resolves to exactly [{o}], [o] is a singleton location,
    and the store is not part of an interfering MHP pair on [o]. A store
    through a null pointer (empty points-to set) generates nothing. *)

type t

type scheduler =
  | Fifo  (** plain FIFO queue — the original Figure 10 drain order *)
  | Priority
      (** binary heap keyed on the topological rank of each work unit's SCC
          in the SVFG condensation: a unit runs after its inter-SCC
          predecessors stabilise, and intra-SCC cycles drain to fixpoint
          before the next rank starts. Reaches the identical (unique)
          fixpoint with fewer propagations. *)

(* -- dirty-tracking hooks (incremental re-analysis) ---------------------- *)

type deps = { d_defs : int list array; d_users : int list array }
(** Per-variable defining / using statement gids, including the param
    bindings performed at call and fork sites (the callsite is a def of the
    callee's formals) and the ret-var uses at value-returning callsites. *)

val compute_deps : Prog.t -> Fsam_andersen.Solver.t -> deps

val unit_count : Prog.t -> Fsam_memssa.Svfg.t -> int
(** Size of the solver's work-unit universe: statement gids in
    [0, n_stmts), then non-statement SVFG nodes at [n_stmts + node_id]. *)

val unit_of_svfg_node : Prog.t -> Fsam_memssa.Svfg.t -> int -> int
(** The work unit draining an SVFG node: the gid for statement nodes,
    [n_stmts + node_id] for merge nodes. *)

val dep_graph :
  Prog.t -> Fsam_andersen.Solver.t -> Fsam_memssa.Svfg.t -> Fsam_graph.Digraph.t
(** The unit dependency graph the drain propagates on: an edge [u -> w]
    whenever processing [u] can enqueue [w]. The incremental engine takes
    the forward closure of its dirty seeds over this graph; the priority
    scheduler condenses it into SCC ranks. *)

type warm = {
  w_ptv : Fsam_dsa.Iset.t array;  (** pre-proven top-level sets, by var *)
  w_pto : ((int * int) * Fsam_dsa.Iset.t) list;
      (** pre-proven [(svfg node, obj) -> contents] facts *)
  w_units : int list;  (** worklist seeds — the dirty units *)
}
(** A warm start: facts already known to be part of the least fixpoint
    (e.g. copied from a previous solve's clean slice, translated to this
    program's ids), plus the units whose transfer functions must re-run.
    Soundness requirement on the caller: every unit whose inputs are not
    fully covered by the pre-loaded facts must appear in [w_units] — the
    drain only revisits seeds and whatever they transitively enqueue. *)

val solve :
  ?scheduler:scheduler ->
  ?warm:warm ->
  ?prov:Fsam_prov.t ->
  Prog.t ->
  Fsam_andersen.Solver.t ->
  Fsam_memssa.Svfg.t ->
  singleton:(int -> bool) ->
  t
(** [scheduler] defaults to [Priority]. [warm], when given, pre-loads the
    carried facts and seeds the worklist with [w_units] instead of every
    statement; the monotone transfer functions then reach the same unique
    least fixpoint a cold run would. [prov], when given, records one
    derivation reason per propagated points-to fact (spaces
    [Fsam_prov.sp_var] and [Fsam_prov.sp_mem]) plus the final strong/weak
    verdict of every store ([Fsam_prov.sp_store]); results are identical
    either way and the disabled path allocates nothing extra. *)

val pt_top : t -> Stmt.var -> Fsam_dsa.Iset.t
(** Points-to set of a top-level variable (at/after its unique def). *)

val pt_at_store : t -> int -> int -> Fsam_dsa.Iset.t
(** [pt_at_store t gid o] — contents of object [o] immediately after the
    store (or fork) statement [gid]. *)

val pt_obj_anywhere : t -> int -> Fsam_dsa.Iset.t
(** Union of [o]'s contents over all defining nodes — a flow-insensitive
    projection used by clients and sanity checks. O(1): served from an
    accumulator maintained during the solve, not a fold over the table. *)

val pto_get : t -> int -> int -> Fsam_dsa.Iset.t
(** [pto_get t node o] — contents of [o] at the SVFG node [node] (empty when
    no fact is recorded). *)

val iter_pto : t -> (node:int -> obj:int -> Fsam_dsa.Iset.t -> unit) -> unit
(** Iterate every [(svfg node, obj) -> contents] fact — lets tests and
    benchmarks check two solver runs for byte-identical results. *)

val n_iterations : t -> int

val n_strong_updates : t -> int
(** Incoming-edge propagations suppressed by a strong update (cumulative
    over solver events). *)

val n_weak_updates : t -> int

val n_growth : t -> int
(** Add events that enlarged a points-to set during the drain (excluding
    warm pre-loading). A snapshot restore's verification sweep asserts this
    is zero: the restored facts were already the fixpoint. *)

val pts_entries : t -> int
(** Total number of (location, target) facts — the memory-size proxy
    reported in the benchmark tables. *)

val pp_stats : Format.formatter -> t -> unit
