(** Static pre-filtering for dynamic race detectors — the paper's §6
    proposes combining FSAM "with some dynamic analysis tools such as
    Google's ThreadSanitizer to reduce their instrumentation overhead".

    An access needs instrumentation only if it can actually participate in
    an interfering MHP pair on some shared object; everything else can be
    compiled without checks. *)

type report = {
  total_accesses : int;  (** loads + stores in the program *)
  instrumented : int;  (** accesses that must keep their checks *)
  reduction : float;  (** fraction of checks removed, in [0, 1] *)
}

val analyze : Driver.t -> report

type sets
(** Precomputed instrumentation sets for one analysis result. *)

val instrumented_sets : Driver.t -> sets
(** Compute (or fetch from a one-entry cache keyed on the driver value) the
    set of accesses that need dynamic checks. *)

val must_instrument_in : sets -> int -> bool
(** O(1) query against a precomputed set. *)

val must_instrument : Driver.t -> int -> bool
(** Whether the load/store at this gid needs a dynamic check. Memoized:
    repeated queries against the same [Driver.t] reuse the precomputed set
    instead of rebuilding it per call. *)
